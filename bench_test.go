// Package bench holds the top-level benchmark harness: one testing.B
// benchmark per table/figure of the paper (see DESIGN.md's experiment
// index). Each benchmark regenerates its artifact at paper scale (N=40,
// 100 pairs, 2000 transmissions, churn on) and logs the rows/series the
// paper reports. Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks are sized so a full -bench=. pass completes in well under
// a minute; cmd/experiments runs the same harness with more trials and the
// complete sweeps.
package bench

import (
	"fmt"
	"strings"
	"testing"

	"p2panon/internal/core"
	"p2panon/internal/experiment"
	"p2panon/internal/report"
)

// benchFractions is the reduced f sweep used by the benchmarks (the CLI
// runs the full 0..0.9 grid).
var benchFractions = []float64{0.1, 0.5, 0.9}

var allStrategies = []core.Strategy{core.Random, core.UtilityI, core.UtilityII}

func logTable(b *testing.B, t *report.Table) {
	b.Helper()
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", sb.String())
}

func base(seed uint64) experiment.Setup {
	s := experiment.Default()
	s.Seed = seed
	return s
}

// BenchmarkFig3PayoffVsMaliciousUM1 regenerates Figure 3: average payoff
// for a non-malicious node under Utility Model I vs malicious fraction.
func BenchmarkFig3PayoffVsMaliciousUM1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiment.PayoffVsMalicious(base(uint64(i)+1), core.UtilityI, benchFractions, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, report.SeriesTable("Fig. 3: avg good-node payoff vs f (UM-I)", "f", s))
		}
	}
}

// BenchmarkFig4PayoffVsMaliciousUM2 regenerates Figure 4: the same series
// under Utility Model II.
func BenchmarkFig4PayoffVsMaliciousUM2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiment.PayoffVsMalicious(base(uint64(i)+1), core.UtilityII, benchFractions, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, report.SeriesTable("Fig. 4: avg good-node payoff vs f (UM-II)", "f", s))
		}
	}
}

// BenchmarkTable2RoutingEfficiency regenerates Table 2: routing efficiency
// for Utility Model I over the τ × f grid with the per-τ mean row.
func BenchmarkTable2RoutingEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.RunTable2(base(uint64(i)+1), experiment.DefaultTaus, []float64{0.1, 0.5, 0.9}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, report.Table2Render(tab))
		}
	}
}

// BenchmarkFig5ForwarderSetSize regenerates Figure 5: average forwarder-set
// size ‖π‖ per routing strategy vs malicious fraction.
func BenchmarkFig5ForwarderSetSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ss, err := experiment.ForwarderSetVsMalicious(base(uint64(i)+1), experiment.Fig5Strategies, benchFractions, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, report.MultiSeriesTable("Fig. 5: avg ‖π‖ vs f", "f", ss))
		}
	}
}

// BenchmarkFig6PayoffCDF regenerates Figure 6: the CDF of good-node
// payoffs at f = 0.1 for all three strategies.
func BenchmarkFig6PayoffCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cdfs, err := experiment.PayoffCDFs(base(uint64(i)+1), allStrategies, 0.1, 2, 15)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, report.CDFSummaryTable("Fig. 6: payoff distribution, f=0.1", cdfs))
		}
	}
}

// BenchmarkFig7PayoffCDF regenerates Figure 7: the CDF at f = 0.5.
func BenchmarkFig7PayoffCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cdfs, err := experiment.PayoffCDFs(base(uint64(i)+1), allStrategies, 0.5, 2, 15)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, report.CDFSummaryTable("Fig. 7: payoff distribution, f=0.5", cdfs))
		}
	}
}

// BenchmarkFig12Scenario regenerates the Figures 1-2 illustration: ‖π‖ and
// routing-benefit share under flapping random routing vs stable routing.
func BenchmarkFig12Scenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunFig12(8, 100, uint64(i)+3)
		if i == 0 {
			t := &report.Table{
				Title:   "Figs. 1-2 scenario",
				Headers: []string{"scenario", "‖π‖", "Pr share"},
			}
			t.AddRow("random + flapping X", fmt.Sprintf("%d", res.RandomSetSize), report.F(res.RandomShare))
			t.AddRow("stable utility", fmt.Sprintf("%d", res.StableSetSize), report.F(res.StableShare))
			logTable(b, t)
		}
	}
}

// BenchmarkProp1Reformation regenerates the Proposition 1 study: empirical
// new-edge probability E[X] under random vs utility routing, with the
// analytic expressions alongside.
func BenchmarkProp1Reformation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunProp1(base(uint64(i)+1), 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := &report.Table{Title: "Prop. 1", Headers: []string{"quantity", "value"}}
			t.AddRow("random measured", report.F4(res.RandomRate))
			t.AddRow("random bound 1-k/N", report.F4(res.RandomBound))
			t.AddRow("utility measured", report.F4(res.UtilityRate))
			t.AddRow("utility prod(1-p_i)", report.F4(res.UtilityPredict))
			logTable(b, t)
		}
	}
}

// BenchmarkProp23Participation regenerates the Propositions 2-3 study:
// participation response as P_f crosses the cost thresholds.
func BenchmarkProp23Participation(b *testing.B) {
	pfs := []float64{3, 6.9, 7.1, 50}
	for i := 0; i < b.N; i++ {
		pts, err := experiment.RunParticipation(base(uint64(i)+1), pfs, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := &report.Table{
				Title:   "Props. 2-3 (C^p=5, C^t=2)",
				Headers: []string{"P_f", "decline rate", "direct fraction", "Prop3"},
			}
			for _, p := range pts {
				t.AddRow(report.F(p.Pf), report.F4(p.DeclineRate), report.F4(p.DirectFraction),
					fmt.Sprintf("%v", p.Prop3Satisfied))
			}
			logTable(b, t)
		}
	}
}

// BenchmarkAblationTau regenerates the τ-sensitivity ablation (ABL-TAU).
func BenchmarkAblationTau(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.RunTauAblation(base(uint64(i)+1), []float64{0.5, 2, 8}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := &report.Table{Title: "Ablation: tau", Headers: []string{"tau", "‖π‖", "payoff", "efficiency"}}
			for _, p := range pts {
				t.AddRow(report.F(p.Tau), report.F(p.AvgSetSize), report.F(p.AvgPayoff), report.F(p.Efficiency))
			}
			logTable(b, t)
		}
	}
}

// BenchmarkAblationWeights regenerates the w_s/w_a weighting ablation
// (ABL-W).
func BenchmarkAblationWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.RunWeightAblation(base(uint64(i)+1), []float64{0, 0.5, 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := &report.Table{Title: "Ablation: w_s", Headers: []string{"w_s", "‖π‖", "new-edge rate"}}
			for _, p := range pts {
				t.AddRow(report.F(p.Ws), report.F(p.AvgSetSize), report.F4(p.NewEdgeRate))
			}
			logTable(b, t)
		}
	}
}

// BenchmarkAblationTermination regenerates the termination-mode ablation
// (ABL-TERM): hop-budget vs Crowds-coin forwarding under the same
// incentive mechanism.
func BenchmarkAblationTermination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.RunTerminationAblation(base(uint64(i)+1), []float64{0.66, 0.9}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := &report.Table{Title: "Termination ablation", Headers: []string{"mode", "p_f", "L", "‖π‖", "Q"}}
			for _, p := range pts {
				pf := "-"
				if p.Mode == core.CrowdsCoin {
					pf = report.F(p.ForwardProb)
				}
				t.AddRow(p.Mode.String(), pf, report.F(p.AvgLen), report.F(p.AvgSetSize), report.F(p.AvgQuality))
			}
			logTable(b, t)
		}
	}
}

// BenchmarkReputationComparison regenerates the CMP-REP study: colluders'
// capture of forwarding work under reputation routing vs the incentive
// mechanism.
func BenchmarkReputationComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiment.RunReputationComparison(base(uint64(i)+1), 0.1, 200, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := &report.Table{Title: "Reputation vs incentive (coalition 10%)", Headers: []string{"system", "capture"}}
			t.AddRow("population share", report.F4(cmp.PopulationShare))
			t.AddRow("reputation (late)", report.F4(cmp.ReputationLate))
			t.AddRow("incentive UM-I", report.F4(cmp.IncentiveCapture))
			logTable(b, t)
		}
	}
}

// BenchmarkIntersectionAttack regenerates the intersection-attack study
// (ATK-INT): candidate-set collapse per strategy under churn.
func BenchmarkIntersectionAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := base(uint64(i) + 1)
		res, err := experiment.RunIntersection(s, allStrategies, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := &report.Table{
				Title:   "Intersection attack",
				Headers: []string{"strategy", "final set", "identified", "degree", "‖π‖"},
			}
			for _, x := range res {
				t.AddRow(x.Strategy.String(), report.F(x.AvgFinalSet), report.F4(x.IdentifiedRate),
					report.F4(x.AvgDegree), report.F(x.AvgForwarderSet))
			}
			logTable(b, t)
		}
	}
}

// BenchmarkAvailabilityAttack regenerates the §5 availability-attack study
// (ATK-AVAIL).
func BenchmarkAvailabilityAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := base(uint64(i) + 1)
		s.MaliciousFraction = 0.2
		res, err := experiment.RunAvailabilityAttack(s, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := &report.Table{
				Title:   "Availability attack (f=0.2)",
				Headers: []string{"behaviour", "capture", "guess accuracy"},
			}
			t.AddRow("churning", report.F4(res.BaselineCapture), "-")
			t.AddRow("always-online", report.F4(res.AttackCapture), report.F4(res.GuessAccuracy))
			logTable(b, t)
		}
	}
}

// BenchmarkSingleRunUM1 measures the cost of one full paper-scale
// simulation under Utility Model I (the unit all sweeps are built from).
func BenchmarkSingleRunUM1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := base(uint64(i) + 1)
		s.MaliciousFraction = 0.1
		if _, err := experiment.Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleRunUM2 measures one full simulation under Utility Model
// II (includes the per-connection SPNE solve).
func BenchmarkSingleRunUM2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := base(uint64(i) + 1)
		s.MaliciousFraction = 0.1
		s.Strategy = core.UtilityII
		if _, err := experiment.Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrajectory regenerates the TRAJ convergence study: the Prop. 1
// dynamics of new-edge rate and cumulative ‖π‖ per connection index.
func BenchmarkTrajectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trajs, err := experiment.RunTrajectory(base(uint64(i)+1), []core.Strategy{core.Random, core.UtilityI}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := &report.Table{Title: "Convergence (first 8 connections)",
				Headers: []string{"conn", "rand newE", "UM-I newE", "UM-I ‖π‖"}}
			rr, u := trajs[core.Random], trajs[core.UtilityI]
			for j := 0; j < 8 && j < len(rr) && j < len(u); j++ {
				t.AddRow(fmt.Sprintf("%d", u[j].Conn),
					report.F4(rr[j].NewEdgeRate), report.F4(u[j].NewEdgeRate), report.F(u[j].CumSetSize))
			}
			logTable(b, t)
		}
	}
}

// BenchmarkTrafficAnalysis regenerates the §5 traffic-analysis study
// (ATK-TRAFFIC): a global observer correlating activity epochs.
func BenchmarkTrafficAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTrafficAnalysis(base(uint64(i)+1), 600, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := &report.Table{Title: "Traffic analysis (10-min epochs)", Headers: []string{"metric", "value"}}
			t.AddRow("initiator mean rank", report.F(res.MeanRank))
			t.AddRow("identified rate", report.F4(res.IdentifiedRate))
			t.AddRow("mean correlation", report.F4(res.MeanScore))
			logTable(b, t)
		}
	}
}

// BenchmarkAblationChurn regenerates the churn-intensity study
// (ABL-CHURN): how the mechanism degrades as sessions shorten.
func BenchmarkAblationChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.RunChurnAblation(base(uint64(i)+1), []float64{15, 60, 240}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := &report.Table{Title: "Churn sensitivity", Headers: []string{"median (min)", "‖π‖", "new-edge", "skipped"}}
			for _, p := range pts {
				t.AddRow(report.F(p.MedianSessionMin), report.F(p.AvgSetSize),
					report.F4(p.NewEdgeRate), report.F4(p.SkippedFraction))
			}
			logTable(b, t)
		}
	}
}

// BenchmarkScaleN regenerates the SCALE study at reduced size: the
// utility/random separation across population sizes, with parallel trials.
func BenchmarkScaleN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.RunScale(base(uint64(i)+1), []int{40, 120}, 2, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := &report.Table{Title: "Scale sweep", Headers: []string{"N", "random ‖π‖", "UM-I ‖π‖", "separation"}}
			for _, p := range pts {
				t.AddRow(fmt.Sprintf("%d", p.N), report.F(p.RandomSetSize),
					report.F(p.UtilitySetSize), report.F(p.SeparationRatio))
			}
			logTable(b, t)
		}
	}
}
