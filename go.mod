module p2panon

go 1.22
