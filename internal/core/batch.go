package core

import (
	"fmt"
	"sort"

	"p2panon/internal/game"
	"p2panon/internal/history"
	"p2panon/internal/overlay"
	"p2panon/internal/quality"
)

// Batch is one (I, R) pair's set of recurring connections π = {π¹ … π^k}
// under a single contract — the unit over which the forwarder set, the
// routing-benefit share and the payoffs are defined.
type Batch struct {
	ID        int
	Initiator overlay.NodeID
	Responder overlay.NodeID
	Contract  Contract
	Strategy  Strategy // routing strategy used by good nodes

	sys *System

	k        int // connections completed so far
	fset     *quality.ForwarderSet
	forwards map[overlay.NodeID]int // m per forwarder
	edges    map[edge]struct{}      // union of directed edges over π¹…π^k

	newEdges   int // edges that were not present in earlier connections
	totalEdges int
	declines   int // forwarding requests declined (NULL strategy plays)

	// fixedPath is the FixedPath baseline's current source-routed relay
	// sequence (excluding endpoints); rebuilt when a member goes offline.
	fixedPath []overlay.NodeID
}

type edge struct{ from, to overlay.NodeID }

// NewBatch registers a new batch on the system. Initiator and responder
// must be distinct existing nodes.
func (s *System) NewBatch(initiator, responder overlay.NodeID, c Contract, strat Strategy) (*Batch, error) {
	if !s.Net.Exists(initiator) || !s.Net.Exists(responder) {
		return nil, fmt.Errorf("core: unknown endpoint (I=%d, R=%d)", initiator, responder)
	}
	if initiator == responder {
		return nil, fmt.Errorf("core: initiator and responder are both node %d", initiator)
	}
	if c.Pf < 0 || c.Pr < 0 {
		return nil, fmt.Errorf("core: negative contract %+v", c)
	}
	s.batches++
	return &Batch{
		ID:        s.batches,
		Initiator: initiator,
		Responder: responder,
		Contract:  c,
		Strategy:  strat,
		sys:       s,
		fset:      quality.NewForwarderSet(),
		forwards:  make(map[overlay.NodeID]int),
		edges:     make(map[edge]struct{}),
	}, nil
}

// Connections returns the number of completed connections k.
func (b *Batch) Connections() int { return b.k }

// ForwarderSet returns the batch's union forwarder set tracker.
func (b *Batch) ForwarderSet() *quality.ForwarderSet { return b.fset }

// Forwards returns forwarder id's forwarding-instance count m.
func (b *Batch) Forwards(id overlay.NodeID) int { return b.forwards[id] }

// Declines returns how many forwarding requests were declined so far.
func (b *Batch) Declines() int { return b.declines }

// NewEdgeRate returns the empirical E[X] of Proposition 1: the fraction of
// traversed edges that were new (absent from all earlier connections of
// the batch). It returns 0 before any connection runs.
func (b *Batch) NewEdgeRate() float64 {
	if b.totalEdges == 0 {
		return 0
	}
	return float64(b.newEdges) / float64(b.totalEdges)
}

// PathResult describes one completed connection π^k.
type PathResult struct {
	Conn int // 1-based connection index within the batch
	// Nodes is the full node sequence I, f₁, …, f_m, R.
	Nodes []overlay.NodeID
	// EdgeQualities holds q for each traversed edge as evaluated by its
	// tail at selection time; the final (delivery) edge is 1.
	EdgeQualities []float64
	// NewEdges counts edges of this connection absent from all previous
	// connections of the batch (Prop. 1's X = 1 events).
	NewEdges int
	// Declined counts nodes that refused to forward during formation.
	Declined int
	// Direct reports whether the connection fell back to I→R delivery
	// with no forwarders at all.
	Direct bool
}

// HopLen returns the connection's length in edges.
func (p *PathResult) HopLen() int { return len(p.Nodes) - 1 }

// Forwarders returns the interior nodes (excluding I and R) in order,
// with duplicates when a node held the payload twice.
func (p *PathResult) Forwarders() []overlay.NodeID {
	if len(p.Nodes) <= 2 {
		return nil
	}
	return p.Nodes[1 : len(p.Nodes)-1]
}

// RunConnection forms the next connection π^{k+1} of the batch and updates
// all batch accounting. It never fails outright: if every neighbor
// declines or is offline, the initiator delivers directly to R (a
// forwarder-less connection), which models Crowds' always-available direct
// submission.
func (b *Batch) RunConnection() *PathResult {
	b.k++
	res := &PathResult{Conn: b.k}
	budget := b.sys.cfg.MinHops
	if span := b.sys.cfg.MaxHops - b.sys.cfg.MinHops; span > 0 {
		budget += b.sys.rng.Intn(span + 1)
	}

	if b.Strategy == FixedPath {
		b.runFixedPath(res, budget)
		res.Direct = len(res.Nodes) == 2
		b.fset.AddPath(res.Forwarders(), res.HopLen())
		return res
	}

	// Utility Model II: solve the stage game once for this connection;
	// every good holder then plays its SPNE prescription.
	var spne [][]game.Decision
	if b.Strategy == UtilityII {
		spne = b.solveStageGame(budget)
	}

	cur := b.Initiator
	pred := overlay.None
	res.Nodes = append(res.Nodes, cur)

	for hop := 0; ; hop++ {
		remaining := budget - hop
		deliver := remaining <= 0
		// Crowds-coin termination (§2.2): interior holders flip p_f; the
		// initiator always forwards at least once when it can. MaxHops
		// still caps via the budget above.
		if !deliver && hop > 0 && b.sys.cfg.Termination == CrowdsCoin &&
			!b.sys.rng.Bernoulli(b.sys.cfg.ForwardProb) {
			deliver = true
		}
		var next overlay.NodeID
		var q float64
		if deliver {
			next, q = b.Responder, 1
		} else {
			next, q = b.chooseNext(cur, pred, remaining, spne, res)
		}
		b.recordHop(res, cur, pred, next, q)
		if next == b.Responder {
			break
		}
		pred, cur = cur, next
	}
	res.Direct = len(res.Nodes) == 2
	b.fset.AddPath(res.Forwarders(), res.HopLen())
	return res
}

// runFixedPath implements the FixedPath baseline: replay the stored
// source-routed path if every member is still online, otherwise pick a
// fresh random path (a reformation) and use that.
func (b *Batch) runFixedPath(res *PathResult, budget int) {
	valid := len(b.fixedPath) > 0
	for _, id := range b.fixedPath {
		if !b.sys.Net.Online(id) {
			valid = false
			break
		}
	}
	if !valid {
		b.fixedPath = b.buildSourcePath(budget)
	}
	cur := b.Initiator
	pred := overlay.None
	res.Nodes = append(res.Nodes, cur)
	sc := b.sys.scorer(b.Initiator, b.ID)
	for _, next := range b.fixedPath {
		b.recordHop(res, cur, pred, next, sc.Edge(next, b.Responder, b.k))
		pred, cur = cur, next
	}
	b.recordHop(res, cur, pred, b.Responder, 1)
}

// buildSourcePath picks `budget` distinct random online relays, excluding
// the endpoints — the initiator-knows-the-path model of [13].
func (b *Batch) buildSourcePath(budget int) []overlay.NodeID {
	var pool []overlay.NodeID
	for _, id := range b.sys.Net.OnlineIDs() {
		if id != b.Initiator && id != b.Responder {
			pool = append(pool, id)
		}
	}
	if budget > len(pool) {
		budget = len(pool)
	}
	shuffleIDs(b.sys.rng, pool)
	return append([]overlay.NodeID(nil), pool[:budget]...)
}

// chooseNext picks cur's successor for the current connection, honouring
// the holder's strategy, candidate acceptance, and the hop budget. It
// returns the responder when no forwarding candidate is available.
func (b *Batch) chooseNext(cur, pred overlay.NodeID, remaining int, spne [][]game.Decision, res *PathResult) (overlay.NodeID, float64) {
	holderIsMalicious := b.sys.Net.Node(cur).Malicious
	strat := b.Strategy
	if holderIsMalicious {
		strat = Random // adversaries route randomly, whatever the contract says
	}

	candidates := b.candidates(cur, pred)
	if len(candidates) == 0 {
		return b.Responder, 1
	}

	switch strat {
	case Random:
		// Uniform choice; skip decliners by resampling without
		// replacement.
		order := append([]overlay.NodeID(nil), candidates...)
		shuffleIDs(b.sys.rng, order)
		for _, v := range order {
			if b.sys.accepts(v, b.Contract) {
				return v, b.sys.scorer(cur, b.ID).Edge(v, b.Responder, b.k)
			}
			res.Declined++
			b.declines++
		}
		return b.Responder, 1

	case UtilityII:
		if spne != nil && int(cur) < len(spne[remaining]) {
			d := spne[remaining][cur]
			// The SPNE table is computed over walks; refuse an immediate
			// return to the predecessor (A→B→A cycling) and fall back to
			// the local rule instead, like the candidate filter does for
			// the other strategies.
			if d.Next >= 0 && overlay.NodeID(d.Next) != pred {
				next := overlay.NodeID(d.Next)
				if next == b.Responder {
					return b.Responder, 1
				}
				if b.sys.accepts(next, b.Contract) {
					return next, b.sys.scorer(cur, b.ID).Edge(next, b.Responder, b.k)
				}
				res.Declined++
				b.declines++
				// SPNE target declined: fall through to Model I's local
				// choice among the remaining candidates.
			}
		}
		fallthrough

	default: // UtilityI
		return b.chooseUtilityI(cur, pred, candidates, res)
	}
}

// chooseUtilityI implements Model I: evaluate U(cur, v) for every
// candidate, walk them in descending utility (ties broken by higher edge
// quality, then lower ID for determinism), and return the first acceptor.
func (b *Batch) chooseUtilityI(cur, pred overlay.NodeID, candidates []overlay.NodeID, res *PathResult) (overlay.NodeID, float64) {
	sc := b.sys.scorer(cur, b.ID)
	type scored struct {
		id overlay.NodeID
		u  float64
		q  float64
	}
	scoredCands := make([]scored, 0, len(candidates))
	for _, v := range candidates {
		var q float64
		if b.sys.cfg.PositionAware {
			q = sc.EdgeAt(pred, v, b.Responder, b.k)
		} else {
			q = sc.Edge(v, b.Responder, b.k)
		}
		u := b.Contract.Pf + q*b.Contract.Pr -
			(b.sys.cfg.Cost.Participation + b.sys.cfg.Cost.Transmission(int(cur), int(v)))
		scoredCands = append(scoredCands, scored{id: v, u: u, q: q})
	}
	sort.Slice(scoredCands, func(i, j int) bool {
		a, c := scoredCands[i], scoredCands[j]
		if a.u != c.u {
			return a.u > c.u
		}
		if a.q != c.q {
			return a.q > c.q // paper: ties broken by higher quality
		}
		return a.id < c.id
	})
	// §5 availability-attack countermeasure: jitter the argmax across the
	// top-K candidates so an always-online adversary cannot deterministically
	// park itself on the stable path.
	if k := b.sys.cfg.TopKJitter; k > 1 && len(scoredCands) > 1 {
		if k > len(scoredCands) {
			k = len(scoredCands)
		}
		pick := b.sys.rng.Intn(k)
		scoredCands[0], scoredCands[pick] = scoredCands[pick], scoredCands[0]
	}
	for _, s := range scoredCands {
		if b.sys.accepts(s.id, b.Contract) {
			return s.id, s.q
		}
		res.Declined++
		b.declines++
	}
	return b.Responder, 1
}

// candidates returns cur's viable forwarding candidates: online neighbors
// other than the immediate predecessor, the responder and the initiator.
// (R is reached by explicit delivery; routing back through I would reveal
// nothing useful and unbalance the length normalisation.)
func (b *Batch) candidates(cur, pred overlay.NodeID) []overlay.NodeID {
	var out []overlay.NodeID
	for _, v := range b.sys.Net.Node(cur).Neighbors {
		if v == pred || v == b.Responder || v == b.Initiator || v == cur {
			continue
		}
		if !b.sys.Net.Online(v) {
			continue
		}
		out = append(out, v)
	}
	return out
}

// recordHop updates history, forwarding counts and edge bookkeeping for
// the traversal cur→next.
func (b *Batch) recordHop(res *PathResult, cur, pred, next overlay.NodeID, q float64) {
	res.Nodes = append(res.Nodes, next)
	res.EdgeQualities = append(res.EdgeQualities, q)

	// History: every node on the path (including I) records the hop it
	// routed, keyed by this connection, with its predecessor for position
	// disambiguation (§2.3, Table 1).
	b.sys.Hist.For(cur, b.ID).Record(history.ConnID(b.k), pred, next)

	// Forwarding instances are credited to interior nodes only.
	if cur != b.Initiator {
		b.forwards[cur]++
	}

	e := edge{cur, next}
	b.totalEdges++
	if _, seen := b.edges[e]; !seen {
		// Only edges encountered in *earlier* connections count as old;
		// an edge first seen earlier in this same connection is still new
		// exactly once.
		res.NewEdges++
		b.newEdges++
		b.edges[e] = struct{}{}
	}
}

// solveStageGame builds and solves the L-stage path game for Utility Model
// II over the current online overlay: vertices are all node IDs (offline
// ones get no outgoing edges), each online node i has edges to its online
// neighbors with q from i's own scorer, and every online node has the
// delivery edge (i, R) with quality 1.
func (b *Batch) solveStageGame(budget int) [][]game.Decision {
	n := b.sys.Net.Len()
	type key struct{ i, j int }
	cache := make(map[key]float64, n*4)
	eq := func(i, j int) float64 {
		if q, ok := cache[key{i, j}]; ok {
			return q
		}
		q := b.stageEdgeQuality(overlay.NodeID(i), overlay.NodeID(j))
		cache[key{i, j}] = q
		return q
	}
	g := &game.PathGame{
		Nodes:       n,
		Responder:   int(b.Responder),
		EdgeQuality: eq,
		Pf:          b.Contract.Pf,
		Pr:          b.Contract.Pr,
		Cost:        b.sys.cfg.Cost,
		MaxHops:     budget,
	}
	return g.Solve()
}

// stageEdgeQuality returns q(i, j) for the stage game, or -1 when the edge
// does not exist.
func (b *Batch) stageEdgeQuality(i, j overlay.NodeID) float64 {
	if i == j {
		return -1
	}
	if !b.sys.Net.Online(i) || i == b.Responder {
		return -1
	}
	if j == b.Responder {
		return 1 // delivery edge, last-edge rule
	}
	if j == b.Initiator || !b.sys.Net.Online(j) {
		return -1
	}
	if !b.sys.Net.IsNeighbor(i, j) {
		return -1
	}
	return b.sys.scorer(i, b.ID).Edge(j, b.Responder, b.k)
}

// shuffleIDs is a tiny Fisher-Yates over node IDs using the system RNG.
func shuffleIDs(rng interface{ Intn(int) int }, xs []overlay.NodeID) {
	for i := len(xs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
