package core

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"p2panon/internal/game"
	"p2panon/internal/history"
	"p2panon/internal/overlay"
	"p2panon/internal/quality"
	"p2panon/internal/telemetry"
)

// Batch is one (I, R) pair's set of recurring connections π = {π¹ … π^k}
// under a single contract — the unit over which the forwarder set, the
// routing-benefit share and the payoffs are defined.
type Batch struct {
	ID        int
	Initiator overlay.NodeID
	Responder overlay.NodeID
	Contract  Contract
	Strategy  Strategy // routing strategy used by good nodes

	sys *System

	k        int // connections completed so far
	fset     *quality.ForwarderSet
	forwards map[overlay.NodeID]int // m per forwarder
	edges    map[edge]struct{}      // union of directed edges over π¹…π^k

	newEdges   int // edges that were not present in earlier connections
	totalEdges int
	declines   int // forwarding requests declined (NULL strategy plays)

	// fixedPath is the FixedPath baseline's current source-routed relay
	// sequence (excluding endpoints); rebuilt when a member goes offline.
	fixedPath []overlay.NodeID

	// histQual counts quality-relevant history mutations of this batch:
	// recorded rows whose successor is not R (delivery rows never feed a
	// scored edge), plus any row at all when capacity eviction is active.
	// Together with the overlay and probe versions it stamps the solved
	// SPNE table below, mirroring the transport router's cache semantics:
	// a table is reused only while every input it consumed is unchanged.
	histQual uint64

	// histNodes is the set of nodes holding quality-relevant history for
	// this batch — exactly the nodes whose scorer output can depend on
	// the history version or the connection index k (everything else has
	// selectivity 0 whatever k is). A warm re-solve marks them dirty when
	// histQual or k moved instead of invalidating the whole table.
	histNodes map[overlay.NodeID]struct{}

	// spne is the batch's cached Utility Model II prescription table,
	// solved to the full MaxHops budget (rows for h ≤ budget are
	// budget-independent, so one table serves every drawn budget). Also
	// reused as the solve scratch buffer on invalidation.
	spne      [][]game.Decision
	spneStamp spneStamp

	// cands and scored are per-hop scratch buffers (candidate filter and
	// Model-I utility ranking), reused to keep the routing loop
	// allocation-free.
	cands  []overlay.NodeID
	scored []scoredCand
}

// spneStamp records the version vector a cached SPNE table was solved
// under: the overlay structural version, the probe-set estimate version,
// the batch's quality-relevant history version, and the connection index
// (irrelevant while the batch has no quality-relevant history, because
// every selectivity is then 0 whatever k is).
type spneStamp struct {
	valid bool
	net   uint64
	probe uint64
	hist  uint64
	k     int
}

// scoredCand is one Model-I candidate with its utility and edge quality.
type scoredCand struct {
	id overlay.NodeID
	u  float64
	q  float64
}

// scoredLess orders Model-I candidates: descending utility, then
// descending edge quality (the paper's tie-break), then ascending ID for
// determinism. Distinct IDs make it a strict total order.
func scoredLess(a, c scoredCand) bool {
	if a.u != c.u {
		return a.u > c.u
	}
	if a.q != c.q {
		return a.q > c.q
	}
	return a.id < c.id
}

type edge struct{ from, to overlay.NodeID }

// NewBatch registers a new batch on the system. Initiator and responder
// must be distinct existing nodes.
func (s *System) NewBatch(initiator, responder overlay.NodeID, c Contract, strat Strategy) (*Batch, error) {
	if !s.Net.Exists(initiator) || !s.Net.Exists(responder) {
		return nil, fmt.Errorf("core: unknown endpoint (I=%d, R=%d)", initiator, responder)
	}
	if initiator == responder {
		return nil, fmt.Errorf("core: initiator and responder are both node %d", initiator)
	}
	if c.Pf < 0 || c.Pr < 0 {
		return nil, fmt.Errorf("core: negative contract %+v", c)
	}
	s.batches++
	return &Batch{
		ID:        s.batches,
		Initiator: initiator,
		Responder: responder,
		Contract:  c,
		Strategy:  strat,
		sys:       s,
		fset:      quality.NewForwarderSet(),
		forwards:  make(map[overlay.NodeID]int),
		edges:     make(map[edge]struct{}),
	}, nil
}

// Connections returns the number of completed connections k.
func (b *Batch) Connections() int { return b.k }

// ForwarderSet returns the batch's union forwarder set tracker.
func (b *Batch) ForwarderSet() *quality.ForwarderSet { return b.fset }

// Forwards returns forwarder id's forwarding-instance count m.
func (b *Batch) Forwards(id overlay.NodeID) int { return b.forwards[id] }

// Declines returns how many forwarding requests were declined so far.
func (b *Batch) Declines() int { return b.declines }

// NewEdgeRate returns the empirical E[X] of Proposition 1: the fraction of
// traversed edges that were new (absent from all earlier connections of
// the batch). It returns 0 before any connection runs.
func (b *Batch) NewEdgeRate() float64 {
	if b.totalEdges == 0 {
		return 0
	}
	return float64(b.newEdges) / float64(b.totalEdges)
}

// PathResult describes one completed connection π^k.
type PathResult struct {
	Conn int // 1-based connection index within the batch
	// Nodes is the full node sequence I, f₁, …, f_m, R.
	Nodes []overlay.NodeID
	// EdgeQualities holds q for each traversed edge as evaluated by its
	// tail at selection time; the final (delivery) edge is 1.
	EdgeQualities []float64
	// NewEdges counts edges of this connection absent from all previous
	// connections of the batch (Prop. 1's X = 1 events).
	NewEdges int
	// Declined counts nodes that refused to forward during formation.
	Declined int
	// Direct reports whether the connection fell back to I→R delivery
	// with no forwarders at all.
	Direct bool
}

// HopLen returns the connection's length in edges.
func (p *PathResult) HopLen() int { return len(p.Nodes) - 1 }

// Forwarders returns the interior nodes (excluding I and R) in order,
// with duplicates when a node held the payload twice.
func (p *PathResult) Forwarders() []overlay.NodeID {
	if len(p.Nodes) <= 2 {
		return nil
	}
	return p.Nodes[1 : len(p.Nodes)-1]
}

// RunConnection forms the next connection π^{k+1} of the batch and updates
// all batch accounting. It never fails outright: if every neighbor
// declines or is offline, the initiator delivers directly to R (a
// forwarder-less connection), which models Crowds' always-available direct
// submission.
func (b *Batch) RunConnection() *PathResult {
	b.k++
	res := &PathResult{Conn: b.k}
	budget := b.sys.cfg.MinHops
	if span := b.sys.cfg.MaxHops - b.sys.cfg.MinHops; span > 0 {
		budget += b.sys.rng.Intn(span + 1)
	}

	if b.Strategy == FixedPath {
		b.runFixedPath(res, budget)
		res.Direct = len(res.Nodes) == 2
		b.fset.AddPath(res.Forwarders(), res.HopLen())
		return res
	}

	// Utility Model II: fetch the stage-game SPNE for this connection;
	// every good holder then plays its prescription. The solved table is
	// cached batch-scoped and reused while its inputs are unchanged.
	var spne [][]game.Decision
	if b.Strategy == UtilityII {
		spne = b.spneTable()
	}

	cur := b.Initiator
	pred := overlay.None
	res.Nodes = append(res.Nodes, cur)

	// route.walk covers the hop loop only; the SPNE solve above reports
	// under the solve.* phases (a cache hit costs nothing to attribute).
	walk := b.sys.Prof.Start(telemetry.PhaseRouteWalk)
	defer walk.End()

	for hop := 0; ; hop++ {
		remaining := budget - hop
		deliver := remaining <= 0
		// Crowds-coin termination (§2.2): interior holders flip p_f; the
		// initiator always forwards at least once when it can. MaxHops
		// still caps via the budget above.
		if !deliver && hop > 0 && b.sys.cfg.Termination == CrowdsCoin &&
			!b.sys.rng.Bernoulli(b.sys.cfg.ForwardProb) {
			deliver = true
		}
		var next overlay.NodeID
		var q float64
		if deliver {
			next, q = b.Responder, 1
		} else {
			next, q = b.chooseNext(cur, pred, remaining, spne, res)
		}
		b.recordHop(res, cur, pred, next, q)
		if next == b.Responder {
			break
		}
		pred, cur = cur, next
	}
	res.Direct = len(res.Nodes) == 2
	b.fset.AddPath(res.Forwarders(), res.HopLen())
	return res
}

// runFixedPath implements the FixedPath baseline: replay the stored
// source-routed path if every member is still online, otherwise pick a
// fresh random path (a reformation) and use that.
func (b *Batch) runFixedPath(res *PathResult, budget int) {
	valid := len(b.fixedPath) > 0
	for _, id := range b.fixedPath {
		if !b.sys.Net.Online(id) {
			valid = false
			break
		}
	}
	if !valid {
		b.fixedPath = b.buildSourcePath(budget)
	}
	cur := b.Initiator
	pred := overlay.None
	res.Nodes = append(res.Nodes, cur)
	sc := b.sys.scorer(b.Initiator, b.ID)
	for _, next := range b.fixedPath {
		b.recordHop(res, cur, pred, next, sc.Edge(next, b.Responder, b.k))
		pred, cur = cur, next
	}
	b.recordHop(res, cur, pred, b.Responder, 1)
}

// buildSourcePath picks `budget` distinct random online relays, excluding
// the endpoints — the initiator-knows-the-path model of [13].
func (b *Batch) buildSourcePath(budget int) []overlay.NodeID {
	var pool []overlay.NodeID
	for _, id := range b.sys.Net.OnlineIDs() {
		if id != b.Initiator && id != b.Responder {
			pool = append(pool, id)
		}
	}
	if budget > len(pool) {
		budget = len(pool)
	}
	shuffleIDs(b.sys.rng, pool)
	return append([]overlay.NodeID(nil), pool[:budget]...)
}

// chooseNext picks cur's successor for the current connection, honouring
// the holder's strategy, candidate acceptance, and the hop budget. It
// returns the responder when no forwarding candidate is available.
func (b *Batch) chooseNext(cur, pred overlay.NodeID, remaining int, spne [][]game.Decision, res *PathResult) (overlay.NodeID, float64) {
	holderIsMalicious := b.sys.Net.Node(cur).Malicious
	strat := b.Strategy
	if holderIsMalicious {
		strat = Random // adversaries route randomly, whatever the contract says
	}

	candidates := b.candidates(cur, pred)
	if len(candidates) == 0 {
		return b.Responder, 1
	}

	switch strat {
	case Random:
		// Uniform choice; skip decliners by resampling without
		// replacement. candidates is this batch's scratch buffer and is
		// not read again this hop, so the shuffle can run in place.
		shuffleIDs(b.sys.rng, candidates)
		for _, v := range candidates {
			if b.sys.accepts(v, b.Contract) {
				return v, b.sys.scorer(cur, b.ID).Edge(v, b.Responder, b.k)
			}
			res.Declined++
			b.declines++
		}
		return b.Responder, 1

	case UtilityII:
		if spne != nil && int(cur) < len(spne[remaining]) {
			d := spne[remaining][cur]
			// The SPNE table is computed over walks; refuse an immediate
			// return to the predecessor (A→B→A cycling) and fall back to
			// the local rule instead, like the candidate filter does for
			// the other strategies.
			if d.Next >= 0 && overlay.NodeID(d.Next) != pred {
				next := overlay.NodeID(d.Next)
				if next == b.Responder {
					return b.Responder, 1
				}
				if b.sys.accepts(next, b.Contract) {
					return next, b.sys.scorer(cur, b.ID).Edge(next, b.Responder, b.k)
				}
				res.Declined++
				b.declines++
				// SPNE target declined: fall through to Model I's local
				// choice among the remaining candidates.
			}
		}
		fallthrough

	default: // UtilityI
		return b.chooseUtilityI(cur, pred, candidates, res)
	}
}

// chooseUtilityI implements Model I: evaluate U(cur, v) for every
// candidate, walk them in descending utility (ties broken by higher edge
// quality, then lower ID for determinism), and return the first acceptor.
func (b *Batch) chooseUtilityI(cur, pred overlay.NodeID, candidates []overlay.NodeID, res *PathResult) (overlay.NodeID, float64) {
	sc := b.sys.scorer(cur, b.ID)
	scoredCands := b.scored[:0]
	for _, v := range candidates {
		var q float64
		if b.sys.cfg.PositionAware {
			q = sc.EdgeAt(pred, v, b.Responder, b.k)
		} else {
			q = sc.Edge(v, b.Responder, b.k)
		}
		u := b.Contract.Pf + q*b.Contract.Pr -
			(b.sys.cfg.Cost.Participation + b.sys.cfg.Cost.Transmission(int(cur), int(v)))
		scoredCands = append(scoredCands, scoredCand{id: v, u: u, q: q})
	}
	b.scored = scoredCands
	// Insertion sort on (utility desc, quality desc — the paper's
	// tie-break — then ID asc). The ordering is a strict total order, so
	// this matches what any correct sort produces, without sort.Slice's
	// closure allocation on a hot per-hop path.
	for i := 1; i < len(scoredCands); i++ {
		for j := i; j > 0 && scoredLess(scoredCands[j], scoredCands[j-1]); j-- {
			scoredCands[j], scoredCands[j-1] = scoredCands[j-1], scoredCands[j]
		}
	}
	// §5 availability-attack countermeasure: jitter the argmax across the
	// top-K candidates so an always-online adversary cannot deterministically
	// park itself on the stable path.
	if k := b.sys.cfg.TopKJitter; k > 1 && len(scoredCands) > 1 {
		if k > len(scoredCands) {
			k = len(scoredCands)
		}
		pick := b.sys.rng.Intn(k)
		scoredCands[0], scoredCands[pick] = scoredCands[pick], scoredCands[0]
	}
	for _, s := range scoredCands {
		if b.sys.accepts(s.id, b.Contract) {
			return s.id, s.q
		}
		res.Declined++
		b.declines++
	}
	return b.Responder, 1
}

// candidates returns cur's viable forwarding candidates: online neighbors
// other than the immediate predecessor, the responder and the initiator.
// (R is reached by explicit delivery; routing back through I would reveal
// nothing useful and unbalance the length normalisation.)
// The returned slice is the batch's reusable scratch buffer: it is valid
// only until the next candidates call.
func (b *Batch) candidates(cur, pred overlay.NodeID) []overlay.NodeID {
	// Time-only bracket: this runs once per hop and the body is O(d), so
	// the full alloc-sampling bracket would dwarf what it measures.
	ph := b.sys.Prof.StartTimer(telemetry.PhaseOverlayCandidates)
	defer ph.End()
	out := b.cands[:0]
	for _, v := range b.sys.Net.Node(cur).Neighbors {
		if v == pred || v == b.Responder || v == b.Initiator || v == cur {
			continue
		}
		if !b.sys.Net.Online(v) {
			continue
		}
		out = append(out, v)
	}
	b.cands = out
	return out
}

// recordHop updates history, forwarding counts and edge bookkeeping for
// the traversal cur→next.
func (b *Batch) recordHop(res *PathResult, cur, pred, next overlay.NodeID, q float64) {
	res.Nodes = append(res.Nodes, next)
	res.EdgeQualities = append(res.EdgeQualities, q)

	// History: every node on the path (including I) records the hop it
	// routed, keyed by this connection, with its predecessor for position
	// disambiguation (§2.3, Table 1).
	b.sys.Hist.For(cur, b.ID).Record(history.ConnID(b.k), pred, next)
	// A row with successor R never feeds a scored edge (candidates exclude
	// R and the delivery edge is fixed at 1), so it leaves cached SPNE
	// qualities exact — unless capacity eviction is on, when recording it
	// can push a quality-relevant row out.
	if next != b.Responder || b.sys.cfg.HistoryCapacity > 0 {
		b.histQual++
		if b.histNodes == nil {
			b.histNodes = make(map[overlay.NodeID]struct{})
		}
		b.histNodes[cur] = struct{}{}
	}

	// Forwarding instances are credited to interior nodes only.
	if cur != b.Initiator {
		b.forwards[cur]++
	}

	e := edge{cur, next}
	b.totalEdges++
	if _, seen := b.edges[e]; !seen {
		// Only edges encountered in *earlier* connections count as old;
		// an edge first seen earlier in this same connection is still new
		// exactly once.
		res.NewEdges++
		b.newEdges++
		b.edges[e] = struct{}{}
	}
}

// spneTable returns the SPNE prescription table for the current
// connection, reusing the batch's cached solve when every input it
// consumed — overlay topology, probe estimates, this batch's
// quality-relevant history and (when history matters) the connection
// index — is unchanged. An invalidated table is first offered to the
// incremental re-solver, which patches only what the recorded changes
// can reach; when that cannot run (journal gap, population change,
// oversized dirty set, scratch owned by another batch) the previous
// table is recycled as scratch for a full solve.
func (b *Batch) spneTable() [][]game.Decision {
	netV, probeV := b.sys.Net.Version(), b.sys.Probes.Version()
	st := b.spneStamp
	if st.valid && st.net == netV && st.probe == probeV && st.hist == b.histQual &&
		(b.histQual == 0 || st.k == b.k) {
		return b.spne
	}
	if st.valid && !b.sys.forceDense {
		if b.resolveIncremental(st, netV, probeV) {
			b.sys.mIncHit.Inc()
			b.spneStamp = spneStamp{valid: true, net: netV, probe: probeV, hist: b.histQual, k: b.k}
			return b.spne
		}
		// A valid solve existed but could not be patched: count the miss
		// (first-time solves never reach here).
		b.sys.mIncMiss.Inc()
		b.sys.solverStats.Fallbacks++
	}
	b.spne = b.solveStageGame(b.spne)
	b.spneStamp = spneStamp{valid: true, net: netV, probe: probeV, hist: b.histQual, k: b.k}
	return b.spne
}

// solveStageGame builds and solves the L-stage path game for Utility Model
// II over the current online overlay: vertices are all node IDs (offline
// ones get no outgoing edges), each online node i has edges to its online
// neighbors with q from i's own scorer, and every online node has the
// delivery edge (i, R) with quality 1.
//
// The game is neighbor-local — a node only ever scores its candidate set
// D(s) of size ≤ d — so the edge qualities are materialised as sparse
// per-node candidate rows (O(N·d) memory and scorer calls) rather than
// the dense n×n matrix earlier revisions used, which walled the engine
// off around N ≈ 10⁴. Candidate rows are sorted ascending, so the sparse
// induction visits successors in exactly the order the dense scan did and
// every epsilon tie-break lands identically. The game is solved to the
// full configured MaxHops so the table serves any drawn per-connection
// budget (rows for h ≤ budget are identical either way — backward
// induction fills bottom-up).
func (b *Batch) solveStageGame(scratch [][]game.Decision) [][]game.Decision {
	n := b.sys.Net.Len()
	g := &game.PathGame{
		Nodes:     n,
		Responder: int(b.Responder),
		Pf:        b.Contract.Pf,
		Pr:        b.Contract.Pr,
		Cost:      b.sys.cfg.Cost,
		MaxHops:   b.sys.cfg.MaxHops,
		Workers:   b.sys.cfg.SolveWorkers,
	}
	s := b.sys
	if s.forceDense {
		// Retained dense oracle (equivalence tests): O(n²) scan via the
		// map-free closure, same scorer-creation order as the sparse
		// prefetch (ascending i), so RNG streams stay aligned. The dense
		// solver also runs no frontier or fixed-point shortcut — it is
		// the reference everything else is pinned bit-identical against.
		g.EdgeQuality = func(i, j int) float64 {
			return b.stageEdgeQuality(overlay.NodeID(i), overlay.NodeID(j))
		}
		g.Workers = 0
		g.Stats = &s.lastSolve
		s.solveOwner = 0 // dense solves leave no reusable sparse rows
		ps := s.Prof.Start(telemetry.PhaseSolveInduction)
		table := g.SolveInto(scratch)
		ps.End()
		s.noteSolve(&s.lastSolve)
		return table
	}
	pr := s.Prof.Start(telemetry.PhaseSolveRows)
	row, rowLen, succ, qual := b.buildSparseRows(n)
	pr.End()
	g.Adjacency = func(i int) ([]int32, []float64) {
		lo, m := row[i], rowLen[i]
		return succ[lo : lo+m], qual[lo : lo+m]
	}
	s.buildReverse(n)
	prow, pred := s.solvePredRow, s.solvePred
	g.Predecessors = func(j int32) []int32 { return pred[prow[j]:prow[j+1]] }
	g.Stats = &s.lastSolve
	g.Scratch = &s.solveSweep
	if g.Workers > 1 {
		g.Pool = s.sweepPool()
	}
	ps := s.Prof.Start(telemetry.PhaseSolveInduction)
	table := g.SolveInto(scratch)
	ps.End()
	// Record what the warm re-solver needs to pick this solve up: whose
	// rows the scratch holds, over how many nodes, and from which stage
	// the table rows are pairwise identical.
	s.solveOwner, s.solveN, s.solveConverged = b.ID, n, s.lastSolve.Converged
	s.noteSolve(&s.lastSolve)
	return table
}

// resolveIncremental attempts a warm re-solve of the batch's cached
// table in place: it asks the overlay and probe journals exactly what
// changed since the stamped versions, expands those changes into the set
// of candidate rows that can feel them, refreshes those rows, and lets
// game.ResolveInto propagate the rows whose contents actually moved
// through the reverse CSR. Returns false — leaving the caller to run a
// full solve — when any precondition fails:
//
//   - the sparse scratch describes another batch's solve or a different
//     population size (any Join changes Net.Len);
//   - a journal cannot cover the span (overlay.Touch wildcard, probe
//     TickAll round, or eviction of old entries);
//   - the dirty set exceeds half the population, where refreshing rows
//     one by one loses to the sequential full rebuild;
//   - a dirty node's neighbor list outgrew its slot span (neighbor
//     repair), so its row no longer fits without recomputing offsets.
//
// Every bail-out happens before the first scorer prefetch, so the RNG
// split sequence (estimator creation) is identical whether an event is
// handled incrementally or by a full solve — the bit-equivalence suite
// depends on that.
func (b *Batch) resolveIncremental(st spneStamp, netV, probeV uint64) bool {
	s := b.sys
	n := s.Net.Len()
	if s.solveOwner != b.ID || s.solveN != n {
		return false
	}
	if len(b.spne) != s.cfg.MaxHops+1 || len(b.spne[0]) != n {
		return false
	}
	ph := s.Prof.Start(telemetry.PhaseSolveIncremental)
	defer ph.End()
	buf, ok := s.Net.ChangesSince(st.net, s.dirtyNodes[:0])
	s.dirtyNodes = buf
	if !ok {
		return false
	}
	netEnd := len(buf)
	buf, ok = s.Probes.ChangesSince(st.probe, buf)
	s.dirtyNodes = buf
	if !ok {
		return false
	}
	histMoved := st.hist != b.histQual || (b.histQual != 0 && st.k != b.k)

	// Rebuild the reverse CSR from the current neighbor lists — needed
	// both to expand lifecycle changes into the rows that can see them
	// and for the frontier propagation inside ResolveInto.
	s.buildReverse(n)
	prow, pred := s.solvePredRow, s.solvePred

	if cap(s.dirtyMark) < n {
		s.dirtyMark = make([]bool, n)
	}
	mark := s.dirtyMark[:n]
	list := s.dirtyList[:0]
	add := func(x int32) {
		if !mark[x] {
			mark[x] = true
			list = append(list, x)
		}
	}
	// A lifecycle change of x rewrites x's own row and every row listing
	// x (x appears or vanishes as a candidate); a neighbor edit or probe
	// tick of x rewrites x's row only; history/k movement rewrites the
	// rows of every node holding quality-relevant history for the batch.
	for _, id := range buf[:netEnd] {
		add(int32(id))
		for _, p := range pred[prow[id]:prow[id+1]] {
			add(p)
		}
	}
	for _, id := range buf[netEnd:] {
		add(int32(id))
	}
	if histMoved {
		for id := range b.histNodes {
			add(int32(id))
		}
	}
	for _, x := range list {
		mark[x] = false
	}
	s.dirtyList = list
	if len(list)*2 > n {
		return false
	}
	// Conservative fit check before any row is touched: a row can only
	// have outgrown its span if its raw neighbor list did.
	row, rowLen := s.solveRow[:n+1], s.solveLen[:n]
	for _, x := range list {
		id := overlay.NodeID(x)
		if id == b.Responder || !s.Net.Online(id) {
			continue
		}
		if len(s.Net.Node(id).Neighbors)+1 > int(row[x+1]-row[x]) {
			return false
		}
	}
	// Ascending refresh order, for two reasons: a node missing its probe
	// estimator consumes an RNG split at scorer prefetch, and ascending
	// IDs is the order every full solve creates them in — transcripts
	// must not depend on which solve flavor handled an event. It also
	// neutralises the map iteration order of histNodes above.
	slices.Sort(list)
	seeds := list[:0]
	for _, x := range list {
		if b.refreshRow(int(x)) {
			seeds = append(seeds, x)
		}
	}
	succ, qual := s.solveSucc, s.solveQual
	g := &game.PathGame{
		Nodes:     n,
		Responder: int(b.Responder),
		Pf:        b.Contract.Pf,
		Pr:        b.Contract.Pr,
		Cost:      s.cfg.Cost,
		MaxHops:   s.cfg.MaxHops,
		Workers:   s.cfg.SolveWorkers,
		Adjacency: func(i int) ([]int32, []float64) {
			lo, m := row[i], rowLen[i]
			return succ[lo : lo+m], qual[lo : lo+m]
		},
		Predecessors: func(j int32) []int32 { return pred[prow[j]:prow[j+1]] },
		Stats:        &s.lastSolve,
		Scratch:      &s.solveSweep,
	}
	if g.Workers > 1 {
		g.Pool = s.sweepPool()
	}
	g.ResolveInto(b.spne, seeds, s.solveConverged)
	s.solveConverged = s.lastSolve.Converged
	s.noteSolve(&s.lastSolve)
	return true
}

// refreshRow recomputes node i's candidate row in place against the
// current overlay/probe/history state, exactly as buildSparseRows' fill
// would, and reports whether the row's contents actually changed (full
// bit comparison — an unchanged row must not seed the frontier). The
// caller has already verified the new candidates fit the row's span.
func (b *Batch) refreshRow(i int) (changed bool) {
	s := b.sys
	lo := int(s.solveRow[i])
	oldLen := int(s.solveLen[i])
	id := overlay.NodeID(i)
	if id == b.Responder || !s.Net.Online(id) {
		s.solveScorers[i] = nil
		s.solveLen[i] = 0
		return oldLen != 0
	}
	neigh := s.Net.Node(id).Neighbors
	want := len(neigh) + 1
	if cap(s.refreshSucc) < want {
		s.refreshSucc = make([]int32, want)
		s.refreshQual = make([]float64, want)
	}
	cands := s.refreshSucc[:want]
	m := 0
	for _, v := range neigh {
		if v == id || v == b.Responder || v == b.Initiator || !s.Net.Online(v) {
			continue
		}
		cands[m] = int32(v)
		m++
	}
	cands[m] = int32(b.Responder) // delivery edge, last-edge rule
	m++
	for a := 1; a < m; a++ {
		for j := a; j > 0 && cands[j] < cands[j-1]; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	w := 1
	for a := 1; a < m; a++ {
		if cands[a] != cands[a-1] {
			cands[w] = cands[a]
			w++
		}
	}
	m = w
	sc := s.scorer(id, b.ID)
	s.solveScorers[i] = sc
	quals := s.refreshQual[:m]
	for a := 0; a < m; a++ {
		quals[a] = sc.Edge(overlay.NodeID(cands[a]), b.Responder, b.k)
	}
	oldS := s.solveSucc[lo : lo+oldLen]
	oldQ := s.solveQual[lo : lo+oldLen]
	changed = m != oldLen
	if !changed {
		for a := 0; a < m; a++ {
			if cands[a] != oldS[a] || math.Float64bits(quals[a]) != math.Float64bits(oldQ[a]) {
				changed = true
				break
			}
		}
	}
	if changed {
		copy(s.solveSucc[lo:lo+m], cands[:m])
		copy(s.solveQual[lo:lo+m], quals)
		s.solveLen[i] = int32(m)
	}
	return changed
}

// buildSparseRows materialises the stage game's sparse adjacency into the
// system's reusable CSR-with-slack scratch and returns its views. Two
// passes:
//
//  1. A sequential prefetch over ascending node IDs computes each node's
//     slot offset and creates every lazily-built input — scorers, and
//     through them probe estimators, whose construction consumes RNG
//     stream splits. Creation order is exactly the order the dense build
//     used, so transcripts stay byte-identical.
//  2. A row fill — shardable over contiguous node regions when
//     Config.SolveWorkers > 1, since it consumes no randomness, reads
//     only overlay/probe/history state and writes disjoint slot ranges —
//     gathers each node's eligible successors, sorts them ascending,
//     deduplicates and scores them with the node's own scorer.
func (b *Batch) buildSparseRows(n int) (row, rowLen []int32, succ []int32, qual []float64) {
	s := b.sys
	if cap(s.solveRow) < n+1 {
		s.solveRow = make([]int32, n+1)
	}
	row = s.solveRow[:n+1]
	slots := 0
	for i := 0; i < n; i++ {
		row[i] = int32(slots)
		id := overlay.NodeID(i)
		if id == b.Responder || !s.Net.Online(id) {
			continue
		}
		// Upper bound: every neighbor plus the delivery edge to R.
		slots += len(s.Net.Node(id).Neighbors) + 1
	}
	row[n] = int32(slots)
	s.solveScratch(n, slots)
	rowLen = s.solveLen[:n]
	succ = s.solveSucc[:slots]
	qual = s.solveQual[:slots]
	scorers := s.solveScorers[:n]
	for i := 0; i < n; i++ {
		id := overlay.NodeID(i)
		if id == b.Responder || !s.Net.Online(id) {
			scorers[i] = nil
			continue
		}
		scorers[i] = s.scorer(id, b.ID)
	}

	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sc := scorers[i]
			if sc == nil {
				rowLen[i] = 0
				continue
			}
			id := overlay.NodeID(i)
			cands := succ[row[i]:row[i+1]]
			m := 0
			for _, v := range s.Net.Node(id).Neighbors {
				if v == id || v == b.Responder || v == b.Initiator || !s.Net.Online(v) {
					continue
				}
				cands[m] = int32(v)
				m++
			}
			cands[m] = int32(b.Responder) // delivery edge, last-edge rule
			m++
			// Insertion sort ascending (m ≤ d+1): the induction must visit
			// candidates in the dense scan's order for tie-break identity.
			for a := 1; a < m; a++ {
				for j := a; j > 0 && cands[j] < cands[j-1]; j-- {
					cands[j], cands[j-1] = cands[j-1], cands[j]
				}
			}
			// Deduplicate (defensive: neighbor lists should be duplicate
			// free, but a repeated candidate must not be visited twice).
			w := 1
			for a := 1; a < m; a++ {
				if cands[a] != cands[a-1] {
					cands[w] = cands[a]
					w++
				}
			}
			m = w
			qrow := qual[row[i]:row[i+1]]
			for a := 0; a < m; a++ {
				// Edge returns the literal 1 for v == R, matching the
				// dense build's explicit delivery entry.
				qrow[a] = sc.Edge(overlay.NodeID(cands[a]), b.Responder, b.k)
			}
			rowLen[i] = int32(m)
		}
	}
	workers := s.cfg.SolveWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fill(0, n)
		return row, rowLen, succ, qual
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fill(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return row, rowLen, succ, qual
}

// stageEdgeQuality returns q(i, j) for the stage game, or -1 when the edge
// does not exist.
func (b *Batch) stageEdgeQuality(i, j overlay.NodeID) float64 {
	if i == j {
		return -1
	}
	if !b.sys.Net.Online(i) || i == b.Responder {
		return -1
	}
	if j == b.Responder {
		return 1 // delivery edge, last-edge rule
	}
	if j == b.Initiator || !b.sys.Net.Online(j) {
		return -1
	}
	if !b.sys.Net.IsNeighbor(i, j) {
		return -1
	}
	return b.sys.scorer(i, b.ID).Edge(j, b.Responder, b.k)
}

// shuffleIDs is a tiny Fisher-Yates over node IDs using the system RNG.
func shuffleIDs(rng interface{ Intn(int) int }, xs []overlay.NodeID) {
	for i := len(xs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
