// Package core implements the paper's primary contribution: incentive-driven
// forwarding and routing for a P2P anonymity overlay.
//
// An initiator I that wants a batch π of k recurring connections to a
// responder R publishes a Contract: a forwarding benefit P_f paid per
// forwarding instance and a routing benefit P_r shared by the whole
// forwarder set. Forwarders pick successors to maximise their utility:
//
//	Model I  (edge-local):    U_i(j) = P_f + q(i,j)·P_r − (C^p_i + C^t(i,j))
//	Model II (path-lookahead): U_i(j) = P_f + q(π(i,j,R))·P_r − (C^p_i + C^t(i,j))
//
// with edge quality q combining history selectivity and probed
// availability (quality package) and Model II's path quality derived from
// the SPNE of the L-stage path game (game package). The package tracks
// forwarder sets, forwarding counts, reformation statistics and payoffs —
// everything the paper's evaluation (§3) measures.
package core

import (
	"fmt"

	"p2panon/internal/dist"
	"p2panon/internal/game"
	"p2panon/internal/history"
	"p2panon/internal/overlay"
	"p2panon/internal/probe"
	"p2panon/internal/quality"
	"p2panon/internal/telemetry"
)

// Strategy selects how a (good) node routes. Malicious nodes always route
// randomly regardless of the configured strategy, per the paper's
// adversary model.
type Strategy uint8

const (
	// Random routing: uniform choice among candidates (the baseline and
	// the adversary behaviour).
	Random Strategy = iota
	// UtilityI is edge-local utility maximisation (Utility Model I).
	UtilityI
	// UtilityII is path-lookahead utility maximisation via the SPNE of
	// the stage game (Utility Model II).
	UtilityII
	// FixedPath is the Figueiredo-Shapiro-Towsley [13] style baseline the
	// paper's related work discusses: the initiator source-routes one
	// fixed path and reuses it for every connection of the batch,
	// re-forming (randomly) only when a path member goes offline. It
	// requires the initiator to know the intermediate nodes — the
	// limitation the paper's mechanism removes.
	FixedPath
)

// String returns the strategy name as used in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case Random:
		return "random"
	case UtilityI:
		return "utility-I"
	case UtilityII:
		return "utility-II"
	case FixedPath:
		return "fixed-path"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Termination selects how a connection decides to stop forwarding and
// deliver to R. The paper notes "both Crowds like probabilistic forwarding
// and hop-distance based forwarding are applicable to our model" (§2.2);
// both are implemented.
type Termination uint8

const (
	// HopBudget draws a per-connection hop budget in [MinHops, MaxHops]
	// and delivers when it is exhausted. Because every strategy shares
	// the drawn budget, forwarder-set comparisons are length-normalised.
	HopBudget Termination = iota
	// CrowdsCoin flips a coin at every interior hop: with probability
	// ForwardProb the payload is forwarded, otherwise it is delivered to
	// R (Crowds' p_f rule). MaxHops still caps runaway paths.
	CrowdsCoin
)

// String returns the termination-mode name.
func (t Termination) String() string {
	switch t {
	case HopBudget:
		return "hop-budget"
	case CrowdsCoin:
		return "crowds-coin"
	default:
		return fmt.Sprintf("Termination(%d)", uint8(t))
	}
}

// Contract is the initiator's published payment commitment for one batch.
type Contract struct {
	Pf float64 // forwarding benefit per forwarding instance
	Pr float64 // routing benefit shared by the forwarder set
}

// Tau returns τ = P_r / P_f, the ratio the paper sweeps in Table 2.
func (c Contract) Tau() float64 {
	if c.Pf == 0 {
		return 0
	}
	return c.Pr / c.Pf
}

// ContractWithTau builds a contract from a forwarding benefit and τ.
func ContractWithTau(pf, tau float64) Contract {
	return Contract{Pf: pf, Pr: tau * pf}
}

// Config holds the routing-mechanism parameters shared by all batches.
type Config struct {
	// Weights are the (w_s, w_a) edge-quality weights; the paper's
	// experiments use 0.5/0.5.
	Weights quality.Weights
	// Cost is the peer cost model (C^p, C^t).
	Cost game.CostModel
	// MinHops and MaxHops bound the per-connection hop budget: each
	// connection draws a budget uniformly in [MinHops, MaxHops], and the
	// holder delivers to R when it is exhausted. All strategies share the
	// drawn budget so forwarder-set comparisons are length-normalised, as
	// the paper's Q(π) = L/‖π‖ metric intends.
	MinHops, MaxHops int
	// Termination selects hop-budget or Crowds-coin delivery (§2.2).
	Termination Termination
	// ForwardProb is Crowds' p_f, used when Termination is CrowdsCoin.
	ForwardProb float64
	// HistoryCapacity bounds per-node history profiles (0 = unlimited).
	HistoryCapacity int
	// Participation gates whether a good node accepts a forwarding
	// request. When true (the default behaviour), a node declines unless
	// Prop. 3's condition P_f > C^p + C^t holds for it. Malicious nodes
	// always accept.
	Participation bool
	// PositionAware switches Utility Model I's selectivity to the
	// predecessor-differentiated form of §2.3: a node occupying two
	// positions on the same recurring path scores each position's
	// outgoing edges from its own history rows only. (Model II's stage
	// game is position-free by construction.)
	PositionAware bool
	// TopKJitter is the §5 availability-attack countermeasure: instead of
	// deterministically playing the argmax neighbor, a Model-I forwarder
	// picks uniformly among its top-K utility candidates. K = 0 or 1 is
	// the paper's pure argmax; K > 1 trades a slightly larger forwarder
	// set for unpredictability an always-online adversary cannot park on.
	TopKJitter int
	// SolveWorkers shards the Utility Model II solve — the sparse
	// quality-row build and each backward-induction stage — over
	// contiguous node regions, and is mirrored into probe ticking by the
	// experiment harness. The sharded phases consume no randomness and
	// write disjoint rows (all lazy RNG-consuming state is prefetched
	// sequentially in ascending node order first), so transcripts are
	// byte-identical whatever the value. 0 or 1 runs serially.
	SolveWorkers int
}

// DefaultConfig returns the paper's experimental configuration.
func DefaultConfig() Config {
	return Config{
		Weights: quality.DefaultWeights(),
		Cost:    game.UniformCost(5, 2),
		MinHops: 2,
		MaxHops: 6,
		// History is unbounded within a batch: k ≤ 20 connections.
		HistoryCapacity: 0,
		Participation:   true,
	}
}

func (c Config) validate() error {
	if err := c.Weights.Validate(); err != nil {
		return err
	}
	if c.MinHops < 1 || c.MaxHops < c.MinHops {
		return fmt.Errorf("core: hop bounds [%d, %d]", c.MinHops, c.MaxHops)
	}
	if c.Termination == CrowdsCoin && (c.ForwardProb <= 0 || c.ForwardProb >= 1) {
		return fmt.Errorf("core: Crowds forward probability %g outside (0, 1)", c.ForwardProb)
	}
	if c.HistoryCapacity < 0 {
		return fmt.Errorf("core: history capacity %d", c.HistoryCapacity)
	}
	if c.TopKJitter < 0 {
		return fmt.Errorf("core: top-K jitter %d", c.TopKJitter)
	}
	if c.SolveWorkers < 0 {
		return fmt.Errorf("core: solve workers %d", c.SolveWorkers)
	}
	return nil
}

// System ties together the overlay, the per-node probing estimators and
// the per-(node, batch) history profiles, and stamps out batches.
type System struct {
	Net    *overlay.Network
	Probes *probe.Set
	Hist   *history.Store

	// Prof, when non-nil, receives per-phase wall-time and allocation
	// brackets from the routing loop (telemetry phase taxonomy: the
	// solve.* pair, overlay.candidates and route.walk). Nil costs one
	// branch per bracket site; it never affects routing decisions or
	// randomness, so transcripts are identical with or without it.
	Prof *telemetry.PhaseProfiler

	cfg     Config
	rng     *dist.Source
	batches int

	// scorers caches the per-(node, batch) edge-quality scorer: the
	// routing loop asks for one per hop, and allocating each time was a
	// measurable share of the per-connection cost. Entries are validated
	// against the live profile/estimator pointers, so a dropped batch
	// (history.Store.DropBatch) or freshly minted estimator rebuilds.
	scorers map[scorerKey]*quality.Scorer

	// minCt memoises minTransmission per node; the whole memo is keyed to
	// the overlay's structural version, so any churn or neighbor edit
	// invalidates it exactly.
	minCt        map[overlay.NodeID]float64
	minCtVersion uint64

	// Sparse solve scratch for Utility Model II stage games, reused
	// across solves (the simulator is single-threaded per System; solve
	// workers only ever read it or write disjoint row ranges). The layout
	// is CSR with slack: node i's candidate slots are
	// solveSucc[solveRow[i]:solveRow[i+1]] — sized from its neighbor-list
	// upper bound so offsets are computable before filtering — of which
	// the first solveLen[i] are live (sorted ascending, deduplicated),
	// with parallel qualities in solveQual. Working memory is O(n·d); the
	// dense n×n float slab this replaces was the memory wall that capped
	// the engine near N ≈ 10⁴.
	solveRow  []int32
	solveLen  []int32
	solveSucc []int32
	solveQual []float64
	// solveScorers holds the per-solve prefetched scorers (nil for
	// offline nodes and the responder) so the row fill is free of map
	// access and safe to shard.
	solveScorers []*quality.Scorer

	// Reverse (predecessor) CSR over the raw neighbor lists, rebuilt on
	// every sparse solve: the vertices that may list j in their candidate
	// rows are solvePred[solvePredRow[j]:solvePredRow[j+1]]. Built from
	// Neighbors unconditionally (offline and departed sources included),
	// it over-approximates the game's true reverse adjacency — which is
	// safe for frontier propagation (an extra predecessor is a recompute
	// that finds its cell unchanged) and keeps a node that flaps back
	// online covered without patching. Rebuilding per solve costs O(n·d)
	// integer work and removes any journal of edge-level changes: rows
	// whose forward adjacency drifted are in the dirty set anyway.
	solvePredRow []int32
	solvePred    []int32

	// solveSweep and pool are the frontier solver's work buffers and its
	// persistent sweep workers (lazily created at cfg.SolveWorkers width).
	solveSweep game.SweepScratch
	pool       *game.Pool

	// Warm-solve bookkeeping: the batch whose solve the CSR rows (and the
	// Converged bound) currently describe, the node count it was built
	// over, and the first stage from which that solve's table rows are
	// pairwise identical. A warm re-solve is only attempted when the same
	// batch solved last over the same population; anything else falls
	// back to a full solve.
	solveOwner     int
	solveN         int
	solveConverged int

	// Dirty-set assembly buffers for warm re-solves.
	dirtyNodes  []overlay.NodeID
	dirtyMark   []bool
	dirtyList   []int32
	refreshSucc []int32
	refreshQual []float64

	// lastSolve receives per-solve statistics from the game solver;
	// solverStats accumulates them system-wide.
	lastSolve   game.SolveStats
	solverStats SolverStats

	// Solve telemetry; nil (no-op) until Instrument binds them.
	mStagesSkipped *telemetry.Counter
	mFrontier      *telemetry.Gauge
	mIncHit        *telemetry.Counter
	mIncMiss       *telemetry.Counter

	// forceDense routes solveStageGame through the retained dense
	// EdgeQuality oracle instead of the sparse adjacency path. Test-only:
	// the sparse-vs-dense equivalence suite uses it to prove the two
	// formulations produce bit-identical tables and payoffs.
	forceDense bool
}

// SolverStats accumulates what the Utility Model II solver did across a
// System's lifetime, mirroring the solve_* telemetry for callers without
// a registry (anonsim's phase report).
type SolverStats struct {
	// Solves counts stage-game solves of any kind (cold, warm, dense).
	Solves int
	// Incremental counts warm re-solves that succeeded.
	Incremental int
	// Fallbacks counts invalidations that held a valid previous solve but
	// could not re-solve incrementally (journal gap, population change,
	// oversized dirty set) and ran a full solve instead.
	Fallbacks int
	// StagesSkipped totals induction stages satisfied by the fixed-point
	// exit instead of a sweep.
	StagesSkipped int
	// FrontierCells totals cells recomputed by frontier sweeps.
	FrontierCells int
}

// SolverStats returns the accumulated solve counters.
func (s *System) SolverStats() SolverStats { return s.solverStats }

// Solve metric names (see System.Instrument).
const (
	metricSolveStagesSkipped = "solve_induction_stages_skipped"
	metricSolveFrontierSize  = "solve_frontier_size"
	metricSolveIncremental   = "solve_incremental_total"
)

// Instrument binds the solver's telemetry into reg: the fixed-point
// stage-skip counter, a gauge holding the last solve's frontier size
// (total cells recomputed by frontier sweeps; 0 for a full solve), and
// the warm re-solve hit/miss counters. A miss is counted only when a
// valid cached solve existed but could not be reused incrementally —
// first-time solves and plain stamp hits touch neither counter.
func (s *System) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Help(metricSolveStagesSkipped, "backward-induction stages satisfied by the fixed-point exit instead of a sweep")
	reg.Help(metricSolveFrontierSize, "cells recomputed by the last solve's frontier sweeps (0 = full sweeps)")
	reg.Help(metricSolveIncremental, "warm SPNE re-solve attempts by result (hit = incremental, miss = fell back to a full solve)")
	s.mStagesSkipped = reg.Counter(metricSolveStagesSkipped, nil)
	s.mFrontier = reg.Gauge(metricSolveFrontierSize, nil)
	s.mIncHit = reg.Counter(metricSolveIncremental, telemetry.Labels{"result": "hit"})
	s.mIncMiss = reg.Counter(metricSolveIncremental, telemetry.Labels{"result": "miss"})
}

// noteSolve folds one solve's statistics into the counters. incremental
// reports whether the solve was a successful warm re-solve.
func (s *System) noteSolve(st *game.SolveStats) {
	s.solverStats.Solves++
	if st.Incremental {
		s.solverStats.Incremental++
	}
	s.solverStats.StagesSkipped += st.StagesSkipped
	s.solverStats.FrontierCells += st.FrontierCells
	s.mStagesSkipped.Add(int64(st.StagesSkipped))
	s.mFrontier.Set(int64(st.FrontierCells))
}

type scorerKey struct {
	node  overlay.NodeID
	batch int
}

// NewSystem constructs a routing system over an existing overlay. Probing
// must be driven by the caller (probe.Set.Attach or TickAll); the system
// only consumes the estimates.
func NewSystem(cfg Config, net *overlay.Network, probes *probe.Set, rng *dist.Source) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if net == nil || probes == nil || rng == nil {
		return nil, fmt.Errorf("core: nil dependency (net=%v probes=%v rng=%v)", net == nil, probes == nil, rng == nil)
	}
	return &System{
		Net:     net,
		Probes:  probes,
		Hist:    history.NewStore(cfg.HistoryCapacity),
		cfg:     cfg,
		rng:     rng,
		scorers: make(map[scorerKey]*quality.Scorer),
		minCt:   make(map[overlay.NodeID]float64),
	}, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// scorer returns node's edge-quality scorer for the given batch, cached
// per (node, batch). The cached entry is revalidated against the current
// profile and estimator pointers — both are stable for a live batch, and
// a mismatch (e.g. after Batch.Close dropped the profiles, or the node's
// first recorded row materialising its profile) rebuilds. The profile is
// Peeked, not created: a node that never forwarded scores with a nil
// profile (selectivity 0, exactly what an empty profile yields), so a
// scale-frontier solve does not allocate index maps for every node it
// merely scores.
func (s *System) scorer(node overlay.NodeID, batch int) *quality.Scorer {
	h := s.Hist.Peek(node, batch)
	p := s.Probes.For(node)
	key := scorerKey{node, batch}
	if sc, ok := s.scorers[key]; ok && sc.History == h && sc.Probe == p {
		return sc
	}
	sc := quality.NewScorer(s.cfg.Weights, h, p)
	s.scorers[key] = sc
	return sc
}

// accepts reports whether node agrees to forward under contract c: good
// nodes apply Prop. 3's participation condition P_f > C^p + C^t(node→next
// best guess ≈ uniform cost); malicious nodes always accept.
func (s *System) accepts(node overlay.NodeID, c Contract) bool {
	if s.Net.Node(node).Malicious {
		return true
	}
	if !s.cfg.Participation {
		return true
	}
	// Use the node's cheapest outgoing link as C^t: a rational node that
	// participates will forward on its cheapest acceptable link.
	minCt := s.minTransmission(node)
	return game.ForwardingDominant(c.Pf, s.cfg.Cost.Participation, minCt)
}

// minTransmission returns the minimum C^t over node's online neighbors
// (or 0 when it has none — delivery to R is then its only move). The
// result is memoised per node against the overlay's structural version:
// participation checks run once per candidate per hop, and between churn
// events the answer cannot change.
func (s *System) minTransmission(node overlay.NodeID) float64 {
	if v := s.Net.Version(); v != s.minCtVersion {
		clear(s.minCt)
		s.minCtVersion = v
	}
	if ct, ok := s.minCt[node]; ok {
		return ct
	}
	min := -1.0
	for _, v := range s.Net.Node(node).Neighbors {
		if !s.Net.Online(v) {
			continue
		}
		ct := s.cfg.Cost.Transmission(int(node), int(v))
		if min < 0 || ct < min {
			min = ct
		}
	}
	if min < 0 {
		min = 0
	}
	s.minCt[node] = min
	return min
}

// Solve-scratch shrink policy: when the slot demand of a solve falls
// below cap/solveShrinkDenom of a non-trivial retained buffer (mass
// departures, or interleaved batches over overlays of very different
// size), the scratch is reallocated at the exact demand instead of
// pinning the high-water mark for the process lifetime.
const (
	solveShrinkDenom = 4
	solveShrinkMin   = 4096
)

// solveScratch sizes the reusable sparse-solve buffers for a solve over n
// nodes needing `slots` candidate slots, applying the shrink policy
// above. solveRow is NOT touched — callers fill it while computing slots.
func (s *System) solveScratch(n, slots int) {
	if c := cap(s.solveSucc); c > solveShrinkMin && slots < c/solveShrinkDenom {
		s.solveSucc, s.solveQual = nil, nil
	}
	if cap(s.solveSucc) < slots {
		s.solveSucc = make([]int32, slots)
		s.solveQual = make([]float64, slots)
	}
	if cap(s.solveLen) < n {
		s.solveLen = make([]int32, n)
	}
	if cap(s.solveScorers) < n {
		s.solveScorers = make([]*quality.Scorer, n)
	}
}

// releaseSolveScratch drops the sparse-solve buffers entirely. Called on
// Batch.Close so a settled large run does not pin its scratch; the next
// solve rebuilds at the size it actually needs.
func (s *System) releaseSolveScratch() {
	s.solveRow, s.solveLen, s.solveSucc, s.solveQual, s.solveScorers = nil, nil, nil, nil, nil
	s.solvePredRow, s.solvePred = nil, nil
	s.solveSweep = game.SweepScratch{}
	s.dirtyNodes, s.dirtyMark, s.dirtyList = nil, nil, nil
	s.refreshSucc, s.refreshQual = nil, nil
	s.solveOwner, s.solveN, s.solveConverged = 0, 0, 0
	if s.pool != nil {
		s.pool.Close()
		s.pool = nil
	}
}

// sweepPool returns (creating on first use) the persistent sweep worker
// pool. Callers only ask for it when cfg.SolveWorkers > 1.
func (s *System) sweepPool() *game.Pool {
	if s.pool == nil {
		s.pool = game.NewPool(s.cfg.SolveWorkers)
	}
	return s.pool
}

// buildReverse rebuilds the predecessor CSR from the current raw
// neighbor lists with one counting pass, one prefix sum and one fill —
// O(n·d) integer work, no branching on lifecycle state (see the field
// comment for why the over-approximation is deliberate). Delivery edges
// (i → R) are not represented: R's induction cell is constant, so it can
// never enter a changed set and its predecessors are never asked for.
func (s *System) buildReverse(n int) {
	if cap(s.solvePredRow) < n+1 {
		s.solvePredRow = make([]int32, n+1)
	}
	prow := s.solvePredRow[:n+1]
	for j := range prow {
		prow[j] = 0
	}
	edges := 0
	for i := 0; i < n; i++ {
		for _, v := range s.Net.Node(overlay.NodeID(i)).Neighbors {
			if int(v) == i {
				continue
			}
			prow[v+1]++
			edges++
		}
	}
	for j := 0; j < n; j++ {
		prow[j+1] += prow[j]
	}
	if c := cap(s.solvePred); c > solveShrinkMin && edges < c/solveShrinkDenom {
		s.solvePred = nil
	}
	if cap(s.solvePred) < edges {
		s.solvePred = make([]int32, edges)
	}
	pred := s.solvePred[:edges]
	// Fill using prow[j] as j's write cursor (sources ascend, so each
	// predecessor list comes out sorted), then shift the cursors — now
	// row ends — right one slot to restore the start offsets.
	for i := 0; i < n; i++ {
		for _, v := range s.Net.Node(overlay.NodeID(i)).Neighbors {
			if int(v) == i {
				continue
			}
			pred[prow[v]] = int32(i)
			prow[v]++
		}
	}
	for j := n; j > 0; j-- {
		prow[j] = prow[j-1]
	}
	prow[0] = 0
}
