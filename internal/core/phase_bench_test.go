package core

import (
	"fmt"
	"testing"

	"p2panon/internal/telemetry"
)

// BenchmarkPhaseBreakdown is the scale frontier with the phase profiler
// attached: one op = one topology invalidation, one probe round, one
// UM-II connection and one settlement, so every instrumented phase
// (solve.rows, solve.induction, probe.tick, overlay.candidates,
// route.walk, escrow.settle) is exercised per op. Each phase's
// accumulated wall time and allocation count are emitted as custom
// benchmark metrics (<phase>-ns/op, <phase>-allocs/op); bench.sh's
// phase tier turns the output into BENCH_PR7.json and CI gates the
// 10²–10⁴ points against the committed baseline.
func BenchmarkPhaseBreakdown(b *testing.B) {
	for _, n := range []int{100, 1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			sys, batch := scaleSystem(b, n, 0, 11)
			batch.RunConnection() // warm caches outside the timed region
			prof := telemetry.NewPhaseProfiler()
			sys.Prof = prof
			sys.Probes.Prof = prof
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Net.Touch()
				sys.Probes.TickAll()
				batch.RunConnection()
				batch.Settle()
			}
			b.StopTimer()
			for _, st := range prof.Snapshot() {
				b.ReportMetric(float64(st.NS)/float64(b.N), st.Phase+"-ns/op")
				b.ReportMetric(float64(st.Objects)/float64(b.N), st.Phase+"-allocs/op")
			}
		})
	}
}
