package core

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/sim"
	"p2panon/internal/telemetry"
)

// runIncrementalScript drives one system through a churn script built
// from single-node events only — individual Leave/Rejoin, one-node
// neighbor repairs, single estimator ticks — so the overlay and probe
// journals stay coverable and the warm re-solver actually engages
// (TestSparseDenseEquivalence's script wildcards the probe journal with
// TickAll rounds, which always falls back to a full solve). Every round
// runs a connection and snapshots the solved table, so a divergence is
// pinned to the exact event that introduced it.
func runIncrementalScript(t *testing.T, n int, seed uint64, workers int, dense bool) (*equivRun, SolverStats) {
	t.Helper()
	sys := equivSystem(t, n, seed, workers, dense)
	b, err := sys.NewBatch(0, overlay.NodeID(n-1), Contract{Pf: 75, Pr: 150}, UtilityII)
	if err != nil {
		t.Fatal(err)
	}
	script := dist.NewSource(seed ^ 0x9e3779b97f4a7c15)
	out := &equivRun{}
	now := sim.Time(0)
	for round := 0; round < 30; round++ {
		now += 60
		switch script.Intn(5) {
		case 0: // one non-endpoint node drops offline
			ids := sys.Net.OnlineIDs()
			id := ids[script.Intn(len(ids))]
			if id != b.Initiator && id != b.Responder {
				sys.Net.Leave(now, id, false)
			}
		case 1: // the first offline node comes back
			for _, id := range sys.Net.AllIDs() {
				if sys.Net.Node(id).State == overlay.Offline {
					sys.Net.Rejoin(now, id)
					break
				}
			}
		case 2: // one node repairs its neighbor set
			ids := sys.Net.OnlineIDs()
			sys.Net.RefreshNeighbors(ids[script.Intn(len(ids))])
		case 3: // one node's availability estimator ticks
			ids := sys.Net.OnlineIDs()
			sys.Probes.For(ids[script.Intn(len(ids))]).Tick()
		case 4: // quiet round: only history/k movement invalidates
		}
		out.paths = append(out.paths, b.RunConnection())
		out.tables = append(out.tables, copyTable(b.spneTable()))
	}
	out.payoffs = b.Settle()
	return out, sys.SolverStats()
}

// TestIncrementalChurnEquivalence is the warm-path property test: under
// a seeded single-event churn script the incremental re-solver (journal
// drain → dirty-row refresh → frontier sweeps over the reverse CSR) must
// reproduce the cold dense oracle bit for bit after every event —
// identical tables, paths, edge qualities and settled payoffs — while
// demonstrably taking the warm path (a script that always fell back
// would pass equivalence vacuously).
func TestIncrementalChurnEquivalence(t *testing.T) {
	cases := []struct {
		n    int
		seed uint64
	}{
		{60, 7},
		{200, 99},
		{400, 2026},
	}
	for _, tc := range cases {
		dense, _ := runIncrementalScript(t, tc.n, tc.seed, 1, true)
		for _, workers := range []int{1, 3} {
			sparse, stats := runIncrementalScript(t, tc.n, tc.seed, workers, false)
			label := fmt.Sprintf("N=%d/seed=%d/workers=%d", tc.n, tc.seed, workers)
			requireSameRun(t, label, sparse, dense)
			if stats.Incremental == 0 {
				t.Errorf("%s: no warm re-solve engaged — script exercised only the cold path", label)
			}
			if stats.Fallbacks > stats.Solves-stats.Incremental {
				// Every counted fallback is followed by a full solve, so
				// misses can never outnumber the full solves; if they do the
				// bookkeeping behind the hit/miss telemetry is off.
				t.Errorf("%s: solver stats inconsistent: %+v", label, stats)
			}
		}
	}
}

// TestSolveMetricsExposition scrapes a real /metrics endpoint after a
// churn-heavy run and asserts the solver families are exposed with
// exactly the documented label sets — the contract the ROADMAP's
// telemetry item promises dashboards.
func TestSolveMetricsExposition(t *testing.T) {
	sys, b := scaleSystem(t, 300, 0, 13)
	reg := telemetry.NewRegistry()
	sys.Instrument(reg)
	b.RunConnection()
	now := sim.Time(0)
	for i := 0; i < 8; i++ {
		now += 60
		id := overlay.NodeID(1 + i)
		sys.Net.Leave(now, id, false)
		b.RunConnection()
		now += 60
		sys.Net.Rejoin(now, id)
		b.RunConnection()
	}
	sys.Net.Touch() // wildcard: forces a counted fallback (miss)
	b.RunConnection()

	srv, err := telemetry.Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	body := string(raw)

	for _, family := range []string{
		metricSolveStagesSkipped, metricSolveFrontierSize, metricSolveIncremental,
	} {
		if !strings.Contains(body, "# HELP "+family+" ") {
			t.Errorf("missing HELP for %s", family)
		}
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("missing TYPE for %s", family)
		}
	}
	for _, series := range []string{
		metricSolveStagesSkipped,
		metricSolveFrontierSize,
		metricSolveIncremental + `{result="hit"}`,
		metricSolveIncremental + `{result="miss"}`,
	} {
		if !strings.Contains(body, "\n"+series+" ") {
			t.Errorf("missing series %s", series)
		}
	}

	// The scripted run above must be visible in the scraped values: the
	// single-node churn rounds hit the warm path (with real frontier
	// work), and the Touch wildcard missed. StagesSkipped is exported but
	// stays 0 in the UM-II stage game — path quality strictly accumulates
	// per hop, so the induction never reaches its fixed point early.
	st := sys.SolverStats()
	if st.Incremental == 0 {
		t.Error("churn rounds produced no warm re-solve")
	}
	if st.FrontierCells == 0 {
		t.Error("warm re-solves swept no frontier cells")
	}
	if st.Fallbacks == 0 {
		t.Error("Touch wildcard produced no counted fallback")
	}
}

// BenchmarkWarmChurn measures one churn event (a single node leaving or
// coming back) followed by one UM-II connection, warm vs cold: the warm
// mode lets the incremental re-solver patch the cached table from the
// journals, while the cold mode wildcards the overlay journal (Touch)
// after each event, forcing the pre-PR behaviour of a full solve per
// invalidation. The warm/cold ratio at each N is the headline number for
// this PR's acceptance gate.
func BenchmarkWarmChurn(b *testing.B) {
	for _, n := range []int{100, 1_000, 10_000, 100_000} {
		for _, mode := range []string{"warm", "cold"} {
			b.Run(fmt.Sprintf("N=%d/%s", n, mode), func(b *testing.B) {
				sys, batch := scaleSystem(b, n, 0, 11)
				batch.RunConnection() // warm caches outside the timed region
				cold := mode == "cold"
				// A rotating set of interior nodes toggles offline/online so
				// every op is one real lifecycle event and the population
				// stays at n or n−1 throughout.
				ids := make([]overlay.NodeID, 0, 64)
				for i := 1; i < n-1 && len(ids) < 64; i += 1 + (n-2)/64 {
					ids = append(ids, overlay.NodeID(i))
				}
				now := sim.Time(0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					now += 60
					id := ids[(i/2)%len(ids)]
					if i%2 == 0 {
						sys.Net.Leave(now, id, false)
					} else {
						sys.Net.Rejoin(now, id)
					}
					if cold {
						sys.Net.Touch()
					}
					batch.RunConnection()
				}
			})
		}
	}
}
