package core

import (
	"math"
	"testing"

	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/probe"
)

func TestFixedPathStrategyString(t *testing.T) {
	if FixedPath.String() != "fixed-path" {
		t.Fatalf("name %q", FixedPath.String())
	}
	if HopBudget.String() != "hop-budget" || CrowdsCoin.String() != "crowds-coin" {
		t.Fatal("termination names wrong")
	}
}

func TestCrowdsConfigValidation(t *testing.T) {
	rng := dist.NewSource(1)
	net := overlay.NewNetwork(3, rng.Split())
	net.Join(0, false)
	probes := probe.NewSet(net, rng.Split(), 60)
	for _, pf := range []float64{0, 1, -0.5, 1.5} {
		cfg := DefaultConfig()
		cfg.Termination = CrowdsCoin
		cfg.ForwardProb = pf
		if _, err := NewSystem(cfg, net, probes, rng); err == nil {
			t.Fatalf("p_f=%g accepted", pf)
		}
	}
	cfg := DefaultConfig()
	cfg.Termination = CrowdsCoin
	cfg.ForwardProb = 0.75
	if _, err := NewSystem(cfg, net, probes, rng); err != nil {
		t.Fatal(err)
	}
}

// crowdsSystem builds a system with Crowds-coin termination.
func crowdsSystem(t *testing.T, pf float64, seed uint64) *System {
	t.Helper()
	rng := dist.NewSource(seed)
	net := overlay.NewNetwork(5, rng.Split())
	for i := 0; i < 40; i++ {
		net.Join(0, false)
	}
	for _, id := range net.AllIDs() {
		net.RefreshNeighbors(id)
	}
	probes := probe.NewSet(net, rng.Split(), 60)
	for i := 0; i < 5; i++ {
		probes.TickAll()
	}
	cfg := DefaultConfig()
	cfg.Termination = CrowdsCoin
	cfg.ForwardProb = pf
	cfg.MaxHops = 20
	sys, err := NewSystem(cfg, net, probes, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCrowdsCoinPathLengths(t *testing.T) {
	// With p_f, interior hops continue with prob p_f: hop count beyond
	// the first follows a geometric law; mean path length in edges is
	// roughly 2 + p_f/(1-p_f). Allow a generous band.
	const pf = 0.75
	sys := crowdsSystem(t, pf, 5)
	b, _ := sys.NewBatch(0, 39, ContractWithTau(75, 2), Random)
	var lens []float64
	for i := 0; i < 300; i++ {
		lens = append(lens, float64(b.RunConnection().HopLen()))
	}
	mean := 0.0
	for _, v := range lens {
		mean += v
	}
	mean /= float64(len(lens))
	want := 2 + pf/(1-pf) // ≈ 5
	if math.Abs(mean-want) > 1.5 {
		t.Fatalf("mean path length %g, want ≈ %g", mean, want)
	}
	// Lengths must vary (coin, not budget).
	allSame := true
	for _, v := range lens {
		if v != lens[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Fatal("Crowds-coin produced constant path lengths")
	}
}

func TestCrowdsCoinShortProbShortPaths(t *testing.T) {
	sysShort := crowdsSystem(t, 0.2, 6)
	sysLong := crowdsSystem(t, 0.9, 6)
	mean := func(sys *System) float64 {
		b, _ := sys.NewBatch(0, 39, ContractWithTau(75, 2), Random)
		total := 0
		const n = 200
		for i := 0; i < n; i++ {
			total += b.RunConnection().HopLen()
		}
		return float64(total) / n
	}
	if mean(sysShort) >= mean(sysLong) {
		t.Fatal("higher p_f should give longer paths")
	}
}

func TestCrowdsCoinRespectsMaxHops(t *testing.T) {
	sys := crowdsSystem(t, 0.99, 7)
	sys.cfg.MaxHops = 8
	b, _ := sys.NewBatch(0, 39, ContractWithTau(75, 2), Random)
	for i := 0; i < 100; i++ {
		if got := b.RunConnection().HopLen(); got > 9 {
			t.Fatalf("path length %d exceeds cap", got)
		}
	}
}

func TestCrowdsWithUtilityRoutingStillConcentrates(t *testing.T) {
	sysU := crowdsSystem(t, 0.75, 8)
	sysR := crowdsSystem(t, 0.75, 8)
	bu, _ := sysU.NewBatch(0, 39, ContractWithTau(75, 2), UtilityI)
	br, _ := sysR.NewBatch(0, 39, ContractWithTau(75, 2), Random)
	for i := 0; i < 20; i++ {
		bu.RunConnection()
		br.RunConnection()
	}
	if bu.ForwarderSet().Size() >= br.ForwarderSet().Size() {
		t.Fatalf("utility ‖π‖=%d not below random %d under Crowds termination",
			bu.ForwarderSet().Size(), br.ForwarderSet().Size())
	}
}

func TestFixedPathReusesExactPath(t *testing.T) {
	sys := testSystem(t, 30, 9, 0)
	b, _ := sys.NewBatch(0, 29, ContractWithTau(75, 2), FixedPath)
	first := b.RunConnection()
	for i := 0; i < 10; i++ {
		res := b.RunConnection()
		if len(res.Nodes) != len(first.Nodes) {
			t.Fatalf("fixed path changed: %v vs %v", first.Nodes, res.Nodes)
		}
		for j := range res.Nodes {
			if res.Nodes[j] != first.Nodes[j] {
				t.Fatalf("fixed path changed: %v vs %v", first.Nodes, res.Nodes)
			}
		}
	}
	// ‖π‖ equals the relay count of the single path.
	if b.ForwarderSet().Size() != first.HopLen()-1 {
		t.Fatalf("‖π‖ = %d, want %d", b.ForwarderSet().Size(), first.HopLen()-1)
	}
}

func TestFixedPathReformsOnChurn(t *testing.T) {
	sys := testSystem(t, 30, 10, 0)
	b, _ := sys.NewBatch(0, 29, ContractWithTau(75, 2), FixedPath)
	first := b.RunConnection()
	victim := first.Forwarders()[0]
	sys.Net.Leave(10, victim, false)
	second := b.RunConnection()
	for _, f := range second.Forwarders() {
		if f == victim {
			t.Fatal("offline relay still on fixed path")
		}
	}
	// The new path counts as a reformation: forwarder set grew.
	if b.ForwarderSet().Size() <= first.HopLen()-1 {
		t.Fatalf("‖π‖ = %d did not grow after reformation", b.ForwarderSet().Size())
	}
}

func TestFixedPathEndpointsExcluded(t *testing.T) {
	sys := testSystem(t, 30, 11, 0)
	b, _ := sys.NewBatch(3, 17, ContractWithTau(75, 2), FixedPath)
	for i := 0; i < 5; i++ {
		res := b.RunConnection()
		for _, f := range res.Forwarders() {
			if f == 3 || f == 17 {
				t.Fatalf("endpoint on source-routed path: %v", res.Nodes)
			}
		}
	}
}

func TestFixedPathSettles(t *testing.T) {
	sys := testSystem(t, 30, 12, 0)
	b, _ := sys.NewBatch(0, 29, Contract{Pf: 10, Pr: 50}, FixedPath)
	for i := 0; i < 5; i++ {
		b.RunConnection()
	}
	payoffs := b.Settle()
	if len(payoffs) == 0 {
		t.Fatal("no payoffs")
	}
	total := 0.0
	for _, p := range payoffs {
		total += p.Income
	}
	if math.Abs(total-b.TotalPaid()) > 1e-9 {
		t.Fatalf("conservation broken: %g vs %g", total, b.TotalPaid())
	}
}

func TestFixedPathTinyNetwork(t *testing.T) {
	// Only I and R online: the source path is empty, delivery is direct.
	rng := dist.NewSource(13)
	net := overlay.NewNetwork(2, rng.Split())
	net.Join(0, false)
	net.Join(0, false)
	probes := probe.NewSet(net, rng.Split(), 60)
	sys, err := NewSystem(DefaultConfig(), net, probes, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sys.NewBatch(0, 1, ContractWithTau(75, 2), FixedPath)
	res := b.RunConnection()
	if !res.Direct {
		t.Fatalf("expected direct delivery, got %v", res.Nodes)
	}
}

func TestPositionAwareRoutingWorks(t *testing.T) {
	// Position-aware selectivity must run end to end and stay in the same
	// behavioural regime as the default (utility ≪ random).
	rng := dist.NewSource(30)
	net := overlay.NewNetwork(5, rng.Split())
	for i := 0; i < 40; i++ {
		net.Join(0, false)
	}
	for _, id := range net.AllIDs() {
		net.RefreshNeighbors(id)
	}
	probes := probe.NewSet(net, rng.Split(), 60)
	for i := 0; i < 5; i++ {
		probes.TickAll()
	}
	cfg := DefaultConfig()
	cfg.PositionAware = true
	sys, err := NewSystem(cfg, net, probes, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	bu, _ := sys.NewBatch(0, 39, ContractWithTau(75, 2), UtilityI)
	br, _ := sys.NewBatch(1, 38, ContractWithTau(75, 2), Random)
	for i := 0; i < 20; i++ {
		bu.RunConnection()
		br.RunConnection()
	}
	if bu.ForwarderSet().Size() >= br.ForwarderSet().Size() {
		t.Fatalf("position-aware utility ‖π‖=%d not below random %d",
			bu.ForwarderSet().Size(), br.ForwarderSet().Size())
	}
	if bu.NewEdgeRate() >= br.NewEdgeRate() {
		t.Fatalf("position-aware new-edge rate %g not below random %g",
			bu.NewEdgeRate(), br.NewEdgeRate())
	}
}
