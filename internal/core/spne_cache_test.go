package core

import (
	"testing"

	"p2panon/internal/dist"
	"p2panon/internal/game"
	"p2panon/internal/overlay"
	"p2panon/internal/probe"
	"p2panon/internal/sim"
)

// freshOracleSolve solves the batch's stage game from scratch through the
// pre-index scan path: the map-free stageEdgeQuality oracle and a freshly
// allocated table. It is the reference the cached spneTable is checked
// against.
func freshOracleSolve(b *Batch) [][]game.Decision {
	g := &game.PathGame{
		Nodes:     b.sys.Net.Len(),
		Responder: int(b.Responder),
		EdgeQuality: func(i, j int) float64 {
			return b.stageEdgeQuality(overlay.NodeID(i), overlay.NodeID(j))
		},
		Pf:      b.Contract.Pf,
		Pr:      b.Contract.Pr,
		Cost:    b.sys.cfg.Cost,
		MaxHops: b.sys.cfg.MaxHops,
	}
	return g.Solve()
}

func requireSameTable(t *testing.T, step string, got, want [][]game.Decision) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: table rows %d != %d", step, len(got), len(want))
	}
	for h := range got {
		if len(got[h]) != len(want[h]) {
			t.Fatalf("%s: row %d len %d != %d", step, h, len(got[h]), len(want[h]))
		}
		for i := range got[h] {
			if got[h][i] != want[h][i] {
				t.Fatalf("%s: table[%d][%d] = %+v, fresh solve %+v", step, h, i, got[h][i], want[h][i])
			}
		}
	}
}

// TestSPNECacheMatchesFreshSolve is the cache-equivalence property test:
// across random topologies, the cached Utility Model II table must equal a
// fresh solve at every point — after connections mutate history, after
// probe ticks move estimates, and after churn (leave / rejoin / join /
// neighbor repair) invalidates the topology. Any missed invalidation shows
// up as a stale decision differing from the oracle.
func TestSPNECacheMatchesFreshSolve(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234} {
		rng := dist.NewSource(seed ^ 0x9e3779b97f4a7c15)
		sys := testSystem(t, 24, seed, 0)
		b, err := sys.NewBatch(0, 23, Contract{Pf: 75, Pr: 150}, UtilityII)
		if err != nil {
			t.Fatal(err)
		}
		check := func(step string) {
			requireSameTable(t, step, b.spneTable(), freshOracleSolve(b))
		}
		check("initial")
		now := sim.Time(0)
		for round := 0; round < 30; round++ {
			now += 60
			switch rng.Intn(5) {
			case 0: // take a random non-endpoint node offline
				ids := sys.Net.OnlineIDs()
				id := ids[rng.Intn(len(ids))]
				if id != b.Initiator && id != b.Responder {
					sys.Net.Leave(now, id, false)
				}
			case 1: // bring an offline node back
				for _, id := range sys.Net.AllIDs() {
					if !sys.Net.Online(id) && sys.Net.Node(id).State == overlay.Offline {
						sys.Net.Rejoin(now, id)
						break
					}
				}
			case 2: // grow the overlay
				sys.Net.Join(now, false)
			case 3: // neighbor repair + probe tick
				for _, id := range sys.Net.OnlineIDs() {
					sys.Net.RefreshNeighbors(id)
				}
				sys.Probes.TickAll()
			case 4: // history mutation via a real connection
				b.RunConnection()
			}
			check("round")
		}
	}
}

// TestSPNECacheHitReusesTable pins the cache-hit fast path: with every
// input unchanged, spneTable must hand back the same backing table rather
// than re-solving into fresh storage.
func TestSPNECacheHitReusesTable(t *testing.T) {
	sys := testSystem(t, 16, 5, 0)
	b, err := sys.NewBatch(0, 15, Contract{Pf: 75, Pr: 150}, UtilityII)
	if err != nil {
		t.Fatal(err)
	}
	first := b.spneTable()
	second := b.spneTable()
	if &first[0][0] != &second[0][0] {
		t.Fatal("unchanged inputs re-solved the SPNE table")
	}
	sys.Net.Touch()
	third := b.spneTable()
	requireSameTable(t, "after Touch", third, freshOracleSolve(b))
}

// TestSPNECacheInvalidatedOnClose pins that closing a batch (dropping its
// history profiles) also drops the cached solve.
func TestSPNECacheInvalidatedOnClose(t *testing.T) {
	sys := testSystem(t, 16, 9, 0)
	b, err := sys.NewBatch(0, 15, Contract{Pf: 75, Pr: 150}, UtilityII)
	if err != nil {
		t.Fatal(err)
	}
	b.RunConnection()
	b.spneTable()
	b.Close()
	if b.spneStamp.valid {
		t.Fatal("Close left the SPNE cache stamp valid")
	}
}

func newBenchSystem(tb testing.TB, n int, seed uint64) *System {
	tb.Helper()
	rng := dist.NewSource(seed)
	net := overlay.NewNetwork(5, rng.Split())
	for i := 0; i < n; i++ {
		net.Join(0, false)
	}
	for _, id := range net.AllIDs() {
		net.RefreshNeighbors(id)
	}
	probes := probe.NewSet(net, rng.Split(), 60)
	for i := 0; i < 5; i++ {
		probes.TickAll()
	}
	sys, err := NewSystem(DefaultConfig(), net, probes, rng.Split())
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// BenchmarkScorerReuse measures the per-hop scorer lookup the routing loop
// performs — a cache hit after this PR, a NewScorer allocation before it.
func BenchmarkScorerReuse(b *testing.B) {
	sys := newBenchSystem(b, 64, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.scorer(overlay.NodeID(i%64), 1)
	}
}

// BenchmarkSPNESimCache measures fetching the Utility Model II table with
// every input unchanged — the steady-state path of a static overlay.
func BenchmarkSPNESimCache(b *testing.B) {
	sys := newBenchSystem(b, 64, 13)
	batch, err := sys.NewBatch(0, 63, Contract{Pf: 75, Pr: 150}, UtilityII)
	if err != nil {
		b.Fatal(err)
	}
	batch.spneTable() // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = batch.spneTable()
	}
}

// BenchmarkSPNESolveCold measures a full re-solve (the invalidation path),
// for contrast with the cache hit above and with the pre-index map-memo
// solver this PR replaced.
func BenchmarkSPNESolveCold(b *testing.B) {
	sys := newBenchSystem(b, 64, 13)
	batch, err := sys.NewBatch(0, 63, Contract{Pf: 75, Pr: 150}, UtilityII)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Net.Touch()
		_ = batch.spneTable()
	}
}
