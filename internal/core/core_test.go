package core

import (
	"math"
	"testing"

	"p2panon/internal/dist"
	"p2panon/internal/game"
	"p2panon/internal/overlay"
	"p2panon/internal/probe"
	"p2panon/internal/quality"
)

// testSystem builds a static N-node overlay with warm probes and a system
// around it. maliciousEvery > 0 marks every maliciousEvery-th node.
func testSystem(t *testing.T, n int, seed uint64, maliciousEvery int) *System {
	t.Helper()
	rng := dist.NewSource(seed)
	net := overlay.NewNetwork(5, rng.Split())
	for i := 0; i < n; i++ {
		mal := maliciousEvery > 0 && i%maliciousEvery == 0
		net.Join(0, mal)
	}
	for _, id := range net.AllIDs() {
		net.RefreshNeighbors(id)
	}
	probes := probe.NewSet(net, rng.Split(), 60)
	for i := 0; i < 5; i++ {
		probes.TickAll()
	}
	sys, err := NewSystem(DefaultConfig(), net, probes, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestStrategyString(t *testing.T) {
	if Random.String() != "random" || UtilityI.String() != "utility-I" || UtilityII.String() != "utility-II" {
		t.Fatal("strategy names wrong")
	}
}

func TestContractTau(t *testing.T) {
	c := ContractWithTau(80, 2)
	if c.Pf != 80 || c.Pr != 160 {
		t.Fatalf("contract %+v", c)
	}
	if c.Tau() != 2 {
		t.Fatalf("tau = %g", c.Tau())
	}
	if (Contract{}).Tau() != 0 {
		t.Fatal("zero contract tau")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Weights: quality.Weights{Selectivity: 0.9, Availability: 0.9}, MinHops: 1, MaxHops: 2},
		func() Config { c := DefaultConfig(); c.MinHops = 0; return c }(),
		func() Config { c := DefaultConfig(); c.MaxHops = 1; c.MinHops = 3; return c }(),
		func() Config { c := DefaultConfig(); c.HistoryCapacity = -1; return c }(),
	}
	rng := dist.NewSource(1)
	net := overlay.NewNetwork(3, rng.Split())
	net.Join(0, false)
	probes := probe.NewSet(net, rng.Split(), 60)
	for i, cfg := range bad {
		if _, err := NewSystem(cfg, net, probes, rng); err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
	}
	if _, err := NewSystem(DefaultConfig(), nil, probes, rng); err == nil {
		t.Fatal("nil net accepted")
	}
}

func TestNewBatchValidation(t *testing.T) {
	sys := testSystem(t, 10, 1, 0)
	if _, err := sys.NewBatch(0, 0, Contract{Pf: 50}, Random); err == nil {
		t.Fatal("I == R accepted")
	}
	if _, err := sys.NewBatch(0, 99, Contract{Pf: 50}, Random); err == nil {
		t.Fatal("unknown responder accepted")
	}
	if _, err := sys.NewBatch(0, 1, Contract{Pf: -1}, Random); err == nil {
		t.Fatal("negative contract accepted")
	}
	b, err := sys.NewBatch(0, 1, Contract{Pf: 50, Pr: 100}, UtilityI)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID == 0 {
		t.Fatal("batch ID not assigned")
	}
}

func TestConnectionEndpoints(t *testing.T) {
	sys := testSystem(t, 20, 2, 0)
	for _, strat := range []Strategy{Random, UtilityI, UtilityII} {
		b, err := sys.NewBatch(0, 19, ContractWithTau(75, 2), strat)
		if err != nil {
			t.Fatal(err)
		}
		res := b.RunConnection()
		if res.Nodes[0] != 0 {
			t.Fatalf("%v: path starts at %d", strat, res.Nodes[0])
		}
		if res.Nodes[len(res.Nodes)-1] != 19 {
			t.Fatalf("%v: path ends at %d", strat, res.Nodes[len(res.Nodes)-1])
		}
		if res.HopLen() < 1 {
			t.Fatalf("%v: hop length %d", strat, res.HopLen())
		}
	}
}

func TestHopBudgetRespected(t *testing.T) {
	sys := testSystem(t, 30, 3, 0)
	for _, strat := range []Strategy{Random, UtilityI, UtilityII} {
		b, _ := sys.NewBatch(0, 29, ContractWithTau(75, 2), strat)
		for i := 0; i < 30; i++ {
			res := b.RunConnection()
			if res.HopLen() > sys.cfg.MaxHops+1 {
				t.Fatalf("%v: hop length %d exceeds budget+delivery", strat, res.HopLen())
			}
		}
	}
}

func TestForwardersExcludeEndpoints(t *testing.T) {
	sys := testSystem(t, 25, 4, 0)
	b, _ := sys.NewBatch(2, 17, ContractWithTau(75, 2), UtilityI)
	for i := 0; i < 20; i++ {
		res := b.RunConnection()
		for _, f := range res.Forwarders() {
			if f == 2 || f == 17 {
				t.Fatalf("endpoint %d in forwarder list", f)
			}
		}
	}
	if b.ForwarderSet().Contains(2) || b.ForwarderSet().Contains(17) {
		t.Fatal("endpoint in forwarder set")
	}
}

func TestNoImmediatePingPong(t *testing.T) {
	sys := testSystem(t, 25, 5, 0)
	b, _ := sys.NewBatch(0, 24, ContractWithTau(75, 2), Random)
	for i := 0; i < 30; i++ {
		res := b.RunConnection()
		for j := 2; j < len(res.Nodes); j++ {
			if res.Nodes[j] == res.Nodes[j-2] && res.Nodes[j] != 24 {
				t.Fatalf("immediate ping-pong at %v", res.Nodes)
			}
		}
	}
}

func TestLastEdgeQualityIsOne(t *testing.T) {
	sys := testSystem(t, 20, 6, 0)
	b, _ := sys.NewBatch(0, 19, ContractWithTau(75, 2), UtilityI)
	res := b.RunConnection()
	if got := res.EdgeQualities[len(res.EdgeQualities)-1]; got != 1 {
		t.Fatalf("last edge quality %g", got)
	}
	if len(res.EdgeQualities) != res.HopLen() {
		t.Fatalf("edge qualities %d != hops %d", len(res.EdgeQualities), res.HopLen())
	}
}

func TestUtilityRoutingReusesForwarders(t *testing.T) {
	// The core claim (Fig. 5): after k connections, utility routing's
	// ‖π‖ is far below random routing's.
	sysU := testSystem(t, 40, 7, 0)
	sysR := testSystem(t, 40, 7, 0)
	bu, _ := sysU.NewBatch(0, 39, ContractWithTau(75, 2), UtilityI)
	br, _ := sysR.NewBatch(0, 39, ContractWithTau(75, 2), Random)
	for i := 0; i < 20; i++ {
		bu.RunConnection()
		br.RunConnection()
	}
	if bu.ForwarderSet().Size() >= br.ForwarderSet().Size() {
		t.Fatalf("utility ‖π‖=%d not below random ‖π‖=%d",
			bu.ForwarderSet().Size(), br.ForwarderSet().Size())
	}
}

func TestProp1NewEdgeRates(t *testing.T) {
	// Prop. 1: E[X] under random routing stays high; under utility
	// routing it collapses as the batch progresses.
	sysU := testSystem(t, 40, 8, 0)
	sysR := testSystem(t, 40, 8, 0)
	bu, _ := sysU.NewBatch(0, 39, ContractWithTau(75, 4), UtilityI)
	br, _ := sysR.NewBatch(0, 39, ContractWithTau(75, 4), Random)
	var lateNewU, lateNewR, lateTotU, lateTotR int
	for i := 0; i < 20; i++ {
		ru := bu.RunConnection()
		rr := br.RunConnection()
		if i >= 10 { // steady state
			lateNewU += ru.NewEdges
			lateTotU += ru.HopLen()
			lateNewR += rr.NewEdges
			lateTotR += rr.HopLen()
		}
	}
	rateU := float64(lateNewU) / float64(lateTotU)
	rateR := float64(lateNewR) / float64(lateTotR)
	if rateU >= rateR {
		t.Fatalf("utility new-edge rate %g not below random %g", rateU, rateR)
	}
	if rateU > 0.2 {
		t.Fatalf("utility steady-state new-edge rate %g, want ≈ 0", rateU)
	}
}

func TestSettleMatchesPayoffRule(t *testing.T) {
	sys := testSystem(t, 30, 9, 0)
	b, _ := sys.NewBatch(0, 29, Contract{Pf: 60, Pr: 120}, UtilityI)
	for i := 0; i < 10; i++ {
		b.RunConnection()
	}
	payoffs := b.Settle()
	if len(payoffs) != b.ForwarderSet().Size() {
		t.Fatalf("payoffs %d != ‖π‖ %d", len(payoffs), b.ForwarderSet().Size())
	}
	share := 120.0 / float64(b.ForwarderSet().Size())
	var totalIncome float64
	var totalM int
	for _, p := range payoffs {
		want := float64(p.Forwards)*60 + share
		if math.Abs(p.Income-want) > 1e-9 {
			t.Fatalf("node %d income %g, want %g", p.Node, p.Income, want)
		}
		if math.Abs(p.Net-(p.Income-p.Cost)) > 1e-9 {
			t.Fatal("net != income - cost")
		}
		if p.Forwards != b.Forwards(p.Node) {
			t.Fatal("forwards mismatch")
		}
		totalIncome += p.Income
		totalM += p.Forwards
	}
	// Conservation: Σ income = Σm·Pf + Pr = TotalPaid.
	if math.Abs(totalIncome-b.TotalPaid()) > 1e-9 {
		t.Fatalf("Σincome %g != initiator outlay %g", totalIncome, b.TotalPaid())
	}
	if math.Abs(b.TotalPaid()-(float64(totalM)*60+120)) > 1e-9 {
		t.Fatal("TotalPaid formula wrong")
	}
}

func TestSettleEmptyBatch(t *testing.T) {
	sys := testSystem(t, 10, 10, 0)
	b, _ := sys.NewBatch(0, 9, Contract{Pf: 60, Pr: 120}, UtilityI)
	if got := b.Settle(); got != nil {
		t.Fatalf("payoffs of empty batch: %v", got)
	}
	if b.TotalPaid() != 0 {
		t.Fatal("empty batch paid")
	}
}

func TestGoodPayoffsFilter(t *testing.T) {
	sys := testSystem(t, 30, 11, 3) // every 3rd node malicious
	b, _ := sys.NewBatch(1, 29, ContractWithTau(75, 2), UtilityI)
	for i := 0; i < 15; i++ {
		b.RunConnection()
	}
	for _, p := range b.GoodPayoffs() {
		if p.Malicious {
			t.Fatal("malicious payoff in GoodPayoffs")
		}
		if sys.Net.Node(p.Node).Malicious {
			t.Fatal("mislabelled payoff")
		}
	}
}

func TestMaliciousNodesRouteRandomly(t *testing.T) {
	// With an all-malicious interior, UtilityI must behave statistically
	// like Random: forwarder-set sizes should be comparable (within 25%),
	// whereas an honest UtilityI run is far smaller.
	build := func(seed uint64, maliciousEvery int, strat Strategy) int {
		sys := testSystem(t, 40, seed, maliciousEvery)
		// Make endpoints good for comparability.
		b, _ := sys.NewBatch(1, 39, ContractWithTau(75, 2), strat)
		for i := 0; i < 20; i++ {
			b.RunConnection()
		}
		return b.ForwarderSet().Size()
	}
	allMalU := build(12, 1, UtilityI) // every node malicious
	allMalR := build(12, 1, Random)
	honestU := build(12, 0, UtilityI)
	if honestU >= allMalU {
		t.Fatalf("honest utility ‖π‖=%d should be below all-malicious ‖π‖=%d", honestU, allMalU)
	}
	ratio := float64(allMalU) / float64(allMalR)
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("all-malicious utility (%d) vs random (%d) differ too much", allMalU, allMalR)
	}
}

func TestParticipationGateDeclines(t *testing.T) {
	// With Pf below C^p + C^t every good node declines: all connections
	// go direct, and declines are counted.
	sys := testSystem(t, 20, 13, 0)
	cfg := sys.cfg
	cfg.Cost = game.UniformCost(50, 10) // Pf=20 < 60
	sys2, err := NewSystem(cfg, sys.Net, sys.Probes, dist.NewSource(99))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sys2.NewBatch(0, 19, Contract{Pf: 20, Pr: 40}, UtilityI)
	res := b.RunConnection()
	if !res.Direct {
		t.Fatalf("path formed despite universal declines: %v", res.Nodes)
	}
	if b.Declines() == 0 {
		t.Fatal("no declines recorded")
	}
	if b.ForwarderSet().Size() != 0 {
		t.Fatal("forwarder set non-empty")
	}
}

func TestParticipationGateAccepts(t *testing.T) {
	// Pf above the Prop. 3 threshold: nobody declines.
	sys := testSystem(t, 20, 14, 0)
	b, _ := sys.NewBatch(0, 19, Contract{Pf: 100, Pr: 200}, UtilityI)
	for i := 0; i < 10; i++ {
		b.RunConnection()
	}
	if b.Declines() != 0 {
		t.Fatalf("declines = %d with generous contract", b.Declines())
	}
}

func TestMaliciousAcceptRegardless(t *testing.T) {
	// All nodes malicious + starvation contract: adversaries still forward.
	sys := testSystem(t, 20, 15, 1)
	cfg := sys.cfg
	cfg.Cost = game.UniformCost(50, 10)
	sys2, _ := NewSystem(cfg, sys.Net, sys.Probes, dist.NewSource(1))
	b, _ := sys2.NewBatch(0, 19, Contract{Pf: 1, Pr: 1}, UtilityI)
	res := b.RunConnection()
	if res.Direct {
		t.Fatal("malicious nodes declined")
	}
}

func TestDeterministicConnections(t *testing.T) {
	run := func() []overlay.NodeID {
		sys := testSystem(t, 40, 77, 4)
		b, _ := sys.NewBatch(0, 39, ContractWithTau(75, 2), UtilityII)
		var all []overlay.NodeID
		for i := 0; i < 5; i++ {
			all = append(all, b.RunConnection().Nodes...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("paths diverge at %d", i)
		}
	}
}

func TestInitiatorUtilityDecreasesWithForwarderSet(t *testing.T) {
	if AnonymityA(100, 4, 2) <= AnonymityA(100, 4, 8) {
		t.Fatal("A(‖π‖) not decreasing in ‖π‖")
	}
	if AnonymityA(100, 4, 0) != 400 {
		t.Fatalf("A with empty set = %g", AnonymityA(100, 4, 0))
	}
	sys := testSystem(t, 30, 16, 0)
	b, _ := sys.NewBatch(0, 29, Contract{Pf: 10, Pr: 20}, UtilityI)
	for i := 0; i < 10; i++ {
		b.RunConnection()
	}
	u := b.InitiatorUtility(1000)
	expected := AnonymityA(1000, b.ForwarderSet().AvgLen(), b.ForwarderSet().Size()) -
		float64(b.ForwarderSet().Size())*10 - 20
	if math.Abs(u-expected) > 1e-9 {
		t.Fatalf("U_I = %g, want %g", u, expected)
	}
}

func TestOfflineNodesNeverChosen(t *testing.T) {
	sys := testSystem(t, 30, 17, 0)
	// Knock half the nodes offline.
	for id := overlay.NodeID(1); id < 30; id += 2 {
		sys.Net.Leave(1, id, false)
	}
	b, _ := sys.NewBatch(0, 28, ContractWithTau(75, 2), UtilityI)
	for i := 0; i < 10; i++ {
		res := b.RunConnection()
		for _, f := range res.Forwarders() {
			if !sys.Net.Online(f) {
				t.Fatalf("offline node %d forwarded", f)
			}
		}
	}
}

func TestUtilityIIFollowsSPNEOnKnownTopology(t *testing.T) {
	// Hand-built 5-node overlay: 0(I) - {1,2} - 3 - 4(R). Node 1 has far
	// better availability than 2; UM-II must route I→1→3→R style paths,
	// never through 2, once probes have observed the difference.
	rng := dist.NewSource(20)
	net := overlay.NewNetwork(2, rng.Split())
	for i := 0; i < 5; i++ {
		net.Join(0, false)
	}
	n0 := net.Node(0)
	n0.Neighbors = []overlay.NodeID{1, 2}
	net.Node(1).Neighbors = []overlay.NodeID{3}
	net.Node(2).Neighbors = []overlay.NodeID{3}
	net.Node(3).Neighbors = []overlay.NodeID{1, 2}
	probes := probe.NewSet(net, rng.Split(), 60)
	probes.TickAll()
	// Degrade node 2's observed availability at node 0.
	net.Leave(10, 2, false)
	for i := 0; i < 5; i++ {
		probes.TickAll()
	}
	net.Rejoin(100, 2)
	cfg := DefaultConfig()
	cfg.MinHops, cfg.MaxHops = 2, 2
	sys, err := NewSystem(cfg, net, probes, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sys.NewBatch(0, 4, ContractWithTau(75, 4), UtilityII)
	for i := 0; i < 5; i++ {
		res := b.RunConnection()
		for _, f := range res.Forwarders() {
			if f == 2 {
				t.Fatalf("UM-II routed through low-availability node: %v", res.Nodes)
			}
		}
	}
}

func TestBatchCloseDropsHistory(t *testing.T) {
	sys := testSystem(t, 20, 40, 0)
	b, _ := sys.NewBatch(0, 19, ContractWithTau(75, 2), UtilityI)
	for i := 0; i < 5; i++ {
		b.RunConnection()
	}
	if sys.Hist.Size() == 0 {
		t.Fatal("no history accumulated")
	}
	b.Settle()
	b.Close()
	if sys.Hist.Size() != 0 {
		t.Fatalf("history not dropped: %d profiles", sys.Hist.Size())
	}
}
