package core

import (
	"fmt"
	"runtime"
	"testing"

	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/probe"
)

// scaleSystem builds a static overlay of n nodes (bulk-joined, degree 5)
// with warmed probes and one UM-II batch, the configuration the N-sweep
// benchmarks and the working-memory tests share.
func scaleSystem(tb testing.TB, n, workers int, seed uint64) (*System, *Batch) {
	tb.Helper()
	rng := dist.NewSource(seed)
	net := overlay.NewNetwork(5, rng.Split())
	net.GrowUniform(0, n)
	probes := probe.NewSet(net, rng.Split(), 60)
	probes.Workers = workers
	for i := 0; i < 2; i++ {
		probes.TickAll()
	}
	cfg := DefaultConfig()
	cfg.SolveWorkers = workers
	sys, err := NewSystem(cfg, net, probes, rng.Split())
	if err != nil {
		tb.Fatal(err)
	}
	b, err := sys.NewBatch(0, overlay.NodeID(n-1), Contract{Pf: 75, Pr: 150}, UtilityII)
	if err != nil {
		tb.Fatal(err)
	}
	return sys, b
}

// TestScaleFrontierWorkingMemory is the acceptance alloc test for the
// sparse solve: a single UM-II batch at N = 10⁵ must complete with
// O(n·d) working memory. It pins two things: (a) the retained solve
// scratch is linear in n·d — a dense n×n float slab at this size would be
// 80 GB and fail the cap bound by four orders of magnitude; (b) a warm
// re-solve after a topology invalidation allocates a small constant
// amount, i.e. nothing on the solve path materialises an n×n structure.
func TestScaleFrontierWorkingMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("N=1e5 build in -short mode")
	}
	const n = 100_000
	sys, b := scaleSystem(t, n, 0, 11)
	b.RunConnection() // warm: builds scratch, table, scorers, estimators

	// (a) retained scratch is O(n·d): every node has ≤ degree+1 slots.
	maxSlots := n * (sys.Net.Degree() + 1)
	if c := cap(sys.solveSucc); c > maxSlots {
		t.Fatalf("solve scratch holds %d candidate slots, O(n·d) bound is %d", c, maxSlots)
	}

	// (b) warm re-solves stay allocation-light. TotalAlloc is monotonic
	// and unaffected by GC, so the delta is exactly what the re-solve +
	// connection allocated.
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < 3; i++ {
		sys.Net.Touch() // force a full re-solve of the stage game
		b.RunConnection()
	}
	runtime.ReadMemStats(&after)
	delta := after.TotalAlloc - before.TotalAlloc
	// Three full re-solves at n=1e5. The O(n·d) budget (scratch reuse,
	// history rows, path bookkeeping) is well under 8 MB; one n×n float64
	// slab alone would be 80 GB.
	if limit := uint64(32 << 20); delta > limit {
		t.Fatalf("3 warm re-solves allocated %d bytes (> %d): solve path is not O(n·d)", delta, limit)
	}
}

// TestSolveScratchShrinks is the qualScratch-regression test: the solve
// scratch must stop pinning its high-water capacity once demand drops.
// Before the sparse rewrite the dense matrix grew to cap n² and was never
// released; now a mass departure (demand < cap/4) reallocates exactly.
func TestSolveScratchShrinks(t *testing.T) {
	sys, b := scaleSystem(t, 3000, 0, 5)
	b.RunConnection()
	grown := cap(sys.solveSucc)
	if grown == 0 {
		t.Fatal("solve scratch empty after a UM-II connection")
	}

	// Take ~97% of the population offline: slot demand collapses.
	for _, id := range sys.Net.OnlineIDs() {
		if id != b.Initiator && id != b.Responder && int(id) >= 100 {
			sys.Net.Leave(1, id, false)
		}
	}
	b.RunConnection()
	if c := cap(sys.solveSucc); c >= grown {
		t.Fatalf("solve scratch still holds %d slots after shrink-worthy demand drop (was %d)", c, grown)
	}
}

// TestSolveScratchReleasedOnClose pins that settling and closing a batch
// drops the solve scratch entirely — a finished large run must not pin
// its working set for the process lifetime.
func TestSolveScratchReleasedOnClose(t *testing.T) {
	sys, b := scaleSystem(t, 500, 0, 6)
	b.RunConnection()
	if cap(sys.solveSucc) == 0 {
		t.Fatal("solve scratch empty after a UM-II connection")
	}
	b.Settle()
	b.Close()
	if sys.solveSucc != nil || sys.solveQual != nil || sys.solveRow != nil ||
		sys.solveLen != nil || sys.solveScorers != nil {
		t.Fatal("Batch.Close left solve scratch pinned")
	}
	if sys.solvePredRow != nil || sys.solvePred != nil {
		t.Fatal("Batch.Close left the reverse CSR pinned")
	}
	if sys.dirtyNodes != nil || sys.dirtyMark != nil || sys.dirtyList != nil ||
		sys.refreshSucc != nil || sys.refreshQual != nil {
		t.Fatal("Batch.Close left incremental re-solve buffers pinned")
	}
	if sys.pool != nil {
		t.Fatal("Batch.Close left the sweep worker pool running")
	}
	if sys.solveOwner != 0 || sys.solveN != 0 || sys.solveConverged != 0 {
		t.Fatal("Batch.Close left warm-solve bookkeeping set")
	}
}

// BenchmarkScaleFrontier is the N-sweep scale frontier (BENCH_PR6.json):
// one op = one topology invalidation plus one UM-II connection, i.e. a
// full cold sparse stage-game solve at population N on a static overlay.
// The 10²–10⁴ points run in CI against the committed baseline; 10⁵ is the
// acceptance point for the O(n·d) memory model.
func BenchmarkScaleFrontier(b *testing.B) {
	for _, n := range []int{100, 1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			sys, batch := scaleSystem(b, n, 0, 11)
			batch.RunConnection() // warm caches outside the timed region
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Net.Touch()
				batch.RunConnection()
			}
		})
	}
}
