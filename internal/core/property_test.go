package core

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: for any strategy, seed and malicious layout, settlement
// conserves money (Σ incomes = initiator outlay), payoff counts match the
// forwarder set, and every reported m matches the batch's own counter.
func TestQuickSettlementInvariants(t *testing.T) {
	f := func(seed uint64, stratRaw, malRaw uint8, k uint8) bool {
		strat := Strategy(stratRaw % 4)
		malEvery := int(malRaw%5) + 2 // every 2..6th node malicious
		sys := testSystemQuick(t, 25, seed, malEvery)
		b, err := sys.NewBatch(1, 24, ContractWithTau(60, 2), strat)
		if err != nil {
			return false
		}
		conns := int(k%15) + 1
		for i := 0; i < conns; i++ {
			b.RunConnection()
		}
		payoffs := b.Settle()
		if len(payoffs) != b.ForwarderSet().Size() {
			return false
		}
		var total float64
		for _, p := range payoffs {
			if p.Forwards != b.Forwards(p.Node) {
				return false
			}
			if p.Income < 0 {
				return false
			}
			total += p.Income
		}
		return math.Abs(total-b.TotalPaid()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: paths always start at I, end at R, use only online interior
// nodes, and respect the hop cap, for every strategy.
func TestQuickPathWellFormed(t *testing.T) {
	f := func(seed uint64, stratRaw uint8) bool {
		strat := Strategy(stratRaw % 4)
		sys := testSystemQuick(t, 25, seed, 4)
		b, err := sys.NewBatch(0, 24, ContractWithTau(75, 1), strat)
		if err != nil {
			return false
		}
		for i := 0; i < 8; i++ {
			res := b.RunConnection()
			if res.Nodes[0] != 0 || res.Nodes[len(res.Nodes)-1] != 24 {
				return false
			}
			if res.HopLen() > sys.Config().MaxHops+1 {
				return false
			}
			for _, fw := range res.Forwarders() {
				if fw == 0 || fw == 24 || !sys.Net.Online(fw) {
					return false
				}
			}
			if len(res.EdgeQualities) != res.HopLen() {
				return false
			}
			for _, q := range res.EdgeQualities {
				if q < 0 || q > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: NewEdgeRate is a valid probability and non-increasing "in the
// large": the cumulative rate after 2k connections never exceeds the rate
// after k by more than noise allows (reuse only accumulates).
func TestQuickNewEdgeRateBounds(t *testing.T) {
	f := func(seed uint64) bool {
		sys := testSystemQuick(t, 25, seed, 0)
		b, err := sys.NewBatch(0, 24, ContractWithTau(75, 4), UtilityI)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			b.RunConnection()
		}
		early := b.NewEdgeRate()
		for i := 0; i < 10; i++ {
			b.RunConnection()
		}
		late := b.NewEdgeRate()
		if early < 0 || early > 1 || late < 0 || late > 1 {
			return false
		}
		// Cumulative new-edge rate can only fall as stable reuse piles up
		// (allowing a small epsilon for paths forced through new nodes).
		return late <= early+0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// testSystemQuick mirrors testSystem but avoids t.Helper noise inside
// quick.Check closures.
func testSystemQuick(t *testing.T, n int, seed uint64, maliciousEvery int) *System {
	sys := testSystem(t, n, seed, maliciousEvery)
	return sys
}

// Property: batches are isolated — running a second batch never changes
// the first batch's settled payoffs.
func TestQuickBatchIsolation(t *testing.T) {
	f := func(seed uint64) bool {
		sys := testSystemQuick(t, 25, seed, 0)
		b1, err := sys.NewBatch(0, 24, ContractWithTau(75, 2), UtilityI)
		if err != nil {
			return false
		}
		for i := 0; i < 6; i++ {
			b1.RunConnection()
		}
		before := b1.Settle()
		b2, err := sys.NewBatch(2, 20, ContractWithTau(50, 4), Random)
		if err != nil {
			return false
		}
		for i := 0; i < 6; i++ {
			b2.RunConnection()
		}
		after := b1.Settle()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
