package core

import (
	"sort"

	"p2panon/internal/overlay"
	"p2panon/internal/telemetry"
)

// NodePayoff is one forwarder's settled outcome for a batch: m forwarding
// instances earn Income = m·P_f + P_r/‖π‖; Cost is the participation cost
// plus accumulated transmission costs; Net = Income − Cost is the realised
// utility.
type NodePayoff struct {
	Node      overlay.NodeID
	Malicious bool
	Forwards  int
	Income    float64
	Cost      float64
	Net       float64
}

// Settle computes the payoff of every forwarder in the batch's forwarder
// set under the paper's rule. It can be called at any point; the paper's
// initiator pays only after all k connections complete, so callers
// normally settle once at the end of the batch. Results are sorted by
// node ID.
func (b *Batch) Settle() []NodePayoff {
	ph := b.sys.Prof.Start(telemetry.PhaseEscrowSettle)
	defer ph.End()
	size := b.fset.Size()
	if size == 0 {
		return nil
	}
	share := b.Contract.Pr / float64(size)
	out := make([]NodePayoff, 0, size)
	for _, id := range b.fset.Members() {
		m := b.forwards[id]
		income := float64(m)*b.Contract.Pf + share
		cost := b.sys.cfg.Cost.Participation + b.transmissionCost(id)
		out = append(out, NodePayoff{
			Node:      id,
			Malicious: b.sys.Net.Node(id).Malicious,
			Forwards:  m,
			Income:    income,
			Cost:      cost,
			Net:       income - cost,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// transmissionCost sums C^t over the successors id actually forwarded to,
// reconstructed from its history profile for this batch. Peek suffices: a
// forwarder by definition recorded rows, and a node with no profile has
// no transmissions (nil-safe Profile queries return empty).
func (b *Batch) transmissionCost(id overlay.NodeID) float64 {
	prof := b.sys.Hist.Peek(id, b.ID)
	total := 0.0
	for _, succ := range prof.Successors() {
		uses := prof.EdgeUses(succ)
		total += float64(uses) * b.sys.cfg.Cost.Transmission(int(id), int(succ))
	}
	return total
}

// AnonymityA is the paper's A(‖π‖) anonymity-value function used in the
// initiator's utility U_I = A(‖π‖) − ‖π‖·P_f − P_r. The paper states only
// that A increases as ‖π‖ decreases; we use the normalised form
// A(x) = A0·L/x, consistent with the path-quality metric Q(π) = L/‖π‖.
func AnonymityA(a0, avgLen float64, forwarderSet int) float64 {
	if forwarderSet <= 0 {
		return a0 * avgLen
	}
	return a0 * avgLen / float64(forwarderSet)
}

// InitiatorUtility returns U_I for this batch: A(‖π‖) minus the payments
// the initiator makes. The paper charges ‖π‖·P_f in its formulation (each
// member of the forwarder set is paid per instance; with m totals this is
// Σm·P_f — we report the paper's literal form alongside the exact total).
func (b *Batch) InitiatorUtility(a0 float64) float64 {
	size := b.fset.Size()
	return AnonymityA(a0, b.fset.AvgLen(), size) - float64(size)*b.Contract.Pf - b.Contract.Pr
}

// TotalPaid returns the initiator's exact outlay: Σ_i m_i·P_f + P_r
// (the routing benefit is fully distributed whenever ‖π‖ > 0).
func (b *Batch) TotalPaid() float64 {
	if b.fset.Size() == 0 {
		return 0
	}
	totalForwards := 0
	for _, m := range b.forwards {
		totalForwards += m
	}
	return float64(totalForwards)*b.Contract.Pf + b.Contract.Pr
}

// GoodPayoffs filters Settle() down to non-malicious forwarders.
func (b *Batch) GoodPayoffs() []NodePayoff {
	all := b.Settle()
	out := all[:0]
	for _, p := range all {
		if !p.Malicious {
			out = append(out, p)
		}
	}
	return out
}

// Close forgets the batch's history profiles across all nodes — the paper
// settles and discards batch state once the initiator has paid (§2.2's
// payment "only after all the connections in π are completed"). Call
// after Settle; further RunConnection calls would rebuild history from
// scratch.
func (b *Batch) Close() {
	b.sys.Hist.DropBatch(b.ID)
	// The dropped profiles back any cached SPNE solve; a (hypothetical)
	// later connection must not resurrect it.
	b.spneStamp.valid = false
	// Drop the system's solve scratch too: a settled large run must not
	// pin its high-water working set; the next solve resizes exactly.
	b.sys.releaseSolveScratch()
}
