package core

import (
	"fmt"
	"math"
	"testing"

	"p2panon/internal/dist"
	"p2panon/internal/game"
	"p2panon/internal/overlay"
	"p2panon/internal/probe"
	"p2panon/internal/sim"
)

// equivSystem builds one system for the sparse-vs-dense equivalence runs.
// Everything that consumes randomness is derived from seed alone, so two
// calls with the same seed build byte-identical worlds regardless of the
// workers/dense knobs (which must not influence transcripts).
func equivSystem(t *testing.T, n int, seed uint64, workers int, dense bool) *System {
	t.Helper()
	rng := dist.NewSource(seed)
	net := overlay.NewNetwork(5, rng.Split())
	for i := 0; i < n; i++ {
		net.Join(0, i%7 == 3)
	}
	for _, id := range net.AllIDs() {
		net.RefreshNeighbors(id)
	}
	probes := probe.NewSet(net, rng.Split(), 60)
	probes.Workers = workers
	for i := 0; i < 3; i++ {
		probes.TickAll()
	}
	cfg := DefaultConfig()
	cfg.SolveWorkers = workers
	sys, err := NewSystem(cfg, net, probes, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	sys.forceDense = dense
	return sys
}

// equivRun is everything one scripted UM-II run produces: per-connection
// paths with their edge qualities, per-round solved decision tables, and
// the settled payoffs.
type equivRun struct {
	tables  [][][]game.Decision
	paths   []*PathResult
	payoffs []NodePayoff
}

// copyTable deep-copies a decision table (spneTable returns the cached
// backing storage, which later rounds overwrite).
func copyTable(tbl [][]game.Decision) [][]game.Decision {
	out := make([][]game.Decision, len(tbl))
	for h := range tbl {
		out[h] = append([]game.Decision(nil), tbl[h]...)
	}
	return out
}

// runEquivScript drives one system through a deterministic churn /
// probe-tick / connection script and records its observable outputs.
func runEquivScript(t *testing.T, n int, seed uint64, workers int, dense bool) *equivRun {
	t.Helper()
	sys := equivSystem(t, n, seed, workers, dense)
	b, err := sys.NewBatch(0, overlay.NodeID(n-1), Contract{Pf: 75, Pr: 150}, UtilityII)
	if err != nil {
		t.Fatal(err)
	}
	script := dist.NewSource(seed ^ 0x2545f4914f6cdd1d)
	out := &equivRun{}
	now := sim.Time(0)
	for round := 0; round < 12; round++ {
		now += 60
		switch script.Intn(4) {
		case 0: // take a random non-endpoint node offline
			ids := sys.Net.OnlineIDs()
			id := ids[script.Intn(len(ids))]
			if id != b.Initiator && id != b.Responder {
				sys.Net.Leave(now, id, false)
			}
		case 1: // bring the first offline node back
			for _, id := range sys.Net.AllIDs() {
				if sys.Net.Node(id).State == overlay.Offline {
					sys.Net.Rejoin(now, id)
					break
				}
			}
		case 2: // neighbor repair + probe round
			for _, id := range sys.Net.OnlineIDs() {
				sys.Net.RefreshNeighbors(id)
			}
			sys.Probes.TickAll()
		case 3: // quiet round
		}
		out.paths = append(out.paths, b.RunConnection())
		out.tables = append(out.tables, copyTable(b.spneTable()))
	}
	out.payoffs = b.Settle()
	return out
}

// sameBits reports Float64bits identity — the satellite's equivalence bar
// (plain == would also accept +0 vs −0 and reject equal NaNs).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func requireSameRun(t *testing.T, label string, got, want *equivRun) {
	t.Helper()
	if len(got.tables) != len(want.tables) {
		t.Fatalf("%s: %d rounds vs %d", label, len(got.tables), len(want.tables))
	}
	for r := range got.tables {
		g, w := got.tables[r], want.tables[r]
		if len(g) != len(w) {
			t.Fatalf("%s round %d: table rows %d != %d", label, r, len(g), len(w))
		}
		for h := range g {
			if len(g[h]) != len(w[h]) {
				t.Fatalf("%s round %d: row %d len %d != %d", label, r, h, len(g[h]), len(w[h]))
			}
			for i := range g[h] {
				gd, wd := g[h][i], w[h][i]
				if gd.Node != wd.Node || gd.Next != wd.Next ||
					!sameBits(gd.Utility, wd.Utility) || !sameBits(gd.Quality, wd.Quality) {
					t.Fatalf("%s round %d: table[%d][%d] = %+v, want %+v", label, r, h, i, gd, wd)
				}
			}
		}
		gp, wp := got.paths[r], want.paths[r]
		if len(gp.Nodes) != len(wp.Nodes) {
			t.Fatalf("%s round %d: path %v vs %v", label, r, gp.Nodes, wp.Nodes)
		}
		for i := range gp.Nodes {
			if gp.Nodes[i] != wp.Nodes[i] {
				t.Fatalf("%s round %d hop %d: node %d vs %d", label, r, i, gp.Nodes[i], wp.Nodes[i])
			}
		}
		if len(gp.EdgeQualities) != len(wp.EdgeQualities) {
			t.Fatalf("%s round %d: %d edges vs %d", label, r, len(gp.EdgeQualities), len(wp.EdgeQualities))
		}
		for i := range gp.EdgeQualities {
			if !sameBits(gp.EdgeQualities[i], wp.EdgeQualities[i]) {
				t.Fatalf("%s round %d edge %d: %x vs %x", label, r, i,
					math.Float64bits(gp.EdgeQualities[i]), math.Float64bits(wp.EdgeQualities[i]))
			}
		}
	}
	if len(got.payoffs) != len(want.payoffs) {
		t.Fatalf("%s: %d payoffs vs %d", label, len(got.payoffs), len(want.payoffs))
	}
	for i := range got.payoffs {
		g, w := got.payoffs[i], want.payoffs[i]
		if g.Node != w.Node || g.Forwards != w.Forwards ||
			!sameBits(g.Income, w.Income) || !sameBits(g.Cost, w.Cost) || !sameBits(g.Net, w.Net) {
			t.Fatalf("%s: payoff[%d] = %+v, want %+v", label, i, g, w)
		}
	}
}

// TestSparseDenseEquivalence is the randomized sparse-vs-dense equivalence
// property: for populations up to N = 200, the sparse neighbor-local
// solver — serial and sharded — must reproduce the retained dense
// SolveInto oracle bit for bit: identical Decision tables (Float64bits on
// utilities and qualities), identical chosen paths with identical edge
// qualities, and identical UM-II settled payoffs, across churn, probe
// ticks and history accumulation.
func TestSparseDenseEquivalence(t *testing.T) {
	cases := []struct {
		n    int
		seed uint64
	}{
		{12, 1},
		{37, 7},
		{80, 42},
		{200, 1234},
	}
	for _, tc := range cases {
		dense := runEquivScript(t, tc.n, tc.seed, 1, true)
		for _, workers := range []int{1, 3} {
			sparse := runEquivScript(t, tc.n, tc.seed, workers, false)
			label := fmt.Sprintf("N=%d/seed=%d/workers=%d", tc.n, tc.seed, workers)
			requireSameRun(t, label, sparse, dense)
		}
	}
}
