package faultsim

import (
	"fmt"
	"sort"
	"strings"

	"p2panon/internal/overlay"
	"p2panon/internal/payment"
	"p2panon/internal/telemetry"
)

// Invariant names, as reported in Violation.Invariant.
const (
	InvSettlement    = "settlement"           // every non-skipped batch settles without error
	InvConservation  = "payment-conservation" // credits are conserved and land where the rules say
	InvDoubleSettle  = "double-settle"        // no forwarder is paid twice in one batch
	InvContiguity    = "path-contiguity"      // delivered paths are backed by contiguous hop traces
	InvReformation   = "reformation-count"    // NACKs+timeouts balance reformations+failures
	InvReconcile     = "telemetry-reconcile"  // counters agree with the trace and the mirrored expectations
	InvTraceCapacity = "trace-capacity"       // the event ring never evicted
)

// Violation is one invariant failure found after a run.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// checkInvariants runs every post-run checker and returns the violations.
func (w *world) checkInvariants() []Violation {
	var out []Violation
	add := func(inv, format string, args ...any) {
		out = append(out, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
	}

	// (1) Settlement: any batch that tried to settle and errored.
	for _, rec := range w.batches {
		if rec.settleErr != nil {
			add(InvSettlement, "batch %d: %v", rec.batch, rec.settleErr)
		}
	}

	// (2a) Global conservation: money never appears or disappears.
	if got := w.bank.TotalBalance() + w.bank.Float(); got != w.openingTotal {
		add(InvConservation, "total balance + float = %d, want opening total %d", got, w.openingTotal)
	}

	// (2b) Per-account conservation: replay the payout rule over the
	// *legitimately minted* receipts and demand the bank agrees. A
	// double-paid claim moves real money and is caught exactly here.
	// Settlement errors leave partial payouts behind, so the per-account
	// ledger is only predictable on clean runs.
	if !w.anySettleErr {
		expected := make(map[payment.AccountID]payment.Amount, len(w.accounts))
		for id := range w.accounts {
			expected[payment.AccountID(id)] = payment.Amount(w.plan.Opening)
		}
		for _, rec := range w.batches {
			if rec.skipped || !rec.settled {
				continue
			}
			init := payment.AccountID(rec.initiator)
			expected[init] -= rec.lock
			var paid payment.Amount
			fwds := sortedForwarders(rec)
			if n := len(fwds); n > 0 {
				share := payment.Amount(w.plan.Pr) / payment.Amount(n)
				for _, f := range fwds {
					pay := payment.Amount(len(rec.receipts[f]))*payment.Amount(w.plan.Pf) + share
					expected[payment.AccountID(f)] += pay
					paid += pay
				}
			}
			expected[init] += rec.lock - paid
		}
		for _, id := range w.bank.Accounts() {
			if id == payment.AccountID(-1) {
				continue // escrow holding account, checked below
			}
			got, err := w.bank.Balance(id)
			if err != nil {
				add(InvConservation, "account %d: %v", id, err)
				continue
			}
			if want, ok := expected[id]; !ok {
				add(InvConservation, "account %d exists but was never opened by the harness", id)
			} else if got != want {
				add(InvConservation, "account %d holds %d, expected %d (delta %+d)", id, got, want, got-want)
			}
		}
		if bal, err := w.bank.Balance(payment.AccountID(-1)); err == nil && bal != 0 {
			add(InvConservation, "escrow holding account retains %d after all batches closed", bal)
		}
	}

	// (3) Double-settle: the bank's actual payout list pays one forwarder
	// at most once per batch.
	for _, rec := range w.batches {
		seen := make(map[payment.AccountID]int)
		for _, p := range rec.payouts {
			seen[p.Forwarder]++
		}
		for f, n := range seen {
			if n > 1 {
				add(InvDoubleSettle, "batch %d: forwarder %d settled %d times", rec.batch, f, n)
			}
		}
	}

	// (7) Trace capacity first: the trace-backed checkers below are only
	// meaningful over a complete event history.
	if d := w.tracer.Dropped(); d > 0 {
		add(InvTraceCapacity, "event ring evicted %d events (cap %d); trace-backed invariants skipped", d, w.plan.TraceCap)
		return out
	}
	events := w.tracer.Events()

	// (4) Path contiguity: every delivered connection's path must be backed
	// by a hop-forward trace at every position, in the delivering attempt.
	// "At least one" rather than "exactly one": a duplicated message can
	// legitimately re-trace a hop.
	type hopKey struct {
		batch, conn, hop, node int
		attempt                string
	}
	hops := make(map[hopKey]int)
	for _, ev := range events {
		if ev.Kind == telemetry.KindHopForward {
			hops[hopKey{ev.Batch, ev.Conn, ev.Hop, ev.Node, ev.Detail}]++
		}
	}
	for _, rec := range w.batches {
		for conn, d := range rec.delivered {
			att := fmt.Sprintf("attempt %d", d.attempt)
			for i := 0; i+1 < len(d.path); i++ {
				if hops[hopKey{rec.batch, conn, i, int(d.path[i]), att}] == 0 {
					add(InvContiguity, "batch %d conn %d: delivered path %v has no hop-forward trace at position %d (node %d, %s)",
						rec.batch, conn, d.path, i, d.path[i], att)
				}
			}
		}
	}

	// (5) Reformation accounting: every NACK or timeout terminates exactly
	// one attempt, which either reforms or fails the connection. Failures
	// caused by an offline initiator at (re)launch consume no attempt.
	kindCount := make(map[telemetry.EventKind]int64)
	var failedNonOffline int64
	for _, ev := range events {
		kindCount[ev.Kind]++
		if ev.Kind == telemetry.KindFailed && !strings.HasPrefix(ev.Detail, "cause=offline") {
			failedNonOffline++
		}
	}
	lhs := kindCount[telemetry.KindNack] + kindCount[telemetry.KindTimeout]
	rhs := kindCount[telemetry.KindReformation] + failedNonOffline
	if lhs != rhs {
		add(InvReformation, "%d NACKs + %d timeouts != %d reformations + %d non-offline failures",
			kindCount[telemetry.KindNack], kindCount[telemetry.KindTimeout],
			kindCount[telemetry.KindReformation], failedNonOffline)
	}

	// (6) Reconciliation: the labelled counters and the structured trace
	// are two independent records of the same run; they must agree with
	// each other and with the expectations mirrored during injection.
	recon := []struct {
		metric string
		kind   telemetry.EventKind
	}{
		{metricLaunches, telemetry.KindLaunch},
		{metricHops, telemetry.KindHopForward},
		{metricNacks, telemetry.KindNack},
		{metricTimeouts, telemetry.KindTimeout},
		{metricReforms, telemetry.KindReformation},
		{metricDelivered, telemetry.KindDelivered},
		{metricFailed, telemetry.KindFailed},
		{metricFaults, telemetry.KindFault},
	}
	for _, rc := range recon {
		if got, want := w.reg.Counter(rc.metric, nil).Value(), kindCount[rc.kind]; got != want {
			add(InvReconcile, "%s = %d but the trace holds %d %q events", rc.metric, got, want, rc.kind)
		}
	}
	var settledBatches int64
	var wantRejected int64
	for _, rec := range w.batches {
		if rec.settled {
			settledBatches++
			wantRejected += int64(rec.expectRejected)
		}
	}
	if got := w.reg.Counter("payment_settlements_total", nil).Value(); got != settledBatches {
		add(InvReconcile, "payment_settlements_total = %d, want %d settled batches", got, settledBatches)
	}
	if got, want := kindCount[telemetry.KindSettled], settledBatches; got != want {
		add(InvReconcile, "trace holds %d settled events, want %d", got, want)
	}
	dsCounter := w.reg.Counter("payment_cheats_detected_total", telemetry.Labels{"kind": "double_spend"})
	if got := dsCounter.Value(); got != int64(w.expectCheatsDS) {
		add(InvReconcile, "payment_cheats_detected_total{kind=double_spend} = %d, want %d replayed serials", got, w.expectCheatsDS)
	}
	rrCounter := w.reg.Counter("payment_cheats_detected_total", telemetry.Labels{"kind": "rejected_receipt"})
	if got := rrCounter.Value(); got != wantRejected {
		add(InvReconcile, "payment_cheats_detected_total{kind=rejected_receipt} = %d, want %d mirrored rejections", got, wantRejected)
	}
	return out
}

// sortedForwarders returns the batch's legitimately receipted forwarders
// in ascending order.
func sortedForwarders(rec *batchRecord) []overlay.NodeID {
	fwds := make([]overlay.NodeID, 0, len(rec.receipts))
	for f, rs := range rec.receipts {
		if len(rs) > 0 {
			fwds = append(fwds, f)
		}
	}
	sort.Slice(fwds, func(i, j int) bool { return fwds[i] < fwds[j] })
	return fwds
}
