package faultsim

import (
	"fmt"
	"sort"
	"time"

	"p2panon/internal/churn"
	"p2panon/internal/core"
	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/payment"
	"p2panon/internal/probe"
	"p2panon/internal/quality"
	"p2panon/internal/sim"
	"p2panon/internal/telemetry"
	"p2panon/internal/transport"
)

// Harness metric names. Every counter with a trace-event twin is checked
// against the trace by the reconciliation invariant; sends, offline drops
// and stale replies have no per-event trace (they would flood the ring)
// and are reported in Result only.
const (
	metricSends     = "faultsim_sends_total"
	metricDrops     = "faultsim_offline_drops_total"
	metricStale     = "faultsim_stale_total"
	metricLaunches  = "faultsim_launches_total"
	metricHops      = "faultsim_hops_total"
	metricNacks     = "faultsim_nacks_total"
	metricTimeouts  = "faultsim_timeouts_total"
	metricReforms   = "faultsim_reformations_total"
	metricDelivered = "faultsim_delivered_total"
	metricFailed    = "faultsim_failed_total"
	metricFaults    = "faultsim_faults_injected_total"
)

// wkind is a protocol message kind inside the world.
type wkind uint8

const (
	wFwd wkind = iota
	wConfirm
	wNack
)

func (k wkind) String() string {
	switch k {
	case wFwd:
		return "forward"
	case wConfirm:
		return "confirm"
	default:
		return "nack"
	}
}

// wmsg is one in-flight protocol message. For forward messages `path` is
// the accumulated forwarder path (appended on handling, always copied so
// duplicated messages cannot alias); for reverse messages `hop` is the
// index in path of the node the message is addressed to.
type wmsg struct {
	kind                 wkind
	batch, conn, attempt int
	from, to             overlay.NodeID
	initiator, responder overlay.NodeID
	remaining            int
	path                 []overlay.NodeID
	hop                  int
	reason               string
	// Trace context, carried exactly like the netwire frame extension:
	// the batch trace id and the span of the last causal step.
	trace, span telemetry.SpanID
}

// connState tracks the single in-flight connection (connections within a
// batch run sequentially, as the live runtime's Connect loop does).
type connState struct {
	batch, conn int
	attempt     int
	resolved    bool
	backoff     float64
	reforms     int
	// launchSpan is this attempt's launch; prevSpan the last causal step
	// (launch, nack or timeout) the next reform/fail span parents on.
	launchSpan, prevSpan telemetry.SpanID
}

// deliveredConn records one confirmed delivery for the path-contiguity
// invariant.
type deliveredConn struct {
	path    []overlay.NodeID
	attempt int
}

// batchRecord is everything invariant checking needs about one batch.
type batchRecord struct {
	batch                int
	skipped              bool
	initiator, responder overlay.NodeID
	lock                 payment.Amount
	escrow               *payment.Escrow
	minter               *payment.ReceiptMinter
	router               transport.Router
	receipts             map[overlay.NodeID][]payment.Receipt
	delivered            map[int]deliveredConn
	payouts              []payment.Payout
	refund               payment.Amount
	settleErr            error
	settled              bool
	expectRejected       int
	trace, root          telemetry.SpanID
}

// faultSlot is a message fault awaiting its matching send.
type faultSlot struct {
	Fault
	used bool
}

// world is the deterministic protocol world: overlay, churn, probing,
// routing, forwarding, escrow settlement — all scheduled on one sim.Engine
// so that a (plan, seed) pair replays byte-identically.
type world struct {
	plan   Plan
	eng    *sim.Engine
	net    *overlay.Network
	drv    *churn.Driver
	probes *probe.Set
	bank   *payment.Bank
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	spans  *telemetry.SpanRecorder

	rng       *dist.Source // world randomness (endpoints, churn, probes)
	routerRNG *dist.Source // router randomness, split per batch

	cSends, cDrops, cStale                        *telemetry.Counter
	cLaunches, cHops, cNacks, cTimeouts, cReforms *telemetry.Counter
	cDelivered, cFailed, cFaults                  *telemetry.Counter

	accounts     map[overlay.NodeID]struct{}
	openingTotal payment.Amount

	msgSeq         map[[2]int]int // per-(batch,conn) send counter
	msgFaults      []*faultSlot
	probeLies      map[overlay.NodeID]bool
	expectCheatsDS int

	batches      []*batchRecord
	cur          *connState
	curRec       *batchRecord
	settleQ      *payment.SettleQueue
	finished     bool
	anySettleErr bool
}

func newWorld(p Plan) (*world, error) {
	bank, err := payment.NewBank(p.KeyBits)
	if err != nil {
		return nil, err
	}
	rng := dist.NewSource(p.Seed)
	reg := telemetry.NewRegistry()
	w := &world{
		plan:      p,
		eng:       sim.NewEngine(),
		bank:      bank,
		reg:       reg,
		tracer:    telemetry.NewTracer(p.TraceCap),
		rng:       rng,
		accounts:  make(map[overlay.NodeID]struct{}),
		msgSeq:    make(map[[2]int]int),
		probeLies: make(map[overlay.NodeID]bool),
		settleQ:   payment.NewSettleQueue(p.SettleQueue),
	}
	w.net = overlay.NewNetwork(p.Degree, rng.Split())
	w.probes = probe.NewSet(w.net, rng.Split(), sim.Time(p.ProbePeriod))
	w.routerRNG = rng.Split()

	// Spans are stamped with the virtual clock in microseconds, so the log
	// is seed-determined: two runs of one plan are byte-identical.
	w.spans = telemetry.NewSpanRecorder(p.TraceCap)
	w.spans.SetSeed(int64(p.Seed))
	w.spans.SetClock(func() int64 {
		return int64(float64(w.eng.Now()) * 1e6)
	})

	w.cSends = reg.Counter(metricSends, nil)
	w.cDrops = reg.Counter(metricDrops, nil)
	w.cStale = reg.Counter(metricStale, nil)
	w.cLaunches = reg.Counter(metricLaunches, nil)
	w.cHops = reg.Counter(metricHops, nil)
	w.cNacks = reg.Counter(metricNacks, nil)
	w.cTimeouts = reg.Counter(metricTimeouts, nil)
	w.cReforms = reg.Counter(metricReforms, nil)
	w.cDelivered = reg.Counter(metricDelivered, nil)
	w.cFailed = reg.Counter(metricFailed, nil)
	w.cFaults = reg.Counter(metricFaults, nil)
	return w, nil
}

// vtime maps virtual seconds onto a fixed epoch so trace timestamps are
// seed-determined, never wall-clock.
func (w *world) vtime() time.Time {
	return time.Unix(0, 0).UTC().Add(time.Duration(float64(w.eng.Now()) * float64(time.Second)))
}

// trace stamps ev with the virtual clock and records it.
func (w *world) trace(ev telemetry.Event) {
	ev.Time = w.vtime()
	w.tracer.Record(ev)
}

// traceFault records the application of a scheduled fault. Counter and
// event move together so reconciliation can compare them.
func (w *world) traceFault(f Fault, detail string) {
	w.cFaults.Inc()
	w.trace(telemetry.Event{
		Kind: telemetry.KindFault, Batch: f.Batch, Conn: f.Conn, Node: f.Node,
		Detail: fmt.Sprintf("%s: %s", f.Kind, detail),
	})
}

// setup wires the world together and schedules everything up to the first
// batch. Initial joins happen synchronously (the churn driver seeds the
// population at t=0), so accounts exist before any traffic.
func (w *world) setup() {
	w.bank.Instrument(w.reg)
	w.net.Instrument(w.reg)
	w.settleQ.Instrument(w.reg)
	w.net.OnChurn(func(id overlay.NodeID, s overlay.State) {
		switch s {
		case overlay.Online:
			if _, ok := w.accounts[id]; !ok {
				opening := payment.Amount(w.plan.Opening)
				if err := w.bank.OpenAccount(payment.AccountID(id), opening); err == nil {
					w.accounts[id] = struct{}{}
					w.openingTotal += opening
				}
			}
			w.markLive(id)
		case overlay.Offline, overlay.Departed:
			w.markDead(id)
		}
	})

	cfg := churn.DefaultConfig()
	cfg.N = w.plan.Nodes
	cfg.MaliciousFraction = w.plan.MaliciousFraction
	cfg.Static = !w.plan.Churn
	w.drv = churn.NewDriver(cfg, w.net, w.rng.Split())
	w.drv.Start(w.eng)
	w.probes.Attach(w.eng)

	for i := range w.plan.Faults {
		f := w.plan.Faults[i]
		switch f.Kind {
		case FaultCrash, FaultRestart, FaultDoubleDeposit, FaultProbeLie:
			w.eng.AfterFunc(sim.Time(f.At), func(*sim.Engine) { w.applyNodeFault(f) })
		case FaultDrop, FaultDelay, FaultDuplicate, FaultReorder:
			w.msgFaults = append(w.msgFaults, &faultSlot{Fault: f})
		}
	}

	// Two probing periods of warm-up give availability estimates something
	// to say before the first utility-routed batch.
	w.eng.AfterFunc(sim.Time(2*w.plan.ProbePeriod+1), func(*sim.Engine) { w.startBatch(1) })
}

func (w *world) markDead(id overlay.NodeID) {
	if w.curRec == nil || w.curRec.router == nil {
		return
	}
	if ca, ok := w.curRec.router.(transport.ChurnAware); ok {
		ca.MarkDead(id)
	}
}

func (w *world) markLive(id overlay.NodeID) {
	if w.curRec == nil || w.curRec.router == nil {
		return
	}
	if ca, ok := w.curRec.router.(transport.ChurnAware); ok {
		ca.MarkLive(id)
	}
}

// availMap aggregates probe-observed session times into availability
// shares. It deliberately avoids Estimator.Availability/Snapshot (their
// sums iterate Go maps, whose order is randomized) and instead walks the
// sorted online set so the result is identical on every run.
func (w *world) availMap() map[overlay.NodeID]float64 {
	online := w.net.OnlineIDs()
	raw := make(map[overlay.NodeID]float64, len(online))
	var total float64
	for _, v := range online {
		var t float64
		for _, obs := range online {
			if obs == v {
				continue
			}
			t += w.probes.For(obs).SessionTime(v)
		}
		raw[v] = t
		total += t
	}
	avail := make(map[overlay.NodeID]float64, len(online))
	for _, v := range online {
		if total > 0 {
			avail[v] = raw[v] / total
		} else {
			avail[v] = 1 / float64(len(online))
		}
	}
	for v := range w.probeLies {
		if _, ok := avail[v]; ok {
			avail[v] = 1
		}
	}
	return avail
}

func (w *world) buildRouter(topo transport.Topology, avail map[overlay.NodeID]float64) transport.Router {
	c := core.Contract{Pf: float64(w.plan.Pf), Pr: float64(w.plan.Pr)}
	switch w.plan.Router {
	case "random":
		return transport.NewRandomRouter(topo, w.routerRNG.Split())
	case "utility2":
		return transport.NewUtilityIIRouter(topo, quality.DefaultWeights(), c, avail)
	default:
		return transport.NewUtilityRouter(topo, quality.DefaultWeights(), c, avail)
	}
}

func (w *world) routerFor(batch int) transport.Router {
	if batch >= 1 && batch <= len(w.batches) {
		return w.batches[batch-1].router
	}
	return nil
}

// startBatch opens escrow, snapshots the topology, builds the router and
// launches the batch's first connection.
func (w *world) startBatch(b int) {
	rec := &batchRecord{
		batch:     b,
		receipts:  make(map[overlay.NodeID][]payment.Receipt),
		delivered: make(map[int]deliveredConn),
	}
	w.batches = append(w.batches, rec)
	w.curRec = rec

	good := w.net.GoodOnline()
	if len(good) < 2 {
		rec.skipped = true
		w.nextBatch()
		return
	}
	ii := w.rng.Intn(len(good))
	rr := w.rng.Intn(len(good) - 1)
	if rr >= ii {
		rr++
	}
	rec.initiator, rec.responder = good[ii], good[rr]

	rec.trace = w.spans.TraceID(b, int(rec.initiator), int(rec.responder))
	rec.root = telemetry.NewSpanID(rec.trace, telemetry.SpanBatch, 0, 0, 0, int(rec.initiator))
	w.spans.Record(telemetry.Span{
		Trace: rec.trace, ID: rec.root, Kind: telemetry.SpanBatch, Batch: b, Node: int(rec.initiator),
	})

	topo := transport.SnapshotTopology(w.net)
	rec.router = w.buildRouter(topo, w.availMap())

	minter, err := payment.NewReceiptMinter([]byte(fmt.Sprintf("faultsim-batch-%d-%d", w.plan.Seed, b)))
	if err != nil {
		rec.skipped = true
		rec.settleErr = err
		w.anySettleErr = true
		w.nextBatch()
		return
	}
	rec.minter = minter

	// Lock twice the worst-case legitimate payout: a double-paid claim must
	// *succeed* and be caught by the conservation checker, not bounce off an
	// exhausted escrow.
	rec.lock = 2 * (payment.Amount(w.plan.Conns*w.plan.Budget)*payment.Amount(w.plan.Pf) + payment.Amount(w.plan.Pr))
	escrow, err := w.bank.OpenEscrow(payment.AccountID(rec.initiator), rec.lock)
	if err != nil {
		rec.skipped = true
		rec.settleErr = err
		w.anySettleErr = true
		w.nextBatch()
		return
	}
	rec.escrow = escrow
	w.launchConn(1)
}

func (w *world) nextBatch() {
	b := w.curRec.batch
	w.curRec = nil
	if b >= w.plan.Batches {
		w.finished = true
		w.eng.Stop()
		return
	}
	w.eng.AfterFunc(sim.Time(w.plan.ProbePeriod/2), func(*sim.Engine) { w.startBatch(b + 1) })
}

func (w *world) launchConn(c int) {
	rec := w.curRec
	w.cur = &connState{batch: rec.batch, conn: c, attempt: 1, backoff: w.plan.BackoffBase}
	w.cLaunches.Inc()
	w.trace(telemetry.Event{
		Kind: telemetry.KindLaunch, Batch: rec.batch, Conn: c, Node: int(rec.initiator),
		Detail: fmt.Sprintf("responder %d budget %d", rec.responder, w.plan.Budget),
	})
	w.startAttempt()
}

// startAttempt arms the attempt deadline and injects the first forward
// message at the initiator.
func (w *world) startAttempt() {
	cur, rec := w.cur, w.curRec
	if !w.net.Online(rec.initiator) {
		w.failConn("offline", "initiator offline")
		return
	}
	attempt := cur.attempt
	launch := telemetry.NewSpanID(rec.root, telemetry.SpanLaunch, cur.conn, attempt, 0, int(rec.initiator))
	w.spans.Record(telemetry.Span{
		Trace: rec.trace, ID: launch, Parent: rec.root, Kind: telemetry.SpanLaunch,
		Batch: cur.batch, Conn: cur.conn, Attempt: attempt, Node: int(rec.initiator),
	})
	cur.launchSpan, cur.prevSpan = launch, launch
	w.eng.AfterFunc(sim.Time(w.plan.AttemptTimeout), func(*sim.Engine) {
		if w.cur != cur || cur.attempt != attempt || cur.resolved {
			return
		}
		cur.resolved = true
		w.cTimeouts.Inc()
		w.trace(telemetry.Event{
			Kind: telemetry.KindTimeout, Batch: cur.batch, Conn: cur.conn, Node: int(rec.initiator),
			Detail: fmt.Sprintf("attempt %d", attempt),
		})
		timeoutSpan := telemetry.NewSpanID(launch, telemetry.SpanTimeout, cur.conn, attempt, 0, int(rec.initiator))
		w.spans.Record(telemetry.Span{
			Trace: rec.trace, ID: timeoutSpan, Parent: launch, Kind: telemetry.SpanTimeout,
			Batch: cur.batch, Conn: cur.conn, Attempt: attempt, Node: int(rec.initiator),
		})
		cur.prevSpan = timeoutSpan
		w.retryOrFail("timeout", "attempt deadline")
	})
	w.send(wmsg{
		kind: wFwd, batch: cur.batch, conn: cur.conn, attempt: attempt,
		from: overlay.None, to: rec.initiator,
		initiator: rec.initiator, responder: rec.responder,
		remaining: w.plan.Budget,
		trace:     rec.trace, span: launch,
	})
}

// send pushes a message onto the wire, applying at most one matching
// message fault.
func (w *world) send(m wmsg) {
	w.cSends.Inc()
	key := [2]int{m.batch, m.conn}
	w.msgSeq[key]++
	seq := w.msgSeq[key]
	lat := sim.Time(w.plan.Latency)
	for _, fs := range w.msgFaults {
		if fs.used || fs.Batch != m.batch || fs.Conn != m.conn || fs.Msg != seq {
			continue
		}
		fs.used = true
		w.traceFault(fs.Fault, fmt.Sprintf("msg %d (%s %d->%d)", seq, m.kind, m.from, m.to))
		switch fs.Kind {
		case FaultDrop:
			return
		case FaultDelay, FaultReorder:
			w.eng.AfterFunc(lat+sim.Time(fs.Delay), func(*sim.Engine) { w.deliver(m) })
			return
		case FaultDuplicate:
			w.eng.AfterFunc(lat, func(*sim.Engine) { w.deliver(m) })
			w.eng.AfterFunc(lat+sim.Time(fs.Delay), func(*sim.Engine) { w.deliver(m) })
			return
		}
	}
	w.eng.AfterFunc(lat, func(*sim.Engine) { w.deliver(m) })
}

// deliver hands a message to its target, or handles the target being
// offline: forwards NACK back from the last live hop, reverse messages
// route around the corpse (or die at a dead initiator, where the attempt
// timeout cleans up).
func (w *world) deliver(m wmsg) {
	if !w.net.Online(m.to) {
		w.cDrops.Inc()
		w.markDead(m.to)
		switch m.kind {
		case wFwd:
			w.nackBack(m, len(m.path)-1, fmt.Sprintf("next hop %d offline", m.to))
		default:
			if m.hop > 0 {
				m.hop--
				m.to = m.path[m.hop]
				w.send(m)
			}
		}
		return
	}
	if m.kind == wFwd {
		w.handleForward(m)
		return
	}
	w.handleReverse(m)
}

// handleForward appends the receiving node to the path and either confirms
// (responder reached) or routes onward; an exhausted hop budget forwards
// straight to the responder, exactly like the live runtime.
func (w *world) handleForward(m wmsg) {
	self := m.to
	path := append(append([]overlay.NodeID(nil), m.path...), self)
	m.path = path
	if self == m.responder {
		hop := len(path) - 2
		if hop < 0 {
			hop = 0
		}
		respondSpan := m.span
		if m.trace != 0 {
			respondSpan = telemetry.NewSpanID(m.span, telemetry.SpanRespond, m.conn, 0, len(path)-1, int(self))
			w.spans.Record(telemetry.Span{
				Trace: m.trace, ID: respondSpan, Parent: m.span, Kind: telemetry.SpanRespond,
				Batch: m.batch, Conn: m.conn, Hop: len(path) - 1, Node: int(self),
			})
		}
		w.send(wmsg{
			kind: wConfirm, batch: m.batch, conn: m.conn, attempt: m.attempt,
			initiator: m.initiator, responder: m.responder,
			path: path, hop: hop, to: path[hop],
			trace: m.trace, span: respondSpan,
		})
		return
	}
	w.cHops.Inc()
	w.trace(telemetry.Event{
		Kind: telemetry.KindHopForward, Batch: m.batch, Conn: m.conn, Node: int(self),
		Hop: len(path) - 1, Detail: fmt.Sprintf("attempt %d", m.attempt),
	})
	if m.trace != 0 {
		hopSpan := telemetry.NewSpanID(m.span, telemetry.SpanHop, m.conn, 0, len(path)-1, int(self))
		w.spans.Record(telemetry.Span{
			Trace: m.trace, ID: hopSpan, Parent: m.span, Kind: telemetry.SpanHop,
			Batch: m.batch, Conn: m.conn, Hop: len(path) - 1, Node: int(self),
		})
		m.span = hopSpan
	}
	next := m.responder
	if m.remaining > 0 {
		if router := w.routerFor(m.batch); router != nil {
			pred := overlay.None
			if len(path) >= 2 {
				pred = path[len(path)-2]
			}
			nh, deliverNow := router.NextHop(self, pred, m.initiator, m.responder, m.batch, m.conn, m.remaining)
			if !deliverNow && nh != overlay.None {
				next = nh
			}
		}
	}
	out := m
	out.from = self
	out.to = next
	out.remaining = m.remaining - 1
	w.send(out)
}

// handleReverse relays a confirm/nack one hop toward the initiator, or
// accepts it on arrival at path[0].
func (w *world) handleReverse(m wmsg) {
	if m.hop <= 0 {
		if m.kind == wConfirm {
			w.acceptConfirm(m)
		} else {
			w.acceptNack(m)
		}
		return
	}
	m.hop--
	m.to = m.path[m.hop]
	w.send(m)
}

// nackBack originates a NACK at path[fromIdx] (or directly at the
// initiator when the path is empty).
func (w *world) nackBack(m wmsg, fromIdx int, reason string) {
	nackSpan := telemetry.SpanID(0)
	if m.trace != 0 {
		nackSpan = telemetry.NewSpanID(m.span, telemetry.SpanNack, m.conn, 0, len(m.path), int(m.initiator))
		w.spans.Record(telemetry.Span{
			Trace: m.trace, ID: nackSpan, Parent: m.span, Kind: telemetry.SpanNack,
			Batch: m.batch, Conn: m.conn, Hop: len(m.path), Node: int(m.initiator), Detail: reason,
		})
	}
	n := wmsg{
		kind: wNack, batch: m.batch, conn: m.conn, attempt: m.attempt,
		initiator: m.initiator, responder: m.responder,
		path: m.path, reason: reason,
		trace: m.trace, span: nackSpan,
	}
	if fromIdx < 0 || len(m.path) == 0 {
		w.acceptNack(n)
		return
	}
	n.hop = fromIdx
	n.to = m.path[fromIdx]
	w.send(n)
}

// current reports whether m addresses the in-flight attempt; anything else
// is stale (late duplicate, superseded attempt, settled batch).
func (w *world) current(m wmsg) bool {
	cur := w.cur
	return cur != nil && cur.batch == m.batch && cur.conn == m.conn &&
		cur.attempt == m.attempt && !cur.resolved
}

func (w *world) acceptConfirm(m wmsg) {
	if !w.current(m) {
		w.cStale.Inc()
		return
	}
	cur, rec := w.cur, w.curRec
	cur.resolved = true
	w.cDelivered.Inc()
	w.trace(telemetry.Event{
		Kind: telemetry.KindDelivered, Batch: m.batch, Conn: m.conn, Node: int(m.initiator),
		Hop:    len(m.path),
		Detail: fmt.Sprintf("attempt %d path %d after %d reformations", m.attempt, len(m.path), cur.reforms),
	})
	if m.trace != 0 {
		parent := m.span
		if parent == 0 {
			parent = cur.launchSpan
		}
		deliver := telemetry.NewSpanID(parent, telemetry.SpanDeliver, m.conn, m.attempt, 0, int(m.initiator))
		w.spans.Record(telemetry.Span{
			Trace: m.trace, ID: deliver, Parent: parent, Kind: telemetry.SpanDeliver,
			Batch: m.batch, Conn: m.conn, Attempt: m.attempt, Node: int(m.initiator),
		})
	}
	rec.delivered[m.conn] = deliveredConn{path: append([]overlay.NodeID(nil), m.path...), attempt: m.attempt}
	for i := 1; i <= len(m.path)-2; i++ {
		f := m.path[i]
		rec.receipts[f] = append(rec.receipts[f], rec.minter.Mint(m.conn, i, payment.AccountID(f)))
	}
	w.finishConn()
}

func (w *world) acceptNack(m wmsg) {
	if !w.current(m) {
		w.cStale.Inc()
		return
	}
	w.cur.resolved = true
	w.cNacks.Inc()
	w.trace(telemetry.Event{
		Kind: telemetry.KindNack, Batch: m.batch, Conn: m.conn, Node: int(m.initiator),
		Hop: len(m.path), Detail: m.reason,
	})
	if m.span != 0 {
		w.cur.prevSpan = m.span
	}
	w.retryOrFail("nack", m.reason)
}

// retryOrFail either schedules a path reformation after backoff or fails
// the connection for good. Every traced NACK/timeout flows through here,
// which is what makes the reformation-accounting invariant exact.
func (w *world) retryOrFail(cause, reason string) {
	cur := w.cur
	if cur.attempt >= w.plan.MaxAttempts {
		w.failConn(cause, reason)
		return
	}
	pause := cur.backoff
	cur.backoff *= 2
	if cur.backoff > w.plan.BackoffMax {
		cur.backoff = w.plan.BackoffMax
	}
	w.eng.AfterFunc(sim.Time(pause), func(*sim.Engine) {
		if w.cur != cur {
			return
		}
		cur.reforms++
		cur.attempt++
		cur.resolved = false
		w.cReforms.Inc()
		w.trace(telemetry.Event{
			Kind: telemetry.KindReformation, Batch: cur.batch, Conn: cur.conn, Node: int(w.curRec.initiator),
			Detail: fmt.Sprintf("attempt %d", cur.attempt),
		})
		rec := w.curRec
		parent := cur.prevSpan
		if parent == 0 {
			parent = rec.root
		}
		reform := telemetry.NewSpanID(parent, telemetry.SpanReform, cur.conn, cur.attempt, 0, int(rec.initiator))
		w.spans.Record(telemetry.Span{
			Trace: rec.trace, ID: reform, Parent: parent, Kind: telemetry.SpanReform,
			Batch: cur.batch, Conn: cur.conn, Attempt: cur.attempt, Node: int(rec.initiator),
		})
		w.startAttempt()
	})
}

func (w *world) failConn(cause, reason string) {
	cur, rec := w.cur, w.curRec
	cur.resolved = true
	w.cFailed.Inc()
	w.trace(telemetry.Event{
		Kind: telemetry.KindFailed, Batch: cur.batch, Conn: cur.conn, Node: int(rec.initiator),
		Detail: fmt.Sprintf("cause=%s: %s", cause, reason),
	})
	parent := cur.prevSpan
	if parent == 0 {
		parent = rec.root
	}
	fail := telemetry.NewSpanID(parent, telemetry.SpanFail, cur.conn, cur.attempt, 0, int(rec.initiator))
	w.spans.Record(telemetry.Span{
		Trace: rec.trace, ID: fail, Parent: parent, Kind: telemetry.SpanFail,
		Batch: cur.batch, Conn: cur.conn, Attempt: cur.attempt, Node: int(rec.initiator),
	})
	w.finishConn()
}

func (w *world) finishConn() {
	c := w.cur.conn
	w.cur = nil
	if c < w.plan.Conns {
		w.eng.AfterFunc(0, func(*sim.Engine) { w.launchConn(c + 1) })
		return
	}
	w.eng.AfterFunc(0, func(*sim.Engine) { w.settleBatch() })
}

// settleBatch assembles claims from the minted receipts (sorted by
// forwarder for determinism), applies any settlement faults, mirrors the
// bank's rejection rule into expectRejected, and hands the job to the
// bounded settlement queue. The queue is drained SettleDelay virtual
// seconds later — the deterministic drain point of the async pipeline.
// The funds sit in escrow for that whole window, so a crash between
// enqueue and drain loses nothing: settlement runs against the escrow
// account, not the (possibly dead) initiator.
func (w *world) settleBatch() {
	rec := w.curRec
	fwds := make([]overlay.NodeID, 0, len(rec.receipts))
	for f := range rec.receipts {
		fwds = append(fwds, f)
	}
	sort.Slice(fwds, func(i, j int) bool { return fwds[i] < fwds[j] })
	claims := make([]payment.Claim, 0, len(fwds))
	for _, f := range fwds {
		claims = append(claims, payment.Claim{
			Forwarder: payment.AccountID(f),
			Receipts:  append([]payment.Receipt(nil), rec.receipts[f]...),
		})
	}
	for i := range w.plan.Faults {
		f := w.plan.Faults[i]
		if f.Batch != rec.batch {
			continue
		}
		switch f.Kind {
		case FaultInflate:
			claims = w.applyInflate(rec, claims, f)
		case FaultDoubleSpend:
			claims = w.applyDoubleSpend(claims, f)
		}
	}
	rec.expectRejected = expectRejected(rec.minter, claims)

	job := payment.SettleJob{
		Batch: rec.batch, Escrow: rec.escrow, Minter: rec.minter,
		Pf: payment.Amount(w.plan.Pf), Pr: payment.Amount(w.plan.Pr),
		Claims: claims,
	}
	if err := w.settleQ.Enqueue(job); err != nil {
		// Backpressure: drain on the spot to free a slot, then retry. The
		// world runs one batch at a time, so this only trips when a plan
		// sets settle_queue below the number of undrained batches.
		for _, res := range w.settleQ.Drain() {
			w.applySettleResult(res)
		}
		if err := w.settleQ.Enqueue(job); err != nil {
			w.applySettleResult(settleNow(job))
			w.nextBatch()
			return
		}
	}
	w.eng.AfterFunc(sim.Time(w.plan.SettleDelay), func(*sim.Engine) { w.drainSettlements() })
}

// settleNow executes a job synchronously — the fallback when the queue
// refuses it even after a drain (it was closed).
func settleNow(j payment.SettleJob) payment.SettleResult {
	res := payment.SettleResult{Batch: j.Batch}
	res.Payouts, res.Refund, res.Err = j.Escrow.SettleFromEscrow(j.Minter, j.Pf, j.Pr, j.Claims)
	return res
}

// drainSettlements is the virtual-clock drain point: settle every queued
// job, fold the outcomes back into their batch records, then advance to
// the next batch.
func (w *world) drainSettlements() {
	for _, res := range w.settleQ.Drain() {
		w.applySettleResult(res)
	}
	w.nextBatch()
}

// applySettleResult folds one settlement outcome into its batch record,
// emitting the same trace event and payout spans the inline settlement
// used to.
func (w *world) applySettleResult(res payment.SettleResult) {
	if res.Batch < 1 || res.Batch > len(w.batches) {
		return
	}
	rec := w.batches[res.Batch-1]
	rec.payouts, rec.refund = res.Payouts, res.Refund
	if res.Err != nil {
		rec.settleErr = res.Err
		w.anySettleErr = true
		rec.escrow.Close() // best effort: return whatever is still locked
	} else {
		rec.settled = true
		w.trace(telemetry.Event{
			Kind: telemetry.KindSettled, Batch: rec.batch, Node: int(rec.initiator),
			Detail: fmt.Sprintf("%d payouts, refund %d", len(res.Payouts), res.Refund),
		})
		for _, po := range res.Payouts {
			span := telemetry.NewSpanID(rec.root, telemetry.SpanSettle, 0, 0, 0, int(po.Forwarder))
			w.spans.Record(telemetry.Span{
				Trace: rec.trace, ID: span, Parent: rec.root, Kind: telemetry.SpanSettle,
				Batch: rec.batch, Node: int(po.Forwarder),
				Detail: fmt.Sprintf("payoff=%d forwards=%d", po.Amount, po.Forwards),
			})
		}
	}
}

// applyInflate pads the target's claim with forged receipts plus one
// duplicate of a real receipt when it has any — the §5 inflated forwarding
// count. A correct settlement rejects every one of them.
func (w *world) applyInflate(rec *batchRecord, claims []payment.Claim, f Fault) []payment.Claim {
	target := payment.AccountID(f.Node)
	idx := -1
	for i := range claims {
		if claims[i].Forwarder == target {
			idx = i
			break
		}
	}
	if idx < 0 {
		claims = append(claims, payment.Claim{Forwarder: target})
		idx = len(claims) - 1
	}
	for i := 0; i < f.Count; i++ {
		claims[idx].Receipts = append(claims[idx].Receipts,
			payment.Receipt{Conn: 100000 + i, Hop: i, Forwarder: target})
	}
	if rs := rec.receipts[overlay.NodeID(f.Node)]; len(rs) > 0 {
		claims[idx].Receipts = append(claims[idx].Receipts, rs[0])
	}
	w.traceFault(f, fmt.Sprintf("claim of node %d padded with %d forged receipts", f.Node, f.Count))
	return claims
}

// applyDoubleSpend submits a claim twice. SettleFromEscrow has no
// cross-claim dedup, so the duplicate is paid again and inflates ‖π‖ —
// the planted defect the payment-conservation invariant must catch.
func (w *world) applyDoubleSpend(claims []payment.Claim, f Fault) []payment.Claim {
	if len(claims) == 0 {
		w.traceFault(f, "no claims to duplicate (noop)")
		return claims
	}
	idx := 0
	for i := range claims {
		if claims[i].Forwarder == payment.AccountID(f.Node) {
			idx = i
			break
		}
	}
	dup := payment.Claim{
		Forwarder: claims[idx].Forwarder,
		Receipts:  append([]payment.Receipt(nil), claims[idx].Receipts...),
	}
	claims = append(claims, dup)
	w.traceFault(f, fmt.Sprintf("claim of forwarder %d submitted twice", dup.Forwarder))
	return claims
}

// expectRejected mirrors the settlement's own CountValid/countRejected
// arithmetic so the invariant layer can predict the bank's
// rejected-receipt cheat counter exactly.
func expectRejected(minter *payment.ReceiptMinter, claims []payment.Claim) int {
	acceptedBy := make(map[payment.AccountID]int, len(claims))
	for _, c := range claims {
		if m := minter.CountValid(c.Forwarder, c.Receipts); m > 0 {
			acceptedBy[c.Forwarder] = m
		}
	}
	rejected := 0
	for _, c := range claims {
		if d := len(c.Receipts) - acceptedBy[c.Forwarder]; d > 0 {
			rejected += d
		}
	}
	return rejected
}

// applyNodeFault fires a time-scheduled fault. Faults whose precondition
// no longer holds (crashing an offline node, restarting an online one)
// degrade to traced no-ops so shrunk plans stay replayable.
func (w *world) applyNodeFault(f Fault) {
	id := overlay.NodeID(f.Node)
	now := w.eng.Now()
	var detail string
	switch f.Kind {
	case FaultCrash:
		if w.net.Exists(id) && w.net.Online(id) {
			w.net.Leave(now, id, false)
			detail = fmt.Sprintf("node %d crashed", f.Node)
		} else {
			detail = fmt.Sprintf("node %d not online (noop)", f.Node)
		}
	case FaultRestart:
		if w.net.Exists(id) && w.net.Node(id).State == overlay.Offline {
			w.net.Rejoin(now, id)
			detail = fmt.Sprintf("node %d restarted", f.Node)
		} else {
			detail = fmt.Sprintf("node %d not offline (noop)", f.Node)
		}
	case FaultDoubleDeposit:
		detail = w.applyDoubleDeposit(id)
	case FaultProbeLie:
		w.probeLies[id] = true
		detail = fmt.Sprintf("node %d reports availability 1.0 from now on", f.Node)
	}
	w.traceFault(f, detail)
}

// applyDoubleDeposit withdraws one blind token and deposits it twice. The
// bank must reject the replayed serial; expectCheatsDS records that the
// attempt was actually made so reconciliation notices a bank that does not.
func (w *world) applyDoubleDeposit(id overlay.NodeID) string {
	acct := payment.AccountID(id)
	if _, ok := w.accounts[id]; !ok {
		return fmt.Sprintf("node %d has no account (noop)", id)
	}
	tokens, err := w.bank.WithdrawAmount(acct, 4, nil)
	if err != nil || len(tokens) == 0 {
		return fmt.Sprintf("node %d withdraw failed (noop): %v", id, err)
	}
	tok := tokens[0]
	if err := w.bank.Deposit(acct, tok); err != nil {
		return fmt.Sprintf("node %d first deposit failed: %v", id, err)
	}
	w.expectCheatsDS++
	err = w.bank.Deposit(acct, tok)
	return fmt.Sprintf("node %d replayed a serial, rejected=%v", id, err != nil)
}
