package faultsim

import (
	"fmt"
	"math"

	"p2panon/internal/telemetry"
)

// Cluster-artifact invariant names, alongside the single-process set.
const (
	// InvSpanOrphan: every non-root span's parent exists in the merged
	// log — the causal-merge completeness check across processes.
	InvSpanOrphan = "span-orphan"
)

// ClusterCredit is one settle line of a multi-process cluster run: a
// forwarder, its accepted forwarding count for the batch, and the exact
// payoff float bits. Bits, not decimals, so equality is bit equality.
type ClusterCredit struct {
	Batch      int    `json:"batch"`
	Node       int    `json:"node"`
	Forwards   int    `json:"forwards"`
	PayoffBits uint64 `json:"payoff_bits"`
}

// Payoff returns the payoff as a float64.
func (c ClusterCredit) Payoff() float64 { return math.Float64frombits(c.PayoffBits) }

// ClusterBatch is one batch's outcome in a cluster run artifact: the
// pair, the forwarder-set size, whether the batch failed, and the
// credits the contract says each forwarder is owed.
type ClusterBatch struct {
	Batch     int             `json:"batch"`
	Initiator int             `json:"initiator"`
	Responder int             `json:"responder"`
	SetSize   int             `json:"setsize"`
	Failed    bool            `json:"failed,omitempty"`
	Expected  []ClusterCredit `json:"expected,omitempty"`
}

// CheckClusterArtifact runs the post-run invariants over a merged
// multi-process artifact: per-batch results, the credits every worker
// observed landing on its nodes, the causally merged span log, and the
// total number of spans any recorder dropped. The plan supplies the
// contract to replay the payout rule against. It is the cross-process
// analogue of the single-world checkInvariants: the same invariant
// names report, but the evidence is collected artifacts, not live
// world state.
func CheckClusterArtifact(p Plan, batches []ClusterBatch, observed []ClusterCredit, spans []telemetry.Span, dropped int) []Violation {
	p = p.Normalize()
	var out []Violation
	add := func(inv, format string, args ...any) {
		out = append(out, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
	}

	// (1) Settlement: every batch completes and settles.
	for _, b := range batches {
		if b.Failed {
			add(InvSettlement, "batch %d (%d→%d) failed", b.Batch, b.Initiator, b.Responder)
		}
	}

	// (2) Conservation: replay the payout rule m·P_f + P_r/‖π‖ over each
	// batch's forwarder set and demand both the initiator's claim and the
	// workers' observations agree bit-for-bit.
	type line struct{ batch, node int }
	expected := make(map[line]ClusterCredit)
	for _, b := range batches {
		for _, e := range b.Expected {
			if b.SetSize > 0 {
				want := float64(e.Forwards)*float64(p.Pf) + float64(p.Pr)/float64(b.SetSize)
				if math.Float64bits(want) != e.PayoffBits {
					add(InvConservation, "batch %d node %d: claimed payoff bits %016x, rule says %016x",
						b.Batch, e.Node, e.PayoffBits, math.Float64bits(want))
				}
			}
			expected[line{b.Batch, e.Node}] = e
		}
	}
	seen := make(map[line]ClusterCredit)
	for _, o := range observed {
		k := line{o.Batch, o.Node}
		if _, dup := seen[k]; dup {
			add(InvDoubleSettle, "batch %d node %d observed twice", o.Batch, o.Node)
			continue
		}
		seen[k] = o
		e, ok := expected[k]
		if !ok {
			add(InvConservation, "batch %d node %d: credited %016x but owed nothing", o.Batch, o.Node, o.PayoffBits)
			continue
		}
		if o.PayoffBits != e.PayoffBits || o.Forwards != e.Forwards {
			add(InvConservation, "batch %d node %d: observed (%d fwd, %016x), expected (%d fwd, %016x)",
				o.Batch, o.Node, o.Forwards, o.PayoffBits, e.Forwards, e.PayoffBits)
		}
	}
	for k, e := range expected {
		if _, ok := seen[k]; !ok {
			add(InvConservation, "batch %d node %d: owed %016x, nothing landed", k.batch, k.node, e.PayoffBits)
		}
	}

	// (3) Double-settle, from the span side: at most one settle span per
	// (batch, node), exactly one per expected line, detail carrying the
	// owed bits (transport.SettleDetail's payoff=%016x form).
	settles := make(map[line]int)
	settleDetail := make(map[line]string)
	for _, s := range spans {
		if s.Kind != telemetry.SpanSettle {
			continue
		}
		k := line{s.Batch, s.Node}
		settles[k]++
		settleDetail[k] = s.Detail
	}
	for k, n := range settles {
		if n > 1 {
			add(InvDoubleSettle, "batch %d node %d: %d settle spans", k.batch, k.node, n)
		}
	}
	for k, e := range expected {
		switch n := settles[k]; {
		case n == 0:
			add(InvDoubleSettle, "batch %d node %d: no settle span for owed credit", k.batch, k.node)
		case settleDetail[k] != fmt.Sprintf("payoff=%016x", e.PayoffBits):
			add(InvDoubleSettle, "batch %d node %d: settle span detail %q, want bits %016x",
				k.batch, k.node, settleDetail[k], e.PayoffBits)
		}
	}

	// (4) Path contiguity: a delivery at hop h is backed by hop spans at
	// every hop 1..h-1 of the same (trace, conn) — no process's leg of
	// the path is missing from the merge.
	type leg struct {
		trace telemetry.SpanID
		conn  int
		hop   int
	}
	hops := make(map[leg]bool)
	for _, s := range spans {
		if s.Kind == telemetry.SpanHop {
			hops[leg{s.Trace, s.Conn, s.Hop}] = true
		}
	}
	for _, s := range spans {
		if s.Kind != telemetry.SpanRespond {
			continue
		}
		for h := 1; h < s.Hop; h++ {
			if !hops[leg{s.Trace, s.Conn, h}] {
				add(InvContiguity, "trace %s conn %d: respond at hop %d but no hop span at %d",
					s.Trace, s.Conn, s.Hop, h)
			}
		}
	}

	// (5) Orphans: ids chain parent→child across process boundaries, so
	// after a complete merge every non-root parent must resolve.
	ids := make(map[telemetry.SpanID]bool, len(spans))
	for _, s := range spans {
		ids[s.ID] = true
	}
	for _, s := range spans {
		if s.Parent != 0 && !ids[s.Parent] {
			add(InvSpanOrphan, "span %s (%s, batch %d, node %d): parent %s not in merged log",
				s.ID, s.Kind, s.Batch, s.Node, s.Parent)
		}
	}

	// (6) Capacity: a recorder that dropped spans voids the span-side
	// checks above, so it is its own violation.
	if dropped > 0 {
		add(InvTraceCapacity, "%d spans dropped across workers", dropped)
	}

	return out
}
