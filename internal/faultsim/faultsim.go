package faultsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"p2panon/internal/telemetry"
)

// Result is everything one deterministic run produced: the full event
// trace, the invariant verdict and the headline counters.
type Result struct {
	Plan       Plan
	Events     []telemetry.Event
	Violations []Violation

	Sends, OfflineDrops, Stale                    int64
	Launches, Hops, Nacks, Timeouts, Reformations int64
	Delivered, Failed, FaultsInjected             int64
	SettledBatches, SkippedBatches, FailedSettles int
	TraceDropped                                  uint64
	VirtualSeconds                                float64

	Spans       []telemetry.Span
	SpanDropped uint64
}

// OK reports whether every invariant held.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// TraceJSONL renders the event trace as JSON lines, oldest first. Two runs
// of the same plan must produce byte-identical output — that equality IS
// the determinism guarantee, and the test suite asserts it.
func (r *Result) TraceJSONL() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range r.Events {
		if err := enc.Encode(ev); err != nil {
			// Event is a plain struct of scalars; encoding cannot fail.
			panic(err)
		}
	}
	return buf.Bytes()
}

// SpanJSONL renders the causal span log as JSON lines in canonical order.
// Spans carry virtual-clock timestamps, so like TraceJSONL the output is
// byte-identical across runs of the same plan — replay-compatible with the
// event trace and readable by cmd/tracetool.
func (r *Result) SpanJSONL() []byte {
	var buf bytes.Buffer
	if err := telemetry.WriteSpansJSONL(&buf, r.Spans); err != nil {
		// Span is a plain struct of scalars; encoding cannot fail.
		panic(err)
	}
	return buf.Bytes()
}

// Run executes the plan in a fresh deterministic world and checks every
// invariant. The error return is for unusable plans (validation, key
// generation); invariant failures land in Result.Violations.
func Run(p Plan) (*Result, error) {
	p = p.Normalize()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w, err := newWorld(p)
	if err != nil {
		return nil, err
	}
	w.setup()
	w.eng.Run()

	res := &Result{
		Plan:           p,
		Events:         w.tracer.Events(),
		Sends:          w.cSends.Value(),
		OfflineDrops:   w.cDrops.Value(),
		Stale:          w.cStale.Value(),
		Launches:       w.cLaunches.Value(),
		Hops:           w.cHops.Value(),
		Nacks:          w.cNacks.Value(),
		Timeouts:       w.cTimeouts.Value(),
		Reformations:   w.cReforms.Value(),
		Delivered:      w.cDelivered.Value(),
		Failed:         w.cFailed.Value(),
		FaultsInjected: w.cFaults.Value(),
		TraceDropped:   w.tracer.Dropped(),
		VirtualSeconds: float64(w.eng.Now()),
		Spans:          w.spans.Spans(),
		SpanDropped:    w.spans.Dropped(),
	}
	for _, rec := range w.batches {
		switch {
		case rec.settled:
			res.SettledBatches++
		case rec.skipped:
			res.SkippedBatches++
		default:
			res.FailedSettles++
		}
	}
	res.Violations = w.checkInvariants()
	return res, nil
}

// failsLike reports whether the plan still violates at least one
// invariant — the predicate Shrink minimises against.
func failsLike(p Plan) bool {
	res, err := Run(p)
	if err != nil {
		return false // an unrunnable plan is not a reproducer
	}
	return !res.OK()
}

// Shrink minimises a failing plan's fault schedule with ddmin delta
// debugging: it repeatedly tries dropping chunks of faults (halving
// granularity as chunks stop shrinking) and keeps any subset that still
// violates an invariant. Determinism makes each probe exact — the same
// subset either always fails or never does. The returned plan is
// 1-minimal: removing any single remaining fault makes the run pass.
// If p does not fail at all, p is returned unchanged.
func Shrink(p Plan) Plan {
	p = p.Normalize()
	if !failsLike(p) {
		return p
	}
	withFaults := func(fs []Fault) Plan {
		q := p
		q.Faults = append([]Fault(nil), fs...)
		return q
	}
	// The fault-free plan failing means the defect needs no faults at all.
	if len(p.Faults) == 0 || failsLike(withFaults(nil)) {
		return withFaults(nil)
	}
	faults := append([]Fault(nil), p.Faults...)
	n := 2
	for len(faults) >= 2 {
		chunk := (len(faults) + n - 1) / n
		reduced := false
		for start := 0; start < len(faults); start += chunk {
			end := start + chunk
			if end > len(faults) {
				end = len(faults)
			}
			complement := append(append([]Fault(nil), faults[:start]...), faults[end:]...)
			if failsLike(withFaults(complement)) {
				faults = complement
				n = 2
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(faults) {
				break
			}
			n *= 2
			if n > len(faults) {
				n = len(faults)
			}
		}
	}
	return withFaults(faults)
}

// TB is the subset of testing.TB the harness needs. Keeping it local lets
// non-test binaries (cmd/anonsim) drive Check without importing testing.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Logf(format string, args ...any)
	Name() string
}

// Check runs the plan and fails t on any invariant violation, first
// shrinking the fault schedule to a minimal reproducer and saving it as
// JSON (to $FAULTSIM_ARTIFACT_DIR when set, else the working directory)
// so the failure replays with `anonsim -faults <file>`.
func Check(t TB, p Plan) *Result {
	t.Helper()
	res, err := Run(p)
	if err != nil {
		t.Fatalf("faultsim: plan unusable: %v", err)
		return nil
	}
	if res.OK() {
		return res
	}
	min := Shrink(p)
	minRes, err := Run(min)
	if err != nil || minRes.OK() {
		// Shrinking must preserve failure; fall back to the original.
		min, minRes = p.Normalize(), res
	}
	path := artifactPath(t.Name(), min.Seed)
	if err := SavePlan(path, min); err != nil {
		t.Logf("faultsim: could not save reproducer: %v", err)
		path = "<unsaved>"
	}
	var report bytes.Buffer
	for _, v := range minRes.Violations {
		fmt.Fprintf(&report, "\n  - %s", v)
	}
	t.Fatalf("faultsim: seed %d violated %d invariant(s) (shrunk to %d of %d faults, reproducer %s):%s",
		p.Seed, len(minRes.Violations), len(min.Faults), len(p.Normalize().Faults), path, report.String())
	return minRes
}

// artifactPath picks where a failing plan is written.
func artifactPath(testName string, seed uint64) string {
	dir := os.Getenv("FAULTSIM_ARTIFACT_DIR")
	if dir == "" {
		dir = "."
	} else {
		os.MkdirAll(dir, 0o755)
	}
	name := fmt.Sprintf("faultsim-%s-seed%d.json", sanitize(testName), seed)
	return filepath.Join(dir, name)
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
