package faultsim

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestDeterministicTraces is the core replay guarantee: the same plan run
// twice produces byte-identical event traces and identical counters.
func TestDeterministicTraces(t *testing.T) {
	p := GeneratePlan(42)
	r1, err := Run(p)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := Run(p)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	t1, t2 := r1.TraceJSONL(), r2.TraceJSONL()
	if !bytes.Equal(t1, t2) {
		t.Fatalf("traces differ across identical runs: %d vs %d bytes", len(t1), len(t2))
	}
	if len(t1) == 0 {
		t.Fatal("empty trace — the world did not run")
	}
	if r1.Sends != r2.Sends || r1.Delivered != r2.Delivered || r1.Failed != r2.Failed ||
		r1.Nacks != r2.Nacks || r1.Timeouts != r2.Timeouts || r1.VirtualSeconds != r2.VirtualSeconds {
		t.Fatalf("counters differ across identical runs:\n%+v\n%+v", r1, r2)
	}
}

// TestBenignPlansHoldInvariants: generated noise plans (drops, delays,
// duplicates, reorders, crashes, restarts, inflated claims, double
// deposits, probe lies — everything except the planted settlement defect)
// must be absorbed without violating any invariant.
func TestBenignPlansHoldInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		res, err := Run(GeneratePlan(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.OK() {
			t.Errorf("seed %d: %d violation(s):", seed, len(res.Violations))
			for _, v := range res.Violations {
				t.Errorf("  %s", v)
			}
		}
		if res.Delivered == 0 {
			t.Errorf("seed %d: no connection ever delivered; the plan exercised nothing", seed)
		}
	}
}

// TestDoubleSpendCaughtAndShrunk plants the settlement double-spend in a
// noisy plan: the conservation checker must fire, and Shrink must reduce
// the schedule to a minimal reproducer (the acceptance bound is 5; the
// true minimum is the one double-spend fault).
func TestDoubleSpendCaughtAndShrunk(t *testing.T) {
	p := GeneratePlan(7)
	p.Faults = append(p.Faults, Fault{Kind: FaultDoubleSpend, Batch: 1})
	res, err := Run(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.OK() {
		t.Fatal("planted double-spend was not caught by any invariant")
	}
	caught := false
	for _, v := range res.Violations {
		if v.Invariant == InvConservation || v.Invariant == InvDoubleSettle {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("double-spend violated %v but never payment-conservation/double-settle", res.Violations)
	}

	min := Shrink(p)
	if len(min.Faults) > 5 {
		t.Fatalf("shrunk reproducer has %d faults, want <= 5: %+v", len(min.Faults), min.Faults)
	}
	minRes, err := Run(min)
	if err != nil {
		t.Fatalf("shrunk plan unrunnable: %v", err)
	}
	if minRes.OK() {
		t.Fatal("shrunk plan no longer fails — Shrink did not preserve the defect")
	}
	if len(min.Faults) != 1 || min.Faults[0].Kind != FaultDoubleSpend {
		t.Logf("note: minimal reproducer is %+v (expected the lone double-spend)", min.Faults)
	}
}

// TestShrinkPassesThroughCleanPlan: a passing plan shrinks to itself.
func TestShrinkPassesThroughCleanPlan(t *testing.T) {
	p := GeneratePlan(3)
	min := Shrink(p)
	if len(min.Faults) != len(p.Normalize().Faults) {
		t.Fatalf("clean plan was shrunk from %d to %d faults", len(p.Normalize().Faults), len(min.Faults))
	}
}

// TestPlanRoundTrip: SavePlan/LoadPlan preserve the schedule exactly.
func TestPlanRoundTrip(t *testing.T) {
	p := GeneratePlan(11)
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := SavePlan(path, p); err != nil {
		t.Fatalf("save: %v", err)
	}
	q, err := LoadPlan(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if q.Seed != p.Seed || len(q.Faults) != len(p.Faults) {
		t.Fatalf("round trip lost data: %+v vs %+v", q, p)
	}
	for i := range p.Faults {
		if q.Faults[i] != p.Faults[i] {
			t.Fatalf("fault %d changed: %+v vs %+v", i, q.Faults[i], p.Faults[i])
		}
	}
}

// TestCheckSavesReproducer: Check on a failing plan must write the shrunk
// plan JSON into FAULTSIM_ARTIFACT_DIR and fail the TB.
func TestCheckSavesReproducer(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("FAULTSIM_ARTIFACT_DIR", dir)
	p := GeneratePlan(7)
	p.Faults = append(p.Faults, Fault{Kind: FaultDoubleSpend, Batch: 1})
	rec := &recordingTB{name: "TestCheckSavesReproducer"}
	Check(rec, p)
	if !rec.fataled {
		t.Fatal("Check did not fail on a violating plan")
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "faultsim-*.json"))
	if len(matches) == 0 {
		t.Fatalf("no reproducer JSON written to %s", dir)
	}
	min, err := LoadPlan(matches[0])
	if err != nil {
		t.Fatalf("saved reproducer unloadable: %v", err)
	}
	if len(min.Faults) > 5 {
		t.Fatalf("saved reproducer has %d faults, want <= 5", len(min.Faults))
	}
}

// TestCheckPassesCleanPlan: Check must not fail a healthy plan.
func TestCheckPassesCleanPlan(t *testing.T) {
	res := Check(t, GeneratePlan(1))
	if res == nil || !res.OK() {
		t.Fatal("Check failed a clean plan")
	}
}

// TestSeededPlans is the CI sweep: FAULTSIM_SEEDS (comma-separated) picks
// the seed set, defaulting to a small smoke range for local runs.
func TestSeededPlans(t *testing.T) {
	spec := os.Getenv("FAULTSIM_SEEDS")
	if spec == "" {
		spec = "101,102,103"
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		seed, err := strconv.ParseUint(tok, 10, 64)
		if err != nil {
			t.Fatalf("FAULTSIM_SEEDS entry %q: %v", tok, err)
		}
		t.Run("seed"+tok, func(t *testing.T) {
			Check(t, GeneratePlan(seed))
		})
	}
}

// TestSeededPlansSpanDeterminism extends the replay guarantee to the
// causal span log: the same plan run twice must produce byte-identical
// SpanJSONL output, including the virtual-clock timestamps. The name
// shares the TestSeededPlans prefix so the CI faultsim -race job runs it.
func TestSeededPlansSpanDeterminism(t *testing.T) {
	for _, seed := range []uint64{42, 101} {
		p := GeneratePlan(seed)
		r1, err := Run(p)
		if err != nil {
			t.Fatalf("seed %d first run: %v", seed, err)
		}
		r2, err := Run(p)
		if err != nil {
			t.Fatalf("seed %d second run: %v", seed, err)
		}
		s1, s2 := r1.SpanJSONL(), r2.SpanJSONL()
		if !bytes.Equal(s1, s2) {
			t.Fatalf("seed %d: span logs differ across identical runs: %d vs %d bytes", seed, len(s1), len(s2))
		}
		if len(r1.Spans) == 0 {
			t.Fatalf("seed %d: empty span log — no batch was traced", seed)
		}
		if r1.SpanDropped != 0 {
			t.Fatalf("seed %d: recorder dropped %d spans; raise Plan.TraceCap", seed, r1.SpanDropped)
		}
		stamped := 0
		for _, s := range r1.Spans {
			if s.TimeMicros > 0 {
				stamped++
			}
		}
		if stamped == 0 {
			t.Fatalf("seed %d: no span carries a virtual-clock timestamp", seed)
		}
	}
}

// TestValidateRejectsBadPlans spot-checks schedule validation.
func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []Plan{
		{Nodes: 2},
		{Router: "magic"},
		{Faults: []Fault{{Kind: "melt"}}},
		{Faults: []Fault{{Kind: FaultDrop}}},          // missing batch/conn/msg
		{Faults: []Fault{{Kind: FaultCrash, At: -1}}}, // negative time
		{Faults: []Fault{{Kind: FaultDoubleSpend}}},   // missing batch
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad plan validated: %+v", i, p)
		}
	}
	if err := GeneratePlan(1).Validate(); err != nil {
		t.Errorf("generated plan invalid: %v", err)
	}
}

// recordingTB captures Check's verdict without failing the real test.
type recordingTB struct {
	name    string
	fataled bool
	lastLog string
}

func (r *recordingTB) Helper() {}
func (r *recordingTB) Fatalf(format string, args ...any) {
	r.fataled = true
}
func (r *recordingTB) Logf(format string, args ...any) {}
func (r *recordingTB) Name() string                    { return r.name }
