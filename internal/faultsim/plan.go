// Package faultsim is a deterministic fault-injection harness for the
// whole stack: overlay, churn, probing, routing, the forwarding protocol
// and escrow settlement run inside a single-threaded discrete-event world
// (on sim.Engine) whose every source of randomness derives from one
// uint64 seed. A declarative Plan schedules faults — message drops,
// delays, duplicates and reorderings, peer crashes and restarts
// mid-batch, inflated forwarding claims, settlement double-spends, probe
// lies — and after the run a set of system-wide invariant checkers must
// hold. Because the world is deterministic, the same (plan, seed)
// produces a byte-identical event trace on every run, a failing plan
// replays exactly, and Shrink can bisect a fault schedule down to a
// minimal reproducer.
//
// The live transport runtime is concurrent by design and therefore
// cannot give byte-identical traces; the harness instead re-implements
// the transport's protocol semantics (FORWARD/CONFIRM/NACK, path
// accumulation, reverse-path routing around corpses, bounded retry with
// exponential backoff) as simulation events, reusing the real routers,
// payment bank/escrow, churn driver, probe estimators and telemetry —
// so the state machines under test are the production ones, only the
// scheduler is virtual.
package faultsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// Fault kinds. Message faults (drop, delay, duplicate, reorder) match the
// Nth message sent for a given connection; node faults (crash, restart,
// double-deposit, probe-lie) fire at an absolute virtual time; settlement
// faults (inflate, double-spend) apply when their batch settles.
const (
	// FaultDrop discards the matched message instead of delivering it.
	FaultDrop = "drop"
	// FaultDelay delivers the matched message Delay seconds late.
	FaultDelay = "delay"
	// FaultDuplicate delivers the matched message twice, the copy Delay
	// seconds after the original.
	FaultDuplicate = "duplicate"
	// FaultReorder holds the matched message back Delay seconds so that
	// messages sent after it overtake it.
	FaultReorder = "reorder"
	// FaultCrash forces Node offline at time At (mid-batch peer failure).
	FaultCrash = "crash"
	// FaultRestart brings a crashed/offline Node back online at time At.
	FaultRestart = "restart"
	// FaultInflate pads Node's settlement claim for Batch with Count
	// forged and duplicated receipts (the §5 inflated-forwarding cheat).
	FaultInflate = "inflate"
	// FaultDoubleSpend submits Node's settlement claim for Batch twice,
	// so an unguarded settlement pays the same receipts two times.
	FaultDoubleSpend = "double-spend"
	// FaultDoubleDeposit has Node withdraw a blind token and deposit it
	// twice at time At; the bank must reject the replayed serial.
	FaultDoubleDeposit = "double-deposit"
	// FaultProbeLie pins Node's reported availability to 1.0 from time At
	// on, regardless of what probing observed.
	FaultProbeLie = "probe-lie"
)

// Fault is one scheduled fault. Which fields matter depends on Kind; see
// the Fault* constants.
type Fault struct {
	Kind  string  `json:"kind"`
	At    float64 `json:"at,omitempty"`    // virtual seconds (node faults)
	Node  int     `json:"node,omitempty"`  // target node / forwarder
	Batch int     `json:"batch,omitempty"` // target batch (message + settlement faults)
	Conn  int     `json:"conn,omitempty"`  // target connection (message faults)
	Msg   int     `json:"msg,omitempty"`   // Nth send of that connection, from 1
	Delay float64 `json:"delay,omitempty"` // seconds (delay/duplicate/reorder)
	Count int     `json:"count,omitempty"` // junk receipts (inflate)
}

// Plan declares one harness run: the world configuration and the fault
// schedule. The zero value of most fields means "use the default"; call
// Normalize (Run does it for you) to fill them in.
type Plan struct {
	Seed uint64 `json:"seed"`

	// World shape.
	Nodes             int     `json:"nodes,omitempty"`
	Degree            int     `json:"degree,omitempty"`
	MaliciousFraction float64 `json:"malicious_fraction,omitempty"`
	Churn             bool    `json:"churn,omitempty"` // enable session churn

	// Workload.
	Batches int    `json:"batches,omitempty"`
	Conns   int    `json:"conns,omitempty"` // connections per batch (k)
	Budget  int    `json:"budget,omitempty"`
	Router  string `json:"router,omitempty"` // random | utility | utility2

	// Protocol timing, in virtual seconds.
	Latency        float64 `json:"latency,omitempty"`
	AttemptTimeout float64 `json:"attempt_timeout,omitempty"`
	BackoffBase    float64 `json:"backoff_base,omitempty"`
	BackoffMax     float64 `json:"backoff_max,omitempty"`
	MaxAttempts    int     `json:"max_attempts,omitempty"`

	// Incentives.
	Pf      int64 `json:"pf,omitempty"`
	Pr      int64 `json:"pr,omitempty"`
	Opening int64 `json:"opening,omitempty"` // per-account opening balance

	// Probing.
	ProbePeriod float64 `json:"probe_period,omitempty"` // seconds, 0 = default

	// Settlement pipeline: batch close enqueues the settlement job on a
	// bounded queue and the world drains it SettleDelay virtual seconds
	// later — the deterministic drain point of the async settlement stage.
	SettleQueue int     `json:"settle_queue,omitempty"` // queue capacity
	SettleDelay float64 `json:"settle_delay,omitempty"` // seconds to drain

	// TraceCap bounds the event ring; the trace-capacity invariant fails
	// if the run records more events than this.
	TraceCap int `json:"trace_cap,omitempty"`

	// KeyBits sizes the bank's RSA key (small keys keep runs fast; the
	// crypto is exercised, not benchmarked).
	KeyBits int `json:"key_bits,omitempty"`

	Faults []Fault `json:"faults,omitempty"`
}

// Normalize fills zero fields with defaults and returns the plan.
func (p Plan) Normalize() Plan {
	if p.Nodes == 0 {
		p.Nodes = 24
	}
	if p.Degree == 0 {
		p.Degree = 5
	}
	if p.Batches == 0 {
		p.Batches = 3
	}
	if p.Conns == 0 {
		p.Conns = 6
	}
	if p.Budget == 0 {
		p.Budget = 5
	}
	if p.Router == "" {
		p.Router = "utility"
	}
	if p.Latency == 0 {
		p.Latency = 0.01 // 10ms links
	}
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = 2
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = 0.05
	}
	if p.BackoffMax == 0 {
		p.BackoffMax = 0.4
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.Pf == 0 {
		p.Pf = 75
	}
	if p.Pr == 0 {
		p.Pr = 150
	}
	if p.Opening == 0 {
		p.Opening = 1 << 20
	}
	if p.ProbePeriod == 0 {
		p.ProbePeriod = 60
	}
	if p.SettleQueue == 0 {
		p.SettleQueue = 4
	}
	if p.SettleDelay == 0 {
		p.SettleDelay = 0.5
	}
	if p.TraceCap == 0 {
		p.TraceCap = 1 << 14
	}
	if p.KeyBits == 0 {
		p.KeyBits = 1024
	}
	return p
}

// Validate reports the first configuration error, or nil.
func (p Plan) Validate() error {
	p = p.Normalize()
	if p.Nodes < 4 {
		return fmt.Errorf("faultsim: %d nodes, need at least 4", p.Nodes)
	}
	if p.Degree < 1 {
		return fmt.Errorf("faultsim: degree %d", p.Degree)
	}
	if p.MaliciousFraction < 0 || p.MaliciousFraction > 1 {
		return fmt.Errorf("faultsim: malicious fraction %g", p.MaliciousFraction)
	}
	switch p.Router {
	case "random", "utility", "utility2":
	default:
		return fmt.Errorf("faultsim: unknown router %q", p.Router)
	}
	if p.Latency < 0 || p.AttemptTimeout <= 0 || p.BackoffBase < 0 || p.BackoffMax < 0 {
		return errors.New("faultsim: negative timing parameter")
	}
	if p.Pf < 0 || p.Pr < 0 || p.Opening <= 0 {
		return errors.New("faultsim: bad incentive parameters")
	}
	if p.SettleQueue < 1 || p.SettleDelay < 0 {
		return errors.New("faultsim: bad settlement pipeline parameters")
	}
	for i, f := range p.Faults {
		switch f.Kind {
		case FaultDrop, FaultDelay, FaultDuplicate, FaultReorder:
			if f.Batch < 1 || f.Conn < 1 || f.Msg < 1 {
				return fmt.Errorf("faultsim: fault %d (%s) needs batch, conn and msg >= 1", i, f.Kind)
			}
		case FaultCrash, FaultRestart, FaultDoubleDeposit, FaultProbeLie:
			if f.At < 0 {
				return fmt.Errorf("faultsim: fault %d (%s) at negative time", i, f.Kind)
			}
		case FaultInflate, FaultDoubleSpend:
			if f.Batch < 1 {
				return fmt.Errorf("faultsim: fault %d (%s) needs batch >= 1", i, f.Kind)
			}
		default:
			return fmt.Errorf("faultsim: fault %d has unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// LoadPlan reads a plan from a JSON file.
func LoadPlan(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, err
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("faultsim: parsing %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// SavePlan writes the plan as indented JSON.
func SavePlan(path string, p Plan) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// GeneratePlan derives a benign noise plan from a seed: churn plus a
// pseudo-random mix of message, node and claim faults that a correct
// system must absorb without violating any invariant. It never schedules
// a double-spend — that fault exists to prove the conservation checker
// bites, not to pass. CI runs GeneratePlan over a seed range.
func GeneratePlan(seed uint64) Plan {
	p := Plan{Seed: seed, Churn: true}.Normalize()
	// An independent generator stream: the world consumes the seed itself.
	rng := newPlanRNG(seed)
	kinds := []string{
		FaultDrop, FaultDelay, FaultDuplicate, FaultReorder,
		FaultCrash, FaultRestart, FaultInflate, FaultDoubleDeposit, FaultProbeLie,
	}
	n := 4 + int(rng.next()%5) // 4..8 faults
	for i := 0; i < n; i++ {
		kind := kinds[rng.next()%uint64(len(kinds))]
		f := Fault{Kind: kind}
		switch kind {
		case FaultDrop, FaultDelay, FaultDuplicate, FaultReorder:
			f.Batch = 1 + int(rng.next()%uint64(p.Batches))
			f.Conn = 1 + int(rng.next()%uint64(p.Conns))
			f.Msg = 1 + int(rng.next()%6)
			f.Delay = 0.05 + float64(rng.next()%40)/100 // 0.05..0.44s
		case FaultCrash, FaultRestart, FaultDoubleDeposit, FaultProbeLie:
			f.Node = int(rng.next() % uint64(p.Nodes))
			f.At = float64(rng.next() % 120) // inside the first batches
		case FaultInflate:
			f.Batch = 1 + int(rng.next()%uint64(p.Batches))
			f.Node = int(rng.next() % uint64(p.Nodes))
			f.Count = 1 + int(rng.next()%4)
		}
		p.Faults = append(p.Faults, f)
	}
	return p
}

// planRNG is a tiny splitmix64 stream for plan generation, independent of
// the dist package so generated plans never perturb world randomness.
type planRNG struct{ x uint64 }

func newPlanRNG(seed uint64) *planRNG { return &planRNG{x: seed ^ 0x6a09e667f3bcc909} }

func (r *planRNG) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
