package netwire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// FuzzFrameWire throws arbitrary byte strings at the frame decoder: it
// must never panic, and any frame it accepts must re-encode to exactly
// the input (canonical form). The seed corpus covers one valid frame of
// every kind plus the interesting boundaries — empty input, truncated
// header and body, a bad version byte, an oversized declared length,
// unknown flag bits and trailing garbage.
func FuzzFrameWire(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for k := KindHello; k < kindEnd; k++ {
		frame := randomFrame(f, rng, k)
		buf, err := frame.Encode()
		if err != nil {
			f.Fatalf("%s seed: %v", k, err)
		}
		f.Add(buf)
	}
	valid, err := (&Frame{Kind: KindProbe, Nonce: 7}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})                                    // empty
	f.Add([]byte{0, 0})                                // truncated length prefix
	f.Add(valid[:len(valid)-1])                        // truncated body
	f.Add(append(valid[:4:4], Version+1))              // bad version, truncated
	f.Add(append(append([]byte(nil), valid...), 0xff)) // trailing garbage

	badVersion := append([]byte(nil), valid...)
	badVersion[4] = Version + 9
	f.Add(badVersion)

	oversize := make([]byte, 4)
	binary.BigEndian.PutUint32(oversize, MaxFrameSize+1)
	f.Add(oversize)

	// Legal global length, absurd for the kind: a probe frame declaring a
	// 1 KiB body must trip the per-kind BodyCap in both decoders.
	fatProbe := make([]byte, 1024)
	fatProbe[0], fatProbe[1] = Version, byte(KindProbe)
	f.Add(encodeRaw(fatProbe))

	msg, err := (&Frame{Kind: KindForward, Batch: 3, Attempt: 8, Responder: 5, Remaining: 4}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	badFlags := append([]byte(nil), msg...)
	badFlags[4+2+72] = 0xff // flags byte: unknown bits
	f.Add(badFlags)

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := DecodeFrame(data)
		if err != nil {
			if frame != nil {
				t.Fatal("decoder returned both a frame and an error")
			}
			return
		}
		out, err := frame.Encode()
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical accept:\n in  %x\n out %x", data, out)
		}
		// The stream reader must agree with the buffer decoder.
		g, n, err := ReadFrame(bytes.NewReader(data))
		if err != nil || n != len(data) {
			t.Fatalf("ReadFrame disagreed with DecodeFrame: n=%d err=%v", n, err)
		}
		out2, err := g.Encode()
		if err != nil || !bytes.Equal(out2, data) {
			t.Fatalf("ReadFrame result not canonical: %v", err)
		}
	})
}
