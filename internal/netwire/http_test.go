package netwire

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"p2panon/internal/dist"
	"p2panon/internal/telemetry"
	"p2panon/internal/transport"
)

// TestNetwireMetricsExposition drives real traffic through a cluster
// instrumented into a shared registry, scrapes the Prometheus endpoint
// over HTTP, and asserts every netwire_* family is exposed with exactly
// the label sets the package documents — the contract dashboards are
// built against.
func TestNetwireMetricsExposition(t *testing.T) {
	topo := buildTopo(8, 4, 17)
	r := transport.NewRandomRouter(topo, dist.NewSource(18))
	reg := telemetry.NewRegistry()
	c := NewCluster(Config{})
	c.Instrument(reg, nil)
	t.Cleanup(c.Close)
	for id := range topo {
		if err := c.Join(id, r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.RunBatch(0, 7, 1, 3, 4, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if !c.Probe(0, 1, 2*time.Second) {
		t.Fatal("probe failed")
	}

	srv, err := telemetry.Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	body := string(raw)

	// Every netwire family must carry a HELP line (the self-documenting
	// endpoint the README promises).
	for _, family := range []string{
		"netwire_dials_total", "netwire_frames_total", "netwire_bytes_total",
		"netwire_queue_depth_high_water", "netwire_conns_open",
		"netwire_deadline_hits_total", "netwire_messages_total",
		"netwire_nacks_total", "netwire_contract_rejects_total",
		"netwire_timeouts_total", "netwire_reformations_total",
		"netwire_connections_total", "netwire_settlements_total",
		"netwire_connect_latency_seconds", "netwire_path_length_hops",
		"netwire_nack_hops",
	} {
		if !strings.Contains(body, "# HELP "+family+" ") {
			t.Errorf("missing HELP for %s", family)
		}
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("missing TYPE for %s", family)
		}
	}

	// Exact label sets: dials by result, deadline hits by op, messages and
	// connections by their documented splits, frames by direction × kind
	// (labels render sorted, so dir comes first).
	series := []string{
		`netwire_dials_total{result="ok"}`,
		`netwire_dials_total{result="fail"}`,
		`netwire_deadline_hits_total{op="read"}`,
		`netwire_deadline_hits_total{op="write"}`,
		`netwire_deadline_hits_total{op="expired"}`,
		`netwire_messages_total{kind="sent"}`,
		`netwire_messages_total{kind="dropped"}`,
		`netwire_connections_total{result="ok"}`,
		`netwire_connections_total{result="fail"}`,
		`netwire_bytes_total{dir="sent"}`,
		`netwire_bytes_total{dir="recv"}`,
	}
	for k := KindHello; k < kindEnd; k++ {
		series = append(series,
			fmt.Sprintf(`netwire_frames_total{dir="sent",kind=%q}`, k.String()),
			fmt.Sprintf(`netwire_frames_total{dir="recv",kind=%q}`, k.String()))
	}
	for _, s := range series {
		if !strings.Contains(body, s+" ") {
			t.Errorf("missing series %s", s)
		}
	}

	// The batch above must be visible in the scraped values: 3 completed
	// connections, at least one successful dial, live byte counters, and a
	// 3-observation latency histogram.
	for series, min := range map[string]int{
		`netwire_connections_total{result="ok"}`:            3,
		`netwire_dials_total{result="ok"}`:                  1,
		`netwire_bytes_total{dir="sent"}`:                   1,
		`netwire_bytes_total{dir="recv"}`:                   1,
		`netwire_messages_total{kind="sent"}`:               1,
		`netwire_frames_total{dir="sent",kind="probe"}`:     1,
		`netwire_frames_total{dir="recv",kind="probe_ack"}`: 1,
		`netwire_connect_latency_seconds_count`:             3,
	} {
		if got := scrapeValue(t, body, series); got < min {
			t.Errorf("%s = %d, want >= %d", series, got, min)
		}
	}

	// Histograms must expose cumulative buckets with le labels.
	if !regexp.MustCompile(`netwire_connect_latency_seconds_bucket\{le="[^"]+"\} \d`).MatchString(body) {
		t.Error("connect latency histogram has no le buckets")
	}
}

// scrapeValue extracts one integer sample from the exposition text.
func scrapeValue(t *testing.T, body, series string) int {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v int
			if _, err := fmt.Sscanf(rest, "%d", &v); err != nil {
				t.Fatalf("series %s: bad sample %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found", series)
	return 0
}
