// Package netwire is the socket-backed sibling of package transport: the
// same forwarding protocol — FORWARD out, CONFIRM/NACK back along the
// reverse path, bounded-retry path reformation — but carried over real TCP
// connections with a length-prefixed, versioned frame codec instead of
// in-process channels. A netwire.Cluster implements transport.Conductor,
// so the experiment drivers, churn hooks and the backend-conformance suite
// run unchanged over either backend.
//
// The wire protocol (DESIGN.md §3e):
//
//	frame   := length(4, big-endian) body
//	body    := version(1) kind(1) payload
//
// where length counts the body bytes and is capped at MaxFrameSize. Every
// payload layout is canonical: a valid byte string decodes to exactly one
// frame and re-encodes to the same bytes, so frames can be compared and
// deduplicated by encoding (the same property the payment wire codecs
// guarantee, enforced here by FuzzFrameWire).
package netwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"p2panon/internal/onion"
	"p2panon/internal/overlay"
	"p2panon/internal/payment"
	"p2panon/internal/telemetry"

	"crypto/ecdh"
)

// Version is the wire-protocol version this codec speaks. A frame with
// any other version is rejected at decode — the dialer learns about the
// mismatch from the handshake failing.
const Version = 1

// MaxFrameSize bounds a frame body (version + kind + payload). It keeps a
// hostile length prefix from asking the reader for gigabytes.
const MaxFrameSize = 1 << 20

// frameHeaderSize is the length prefix in bytes.
const frameHeaderSize = 4

// Field caps inside a message payload. Paths and records are bounded by
// the hop budget in practice; the caps only guard the decoder.
const (
	maxPathLen    = 4096
	maxReasonLen  = 4096
	maxRecords    = 4096
	maxRecordLen  = 4096
	maxKeyLen     = 128
	maxSigLen     = 256
	flagFatal     = 1 << 0
	flagContract  = 1 << 1
	flagTrace     = 1 << 2
	flagKnownMask = flagFatal | flagContract | flagTrace
)

// traceTailSize is the trace-context extension: trace id + parent span
// id, 8 bytes each. On the message kinds its presence is signalled by
// flagTrace; on the fixed-layout kinds that carry it (hello/hello_ack,
// settle) by the body length alone.
const traceTailSize = 16

// Kind discriminates frame payloads.
type Kind uint8

// Frame kinds. Hello/HelloAck are the per-connection handshake; Forward,
// Confirm and Nack mirror transport's message kinds; Probe/ProbeAck are
// the liveness ping the connection manager uses; Settle carries a batch's
// split payment (m·P_f + P_r/‖π‖) to a forwarder after settlement; Claim
// carries a forwarder's rolled-up aggregate claim (payment.AggregateClaim)
// to the settlement point — 16 bytes per forwarding instance instead of a
// 56-byte receipt each.
const (
	KindHello Kind = iota + 1
	KindHelloAck
	KindForward
	KindConfirm
	KindNack
	KindProbe
	KindProbeAck
	KindSettle
	KindClaim
	kindEnd
)

// BodyCap returns the largest body (version byte, kind byte and payload)
// a canonical frame of the given kind can occupy, or -1 for an unknown
// kind. Fixed-layout kinds have exact sizes; the message kinds' field
// caps sum past MaxFrameSize, so the global cap is their bound. Both
// DecodeFrame and ReadFrame enforce it — ReadFrame before allocating the
// body, so a corrupt or malicious peer cannot make a reader allocate
// MaxFrameSize bytes for a frame kind whose payload is 8 bytes.
func BodyCap(k Kind) int {
	switch k {
	case KindHello, KindHelloAck:
		return 2 + 8 + 8 + traceTailSize // node + nonce + optional trace context
	case KindProbe, KindProbeAck:
		return 2 + 8 // nonce
	case KindSettle:
		return 2 + 5*8 + traceTailSize // batch, node, set size, forwards, payoff + optional trace context
	case KindForward, KindConfirm, KindNack, KindClaim:
		return MaxFrameSize
	default:
		return -1
	}
}

// String names the kind for metrics labels and logs.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindHelloAck:
		return "hello_ack"
	case KindForward:
		return "forward"
	case KindConfirm:
		return "confirm"
	case KindNack:
		return "nack"
	case KindProbe:
		return "probe"
	case KindProbeAck:
		return "probe_ack"
	case KindSettle:
		return "settle"
	case KindClaim:
		return "claim"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Codec errors.
var (
	ErrShortFrame   = errors.New("netwire: frame buffer too short")
	ErrBadVersion   = errors.New("netwire: unsupported frame version")
	ErrBadKind      = errors.New("netwire: unknown frame kind")
	ErrOversized    = errors.New("netwire: frame exceeds size cap")
	ErrTrailingData = errors.New("netwire: trailing bytes after frame payload")
	ErrBadFlags     = errors.New("netwire: unknown flag bits set")
	ErrFieldTooLong = errors.New("netwire: field exceeds its cap")
	ErrBadKey       = errors.New("netwire: malformed contract key")
	ErrEmptyTrace   = errors.New("netwire: trace-context extension present but all-zero")
)

// Frame is the decoded form of one wire frame. Which fields are
// meaningful depends on Kind; Encode only serialises the fields its kind
// defines, so unused fields never reach the wire.
type Frame struct {
	Kind Kind

	// Hello/HelloAck: the speaker's node ID and a handshake nonce.
	// Probe/ProbeAck reuse Nonce as the echo token.
	Node  overlay.NodeID
	Nonce uint64

	// Forward/Confirm/Nack: the protocol message, mirroring
	// transport.message field for field. Attempt distinguishes
	// reformation attempts of one connection so a stale confirm cannot
	// resolve a relaunched attempt. DeadlineMicros is the attempt budget
	// remaining at send time in microseconds (0 = none).
	Batch, Conn, Attempt       int
	From, Initiator, Responder overlay.NodeID
	Remaining, Hop             int
	Path                       []overlay.NodeID
	Reason                     string
	Fatal                      bool
	DeadlineMicros             int64
	Contract                   *onion.SignedContract
	Records                    []onion.PathRecord

	// Settle: the initiator's split-payment notice for one batch.
	SetSize, Forwards int
	Payoff            float64

	// Claim: a forwarder's aggregate settlement claim for Batch. The
	// payload embeds payment's canonical claim encoding, so the payment
	// fuzzer's guarantees carry over to the frame.
	AggClaim *payment.AggregateClaim

	// Trace context (optional, any kind except probe/probe_ack): the
	// batch's deterministic trace id and the sender-side span the receiver
	// should parent its own spans under. Zero means "no trace context";
	// the codec never emits the extension for an all-zero pair, and
	// rejects wire forms that carry one, keeping encoding canonical.
	Trace, Span telemetry.SpanID
}

// hasTrace reports whether the frame carries trace context.
func (f *Frame) hasTrace() bool { return f.Trace != 0 || f.Span != 0 }

func appendU16(dst []byte, v int) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendI64(dst []byte, v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendU32(dst []byte, v int) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	return append(dst, b[:]...)
}

// Encode renders the frame in canonical wire form, length prefix
// included.
func (f *Frame) Encode() ([]byte, error) {
	body, err := f.encodeBody()
	if err != nil {
		return nil, err
	}
	if len(body) > MaxFrameSize {
		return nil, fmt.Errorf("%w: body %d bytes > %d", ErrOversized, len(body), MaxFrameSize)
	}
	out := make([]byte, frameHeaderSize, frameHeaderSize+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	return append(out, body...), nil
}

func (f *Frame) encodeBody() ([]byte, error) {
	out := []byte{Version, byte(f.Kind)}
	switch f.Kind {
	case KindHello, KindHelloAck:
		out = appendI64(out, int64(f.Node))
		out = appendU64(out, f.Nonce)
		out = f.appendTraceTail(out)
	case KindForward, KindConfirm, KindNack:
		return f.encodeMessage(out)
	case KindProbe, KindProbeAck:
		out = appendU64(out, f.Nonce)
	case KindSettle:
		out = appendI64(out, int64(f.Batch))
		out = appendI64(out, int64(f.Node))
		out = appendI64(out, int64(f.SetSize))
		out = appendI64(out, int64(f.Forwards))
		out = appendU64(out, math.Float64bits(f.Payoff))
		out = f.appendTraceTail(out)
	case KindClaim:
		if f.AggClaim == nil {
			return nil, errors.New("netwire: claim frame without aggregate claim")
		}
		claim, err := payment.EncodeAggregateClaim(*f.AggClaim)
		if err != nil {
			return nil, fmt.Errorf("netwire: encoding aggregate claim: %w", err)
		}
		out = appendI64(out, int64(f.Batch))
		out = appendU32(out, len(claim))
		out = append(out, claim...)
		out = f.appendTraceTail(out)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, f.Kind)
	}
	return out, nil
}

func (f *Frame) encodeMessage(out []byte) ([]byte, error) {
	for _, v := range []int64{
		int64(f.Batch), int64(f.Conn), int64(f.Attempt),
		int64(f.From), int64(f.Initiator), int64(f.Responder),
		int64(f.Remaining), int64(f.Hop), f.DeadlineMicros,
	} {
		out = appendI64(out, v)
	}
	var flags byte
	if f.Fatal {
		flags |= flagFatal
	}
	if f.Contract != nil {
		flags |= flagContract
	}
	if f.hasTrace() {
		flags |= flagTrace
	}
	out = append(out, flags)
	if len(f.Path) > maxPathLen {
		return nil, fmt.Errorf("%w: path %d nodes", ErrFieldTooLong, len(f.Path))
	}
	out = appendU16(out, len(f.Path))
	for _, id := range f.Path {
		out = appendI64(out, int64(id))
	}
	if len(f.Reason) > maxReasonLen {
		return nil, fmt.Errorf("%w: reason %d bytes", ErrFieldTooLong, len(f.Reason))
	}
	out = appendU16(out, len(f.Reason))
	out = append(out, f.Reason...)
	if c := f.Contract; c != nil {
		if c.BatchPub == nil {
			return nil, ErrBadKey
		}
		pub := c.BatchPub.Bytes()
		if len(pub) > maxKeyLen || len(c.SigPub) > maxKeyLen || len(c.Sig) > maxSigLen {
			return nil, fmt.Errorf("%w: contract keys", ErrFieldTooLong)
		}
		out = appendU64(out, c.BatchID)
		out = appendU64(out, math.Float64bits(c.Pf))
		out = appendU64(out, math.Float64bits(c.Pr))
		out = appendU16(out, len(pub))
		out = append(out, pub...)
		out = appendU16(out, len(c.SigPub))
		out = append(out, c.SigPub...)
		out = appendU16(out, len(c.Sig))
		out = append(out, c.Sig...)
	}
	if len(f.Records) > maxRecords {
		return nil, fmt.Errorf("%w: %d records", ErrFieldTooLong, len(f.Records))
	}
	out = appendU16(out, len(f.Records))
	for _, r := range f.Records {
		if len(r.Sealed) > maxRecordLen {
			return nil, fmt.Errorf("%w: record %d bytes", ErrFieldTooLong, len(r.Sealed))
		}
		out = appendU16(out, len(r.Sealed))
		out = append(out, r.Sealed...)
	}
	out = f.appendTraceTail(out)
	return out, nil
}

// appendTraceTail serialises the trace-context extension when the frame
// carries one; an all-zero pair is "absent" and emits nothing.
func (f *Frame) appendTraceTail(out []byte) []byte {
	if !f.hasTrace() {
		return out
	}
	out = appendU64(out, uint64(f.Trace))
	return appendU64(out, uint64(f.Span))
}

// decodeTraceTail parses the optional trace-context extension on the
// fixed-layout kinds, where its presence is signalled by body length
// alone: if any bytes remain after the kind's base payload, they must be
// exactly the 16-byte tail. A present-but-zero tail is rejected so every
// frame has one canonical encoding.
func (f *Frame) decodeTraceTail(r *frameReader, bodyLen int) error {
	if r.err != nil || r.off == bodyLen {
		return r.err
	}
	f.Trace = telemetry.SpanID(r.u64())
	f.Span = telemetry.SpanID(r.u64())
	if r.err == nil && !f.hasTrace() {
		return ErrEmptyTrace
	}
	return r.err
}

// frameReader is a cursor over one frame body with error-free sequential
// reads; the first failure latches.
type frameReader struct {
	buf []byte
	off int
	err error
}

func (r *frameReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrShortFrame, n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *frameReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *frameReader) u16() int {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return int(binary.BigEndian.Uint16(b))
}

func (r *frameReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func (r *frameReader) u32() int {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return int(binary.BigEndian.Uint32(b))
}

func (r *frameReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// DecodeFrame parses one complete frame (length prefix included) from
// data, rejecting truncation, bad version, unknown kinds and trailing
// garbage. Accepted input is canonical: re-encoding the result reproduces
// data byte for byte.
func DecodeFrame(data []byte) (*Frame, error) {
	if len(data) < frameHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, need %d for the length prefix", ErrShortFrame, len(data), frameHeaderSize)
	}
	n := binary.BigEndian.Uint32(data)
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: declared body %d bytes > %d", ErrOversized, n, MaxFrameSize)
	}
	if len(data) < frameHeaderSize+int(n) {
		return nil, fmt.Errorf("%w: declared body %d bytes, %d present", ErrShortFrame, n, len(data)-frameHeaderSize)
	}
	if len(data) > frameHeaderSize+int(n) {
		return nil, ErrTrailingData
	}
	return decodeBody(data[frameHeaderSize:])
}

func decodeBody(body []byte) (*Frame, error) {
	r := &frameReader{buf: body}
	ver := r.u8()
	if r.err != nil {
		return nil, r.err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: got %d, speak %d", ErrBadVersion, ver, Version)
	}
	f := &Frame{Kind: Kind(r.u8())}
	if max := BodyCap(f.Kind); max >= 0 && len(body) > max {
		return nil, fmt.Errorf("%w: %v body %d bytes > %d", ErrOversized, f.Kind, len(body), max)
	}
	switch f.Kind {
	case KindHello, KindHelloAck:
		f.Node = overlay.NodeID(r.i64())
		f.Nonce = r.u64()
		if err := f.decodeTraceTail(r, len(body)); err != nil {
			return nil, err
		}
	case KindForward, KindConfirm, KindNack:
		if err := f.decodeMessage(r); err != nil {
			return nil, err
		}
	case KindProbe, KindProbeAck:
		f.Nonce = r.u64()
	case KindSettle:
		f.Batch = int(r.i64())
		f.Node = overlay.NodeID(r.i64())
		f.SetSize = int(r.i64())
		f.Forwards = int(r.i64())
		f.Payoff = math.Float64frombits(r.u64())
		if err := f.decodeTraceTail(r, len(body)); err != nil {
			return nil, err
		}
	case KindClaim:
		f.Batch = int(r.i64())
		claimLen := r.u32()
		if r.err == nil && claimLen > MaxFrameSize {
			return nil, fmt.Errorf("%w: claim %d bytes", ErrFieldTooLong, claimLen)
		}
		if b := r.take(claimLen); b != nil {
			claim, err := payment.DecodeAggregateClaim(b)
			if err != nil {
				return nil, fmt.Errorf("netwire: decoding aggregate claim: %w", err)
			}
			f.AggClaim = &claim
		}
		if err := f.decodeTraceTail(r, len(body)); err != nil {
			return nil, err
		}
	default:
		if r.err == nil {
			return nil, fmt.Errorf("%w: %d", ErrBadKind, f.Kind)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, ErrTrailingData
	}
	return f, nil
}

func (f *Frame) decodeMessage(r *frameReader) error {
	f.Batch = int(r.i64())
	f.Conn = int(r.i64())
	f.Attempt = int(r.i64())
	f.From = overlay.NodeID(r.i64())
	f.Initiator = overlay.NodeID(r.i64())
	f.Responder = overlay.NodeID(r.i64())
	f.Remaining = int(r.i64())
	f.Hop = int(r.i64())
	f.DeadlineMicros = r.i64()
	flags := r.u8()
	if r.err != nil {
		return r.err
	}
	if flags&^byte(flagKnownMask) != 0 {
		return fmt.Errorf("%w: %#x", ErrBadFlags, flags)
	}
	f.Fatal = flags&flagFatal != 0
	pathLen := r.u16()
	if r.err == nil && pathLen > maxPathLen {
		return fmt.Errorf("%w: path %d nodes", ErrFieldTooLong, pathLen)
	}
	for i := 0; i < pathLen && r.err == nil; i++ {
		f.Path = append(f.Path, overlay.NodeID(r.i64()))
	}
	reasonLen := r.u16()
	if r.err == nil && reasonLen > maxReasonLen {
		return fmt.Errorf("%w: reason %d bytes", ErrFieldTooLong, reasonLen)
	}
	if b := r.take(reasonLen); b != nil {
		f.Reason = string(b)
	}
	if flags&flagContract != 0 {
		c := &onion.SignedContract{}
		c.BatchID = r.u64()
		c.Pf = math.Float64frombits(r.u64())
		c.Pr = math.Float64frombits(r.u64())
		pubLen := r.u16()
		if r.err == nil && pubLen > maxKeyLen {
			return fmt.Errorf("%w: contract key %d bytes", ErrFieldTooLong, pubLen)
		}
		pubBytes := r.take(pubLen)
		if r.err == nil {
			pub, err := ecdh.X25519().NewPublicKey(pubBytes)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrBadKey, err)
			}
			c.BatchPub = pub
		}
		sigPubLen := r.u16()
		if r.err == nil && sigPubLen > maxKeyLen {
			return fmt.Errorf("%w: contract signing key %d bytes", ErrFieldTooLong, sigPubLen)
		}
		if b := r.take(sigPubLen); b != nil {
			c.SigPub = append([]byte(nil), b...)
		}
		sigLen := r.u16()
		if r.err == nil && sigLen > maxSigLen {
			return fmt.Errorf("%w: contract signature %d bytes", ErrFieldTooLong, sigLen)
		}
		if b := r.take(sigLen); b != nil {
			c.Sig = append([]byte(nil), b...)
		}
		if r.err == nil {
			f.Contract = c
		}
	}
	recCount := r.u16()
	if r.err == nil && recCount > maxRecords {
		return fmt.Errorf("%w: %d records", ErrFieldTooLong, recCount)
	}
	for i := 0; i < recCount && r.err == nil; i++ {
		recLen := r.u16()
		if r.err == nil && recLen > maxRecordLen {
			return fmt.Errorf("%w: record %d bytes", ErrFieldTooLong, recLen)
		}
		if b := r.take(recLen); b != nil {
			f.Records = append(f.Records, onion.PathRecord{Sealed: append([]byte(nil), b...)})
		}
	}
	if flags&flagTrace != 0 {
		f.Trace = telemetry.SpanID(r.u64())
		f.Span = telemetry.SpanID(r.u64())
		if r.err == nil && !f.hasTrace() {
			return ErrEmptyTrace
		}
	}
	return r.err
}

// WriteFrame encodes f and writes it to w, returning the bytes written.
func WriteFrame(w io.Writer, f *Frame) (int, error) {
	buf, err := f.Encode()
	if err != nil {
		return 0, err
	}
	return w.Write(buf)
}

// ReadFrame reads exactly one frame from r, returning it with the total
// bytes consumed. The length prefix is only ever trusted after
// validation: the global MaxFrameSize bound is checked first, then the
// two-byte version/kind prologue is read and the declared length checked
// against the kind's BodyCap — all BEFORE the body is allocated, so a
// hostile prefix cannot force a large allocation for a small-payload
// kind, let alone a multi-gigabyte one.
func ReadFrame(r io.Reader) (*Frame, int, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, frameHeaderSize, fmt.Errorf("%w: declared body %d bytes > %d", ErrOversized, n, MaxFrameSize)
	}
	if n < 2 {
		// Too short for even the version/kind prologue; drain it and let
		// decodeBody produce the canonical ErrShortFrame.
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, frameHeaderSize, fmt.Errorf("netwire: frame body: %w", err)
		}
		f, err := decodeBody(body)
		return f, frameHeaderSize + int(n), err
	}
	var prologue [2]byte
	if _, err := io.ReadFull(r, prologue[:]); err != nil {
		return nil, frameHeaderSize, fmt.Errorf("netwire: frame body: %w", err)
	}
	consumed := frameHeaderSize + 2
	if prologue[0] != Version {
		return nil, consumed, fmt.Errorf("%w: got %d, speak %d", ErrBadVersion, prologue[0], Version)
	}
	kind := Kind(prologue[1])
	max := BodyCap(kind)
	if max < 0 {
		return nil, consumed, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
	if int(n) > max {
		return nil, consumed, fmt.Errorf("%w: %v body %d bytes > %d", ErrOversized, kind, n, max)
	}
	body := make([]byte, n)
	body[0], body[1] = prologue[0], prologue[1]
	if _, err := io.ReadFull(r, body[2:]); err != nil {
		return nil, consumed, fmt.Errorf("netwire: frame body: %w", err)
	}
	f, err := decodeBody(body)
	return f, frameHeaderSize + int(n), err
}
