package netwire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"p2panon/internal/onion"
	"p2panon/internal/overlay"
	"p2panon/internal/payment"
	"p2panon/internal/telemetry"
)

// testContract builds a valid signed contract for codec tests.
func testContract(t testing.TB, batch uint64) *onion.SignedContract {
	t.Helper()
	bk, err := onion.NewBatchKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := onion.NewSignedContract(batch, 1.5, 20, bk.Public())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// randomFrame draws one frame of the given kind with randomized fields.
func randomFrame(t testing.TB, rng *rand.Rand, kind Kind) *Frame {
	t.Helper()
	f := &Frame{Kind: kind}
	switch kind {
	case KindHello, KindHelloAck:
		f.Node = overlay.NodeID(rng.Int63n(1 << 40))
		f.Nonce = rng.Uint64()
	case KindProbe, KindProbeAck:
		f.Nonce = rng.Uint64()
	case KindSettle:
		f.Batch = rng.Intn(1 << 20)
		f.Node = overlay.NodeID(rng.Int63n(1 << 40))
		f.SetSize = rng.Intn(100)
		f.Forwards = rng.Intn(100)
		f.Payoff = rng.NormFloat64() * 10
	case KindClaim:
		f.Batch = rng.Intn(1 << 20)
		claim := payment.AggregateClaim{Forwarder: payment.AccountID(rng.Int63n(1 << 40))}
		conn, hop := 0, 0
		for i := 1 + rng.Intn(8); i > 0; i-- {
			conn += rng.Intn(3)
			hop = rng.Intn(64)
			for len(claim.Entries) > 0 {
				last := claim.Entries[len(claim.Entries)-1]
				if conn > last.Conn || (conn == last.Conn && hop > last.Hop) {
					break
				}
				hop++
			}
			claim.Entries = append(claim.Entries, payment.AggEntry{Conn: conn, Hop: hop})
		}
		rng.Read(claim.Chain[:])
		f.AggClaim = &claim
	case KindForward, KindConfirm, KindNack:
		f.Batch = rng.Intn(1 << 20)
		f.Conn = rng.Intn(1 << 20)
		f.Attempt = rng.Intn(1 << 30)
		f.From = overlay.NodeID(rng.Int63n(1<<40) - 1)
		f.Initiator = overlay.NodeID(rng.Int63n(1 << 40))
		f.Responder = overlay.NodeID(rng.Int63n(1 << 40))
		f.Remaining = rng.Intn(64)
		f.Hop = rng.Intn(64)
		f.DeadlineMicros = rng.Int63n(1 << 40)
		for i := rng.Intn(8); i > 0; i-- {
			f.Path = append(f.Path, overlay.NodeID(rng.Int63n(1<<40)))
		}
		if kind == KindNack {
			reasons := []string{"", "next hop 7 unreachable", "contract failed verification"}
			f.Reason = reasons[rng.Intn(len(reasons))]
			f.Fatal = rng.Intn(2) == 1
		}
		if rng.Intn(2) == 1 {
			f.Contract = testContract(t, uint64(f.Batch))
		}
		for i := rng.Intn(4); i > 0; i-- {
			sealed := make([]byte, 16+rng.Intn(64))
			rng.Read(sealed)
			f.Records = append(f.Records, onion.PathRecord{Sealed: sealed})
		}
	}
	// Every kind except probe/probe_ack may carry the trace-context
	// extension; exercise both the with- and without- wire forms.
	switch kind {
	case KindProbe, KindProbeAck:
	default:
		if rng.Intn(2) == 1 {
			f.Trace = telemetry.SpanID(rng.Uint64() | 1)
			f.Span = telemetry.SpanID(rng.Uint64() | 1)
		}
	}
	return f
}

// TestFrameRoundTrip is the canonical-encoding property over randomized
// frames: encode∘decode is the identity on bytes, and the decoded frame
// carries the same fields.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kinds := []Kind{KindHello, KindHelloAck, KindForward, KindConfirm, KindNack, KindProbe, KindProbeAck, KindSettle, KindClaim}
	for trial := 0; trial < 200; trial++ {
		f := randomFrame(t, rng, kinds[trial%len(kinds)])
		buf, err := f.Encode()
		if err != nil {
			t.Fatalf("trial %d (%s): encode: %v", trial, f.Kind, err)
		}
		g, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("trial %d (%s): decode: %v", trial, f.Kind, err)
		}
		buf2, err := g.Encode()
		if err != nil {
			t.Fatalf("trial %d (%s): re-encode: %v", trial, f.Kind, err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("trial %d (%s): re-encode differs from original encoding", trial, f.Kind)
		}
		if g.Kind != f.Kind || g.Node != f.Node || g.Nonce != f.Nonce ||
			g.Batch != f.Batch || g.Conn != f.Conn || g.Attempt != f.Attempt ||
			g.From != f.From || g.Initiator != f.Initiator || g.Responder != f.Responder ||
			g.Remaining != f.Remaining || g.Hop != f.Hop || g.Reason != f.Reason ||
			g.Fatal != f.Fatal || g.DeadlineMicros != f.DeadlineMicros ||
			g.SetSize != f.SetSize || g.Forwards != f.Forwards ||
			g.Trace != f.Trace || g.Span != f.Span ||
			math.Float64bits(g.Payoff) != math.Float64bits(f.Payoff) ||
			len(g.Path) != len(f.Path) || len(g.Records) != len(f.Records) {
			t.Fatalf("trial %d (%s): decoded frame differs:\n got %+v\nwant %+v", trial, f.Kind, g, f)
		}
		for i := range f.Path {
			if g.Path[i] != f.Path[i] {
				t.Fatalf("trial %d: path[%d] = %d, want %d", trial, i, g.Path[i], f.Path[i])
			}
		}
		for i := range f.Records {
			if !bytes.Equal(g.Records[i].Sealed, f.Records[i].Sealed) {
				t.Fatalf("trial %d: record %d differs", trial, i)
			}
		}
		if (g.AggClaim == nil) != (f.AggClaim == nil) {
			t.Fatalf("trial %d: aggregate claim presence differs", trial)
		}
		if f.AggClaim != nil {
			if g.AggClaim.Forwarder != f.AggClaim.Forwarder || g.AggClaim.Chain != f.AggClaim.Chain ||
				len(g.AggClaim.Entries) != len(f.AggClaim.Entries) {
				t.Fatalf("trial %d: aggregate claim differs:\n got %+v\nwant %+v", trial, g.AggClaim, f.AggClaim)
			}
			for i, e := range f.AggClaim.Entries {
				if g.AggClaim.Entries[i] != e {
					t.Fatalf("trial %d: claim entry %d = %+v, want %+v", trial, i, g.AggClaim.Entries[i], e)
				}
			}
		}
		if (g.Contract == nil) != (f.Contract == nil) {
			t.Fatalf("trial %d: contract presence differs", trial)
		}
		if f.Contract != nil {
			if !g.Contract.Verify() {
				t.Fatalf("trial %d: contract signature did not survive the wire", trial)
			}
			if g.Contract.BatchID != f.Contract.BatchID ||
				math.Float64bits(g.Contract.Pf) != math.Float64bits(f.Contract.Pf) ||
				math.Float64bits(g.Contract.Pr) != math.Float64bits(f.Contract.Pr) {
				t.Fatalf("trial %d: contract terms differ", trial)
			}
		}
	}
}

// TestFrameRoundTripViaReader checks the stream reader agrees with the
// buffer decoder, including the byte count.
func TestFrameRoundTripViaReader(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var stream bytes.Buffer
	var frames []*Frame
	for i := 0; i < 20; i++ {
		f := randomFrame(t, rng, Kind(1+rng.Intn(int(kindEnd-1))))
		frames = append(frames, f)
		if _, err := WriteFrame(&stream, f); err != nil {
			t.Fatal(err)
		}
	}
	total := stream.Len()
	read := 0
	for i, want := range frames {
		g, n, err := ReadFrame(&stream)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		read += n
		if g.Kind != want.Kind || g.Nonce != want.Nonce || g.Batch != want.Batch {
			t.Fatalf("frame %d: mismatch after stream round trip", i)
		}
	}
	if read != total {
		t.Fatalf("ReadFrame consumed %d bytes of %d written", read, total)
	}
}

// encodeRaw builds a frame buffer from a raw body, bypassing Encode's
// validation, for decoder error cases.
func encodeRaw(body []byte) []byte {
	out := make([]byte, 4, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	return append(out, body...)
}

func TestDecodeFrameErrors(t *testing.T) {
	valid, err := (&Frame{Kind: KindProbe, Nonce: 99}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := (&Frame{Kind: KindForward, Batch: 1, Conn: 1, Attempt: 1, Initiator: 0, Responder: 9, Remaining: 3}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip the flags byte (offset 4 header + 2 ver/kind + 9*8 fields) to an
	// unknown bit.
	badFlags := append([]byte(nil), msg...)
	badFlags[4+2+72] = 0x80
	// Declare a path longer than the cap.
	longPath := append([]byte(nil), msg...)
	binary.BigEndian.PutUint16(longPath[4+2+72+1:], maxPathLen+1)

	oversize := make([]byte, 4)
	binary.BigEndian.PutUint32(oversize, MaxFrameSize+1)

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrShortFrame},
		{"short header", []byte{0, 0, 1}, ErrShortFrame},
		{"truncated body", valid[:len(valid)-3], ErrShortFrame},
		{"declared longer than present", encodeRaw(make([]byte, 10))[:9], ErrShortFrame},
		{"oversized declared length", oversize, ErrOversized},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xde, 0xad), ErrTrailingData},
		{"bad version", encodeRaw([]byte{Version + 1, byte(KindProbe), 0, 0, 0, 0, 0, 0, 0, 0}), ErrBadVersion},
		{"unknown kind", encodeRaw([]byte{Version, 0xee, 0, 0, 0, 0, 0, 0, 0, 0}), ErrBadKind},
		{"zero kind", encodeRaw([]byte{Version, 0}), ErrBadKind},
		{"unknown flag bits", badFlags, ErrBadFlags},
		{"path over cap", longPath, ErrFieldTooLong},
		{"body-internal truncation", encodeRaw([]byte{Version, byte(KindHello), 1, 2}), ErrShortFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := DecodeFrame(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got frame=%v err=%v, want %v", f, err, tc.want)
			}
		})
	}
}

// TestBodyCapEnforcedPerKind checks the per-kind body bound: a frame
// whose declared length is legal globally but absurd for its kind (a
// probe carrying a kilobyte) is rejected by both decoders with
// ErrOversized, and ReadFrame rejects it from the two-byte prologue alone
// — before allocating the body — leaving the declared bytes unread.
func TestBodyCapEnforcedPerKind(t *testing.T) {
	cases := []struct {
		kind Kind
		cap  int
	}{
		{KindProbe, 10},
		{KindProbeAck, 10},
		{KindHello, 18 + traceTailSize},
		{KindHelloAck, 18 + traceTailSize},
		{KindSettle, 42 + traceTailSize},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			if got := BodyCap(tc.kind); got != tc.cap {
				t.Fatalf("BodyCap(%v) = %d, want %d", tc.kind, got, tc.cap)
			}
			body := make([]byte, tc.cap+1000)
			body[0], body[1] = Version, byte(tc.kind)
			buf := encodeRaw(body)

			if f, err := DecodeFrame(buf); !errors.Is(err, ErrOversized) {
				t.Fatalf("DecodeFrame: frame=%v err=%v, want ErrOversized", f, err)
			}

			r := bytes.NewReader(buf)
			f, n, err := ReadFrame(r)
			if !errors.Is(err, ErrOversized) {
				t.Fatalf("ReadFrame: frame=%v err=%v, want ErrOversized", f, err)
			}
			// Only the length prefix and version/kind prologue may have been
			// consumed: the cap check must run before the body allocation.
			if n != 6 {
				t.Fatalf("ReadFrame reported %d bytes consumed, want 6", n)
			}
			if left := r.Len(); left != len(buf)-6 {
				t.Fatalf("ReadFrame drained %d bytes of the oversized body", len(buf)-6-left)
			}
		})
	}
	if got := BodyCap(Kind(0xee)); got != -1 {
		t.Fatalf("BodyCap(unknown) = %d, want -1", got)
	}
}

// TestEncodeRejectsOversizedFields checks Encode refuses fields past their
// caps instead of emitting an undecodable frame.
func TestEncodeRejectsOversizedFields(t *testing.T) {
	f := &Frame{Kind: KindForward, Path: make([]overlay.NodeID, maxPathLen+1)}
	if _, err := f.Encode(); !errors.Is(err, ErrFieldTooLong) {
		t.Fatalf("oversized path: got %v, want ErrFieldTooLong", err)
	}
	g := &Frame{Kind: KindNack, Reason: string(make([]byte, maxReasonLen+1))}
	if _, err := g.Encode(); !errors.Is(err, ErrFieldTooLong) {
		t.Fatalf("oversized reason: got %v, want ErrFieldTooLong", err)
	}
	h := &Frame{Kind: Kind(200)}
	if _, err := h.Encode(); !errors.Is(err, ErrBadKind) {
		t.Fatalf("bad kind: got %v, want ErrBadKind", err)
	}
}

// TestTraceContextExtension pins the trace-context wire forms: the tail
// round-trips on every eligible kind, absence encodes nothing, and the
// non-canonical encodings — a present-but-zero tail, or a partial tail —
// are rejected rather than silently re-encoded differently.
func TestTraceContextExtension(t *testing.T) {
	for _, kind := range []Kind{KindHello, KindHelloAck, KindForward, KindConfirm, KindNack, KindSettle} {
		f := &Frame{Kind: kind, Trace: 0xdeadbeefcafe0001, Span: 0x0123456789abcdef}
		buf, err := f.Encode()
		if err != nil {
			t.Fatalf("%v: encode: %v", kind, err)
		}
		g, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", kind, err)
		}
		if g.Trace != f.Trace || g.Span != f.Span {
			t.Fatalf("%v: trace context mangled: %+v", kind, g)
		}
		bare, err := (&Frame{Kind: kind}).Encode()
		if err != nil {
			t.Fatalf("%v: bare encode: %v", kind, err)
		}
		if len(buf) != len(bare)+traceTailSize {
			t.Fatalf("%v: tail is %d bytes, want %d", kind, len(buf)-len(bare), traceTailSize)
		}
	}

	// A zero tail on a fixed-layout kind: length says "extension present",
	// content says "absent" — re-encoding would drop it, so reject.
	settle := &Frame{Kind: KindSettle, Batch: 1, Node: 2, SetSize: 3, Forwards: 4, Payoff: 5}
	buf, err := settle.Encode()
	if err != nil {
		t.Fatal(err)
	}
	zeroTail := append(append([]byte(nil), buf...), make([]byte, traceTailSize)...)
	binary.BigEndian.PutUint32(zeroTail, uint32(len(zeroTail)-4))
	if _, err := DecodeFrame(zeroTail); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("zero settle tail: got %v, want ErrEmptyTrace", err)
	}

	// A partial tail is a short frame, not a smaller extension.
	halfTail := append(append([]byte(nil), buf...), make([]byte, 8)...)
	binary.BigEndian.PutUint32(halfTail, uint32(len(halfTail)-4))
	if _, err := DecodeFrame(halfTail); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("half settle tail: got %v, want ErrShortFrame", err)
	}

	// flagTrace set with an all-zero tail on a message kind: same
	// canonicality argument, same rejection.
	msg := &Frame{Kind: KindForward, Batch: 3, Attempt: 8, Responder: 5, Remaining: 4}
	mbuf, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	traced := append(append([]byte(nil), mbuf...), make([]byte, traceTailSize)...)
	traced[4+2+72] |= flagTrace
	binary.BigEndian.PutUint32(traced, uint32(len(traced)-4))
	if _, err := DecodeFrame(traced); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("zero message tail: got %v, want ErrEmptyTrace", err)
	}

	// flagTrace set but no tail bytes: short frame.
	flagOnly := append([]byte(nil), mbuf...)
	flagOnly[4+2+72] |= flagTrace
	if _, err := DecodeFrame(flagOnly); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("flag without tail: got %v, want ErrShortFrame", err)
	}
}
