package netwire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/onion"
	"p2panon/internal/overlay"
	"p2panon/internal/telemetry"
	"p2panon/internal/trace"
	"p2panon/internal/transport"
	"p2panon/internal/vclock"
)

// Config parameterises the socket layer. The zero value of any field is
// replaced with its default; the protocol schedule (attempt windows,
// retry backoff) is configured separately via SetRetry/SetClock, exactly
// like the in-process backend.
type Config struct {
	// Latency is an artificial per-send delay on the cluster clock,
	// mirroring transport.NewNetwork's link latency model (0 = none).
	Latency time.Duration
	// DialTimeout/HandshakeTimeout bound connection establishment;
	// WriteTimeout bounds one frame write; IdleTimeout closes inbound
	// connections with no traffic; EnqueueTimeout is how long a sender
	// blocks on a full outbound queue before the frame is refused.
	DialTimeout, HandshakeTimeout, WriteTimeout, IdleTimeout, EnqueueTimeout time.Duration
	// QueueCap is the per-peer outbound queue bound.
	QueueCap int
}

// DefaultConfig returns the loopback-tuned defaults.
func DefaultConfig() Config {
	return Config{
		DialTimeout:      2 * time.Second,
		HandshakeTimeout: 2 * time.Second,
		WriteTimeout:     5 * time.Second,
		IdleTimeout:      60 * time.Second,
		EnqueueTimeout:   2 * time.Second,
		QueueCap:         128,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.DialTimeout <= 0 {
		c.DialTimeout = d.DialTimeout
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = d.HandshakeTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = d.WriteTimeout
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = d.IdleTimeout
	}
	if c.EnqueueTimeout <= 0 {
		c.EnqueueTimeout = d.EnqueueTimeout
	}
	if c.QueueCap <= 0 {
		c.QueueCap = d.QueueCap
	}
}

// wireResult is the terminal event of one connection attempt.
type wireResult struct {
	path    []overlay.NodeID
	records []onion.PathRecord
	err     error
	fatal   bool
	// span is the causal span the terminal frame carried: the responder's
	// respond span for a confirm, the nack span for a NACK. The initiator
	// parents its deliver/fail span on it.
	span telemetry.SpanID
}

// Cluster is the loopback harness and runtime: N nodes on ephemeral
// 127.0.0.1 ports, a shared address directory, and the connection driver
// with bounded-retry path reformation. It implements transport.Conductor,
// so every driver that runs over the in-process backend runs over TCP
// unchanged.
type Cluster struct {
	cfg     Config
	latency time.Duration

	mu        sync.RWMutex
	nodes     map[overlay.NodeID]*Node
	addrs     map[overlay.NodeID]string
	markers   []transport.ChurnAware
	markerSet map[transport.ChurnAware]struct{}

	retry   transport.RetryPolicy
	clock   vclock.Clock
	metrics *metrics
	tracer  *telemetry.Tracer
	spans   *telemetry.SpanRecorder

	pendMu  sync.Mutex
	pending map[int]chan wireResult

	probeMu sync.Mutex
	probes  map[uint64]chan struct{}

	nonce   atomic.Uint64
	attempt atomic.Int64

	wg       sync.WaitGroup
	quit     chan struct{}
	quitOnce sync.Once

	logMu sync.Mutex
	logw  io.Writer
	logC  io.Closer
}

// NewCluster creates an empty cluster with the default retry policy and
// the real clock. When NETWIRE_LOG_DIR is set, a per-cluster debug log of
// dials, kills and frame errors is written there (the artifact CI uploads
// when a netwire job fails).
func NewCluster(cfg Config) *Cluster {
	cfg.fillDefaults()
	c := &Cluster{
		cfg:       cfg,
		latency:   cfg.Latency,
		nodes:     make(map[overlay.NodeID]*Node),
		addrs:     make(map[overlay.NodeID]string),
		markerSet: make(map[transport.ChurnAware]struct{}),
		retry:     transport.DefaultRetryPolicy(),
		clock:     vclock.Real(),
		metrics:   newMetrics(telemetry.NewRegistry()),
		pending:   make(map[int]chan wireResult),
		probes:    make(map[uint64]chan struct{}),
		quit:      make(chan struct{}),
	}
	if dir := os.Getenv("NETWIRE_LOG_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			name := filepath.Join(dir, fmt.Sprintf("netwire-%d-%d.log", os.Getpid(), time.Now().UnixNano()))
			if f, err := os.Create(name); err == nil {
				c.logw, c.logC = f, f
			}
		}
	}
	return c
}

// logf writes one debug-log line when logging is enabled.
func (c *Cluster) logf(format string, args ...any) {
	if c.logw == nil {
		return
	}
	c.logMu.Lock()
	fmt.Fprintf(c.logw, time.Now().Format("15:04:05.000000")+" "+format+"\n", args...)
	c.logMu.Unlock()
}

// Instrument rebinds the cluster's metrics into reg and attaches tr as
// the lifecycle tracer (either may be nil). Call before traffic starts.
func (c *Cluster) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	if reg != nil {
		c.metrics = newMetrics(reg)
	}
	c.tracer = tr
}

// SetSpans attaches a causal span recorder: every connection then emits
// the same deterministic span tree as the in-process backend — span ids
// are chain hashes of causal coordinates carried in the frames' trace
// context, never of arrival order, so both backends produce byte-equal
// logs for the same seeded workload. A nil recorder disables emission.
// Call before traffic starts.
func (c *Cluster) SetSpans(r *telemetry.SpanRecorder) { c.spans = r }

// Spans returns the attached span recorder, or nil.
func (c *Cluster) Spans() *telemetry.SpanRecorder { return c.spans }

// Telemetry returns the registry backing the cluster's metrics.
func (c *Cluster) Telemetry() *telemetry.Registry { return c.metrics.reg }

// Metrics returns the transport-compatible counter snapshot.
func (c *Cluster) Metrics() transport.MetricsSnapshot { return c.metrics.snapshot() }

// ResetMetrics zeroes the cluster's instruments.
func (c *Cluster) ResetMetrics() { c.metrics.reset() }

// SetRetry replaces the reformation policy. Not safe to race Connect.
func (c *Cluster) SetRetry(p transport.RetryPolicy) {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	c.retry = p
}

// SetClock replaces the protocol clock (attempt windows, backoff,
// artificial latency). Socket-level guards (dial/write/idle deadlines)
// stay on the real clock — the kernel does not speak virtual time. Call
// before traffic starts.
func (c *Cluster) SetClock(clk vclock.Clock) {
	if clk == nil {
		clk = vclock.Real()
	}
	c.clock = clk
}

// Clock returns the protocol clock.
func (c *Cluster) Clock() vclock.Clock { return c.clock }

// Join spins up a node: a listener on an ephemeral 127.0.0.1 port, the
// accept loop, and a directory entry its peers dial. ChurnAware routers
// are registered for liveness marks, like the in-process backend.
func (c *Cluster) Join(id overlay.NodeID, r transport.Router) error {
	if r == nil {
		return errors.New("netwire: nil router")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("netwire: listen: %w", err)
	}
	nd := &Node{
		id:       id,
		c:        c,
		router:   r,
		ln:       ln,
		links:    make(map[overlay.NodeID]*link),
		inbound:  make(map[net.Conn]struct{}),
		forwards: make(map[int]int),
		credited: make(map[int]float64),
		killed:   make(chan struct{}),
	}
	c.mu.Lock()
	if _, dup := c.nodes[id]; dup {
		c.mu.Unlock()
		ln.Close()
		return fmt.Errorf("netwire: duplicate node %d", id)
	}
	c.nodes[id] = nd
	c.addrs[id] = ln.Addr().String()
	ca, aware := r.(transport.ChurnAware)
	if aware {
		if _, seen := c.markerSet[ca]; !seen {
			c.markerSet[ca] = struct{}{}
			c.markers = append(c.markers, ca)
		}
	}
	c.mu.Unlock()
	if aware {
		ca.MarkLive(id)
	}
	c.logf("node %d: listening on %s", id, ln.Addr())
	c.wg.Add(1)
	go nd.acceptLoop()
	return nil
}

// Node returns the live node with the given ID, or nil.
func (c *Cluster) Node(id overlay.NodeID) *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[id]
}

// NodeIDs returns the IDs of all live nodes.
func (c *Cluster) NodeIDs() []overlay.NodeID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]overlay.NodeID, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	return ids
}

// addrOf resolves a peer's dial address. The directory keeps entries for
// departed nodes — dialing a corpse fails with a refused connection,
// which is exactly the live failure-detection signal.
func (c *Cluster) addrOf(id overlay.NodeID) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.addrs[id]
	return a, ok
}

// RegisterPeer records the dial-back address of a node hosted outside
// this cluster — another Cluster in the same process or a spawned worker
// process. Links resolve addresses through the live directory on every
// dial, so registration (and re-registration after a remote restart)
// takes effect immediately. A node currently hosted locally keeps its
// own listener address; stale broadcasts cannot shadow it.
func (c *Cluster) RegisterPeer(id overlay.NodeID, addr string) {
	c.mu.Lock()
	if _, local := c.nodes[id]; !local {
		c.addrs[id] = addr
	}
	c.mu.Unlock()
}

// NoteDead feeds an externally learned death (an orchestrator's fault
// notice for a peer in another process) to every ChurnAware router, the
// same signal a failed local delivery produces.
func (c *Cluster) NoteDead(id overlay.NodeID) { c.markDead(id) }

// NoteLive is NoteDead's inverse: a restarted remote peer is marked live
// again so routers may draw it.
func (c *Cluster) NoteLive(id overlay.NodeID) {
	c.mu.RLock()
	ms := append([]transport.ChurnAware(nil), c.markers...)
	c.mu.RUnlock()
	for _, m := range ms {
		m.MarkLive(id)
	}
}

// RemovePeer models an abrupt departure: the node's listener and every
// connection close immediately; peers discover the corpse by failed
// delivery and NACK/reform, just like the in-process backend. The
// directory entry survives so dials fail instead of being skipped.
func (c *Cluster) RemovePeer(id overlay.NodeID) {
	c.mu.Lock()
	nd, ok := c.nodes[id]
	if ok {
		delete(c.nodes, id)
	}
	c.mu.Unlock()
	if !ok {
		return
	}
	c.logf("node %d: killed", id)
	nd.kill()
}

// Close kills every node and waits for all cluster goroutines to drain.
func (c *Cluster) Close() {
	c.quitOnce.Do(func() { close(c.quit) })
	c.mu.Lock()
	nodes := make([]*Node, 0, len(c.nodes))
	for _, nd := range c.nodes {
		nodes = append(nodes, nd)
	}
	c.nodes = make(map[overlay.NodeID]*Node)
	c.mu.Unlock()
	for _, nd := range nodes {
		nd.kill()
	}
	c.wg.Wait()
	if c.logC != nil {
		c.logC.Close()
		c.logC, c.logw = nil, nil
	}
}

func (c *Cluster) isClosed() bool {
	select {
	case <-c.quit:
		return true
	default:
		return false
	}
}

// markDead tells every ChurnAware router that id was found dead.
func (c *Cluster) markDead(id overlay.NodeID) {
	c.mu.RLock()
	ms := append([]transport.ChurnAware(nil), c.markers...)
	c.mu.RUnlock()
	for _, m := range ms {
		m.MarkDead(id)
	}
}

// resolve delivers an attempt's terminal result, if anyone still waits.
func (c *Cluster) resolve(attempt int, res wireResult) {
	c.pendMu.Lock()
	ch, ok := c.pending[attempt]
	if ok {
		delete(c.pending, attempt)
	}
	c.pendMu.Unlock()
	if ok {
		ch <- res // buffered; exactly one resolver after the delete wins
	}
}

// traceTerminal records a connection's terminal lifecycle event.
func (c *Cluster) traceTerminal(kind telemetry.EventKind, batch, conn int, initiator overlay.NodeID, hop int, detail string) {
	if c.tracer == nil {
		return
	}
	c.tracer.Record(telemetry.Event{
		Kind: kind, Batch: batch, Conn: conn, Node: int(initiator), Hop: hop, Detail: detail,
	})
}

// connect runs one connection with bounded retry — the same schedule as
// transport.Network.connect: per-attempt window = timeout/MaxAttempts,
// exponential backoff between attempts, fatal NACKs end immediately.
func (c *Cluster) connect(initiator, responder overlay.NodeID, batch, conn, budget int, timeout time.Duration, contract *onion.SignedContract) (wireResult, int, error) {
	if c.Node(initiator) == nil {
		return wireResult{}, 0, fmt.Errorf("netwire: unknown initiator %d", initiator)
	}
	if c.Node(responder) == nil {
		// A responder hosted by another cluster (RegisterPeer) is reachable
		// through the directory; only a node no one knows an address for is
		// rejected early, like the in-process backend rejects unknown peers.
		if _, ok := c.addrOf(responder); !ok {
			return wireResult{}, 0, fmt.Errorf("netwire: unknown responder %d", responder)
		}
	}
	if initiator == responder {
		return wireResult{}, 0, errors.New("netwire: initiator == responder")
	}
	policy := c.retry
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	start := c.clock.Now()
	if c.tracer != nil {
		c.tracer.Record(telemetry.Event{
			Kind: telemetry.KindLaunch, Batch: batch, Conn: conn,
			Node: int(initiator), Detail: fmt.Sprintf("responder %d budget %d", responder, budget),
		})
	}
	// Span context: one trace per (batch, I, R); the root is minted lazily
	// by every connection (the recorder deduplicates by id). Attempt
	// coordinates on initiator-side spans are the per-connection ordinal,
	// NOT the frame's Attempt field — that one is a cluster-global counter.
	var trace, root telemetry.SpanID
	if c.spans != nil {
		trace = c.spans.TraceID(batch, int(initiator), int(responder))
		root = telemetry.NewSpanID(trace, telemetry.SpanBatch, 0, 0, 0, int(initiator))
		c.spans.Record(telemetry.Span{
			Trace: trace, ID: root, Kind: telemetry.SpanBatch, Batch: batch, Node: int(initiator),
		})
	}
	deadline := start.Add(timeout)
	per := timeout / time.Duration(policy.MaxAttempts)
	if per <= 0 {
		per = timeout
	}
	backoff := policy.BaseBackoff
	reforms := 0
	lastAttempt := 1
	var lastErr error
	var prevSpan telemetry.SpanID // outcome span of the previous attempt
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		lastAttempt = attempt
		remaining := c.clock.Until(deadline)
		if remaining <= 0 {
			break
		}
		if attempt > 1 {
			if backoff > 0 {
				pause := backoff
				if pause > remaining {
					pause = remaining
				}
				c.clock.Sleep(pause)
				if backoff *= 2; policy.MaxBackoff > 0 && backoff > policy.MaxBackoff {
					backoff = policy.MaxBackoff
				}
				if remaining = c.clock.Until(deadline); remaining <= 0 {
					break
				}
			}
			reforms++
			c.metrics.reformations.Inc()
			if c.tracer != nil {
				c.tracer.Record(telemetry.Event{
					Kind: telemetry.KindReformation, Batch: batch, Conn: conn,
					Node: int(initiator), Detail: fmt.Sprintf("attempt %d", attempt),
				})
			}
			if c.spans != nil {
				parent := prevSpan
				if parent == 0 {
					parent = root
				}
				reform := telemetry.NewSpanID(parent, telemetry.SpanReform, conn, attempt, 0, int(initiator))
				c.spans.Record(telemetry.Span{
					Trace: trace, ID: reform, Parent: parent, Kind: telemetry.SpanReform,
					Batch: batch, Conn: conn, Attempt: attempt, Node: int(initiator),
				})
			}
		}
		window := per
		if window > remaining {
			window = remaining
		}
		launch := telemetry.SpanID(0)
		if c.spans != nil {
			launch = telemetry.NewSpanID(root, telemetry.SpanLaunch, conn, attempt, 0, int(initiator))
			c.spans.Record(telemetry.Span{
				Trace: trace, ID: launch, Parent: root, Kind: telemetry.SpanLaunch,
				Batch: batch, Conn: conn, Attempt: attempt, Node: int(initiator),
			})
		}
		prevSpan = launch
		aid := int(c.attempt.Add(1))
		ch := make(chan wireResult, 1)
		c.pendMu.Lock()
		c.pending[aid] = ch
		c.pendMu.Unlock()
		nd := c.Node(initiator)
		if nd == nil {
			c.deregister(aid)
			c.metrics.failures.Inc()
			c.traceTerminal(telemetry.KindFailed, batch, conn, initiator, 0, "initiator departed")
			c.failSpan(trace, prevSpan, batch, conn, attempt, initiator)
			return wireResult{}, reforms, fmt.Errorf("netwire: initiator %d departed", initiator)
		}
		abs := c.clock.Now().Add(window)
		f := &Frame{
			Kind:      KindForward,
			Batch:     batch,
			Conn:      conn,
			Attempt:   aid,
			From:      overlay.None,
			Initiator: initiator,
			Responder: responder,
			Remaining: budget,
			Contract:  contract,
			Trace:     trace,
			Span:      launch,
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			nd.handleFrame(f, abs)
		}()
		timer := c.clock.NewTimer(window)
		select {
		case res := <-ch:
			timer.Stop()
			if res.err == nil {
				c.metrics.connects.Inc()
				c.metrics.connectLatency.Observe(c.clock.Since(start).Seconds())
				c.metrics.pathLen.Observe(float64(len(res.path)))
				c.traceTerminal(telemetry.KindDelivered, batch, conn, initiator, len(res.path),
					fmt.Sprintf("path len %d after %d reformations", len(res.path), reforms))
				if c.spans != nil {
					parent := res.span
					if parent == 0 {
						parent = launch
					}
					deliver := telemetry.NewSpanID(parent, telemetry.SpanDeliver, conn, attempt, 0, int(initiator))
					c.spans.Record(telemetry.Span{
						Trace: trace, ID: deliver, Parent: parent, Kind: telemetry.SpanDeliver,
						Batch: batch, Conn: conn, Attempt: attempt, Node: int(initiator),
					})
				}
				return res, reforms, nil
			}
			lastErr = res.err
			if res.span != 0 {
				prevSpan = res.span
			}
			if res.fatal {
				c.metrics.failures.Inc()
				c.traceTerminal(telemetry.KindFailed, batch, conn, initiator, 0, res.err.Error())
				c.failSpan(trace, prevSpan, batch, conn, attempt, initiator)
				return wireResult{}, reforms, res.err
			}
		case <-timer.C:
			c.deregister(aid)
			c.metrics.timeouts.Inc()
			lastErr = fmt.Errorf("netwire: attempt %d of connection %d/%d timed out after %v", attempt, batch, conn, window)
			if c.spans != nil {
				timeoutSpan := telemetry.NewSpanID(launch, telemetry.SpanTimeout, conn, attempt, 0, int(initiator))
				c.spans.Record(telemetry.Span{
					Trace: trace, ID: timeoutSpan, Parent: launch, Kind: telemetry.SpanTimeout,
					Batch: batch, Conn: conn, Attempt: attempt, Node: int(initiator),
				})
				prevSpan = timeoutSpan
			}
		}
	}
	c.metrics.failures.Inc()
	if lastErr == nil {
		lastErr = fmt.Errorf("netwire: connection %d/%d timed out after %v", batch, conn, timeout)
	}
	c.traceTerminal(telemetry.KindFailed, batch, conn, initiator, 0, lastErr.Error())
	if prevSpan == 0 {
		prevSpan = root
	}
	c.failSpan(trace, prevSpan, batch, conn, lastAttempt, initiator)
	return wireResult{}, reforms, fmt.Errorf("netwire: connection %d/%d failed after %d reformations: %w", batch, conn, reforms, lastErr)
}

// failSpan emits the terminal fail span of a connection, parented on the
// last causal step (nack span, timeout span, or the launch itself).
func (c *Cluster) failSpan(trace, parent telemetry.SpanID, batch, conn, attempt int, initiator overlay.NodeID) {
	if c.spans == nil {
		return
	}
	id := telemetry.NewSpanID(parent, telemetry.SpanFail, conn, attempt, 0, int(initiator))
	c.spans.Record(telemetry.Span{
		Trace: trace, ID: id, Parent: parent, Kind: telemetry.SpanFail,
		Batch: batch, Conn: conn, Attempt: attempt, Node: int(initiator),
	})
}

// deregister abandons a pending attempt.
func (c *Cluster) deregister(attempt int) {
	c.pendMu.Lock()
	delete(c.pending, attempt)
	c.pendMu.Unlock()
}

// Connect runs one connection over TCP and returns the realised path.
func (c *Cluster) Connect(initiator, responder overlay.NodeID, batch, conn, budget int, timeout time.Duration) ([]overlay.NodeID, error) {
	res, _, err := c.connect(initiator, responder, batch, conn, budget, timeout, nil)
	if err != nil {
		return nil, err
	}
	return res.path, nil
}

// ConnectDetail runs one connection and additionally reports the number
// of path reformations performed.
func (c *Cluster) ConnectDetail(initiator, responder overlay.NodeID, batch, conn, budget int, timeout time.Duration) ([]overlay.NodeID, int, error) {
	res, reforms, err := c.connect(initiator, responder, batch, conn, budget, timeout, nil)
	if err != nil {
		return nil, reforms, err
	}
	return res.path, reforms, nil
}

// RunBatch executes k connections sequentially and aggregates the
// outcome, exactly like the in-process backend.
func (c *Cluster) RunBatch(initiator, responder overlay.NodeID, batch, k, budget int, timeout time.Duration) (*transport.BatchOutcome, error) {
	out := transport.NewBatchOutcome()
	for conn := 1; conn <= k; conn++ {
		res, reforms, err := c.connect(initiator, responder, batch, conn, budget, timeout, nil)
		out.Reformations += reforms
		if err != nil {
			return out, err
		}
		out.Record(res.path, initiator)
	}
	return out, nil
}

// RunSecureBatch runs k connections under a signed contract — forwarders
// verify it before working and seal per-hop records that travel back in
// the CONFIRM frames — then validates every realised path with the batch
// key, mirroring transport.Network.RunSecureBatch over the wire.
func (c *Cluster) RunSecureBatch(initiator, responder overlay.NodeID, contract *onion.SignedContract, bk *onion.BatchKey, k, budget int, timeout time.Duration) (*transport.BatchOutcome, error) {
	if bk == nil {
		return nil, errors.New("netwire: nil batch key")
	}
	if contract == nil {
		return nil, errors.New("netwire: nil contract")
	}
	if !contract.Verify() {
		return nil, errors.New("netwire: contract signature invalid")
	}
	out := transport.NewBatchOutcome()
	for conn := 1; conn <= k; conn++ {
		res, reforms, err := c.connect(initiator, responder, int(contract.BatchID), conn, budget, timeout, contract)
		out.Reformations += reforms
		if err != nil {
			return out, err
		}
		validated, err := bk.RecreatePath(contract, uint64(conn), initiator, responder, res.records)
		if err != nil {
			return out, fmt.Errorf("netwire: connection %d failed validation: %w", conn, err)
		}
		if len(validated) != len(res.path) {
			return out, fmt.Errorf("netwire: connection %d: validated path length %d != observed %d",
				conn, len(validated), len(res.path))
		}
		out.Record(validated, initiator)
	}
	return out, nil
}

// RunTrace replays a trace workload over the cluster: pairs interleaved
// round-robin, failures counted and skipped — identical semantics to
// transport.Network.RunTrace.
func (c *Cluster) RunTrace(pairs []trace.Pair, opt transport.TraceOptions) *transport.TraceResult {
	res := &transport.TraceResult{Outcomes: make([]*transport.BatchOutcome, len(pairs))}
	for i := range res.Outcomes {
		res.Outcomes[i] = transport.NewBatchOutcome()
	}
	for k, conn := range trace.Interleave(pairs) {
		if opt.Before != nil {
			opt.Before(k, res)
		}
		p := &pairs[conn.Pair]
		out := res.Outcomes[conn.Pair]
		cr, reforms, err := c.connect(p.Initiator, p.Responder, p.Index+1, conn.Conn, opt.Budget, opt.Timeout, nil)
		res.Reformations += reforms
		out.Reformations += reforms
		if err != nil {
			res.Failed++
			continue
		}
		res.Completed++
		out.Record(cr.path, p.Initiator)
	}
	return res
}

// SettleBatch distributes a completed batch's split payment over the
// wire: every member of the forwarder set receives a Settle frame with
// its m·P_f + P_r/‖π‖ share, which the receiving node credits. Returns
// how many settle frames were accepted for delivery.
func (c *Cluster) SettleBatch(initiator overlay.NodeID, batch int, out *transport.BatchOutcome, contract core.Contract) (int, error) {
	nd := c.Node(initiator)
	if nd == nil {
		return 0, fmt.Errorf("netwire: unknown initiator %d", initiator)
	}
	// The settle frames carry the batch root as trace context; the
	// receiving node emits the settle span, so the log records settlement
	// where it actually happened — yet with the same ids the in-process
	// backend derives, because both hash the same causal coordinates.
	var trace, root telemetry.SpanID
	if c.spans != nil && len(out.Paths) > 0 {
		first := out.Paths[0]
		responder := first[len(first)-1]
		trace = c.spans.TraceID(batch, int(initiator), int(responder))
		root = telemetry.NewSpanID(trace, telemetry.SpanBatch, 0, 0, 0, int(initiator))
	}
	sent := 0
	for id := range out.Set {
		f := &Frame{
			Kind:     KindSettle,
			Batch:    batch,
			Node:     id,
			SetSize:  out.SetSize(),
			Forwards: out.Forwards[id],
			Payoff:   out.Payoff(id, contract),
			Trace:    trace,
			Span:     root,
		}
		if nd.sendMsg(id, f, time.Time{}) {
			sent++
		}
	}
	return sent, nil
}

// Probe sends a liveness probe from one node to another and reports
// whether the ProbeAck came back within the timeout — the wire-level
// availability check (the sim's probe.Set models the same signal).
func (c *Cluster) Probe(from, to overlay.NodeID, timeout time.Duration) bool {
	nd := c.Node(from)
	if nd == nil {
		return false
	}
	nonce := c.nonce.Add(1)
	ch := make(chan struct{}, 1)
	c.probeMu.Lock()
	c.probes[nonce] = ch
	c.probeMu.Unlock()
	defer func() {
		c.probeMu.Lock()
		delete(c.probes, nonce)
		c.probeMu.Unlock()
	}()
	if !nd.sendMsg(to, &Frame{Kind: KindProbe, Node: from, Nonce: nonce}, time.Time{}) {
		return false
	}
	timer := c.clock.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return true
	case <-timer.C:
		return false
	}
}

// resolveProbe completes a pending probe.
func (c *Cluster) resolveProbe(nonce uint64) {
	c.probeMu.Lock()
	ch, ok := c.probes[nonce]
	c.probeMu.Unlock()
	if ok {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

var _ transport.Conductor = (*Cluster)(nil)
