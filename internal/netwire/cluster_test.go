package netwire

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/transport"
)

// buildTopo creates a dense random topology over n nodes (the same
// construction the transport tests use).
func buildTopo(n, degree int, seed uint64) transport.Topology {
	rng := dist.NewSource(seed)
	topo := make(transport.Topology)
	for i := 0; i < n; i++ {
		idx := dist.SampleWithoutReplacement(rng, n-1, degree)
		var nbs []overlay.NodeID
		for _, j := range idx {
			if j >= i {
				j++
			}
			nbs = append(nbs, overlay.NodeID(j))
		}
		topo[overlay.NodeID(i)] = nbs
	}
	return topo
}

// startCluster joins every topology member to a fresh loopback cluster.
func startCluster(t *testing.T, topo transport.Topology, r transport.Router) *Cluster {
	t.Helper()
	c := NewCluster(Config{})
	for id := range topo {
		if err := c.Join(id, r); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterConnectOverTCP(t *testing.T) {
	topo := buildTopo(10, 4, 1)
	r := transport.NewRandomRouter(topo, dist.NewSource(2))
	c := startCluster(t, topo, r)
	path, err := c.Connect(0, 9, 1, 1, 4, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != 0 || path[len(path)-1] != 9 {
		t.Fatalf("path endpoints %v, want 0..9", path)
	}
	m := c.Metrics()
	if m.Connects != 1 || m.Sent == 0 {
		t.Fatalf("metrics after one connection: %+v", m)
	}
}

func TestClusterRunBatchAndSettle(t *testing.T) {
	topo := buildTopo(12, 5, 3)
	r := transport.NewRandomRouter(topo, dist.NewSource(4))
	c := startCluster(t, topo, r)
	out, err := c.RunBatch(0, 11, 1, 5, 4, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.SetSize() == 0 {
		t.Fatal("empty forwarder set after a 5-connection batch")
	}
	contract := core.Contract{Pf: 1.5, Pr: 20}
	sent, err := c.SettleBatch(0, 1, out, contract)
	if err != nil {
		t.Fatal(err)
	}
	if sent != out.SetSize() {
		t.Fatalf("settled %d of %d forwarders", sent, out.SetSize())
	}
	// Settlement is asynchronous; poll until every forwarder is credited
	// its m·P_f + P_r/‖π‖ share.
	deadline := time.Now().Add(5 * time.Second)
	for id := range out.Set {
		want := out.Payoff(id, contract)
		for {
			got := c.Node(id).Credited(1)
			if got == want {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d credited %v, want %v", id, got, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestClusterProbe(t *testing.T) {
	topo := buildTopo(4, 3, 9)
	r := transport.NewRandomRouter(topo, dist.NewSource(9))
	c := startCluster(t, topo, r)
	if !c.Probe(0, 1, 2*time.Second) {
		t.Fatal("probe to a live peer failed")
	}
	c.RemovePeer(1)
	if c.Probe(0, 1, 200*time.Millisecond) {
		t.Fatal("probe to a killed peer succeeded")
	}
}

func TestClusterForwardCounts(t *testing.T) {
	// A 3-node line: 0 -> 1 -> 2. Node 1 must forward every connection.
	topo := transport.Topology{
		0: {1},
		1: {0, 2},
		2: {1},
	}
	r := transport.NewRandomRouter(topo, dist.NewSource(5))
	c := startCluster(t, topo, r)
	const k = 4
	if _, err := c.RunBatch(0, 2, 7, k, 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(1).Forwards(7); got != k {
		t.Fatalf("node 1 forwarded %d times, want %d", got, k)
	}
}

// TestClusterChurnIntegration is the -race integration test: a cluster
// running concurrent batches while a relay is abruptly killed mid-run.
// The killed peer must surface as NACKs and path reformations (not hangs),
// surviving connections must complete, and after Close the cluster must
// not leak goroutines.
func TestClusterChurnIntegration(t *testing.T) {
	before := runtime.NumGoroutine()

	topo := buildTopo(8, 5, 11)
	r := transport.NewRandomRouter(topo, dist.NewSource(12))
	// 2ms of link latency stretches each batch well past the kill below,
	// so the relay dies with connections genuinely in flight.
	c := NewCluster(Config{Latency: 2 * time.Millisecond})
	for id := range topo {
		if err := c.Join(id, r); err != nil {
			t.Fatal(err)
		}
	}
	c.SetRetry(transport.RetryPolicy{MaxAttempts: 6, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 40 * time.Millisecond})

	// Two initiators run batches concurrently while a shared relay dies.
	var wg sync.WaitGroup
	results := make(chan error, 2)
	launch := func(initiator, responder overlay.NodeID, batch int) {
		defer wg.Done()
		_, err := c.RunBatch(initiator, responder, batch, 6, 4, 20*time.Second)
		results <- err
	}
	wg.Add(2)
	go launch(0, 7, 1)
	go launch(1, 6, 2)

	// Kill a relay that is neither an initiator nor a responder while the
	// batches are in flight.
	time.Sleep(10 * time.Millisecond)
	c.RemovePeer(3)

	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatalf("batch failed despite reformation budget: %v", err)
		}
	}

	m := c.Metrics()
	if m.Connects != 12 {
		t.Fatalf("connects = %d, want 12", m.Connects)
	}
	// The dead relay must have been routed around: with a 6-attempt budget
	// and a killed node on popular paths, dropped deliveries, NACKs or
	// reformations must have registered. (Exact counts depend on routing
	// randomness; the invariant is that the failure path was exercised or
	// the corpse was never drawn — with degree 5 over 8 nodes the corpse is
	// drawn with overwhelming probability.)
	if m.Nacks == 0 && m.Dropped == 0 && m.Reformations == 0 {
		t.Fatalf("killed relay never surfaced in metrics: %+v", m)
	}

	c.Close()
	// Goroutine-leak check: Close waits for the cluster's own goroutines,
	// but TCP teardown and test-runner noise settle asynchronously — poll
	// with a drain deadline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines before=%d after=%d; dump:\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterRetryScheduleThroughDeadRelay pins the router through a
// killed relay: every attempt must fail on a NACK (dial refused), the
// full reformation budget must be spent, and the connection must fail —
// the same schedule transport exhibits in the conformance suite.
func TestClusterRetryScheduleThroughDeadRelay(t *testing.T) {
	pinned := transport.RouterFunc(func(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (overlay.NodeID, bool) {
		return 1, false // always route via the corpse
	})
	c := NewCluster(Config{})
	t.Cleanup(c.Close)
	for _, id := range []overlay.NodeID{0, 1, 2} {
		if err := c.Join(id, pinned); err != nil {
			t.Fatal(err)
		}
	}
	c.SetRetry(transport.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond})
	c.RemovePeer(1)
	_, reforms, err := c.ConnectDetail(0, 2, 1, 1, 10, 5*time.Second)
	if err == nil {
		t.Fatal("connection through a permanently dead relay succeeded")
	}
	if reforms != 2 {
		t.Fatalf("reformations = %d, want MaxAttempts-1 = 2", reforms)
	}
	m := c.Metrics()
	if m.Failures != 1 || m.Nacks != 3 {
		t.Fatalf("failures = %d nacks = %d, want 1 and 3", m.Failures, m.Nacks)
	}
}

// TestClusterUnknownResponder checks the same early validation the
// in-process backend applies.
func TestClusterUnknownResponder(t *testing.T) {
	topo := buildTopo(4, 3, 31)
	r := transport.NewRandomRouter(topo, dist.NewSource(32))
	c := startCluster(t, topo, r)
	if _, err := c.Connect(0, 99, 1, 1, 3, time.Second); err == nil {
		t.Fatal("connection to an unknown responder succeeded")
	}
	if _, err := c.Connect(0, 0, 1, 1, 3, time.Second); err == nil {
		t.Fatal("self-connection succeeded")
	}
}
