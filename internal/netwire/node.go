package netwire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"p2panon/internal/onion"
	"p2panon/internal/overlay"
	"p2panon/internal/telemetry"
	"p2panon/internal/transport"
)

var (
	errUnknownPeer  = errors.New("netwire: peer has no known address")
	errBadHandshake = errors.New("netwire: handshake rejected")
)

// Node is one cluster member: a TCP listener on 127.0.0.1, a router, the
// per-peer outbound links, and the forwarding state machine — the
// socket-backed analogue of transport.Peer.
type Node struct {
	id     overlay.NodeID
	c      *Cluster
	router transport.Router
	ln     net.Listener

	mu       sync.Mutex
	links    map[overlay.NodeID]*link
	inbound  map[net.Conn]struct{}
	forwards map[int]int     // batch -> forwarding instances
	credited map[int]float64 // batch -> settled payoff received

	killed   chan struct{}
	killOnce sync.Once
}

// Addr returns the node's listen address.
func (nd *Node) Addr() string { return nd.ln.Addr().String() }

// Forwards returns this node's forwarding-instance count for a batch.
func (nd *Node) Forwards(batch int) int {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.forwards[batch]
}

// Credited returns the split payment this node has received for a batch
// via Settle frames.
func (nd *Node) Credited(batch int) float64 {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.credited[batch]
}

// kill shuts the node down abruptly: listener closed, every connection
// torn, links failing their queues — exactly what a crashed process looks
// like to its peers.
func (nd *Node) kill() {
	nd.killOnce.Do(func() {
		close(nd.killed)
		nd.ln.Close()
		nd.mu.Lock()
		conns := make([]net.Conn, 0, len(nd.inbound))
		for c := range nd.inbound {
			conns = append(conns, c)
		}
		links := make([]*link, 0, len(nd.links))
		for _, l := range nd.links {
			links = append(links, l)
		}
		nd.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		for _, l := range links {
			l.close()
		}
	})
}

// acceptLoop takes inbound connections until the listener closes.
func (nd *Node) acceptLoop() {
	defer nd.c.wg.Done()
	for {
		conn, err := nd.ln.Accept()
		if err != nil {
			return
		}
		nd.mu.Lock()
		select {
		case <-nd.killed:
			nd.mu.Unlock()
			conn.Close()
			return
		default:
		}
		nd.inbound[conn] = struct{}{}
		nd.mu.Unlock()
		nd.c.metrics.connsOpen.Add(1)
		nd.c.wg.Add(1)
		go nd.readLoop(conn)
	}
}

// readLoop handshakes one inbound connection and then dispatches its
// frames until error or shutdown.
func (nd *Node) readLoop(conn net.Conn) {
	defer nd.c.wg.Done()
	defer func() {
		conn.Close()
		nd.mu.Lock()
		delete(nd.inbound, conn)
		nd.mu.Unlock()
		nd.c.metrics.connsOpen.Add(-1)
	}()
	conn.SetDeadline(time.Now().Add(nd.c.cfg.HandshakeTimeout))
	hello, n, err := ReadFrame(conn)
	if err != nil || hello.Kind != KindHello {
		nd.c.logf("node %d: inbound handshake: %v", nd.id, err)
		return
	}
	nd.c.metrics.noteRecv(KindHello, n)
	ack := &Frame{Kind: KindHelloAck, Node: nd.id, Nonce: hello.Nonce}
	if n, err := WriteFrame(conn, ack); err != nil {
		return
	} else {
		nd.c.metrics.noteSent(KindHelloAck, n)
	}
	for {
		conn.SetReadDeadline(time.Now().Add(nd.c.cfg.IdleTimeout))
		f, n, err := ReadFrame(conn)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				nd.c.metrics.deadlineRead.Inc()
			}
			return
		}
		nd.c.metrics.noteRecv(f.Kind, n)
		select {
		case <-nd.killed:
			return
		default:
		}
		var abs time.Time
		if f.DeadlineMicros > 0 {
			abs = nd.c.clock.Now().Add(time.Duration(f.DeadlineMicros) * time.Microsecond)
		}
		nd.handleFrame(f, abs)
	}
}

// handleFrame dispatches one protocol frame.
func (nd *Node) handleFrame(f *Frame, abs time.Time) {
	switch f.Kind {
	case KindForward:
		nd.handleForward(f, abs)
	case KindConfirm:
		nd.relayBack(f, abs, wireResult{path: f.Path, records: f.Records, span: f.Span})
	case KindNack:
		nd.relayBack(f, abs, wireResult{err: fmt.Errorf("netwire: %s", f.Reason), fatal: f.Fatal, span: f.Span})
	case KindProbe:
		nd.sendMsg(f.Node, &Frame{Kind: KindProbeAck, Node: nd.id, Nonce: f.Nonce}, time.Time{})
	case KindProbeAck:
		nd.c.resolveProbe(f.Nonce)
	case KindSettle:
		nd.mu.Lock()
		nd.credited[f.Batch] += f.Payoff
		nd.mu.Unlock()
		nd.c.metrics.settles.Inc()
		// The settle span is minted where the credit lands, from the batch
		// root the frame carried — same id the in-process backend derives.
		if nd.c.spans != nil && f.Trace != 0 {
			span := telemetry.NewSpanID(f.Span, telemetry.SpanSettle, 0, 0, 0, int(nd.id))
			nd.c.spans.Record(telemetry.Span{
				Trace: f.Trace, ID: span, Parent: f.Span, Kind: telemetry.SpanSettle,
				Batch: f.Batch, Node: int(nd.id), Detail: transport.SettleDetail(f.Payoff),
			})
		}
	}
}

// handleForward is one stage of path formation — field for field the
// logic of transport.Peer.handleForward, over frames.
func (nd *Node) handleForward(f *Frame, abs time.Time) {
	f.Path = append(f.Path, nd.id)
	if nd.id == f.Responder {
		// The respond span closes the forward chain; the confirm carries it
		// so the initiator can parent its deliver span on it.
		if nd.c.spans != nil && f.Trace != 0 {
			respondSpan := telemetry.NewSpanID(f.Span, telemetry.SpanRespond, f.Conn, 0, len(f.Path)-1, int(nd.id))
			nd.c.spans.Record(telemetry.Span{
				Trace: f.Trace, ID: respondSpan, Parent: f.Span, Kind: telemetry.SpanRespond,
				Batch: f.Batch, Conn: f.Conn, Hop: len(f.Path) - 1, Node: int(nd.id),
			})
			f.Span = respondSpan
		}
		confirm := *f
		confirm.Kind = KindConfirm
		confirm.Hop = len(f.Path) - 2 // index of our predecessor
		nd.reverseRoute(&confirm, abs)
		return
	}
	if f.Contract != nil && !f.Contract.Verify() {
		nd.c.metrics.contractRejects.Inc()
		if tr := nd.c.tracer; tr != nil {
			tr.Record(telemetry.Event{
				Kind: telemetry.KindContractReject, Batch: f.Batch, Conn: f.Conn,
				Node: int(nd.id), Hop: len(f.Path) - 1,
			})
		}
		nd.nackBack(f, len(f.Path)-2, "contract failed verification", true, abs)
		return
	}
	if nd.id != f.Initiator {
		nd.mu.Lock()
		nd.forwards[f.Batch]++
		nd.mu.Unlock()
	}
	if tr := nd.c.tracer; tr != nil {
		tr.Record(telemetry.Event{
			Kind: telemetry.KindHopForward, Batch: f.Batch, Conn: f.Conn,
			Node: int(nd.id), Hop: len(f.Path) - 1,
		})
	}
	// Chain the causal span: this hop's span hashes its predecessor's, so
	// the id is derivable from the carried trace context alone — the
	// property that keeps remote nodes in lock-step with the in-process
	// backend's ids.
	if nd.c.spans != nil && f.Trace != 0 {
		hopSpan := telemetry.NewSpanID(f.Span, telemetry.SpanHop, f.Conn, 0, len(f.Path)-1, int(nd.id))
		nd.c.spans.Record(telemetry.Span{
			Trace: f.Trace, ID: hopSpan, Parent: f.Span, Kind: telemetry.SpanHop,
			Batch: f.Batch, Conn: f.Conn, Hop: len(f.Path) - 1, Node: int(nd.id),
		})
		f.Span = hopSpan
	}
	var next overlay.NodeID
	if f.Remaining <= 0 {
		next = f.Responder
	} else {
		n, deliver := nd.router.NextHop(nd.id, f.From, f.Initiator, f.Responder, f.Batch, f.Conn, f.Remaining)
		if deliver {
			next = f.Responder
		} else {
			next = n
		}
	}
	if f.Contract != nil && nd.id != f.Initiator {
		rec, err := onion.NewPathRecord(f.Contract, uint64(f.Conn), len(f.Path)-1, nd.id, f.From, next)
		if err == nil {
			f.Records = append(f.Records, rec)
		}
	}
	out := *f
	out.From = nd.id
	out.Remaining = f.Remaining - 1
	if !nd.sendMsg(next, &out, abs) {
		nd.c.markDead(next)
		nd.nackBack(&out, len(out.Path)-2, fmt.Sprintf("next hop %d unreachable", next), false, abs)
	}
}

// relayBack moves a CONFIRM/NACK one reverse-path member closer to the
// initiator, collapsing consecutive entries of this node itself; at index
// 0 the attempt resolves with the terminal result.
func (nd *Node) relayBack(f *Frame, abs time.Time, terminal wireResult) {
	for {
		if f.Hop <= 0 {
			nd.c.resolve(f.Attempt, terminal)
			return
		}
		f.Hop--
		if f.Path[f.Hop] == nd.id {
			continue
		}
		nd.reverseRoute(f, abs)
		return
	}
}

// reverseRoute sends a CONFIRM/NACK to Path[Hop], skipping members that
// refuse the frame synchronously. Asynchronous delivery failures continue
// the walk via onDeliveryFail.
func (nd *Node) reverseRoute(f *Frame, abs time.Time) {
	for {
		if nd.sendMsg(f.Path[f.Hop], f, abs) {
			return
		}
		nd.c.markDead(f.Path[f.Hop])
		if f.Hop == 0 {
			return
		}
		f.Hop--
	}
}

// nackBack generates a NACK for msg back along its reverse path starting
// at Path[fromIdx]; fromIdx below zero resolves the attempt directly.
func (nd *Node) nackBack(f *Frame, fromIdx int, reason string, fatal bool, abs time.Time) {
	c := nd.c
	c.metrics.nacks.Inc()
	c.metrics.nackHops.Observe(float64(len(f.Path)))
	if tr := c.tracer; tr != nil {
		tr.Record(telemetry.Event{
			Kind: telemetry.KindNack, Batch: f.Batch, Conn: f.Conn,
			Node: int(f.Initiator), Hop: len(f.Path), Detail: reason,
		})
	}
	nackSpan := telemetry.SpanID(0)
	if c.spans != nil && f.Trace != 0 {
		nackSpan = telemetry.NewSpanID(f.Span, telemetry.SpanNack, f.Conn, 0, len(f.Path), int(f.Initiator))
		c.spans.Record(telemetry.Span{
			Trace: f.Trace, ID: nackSpan, Parent: f.Span, Kind: telemetry.SpanNack,
			Batch: f.Batch, Conn: f.Conn, Hop: len(f.Path), Node: int(f.Initiator), Detail: reason,
		})
	}
	if fromIdx < 0 || len(f.Path) == 0 {
		c.resolve(f.Attempt, wireResult{err: fmt.Errorf("netwire: %s", reason), fatal: fatal, span: nackSpan})
		return
	}
	nack := *f
	nack.Kind = KindNack
	nack.Hop = fromIdx
	nack.Reason = reason
	nack.Fatal = fatal
	nack.Records = nil
	nack.Span = nackSpan
	if f.Path[fromIdx] == nd.id {
		// The NACK starts at this node itself (e.g. a delivery failure we
		// detected): relay it locally instead of a TCP round trip to self.
		nd.relayBack(&nack, abs, wireResult{err: fmt.Errorf("netwire: %s", reason), fatal: fatal, span: nackSpan})
		return
	}
	nd.reverseRoute(&nack, abs)
}

// onDeliveryFail is the link writer's failure callback: the frame could
// not be delivered to `to`. Mirrors transport's async-drop handling — a
// lost FORWARD becomes a NACK toward the initiator, a lost CONFIRM/NACK
// is rerouted one reverse-path member further down, anything else just
// dies.
func (nd *Node) onDeliveryFail(to overlay.NodeID, of outFrame) {
	c := nd.c
	if c.isClosed() {
		return
	}
	c.metrics.dropped.Inc()
	c.markDead(to)
	f := of.f
	switch f.Kind {
	case KindForward:
		nd.nackBack(f, len(f.Path)-1, fmt.Sprintf("next hop %d unreachable", to), false, of.abs)
	case KindConfirm, KindNack:
		if f.Hop > 0 {
			f.Hop--
			nd.reverseRoute(f, of.abs)
		}
	}
}

// sendMsg hands a frame to the link for `to`, creating the link on first
// use. Frames to this node itself are delivered locally (a real wire
// would not carry them anyway). With a configured artificial latency the
// handoff is delayed on the cluster clock, mirroring transport's link
// latency model. Returns false when the frame was refused synchronously
// (node killed, queue full past backpressure).
func (nd *Node) sendMsg(to overlay.NodeID, f *Frame, abs time.Time) bool {
	select {
	case <-nd.killed:
		return false
	default:
	}
	if to == nd.id {
		nd.noteSentMsg(f.Kind)
		nd.c.wg.Add(1)
		go func() {
			defer nd.c.wg.Done()
			nd.handleFrame(f, abs)
		}()
		return true
	}
	l := nd.linkTo(to)
	if nd.c.latency > 0 {
		nd.noteSentMsg(f.Kind)
		nd.c.clock.AfterFunc(nd.c.latency, func() {
			if !l.enqueue(outFrame{f: f, abs: abs}) {
				nd.onDeliveryFail(to, outFrame{f: f, abs: abs})
			}
		})
		return true
	}
	if l.enqueue(outFrame{f: f, abs: abs}) {
		nd.noteSentMsg(f.Kind)
		return true
	}
	return false
}

// noteSentMsg counts a protocol message handed to a link.
func (nd *Node) noteSentMsg(k Kind) {
	if isProtocol(k) {
		nd.c.metrics.sent.Inc()
	}
}

// isProtocol reports whether a kind is a forwarding-protocol message (the
// ones transport counts as sent/dropped) rather than a link-layer frame.
func isProtocol(k Kind) bool {
	return k == KindForward || k == KindConfirm || k == KindNack
}

// linkTo returns (creating if needed) the outbound link to a peer.
func (nd *Node) linkTo(to overlay.NodeID) *link {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if l, ok := nd.links[to]; ok {
		return l
	}
	l := nd.newLink(to, func() (string, bool) { return nd.c.addrOf(to) })
	nd.links[to] = l
	return l
}
