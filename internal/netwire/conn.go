package netwire

import (
	"net"
	"time"

	"p2panon/internal/overlay"
)

// outFrame is one queued outbound frame plus the absolute attempt
// deadline it travels under (zero = none). The deadline is re-stamped
// into DeadlineMicros at write time, so each hop forwards exactly the
// budget that remains.
type outFrame struct {
	f   *Frame
	abs time.Time
}

// link is the per-peer connection manager: a bounded outbound queue
// drained by one writer goroutine that dials on demand, keeps the
// connection pooled for reuse, applies write deadlines, and reports
// delivery failures back to its owner so the protocol can NACK and route
// around the corpse.
type link struct {
	owner *Node
	to    string // remembered for logs; the ID is authoritative
	peer  peerRef

	outbox chan outFrame
	closed chan struct{}

	// conn is owned by the writer goroutine exclusively (no lock); it is
	// nil between failures so the next frame re-dials.
	conn net.Conn
}

// peerRef names the link's remote end.
type peerRef struct {
	id   overlay.NodeID
	addr func() (string, bool) // live directory lookup
}

func (nd *Node) newLink(to overlay.NodeID, addr func() (string, bool)) *link {
	l := &link{
		owner:  nd,
		peer:   peerRef{id: to, addr: addr},
		outbox: make(chan outFrame, nd.c.cfg.QueueCap),
		closed: make(chan struct{}),
	}
	nd.c.wg.Add(1)
	go l.writeLoop()
	return l
}

// enqueue hands a frame to the link with backpressure: a full queue
// blocks the caller up to EnqueueTimeout (real time — this guards the
// socket layer, not the protocol schedule) before refusing. A refusal is
// the synchronous drop signal, like transport's send to a departed peer.
func (l *link) enqueue(of outFrame) bool {
	select {
	case l.outbox <- of:
		l.owner.c.metrics.queueDepth.SetMax(int64(len(l.outbox)))
		return true
	case <-l.closed:
		return false
	case <-l.owner.killed:
		return false
	default:
	}
	t := time.NewTimer(l.owner.c.cfg.EnqueueTimeout)
	defer t.Stop()
	select {
	case l.outbox <- of:
		l.owner.c.metrics.queueDepth.SetMax(int64(len(l.outbox)))
		return true
	case <-l.closed:
		return false
	case <-l.owner.killed:
		return false
	case <-t.C:
		return false
	}
}

// close shuts the link down; queued frames are failed by the writer.
func (l *link) close() {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
}

// writeLoop drains the outbox: dial on demand (with handshake), stamp the
// remaining deadline budget, write under a write deadline, and on any
// failure drop the pooled connection and report the frame undeliverable.
func (l *link) writeLoop() {
	defer l.owner.c.wg.Done()
	defer func() {
		if l.conn != nil {
			l.conn.Close()
			l.owner.c.metrics.connsOpen.Add(-1)
			l.conn = nil
		}
	}()
	for {
		var of outFrame
		select {
		case of = <-l.outbox:
		case <-l.closed:
			l.failQueued()
			return
		case <-l.owner.killed:
			l.failQueued()
			return
		}
		l.deliver(of)
	}
}

// failQueued drains and fails whatever is still queued when the link
// closes, so in-flight connections fail fast instead of timing out —
// netwire's analogue of a departing transport peer draining its inbox.
func (l *link) failQueued() {
	for {
		select {
		case of := <-l.outbox:
			l.owner.onDeliveryFail(l.peer.id, of)
		default:
			return
		}
	}
}

// deliver writes one frame, dialing first if the pooled connection is
// gone. Frames whose attempt deadline has already passed die here,
// silently — the initiator's attempt timer is due anyway.
func (l *link) deliver(of outFrame) {
	c := l.owner.c
	if !of.abs.IsZero() && c.clock.Now().After(of.abs) {
		c.metrics.deadlineExpired.Inc()
		return
	}
	if l.conn == nil {
		conn, err := l.dial()
		if err != nil {
			c.metrics.dialsFail.Inc()
			c.logf("node %d: dial peer %d: %v", l.owner.id, l.peer.id, err)
			l.owner.onDeliveryFail(l.peer.id, of)
			return
		}
		c.metrics.dialsOK.Inc()
		c.metrics.connsOpen.Add(1)
		l.conn = conn
	}
	if !of.abs.IsZero() {
		of.f.DeadlineMicros = c.clock.Until(of.abs).Microseconds()
		if of.f.DeadlineMicros <= 0 {
			c.metrics.deadlineExpired.Inc()
			return
		}
	}
	l.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	n, err := WriteFrame(l.conn, of.f)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			c.metrics.deadlineWrite.Inc()
		}
		c.logf("node %d: write %s to peer %d: %v", l.owner.id, of.f.Kind, l.peer.id, err)
		l.conn.Close()
		l.conn = nil
		c.metrics.connsOpen.Add(-1)
		l.owner.onDeliveryFail(l.peer.id, of)
		return
	}
	c.metrics.noteSent(of.f.Kind, n)
}

// dial opens and handshakes a fresh connection to the peer: Hello out,
// HelloAck (right version, right node) back, both under deadlines.
func (l *link) dial() (net.Conn, error) {
	c := l.owner.c
	addr, ok := l.peer.addr()
	if !ok {
		return nil, errUnknownPeer
	}
	conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	l.to = addr
	conn.SetDeadline(time.Now().Add(c.cfg.HandshakeTimeout))
	hello := &Frame{Kind: KindHello, Node: l.owner.id, Nonce: c.nonce.Add(1)}
	if n, err := WriteFrame(conn, hello); err != nil {
		conn.Close()
		return nil, err
	} else {
		c.metrics.noteSent(KindHello, n)
	}
	ack, n, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.metrics.noteRecv(KindHelloAck, n)
	if ack.Kind != KindHelloAck || ack.Node != l.peer.id {
		conn.Close()
		return nil, errBadHandshake
	}
	conn.SetDeadline(time.Time{})
	return conn, nil
}
