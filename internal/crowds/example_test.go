package crowds_test

import (
	"fmt"

	"p2panon/internal/crowds"
)

// With forwarding probability 0.75, Crowds paths average five edges.
func ExampleExpectedPathLength() {
	fmt.Printf("%.1f\n", crowds.ExpectedPathLength(0.75))
	// Output: 5.0
}

// Reiter-Rubin's probable-innocence bound: against 2 collaborators at
// p_f = 0.75, a crowd of at least 9 keeps the initiator probably
// innocent.
func ExampleMinCrowdForInnocence() {
	n, _ := crowds.MinCrowdForInnocence(2, 0.75)
	fmt.Println(n)
	ok, _ := crowds.Params{N: n, C: 2, Pf: 0.75}.ProbableInnocence()
	fmt.Println(ok)
	// Output:
	// 9
	// true
}

// The first collaborating forwarder sees the true initiator as its
// predecessor with probability 1 − p_f(n−c−1)/n.
func ExampleParams_FirstCollaboratorSeesInitiator() {
	p := crowds.Params{N: 20, C: 2, Pf: 0.75}
	post, _ := p.FirstCollaboratorSeesInitiator()
	fmt.Printf("%.4f\n", post)
	// Output: 0.3625
}
