// Package crowds implements the analytic model of Crowds (Reiter & Rubin
// 1998), the forwarding system the paper's mechanism builds on: expected
// path lengths under probabilistic forwarding, the predecessor-observation
// probability for colluding jondos, and the probable-innocence condition.
// The experiment suite uses these closed forms to validate the simulator's
// Crowds-coin termination mode and the coalition attack measurements
// against theory.
package crowds

import (
	"fmt"
	"math"
)

// Params describes a crowd: n members, c of them collaborating attackers,
// and forwarding probability pf ∈ (0, 1).
type Params struct {
	N  int     // crowd size
	C  int     // collaborators among the N
	Pf float64 // probability of forwarding (vs delivering)
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("crowds: n=%d", p.N)
	}
	if p.C < 0 || p.C >= p.N {
		return fmt.Errorf("crowds: c=%d of n=%d", p.C, p.N)
	}
	if p.Pf <= 0 || p.Pf >= 1 {
		return fmt.Errorf("crowds: pf=%g", p.Pf)
	}
	return nil
}

// ExpectedPathLength returns the expected number of edges on a Crowds
// path, counting I→first-jondo and the final delivery edge: the number of
// forwarding coin wins is geometric with success probability 1−pf, so
// E[edges] = 2 + pf/(1−pf).
func ExpectedPathLength(pf float64) float64 {
	return 2 + pf/(1-pf)
}

// PathLengthPMF returns P[path has exactly k edges] for k >= 2: the first
// jondo is always reached, then k−2 forwarding wins followed by one
// delivery: (1−pf)·pf^(k−2).
func PathLengthPMF(pf float64, k int) float64 {
	if k < 2 {
		return 0
	}
	return (1 - pf) * math.Pow(pf, float64(k-2))
}

// FirstCollaboratorSeesInitiator returns the probability that, given at
// least one collaborator appears on the path, the *first* collaborator's
// immediate predecessor is the true initiator — Reiter & Rubin's
// P(I | H₁⁺):
//
//	P = 1 − pf·(n − c − 1)/n
//
// (Theorem 5.2's complement form.) This is the attacker's best posterior
// for the predecessor attack the adversary package measures empirically.
func (p Params) FirstCollaboratorSeesInitiator() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return 1 - p.Pf*float64(p.N-p.C-1)/float64(p.N), nil
}

// ProbableInnocence reports Reiter & Rubin's condition for the initiator
// to remain "probably innocent" (the first collaborator's predecessor is
// the initiator with probability at most 1/2):
//
//	n ≥ pf/(pf − 1/2) · (c + 1),  requiring pf > 1/2.
func (p Params) ProbableInnocence() (bool, error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	if p.Pf <= 0.5 {
		return false, nil
	}
	return float64(p.N) >= p.Pf/(p.Pf-0.5)*float64(p.C+1), nil
}

// CollaboratorOnPath returns the probability that at least one
// collaborator appears among the forwarders of a path. Each forwarding
// choice is uniform over the crowd, so with probability c/n a given chosen
// jondo collaborates; the number of choices is 1 + Geometric(1−pf).
// Summing the geometric series:
//
//	P = (c/n) · 1 / (1 − pf·(n−c)/n)
func (p Params) CollaboratorOnPath() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.C == 0 {
		return 0, nil
	}
	frac := float64(p.C) / float64(p.N)
	return frac / (1 - p.Pf*float64(p.N-p.C)/float64(p.N)), nil
}

// MinCrowdForInnocence returns the smallest crowd size n that preserves
// probable innocence against c collaborators at forwarding probability
// pf, or an error when pf ≤ 1/2 (no finite crowd suffices).
func MinCrowdForInnocence(c int, pf float64) (int, error) {
	if pf <= 0.5 || pf >= 1 {
		return 0, fmt.Errorf("crowds: probable innocence needs pf in (1/2, 1), got %g", pf)
	}
	if c < 0 {
		return 0, fmt.Errorf("crowds: c=%d", c)
	}
	n := pf / (pf - 0.5) * float64(c+1)
	return int(math.Ceil(n)), nil
}
