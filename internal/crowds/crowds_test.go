package crowds

import (
	"math"
	"testing"
	"testing/quick"

	"p2panon/internal/dist"
)

func TestValidate(t *testing.T) {
	good := Params{N: 20, C: 2, Pf: 0.75}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N: 0, C: 0, Pf: 0.5},
		{N: 5, C: -1, Pf: 0.5},
		{N: 5, C: 5, Pf: 0.5},
		{N: 5, C: 1, Pf: 0},
		{N: 5, C: 1, Pf: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, p)
		}
	}
}

func TestExpectedPathLength(t *testing.T) {
	// pf = 0.75: 2 + 3 = 5 edges.
	if got := ExpectedPathLength(0.75); math.Abs(got-5) > 1e-12 {
		t.Fatalf("E[len] = %g", got)
	}
	if got := ExpectedPathLength(0.5); math.Abs(got-3) > 1e-12 {
		t.Fatalf("E[len] = %g", got)
	}
}

func TestPathLengthPMFSumsToOne(t *testing.T) {
	const pf = 0.7
	sum := 0.0
	for k := 2; k < 500; k++ {
		sum += PathLengthPMF(pf, k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %g", sum)
	}
	if PathLengthPMF(pf, 1) != 0 || PathLengthPMF(pf, 0) != 0 {
		t.Fatal("impossible lengths have nonzero mass")
	}
}

func TestPMFMeanMatchesExpectation(t *testing.T) {
	const pf = 0.6
	mean := 0.0
	for k := 2; k < 1000; k++ {
		mean += float64(k) * PathLengthPMF(pf, k)
	}
	if math.Abs(mean-ExpectedPathLength(pf)) > 1e-6 {
		t.Fatalf("PMF mean %g != E[len] %g", mean, ExpectedPathLength(pf))
	}
}

func TestFirstCollaboratorSeesInitiator(t *testing.T) {
	// Reiter-Rubin example regime: n=20, c=2, pf=0.75:
	// P = 1 - 0.75*17/20 = 0.3625.
	p := Params{N: 20, C: 2, Pf: 0.75}
	got, err := p.FirstCollaboratorSeesInitiator()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3625) > 1e-12 {
		t.Fatalf("P = %g", got)
	}
}

func TestProbableInnocenceBoundary(t *testing.T) {
	// pf = 3/4: threshold n = 3(c+1). c=2 -> n >= 9.
	ok, err := (Params{N: 9, C: 2, Pf: 0.75}).ProbableInnocence()
	if err != nil || !ok {
		t.Fatalf("n=9 should hold: %v %v", ok, err)
	}
	ok, err = (Params{N: 8, C: 2, Pf: 0.75}).ProbableInnocence()
	if err != nil || ok {
		t.Fatalf("n=8 should fail: %v %v", ok, err)
	}
	// pf <= 1/2 can never give probable innocence.
	ok, err = (Params{N: 1000, C: 1, Pf: 0.4}).ProbableInnocence()
	if err != nil || ok {
		t.Fatal("pf<=1/2 should never hold")
	}
}

func TestProbableInnocenceMatchesPosterior(t *testing.T) {
	// Whenever probable innocence holds, the posterior must be <= 1/2.
	for n := 3; n < 60; n++ {
		for c := 1; c < n-1; c++ {
			p := Params{N: n, C: c, Pf: 0.8}
			ok, err := p.ProbableInnocence()
			if err != nil {
				t.Fatal(err)
			}
			post, err := p.FirstCollaboratorSeesInitiator()
			if err != nil {
				t.Fatal(err)
			}
			if ok && post > 0.5+1e-12 {
				t.Fatalf("n=%d c=%d: innocence claimed but posterior %g", n, c, post)
			}
			if !ok && post < 0.5-1e-12 {
				t.Fatalf("n=%d c=%d: innocence denied but posterior %g", n, c, post)
			}
		}
	}
}

func TestMinCrowdForInnocence(t *testing.T) {
	n, err := MinCrowdForInnocence(2, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("min crowd %d, want 9", n)
	}
	if _, err := MinCrowdForInnocence(2, 0.5); err == nil {
		t.Fatal("pf=0.5 accepted")
	}
	if _, err := MinCrowdForInnocence(-1, 0.75); err == nil {
		t.Fatal("negative c accepted")
	}
	// The returned n must actually satisfy the condition, n-1 must not.
	ok, _ := (Params{N: n, C: 2, Pf: 0.75}).ProbableInnocence()
	if !ok {
		t.Fatal("returned minimum does not satisfy innocence")
	}
	ok, _ = (Params{N: n - 1, C: 2, Pf: 0.75}).ProbableInnocence()
	if ok {
		t.Fatal("n-1 also satisfies innocence; not minimal")
	}
}

func TestCollaboratorOnPath(t *testing.T) {
	p := Params{N: 20, C: 0, Pf: 0.75}
	got, err := p.CollaboratorOnPath()
	if err != nil || got != 0 {
		t.Fatalf("c=0 probability %g, err %v", got, err)
	}
	p.C = 2
	got, err = p.CollaboratorOnPath()
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got > 1 {
		t.Fatalf("probability %g", got)
	}
}

// Monte-Carlo validation: simulate Crowds forwarding directly and compare
// the analytic path-length mean and predecessor probability.
func TestMonteCarloAgreesWithTheory(t *testing.T) {
	const (
		n      = 20
		c      = 3
		pf     = 0.75
		trials = 200000
	)
	rng := dist.NewSource(99)
	collab := func(id int) bool { return id < c } // ids 0..c-1 collude
	var totalLen int
	seenCollab := 0
	firstSeesInitiator := 0
	const initiator = n - 1 // a non-collaborator
	for i := 0; i < trials; i++ {
		length := 1 // I -> first jondo
		prev := initiator
		cur := rng.Intn(n)
		firstCollabFound := false
		for {
			if !firstCollabFound && collab(cur) {
				firstCollabFound = true
				seenCollab++
				if prev == initiator {
					firstSeesInitiator++
				}
			}
			if rng.Float64() < pf {
				length++
				prev = cur
				cur = rng.Intn(n)
			} else {
				length++ // delivery edge
				break
			}
		}
		totalLen += length
	}
	meanLen := float64(totalLen) / trials
	if math.Abs(meanLen-ExpectedPathLength(pf)) > 0.05 {
		t.Fatalf("simulated mean length %g, theory %g", meanLen, ExpectedPathLength(pf))
	}
	p := Params{N: n, C: c, Pf: pf}
	want, _ := p.FirstCollaboratorSeesInitiator()
	got := float64(firstSeesInitiator) / float64(seenCollab)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("simulated predecessor probability %g, theory %g", got, want)
	}
}

// Property: posterior is within (0, 1] and decreasing in n.
func TestQuickPosteriorBounds(t *testing.T) {
	f := func(nRaw, cRaw, pfRaw uint8) bool {
		n := int(nRaw%100) + 3
		c := int(cRaw) % (n - 1)
		pf := 0.01 + 0.98*float64(pfRaw)/255
		p := Params{N: n, C: c, Pf: pf}
		post, err := p.FirstCollaboratorSeesInitiator()
		if err != nil {
			return false
		}
		if post <= 0 || post > 1 {
			return false
		}
		bigger := Params{N: n + 10, C: c, Pf: pf}
		post2, err := bigger.FirstCollaboratorSeesInitiator()
		if err != nil {
			return false
		}
		return post2 <= post+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
