// Package history implements the per-node connection history profile of
// §2.3 (Table 1): every node s stores, for each connection that passed
// through it, the connection identifier together with the predecessor and
// successor hops. H^{k-1}(s) — the entries accumulated over connections
// π¹…π^{k-1} of a batch — yields the *selectivity* of an outgoing edge:
//
//	σ(s, v) = (# past connections of the batch routed s→v) / (k − 1)
//
// The predecessor is stored so that a node occupying two different
// positions on the same path can distinguish its two outgoing edges.
package history

import (
	"fmt"
	"sort"

	"p2panon/internal/overlay"
)

// ConnID identifies one connection π^i within a batch π.
type ConnID int

// Entry is one row of a node's history profile (the paper's Table 1).
type Entry struct {
	Conn        ConnID
	Predecessor overlay.NodeID // overlay.None when the recording node was first hop after I
	Successor   overlay.NodeID
}

// Profile is the history store of a single node for a single (I, R) batch.
// The zero value is not usable; construct with NewProfile.
type Profile struct {
	owner   overlay.NodeID
	entries []Entry
	// edgeCount[successor] counts distinct connections that used the edge
	// owner→successor; a connection that visits the node twice with the
	// same successor is still one connection.
	edgeConns map[overlay.NodeID]map[ConnID]struct{}
	conns     map[ConnID]struct{}
	capacity  int // max entries retained, 0 = unlimited
}

// NewProfile creates an empty history profile for the given node.
// capacity bounds the number of retained entries (oldest evicted first);
// 0 means unlimited. The paper notes the amount of stored history
// influences edge quality — capacity models that knob.
func NewProfile(owner overlay.NodeID, capacity int) *Profile {
	if capacity < 0 {
		panic(fmt.Sprintf("history: capacity %d", capacity))
	}
	return &Profile{
		owner:     owner,
		edgeConns: make(map[overlay.NodeID]map[ConnID]struct{}),
		conns:     make(map[ConnID]struct{}),
		capacity:  capacity,
	}
}

// Owner returns the node whose history this is.
func (p *Profile) Owner() overlay.NodeID { return p.owner }

// Len returns the number of stored entries.
func (p *Profile) Len() int { return len(p.entries) }

// Connections returns the number of distinct connections recorded.
func (p *Profile) Connections() int { return len(p.conns) }

// Record stores one forwarding instance: the owner forwarded connection
// cid, received from pred (overlay.None if the owner was the first hop),
// and sent to succ.
func (p *Profile) Record(cid ConnID, pred, succ overlay.NodeID) {
	p.entries = append(p.entries, Entry{Conn: cid, Predecessor: pred, Successor: succ})
	set, ok := p.edgeConns[succ]
	if !ok {
		set = make(map[ConnID]struct{})
		p.edgeConns[succ] = set
	}
	set[cid] = struct{}{}
	p.conns[cid] = struct{}{}
	if p.capacity > 0 && len(p.entries) > p.capacity {
		p.evictOldest()
	}
}

// evictOldest removes the oldest entry and rebuilds derived counts for the
// affected successor.
func (p *Profile) evictOldest() {
	old := p.entries[0]
	p.entries = p.entries[1:]
	// Does any remaining entry still use (old.Conn, old.Successor)?
	stillEdge := false
	stillConn := false
	for _, e := range p.entries {
		if e.Conn == old.Conn {
			stillConn = true
			if e.Successor == old.Successor {
				stillEdge = true
			}
		}
	}
	if !stillEdge {
		if set, ok := p.edgeConns[old.Successor]; ok {
			delete(set, old.Conn)
			if len(set) == 0 {
				delete(p.edgeConns, old.Successor)
			}
		}
	}
	if !stillConn {
		delete(p.conns, old.Conn)
	}
}

// EdgeUses returns the number of distinct recorded connections that used
// the edge owner→succ.
func (p *Profile) EdgeUses(succ overlay.NodeID) int {
	return len(p.edgeConns[succ])
}

// Selectivity returns σ(owner, succ) for the k-th connection of the batch:
// the ratio of entries for the edge to the maximum possible (k−1). For the
// first connection (k == 1) there is no history and selectivity is 0.
func (p *Profile) Selectivity(succ overlay.NodeID, k int) float64 {
	if k <= 1 {
		return 0
	}
	sigma := float64(p.EdgeUses(succ)) / float64(k-1)
	if sigma > 1 {
		sigma = 1
	}
	return sigma
}

// EntriesFor returns the stored entries whose predecessor matches pred,
// letting a node distinguish its outgoing edges by path position as §2.3
// describes.
func (p *Profile) EntriesFor(pred overlay.NodeID) []Entry {
	var out []Entry
	for _, e := range p.entries {
		if e.Predecessor == pred {
			out = append(out, e)
		}
	}
	return out
}

// EdgeUsesAt returns the number of distinct recorded connections on which
// the owner, holding the payload received from pred, forwarded to succ —
// the position-differentiated count §2.3's predecessor trick enables.
func (p *Profile) EdgeUsesAt(pred, succ overlay.NodeID) int {
	conns := make(map[ConnID]struct{})
	for _, e := range p.entries {
		if e.Predecessor == pred && e.Successor == succ {
			conns[e.Conn] = struct{}{}
		}
	}
	return len(conns)
}

// SelectivityAt is the position-aware variant of Selectivity: σ computed
// only over history rows whose predecessor matches pred, so a node that
// occupies two positions on the same recurring path scores each position's
// outgoing edge independently ("a node can differentiate between outgoing
// edges for two different positions on the same path", §2.3).
func (p *Profile) SelectivityAt(pred, succ overlay.NodeID, k int) float64 {
	if k <= 1 {
		return 0
	}
	sigma := float64(p.EdgeUsesAt(pred, succ)) / float64(k-1)
	if sigma > 1 {
		sigma = 1
	}
	return sigma
}

// Successors returns the distinct successors recorded, ascending.
func (p *Profile) Successors() []overlay.NodeID {
	out := make([]overlay.NodeID, 0, len(p.edgeConns))
	for v := range p.edgeConns {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Store is the collection of history profiles for all nodes, keyed by
// (node, batch). The paper scopes history to the recurring connections
// between one (I, R) pair; Store keys batches by an opaque integer.
type Store struct {
	capacity int
	profiles map[storeKey]*Profile
}

type storeKey struct {
	node  overlay.NodeID
	batch int
}

// NewStore creates an empty store whose profiles retain at most capacity
// entries each (0 = unlimited).
func NewStore(capacity int) *Store {
	return &Store{capacity: capacity, profiles: make(map[storeKey]*Profile)}
}

// For returns (creating on first use) node's profile for the given batch.
func (s *Store) For(node overlay.NodeID, batch int) *Profile {
	k := storeKey{node, batch}
	p, ok := s.profiles[k]
	if !ok {
		p = NewProfile(node, s.capacity)
		s.profiles[k] = p
	}
	return p
}

// DropBatch forgets every profile of the given batch (payments settled,
// history no longer needed).
func (s *Store) DropBatch(batch int) {
	for k := range s.profiles {
		if k.batch == batch {
			delete(s.profiles, k)
		}
	}
}

// Size returns the number of live profiles.
func (s *Store) Size() int { return len(s.profiles) }
