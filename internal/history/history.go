// Package history implements the per-node connection history profile of
// §2.3 (Table 1): every node s stores, for each connection that passed
// through it, the connection identifier together with the predecessor and
// successor hops. H^{k-1}(s) — the entries accumulated over connections
// π¹…π^{k-1} of a batch — yields the *selectivity* of an outgoing edge:
//
//	σ(s, v) = (# past connections of the batch routed s→v) / (k − 1)
//
// The predecessor is stored so that a node occupying two different
// positions on the same path can distinguish its two outgoing edges.
//
// Selectivity queries sit on the routing hot path — they run once per
// candidate per hop per connection across every experiment sweep — so the
// profile maintains incremental indexes (distinct-connection counts per
// successor and per (predecessor, successor) position) updated on Record
// and eviction. EdgeUses, EdgeUsesAt and Connections are O(1) lookups and
// allocation-free; the straightforward full-entry scans are kept as
// unexported oracles for the equivalence tests.
package history

import (
	"fmt"
	"sort"

	"p2panon/internal/overlay"
)

// ConnID identifies one connection π^i within a batch π.
type ConnID int

// Entry is one row of a node's history profile (the paper's Table 1).
type Entry struct {
	Conn        ConnID
	Predecessor overlay.NodeID // overlay.None when the recording node was first hop after I
	Successor   overlay.NodeID
}

// posKey identifies a position-differentiated outgoing edge: the payload
// arrived from Pred and left toward Succ.
type posKey struct {
	pred, succ overlay.NodeID
}

// rowKey is a full (connection, predecessor, successor) triple; rowMult
// counts exact duplicate rows so eviction can tell when a triple is gone.
type rowKey struct {
	conn       ConnID
	pred, succ overlay.NodeID
}

// connSuccKey pairs a connection with a successor for the distinct-conn
// count behind EdgeUses.
type connSuccKey struct {
	conn ConnID
	succ overlay.NodeID
}

// Profile is the history store of a single node for a single (I, R) batch.
// The zero value is not usable; construct with NewProfile.
type Profile struct {
	owner   overlay.NodeID
	entries []Entry
	// Incremental indexes. Each *Mult map counts stored rows sharing a
	// key; the matching *Distinct structures count keys with multiplicity
	// > 0, which is exactly the "distinct connections" the paper's
	// selectivity needs. All are updated in O(1) on Record and eviction.
	rowMult      map[rowKey]int      // exact (conn, pred, succ) row multiplicity
	posDistinct  map[posKey]int      // distinct conns per (pred, succ) edge position
	edgeMult     map[connSuccKey]int // rows per (conn, succ)
	succDistinct map[overlay.NodeID]int
	connMult     map[ConnID]int // rows per conn
	predMult     map[overlay.NodeID]int
	conns        int // distinct connections recorded
	capacity     int // max entries retained, 0 = unlimited
	version      uint64
}

// NewProfile creates an empty history profile for the given node.
// capacity bounds the number of retained entries (oldest evicted first);
// 0 means unlimited. The paper notes the amount of stored history
// influences edge quality — capacity models that knob.
func NewProfile(owner overlay.NodeID, capacity int) *Profile {
	if capacity < 0 {
		panic(fmt.Sprintf("history: capacity %d", capacity))
	}
	return &Profile{
		owner:        owner,
		rowMult:      make(map[rowKey]int),
		posDistinct:  make(map[posKey]int),
		edgeMult:     make(map[connSuccKey]int),
		succDistinct: make(map[overlay.NodeID]int),
		connMult:     make(map[ConnID]int),
		predMult:     make(map[overlay.NodeID]int),
		capacity:     capacity,
	}
}

// Owner returns the node whose history this is.
func (p *Profile) Owner() overlay.NodeID { return p.owner }

// Query methods are nil-receiver safe: a nil *Profile behaves as an empty
// one. Store.Peek hands routing-side readers nil for nodes that never
// recorded anything, so scale-frontier solves do not materialise the six
// index maps per node just to read zero selectivities. Only Record (a
// write) requires a real profile.

// Len returns the number of stored entries.
func (p *Profile) Len() int {
	if p == nil {
		return 0
	}
	return len(p.entries)
}

// Connections returns the number of distinct connections recorded.
func (p *Profile) Connections() int {
	if p == nil {
		return 0
	}
	return p.conns
}

// Version returns a counter incremented on every mutation (Record or
// eviction); callers cache derived values against it.
func (p *Profile) Version() uint64 {
	if p == nil {
		return 0
	}
	return p.version
}

// Record stores one forwarding instance: the owner forwarded connection
// cid, received from pred (overlay.None if the owner was the first hop),
// and sent to succ.
func (p *Profile) Record(cid ConnID, pred, succ overlay.NodeID) {
	p.version++
	p.entries = append(p.entries, Entry{Conn: cid, Predecessor: pred, Successor: succ})
	rk := rowKey{cid, pred, succ}
	p.rowMult[rk]++
	if p.rowMult[rk] == 1 {
		p.posDistinct[posKey{pred, succ}]++
	}
	ek := connSuccKey{cid, succ}
	p.edgeMult[ek]++
	if p.edgeMult[ek] == 1 {
		p.succDistinct[succ]++
	}
	p.connMult[cid]++
	if p.connMult[cid] == 1 {
		p.conns++
	}
	p.predMult[pred]++
	if p.capacity > 0 && len(p.entries) > p.capacity {
		p.evictOldest()
	}
}

// evictOldest removes the oldest entry, decrementing the incremental
// indexes in O(1).
func (p *Profile) evictOldest() {
	p.version++
	old := p.entries[0]
	p.entries = p.entries[1:]
	rk := rowKey{old.Conn, old.Predecessor, old.Successor}
	if p.rowMult[rk]--; p.rowMult[rk] == 0 {
		delete(p.rowMult, rk)
		pk := posKey{old.Predecessor, old.Successor}
		if p.posDistinct[pk]--; p.posDistinct[pk] == 0 {
			delete(p.posDistinct, pk)
		}
	}
	ek := connSuccKey{old.Conn, old.Successor}
	if p.edgeMult[ek]--; p.edgeMult[ek] == 0 {
		delete(p.edgeMult, ek)
		if p.succDistinct[old.Successor]--; p.succDistinct[old.Successor] == 0 {
			delete(p.succDistinct, old.Successor)
		}
	}
	if p.connMult[old.Conn]--; p.connMult[old.Conn] == 0 {
		delete(p.connMult, old.Conn)
		p.conns--
	}
	if p.predMult[old.Predecessor]--; p.predMult[old.Predecessor] == 0 {
		delete(p.predMult, old.Predecessor)
	}
}

// EdgeUses returns the number of distinct recorded connections that used
// the edge owner→succ. O(1), allocation-free.
func (p *Profile) EdgeUses(succ overlay.NodeID) int {
	if p == nil {
		return 0
	}
	return p.succDistinct[succ]
}

// Selectivity returns σ(owner, succ) for the k-th connection of the batch:
// the ratio of entries for the edge to the maximum possible (k−1). The
// k ≤ 1 guard is load-bearing, not cosmetic: σ feeds edge quality and
// through it the SPNE payoffs, so a raw division by k−1 would leak ±Inf
// (k = 1) or a negative σ (k ≤ 0) into every utility comparison of the
// stage game. For the first connection there is no history and
// selectivity is defined as 0; non-positive k (a caller bug) degrades to
// the same harmless value.
func (p *Profile) Selectivity(succ overlay.NodeID, k int) float64 {
	if p == nil || k <= 1 {
		return 0
	}
	sigma := float64(p.EdgeUses(succ)) / float64(k-1)
	if sigma > 1 {
		sigma = 1
	}
	return sigma
}

// EntriesFor returns the stored entries whose predecessor matches pred,
// letting a node distinguish its outgoing edges by path position as §2.3
// describes. The result is sized exactly from the predecessor index; nil
// when no entry matches.
func (p *Profile) EntriesFor(pred overlay.NodeID) []Entry {
	if p == nil {
		return nil
	}
	n := p.predMult[pred]
	if n == 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	for _, e := range p.entries {
		if e.Predecessor == pred {
			out = append(out, e)
		}
	}
	return out
}

// EdgeUsesAt returns the number of distinct recorded connections on which
// the owner, holding the payload received from pred, forwarded to succ —
// the position-differentiated count §2.3's predecessor trick enables.
// O(1), allocation-free.
func (p *Profile) EdgeUsesAt(pred, succ overlay.NodeID) int {
	if p == nil {
		return 0
	}
	return p.posDistinct[posKey{pred, succ}]
}

// SelectivityAt is the position-aware variant of Selectivity: σ computed
// only over history rows whose predecessor matches pred, so a node that
// occupies two positions on the same recurring path scores each position's
// outgoing edge independently ("a node can differentiate between outgoing
// edges for two different positions on the same path", §2.3). The k ≤ 1
// guard mirrors Selectivity's: no ±Inf/NaN may reach utility math.
func (p *Profile) SelectivityAt(pred, succ overlay.NodeID, k int) float64 {
	if p == nil || k <= 1 {
		return 0
	}
	sigma := float64(p.EdgeUsesAt(pred, succ)) / float64(k-1)
	if sigma > 1 {
		sigma = 1
	}
	return sigma
}

// scanEdgeUses is the pre-index full-scan implementation of EdgeUses, kept
// as the oracle the equivalence tests check the incremental index against.
func (p *Profile) scanEdgeUses(succ overlay.NodeID) int {
	conns := make(map[ConnID]struct{})
	for _, e := range p.entries {
		if e.Successor == succ {
			conns[e.Conn] = struct{}{}
		}
	}
	return len(conns)
}

// scanEdgeUsesAt is the pre-index full-scan implementation of EdgeUsesAt
// (test oracle).
func (p *Profile) scanEdgeUsesAt(pred, succ overlay.NodeID) int {
	conns := make(map[ConnID]struct{})
	for _, e := range p.entries {
		if e.Predecessor == pred && e.Successor == succ {
			conns[e.Conn] = struct{}{}
		}
	}
	return len(conns)
}

// scanSelectivity is the scan-version oracle for Selectivity: the same
// k ≤ 1 definition over the full-scan edge-use count. The regression
// suite checks the indexed hot path against it, including the small-k
// guard values.
func (p *Profile) scanSelectivity(succ overlay.NodeID, k int) float64 {
	if p == nil || k <= 1 {
		return 0
	}
	sigma := float64(p.scanEdgeUses(succ)) / float64(k-1)
	if sigma > 1 {
		sigma = 1
	}
	return sigma
}

// scanConnections is the full-scan implementation of Connections (test
// oracle).
func (p *Profile) scanConnections() int {
	conns := make(map[ConnID]struct{})
	for _, e := range p.entries {
		conns[e.Conn] = struct{}{}
	}
	return len(conns)
}

// Successors returns the distinct successors recorded, ascending.
func (p *Profile) Successors() []overlay.NodeID {
	if p == nil {
		return nil
	}
	out := make([]overlay.NodeID, 0, len(p.succDistinct))
	for v := range p.succDistinct {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Store is the collection of history profiles for all nodes, keyed by
// (node, batch). The paper scopes history to the recurring connections
// between one (I, R) pair; Store keys batches by an opaque integer.
type Store struct {
	capacity int
	profiles map[storeKey]*Profile
}

type storeKey struct {
	node  overlay.NodeID
	batch int
}

// NewStore creates an empty store whose profiles retain at most capacity
// entries each (0 = unlimited).
func NewStore(capacity int) *Store {
	return &Store{capacity: capacity, profiles: make(map[storeKey]*Profile)}
}

// For returns (creating on first use) node's profile for the given batch.
func (s *Store) For(node overlay.NodeID, batch int) *Profile {
	k := storeKey{node, batch}
	p, ok := s.profiles[k]
	if !ok {
		p = NewProfile(node, s.capacity)
		s.profiles[k] = p
	}
	return p
}

// Peek returns node's profile for the batch, or nil when nothing was ever
// recorded for it. Profile query methods are nil-receiver safe, so
// read-only consumers (edge scoring, settlement) can use Peek directly
// instead of For — at scale-frontier populations, materialising a profile
// (six index maps) for every node a solve merely *scores* would dominate
// the working set.
func (s *Store) Peek(node overlay.NodeID, batch int) *Profile {
	return s.profiles[storeKey{node, batch}]
}

// DropBatch forgets every profile of the given batch (payments settled,
// history no longer needed).
func (s *Store) DropBatch(batch int) {
	for k := range s.profiles {
		if k.batch == batch {
			delete(s.profiles, k)
		}
	}
}

// Size returns the number of live profiles.
func (s *Store) Size() int { return len(s.profiles) }
