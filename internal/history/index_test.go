package history

import (
	"math/rand"
	"testing"

	"p2panon/internal/overlay"
)

// TestIndexMatchesScanOracle drives a profile through a random sequence of
// records (with eviction pressure) and checks the incremental indexes
// against the pre-index full-scan implementations after every step.
func TestIndexMatchesScanOracle(t *testing.T) {
	for _, capacity := range []int{0, 1, 3, 8} {
		rng := rand.New(rand.NewSource(int64(17 + capacity)))
		p := NewProfile(0, capacity)
		for step := 0; step < 400; step++ {
			cid := ConnID(rng.Intn(12))
			pred := overlay.NodeID(rng.Intn(5) - 1) // includes overlay.None
			succ := overlay.NodeID(rng.Intn(6))
			p.Record(cid, pred, succ)

			if got, want := p.Connections(), p.scanConnections(); got != want {
				t.Fatalf("cap=%d step=%d: Connections = %d, scan = %d", capacity, step, got, want)
			}
			for s := overlay.NodeID(0); s < 6; s++ {
				if got, want := p.EdgeUses(s), p.scanEdgeUses(s); got != want {
					t.Fatalf("cap=%d step=%d: EdgeUses(%d) = %d, scan = %d", capacity, step, s, got, want)
				}
				for pr := overlay.NodeID(-1); pr < 5; pr++ {
					if got, want := p.EdgeUsesAt(pr, s), p.scanEdgeUsesAt(pr, s); got != want {
						t.Fatalf("cap=%d step=%d: EdgeUsesAt(%d,%d) = %d, scan = %d",
							capacity, step, pr, s, got, want)
					}
				}
			}
		}
	}
}

// TestEntriesForPreSized checks the predecessor index sizes EntriesFor
// exactly: the result has no spare capacity from append growth, and a
// predecessor with no rows yields nil (the pre-index behaviour).
func TestEntriesForPreSized(t *testing.T) {
	p := NewProfile(0, 0)
	p.Record(1, 4, 7)
	p.Record(2, 4, 9)
	p.Record(3, 5, 9)
	got := p.EntriesFor(4)
	if len(got) != 2 || cap(got) != 2 {
		t.Fatalf("EntriesFor(4): len=%d cap=%d, want 2/2", len(got), cap(got))
	}
	if p.EntriesFor(99) != nil {
		t.Fatal("EntriesFor with no matches should be nil")
	}
}

// TestEntriesForAfterEviction checks the predecessor index tracks
// eviction, so the pre-sizing stays exact.
func TestEntriesForAfterEviction(t *testing.T) {
	p := NewProfile(0, 2)
	p.Record(1, 4, 7)
	p.Record(2, 4, 8)
	p.Record(3, 4, 9) // evicts the (1, 4, 7) row
	got := p.EntriesFor(4)
	if len(got) != 2 || cap(got) != 2 {
		t.Fatalf("EntriesFor(4): len=%d cap=%d, want 2/2", len(got), cap(got))
	}
	if got[0].Conn != 2 || got[1].Conn != 3 {
		t.Fatalf("EntriesFor(4) = %+v", got)
	}
}

// TestVersionAdvancesOnMutation checks the version counter moves on Record
// and on eviction, and is stable across pure queries.
func TestVersionAdvancesOnMutation(t *testing.T) {
	p := NewProfile(0, 1)
	v0 := p.Version()
	p.Record(1, 4, 7)
	v1 := p.Version()
	if v1 == v0 {
		t.Fatal("Record did not advance version")
	}
	p.EdgeUses(7)
	p.SelectivityAt(4, 7, 3)
	if p.Version() != v1 {
		t.Fatal("queries must not advance version")
	}
	p.Record(2, 4, 8) // records and evicts
	if p.Version() <= v1+1 {
		t.Fatalf("record+evict advanced version by %d, want ≥ 2", p.Version()-v1)
	}
}

// TestHotPathQueriesAllocationFree asserts the indexed selectivity lookups
// allocate nothing — the regression guard for the hot routing path.
func TestHotPathQueriesAllocationFree(t *testing.T) {
	p := NewProfile(0, 0)
	for c := ConnID(1); c <= 20; c++ {
		p.Record(c, overlay.NodeID(int(c)%3), overlay.NodeID(int(c)%5))
	}
	var sink float64
	var sinkInt int
	allocs := testing.AllocsPerRun(200, func() {
		sink += p.Selectivity(2, 10)
		sink += p.SelectivityAt(1, 2, 10)
		sinkInt += p.EdgeUses(3)
		sinkInt += p.EdgeUsesAt(0, 3)
		sinkInt += p.Connections()
	})
	if allocs != 0 {
		t.Fatalf("hot-path queries allocate %.1f per run, want 0", allocs)
	}
	_ = sink
	_ = sinkInt
}

// BenchmarkSelectivityAt measures the position-aware selectivity lookup on
// a profile holding a realistic per-batch history (the pre-index cost was
// a full-entry scan with a map allocation per call).
func BenchmarkSelectivityAt(b *testing.B) {
	p := NewProfile(0, 0)
	rng := rand.New(rand.NewSource(1))
	for c := ConnID(1); c <= 200; c++ {
		for hop := 0; hop < 4; hop++ {
			p.Record(c, overlay.NodeID(rng.Intn(8)-1), overlay.NodeID(rng.Intn(40)))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.SelectivityAt(overlay.NodeID(i%8-1), overlay.NodeID(i%40), 100)
	}
	_ = sink
}
