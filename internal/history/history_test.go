package history

import (
	"math"
	"testing"
	"testing/quick"

	"p2panon/internal/overlay"
)

func TestEmptyProfile(t *testing.T) {
	p := NewProfile(3, 0)
	if p.Owner() != 3 {
		t.Fatalf("owner = %d", p.Owner())
	}
	if p.Len() != 0 || p.Connections() != 0 {
		t.Fatal("empty profile not empty")
	}
	if p.Selectivity(1, 5) != 0 {
		t.Fatal("selectivity without history should be 0")
	}
}

func TestRecordAndEdgeUses(t *testing.T) {
	p := NewProfile(0, 0)
	p.Record(1, overlay.None, 7)
	p.Record(2, 4, 7)
	p.Record(3, 4, 9)
	if p.EdgeUses(7) != 2 {
		t.Fatalf("EdgeUses(7) = %d", p.EdgeUses(7))
	}
	if p.EdgeUses(9) != 1 {
		t.Fatalf("EdgeUses(9) = %d", p.EdgeUses(9))
	}
	if p.EdgeUses(12) != 0 {
		t.Fatalf("EdgeUses(12) = %d", p.EdgeUses(12))
	}
	if p.Connections() != 3 {
		t.Fatalf("connections = %d", p.Connections())
	}
}

func TestSameConnectionCountedOnce(t *testing.T) {
	// A node appearing twice on the same path with the same successor
	// still contributes one connection to that edge.
	p := NewProfile(0, 0)
	p.Record(1, 4, 7)
	p.Record(1, 9, 7)
	if p.EdgeUses(7) != 1 {
		t.Fatalf("EdgeUses = %d, want 1 (same cid)", p.EdgeUses(7))
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestSelectivityDefinition(t *testing.T) {
	// σ(s,v) = uses / (k-1), per §2.3.
	p := NewProfile(0, 0)
	p.Record(1, overlay.None, 7)
	p.Record(2, overlay.None, 7)
	p.Record(3, overlay.None, 9)
	// For the 4th connection: edge →7 used in 2 of 3 prior connections.
	if got, want := p.Selectivity(7, 4), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sigma = %g, want %g", got, want)
	}
	if got, want := p.Selectivity(9, 4), 1.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sigma = %g, want %g", got, want)
	}
	if got := p.Selectivity(11, 4); got != 0 {
		t.Fatalf("unused edge sigma = %g", got)
	}
}

func TestSelectivityClampedToOne(t *testing.T) {
	// If a node recorded more uses than k-1 (possible when k is an
	// undercount from the caller's perspective), clamp.
	p := NewProfile(0, 0)
	p.Record(1, overlay.None, 7)
	p.Record(2, overlay.None, 7)
	p.Record(3, overlay.None, 7)
	if got := p.Selectivity(7, 2); got != 1 {
		t.Fatalf("sigma = %g, want clamp at 1", got)
	}
}

func TestEntriesForPredecessor(t *testing.T) {
	p := NewProfile(0, 0)
	p.Record(1, 4, 7)
	p.Record(1, 9, 8)
	p.Record(2, 4, 7)
	got := p.EntriesFor(4)
	if len(got) != 2 {
		t.Fatalf("EntriesFor(4) = %v", got)
	}
	for _, e := range got {
		if e.Predecessor != 4 || e.Successor != 7 {
			t.Fatalf("wrong entry %+v", e)
		}
	}
	if len(p.EntriesFor(overlay.None)) != 0 {
		t.Fatal("None predecessor should have no entries here")
	}
}

func TestSuccessorsSorted(t *testing.T) {
	p := NewProfile(0, 0)
	p.Record(1, overlay.None, 9)
	p.Record(2, overlay.None, 3)
	p.Record(3, overlay.None, 6)
	got := p.Successors()
	want := []overlay.NodeID{3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("successors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("successors = %v", got)
		}
	}
}

func TestCapacityEviction(t *testing.T) {
	p := NewProfile(0, 2)
	p.Record(1, overlay.None, 7)
	p.Record(2, overlay.None, 8)
	p.Record(3, overlay.None, 9) // evicts cid 1
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.EdgeUses(7) != 0 {
		t.Fatal("evicted edge still counted")
	}
	if p.Connections() != 2 {
		t.Fatalf("connections = %d", p.Connections())
	}
}

func TestEvictionKeepsSharedCounts(t *testing.T) {
	p := NewProfile(0, 2)
	p.Record(1, 4, 7)
	p.Record(1, 9, 7) // same (cid, successor); evicting one keeps the edge
	p.Record(2, 4, 8) // evicts first entry
	if p.EdgeUses(7) != 1 {
		t.Fatalf("EdgeUses(7) = %d; shared (cid,succ) lost on eviction", p.EdgeUses(7))
	}
	if p.Connections() != 2 {
		t.Fatalf("connections = %d", p.Connections())
	}
}

func TestEvictionDropsConnOnlyWhenGone(t *testing.T) {
	p := NewProfile(0, 2)
	p.Record(1, 4, 7)
	p.Record(1, 7, 9) // same conn, different edge
	p.Record(2, 4, 8) // evicts (1,4,7)
	if p.EdgeUses(7) != 0 {
		t.Fatal("evicted edge still counted")
	}
	if p.Connections() != 2 { // conn 1 still present via second entry
		t.Fatalf("connections = %d", p.Connections())
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewProfile(0, -1)
}

func TestStoreIsolatesBatches(t *testing.T) {
	s := NewStore(0)
	s.For(1, 100).Record(1, overlay.None, 7)
	if s.For(1, 200).EdgeUses(7) != 0 {
		t.Fatal("batches not isolated")
	}
	if s.For(2, 100).EdgeUses(7) != 0 {
		t.Fatal("nodes not isolated")
	}
	if s.Size() != 3 {
		t.Fatalf("size = %d", s.Size())
	}
}

func TestStoreForIdempotent(t *testing.T) {
	s := NewStore(0)
	a := s.For(1, 1)
	b := s.For(1, 1)
	if a != b {
		t.Fatal("For not idempotent")
	}
}

func TestStoreDropBatch(t *testing.T) {
	s := NewStore(0)
	s.For(1, 100).Record(1, overlay.None, 7)
	s.For(2, 100).Record(1, 1, 8)
	s.For(1, 200).Record(1, overlay.None, 9)
	s.DropBatch(100)
	if s.Size() != 1 {
		t.Fatalf("size after drop = %d", s.Size())
	}
	if s.For(1, 200).EdgeUses(9) != 1 {
		t.Fatal("wrong batch dropped")
	}
}

// Property: selectivity is always within [0, 1] and EdgeUses never exceeds
// the number of distinct connections.
func TestQuickSelectivityBounds(t *testing.T) {
	f := func(ops []uint8, k uint8) bool {
		p := NewProfile(0, 0)
		for i, op := range ops {
			cid := ConnID(op % 8)
			succ := overlay.NodeID(op % 5)
			pred := overlay.NodeID(i % 3)
			p.Record(cid, pred, succ)
		}
		for succ := overlay.NodeID(0); succ < 5; succ++ {
			if p.EdgeUses(succ) > p.Connections() {
				return false
			}
			sigma := p.Selectivity(succ, int(k))
			if sigma < 0 || sigma > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: with capacity c, Len never exceeds c.
func TestQuickCapacityInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		const c = 5
		p := NewProfile(0, c)
		for _, op := range ops {
			p.Record(ConnID(op%10), overlay.NodeID(op%3), overlay.NodeID(op%7))
			if p.Len() > c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeUsesAtDifferentiatesPositions(t *testing.T) {
	p := NewProfile(0, 0)
	// Node 0 occupies two positions on recurring paths: after pred 4 it
	// forwards to 7; after pred 9 it forwards to 8.
	p.Record(1, 4, 7)
	p.Record(1, 9, 8)
	p.Record(2, 4, 7)
	p.Record(2, 9, 8)
	if got := p.EdgeUsesAt(4, 7); got != 2 {
		t.Fatalf("EdgeUsesAt(4,7) = %d", got)
	}
	if got := p.EdgeUsesAt(9, 7); got != 0 {
		t.Fatalf("EdgeUsesAt(9,7) = %d", got)
	}
	if got := p.EdgeUsesAt(4, 8); got != 0 {
		t.Fatalf("EdgeUsesAt(4,8) = %d", got)
	}
	// Position-agnostic count sees both connections per successor.
	if got := p.EdgeUses(7); got != 2 {
		t.Fatalf("EdgeUses(7) = %d", got)
	}
}

func TestSelectivityAtDefinition(t *testing.T) {
	p := NewProfile(0, 0)
	p.Record(1, 4, 7)
	p.Record(2, 4, 7)
	p.Record(3, 9, 7) // same successor, different position
	// At position pred=4 for the 4th connection: 2 of 3 prior.
	if got, want := p.SelectivityAt(4, 7, 4), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sigma = %g, want %g", got, want)
	}
	// Unknown position: zero.
	if got := p.SelectivityAt(12, 7, 4); got != 0 {
		t.Fatalf("sigma = %g", got)
	}
	if got := p.SelectivityAt(4, 7, 1); got != 0 {
		t.Fatal("k<=1 selectivity should be 0")
	}
	// Clamp: more uses than k-1.
	if got := p.SelectivityAt(4, 7, 2); got != 1 {
		t.Fatalf("sigma = %g, want clamp", got)
	}
}
