package history

import (
	"math"
	"testing"

	"p2panon/internal/dist"
	"p2panon/internal/overlay"
)

// TestSelectivitySmallKAgainstScanOracle is the k ≤ 1 audit regression:
// the indexed selectivity must match the full-scan oracle bit for bit
// across the whole k range, and in particular the degenerate k values
// (0, 1, negative) must yield exactly 0 — never ±Inf or NaN, which a raw
// division by k−1 would leak straight into the SPNE utility comparisons.
func TestSelectivitySmallKAgainstScanOracle(t *testing.T) {
	rng := dist.NewSource(99)
	p := NewProfile(0, 0)
	for c := 1; c <= 40; c++ {
		hops := 1 + rng.Intn(3)
		for h := 0; h < hops; h++ {
			pred := overlay.NodeID(rng.Intn(8)) - 1 // includes overlay.None
			succ := overlay.NodeID(rng.Intn(10))
			p.Record(ConnID(c), pred, succ)
		}
	}
	for k := -2; k <= 45; k++ {
		for succ := overlay.NodeID(0); succ < 12; succ++ {
			got := p.Selectivity(succ, k)
			want := p.scanSelectivity(succ, k)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Selectivity(%d, %d) = %x, scan oracle %x",
					succ, k, math.Float64bits(got), math.Float64bits(want))
			}
			if math.IsInf(got, 0) || math.IsNaN(got) || got < 0 || got > 1 {
				t.Fatalf("Selectivity(%d, %d) = %v escapes [0, 1]", succ, k, got)
			}
			if k <= 1 && got != 0 {
				t.Fatalf("Selectivity(%d, %d) = %v, want 0 for k ≤ 1", succ, k, got)
			}
			at := p.SelectivityAt(4, succ, k)
			if math.IsInf(at, 0) || math.IsNaN(at) || at < 0 || at > 1 {
				t.Fatalf("SelectivityAt(4, %d, %d) = %v escapes [0, 1]", succ, k, at)
			}
			if k <= 1 && at != 0 {
				t.Fatalf("SelectivityAt(4, %d, %d) = %v, want 0 for k ≤ 1", succ, k, at)
			}
		}
	}
}

// TestNilProfileQueries pins the nil-receiver contract the sparse solve
// leans on: Store.Peek returns nil for never-recorded (node, batch) pairs
// and every query on a nil *Profile behaves exactly like an empty profile,
// so scoring a cold node allocates nothing.
func TestNilProfileQueries(t *testing.T) {
	var p *Profile
	if p.Len() != 0 || p.Connections() != 0 || p.Version() != 0 {
		t.Fatal("nil profile not empty")
	}
	if p.EdgeUses(3) != 0 || p.EdgeUsesAt(1, 3) != 0 {
		t.Fatal("nil profile reports edge uses")
	}
	if got := p.Selectivity(3, 5); got != 0 {
		t.Fatalf("nil Selectivity = %v", got)
	}
	if got := p.SelectivityAt(1, 3, 5); got != 0 {
		t.Fatalf("nil SelectivityAt = %v", got)
	}
	if p.EntriesFor(1) != nil {
		t.Fatal("nil EntriesFor not nil")
	}
	if got := p.Successors(); len(got) != 0 {
		t.Fatalf("nil Successors = %v", got)
	}

	s := NewStore(0)
	if s.Peek(7, 0) != nil {
		t.Fatal("Peek invented a profile")
	}
	live := s.For(7, 0)
	if live == nil {
		t.Fatal("For did not create a profile")
	}
	if s.Peek(7, 0) != live {
		t.Fatal("Peek does not see the profile For created")
	}
	if s.Peek(7, 1) != nil || s.Peek(8, 0) != nil {
		t.Fatal("Peek leaks across (node, batch) keys")
	}
}
