package reputation

import (
	"math"
	"testing"
	"testing/quick"

	"p2panon/internal/dist"
	"p2panon/internal/overlay"
)

func TestTablePriorAndReports(t *testing.T) {
	tab := NewTable(1)
	if tab.Score(5) != 1 {
		t.Fatalf("prior %g", tab.Score(5))
	}
	tab.Report(5, 3)
	if tab.Score(5) != 4 {
		t.Fatalf("score %g", tab.Score(5))
	}
	tab.Report(5, -100)
	if got := tab.Score(5); got > 1e-5 || got <= 0 {
		t.Fatalf("floor not applied: %g", got)
	}
}

func TestTablePanicsOnBadPrior(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTable(0)
}

func TestSubjectsSorted(t *testing.T) {
	tab := NewTable(1)
	tab.Report(9, 1)
	tab.Report(2, 1)
	tab.Report(5, 1)
	got := tab.Subjects()
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("subjects %v", got)
	}
}

func TestSelectWeightedFavoursHighScore(t *testing.T) {
	tab := NewTable(1)
	tab.Report(1, 99) // score 100 vs prior 1
	rng := dist.NewSource(3)
	counts := map[overlay.NodeID]int{}
	for i := 0; i < 10000; i++ {
		counts[tab.SelectWeighted(rng, []overlay.NodeID{1, 2})]++
	}
	frac := float64(counts[1]) / 10000
	if math.Abs(frac-100.0/101.0) > 0.02 {
		t.Fatalf("high-score selection rate %g", frac)
	}
}

func TestSelectWeightedPanicsOnEmpty(t *testing.T) {
	tab := NewTable(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tab.SelectWeighted(dist.NewSource(1), nil)
}

func TestCoalitionInflate(t *testing.T) {
	tab := NewTable(1)
	c := NewCoalition([]overlay.NodeID{1, 2, 3}, 2)
	n := c.Inflate(tab)
	if n != 6 { // 3 members × 2 others
		t.Fatalf("reports %d", n)
	}
	for _, id := range []overlay.NodeID{1, 2, 3} {
		if got := tab.Score(id); got != 5 { // 1 + 2 peers × boost 2
			t.Fatalf("member %d score %g", id, got)
		}
	}
	if tab.Score(9) != 1 {
		t.Fatal("outsider score changed")
	}
	if !c.Contains(1) || c.Contains(9) || c.Members() != 3 {
		t.Fatal("membership wrong")
	}
}

func buildNet(t *testing.T, n int, seed uint64) *overlay.Network {
	t.Helper()
	net := overlay.NewNetwork(5, dist.NewSource(seed))
	for i := 0; i < n; i++ {
		net.Join(0, false)
	}
	return net
}

func TestCaptureGrowsWithCollusion(t *testing.T) {
	// The paper's claim: colluders inflate their reputation and capture a
	// share of the forwarding slots far above their population share.
	net := buildNet(t, 40, 1)
	members := []overlay.NodeID{0, 1, 2, 3} // 10% of nodes
	rng := dist.NewSource(2)

	honest := &CaptureSim{
		Net:       net,
		Table:     NewTable(1),
		Coalition: NewCoalition(members, 0), // no fake reports
		Rng:       rng.Split(),
		Hops:      4,
	}
	hres, err := honest.Run(200)
	if err != nil {
		t.Fatal(err)
	}

	colluding := &CaptureSim{
		Net:       net,
		Table:     NewTable(1),
		Coalition: NewCoalition(members, 5),
		Rng:       rng.Split(),
		Hops:      4,
	}
	cres, err := colluding.Run(200)
	if err != nil {
		t.Fatal(err)
	}

	// Without collusion the coalition holds roughly its population share.
	popShare := 4.0 / 38.0 // 4 of ~38 eligible relays
	if math.Abs(hres.Overall-popShare) > 0.08 {
		t.Fatalf("honest capture %g far from population share %g", hres.Overall, popShare)
	}
	// With collusion, late-run capture must be dramatically higher.
	if cres.Late < 2*popShare {
		t.Fatalf("colluding late capture %g did not inflate (share %g)", cres.Late, popShare)
	}
	if cres.Late <= hres.Late {
		t.Fatalf("collusion did not help: %g vs %g", cres.Late, hres.Late)
	}
}

func TestCaptureCompoundsOverTime(t *testing.T) {
	net := buildNet(t, 40, 3)
	sim := &CaptureSim{
		Net:       net,
		Table:     NewTable(1),
		Coalition: NewCoalition([]overlay.NodeID{0, 1, 2, 3}, 5),
		Rng:       dist.NewSource(4),
		Hops:      4,
	}
	res, err := sim.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Late <= res.Overall {
		t.Fatalf("capture did not compound: late %g <= overall %g", res.Late, res.Overall)
	}
}

func TestCaptureSimValidation(t *testing.T) {
	net := buildNet(t, 5, 5)
	sim := &CaptureSim{
		Net:       net,
		Table:     NewTable(1),
		Coalition: NewCoalition(nil, 0),
		Rng:       dist.NewSource(1),
		Hops:      0,
	}
	if _, err := sim.Run(1); err == nil {
		t.Fatal("hops=0 accepted")
	}
	sim.Hops = 10 // more hops than nodes
	if _, err := sim.Run(1); err == nil {
		t.Fatal("oversized hops accepted")
	}
}

// Property: scores are always >= floor and selection always returns a
// candidate from the list.
func TestQuickTableInvariants(t *testing.T) {
	rng := dist.NewSource(7)
	f := func(deltas []int8) bool {
		tab := NewTable(1)
		for i, d := range deltas {
			tab.Report(overlay.NodeID(i%5), float64(d))
			if tab.Score(overlay.NodeID(i%5)) <= 0 {
				return false
			}
		}
		cands := []overlay.NodeID{0, 1, 2, 3, 4}
		pick := tab.SelectWeighted(rng, cands)
		return pick >= 0 && pick <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
