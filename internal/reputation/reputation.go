// Package reputation implements the score-based forwarder-selection
// baseline the paper's related work contrasts with (Dingledine et al. [9,
// 10]): peers accumulate reputation from feedback reports and are selected
// for forwarding with probability proportional to their score.
//
// The paper's argument for incentives over reputation is that "nodes can
// collude with each other to increase their score or reputation and
// therefore increase their probability of being selected in the forwarding
// path" — whereas the payment mechanism only rewards *receipt-provable*
// forwarding. This package provides the reputation substrate, the
// collusion behaviour, and a path-capture simulation so that claim can be
// measured (the CMP-REP study in DESIGN.md).
package reputation

import (
	"fmt"
	"sort"

	"p2panon/internal/dist"
	"p2panon/internal/overlay"
)

// Table is a (system-wide) reputation store: subject → score. Scores start
// at the prior and never go below the floor.
type Table struct {
	scores map[overlay.NodeID]float64
	prior  float64
	floor  float64
}

// NewTable creates a table with the given prior score for unknown
// subjects. The floor is fixed at a small positive value so selection
// probabilities stay well-defined.
func NewTable(prior float64) *Table {
	if prior <= 0 {
		panic(fmt.Sprintf("reputation: prior %g", prior))
	}
	return &Table{
		scores: make(map[overlay.NodeID]float64),
		prior:  prior,
		floor:  1e-6,
	}
}

// Score returns the subject's current score.
func (t *Table) Score(subject overlay.NodeID) float64 {
	if s, ok := t.scores[subject]; ok {
		return s
	}
	return t.prior
}

// Report applies feedback: delta > 0 for observed good service, delta < 0
// for failures. Scores clamp at the floor.
func (t *Table) Report(subject overlay.NodeID, delta float64) {
	s := t.Score(subject) + delta
	if s < t.floor {
		s = t.floor
	}
	t.scores[subject] = s
}

// Subjects returns all explicitly scored subjects, ascending.
func (t *Table) Subjects() []overlay.NodeID {
	out := make([]overlay.NodeID, 0, len(t.scores))
	for id := range t.scores {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SelectWeighted picks one candidate with probability proportional to its
// score. It panics on an empty candidate list.
func (t *Table) SelectWeighted(rng *dist.Source, candidates []overlay.NodeID) overlay.NodeID {
	if len(candidates) == 0 {
		panic("reputation: no candidates")
	}
	weights := make([]float64, len(candidates))
	for i, id := range candidates {
		weights[i] = t.Score(id)
	}
	return candidates[dist.WeightedChoice(rng, weights)]
}

// Coalition is a set of colluding nodes that file fake positive reports
// about one another.
type Coalition struct {
	members map[overlay.NodeID]struct{}
	// Boost is the fake-report delta each member files for every other
	// member per inflation round.
	Boost float64
}

// NewCoalition builds a coalition.
func NewCoalition(members []overlay.NodeID, boost float64) *Coalition {
	m := make(map[overlay.NodeID]struct{}, len(members))
	for _, id := range members {
		m[id] = struct{}{}
	}
	return &Coalition{members: m, Boost: boost}
}

// Members returns the coalition size.
func (c *Coalition) Members() int { return len(c.members) }

// Contains reports membership.
func (c *Coalition) Contains(id overlay.NodeID) bool {
	_, ok := c.members[id]
	return ok
}

// Inflate files one round of fake mutual praise: every member reports
// +Boost for every other member. Returns the number of fake reports.
func (c *Coalition) Inflate(t *Table) int {
	n := 0
	for a := range c.members {
		for b := range c.members {
			if a == b {
				continue
			}
			t.Report(b, c.Boost)
			n++
		}
	}
	return n
}

// CaptureSim measures how much of the forwarding work a coalition captures
// under reputation-weighted routing. Each round: one connection of
// `hops` reputation-weighted selections from the online population,
// honest feedback (+1 per actual forwarding slot), then one coalition
// inflation round. It returns the fraction of forwarding slots held by
// coalition members, overall and in the final quarter of the run (when
// inflation has compounded).
type CaptureSim struct {
	Net       *overlay.Network
	Table     *Table
	Coalition *Coalition
	Rng       *dist.Source
	Hops      int
}

// CaptureResult reports the simulation outcome.
type CaptureResult struct {
	Rounds        int
	TotalSlots    int
	CoalitionSlot int
	// Overall is CoalitionSlot/TotalSlots; Late is the same ratio over
	// the final quarter of rounds.
	Overall float64
	Late    float64
}

// Run executes `rounds` connections between random good endpoints.
func (s *CaptureSim) Run(rounds int) (*CaptureResult, error) {
	if s.Hops < 1 {
		return nil, fmt.Errorf("reputation: hops %d", s.Hops)
	}
	online := s.Net.OnlineIDs()
	if len(online) < s.Hops+2 {
		return nil, fmt.Errorf("reputation: %d online nodes for %d hops", len(online), s.Hops)
	}
	res := &CaptureResult{Rounds: rounds}
	lateFrom := rounds * 3 / 4
	lateSlots, lateCoalition := 0, 0
	for round := 0; round < rounds; round++ {
		// Endpoints: good nodes only.
		var I, R overlay.NodeID
		for {
			I = dist.Choice(s.Rng, online)
			R = dist.Choice(s.Rng, online)
			if I != R && !s.Coalition.Contains(I) && !s.Coalition.Contains(R) {
				break
			}
		}
		// Reputation-weighted relay selection (without replacement).
		taken := map[overlay.NodeID]struct{}{I: {}, R: {}}
		for h := 0; h < s.Hops; h++ {
			var cands []overlay.NodeID
			for _, id := range online {
				if _, used := taken[id]; !used {
					cands = append(cands, id)
				}
			}
			if len(cands) == 0 {
				break
			}
			pick := s.Table.SelectWeighted(s.Rng, cands)
			taken[pick] = struct{}{}
			res.TotalSlots++
			captured := s.Coalition.Contains(pick)
			if captured {
				res.CoalitionSlot++
			}
			if round >= lateFrom {
				lateSlots++
				if captured {
					lateCoalition++
				}
			}
			// Honest feedback: the initiator saw the relay forward.
			s.Table.Report(pick, 1)
		}
		s.Coalition.Inflate(s.Table)
	}
	if res.TotalSlots > 0 {
		res.Overall = float64(res.CoalitionSlot) / float64(res.TotalSlots)
	}
	if lateSlots > 0 {
		res.Late = float64(lateCoalition) / float64(lateSlots)
	}
	return res, nil
}
