package probe

import (
	"math"
	"testing"
	"testing/quick"

	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/sim"
)

// buildNet creates an n-node static overlay with degree d.
func buildNet(t *testing.T, n, d int, seed uint64) *overlay.Network {
	t.Helper()
	net := overlay.NewNetwork(d, dist.NewSource(seed))
	for i := 0; i < n; i++ {
		net.Join(0, false)
	}
	// Early joiners saw few online peers; top their neighbor sets up.
	for _, id := range net.AllIDs() {
		net.RefreshNeighbors(id)
	}
	return net
}

func TestInitialSessionTimesZero(t *testing.T) {
	net := buildNet(t, 10, 4, 1)
	est := NewEstimator(5, net, dist.NewSource(2), DefaultPeriod)
	for _, v := range net.NeighborsOf(5) {
		if est.SessionTime(v) != 0 {
			t.Fatalf("neighbor %d initial session %g", v, est.SessionTime(v))
		}
	}
}

func TestUninformativePriorIsUniform(t *testing.T) {
	net := buildNet(t, 10, 4, 1)
	est := NewEstimator(5, net, dist.NewSource(2), DefaultPeriod)
	nb := net.NeighborsOf(5)
	for _, v := range nb {
		want := 1.0 / float64(len(nb))
		if got := est.Availability(v); math.Abs(got-want) > 1e-12 {
			t.Fatalf("prior availability %g, want %g", got, want)
		}
	}
	if got := est.Availability(overlay.NodeID(999)); got != 0 {
		t.Fatalf("unknown neighbor availability %g", got)
	}
}

func TestTickCreditsLiveNeighbors(t *testing.T) {
	net := buildNet(t, 10, 4, 3)
	est := NewEstimator(0, net, dist.NewSource(4), 60)
	est.Tick()
	est.Tick()
	for _, v := range net.NeighborsOf(0) {
		if got := est.SessionTime(v); got != 120 {
			t.Fatalf("session time %g after 2 ticks, want 120", got)
		}
	}
	if est.Probes() != 2 {
		t.Fatalf("probes = %d", est.Probes())
	}
}

func TestAvailabilityNormalises(t *testing.T) {
	net := buildNet(t, 12, 5, 5)
	est := NewEstimator(0, net, dist.NewSource(6), 60)
	for i := 0; i < 10; i++ {
		est.Tick()
	}
	sum := 0.0
	for _, a := range est.Snapshot() {
		if a < 0 || a > 1 {
			t.Fatalf("availability out of range: %g", a)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("availabilities sum to %g", sum)
	}
}

func TestDeadNeighborDecays(t *testing.T) {
	net := buildNet(t, 10, 4, 7)
	victim := net.NeighborsOf(0)[0]
	est := NewEstimator(0, net, dist.NewSource(8), 60)
	est.Tick() // everyone at 60
	net.Leave(100, victim, false)
	est.Tick()
	if got := est.SessionTime(victim); got != 60*DecayOnMiss {
		t.Fatalf("dead neighbor session %g, want %g", got, 60*DecayOnMiss)
	}
	// A live neighbor has 120; victim must rank below it.
	live := net.NeighborsOf(0)[1]
	if est.Availability(victim) >= est.Availability(live) {
		t.Fatal("dead neighbor ranks >= live one")
	}
}

func TestHigherSessionTimeHigherAvailability(t *testing.T) {
	// The paper: "a neighbor with a higher observed session time has a
	// higher availability."
	net := buildNet(t, 10, 4, 9)
	nb := net.NeighborsOf(0)
	est := NewEstimator(0, net, dist.NewSource(10), 60)
	est.Tick()
	net.Leave(50, nb[0], false)
	est.Tick() // nb[0] decays; others grow
	for _, v := range nb[1:] {
		if est.SessionTime(nb[0]) < est.SessionTime(v) &&
			est.Availability(nb[0]) >= est.Availability(v) {
			t.Fatal("availability ordering violates session-time ordering")
		}
	}
}

func TestNewNeighborGetsRandomInit(t *testing.T) {
	net := buildNet(t, 30, 5, 11)
	est := NewEstimator(0, net, dist.NewSource(12), 60)
	est.Tick()
	// Force a neighbor change: depart one neighbor and refresh.
	victim := net.NeighborsOf(0)[0]
	net.Leave(10, victim, true)
	net.RefreshNeighbors(0)
	// Find the replacement (a neighbor with no session entry yet).
	var fresh overlay.NodeID = overlay.None
	for _, v := range net.NeighborsOf(0) {
		if v != victim && est.SessionTime(v) == 0 && v != overlay.None {
			// zero could also mean never ticked; pick one not in old set
			fresh = v
		}
	}
	est.Tick()
	if fresh != overlay.None {
		got := est.SessionTime(fresh)
		// rand(0,60) only — the discovery tick must NOT also credit the
		// +60 period, or a newcomer could outrank a fully observed node.
		if got <= 0 || got >= 60 {
			t.Fatalf("fresh neighbor session %g, want in (0,60)", got)
		}
		// An incumbent observed for both ticks has 120 and must outrank it.
		for _, v := range net.NeighborsOf(0) {
			if v != fresh && est.SessionTime(v) == 120 && est.Availability(v) <= est.Availability(fresh) {
				t.Fatalf("fresh neighbor (t=%g) outranks incumbent (t=120)", got)
			}
		}
		// From the next tick on it accrues normally.
		est.Tick()
		if got2 := est.SessionTime(fresh); got2 <= 60 || got2 >= 120 {
			t.Fatalf("fresh neighbor session %g after second tick, want in (60,120)", got2)
		}
	}
	// Vanished neighbor must be forgotten.
	if est.SessionTime(victim) != 0 {
		t.Fatal("departed ex-neighbor still tracked")
	}
}

func TestAttachPausesWhileOffline(t *testing.T) {
	net := buildNet(t, 10, 4, 13)
	est := NewEstimator(0, net, dist.NewSource(14), 60)
	e := sim.NewEngine()
	est.Attach(e)
	e.RunUntil(sim.Time(180)) // probes at 60, 120, 180
	if est.Probes() != 3 {
		t.Fatalf("probes = %d", est.Probes())
	}
	net.Leave(e.Now(), 0, false)
	e.RunUntil(sim.Time(360))
	if est.Probes() != 3 {
		t.Fatalf("offline node still probing: %d", est.Probes())
	}
	net.Rejoin(e.Now(), 0)
	e.RunUntil(sim.Time(480))
	if est.Probes() != 5 {
		t.Fatalf("probes after rejoin = %d", est.Probes())
	}
}

func TestAttachStopsOnDeparture(t *testing.T) {
	net := buildNet(t, 10, 4, 15)
	est := NewEstimator(0, net, dist.NewSource(16), 60)
	e := sim.NewEngine()
	est.Attach(e)
	e.RunUntil(60)
	net.Leave(e.Now(), 0, true)
	e.RunUntil(600)
	if est.Probes() != 1 {
		t.Fatalf("departed node probed %d times", est.Probes())
	}
	if e.Pending() != 0 {
		t.Fatalf("departed estimator left %d events pending", e.Pending())
	}
}

func TestSetLazyCreation(t *testing.T) {
	net := buildNet(t, 10, 4, 17)
	set := NewSet(net, dist.NewSource(18), 60)
	a := set.For(3)
	b := set.For(3)
	if a != b {
		t.Fatal("Set.For not idempotent")
	}
	if a.Owner() != 3 {
		t.Fatalf("owner = %d", a.Owner())
	}
}

func TestSetTickAllCoversOnlineOnly(t *testing.T) {
	net := buildNet(t, 10, 4, 19)
	net.Leave(1, 4, false)
	set := NewSet(net, dist.NewSource(20), 60)
	set.TickAll()
	for _, id := range net.AllIDs() {
		want := 1
		if id == 4 {
			want = 0
		}
		if got := set.For(id).Probes(); got != want {
			t.Fatalf("node %d probes = %d, want %d", id, got, want)
		}
	}
}

func TestSetAttach(t *testing.T) {
	net := buildNet(t, 10, 4, 21)
	set := NewSet(net, dist.NewSource(22), 60)
	e := sim.NewEngine()
	cancel := set.Attach(e)
	e.RunUntil(300)
	if got := set.For(0).Probes(); got != 5 {
		t.Fatalf("probes = %d", got)
	}
	cancel()
	e.RunUntil(600)
	if got := set.For(0).Probes(); got != 5 {
		t.Fatalf("probes after cancel = %d", got)
	}
}

func TestEstimatorValidation(t *testing.T) {
	net := buildNet(t, 5, 2, 23)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero period: no panic")
			}
		}()
		NewEstimator(0, net, dist.NewSource(1), 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil rng: no panic")
			}
		}()
		NewEstimator(0, net, nil, 60)
	}()
}

// Property: after any sequence of ticks interleaved with neighbor churn,
// the availability snapshot sums to ~1 (or the prior) and stays in [0,1].
func TestQuickSnapshotNormalised(t *testing.T) {
	f := func(ops []bool) bool {
		rng := dist.NewSource(31)
		net := overlay.NewNetwork(4, rng.Split())
		for i := 0; i < 15; i++ {
			net.Join(0, false)
		}
		est := NewEstimator(0, net, rng.Split(), 60)
		now := sim.Time(1)
		for _, op := range ops {
			if op {
				est.Tick()
			} else {
				// Toggle a random neighbor offline/online.
				nb := net.NeighborsOf(0)
				if len(nb) > 0 {
					v := nb[rng.Intn(len(nb))]
					switch net.Node(v).State {
					case overlay.Online:
						net.Leave(now, v, false)
					case overlay.Offline:
						net.Rejoin(now, v)
					}
				}
			}
			now++
		}
		sum := 0.0
		for _, a := range est.Snapshot() {
			if a < 0 || a > 1 {
				return false
			}
			sum += a
		}
		return len(est.Snapshot()) == 0 || math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
