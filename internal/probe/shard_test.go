package probe

import (
	"math"
	"testing"

	"p2panon/internal/dist"
	"p2panon/internal/overlay"
)

// buildSet constructs an identically-seeded network + probe set pair for
// the shard-equivalence runs. Workers must not influence any estimator
// state, so everything random derives from seed alone.
func buildSet(t *testing.T, n, workers int, seed uint64) (*overlay.Network, *Set) {
	t.Helper()
	rng := dist.NewSource(seed)
	net := overlay.NewNetwork(5, rng.Split())
	for i := 0; i < n; i++ {
		net.Join(0, false)
	}
	for _, id := range net.AllIDs() {
		net.RefreshNeighbors(id)
	}
	set := NewSet(net, rng.Split(), 60)
	set.Workers = workers
	return net, set
}

// TestTickAllShardedMatchesSerial pins that sharding TickAll over the
// worker pool is invisible: estimator creation (which consumes RNG splits)
// happens in a sequential ascending-ID prefetch, and the sharded tick
// phase itself is RNG-free, so every availability estimate is bitwise
// identical to the serial run — across churn that forces mid-run
// estimator creation and fresh-neighbor random inits.
func TestTickAllShardedMatchesSerial(t *testing.T) {
	const n, seed = 60, 417
	serialNet, serial := buildSet(t, n, 0, seed)
	shardNet, shard := buildSet(t, n, 4, seed)

	churn := func(net *overlay.Network, round int) {
		switch round {
		case 2:
			net.Leave(100, 7, false)
			net.Leave(100, 23, false)
		case 4:
			net.Rejoin(200, 7)
			for _, id := range net.OnlineIDs() {
				net.RefreshNeighbors(id)
			}
		}
	}
	for round := 0; round < 6; round++ {
		churn(serialNet, round)
		churn(shardNet, round)
		serial.TickAll()
		shard.TickAll()
	}

	if sv, wv := serial.Version(), shard.Version(); sv != wv {
		t.Fatalf("set versions diverge: serial %d, sharded %d", sv, wv)
	}
	for _, id := range serialNet.AllIDs() {
		a, b := serial.For(id), shard.For(id)
		if a.Probes() != b.Probes() {
			t.Fatalf("node %d: probes %d vs %d", id, a.Probes(), b.Probes())
		}
		for _, v := range serialNet.NeighborsOf(id) {
			sa, sb := a.SessionTime(v), b.SessionTime(v)
			if math.Float64bits(sa) != math.Float64bits(sb) {
				t.Fatalf("node %d neighbor %d: session %x vs %x",
					id, v, math.Float64bits(sa), math.Float64bits(sb))
			}
			aa, ab := a.Availability(v), b.Availability(v)
			if math.Float64bits(aa) != math.Float64bits(ab) {
				t.Fatalf("node %d neighbor %d: availability %x vs %x",
					id, v, math.Float64bits(aa), math.Float64bits(ab))
			}
		}
	}
}

// TestTickAllVersionCount pins the atomic version bump: one TickAll over m
// online nodes advances the set version by exactly m, serial or sharded.
func TestTickAllVersionCount(t *testing.T) {
	for _, workers := range []int{0, 3} {
		_, set := buildSet(t, 20, workers, 5)
		before := set.Version()
		set.TickAll()
		if got, want := set.Version()-before, uint64(20); got != want {
			t.Fatalf("workers=%d: version advanced %d, want %d", workers, got, want)
		}
	}
}
