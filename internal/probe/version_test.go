package probe

import (
	"math"
	"testing"

	"p2panon/internal/dist"
	"p2panon/internal/overlay"
)

// TestSetVersionAdvancesPerTick checks the set-wide version moves when any
// member estimator ticks, and that queries leave it alone.
func TestSetVersionAdvancesPerTick(t *testing.T) {
	rng := dist.NewSource(1)
	net := overlay.NewNetwork(3, rng.Split())
	for i := 0; i < 5; i++ {
		net.Join(0, false)
	}
	set := NewSet(net, rng.Split(), DefaultPeriod)
	v := set.Version()
	set.TickAll()
	if set.Version() == v {
		t.Fatal("TickAll did not advance set version")
	}
	v = set.Version()
	set.For(0).Availability(1)
	set.For(0).Snapshot()
	if set.Version() != v {
		t.Fatal("queries advanced set version")
	}
	set.For(0).Tick()
	if set.Version() != v+1 {
		t.Fatalf("single Tick advanced version by %d, want 1", set.Version()-v)
	}
}

// TestAvailabilityCachedTotalMatchesFreshSum drives churn through several
// ticks and checks the O(1) cached-total Availability agrees with a fresh
// sum over the session map.
func TestAvailabilityCachedTotalMatchesFreshSum(t *testing.T) {
	rng := dist.NewSource(7)
	net := overlay.NewNetwork(4, rng.Split())
	for i := 0; i < 8; i++ {
		net.Join(0, false)
	}
	set := NewSet(net, rng.Split(), DefaultPeriod)
	for tick := 0; tick < 6; tick++ {
		if tick == 3 {
			net.Leave(10, 1, false) // a miss: decay path
		}
		set.TickAll()
		for _, id := range net.OnlineIDs() {
			est := set.For(id)
			total := 0.0
			for _, v := range est.session {
				total += v
			}
			for u := range est.session {
				want := 0.0
				if total > 0 {
					want = est.session[u] / total
				} else if n := len(est.session); n > 0 {
					want = 1 / float64(n)
				}
				if got := est.Availability(u); math.Abs(got-want) > 1e-12 {
					t.Fatalf("tick %d: Availability(%d→%d) = %g, want %g", tick, id, u, got, want)
				}
			}
		}
	}
}
