// Package probe implements the paper's active-probing availability
// estimator (§2.3, following Bustamante & Qiao). Each peer periodically
// checks the liveness of its neighbors:
//
//   - when a peer first joins, it initialises the observed session time of
//     every neighbor to 0;
//   - at the start of each probing period of length T, a live neighbor's
//     session time is advanced, t_new = t_old + T;
//   - a newly discovered neighbor's session time is initialised to a
//     uniform random value in (0, T);
//   - the availability of neighbor u as seen by s is the normalised share
//     α_s(u) = t_s(u) / Σ_{v∈D(s)} t_s(v).
//
// A dead (offline) neighbor's estimate decays rather than resetting to
// zero, so a flapping node keeps a credible — but reduced — score; the
// relative ordering the routing layer needs ("higher observed session time
// ⇒ higher availability") is preserved.
package probe

import (
	"fmt"
	"sync"
	"sync/atomic"

	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/sim"
	"p2panon/internal/telemetry"
)

// Probe metric names (see Set.Instrument / Estimator.Instrument).
const (
	metricTicksTotal   = "probe_ticks_total"   // probing rounds run
	metricUpdatesTotal = "probe_updates_total" // label result: credit|decay|init
)

// DefaultPeriod is the default probing period T (60 simulated seconds).
const DefaultPeriod = sim.Time(60)

// DecayOnMiss is the multiplicative decay applied to the observed session
// time of a neighbor that fails a probe. 1.0 would keep stale estimates
// forever; 0 would forget instantly. 0.5 halves the score per missed probe.
const DecayOnMiss = 0.5

// Estimator tracks one observer's availability estimates for its neighbor
// set. Create one per node with NewEstimator and call Tick once per probing
// period (the Attach helper schedules this on a sim engine).
type Estimator struct {
	owner  overlay.NodeID
	net    *overlay.Network
	rng    *dist.Source
	period sim.Time

	session map[overlay.NodeID]float64 // observed session time t_s(u)
	probes  int

	// total caches Σ_v t_s(v) so Availability is O(1) instead of summing
	// the session map per call (the routing layer queries it once per
	// candidate per hop). Invalidated whenever Tick mutates the map.
	total      float64
	totalValid bool

	// setVersion, when non-nil, is the owning Set's change counter; Tick
	// bumps it (atomically — region-sharded TickAll runs estimators
	// concurrently) so availability-keyed caches (e.g. solved SPNE
	// tables) can invalidate.
	setVersion *uint64

	// journal, when non-nil, attributes each version bump to this
	// estimator's owner in the owning Set's change journal, so warm SPNE
	// re-solves can treat only the ticked observer as dirty.
	journal func(v uint64, owner overlay.NodeID)

	// nil (no-op) until Instrument binds them.
	ticks, credits, decays, inits *telemetry.Counter
}

// NewEstimator creates an estimator for owner's neighbor set. Session times
// start at zero, as the paper specifies for a freshly joined peer.
func NewEstimator(owner overlay.NodeID, net *overlay.Network, rng *dist.Source, period sim.Time) *Estimator {
	if period <= 0 {
		panic(fmt.Sprintf("probe: period %v", period))
	}
	if rng == nil {
		panic("probe: nil rng")
	}
	est := &Estimator{
		owner:   owner,
		net:     net,
		rng:     rng,
		period:  period,
		session: make(map[overlay.NodeID]float64),
	}
	for _, v := range net.NeighborsOf(owner) {
		est.session[v] = 0
	}
	return est
}

// Instrument binds the estimator's update counters into reg:
// probe_ticks_total and probe_updates_total{result=credit|decay|init}.
// Estimators sharing a registry share the series (their counts sum).
func (est *Estimator) Instrument(reg *telemetry.Registry) {
	reg.Help(metricTicksTotal, "probing rounds run across all estimators")
	reg.Help(metricUpdatesTotal, "per-neighbor estimate updates: T credited, decayed on miss, or rand(0,T) initialised")
	est.ticks = reg.Counter(metricTicksTotal, nil)
	est.credits = reg.Counter(metricUpdatesTotal, telemetry.Labels{"result": "credit"})
	est.decays = reg.Counter(metricUpdatesTotal, telemetry.Labels{"result": "decay"})
	est.inits = reg.Counter(metricUpdatesTotal, telemetry.Labels{"result": "init"})
}

// Owner returns the observing node's ID.
func (est *Estimator) Owner() overlay.NodeID { return est.owner }

// Probes returns how many probing rounds have run.
func (est *Estimator) Probes() int { return est.probes }

// Tick runs one probing period: it reconciles the neighbor set (new
// neighbors get a rand(0,T) initial session time; vanished neighbors are
// forgotten), then credits T to live neighbors and decays dead ones. A
// neighbor first seen this tick keeps its rand(0,T) initialisation and is
// not also credited T — crediting both would let a fresh neighbor outrank
// a node with one full observed period, inverting the paper's "higher
// observed session time ⇒ higher availability" ordering.
func (est *Estimator) Tick() {
	est.probes++
	est.ticks.Inc()
	est.totalValid = false
	if est.setVersion != nil {
		v := atomic.AddUint64(est.setVersion, 1)
		if est.journal != nil {
			est.journal(v, est.owner)
		}
	}
	current := est.net.NeighborsOf(est.owner)
	inSet := make(map[overlay.NodeID]struct{}, len(current))
	fresh := make(map[overlay.NodeID]struct{})
	for _, v := range current {
		inSet[v] = struct{}{}
		if _, known := est.session[v]; !known {
			// New neighbor: initialise to rand(0, T) per the paper.
			est.session[v] = est.rng.Uniform(0, est.period.Seconds())
			fresh[v] = struct{}{}
			est.inits.Inc()
		}
	}
	for v := range est.session {
		if _, ok := inSet[v]; !ok {
			delete(est.session, v) // no longer a neighbor
		}
	}
	for _, v := range current {
		if _, isNew := fresh[v]; isNew {
			continue // the rand(0,T) init stands in for the unobserved partial period
		}
		if est.net.Online(v) {
			est.session[v] += est.period.Seconds()
			est.credits.Inc()
		} else {
			est.session[v] *= DecayOnMiss
			est.decays.Inc()
		}
	}
}

// SessionTime returns the observed session time t_s(u) for neighbor u, or
// 0 if u is not currently tracked.
func (est *Estimator) SessionTime(u overlay.NodeID) float64 {
	return est.session[u]
}

// Availability returns α_s(u) = t_s(u) / Σ_v t_s(v), the paper's
// normalised availability estimate, in [0, 1]. Before any session time has
// accumulated it returns an uninformative uniform 1/|D(s)| so that routing
// has a well-defined score from the first connection.
func (est *Estimator) Availability(u overlay.NodeID) float64 {
	if !est.totalValid {
		total := 0.0
		for _, t := range est.session {
			total += t
		}
		est.total = total
		est.totalValid = true
	}
	total := est.total
	if total <= 0 {
		if n := len(est.session); n > 0 {
			if _, ok := est.session[u]; ok {
				return 1 / float64(n)
			}
		}
		return 0
	}
	return est.session[u] / total
}

// Snapshot returns the availability of every tracked neighbor. The shares
// sum to 1 whenever any session time has accumulated.
func (est *Estimator) Snapshot() map[overlay.NodeID]float64 {
	out := make(map[overlay.NodeID]float64, len(est.session))
	for v := range est.session {
		out[v] = est.Availability(v)
	}
	return out
}

// Attach schedules est.Tick every probing period on the engine, pausing
// automatically while the owner is offline (an offline peer cannot probe)
// and stopping for good when it departs. It returns a cancel function.
func (est *Estimator) Attach(e *sim.Engine) (cancel func()) {
	return e.Every(est.period, func(*sim.Engine) bool {
		switch est.net.Node(est.owner).State {
		case overlay.Departed:
			return false
		case overlay.Online:
			est.Tick()
		}
		return true
	})
}

// Set is a convenience bundle of one estimator per node, used by the
// simulator to give every peer its own observation stream.
type Set struct {
	net    *overlay.Network
	rng    *dist.Source
	period sim.Time
	byNode map[overlay.NodeID]*Estimator
	reg    *telemetry.Registry

	// Workers, when > 1, shards TickAll over contiguous regions of the
	// online-ID list. Estimator creation (which consumes RNG splits and
	// grows byNode) is hoisted into a sequential ascending-ID prefetch
	// first, and each estimator's Tick touches only its own state plus
	// atomics, so the sharded rounds are byte-identical to serial ones
	// whatever the value.
	Workers int

	// Prof, when non-nil, brackets every TickAll round under the
	// telemetry probe.tick phase. It observes only wall time and global
	// alloc counters — never the estimators — so transcripts are
	// unchanged.
	Prof *telemetry.PhaseProfiler

	// version counts estimate updates across the whole set: every Tick of
	// a member estimator advances it (atomically). Equal versions
	// guarantee unchanged availability scores.
	version uint64

	// journal attributes recent version bumps to the estimator owner that
	// ticked, mirroring the overlay's change journal: entries cover
	// versions (jbase, version]. A TickAll round touches every online
	// estimator, so it is recorded as a wildcard (journal cleared, jbase
	// advanced) rather than one entry per node; only out-of-band
	// individual Ticks are attributed. mu guards the journal fields —
	// sharded TickAll rounds invoke the hook concurrently.
	mu      sync.Mutex
	journal []probeEntry
	jbase   uint64
	bulk    bool
}

// probeEntry says set version v bumped because node's estimator ticked.
type probeEntry struct {
	version uint64
	node    overlay.NodeID
}

// probeJournalCap bounds the journal; see overlay.journalCap for the
// eviction story (oldest half dropped, jbase advances past it).
const probeJournalCap = 1024

// journalTick records one attributed estimate change.
func (s *Set) journalTick(v uint64, owner overlay.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bulk {
		return
	}
	if len(s.journal) >= probeJournalCap {
		half := len(s.journal) / 2
		s.jbase = s.journal[half-1].version
		s.journal = append(s.journal[:0], s.journal[half:]...)
	}
	s.journal = append(s.journal, probeEntry{version: v, node: owner})
}

// ChangesSince appends to buf the owners whose estimates changed after
// set version v and reports whether the journal covers that span. ok ==
// false — v predates the horizon or a TickAll ran since — means the
// caller must treat every estimate as changed.
func (s *Set) ChangesSince(v uint64, buf []overlay.NodeID) ([]overlay.NodeID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := atomic.LoadUint64(&s.version)
	if v == cur {
		return buf, true
	}
	if v < s.jbase || v > cur {
		return buf, false
	}
	for i := len(s.journal) - 1; i >= 0; i-- {
		if s.journal[i].version <= v {
			break
		}
		buf = append(buf, s.journal[i].node)
	}
	return buf, true
}

// Version returns the set-wide estimate-change counter.
func (s *Set) Version() uint64 { return atomic.LoadUint64(&s.version) }

// Instrument binds every current and future estimator in the set into
// reg (they share the probe_* series).
func (s *Set) Instrument(reg *telemetry.Registry) {
	s.reg = reg
	for _, est := range s.byNode {
		est.Instrument(reg)
	}
}

// NewSet creates an empty estimator set.
func NewSet(net *overlay.Network, rng *dist.Source, period sim.Time) *Set {
	return &Set{
		net:    net,
		rng:    rng,
		period: period,
		byNode: make(map[overlay.NodeID]*Estimator),
	}
}

// For returns (creating on first use) the estimator owned by id.
func (s *Set) For(id overlay.NodeID) *Estimator {
	est, ok := s.byNode[id]
	if !ok {
		est = NewEstimator(id, s.net, s.rng.Split(), s.period)
		est.setVersion = &s.version
		est.journal = s.journalTick
		if s.reg != nil {
			est.Instrument(s.reg)
		}
		s.byNode[id] = est
	}
	return est
}

// TickAll runs one probing period for every online node, creating
// estimators lazily for nodes that appeared since the previous round.
// This is the batch-mode equivalent of attaching every estimator to the
// engine, and is what the discrete-event simulator uses. When Workers
// > 1 the ticks are sharded by node region: creation stays sequential in
// ascending ID order (it splits the set RNG), the per-estimator ticks
// draw only from their own streams, and the shared change counters are
// atomic — so the transcript is identical to a serial round.
func (s *Set) TickAll() {
	ph := s.Prof.Start(telemetry.PhaseProbeTick)
	defer ph.End()
	ids := s.net.OnlineIDs()
	ests := make([]*Estimator, len(ids))
	for i, id := range ids {
		ests[i] = s.For(id)
	}
	// A full round changes every online estimate: recording it entry by
	// entry would only flood the journal, so suppress attribution for the
	// duration and mark the round as a wildcard afterwards (incremental
	// consumers fall back to a full solve, which is the right answer when
	// everything moved anyway).
	s.mu.Lock()
	s.bulk = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.bulk = false
		s.journal = s.journal[:0]
		s.jbase = atomic.LoadUint64(&s.version)
		s.mu.Unlock()
	}()
	workers := s.Workers
	if workers > len(ests) {
		workers = len(ests)
	}
	if workers <= 1 {
		for _, est := range ests {
			est.Tick()
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(ests) + workers - 1) / workers
	for lo := 0; lo < len(ests); lo += chunk {
		hi := lo + chunk
		if hi > len(ests) {
			hi = len(ests)
		}
		wg.Add(1)
		go func(part []*Estimator) {
			defer wg.Done()
			for _, est := range part {
				est.Tick()
			}
		}(ests[lo:hi])
	}
	wg.Wait()
}

// Attach schedules TickAll every probing period. It returns a cancel
// function.
func (s *Set) Attach(e *sim.Engine) (cancel func()) {
	return e.Every(s.period, func(*sim.Engine) bool {
		s.TickAll()
		return true
	})
}
