package payment

import "testing"

// BenchmarkVerifyAggregateOnly isolates the chain re-derivation itself —
// no decode, no escrow — so the mid-state MAC verifier can be profiled
// against its floor of ~2.5 SHA-256 compressions per entry (inner block,
// outer block, half a block of chain fold).
func BenchmarkVerifyAggregateOnly(b *testing.B) {
	m, err := NewReceiptMinter([]byte("profile-secret"))
	if err != nil {
		b.Fatal(err)
	}
	c := NewClaimChain(7)
	for i := 0; i < 4096; i++ {
		if err := c.Add(m.Mint(i, 1, 7)); err != nil {
			b.Fatal(err)
		}
	}
	claim := c.Claim()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.VerifyAggregate(&claim) != 4096 {
			b.Fatal("genuine claim rejected")
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(4096)*float64(b.N)/secs/1e6, "Mmacs/sec")
	}
}
