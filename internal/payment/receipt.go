package payment

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
)

// Receipt proves one forwarding instance: forwarder F handled hop `Hop` of
// connection `Conn` in a batch. Receipts are minted by the initiator —
// MACed under a per-batch secret that travels inside the onion payload —
// and collected by forwarders as they forward. At settlement a forwarder's
// claimed forwarding count m is exactly the number of valid, distinct
// receipts it can present; counts cannot be inflated without forging the
// MAC (§5's "cheating" scenario).
type Receipt struct {
	Conn      int
	Hop       int
	Forwarder AccountID
	MAC       [32]byte
}

// ReceiptMinter issues receipts for one batch under a secret key known only
// to the initiator.
type ReceiptMinter struct {
	key []byte
	// ipadState/opadState are the marshaled SHA-256 states after absorbing
	// key⊕ipad resp. key⊕opad — the fixed one-block prefixes of every HMAC
	// under this key. The aggregate verifier restores them per entry with
	// UnmarshalBinary instead of building an HMAC instance per claim, which
	// takes the pad setup (two compressions and several allocations) out of
	// the hot path while producing bit-identical MACs.
	ipadState, opadState []byte
}

// NewReceiptMinter creates a minter from a batch secret. The secret must be
// non-empty; 32 random bytes is the intended use.
func NewReceiptMinter(secret []byte) (*ReceiptMinter, error) {
	if len(secret) == 0 {
		return nil, errors.New("payment: empty receipt secret")
	}
	key := make([]byte, len(secret))
	copy(key, secret)
	m := &ReceiptMinter{key: key}
	m.ipadState, m.opadState = hmacPadStates(key)
	// Self-check the mid-state fast path once against the crypto/hmac
	// reference; if the digest's marshal format ever shifts, drop the
	// states and every verification takes the slow path instead of
	// silently rejecting genuine claims.
	want := receiptMAC(key, 1, 2, 3)
	if v, ok := newMACVerifier(m.ipadState, m.opadState); ok {
		v.setForwarder(3)
		if got, err := v.mac(1, 2); err == nil && hmac.Equal(got, want[:]) {
			return m, nil
		}
	}
	m.ipadState, m.opadState = nil, nil
	return m, nil
}

// hmacPadStates derives the two marshaled mid-states of HMAC-SHA256 under
// key, following RFC 2104: a key longer than the block is hashed first,
// then zero-padded and XORed with the ipad/opad constants.
func hmacPadStates(key []byte) (ipadState, opadState []byte) {
	k := key
	if len(k) > sha256.BlockSize {
		sum := sha256.Sum256(k)
		k = sum[:]
	}
	var ipad, opad [sha256.BlockSize]byte
	copy(ipad[:], k)
	copy(opad[:], k)
	for i := range ipad {
		ipad[i] ^= 0x36
		opad[i] ^= 0x5c
	}
	return shaStateAfter(ipad[:]), shaStateAfter(opad[:])
}

// shaStateAfter returns the marshaled SHA-256 state after absorbing block.
func shaStateAfter(block []byte) []byte {
	d := sha256.New()
	d.Write(block)
	state, err := d.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		// The stdlib sha256 digest always marshals.
		panic(err)
	}
	return state
}

func receiptMAC(key []byte, conn, hop int, f AccountID) [32]byte {
	mac := hmac.New(sha256.New, key)
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(conn))
	binary.BigEndian.PutUint64(buf[8:16], uint64(hop))
	binary.BigEndian.PutUint64(buf[16:24], uint64(f))
	mac.Write(buf[:])
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Mint issues the receipt for forwarder f at hop hop of connection conn.
func (m *ReceiptMinter) Mint(conn, hop int, f AccountID) Receipt {
	return Receipt{Conn: conn, Hop: hop, Forwarder: f, MAC: receiptMAC(m.key, conn, hop, f)}
}

// Verify reports whether r is authentic under this minter's secret.
func (m *ReceiptMinter) Verify(r Receipt) bool {
	want := receiptMAC(m.key, r.Conn, r.Hop, r.Forwarder)
	return hmac.Equal(want[:], r.MAC[:])
}

// CountValid returns the number of valid, distinct (conn, hop) receipts in
// rs that name forwarder f. Duplicates, forgeries and receipts naming
// other forwarders are ignored — this is the settlement-side defence
// against inflated forwarding counts.
func (m *ReceiptMinter) CountValid(f AccountID, rs []Receipt) int {
	seen := make(map[[2]int]struct{})
	count := 0
	for _, r := range rs {
		if r.Forwarder != f || !m.Verify(r) {
			continue
		}
		key := [2]int{r.Conn, r.Hop}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		count++
	}
	return count
}

// Claim is a forwarder's settlement submission for one batch.
type Claim struct {
	Forwarder AccountID
	Receipts  []Receipt
}

// Settlement computes and executes the paper's payout rule for one batch:
// each forwarder with m valid forwarding instances receives
// m·P_f + P_r/‖π‖, where ‖π‖ is the number of forwarders with at least one
// valid receipt. Payouts are made with blind tokens withdrawn from the
// initiator's account so the bank cannot link the batch's payer to its
// payees.
type Settlement struct {
	Bank      *Bank
	Minter    *ReceiptMinter
	Initiator AccountID
	Pf, Pr    Amount

	// SerialDeposits restores the historical one-Deposit-per-token
	// payout path. By default the whole batch's tokens go through one
	// Bank.DepositBatch call, so signature checks ride the bank's
	// parallel verify pool instead of running one RSA verify at a time.
	SerialDeposits bool
}

// Payout records one forwarder's settled amount.
type Payout struct {
	Forwarder AccountID
	Forwards  int // accepted forwarding instances m
	Amount    Amount
}

// Run validates all claims and pays each entitled forwarder. The routing
// benefit P_r is divided evenly with integer division; the remainder stays
// with the initiator (documented bias < ‖π‖ credits per batch). It
// returns the payouts in forwarder order.
func (s *Settlement) Run(claims []Claim) ([]Payout, error) {
	if s.Bank == nil || s.Minter == nil {
		return nil, errors.New("payment: settlement missing bank or minter")
	}
	if s.Pf < 0 || s.Pr < 0 {
		return nil, ErrBadAmount
	}
	// First pass: validate claims, establish ‖π‖.
	accepted := make([]Payout, 0, len(claims))
	for _, c := range claims {
		m := s.Minter.CountValid(c.Forwarder, c.Receipts)
		if m > 0 {
			accepted = append(accepted, Payout{Forwarder: c.Forwarder, Forwards: m})
		}
	}
	if len(accepted) == 0 {
		s.Bank.noteSettlement(nil, countRejected(claims, nil))
		return nil, nil
	}
	share := s.Pr / Amount(len(accepted))
	for i := range accepted {
		accepted[i].Amount = Amount(accepted[i].Forwards)*s.Pf + share
	}
	// Second pass: move the money through blind tokens.
	if s.SerialDeposits {
		for i := range accepted {
			if err := s.payBlind(accepted[i].Forwarder, accepted[i].Amount); err != nil {
				return accepted[:i], fmt.Errorf("payment: paying forwarder %d: %w", accepted[i].Forwarder, err)
			}
		}
	} else if err := s.payBlindBatch(accepted); err != nil {
		return nil, err
	}
	s.Bank.noteSettlement(accepted, countRejected(claims, accepted))
	return accepted, nil
}

// payBlindBatch withdraws every forwarder's tokens (withdrawal is a
// per-token blind-signing exchange and stays serial), then deposits
// the whole epoch in one Bank.DepositBatch call. Token values and the
// final balances are identical to the serial path; only the deposit
// verification is batched. On a deposit error the failing token's
// forwarder is named, but unlike the serial path later deposits in
// the epoch have already been applied.
func (s *Settlement) payBlindBatch(accepted []Payout) error {
	var reqs []DepositRequest
	for i := range accepted {
		if accepted[i].Amount <= 0 {
			continue
		}
		tokens, err := s.Bank.WithdrawAmount(s.Initiator, accepted[i].Amount, nil)
		if err != nil {
			return fmt.Errorf("payment: paying forwarder %d: %w", accepted[i].Forwarder, err)
		}
		for _, tk := range tokens {
			reqs = append(reqs, DepositRequest{Account: accepted[i].Forwarder, Token: tk})
		}
	}
	for j, err := range s.Bank.DepositBatch(reqs) {
		if err != nil {
			return fmt.Errorf("payment: paying forwarder %d: %w", reqs[j].Account, err)
		}
	}
	return nil
}

// payBlind moves amt from the initiator to the forwarder through blind
// tokens in power-of-two denominations. Fixed denominations matter for
// unlinkability: unique token values would let the bank match withdrawals
// to deposits by amount alone.
func (s *Settlement) payBlind(to AccountID, amt Amount) error {
	if amt <= 0 {
		return nil
	}
	tokens, err := s.Bank.WithdrawAmount(s.Initiator, amt, nil)
	if err != nil {
		return err
	}
	if _, err := s.Bank.DepositAll(to, tokens); err != nil {
		return err
	}
	return nil
}
