package payment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// Wire encodings for the two payment artifacts that cross the network: a
// blind token handed to a forwarder (spend) and a forwarding receipt
// submitted at settlement. Both encodings are canonical — every valid
// byte string decodes to exactly one value and re-encodes to the same
// bytes — so tokens and receipts can be compared, deduplicated and MACed
// by their encoding without a parse step.
//
// Token:   8B denom (big-endian) | 32B serial | 2B sig length | sig bytes
// Receipt: 8B conn | 8B hop | 8B forwarder | 32B MAC  (56 bytes fixed)

// MaxSigBytes bounds a token signature: 1024 bytes covers an 8192-bit RSA
// modulus, far beyond any key this repo generates. The cap keeps a hostile
// length prefix from asking the decoder for megabytes.
const MaxSigBytes = 1024

// ReceiptWireSize is the fixed encoded size of a Receipt.
const ReceiptWireSize = 8 + 8 + 8 + 32

const tokenHeaderSize = 8 + 32 + 2

// Wire decoding errors.
var (
	ErrShortBuffer  = errors.New("payment: wire buffer too short")
	ErrTrailingData = errors.New("payment: trailing bytes after encoded value")
	ErrBadSigLength = errors.New("payment: signature length invalid")
	ErrNonCanonical = errors.New("payment: non-canonical signature encoding")
)

// EncodeToken renders tok in the canonical wire format. It returns an
// error on a nil or oversized signature rather than panicking: tokens
// arrive from the payment layer but also from tests and fuzzers.
func EncodeToken(tok Token) ([]byte, error) {
	if tok.Sig == nil || tok.Sig.Sign() < 0 {
		return nil, errors.New("payment: token has no valid signature to encode")
	}
	sig := tok.Sig.Bytes() // minimal big-endian, empty for zero
	if len(sig) > MaxSigBytes {
		return nil, fmt.Errorf("%w: %d bytes > max %d", ErrBadSigLength, len(sig), MaxSigBytes)
	}
	out := make([]byte, tokenHeaderSize+len(sig))
	binary.BigEndian.PutUint64(out[0:8], uint64(tok.Denom))
	copy(out[8:40], tok.Serial[:])
	binary.BigEndian.PutUint16(out[40:42], uint16(len(sig)))
	copy(out[42:], sig)
	return out, nil
}

// DecodeToken parses a canonical token encoding. It rejects truncated
// buffers, oversized or padded (leading-zero) signatures, and trailing
// garbage, so decode∘encode is the identity on valid tokens and encode∘
// decode is the identity on valid byte strings.
func DecodeToken(data []byte) (Token, error) {
	if len(data) < tokenHeaderSize {
		return Token{}, fmt.Errorf("%w: %d bytes, need at least %d", ErrShortBuffer, len(data), tokenHeaderSize)
	}
	var tok Token
	tok.Denom = Amount(binary.BigEndian.Uint64(data[0:8]))
	copy(tok.Serial[:], data[8:40])
	sigLen := int(binary.BigEndian.Uint16(data[40:42]))
	if sigLen > MaxSigBytes {
		return Token{}, fmt.Errorf("%w: %d bytes > max %d", ErrBadSigLength, sigLen, MaxSigBytes)
	}
	if len(data) < tokenHeaderSize+sigLen {
		return Token{}, fmt.Errorf("%w: signature needs %d bytes, %d remain", ErrShortBuffer, sigLen, len(data)-tokenHeaderSize)
	}
	if len(data) > tokenHeaderSize+sigLen {
		return Token{}, ErrTrailingData
	}
	sig := data[tokenHeaderSize:]
	if len(sig) > 0 && sig[0] == 0 {
		// big.Int.Bytes never emits leading zeros; padded encodings would
		// give one signature many byte forms.
		return Token{}, ErrNonCanonical
	}
	tok.Sig = new(big.Int).SetBytes(sig)
	return tok, nil
}

// EncodeReceipt renders r in the fixed 56-byte wire format.
func EncodeReceipt(r Receipt) []byte {
	out := make([]byte, ReceiptWireSize)
	binary.BigEndian.PutUint64(out[0:8], uint64(r.Conn))
	binary.BigEndian.PutUint64(out[8:16], uint64(r.Hop))
	binary.BigEndian.PutUint64(out[16:24], uint64(r.Forwarder))
	copy(out[24:56], r.MAC[:])
	return out
}

// AggClaimWireSize returns the encoded size of an aggregate claim with n
// entries:
//
//	8B forwarder | 4B count | n × (8B conn | 8B hop) | 32B chain
//
// 16 bytes per claimed instance against a receipt's 56 — the MACs stay
// home, only the chain travels.
func AggClaimWireSize(n int) int { return 8 + 4 + 16*n + 32 }

// EncodeAggregateClaim renders c in the canonical wire format. Claims
// with no entries, too many entries, or entries out of strictly
// increasing (conn, hop) order have no encoding — the canonical order is
// part of the format, so every valid byte string decodes to exactly one
// claim.
func EncodeAggregateClaim(c AggregateClaim) ([]byte, error) {
	n := len(c.Entries)
	if n == 0 || n > MaxAggEntries {
		return nil, fmt.Errorf("payment: aggregate claim with %d entries (want 1..%d)", n, MaxAggEntries)
	}
	lastConn, lastHop := -1, -1
	for _, e := range c.Entries {
		if e.Conn < lastConn || (e.Conn == lastConn && e.Hop <= lastHop) {
			return nil, fmt.Errorf("%w: aggregate entries not strictly increasing", ErrNonCanonical)
		}
		lastConn, lastHop = e.Conn, e.Hop
	}
	out := make([]byte, AggClaimWireSize(n))
	binary.BigEndian.PutUint64(out[0:8], uint64(c.Forwarder))
	binary.BigEndian.PutUint32(out[8:12], uint32(n))
	off := 12
	for _, e := range c.Entries {
		binary.BigEndian.PutUint64(out[off:off+8], uint64(e.Conn))
		binary.BigEndian.PutUint64(out[off+8:off+16], uint64(e.Hop))
		off += 16
	}
	copy(out[off:], c.Chain[:])
	return out, nil
}

// DecodeAggregateClaim parses a canonical aggregate-claim encoding. It
// rejects truncated or oversized buffers, hostile entry counts and
// non-canonical (unordered or duplicate) entry lists before touching the
// chain, so decode∘encode and encode∘decode are identities. A decoded
// claim is well-formed, not authentic — only VerifyAggregate can accept
// it.
func DecodeAggregateClaim(data []byte) (AggregateClaim, error) {
	if len(data) < AggClaimWireSize(0) {
		return AggregateClaim{}, fmt.Errorf("%w: %d bytes, need at least %d", ErrShortBuffer, len(data), AggClaimWireSize(0))
	}
	n := int(binary.BigEndian.Uint32(data[8:12]))
	if n == 0 || n > MaxAggEntries {
		return AggregateClaim{}, fmt.Errorf("payment: aggregate claim count %d invalid (want 1..%d)", n, MaxAggEntries)
	}
	want := AggClaimWireSize(n)
	if len(data) < want {
		return AggregateClaim{}, fmt.Errorf("%w: %d bytes, claim with %d entries needs %d", ErrShortBuffer, len(data), n, want)
	}
	if len(data) > want {
		return AggregateClaim{}, ErrTrailingData
	}
	c := AggregateClaim{
		Forwarder: AccountID(int64(binary.BigEndian.Uint64(data[0:8]))),
		Entries:   make([]AggEntry, n),
	}
	off := 12
	lastConn, lastHop := -1, -1
	for i := 0; i < n; i++ {
		conn := int(int64(binary.BigEndian.Uint64(data[off : off+8])))
		hop := int(int64(binary.BigEndian.Uint64(data[off+8 : off+16])))
		if conn < lastConn || (conn == lastConn && hop <= lastHop) {
			return AggregateClaim{}, fmt.Errorf("%w: aggregate entries not strictly increasing", ErrNonCanonical)
		}
		c.Entries[i] = AggEntry{Conn: conn, Hop: hop}
		lastConn, lastHop = conn, hop
		off += 16
	}
	copy(c.Chain[:], data[off:])
	return c, nil
}

// DecodeReceipt parses a fixed-size receipt encoding, rejecting any other
// length.
func DecodeReceipt(data []byte) (Receipt, error) {
	if len(data) < ReceiptWireSize {
		return Receipt{}, fmt.Errorf("%w: %d bytes, need %d", ErrShortBuffer, len(data), ReceiptWireSize)
	}
	if len(data) > ReceiptWireSize {
		return Receipt{}, ErrTrailingData
	}
	var r Receipt
	r.Conn = int(int64(binary.BigEndian.Uint64(data[0:8])))
	r.Hop = int(int64(binary.BigEndian.Uint64(data[8:16])))
	r.Forwarder = AccountID(int64(binary.BigEndian.Uint64(data[16:24])))
	copy(r.MAC[:], data[24:56])
	return r, nil
}
