package payment

import (
	"fmt"
	"testing"
)

// BenchmarkSettlementThroughput times the settlement pipeline end to end
// at N = 10²..10⁵ receipts per epoch, m receipts per forwarder claim.
// One op is a full epoch: decode the claims off their wire form, open the
// escrow, settle, refund. Three tiers:
//
//   - serial:     one-shard bank (the old global-lock semantics), one
//     verify worker, per-receipt claims through CountValid —
//     the pre-pipeline baseline;
//   - sharded:    DefaultShards bank, same per-receipt claims — isolates
//     the lock sharding;
//   - aggregated: DefaultShards bank, one AggregateClaim per forwarder
//     through the receipt-MAC chain — the full fast path
//     (16B/entry wire, one reused HMAC, no dedup map).
//
// The headline custom metric is settlements/sec — receipts settled per
// wall second; CI gates the N=10⁴ tiers via BENCH_PR9.json.
func BenchmarkSettlementThroughput(b *testing.B) {
	const perClaim = 32 // receipts per forwarder (m)
	for _, n := range []int{100, 1_000, 10_000, 100_000} {
		for _, tier := range []string{"serial", "sharded", "aggregated"} {
			b.Run(fmt.Sprintf("N=%d/%s", n, tier), func(b *testing.B) {
				benchSettle(b, n, perClaim, tier)
			})
		}
	}
}

func benchSettle(b *testing.B, n, perClaim int, tier string) {
	shards := DefaultShards
	if tier == "serial" {
		shards = 1
	}
	bank, err := NewBankShards(1024, shards)
	if err != nil {
		b.Fatal(err)
	}
	if tier == "serial" {
		bank.SetVerifyWorkers(1)
	}
	m, err := NewReceiptMinter([]byte("bench-settlement-secret"))
	if err != nil {
		b.Fatal(err)
	}

	const initiator = AccountID(1)
	// The initiator bankrolls every epoch of the run; forwarders start
	// empty and only accumulate payouts.
	if err := bank.OpenAccount(initiator, 1<<40); err != nil {
		b.Fatal(err)
	}
	forwarders := n / perClaim
	if forwarders == 0 {
		forwarders = 1
	}
	for f := 0; f < forwarders; f++ {
		if err := bank.OpenAccount(AccountID(100+f), 0); err != nil {
			b.Fatal(err)
		}
	}

	// Mint the epoch's receipts once and freeze their wire forms — the
	// settlement consumes the same encoded claims every op, exactly what
	// a bank replaying one epoch's inbound frames would see.
	const pf, pr = Amount(10), Amount(1_000)
	lock := Amount(n)*pf + pr
	perReceiptWire := make([][][]byte, forwarders) // [claim][receipt]
	aggWire := make([][]byte, forwarders)
	for f := 0; f < forwarders; f++ {
		fid := AccountID(100 + f)
		count := perClaim
		if f == forwarders-1 {
			count = n - perClaim*(forwarders-1) // remainder receipts
		}
		chain := NewClaimChain(fid)
		encs := make([][]byte, 0, count)
		for i := 0; i < count; i++ {
			r := m.Mint(i, 1, fid)
			encs = append(encs, EncodeReceipt(r))
			if err := chain.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		perReceiptWire[f] = encs
		claim := chain.Claim()
		enc, err := EncodeAggregateClaim(claim)
		if err != nil {
			b.Fatal(err)
		}
		aggWire[f] = enc
	}

	settleEpoch := func() (int, error) {
		esc, err := bank.OpenEscrow(initiator, lock)
		if err != nil {
			return 0, err
		}
		var payouts []Payout
		if tier == "aggregated" {
			claims := make([]AggregateClaim, forwarders)
			for f, enc := range aggWire {
				if claims[f], err = DecodeAggregateClaim(enc); err != nil {
					return 0, err
				}
			}
			payouts, _, err = esc.SettleAggregated(m, pf, pr, claims)
		} else {
			claims := make([]Claim, forwarders)
			for f, encs := range perReceiptWire {
				rs := make([]Receipt, len(encs))
				for i, enc := range encs {
					if rs[i], err = DecodeReceipt(enc); err != nil {
						return 0, err
					}
				}
				claims[f] = Claim{Forwarder: AccountID(100 + f), Receipts: rs}
			}
			payouts, _, err = esc.SettleFromEscrow(m, pf, pr, claims)
		}
		if err != nil {
			return 0, err
		}
		return len(payouts), nil
	}

	// One warm epoch validates the fixture before the clock starts.
	if got, err := settleEpoch(); err != nil || got != forwarders {
		b.Fatalf("warm epoch: %d of %d claims paid, err %v", got, forwarders, err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := settleEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/secs, "settlements/sec")
	}
}
