package payment

import (
	"runtime"
	"sync"
)

// Batch deposit path: a settlement epoch hands the bank its deposits in
// one slice, the RSA signature checks — the only expensive, pure part of
// a deposit — fan out over a persistent worker pool, and the ledger
// mutations are then applied serially in submission order. Per-token
// error attribution is identical to calling Deposit in a loop: the apply
// phase replays the serial check order (unknown account, bad signature,
// double spend) with the signature verdict precomputed.

// DepositRequest is one deposit of a settlement epoch's batch.
type DepositRequest struct {
	Account AccountID
	Token   Token
}

// verifyTask is one contiguous chunk of signature checks.
type verifyTask struct {
	chunk int
	fn    func(chunk int)
	wg    *sync.WaitGroup
}

// verifyPool mirrors game.Pool: persistent workers parked on a channel,
// shut down by an explicit Close or the finalizer when the bank becomes
// unreachable. Workers capture only the channel, never the pool or the
// bank.
type verifyPool struct {
	tasks   chan verifyTask
	workers int
	once    sync.Once
}

func newVerifyPool(workers int) *verifyPool {
	if workers < 1 {
		workers = 1
	}
	p := &verifyPool{tasks: make(chan verifyTask, workers), workers: workers}
	for w := 0; w < workers; w++ {
		go verifyWorker(p.tasks)
	}
	runtime.SetFinalizer(p, (*verifyPool).Close)
	return p
}

func verifyWorker(tasks <-chan verifyTask) {
	for t := range tasks {
		t.fn(t.chunk)
		t.wg.Done()
	}
}

// run executes fn(c) for chunks [0, chunks) on the pool and waits.
func (p *verifyPool) run(chunks int, fn func(chunk int)) {
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		p.tasks <- verifyTask{chunk: c, fn: fn, wg: &wg}
	}
	wg.Wait()
}

// Close shuts the workers down. Idempotent.
func (p *verifyPool) Close() {
	p.once.Do(func() { close(p.tasks) })
}

// SetVerifyWorkers fixes the signature-check pool width (0 restores the
// GOMAXPROCS default). A width of 1 makes DepositBatch verify serially —
// the baseline benchmarks pin this. Replacing an existing pool shuts the
// old one down.
func (b *Bank) SetVerifyWorkers(n int) {
	b.verifyMu.Lock()
	defer b.verifyMu.Unlock()
	b.verifyWorkers = n
	if b.verifyPool != nil {
		b.verifyPool.Close()
		b.verifyPool = nil
	}
}

// pool returns the verification pool, building it on first use.
func (b *Bank) pool() *verifyPool {
	b.verifyMu.Lock()
	defer b.verifyMu.Unlock()
	if b.verifyPool == nil {
		w := b.verifyWorkers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		b.verifyPool = newVerifyPool(w)
	}
	return b.verifyPool
}

// DepositBatch verifies and applies a settlement epoch's deposits. The
// returned slice has one entry per request, nil on success, positionally
// aligned with reqs; errors match what Deposit would have returned for
// the same stream, in the same order. Telemetry counters see one
// noteDeposit per request, exactly like the serial path.
func (b *Bank) DepositBatch(reqs []DepositRequest) []error {
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return errs
	}
	sigOK := make([]bool, len(reqs))
	pub := &b.key.PublicKey
	p := b.pool()
	chunks := p.workers
	if chunks > len(reqs) {
		chunks = len(reqs)
	}
	per := (len(reqs) + chunks - 1) / chunks
	p.run(chunks, func(c int) {
		lo := c * per
		hi := lo + per
		if hi > len(reqs) {
			hi = len(reqs)
		}
		for i := lo; i < hi; i++ {
			sigOK[i] = VerifyToken(pub, reqs[i].Token)
		}
	})
	for i := range reqs {
		err := b.deposit(reqs[i].Account, reqs[i].Token, sigOK[i])
		b.noteDeposit(err)
		errs[i] = err
	}
	return errs
}
