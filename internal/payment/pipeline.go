package payment

import (
	"errors"
	"sync"

	"p2panon/internal/telemetry"
)

// Async settlement stage: batch close hands the escrow and the collected
// claims to a bounded queue and returns to the forwarding hot path; the
// runtime drains the queue at a point it controls — faultsim drains on a
// virtual-clock timer so transcripts stay deterministic, a live node
// would drain from a background loop. The queue is deliberately passive
// (no goroutine of its own): whoever owns the clock owns the drain, which
// is what keeps replays byte-identical.

// ErrQueueFull is the backpressure signal: the enqueuer must settle
// synchronously or retry after a drain — the queue never grows past its
// bound.
var ErrQueueFull = errors.New("payment: settlement queue full")

// SettleJob is one batch's deferred settlement. Exactly one of Claims and
// AggClaims is consulted: aggregated jobs settle through the chain path.
type SettleJob struct {
	Batch      int
	Escrow     *Escrow
	Minter     *ReceiptMinter
	Pf, Pr     Amount
	Claims     []Claim
	AggClaims  []AggregateClaim
	Aggregated bool
}

// SettleResult is the outcome of one drained job.
type SettleResult struct {
	Batch   int
	Payouts []Payout
	Refund  Amount
	Err     error
}

// SettleQueue is the bounded buffer between batch close and settlement.
// All methods are safe for concurrent use; settlement work itself runs on
// the drainer's goroutine, outside the queue lock.
type SettleQueue struct {
	mu     sync.Mutex
	jobs   []SettleJob
	limit  int
	closed bool

	depth    *telemetry.Gauge
	enqueued *telemetry.Counter
	drained  *telemetry.Counter
	rejected *telemetry.Counter
}

// NewSettleQueue creates a queue holding at most capacity pending jobs
// (clamped to ≥ 1).
func NewSettleQueue(capacity int) *SettleQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &SettleQueue{limit: capacity}
}

// Pipeline metric names.
const (
	metricQueueDepth    = "payment_settle_queue_depth"
	metricQueueEnqueued = "payment_settle_queue_enqueued_total"
	metricQueueDrained  = "payment_settle_queue_drained_total"
	metricQueueRejected = "payment_settle_queue_rejected_total"
)

// Instrument binds the queue's gauges and counters into reg.
func (q *SettleQueue) Instrument(reg *telemetry.Registry) {
	reg.Help(metricQueueDepth, "settlement jobs currently queued")
	reg.Help(metricQueueRejected, "enqueues rejected by backpressure (queue full)")
	q.mu.Lock()
	defer q.mu.Unlock()
	q.depth = reg.Gauge(metricQueueDepth, nil)
	q.enqueued = reg.Counter(metricQueueEnqueued, nil)
	q.drained = reg.Counter(metricQueueDrained, nil)
	q.rejected = reg.Counter(metricQueueRejected, nil)
}

// Len returns the number of pending jobs.
func (q *SettleQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

// Cap returns the queue bound.
func (q *SettleQueue) Cap() int { return q.limit }

// Enqueue appends a job, or reports ErrQueueFull (the backpressure
// signal) when the bound is reached. Enqueueing on a closed queue errors.
func (q *SettleQueue) Enqueue(j SettleJob) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errors.New("payment: settlement queue closed")
	}
	if len(q.jobs) >= q.limit {
		q.rejected.Inc()
		return ErrQueueFull
	}
	q.jobs = append(q.jobs, j)
	q.enqueued.Inc()
	q.depth.Set(int64(len(q.jobs)))
	return nil
}

// take pops all pending jobs FIFO.
func (q *SettleQueue) take() []SettleJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	jobs := q.jobs
	q.jobs = nil
	q.depth.Set(0)
	return jobs
}

// settle executes one job against its escrow.
func settle(j SettleJob) SettleResult {
	res := SettleResult{Batch: j.Batch}
	if j.Escrow == nil || j.Minter == nil {
		res.Err = errors.New("payment: settle job missing escrow or minter")
		return res
	}
	if j.Aggregated {
		res.Payouts, res.Refund, res.Err = j.Escrow.SettleAggregated(j.Minter, j.Pf, j.Pr, j.AggClaims)
	} else {
		res.Payouts, res.Refund, res.Err = j.Escrow.SettleFromEscrow(j.Minter, j.Pf, j.Pr, j.Claims)
	}
	return res
}

// Drain settles every pending job in FIFO order and returns the results
// in that order. The settlement work runs on the caller's goroutine with
// the queue unlocked, so enqueuers are never blocked behind it.
func (q *SettleQueue) Drain() []SettleResult {
	jobs := q.take()
	if len(jobs) == 0 {
		return nil
	}
	out := make([]SettleResult, len(jobs))
	for i, j := range jobs {
		out[i] = settle(j)
		q.drained.Inc()
	}
	return out
}

// Close seals the queue and returns the jobs that were never drained —
// their funds still sit in escrow; the caller decides whether to settle
// them anyway or refund via Escrow.Close. Conservation holds either way:
// an undrained job's money is locked, not lost.
func (q *SettleQueue) Close() []SettleJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	jobs := q.jobs
	q.jobs = nil
	q.depth.Set(0)
	return jobs
}
