package payment

import (
	"bytes"
	"errors"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 500)
	b.OpenAccount(2, 0)
	tok := withdrawToken(t, b, 1, 100)
	if err := b.Deposit(2, tok); err != nil {
		t.Fatal(err)
	}
	dangling := withdrawToken(t, b, 1, 50) // issued but unredeemed

	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadBank(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Balances survive.
	b1, _ := restored.Balance(1)
	b2, _ := restored.Balance(2)
	if b1 != 350 || b2 != 100 {
		t.Fatalf("balances %d/%d", b1, b2)
	}
	if restored.Float() != 50 {
		t.Fatalf("float %d", restored.Float())
	}
	// The spent list survives: replaying the redeemed token fails.
	if err := restored.Deposit(1, tok); !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("replay after restore: %v", err)
	}
	// The dangling token is still redeemable, with the restored key.
	if err := restored.Deposit(2, dangling); err != nil {
		t.Fatalf("dangling token after restore: %v", err)
	}
	// New withdrawals keep working.
	tok2 := withdrawToken(t, restored, 1, 10)
	if err := restored.Deposit(2, tok2); err != nil {
		t.Fatal(err)
	}
	if err := restored.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadBankRejectsGarbage(t *testing.T) {
	if _, err := LoadBank(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadBank(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestStatementDisabledByDefault(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 100)
	if got := b.Statement(1); got != nil {
		t.Fatalf("statement without audit: %v", got)
	}
}

func TestStatementRecordsOperations(t *testing.T) {
	b := freshBank(t)
	b.EnableAudit()
	b.OpenAccount(1, 100)
	b.OpenAccount(2, 0)
	tok := withdrawToken(t, b, 1, 30)
	b.Deposit(2, tok)
	b.Transfer(2, 1, 5)

	s1 := b.Statement(1)
	if len(s1) != 3 { // open, withdraw, transfer-in
		t.Fatalf("statement 1: %v", s1)
	}
	if s1[0].Kind != "open" || s1[0].Balance != 100 {
		t.Fatalf("entry %+v", s1[0])
	}
	if s1[1].Kind != "withdraw" || s1[1].Amount != 30 || s1[1].Balance != 70 {
		t.Fatalf("entry %+v", s1[1])
	}
	if s1[2].Kind != "transfer-in" || s1[2].Peer != 2 || s1[2].Balance != 75 {
		t.Fatalf("entry %+v", s1[2])
	}

	s2 := b.Statement(2)
	if len(s2) != 3 { // open, deposit, transfer-out
		t.Fatalf("statement 2: %v", s2)
	}
	if s2[1].Kind != "deposit" || s2[1].Balance != 30 {
		t.Fatalf("entry %+v", s2[1])
	}
	// Sequence numbers are globally increasing.
	var last uint64
	for _, e := range append(append([]LedgerEntry(nil), s1...), s2...) {
		if e.Seq == 0 {
			t.Fatal("zero sequence")
		}
		_ = last
	}
}

func TestStatementIsCopy(t *testing.T) {
	b := freshBank(t)
	b.EnableAudit()
	b.OpenAccount(1, 100)
	s := b.Statement(1)
	if len(s) == 0 {
		t.Fatal("no entries")
	}
	s[0].Amount = 999
	if b.Statement(1)[0].Amount == 999 {
		t.Fatal("statement aliases internal ledger")
	}
}

func TestVerifyConservationDetectsCorruption(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 100)
	if err := b.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
	// Corrupt internals directly (white-box).
	s := b.shardOf(1)
	s.mu.Lock()
	s.accounts[1] = -5
	s.mu.Unlock()
	if err := b.VerifyConservation(); err == nil {
		t.Fatal("negative balance not detected")
	}
	s.mu.Lock()
	s.accounts[1] = 100
	s.mu.Unlock()
	b.redeemed.Store(b.issued.Load() + 1)
	if err := b.VerifyConservation(); err == nil {
		t.Fatal("over-redemption not detected")
	}
}
