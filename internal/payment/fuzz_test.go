package payment

import (
	"math/big"
	"testing"
)

// FuzzVerifyToken must never panic and never verify a token whose
// signature was not produced by the bank.
func FuzzVerifyToken(f *testing.F) {
	b, err := NewBank(1024)
	if err != nil {
		f.Fatal(err)
	}
	b.OpenAccount(1, 1000)
	req, err := NewWithdrawalRequest(b.PublicKey(), 10, nil)
	if err != nil {
		f.Fatal(err)
	}
	blindSig, err := b.Withdraw(1, req)
	if err != nil {
		f.Fatal(err)
	}
	tok, err := req.Unblind(blindSig)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(int64(10), tok.Serial[:], tok.Sig.Bytes())
	f.Add(int64(0), []byte{}, []byte{})
	f.Add(int64(-5), make([]byte, 32), []byte{1})
	f.Fuzz(func(t *testing.T, denom int64, serial, sig []byte) {
		var mut Token
		mut.Denom = Amount(denom)
		copy(mut.Serial[:], serial)
		mut.Sig = new(big.Int).SetBytes(sig)
		ok := VerifyToken(b.PublicKey(), mut)
		// The only acceptable verification is the genuine token.
		if ok {
			if mut.Denom != tok.Denom || mut.Serial != tok.Serial || mut.Sig.Cmp(tok.Sig) != 0 {
				t.Fatalf("forged token verified: denom=%d", mut.Denom)
			}
		}
	})
}

// FuzzReceiptVerify must never panic and never accept a receipt whose MAC
// does not match.
func FuzzReceiptVerify(f *testing.F) {
	m, err := NewReceiptMinter([]byte("fuzz-secret"))
	if err != nil {
		f.Fatal(err)
	}
	genuine := m.Mint(1, 2, 3)
	f.Add(1, 2, int64(3), genuine.MAC[:])
	f.Add(0, 0, int64(0), []byte{})
	f.Fuzz(func(t *testing.T, conn, hop int, fwd int64, mac []byte) {
		var r Receipt
		r.Conn = conn
		r.Hop = hop
		r.Forwarder = AccountID(fwd)
		copy(r.MAC[:], mac)
		if m.Verify(r) {
			want := m.Mint(conn, hop, AccountID(fwd))
			if r.MAC != want.MAC {
				t.Fatal("receipt with wrong MAC verified")
			}
		}
	})
}
