package payment

import (
	"bytes"
	"math/big"
	"testing"
)

// FuzzVerifyToken must never panic and never verify a token whose
// signature was not produced by the bank.
func FuzzVerifyToken(f *testing.F) {
	b, err := NewBank(1024)
	if err != nil {
		f.Fatal(err)
	}
	b.OpenAccount(1, 1000)
	req, err := NewWithdrawalRequest(b.PublicKey(), 10, nil)
	if err != nil {
		f.Fatal(err)
	}
	blindSig, err := b.Withdraw(1, req)
	if err != nil {
		f.Fatal(err)
	}
	tok, err := req.Unblind(blindSig)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(int64(10), tok.Serial[:], tok.Sig.Bytes())
	f.Add(int64(0), []byte{}, []byte{})
	f.Add(int64(-5), make([]byte, 32), []byte{1})
	f.Fuzz(func(t *testing.T, denom int64, serial, sig []byte) {
		var mut Token
		mut.Denom = Amount(denom)
		copy(mut.Serial[:], serial)
		mut.Sig = new(big.Int).SetBytes(sig)
		ok := VerifyToken(b.PublicKey(), mut)
		// The only acceptable verification is the genuine token.
		if ok {
			if mut.Denom != tok.Denom || mut.Serial != tok.Serial || mut.Sig.Cmp(tok.Sig) != 0 {
				t.Fatalf("forged token verified: denom=%d", mut.Denom)
			}
		}
	})
}

// FuzzTokenWire throws arbitrary byte strings at the token decoder: it
// must never panic, and anything it accepts must re-encode to exactly the
// input (canonical form). The seed corpus covers the interesting
// boundaries — truncated headers, truncated and oversized signature
// lengths, padded signatures and trailing garbage.
func FuzzTokenWire(f *testing.F) {
	b, err := NewBank(1024)
	if err != nil {
		f.Fatal(err)
	}
	b.OpenAccount(1, 1000)
	req, err := NewWithdrawalRequest(b.PublicKey(), 10, nil)
	if err != nil {
		f.Fatal(err)
	}
	blindSig, err := b.Withdraw(1, req)
	if err != nil {
		f.Fatal(err)
	}
	tok, err := req.Unblind(blindSig)
	if err != nil {
		f.Fatal(err)
	}
	genuine, err := EncodeToken(tok)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(genuine)
	f.Add([]byte{})                                // empty
	f.Add(genuine[:tokenHeaderSize-1])             // truncated header
	f.Add(genuine[:tokenHeaderSize])               // header only, sig missing
	f.Add(genuine[:len(genuine)-1])                // truncated signature
	f.Add(append(append([]byte{}, genuine...), 0)) // trailing garbage
	oversized := append([]byte{}, genuine...)
	oversized[40], oversized[41] = 0xff, 0xff // sigLen 65535 > MaxSigBytes
	f.Add(oversized)
	padded := append([]byte{}, genuine[:tokenHeaderSize]...)
	padded[40], padded[41] = 0, 3
	padded = append(padded, 0, 1, 2) // leading-zero (non-canonical) sig
	f.Add(padded)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeToken(data)
		if err != nil {
			return
		}
		re, err := EncodeToken(dec)
		if err != nil {
			t.Fatalf("decoded token failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical decode: %x re-encoded as %x", data, re)
		}
		// A forged decode must still never verify.
		if VerifyToken(b.PublicKey(), dec) && !bytes.Equal(data, genuine) {
			t.Fatal("forged wire token verified")
		}
	})
}

// FuzzReceiptWire covers the receipt round trip: arbitrary input never
// panics the decoder, accepted input is canonical, and a structured
// receipt survives encode→decode unchanged (including MAC validity).
func FuzzReceiptWire(f *testing.F) {
	m, err := NewReceiptMinter([]byte("fuzz-wire-secret"))
	if err != nil {
		f.Fatal(err)
	}
	genuine := m.Mint(3, 1, 7)
	enc := EncodeReceipt(genuine)
	f.Add(enc, 3, 1, int64(7))
	f.Add([]byte{}, 0, 0, int64(0))
	f.Add(enc[:ReceiptWireSize-1], -1, 1<<30, int64(-9))          // truncated
	f.Add(append(append([]byte{}, enc...), 0xaa), 5, 5, int64(5)) // oversized
	f.Fuzz(func(t *testing.T, data []byte, conn, hop int, fwd int64) {
		if dec, err := DecodeReceipt(data); err == nil {
			if !bytes.Equal(EncodeReceipt(dec), data) {
				t.Fatalf("non-canonical receipt decode of %x", data)
			}
		}
		// Structured round trip, including negative/extreme field values.
		r := Receipt{Conn: conn, Hop: hop, Forwarder: AccountID(fwd)}
		copy(r.MAC[:], data)
		back, err := DecodeReceipt(EncodeReceipt(r))
		if err != nil {
			t.Fatalf("round trip of %+v failed: %v", r, err)
		}
		if back != r {
			t.Fatalf("round trip changed receipt: %+v -> %+v", r, back)
		}
		if m.Verify(back) != m.Verify(r) {
			t.Fatal("wire round trip changed MAC validity")
		}
	})
}

// FuzzAggregateClaimWire throws arbitrary byte strings at the
// aggregate-claim decoder: it must never panic, anything it accepts must
// re-encode to exactly the input (canonical form), and — the settlement
// guarantee — no decoded mutation of a genuine claim may ever verify
// unless it is byte-identical to the genuine encoding. The seed corpus
// covers the attacks by construction: truncation, oversized counts,
// forged chains and replayed prefixes.
func FuzzAggregateClaimWire(f *testing.F) {
	m, err := NewReceiptMinter([]byte("fuzz-aggclaim-secret"))
	if err != nil {
		f.Fatal(err)
	}
	chain := NewClaimChain(7)
	for _, co := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {5, 3}} {
		if err := chain.Add(m.Mint(co[0], co[1], 7)); err != nil {
			f.Fatal(err)
		}
	}
	claim := chain.Claim()
	genuine, err := EncodeAggregateClaim(claim)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(genuine)
	f.Add([]byte{})
	f.Add(genuine[:11])                            // truncated header
	f.Add(genuine[:len(genuine)-1])                // truncated chain
	f.Add(genuine[:AggClaimWireSize(2)])           // fewer bytes than the count promises
	f.Add(append(append([]byte{}, genuine...), 0)) // trailing garbage

	forged := append([]byte{}, genuine...)
	forged[len(forged)-1] ^= 1 // flipped chain byte
	f.Add(forged)

	oversized := append([]byte{}, genuine...)
	oversized[8], oversized[9] = 0xff, 0xff // count 0xffff0004 > MaxAggEntries
	f.Add(oversized)

	// Replayed prefix: the first two entries with the count fixed up — the
	// chain covers all four, so the prefix must not verify.
	prefix := append([]byte{}, genuine[:AggClaimWireSize(2)-32]...)
	prefix[11] = 2
	prefix = append(prefix, genuine[len(genuine)-32:]...)
	f.Add(prefix)

	zeroCount := append([]byte{}, genuine[:AggClaimWireSize(0)]...)
	zeroCount[11] = 0
	f.Add(zeroCount)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeAggregateClaim(data)
		if err != nil {
			return
		}
		re, err := EncodeAggregateClaim(dec)
		if err != nil {
			t.Fatalf("decoded claim failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical decode: %x re-encoded as %x", data, re)
		}
		// The settlement gate: only the genuine bytes may ever settle.
		if m.VerifyAggregate(&dec) > 0 && !bytes.Equal(data, genuine) {
			t.Fatalf("forged aggregate claim verified: %x", data)
		}
	})
}

// FuzzReceiptVerify must never panic and never accept a receipt whose MAC
// does not match.
func FuzzReceiptVerify(f *testing.F) {
	m, err := NewReceiptMinter([]byte("fuzz-secret"))
	if err != nil {
		f.Fatal(err)
	}
	genuine := m.Mint(1, 2, 3)
	f.Add(1, 2, int64(3), genuine.MAC[:])
	f.Add(0, 0, int64(0), []byte{})
	f.Fuzz(func(t *testing.T, conn, hop int, fwd int64, mac []byte) {
		var r Receipt
		r.Conn = conn
		r.Hop = hop
		r.Forwarder = AccountID(fwd)
		copy(r.MAC[:], mac)
		if m.Verify(r) {
			want := m.Mint(conn, hop, AccountID(fwd))
			if r.MAC != want.MAC {
				t.Fatal("receipt with wrong MAC verified")
			}
		}
	})
}
