package payment

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
)

// The sharded bank must be observationally identical to the one-shard
// (serial) bank: same balances, same errors in the same order, same
// conservation arithmetic — for any operation stream, including the
// hostile ones (double spends, tampered signatures). The property test
// drives both banks with one seeded stream and compares after every
// step. CI runs it under -race, which also exercises the staged deposit
// lock protocol.

// bankPair drives two banks through identical operations. Tokens differ
// between the banks (each signs under its own key), so withdrawals are
// mirrored: position i of each held slice came from the same op.
type bankPair struct {
	t                *testing.T
	serial, sharded  *Bank
	heldSer, heldShd []Token
}

func newBankPair(t *testing.T) *bankPair {
	t.Helper()
	ser, err := NewBankShards(1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	shd, err := NewBankShards(1024, DefaultShards)
	if err != nil {
		t.Fatal(err)
	}
	if ser.Shards() != 1 || shd.Shards() != DefaultShards {
		t.Fatalf("shard counts %d/%d", ser.Shards(), shd.Shards())
	}
	return &bankPair{t: t, serial: ser, sharded: shd}
}

// sameErr requires both banks to fail (or succeed) identically. Error
// strings may differ in attribution detail (double-spend names the first
// depositor), so comparison is by nil-ness plus the leading sentinel.
func (p *bankPair) sameErr(step int, op string, e1, e2 error) {
	p.t.Helper()
	if (e1 == nil) != (e2 == nil) {
		p.t.Fatalf("step %d %s: serial err %v, sharded err %v", step, op, e1, e2)
	}
}

func tryWithdraw(b *Bank, from AccountID, denom Amount) (Token, error) {
	req, err := NewWithdrawalRequest(b.PublicKey(), denom, nil)
	if err != nil {
		return Token{}, err
	}
	blindSig, err := b.Withdraw(from, req)
	if err != nil {
		return Token{}, err
	}
	return req.Unblind(blindSig)
}

// tamper flips the token's signature so VerifyToken must reject it.
func tamper(tok Token) Token {
	tok.Sig = new(big.Int).Add(tok.Sig, big.NewInt(1))
	return tok
}

func (p *bankPair) compareState(step int) {
	p.t.Helper()
	a1, a2 := p.serial.Accounts(), p.sharded.Accounts()
	if len(a1) != len(a2) {
		p.t.Fatalf("step %d: %d vs %d accounts", step, len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			p.t.Fatalf("step %d: account list diverges at %d: %d vs %d", step, i, a1[i], a2[i])
		}
		b1, _ := p.serial.Balance(a1[i])
		b2, _ := p.sharded.Balance(a2[i])
		if b1 != b2 {
			p.t.Fatalf("step %d: balance of %d diverges: %d vs %d", step, a1[i], b1, b2)
		}
	}
	if t1, t2 := p.serial.TotalBalance(), p.sharded.TotalBalance(); t1 != t2 {
		p.t.Fatalf("step %d: total balance %d vs %d", step, t1, t2)
	}
	if f1, f2 := p.serial.Float(), p.sharded.Float(); f1 != f2 {
		p.t.Fatalf("step %d: float %d vs %d", step, f1, f2)
	}
	if s1, s2 := p.serial.SpentCount(), p.sharded.SpentCount(); s1 != s2 {
		p.t.Fatalf("step %d: spent count %d vs %d", step, s1, s2)
	}
	if err := p.serial.VerifyConservation(); err != nil {
		p.t.Fatalf("step %d: serial conservation: %v", step, err)
	}
	if err := p.sharded.VerifyConservation(); err != nil {
		p.t.Fatalf("step %d: sharded conservation: %v", step, err)
	}
}

func TestShardedBankMatchesSerialProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			p := newBankPair(t)
			rng := rand.New(rand.NewSource(seed))
			const nAcc = 12
			for id := AccountID(1); id <= nAcc; id++ {
				if err := p.serial.OpenAccount(id, 1000); err != nil {
					t.Fatal(err)
				}
				if err := p.sharded.OpenAccount(id, 1000); err != nil {
					t.Fatal(err)
				}
			}
			steps := 150
			if testing.Short() {
				steps = 40
			}
			for step := 0; step < steps; step++ {
				from := AccountID(1 + rng.Intn(nAcc))
				to := AccountID(1 + rng.Intn(nAcc))
				switch op := rng.Intn(10); {
				case op < 3: // withdraw (sometimes more than the balance holds)
					denom := Amount(1 + rng.Intn(1500))
					t1, e1 := tryWithdraw(p.serial, from, denom)
					t2, e2 := tryWithdraw(p.sharded, from, denom)
					p.sameErr(step, "withdraw", e1, e2)
					if e1 == nil {
						p.heldSer = append(p.heldSer, t1)
						p.heldShd = append(p.heldShd, t2)
					}
				case op < 6 && len(p.heldSer) > 0: // deposit a held token
					i := rng.Intn(len(p.heldSer))
					e1 := p.serial.Deposit(to, p.heldSer[i])
					e2 := p.sharded.Deposit(to, p.heldShd[i])
					p.sameErr(step, "deposit", e1, e2)
					// Leave the token in place: redepositing it later is the
					// double-spend injection, and both banks must agree then too.
				case op < 7 && len(p.heldSer) > 0: // tampered signature
					i := rng.Intn(len(p.heldSer))
					e1 := p.serial.Deposit(to, tamper(p.heldSer[i]))
					e2 := p.sharded.Deposit(to, tamper(p.heldShd[i]))
					p.sameErr(step, "tampered deposit", e1, e2)
				case op < 9: // transfer (sometimes overdrawn, sometimes self)
					amt := Amount(1 + rng.Intn(1500))
					e1 := p.serial.Transfer(from, to, amt)
					e2 := p.sharded.Transfer(from, to, amt)
					p.sameErr(step, "transfer", e1, e2)
				default: // unknown-account traffic
					e1 := p.serial.Deposit(AccountID(9999), Token{})
					e2 := p.sharded.Deposit(AccountID(9999), Token{})
					p.sameErr(step, "unknown deposit", e1, e2)
				}
				if step%10 == 0 {
					p.compareState(step)
				}
			}
			p.compareState(steps)
		})
	}
}

// TestShardedSettlementMatchesSerial runs a full escrow settlement —
// including forged and duplicated receipts — on both banks and demands
// identical payouts, refunds and post-state.
func TestShardedSettlementMatchesSerial(t *testing.T) {
	p := newBankPair(t)
	m := minter(t)
	for id := AccountID(1); id <= 8; id++ {
		if err := p.serial.OpenAccount(id, 10_000); err != nil {
			t.Fatal(err)
		}
		if err := p.sharded.OpenAccount(id, 10_000); err != nil {
			t.Fatal(err)
		}
	}
	claims := []Claim{
		{Forwarder: 2, Receipts: []Receipt{m.Mint(1, 1, 2), m.Mint(2, 1, 2)}},
		{Forwarder: 3, Receipts: []Receipt{m.Mint(1, 2, 3), m.Mint(1, 2, 3)}}, // duplicate
		{Forwarder: 4, Receipts: []Receipt{{Conn: 9, Hop: 9, Forwarder: 4}}},  // forged
	}
	settleOn := func(b *Bank) ([]Payout, Amount) {
		t.Helper()
		esc, err := b.OpenEscrow(1, 1000)
		if err != nil {
			t.Fatal(err)
		}
		payouts, refund, err := esc.SettleFromEscrow(m, 10, 90, claims)
		if err != nil {
			t.Fatal(err)
		}
		return payouts, refund
	}
	po1, r1 := settleOn(p.serial)
	po2, r2 := settleOn(p.sharded)
	if r1 != r2 {
		t.Fatalf("refund %d vs %d", r1, r2)
	}
	if len(po1) != len(po2) {
		t.Fatalf("payouts %v vs %v", po1, po2)
	}
	for i := range po1 {
		if po1[i] != po2[i] {
			t.Fatalf("payout %d: %+v vs %+v", i, po1[i], po2[i])
		}
	}
	p.compareState(-1)
}

// TestDepositBatchMatchesSerialDeposits pins the batch path's error
// attribution: DepositBatch over a stream with good, tampered, replayed
// and unknown-account deposits returns exactly the errors a serial
// Deposit loop produces, in the same positions.
func TestDepositBatchMatchesSerialDeposits(t *testing.T) {
	mkBank := func() *Bank {
		b, err := NewBankShards(1024, DefaultShards)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	loop, batch := mkBank(), mkBank()
	mkReqs := func(b *Bank) []DepositRequest {
		t.Helper()
		if err := b.OpenAccount(1, 1000); err != nil {
			t.Fatal(err)
		}
		if err := b.OpenAccount(2, 0); err != nil {
			t.Fatal(err)
		}
		good := withdrawToken(t, b, 1, 10)
		replayed := withdrawToken(t, b, 1, 20)
		bad := tamper(withdrawToken(t, b, 1, 30))
		return []DepositRequest{
			{Account: 2, Token: good},
			{Account: 2, Token: replayed},
			{Account: 2, Token: replayed},         // double spend
			{Account: 2, Token: bad},              // bad signature
			{Account: 99, Token: good},            // unknown account
			{Account: 2, Token: Token{Denom: 10}}, // no signature at all
		}
	}
	loopReqs, batchReqs := mkReqs(loop), mkReqs(batch)
	var loopErrs []error
	for _, r := range loopReqs {
		loopErrs = append(loopErrs, loop.Deposit(r.Account, r.Token))
	}
	batchErrs := batch.DepositBatch(batchReqs)
	if len(loopErrs) != len(batchErrs) {
		t.Fatalf("%d vs %d errors", len(loopErrs), len(batchErrs))
	}
	for i := range loopErrs {
		if (loopErrs[i] == nil) != (batchErrs[i] == nil) {
			t.Fatalf("request %d: loop %v, batch %v", i, loopErrs[i], batchErrs[i])
		}
	}
	if l, b := loop.TotalBalance(), batch.TotalBalance(); l != b {
		t.Fatalf("total balance %d vs %d", l, b)
	}
	if l, b := loop.Float(), batch.Float(); l != b {
		t.Fatalf("float %d vs %d", l, b)
	}
}

// TestAccountsSnapshotAllocs pins the merge path: once the per-shard
// sorted snapshots are warm, Accounts performs the k-way merge with only
// the output allocation.
func TestAccountsSnapshotAllocs(t *testing.T) {
	b := sharedBank(t)
	for id := AccountID(100); id < 180; id++ {
		b.OpenAccount(id, 1)
	}
	b.Accounts() // warm the per-shard sorted caches
	allocs := testing.AllocsPerRun(50, func() {
		if got := b.Accounts(); len(got) == 0 {
			t.Fatal("no accounts")
		}
	})
	if allocs > 2 {
		t.Fatalf("Accounts allocates %.1f times per call, want <= 2", allocs)
	}
}
