package payment

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"
	"sync/atomic"
)

// AccountID identifies a bank account. The simulator uses overlay node IDs
// cast to AccountID.
type AccountID int

// Common bank errors.
var (
	ErrInsufficientFunds = errors.New("payment: insufficient funds")
	ErrDoubleSpend       = errors.New("payment: serial already spent")
	ErrBadSignature      = errors.New("payment: invalid token signature")
	ErrUnknownAccount    = errors.New("payment: unknown account")
	ErrBadAmount         = errors.New("payment: non-positive amount")
)

// DefaultShards is the shard count NewBank uses. Sixteen shards keep the
// per-shard maps small and give deposit-heavy settlement traffic sixteen
// independent locks; tests that need the serial semantics verbatim build a
// one-shard bank with NewBankShards.
const DefaultShards = 16

// bankShard holds one partition of the account map. The sorted slice is a
// lazily rebuilt snapshot of the shard's IDs in ascending order; it is
// immutable once built (rebuilds allocate a fresh slice), so Accounts can
// merge shard snapshots after dropping the shard locks.
type bankShard struct {
	mu       sync.Mutex
	accounts map[AccountID]Amount
	sorted   []AccountID
	dirty    bool
}

// spentShard holds one partition of the spent-serial set. Serial numbers
// are random 32-byte strings, so the first bytes spread uniformly.
type spentShard struct {
	mu    sync.Mutex
	spent map[[32]byte]AccountID
}

// Bank is the central settlement entity of §2.2. It holds accounts, signs
// blind withdrawals, accepts deposits, and detects double spending. All
// methods are safe for concurrent use (the transport runtime talks to the
// bank from many goroutines).
//
// State is sharded: accounts and spent serials live in P lock-striped
// partitions keyed by AccountID (resp. serial prefix), so deposits against
// different accounts do not contend. Cross-shard operations take locks in
// ascending shard order — Transfer locks the lower-numbered shard first —
// which makes the lock graph acyclic and deadlock-free. Whole-bank reads
// (TotalBalance, Float, VerifyConservation, Save) lock every shard in that
// same ascending order and therefore see a consistent snapshot: no
// operation can be mid-flight across shards while all locks are held.
type Bank struct {
	key       *rsa.PrivateKey
	shards    []bankShard
	spent     []spentShard
	shardBits uint // shardOf shifts by 64-shardBits; len(shards) == 1<<shardBits

	// issued/redeemed are bumped only while holding the shard lock of the
	// account being debited/credited, so locking all shards quiesces them
	// and the conservation invariant TotalBalance + Float = const can be
	// read exactly.
	issued   atomic.Int64 // total withdrawn (escrowed in tokens)
	redeemed atomic.Int64 // total deposited back

	// verify is the lazily built signature-verification pool used by
	// DepositBatch; see batch.go.
	verifyMu      sync.Mutex
	verifyPool    *verifyPool
	verifyWorkers int

	// The audit ledger stays global — statements interleave operations
	// across all accounts under one sequence. auditMu is a leaf lock:
	// it is only ever taken while holding at most the shard locks of the
	// operation being recorded, and no shard lock is ever taken under it.
	auditing atomic.Bool
	auditMu  sync.Mutex
	ledger   map[AccountID][]LedgerEntry
	auditSeq uint64

	// tele holds the nil-safe counter set bound by Instrument.
	tele bankInstruments
}

// NewBank creates a bank with a fresh RSA key of the given size (>= 1024
// bits; 2048 recommended outside tests) and DefaultShards lock shards.
func NewBank(bits int) (*Bank, error) {
	return NewBankShards(bits, DefaultShards)
}

// NewBankShards creates a bank with an explicit shard count (rounded up to
// a power of two, clamped to ≥ 1). One shard reproduces the old
// global-lock bank exactly; benchmarks use it as the serial baseline.
func NewBankShards(bits, shards int) (*Bank, error) {
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("payment: generating bank key: %w", err)
	}
	b := newBankState(shards)
	b.key = key
	return b, nil
}

// newBankState builds the sharded containers without key material.
func newBankState(shards int) *Bank {
	bits := uint(0)
	for 1<<bits < shards {
		bits++
	}
	n := 1 << bits
	b := &Bank{
		shards:    make([]bankShard, n),
		spent:     make([]spentShard, n),
		shardBits: bits,
	}
	for i := range b.shards {
		b.shards[i].accounts = make(map[AccountID]Amount)
	}
	for i := range b.spent {
		b.spent[i].spent = make(map[[32]byte]AccountID)
	}
	return b
}

// shardIndex maps an account to its shard by Fibonacci hashing:
// sequential node IDs (the common case) spread across shards instead of
// clustering. A shift of 64 (one shard) is defined in Go and yields 0.
func (b *Bank) shardIndex(id AccountID) int {
	h := uint64(id) * 0x9e3779b97f4a7c15
	return int(h >> (64 - b.shardBits))
}

func (b *Bank) shardOf(id AccountID) *bankShard {
	return &b.shards[b.shardIndex(id)]
}

// spentShardOf maps a serial to its spent partition by prefix.
func (b *Bank) spentShardOf(serial [32]byte) *spentShard {
	h := uint64(serial[0]) | uint64(serial[1])<<8 | uint64(serial[2])<<16 | uint64(serial[3])<<24
	h *= 0x9e3779b97f4a7c15
	return &b.spent[h>>(64-b.shardBits)]
}

// Shards returns the bank's shard count (for reporting and tests).
func (b *Bank) Shards() int { return len(b.shards) }

// lockAll acquires every account-shard lock in ascending order. While all
// are held no account mutation (and therefore no issued/redeemed bump) can
// be in flight, so the caller sees a consistent whole-bank snapshot.
func (b *Bank) lockAll() {
	for i := range b.shards {
		b.shards[i].mu.Lock()
	}
}

func (b *Bank) unlockAll() {
	for i := range b.shards {
		b.shards[i].mu.Unlock()
	}
}

// PublicKey returns the bank's token-verification key.
func (b *Bank) PublicKey() *rsa.PublicKey { return &b.key.PublicKey }

// OpenAccount creates an account with the given opening balance. Opening
// an existing account is an error.
func (b *Bank) OpenAccount(id AccountID, opening Amount) error {
	if opening < 0 {
		return ErrBadAmount
	}
	s := b.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.accounts[id]; ok {
		return fmt.Errorf("payment: account %d already exists", id)
	}
	s.accounts[id] = opening
	s.dirty = true
	b.audit(id, "open", opening, opening, id)
	return nil
}

// ensureAccount creates id with a zero balance if it does not exist yet
// (used for the internal escrow holding account; no audit line, matching
// the original implicit creation).
func (b *Bank) ensureAccount(id AccountID) {
	s := b.shardOf(id)
	s.mu.Lock()
	if _, ok := s.accounts[id]; !ok {
		s.accounts[id] = 0
		s.dirty = true
	}
	s.mu.Unlock()
}

// Balance returns the account's balance.
func (b *Bank) Balance(id AccountID) (Amount, error) {
	s := b.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	bal, ok := s.accounts[id]
	if !ok {
		return 0, ErrUnknownAccount
	}
	return bal, nil
}

// Withdraw debits the account by the request's denomination and signs the
// blinded value. The bank never sees the serial, so the token it enables
// cannot be traced back to this withdrawal. The RSA exponentiation runs
// outside the shard lock — only the ledger mutation is serialized.
func (b *Bank) Withdraw(id AccountID, req *WithdrawalRequest) (*big.Int, error) {
	if req == nil || req.Denom() <= 0 {
		return nil, ErrBadAmount
	}
	s := b.shardOf(id)
	s.mu.Lock()
	bal, ok := s.accounts[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrUnknownAccount
	}
	if bal < req.Denom() {
		s.mu.Unlock()
		return nil, ErrInsufficientFunds
	}
	s.accounts[id] = bal - req.Denom()
	b.issued.Add(int64(req.Denom()))
	b.audit(id, "withdraw", req.Denom(), bal-req.Denom(), id)
	s.mu.Unlock()
	// Raw RSA signature on the blinded digest.
	sig := new(big.Int).Exp(req.Blinded(), b.key.D, b.key.N)
	return sig, nil
}

// Deposit verifies a token and credits the depositor. A replayed serial is
// rejected with ErrDoubleSpend and the original depositor is reported so
// the caller can attribute the cheat.
func (b *Bank) Deposit(id AccountID, tok Token) (err error) {
	defer func() { b.noteDeposit(err) }()
	return b.deposit(id, tok, VerifyToken(&b.key.PublicKey, tok))
}

// deposit applies one deposit with the signature verdict precomputed (the
// batch path verifies signatures in a worker pool first). The check order
// — unknown account, bad signature, double spend — matches the serial
// bank bit for bit, so batch and single deposits attribute errors
// identically.
//
// Stages never hold two locks at once: existence is checked under the
// account shard, the serial is claimed under the spent shard, and the
// credit lands back under the account shard. Accounts are never deleted,
// so the existence check cannot be invalidated in between; between the
// serial claim and the credit the invariant still holds because redeemed
// is bumped together with the credit.
func (b *Bank) deposit(id AccountID, tok Token, sigValid bool) error {
	s := b.shardOf(id)
	s.mu.Lock()
	_, ok := s.accounts[id]
	s.mu.Unlock()
	if !ok {
		return ErrUnknownAccount
	}
	if !sigValid {
		return ErrBadSignature
	}
	sp := b.spentShardOf(tok.Serial)
	sp.mu.Lock()
	if first, dup := sp.spent[tok.Serial]; dup {
		sp.mu.Unlock()
		return fmt.Errorf("%w (first deposited by account %d)", ErrDoubleSpend, first)
	}
	sp.spent[tok.Serial] = id
	sp.mu.Unlock()
	s.mu.Lock()
	s.accounts[id] += tok.Denom
	b.redeemed.Add(int64(tok.Denom))
	b.audit(id, "deposit", tok.Denom, s.accounts[id], id)
	s.mu.Unlock()
	return nil
}

// Transfer moves credits between accounts directly (used for escrow
// refunds and fee-free settlement paths that do not need unlinkability).
// Cross-shard transfers take both shard locks in ascending shard order —
// the deterministic two-phase ordering that keeps concurrent transfers
// deadlock-free.
func (b *Bank) Transfer(from, to AccountID, amt Amount) error {
	if amt <= 0 {
		return ErrBadAmount
	}
	fi, ti := b.shardIndex(from), b.shardIndex(to)
	sf, st := &b.shards[fi], &b.shards[ti]
	lockOrdered(sf, st, fi, ti)
	defer unlockOrdered(sf, st, fi, ti)
	fb, ok := sf.accounts[from]
	if !ok {
		return ErrUnknownAccount
	}
	if _, ok := st.accounts[to]; !ok {
		return ErrUnknownAccount
	}
	if fb < amt {
		return ErrInsufficientFunds
	}
	sf.accounts[from] = fb - amt
	st.accounts[to] += amt
	b.audit(from, "transfer-out", amt, sf.accounts[from], to)
	b.audit(to, "transfer-in", amt, st.accounts[to], from)
	return nil
}

// lockOrdered locks one or two shards lower index first — the two-phase
// ordering that makes the cross-shard lock graph acyclic.
func lockOrdered(a, c *bankShard, ai, ci int) {
	switch {
	case ai == ci:
		a.mu.Lock()
	case ai < ci:
		a.mu.Lock()
		c.mu.Lock()
	default:
		c.mu.Lock()
		a.mu.Lock()
	}
}

func unlockOrdered(a, c *bankShard, ai, ci int) {
	a.mu.Unlock()
	if ai != ci {
		c.mu.Unlock()
	}
}

// TotalBalance returns the sum over all accounts. Together with Float
// (tokens issued but not yet redeemed) it states the conservation
// invariant: TotalBalance + Float is constant across all operations.
func (b *Bank) TotalBalance() Amount {
	b.lockAll()
	defer b.unlockAll()
	var total Amount
	for i := range b.shards {
		for _, bal := range b.shards[i].accounts {
			total += bal
		}
	}
	return total
}

// Float returns the value of tokens issued but not yet redeemed. All
// shards are locked so the two counters are read at a quiescent point.
func (b *Bank) Float() Amount {
	b.lockAll()
	defer b.unlockAll()
	return Amount(b.issued.Load() - b.redeemed.Load())
}

// Accounts returns all account IDs in ascending order. Each shard keeps a
// pre-sorted immutable snapshot that is rebuilt only after an account was
// opened in it, so a warm call is one k-way merge and a single output
// allocation — no sorting under any lock.
func (b *Bank) Accounts() []AccountID {
	snaps := make([][]AccountID, len(b.shards))
	total := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		if s.dirty {
			sorted := make([]AccountID, 0, len(s.accounts))
			for id := range s.accounts {
				sorted = append(sorted, id)
			}
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			s.sorted = sorted
			s.dirty = false
		}
		snaps[i] = s.sorted
		s.mu.Unlock()
		total += len(snaps[i])
	}
	out := make([]AccountID, 0, total)
	for len(out) < total {
		best := -1
		for i, snap := range snaps {
			if len(snap) == 0 {
				continue
			}
			if best < 0 || snap[0] < snaps[best][0] {
				best = i
			}
		}
		out = append(out, snaps[best][0])
		snaps[best] = snaps[best][1:]
	}
	return out
}

// SpentCount returns the number of redeemed serials (for reporting).
func (b *Bank) SpentCount() int {
	n := 0
	for i := range b.spent {
		b.spent[i].mu.Lock()
		n += len(b.spent[i].spent)
		b.spent[i].mu.Unlock()
	}
	return n
}
