package payment

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"
)

// AccountID identifies a bank account. The simulator uses overlay node IDs
// cast to AccountID.
type AccountID int

// Common bank errors.
var (
	ErrInsufficientFunds = errors.New("payment: insufficient funds")
	ErrDoubleSpend       = errors.New("payment: serial already spent")
	ErrBadSignature      = errors.New("payment: invalid token signature")
	ErrUnknownAccount    = errors.New("payment: unknown account")
	ErrBadAmount         = errors.New("payment: non-positive amount")
)

// Bank is the central settlement entity of §2.2. It holds accounts, signs
// blind withdrawals, accepts deposits, and detects double spending. All
// methods are safe for concurrent use (the transport runtime talks to the
// bank from many goroutines).
type Bank struct {
	mu       sync.Mutex
	key      *rsa.PrivateKey
	accounts map[AccountID]Amount
	spent    map[[32]byte]AccountID // serial -> depositor
	issued   Amount                 // total withdrawn (escrowed in tokens)
	redeemed Amount                 // total deposited back

	// ledger records per-account statements when EnableAudit was called.
	ledger   map[AccountID][]LedgerEntry
	auditSeq uint64

	// tele holds the nil-safe counter set bound by Instrument.
	tele bankInstruments
}

// NewBank creates a bank with a fresh RSA key of the given size (>= 1024
// bits; 2048 recommended outside tests).
func NewBank(bits int) (*Bank, error) {
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("payment: generating bank key: %w", err)
	}
	return &Bank{
		key:      key,
		accounts: make(map[AccountID]Amount),
		spent:    make(map[[32]byte]AccountID),
	}, nil
}

// PublicKey returns the bank's token-verification key.
func (b *Bank) PublicKey() *rsa.PublicKey { return &b.key.PublicKey }

// OpenAccount creates an account with the given opening balance. Opening
// an existing account is an error.
func (b *Bank) OpenAccount(id AccountID, opening Amount) error {
	if opening < 0 {
		return ErrBadAmount
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.accounts[id]; ok {
		return fmt.Errorf("payment: account %d already exists", id)
	}
	b.accounts[id] = opening
	b.audit(id, "open", opening, id)
	return nil
}

// Balance returns the account's balance.
func (b *Bank) Balance(id AccountID) (Amount, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bal, ok := b.accounts[id]
	if !ok {
		return 0, ErrUnknownAccount
	}
	return bal, nil
}

// Withdraw debits the account by the request's denomination and signs the
// blinded value. The bank never sees the serial, so the token it enables
// cannot be traced back to this withdrawal.
func (b *Bank) Withdraw(id AccountID, req *WithdrawalRequest) (*big.Int, error) {
	if req == nil || req.Denom() <= 0 {
		return nil, ErrBadAmount
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	bal, ok := b.accounts[id]
	if !ok {
		return nil, ErrUnknownAccount
	}
	if bal < req.Denom() {
		return nil, ErrInsufficientFunds
	}
	b.accounts[id] = bal - req.Denom()
	b.issued += req.Denom()
	b.audit(id, "withdraw", req.Denom(), id)
	// Raw RSA signature on the blinded digest.
	sig := new(big.Int).Exp(req.Blinded(), b.key.D, b.key.N)
	return sig, nil
}

// Deposit verifies a token and credits the depositor. A replayed serial is
// rejected with ErrDoubleSpend and the original depositor is reported so
// the caller can attribute the cheat.
func (b *Bank) Deposit(id AccountID, tok Token) (err error) {
	defer func() { b.noteDeposit(err) }()
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.accounts[id]; !ok {
		return ErrUnknownAccount
	}
	if !VerifyToken(&b.key.PublicKey, tok) {
		return ErrBadSignature
	}
	if first, dup := b.spent[tok.Serial]; dup {
		return fmt.Errorf("%w (first deposited by account %d)", ErrDoubleSpend, first)
	}
	b.spent[tok.Serial] = id
	b.accounts[id] += tok.Denom
	b.redeemed += tok.Denom
	b.audit(id, "deposit", tok.Denom, id)
	return nil
}

// Transfer moves credits between accounts directly (used for escrow
// refunds and fee-free settlement paths that do not need unlinkability).
func (b *Bank) Transfer(from, to AccountID, amt Amount) error {
	if amt <= 0 {
		return ErrBadAmount
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	fb, ok := b.accounts[from]
	if !ok {
		return ErrUnknownAccount
	}
	if _, ok := b.accounts[to]; !ok {
		return ErrUnknownAccount
	}
	if fb < amt {
		return ErrInsufficientFunds
	}
	b.accounts[from] -= amt
	b.accounts[to] += amt
	b.audit(from, "transfer-out", amt, to)
	b.audit(to, "transfer-in", amt, from)
	return nil
}

// TotalBalance returns the sum over all accounts. Together with Float
// (tokens issued but not yet redeemed) it states the conservation
// invariant: TotalBalance + Float is constant across all operations.
func (b *Bank) TotalBalance() Amount {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total Amount
	for _, bal := range b.accounts {
		total += bal
	}
	return total
}

// Float returns the value of tokens issued but not yet redeemed.
func (b *Bank) Float() Amount {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.issued - b.redeemed
}

// Accounts returns all account IDs in ascending order.
func (b *Bank) Accounts() []AccountID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]AccountID, 0, len(b.accounts))
	for id := range b.accounts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SpentCount returns the number of redeemed serials (for reporting).
func (b *Bank) SpentCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.spent)
}
