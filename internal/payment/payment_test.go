package payment

import (
	"errors"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// testBank caches one bank per test binary run: RSA keygen dominates test
// time otherwise.
var (
	bankOnce sync.Once
	shared   *Bank
)

func freshBank(t *testing.T) *Bank {
	t.Helper()
	b, err := NewBank(1024)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sharedBank(t *testing.T) *Bank {
	t.Helper()
	bankOnce.Do(func() {
		b, err := NewBank(1024)
		if err != nil {
			t.Fatal(err)
		}
		shared = b
	})
	return shared
}

func withdrawToken(t *testing.T, b *Bank, from AccountID, denom Amount) Token {
	t.Helper()
	req, err := NewWithdrawalRequest(b.PublicKey(), denom, nil)
	if err != nil {
		t.Fatal(err)
	}
	blindSig, err := b.Withdraw(from, req)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := req.Unblind(blindSig)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

func TestWithdrawDepositRoundTrip(t *testing.T) {
	b := freshBank(t)
	if err := b.OpenAccount(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := b.OpenAccount(2, 0); err != nil {
		t.Fatal(err)
	}
	tok := withdrawToken(t, b, 1, 30)
	if bal, _ := b.Balance(1); bal != 70 {
		t.Fatalf("payer balance %d", bal)
	}
	if f := b.Float(); f != 30 {
		t.Fatalf("float %d", f)
	}
	if err := b.Deposit(2, tok); err != nil {
		t.Fatal(err)
	}
	if bal, _ := b.Balance(2); bal != 30 {
		t.Fatalf("payee balance %d", bal)
	}
	if f := b.Float(); f != 0 {
		t.Fatalf("float after redeem %d", f)
	}
}

func TestConservationInvariant(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 500)
	b.OpenAccount(2, 100)
	b.OpenAccount(3, 0)
	initial := b.TotalBalance() + b.Float()
	tok1 := withdrawToken(t, b, 1, 50)
	tok2 := withdrawToken(t, b, 2, 25)
	if got := b.TotalBalance() + b.Float(); got != initial {
		t.Fatalf("conservation broken after withdraw: %d != %d", got, initial)
	}
	b.Deposit(3, tok1)
	b.Deposit(3, tok2)
	b.Transfer(3, 1, 10)
	if got := b.TotalBalance() + b.Float(); got != initial {
		t.Fatalf("conservation broken after deposits: %d != %d", got, initial)
	}
}

func TestDoubleSpendDetected(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 100)
	b.OpenAccount(2, 0)
	b.OpenAccount(3, 0)
	tok := withdrawToken(t, b, 1, 10)
	if err := b.Deposit(2, tok); err != nil {
		t.Fatal(err)
	}
	err := b.Deposit(3, tok)
	if !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("err = %v, want double spend", err)
	}
	if bal, _ := b.Balance(3); bal != 0 {
		t.Fatal("double spender was credited")
	}
	if b.SpentCount() != 1 {
		t.Fatalf("spent count %d", b.SpentCount())
	}
}

func TestForgedTokenRejected(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 0)
	tok := Token{Denom: 50, Sig: big.NewInt(12345)}
	if err := b.Deposit(1, tok); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
	if tok := (Token{Denom: 50, Sig: nil}); VerifyToken(b.PublicKey(), tok) {
		t.Fatal("nil signature verified")
	}
}

func TestDenominationTamperRejected(t *testing.T) {
	// A valid 10-credit token re-labelled as 100 credits must fail: the
	// denomination is inside the signed digest.
	b := freshBank(t)
	b.OpenAccount(1, 100)
	b.OpenAccount(2, 0)
	tok := withdrawToken(t, b, 1, 10)
	tok.Denom = 100
	if err := b.Deposit(2, tok); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsufficientFunds(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 5)
	req, err := NewWithdrawalRequest(b.PublicKey(), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Withdraw(1, req); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("err = %v", err)
	}
	if bal, _ := b.Balance(1); bal != 5 {
		t.Fatal("failed withdrawal changed balance")
	}
}

func TestUnknownAccountErrors(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 100)
	if _, err := b.Balance(9); !errors.Is(err, ErrUnknownAccount) {
		t.Fatal("Balance on unknown account")
	}
	req, _ := NewWithdrawalRequest(b.PublicKey(), 10, nil)
	if _, err := b.Withdraw(9, req); !errors.Is(err, ErrUnknownAccount) {
		t.Fatal("Withdraw on unknown account")
	}
	tok := withdrawToken(t, b, 1, 10)
	if err := b.Deposit(9, tok); !errors.Is(err, ErrUnknownAccount) {
		t.Fatal("Deposit on unknown account")
	}
	if err := b.Transfer(1, 9, 5); !errors.Is(err, ErrUnknownAccount) {
		t.Fatal("Transfer to unknown account")
	}
}

func TestOpenAccountValidation(t *testing.T) {
	b := freshBank(t)
	if err := b.OpenAccount(1, -5); !errors.Is(err, ErrBadAmount) {
		t.Fatal("negative opening accepted")
	}
	if err := b.OpenAccount(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := b.OpenAccount(1, 10); err == nil {
		t.Fatal("duplicate account accepted")
	}
}

func TestTransfer(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 50)
	b.OpenAccount(2, 0)
	if err := b.Transfer(1, 2, 20); err != nil {
		t.Fatal(err)
	}
	b1, _ := b.Balance(1)
	b2, _ := b.Balance(2)
	if b1 != 30 || b2 != 20 {
		t.Fatalf("balances %d/%d", b1, b2)
	}
	if err := b.Transfer(1, 2, 100); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatal("overdraft allowed")
	}
	if err := b.Transfer(1, 2, 0); !errors.Is(err, ErrBadAmount) {
		t.Fatal("zero transfer allowed")
	}
}

func TestBlindingUnlinkability(t *testing.T) {
	// Two withdrawals of the same denomination produce blinded values that
	// differ (the bank's view), yet both unblind to valid tokens with
	// different serials. The bank cannot equate what it signed with what
	// is later deposited.
	b := sharedBank(t)
	pub := b.PublicKey()
	r1, err := NewWithdrawalRequest(pub, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewWithdrawalRequest(pub, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Blinded().Cmp(r2.Blinded()) == 0 {
		t.Fatal("two blinded withdrawals identical")
	}
	if r1.serial == r2.serial {
		t.Fatal("serial collision")
	}
	// The blinded value must not equal the raw digest (i.e. blinding did
	// something).
	h := tokenDigest(10, r1.serial, pub.N)
	if r1.Blinded().Cmp(h) == 0 {
		t.Fatal("blinding is the identity")
	}
}

func TestWithdrawalRequestValidation(t *testing.T) {
	b := sharedBank(t)
	if _, err := NewWithdrawalRequest(b.PublicKey(), 0, nil); err == nil {
		t.Fatal("zero denomination accepted")
	}
	if _, err := NewWithdrawalRequest(b.PublicKey(), -3, nil); err == nil {
		t.Fatal("negative denomination accepted")
	}
}

func TestAccountsSorted(t *testing.T) {
	b := freshBank(t)
	for _, id := range []AccountID{5, 1, 3} {
		b.OpenAccount(id, 0)
	}
	ids := b.Accounts()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("accounts = %v", ids)
	}
}

// Property: VerifyToken rejects any perturbation of a valid token.
func TestQuickTokenTamperRejected(t *testing.T) {
	b := sharedBank(t)
	b.OpenAccount(7777, 1<<40)
	tok := withdrawToken(t, b, 7777, 10)
	f := func(delta uint8, field uint8) bool {
		mut := tok
		switch field % 3 {
		case 0:
			if delta == 0 {
				return true
			}
			mut.Denom += Amount(delta)
		case 1:
			if delta == 0 {
				return true
			}
			mut.Serial[int(delta)%32] ^= delta
		case 2:
			mut.Sig = new(big.Int).Add(tok.Sig, big.NewInt(int64(delta)+1))
		}
		return !VerifyToken(b.PublicKey(), mut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDeposits(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(0, 10000)
	const workers = 8
	toks := make([]Token, workers)
	for i := range toks {
		b.OpenAccount(AccountID(i+1), 0)
		toks[i] = withdrawToken(t, b, 0, 7)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := b.Deposit(AccountID(i+1), toks[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := b.TotalBalance() + b.Float(); got != 10000 {
		t.Fatalf("conservation under concurrency: %d", got)
	}
}
