package payment

import (
	"errors"
	"fmt"
	"sync"
)

// Escrow realises the paper's commitment semantics (§2.2): when an
// initiator opens a batch it *commits* to pay P_f per forwarding instance
// and P_r in total — the commitment is what lets rational forwarders do
// work before payment. The bank locks an upper-bound amount from the
// initiator's account at batch start; settlement draws from the lock and
// any unused remainder is refunded on close. Forwarders can check
// Committed() before forwarding, so a broke initiator cannot obtain free
// service.
type Escrow struct {
	mu        sync.Mutex
	bank      *Bank
	initiator AccountID
	locked    Amount
	spent     Amount
	closed    bool
}

// escrowAccount is the internal holding account for all escrow locks.
const escrowAccount = AccountID(-1)

// OpenEscrow locks `amount` from the initiator into the bank's escrow
// holding account. amount should upper-bound the batch's worst-case
// payout, e.g. maxConns·maxHops·P_f + P_r.
func (b *Bank) OpenEscrow(initiator AccountID, amount Amount) (*Escrow, error) {
	if amount <= 0 {
		return nil, ErrBadAmount
	}
	b.ensureAccount(escrowAccount)
	if err := b.Transfer(initiator, escrowAccount, amount); err != nil {
		return nil, fmt.Errorf("payment: opening escrow: %w", err)
	}
	return &Escrow{bank: b, initiator: initiator, locked: amount}, nil
}

// Committed returns the amount still locked and payable.
func (e *Escrow) Committed() Amount {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.locked - e.spent
}

// Pay releases amt from the escrow to a forwarder. It fails if the escrow
// is closed or underfunded — the commitment can never be exceeded.
func (e *Escrow) Pay(to AccountID, amt Amount) error {
	if amt <= 0 {
		return ErrBadAmount
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return errors.New("payment: escrow closed")
	}
	if e.spent+amt > e.locked {
		return fmt.Errorf("payment: escrow exhausted (%d of %d spent, %d requested)",
			e.spent, e.locked, amt)
	}
	if err := e.bank.Transfer(escrowAccount, to, amt); err != nil {
		return err
	}
	e.spent += amt
	return nil
}

// Close refunds the unspent remainder to the initiator and seals the
// escrow. Closing twice is an error.
func (e *Escrow) Close() (refund Amount, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, errors.New("payment: escrow already closed")
	}
	e.closed = true
	refund = e.locked - e.spent
	if refund > 0 {
		if err := e.bank.Transfer(escrowAccount, e.initiator, refund); err != nil {
			return 0, err
		}
	}
	return refund, nil
}

// SettleFromEscrow runs the payout rule against an escrow instead of
// direct withdrawals: each valid claim is paid from the locked commitment
// and the remainder is refunded. It returns the payouts and the refund.
// Unlike Settlement.Run's blind-token path, escrow settlement is
// account-visible; deployments wanting unlinkability run the blind path —
// this variant exists for the commitment accounting and for tests of the
// §2.2 "commitment" flow.
func (e *Escrow) SettleFromEscrow(minter *ReceiptMinter, pf, pr Amount, claims []Claim) ([]Payout, Amount, error) {
	if minter == nil {
		return nil, 0, errors.New("payment: nil minter")
	}
	if pf < 0 || pr < 0 {
		return nil, 0, ErrBadAmount
	}
	accepted := make([]Payout, 0, len(claims))
	for _, c := range claims {
		m := minter.CountValid(c.Forwarder, c.Receipts)
		if m > 0 {
			accepted = append(accepted, Payout{Forwarder: c.Forwarder, Forwards: m})
		}
	}
	if len(accepted) > 0 {
		share := pr / Amount(len(accepted))
		for i := range accepted {
			accepted[i].Amount = Amount(accepted[i].Forwards)*pf + share
			if err := e.Pay(accepted[i].Forwarder, accepted[i].Amount); err != nil {
				return accepted[:i], 0, err
			}
		}
	}
	refund, err := e.Close()
	if err != nil {
		return accepted, 0, err
	}
	e.bank.noteSettlement(accepted, countRejected(claims, accepted))
	return accepted, refund, nil
}

// SettleAggregated is SettleFromEscrow over rolled-up chain claims: one
// AggregateClaim per forwarder replaces its m individual receipts, and
// verification is one O(m) chain re-derivation per claim instead of m
// independent MAC checks with a dedup map. A claim whose chain does not
// verify is rejected whole (all-or-nothing — see VerifyAggregate), and
// its entries count as rejected receipts for the §5 cheating signal.
func (e *Escrow) SettleAggregated(minter *ReceiptMinter, pf, pr Amount, claims []AggregateClaim) ([]Payout, Amount, error) {
	if minter == nil {
		return nil, 0, errors.New("payment: nil minter")
	}
	if pf < 0 || pr < 0 {
		return nil, 0, ErrBadAmount
	}
	accepted := make([]Payout, 0, len(claims))
	rejected := 0
	verify := minter.aggregateVerifier()
	for i := range claims {
		m := verify(&claims[i])
		if m > 0 {
			accepted = append(accepted, Payout{Forwarder: claims[i].Forwarder, Forwards: m})
		} else {
			rejected += len(claims[i].Entries)
		}
	}
	if len(accepted) > 0 {
		share := pr / Amount(len(accepted))
		for i := range accepted {
			accepted[i].Amount = Amount(accepted[i].Forwards)*pf + share
			if err := e.Pay(accepted[i].Forwarder, accepted[i].Amount); err != nil {
				return accepted[:i], 0, err
			}
		}
	}
	refund, err := e.Close()
	if err != nil {
		return accepted, 0, err
	}
	e.bank.noteSettlement(accepted, rejected)
	return accepted, refund, nil
}
