package payment

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sort"
)

// Receipt aggregation (the settlement fast path): instead of presenting m
// individual receipts, a forwarder folds the receipts' MACs into one
// running hash chain as they arrive and submits a single AggregateClaim
// per batch — the (conn, hop) coordinates plus the 32-byte chain value.
// The minter re-derives the chain in one O(m) pass: each receipt MAC is
// recomputed with a single reusable HMAC instance (the per-receipt
// hmac.New of the serial path dominates its cost) and folded into one
// streaming SHA-256, so verification needs no dedup map and no per-entry
// allocation, and the claim itself is 16 bytes per entry on the wire
// instead of 56.
//
// The chain is all-or-nothing by construction: a forged, truncated,
// reordered or extended entry list re-derives to a different value, so
// the whole claim is rejected and the forwarder falls back to individual
// receipts. Entries must be strictly increasing in (conn, hop) — the
// canonical order — which makes duplicates unrepresentable and gives the
// wire codec a unique encoding per claim.
//
//	chain = SHA256(tag ‖ be64(forwarder) ‖ MAC₁ ‖ MAC₂ ‖ … ‖ MACₘ)
//
// The (conn, hop) coordinates are not folded directly: each MACᵢ is
// recomputed by the verifier *from the claimed coordinates*, so any
// altered coordinate changes the recomputed MAC and breaks the chain —
// the coordinates are bound transitively, and the fold stream stays at
// 32 bytes per entry (half a SHA-256 block).

// MaxAggEntries bounds one aggregate claim: 1<<16 forwarding instances per
// forwarder per batch is far beyond any batch this repo forms, and the cap
// keeps a hostile count prefix from asking the decoder for megabytes.
const MaxAggEntries = 1 << 16

// aggDomainTag separates the chain hash from every other use of SHA-256
// in the protocol.
const aggDomainTag = "p2panon/aggclaim/v1"

// AggEntry names one forwarding instance inside an aggregate claim.
type AggEntry struct {
	Conn int
	Hop  int
}

// AggregateClaim is a forwarder's rolled-up settlement submission for one
// batch: the claimed (conn, hop) instances in strictly increasing order
// and the receipt-MAC chain over them.
type AggregateClaim struct {
	Forwarder AccountID
	Entries   []AggEntry
	Chain     [32]byte
}

// ClaimChain accumulates a forwarder's receipts into the running chain.
// Receipts must be added in strictly increasing (conn, hop) order — the
// order they are earned in a batch; an out-of-order or duplicate receipt
// is rejected and the caller falls back to a per-receipt Claim.
type ClaimChain struct {
	forwarder AccountID
	h         hash.Hash
	entries   []AggEntry
	lastConn  int
	lastHop   int
	sealed    bool
	scratch   [32]byte // reused fold buffer; keeps Add allocation-free
}

// NewClaimChain starts an empty chain for forwarder f.
func NewClaimChain(f AccountID) *ClaimChain {
	c := &ClaimChain{forwarder: f, h: sha256.New(), lastConn: -1, lastHop: -1}
	seedChain(c.h, f)
	return c
}

func seedChain(h hash.Hash, f AccountID) {
	var buf [8]byte
	h.Write([]byte(aggDomainTag))
	binary.BigEndian.PutUint64(buf[:], uint64(f))
	h.Write(buf[:])
}

// foldEntry writes one receipt MAC into the stream through the caller's
// scratch buffer — one Write per entry, no per-entry allocation (a slice
// of the receipt's own MAC array would escape through the interface call).
func foldEntry(h hash.Hash, scratch *[32]byte, mac []byte) {
	copy(scratch[:], mac)
	h.Write(scratch[:])
}

// Add folds receipt r into the chain. The receipt must name the chain's
// forwarder and advance the (conn, hop) order; nothing about the MAC is
// checked — the forwarder cannot (it does not hold the batch secret), so
// a corrupted receipt surfaces only at settlement, as a rejected claim.
func (c *ClaimChain) Add(r Receipt) error {
	if c.sealed {
		return errors.New("payment: claim chain already sealed")
	}
	if r.Forwarder != c.forwarder {
		return fmt.Errorf("payment: receipt names forwarder %d, chain is for %d", r.Forwarder, c.forwarder)
	}
	if len(c.entries) >= MaxAggEntries {
		return fmt.Errorf("payment: claim chain full (%d entries)", MaxAggEntries)
	}
	if r.Conn < c.lastConn || (r.Conn == c.lastConn && r.Hop <= c.lastHop) {
		return fmt.Errorf("payment: receipt (conn %d, hop %d) out of order after (conn %d, hop %d)",
			r.Conn, r.Hop, c.lastConn, c.lastHop)
	}
	foldEntry(c.h, &c.scratch, r.MAC[:])
	c.entries = append(c.entries, AggEntry{Conn: r.Conn, Hop: r.Hop})
	c.lastConn, c.lastHop = r.Conn, r.Hop
	return nil
}

// Len returns the number of folded receipts.
func (c *ClaimChain) Len() int { return len(c.entries) }

// Claim finalizes the chain and returns the aggregate claim. The chain is
// sealed afterwards: settlement consumes it, further Adds error.
func (c *ClaimChain) Claim() AggregateClaim {
	c.sealed = true
	out := AggregateClaim{Forwarder: c.forwarder, Entries: c.entries}
	c.h.Sum(out.Chain[:0])
	return out
}

// BuildAggregate rolls a receipt pile into an aggregate claim: receipts
// naming other forwarders are dropped, the rest are sorted into canonical
// (conn, hop) order and deduplicated (first MAC wins, like CountValid),
// then folded. This is the settlement-side convenience for callers that
// collected receipts unordered; live forwarders feed a ClaimChain
// directly.
func BuildAggregate(f AccountID, rs []Receipt) AggregateClaim {
	own := make([]Receipt, 0, len(rs))
	for _, r := range rs {
		if r.Forwarder == f {
			own = append(own, r)
		}
	}
	sort.Slice(own, func(i, j int) bool {
		if own[i].Conn != own[j].Conn {
			return own[i].Conn < own[j].Conn
		}
		return own[i].Hop < own[j].Hop
	})
	c := NewClaimChain(f)
	for _, r := range own {
		// Add rejects exactly the duplicates (and the overflow past
		// MaxAggEntries); sorted input cannot otherwise be out of order.
		_ = c.Add(r)
	}
	return c.Claim()
}

// shaDigest is the stdlib SHA-256 digest's real surface: a hash that can
// restore a marshaled mid-state and append its current one.
type shaDigest interface {
	hash.Hash
	encoding.BinaryUnmarshaler
	encoding.BinaryAppender
}

// Marshaled sha256 digest layout: 4-byte magic, the eight state words
// big-endian, the 64-byte chunk buffer, the 8-byte length. The state words
// of a digest that has absorbed exactly whole blocks are the digest value
// itself, so a manually padded final block turns AppendBinary into a
// finalize that costs one copy instead of Sum's whole-struct clone.
const (
	shaStateLen  = 4 + sha256.Size + sha256.BlockSize + 8
	shaStateOff  = 4    // state words start after the magic
	shaPadEnd    = 0x80 // FIPS 180-4: the 1-bit after the message
	innerMsgBits = (sha256.BlockSize + 24) * 8
	outerMsgBits = (sha256.BlockSize + sha256.Size) * 8
)

// macVerifier recomputes receipt MACs from a minter's pad mid-states with
// no per-entry allocation: restore key⊕ipad, compress one pre-padded
// block holding the 24-byte message, read the inner digest out of the
// marshaled state, and repeat with key⊕opad for the outer pass — two
// compressions per MAC, the HMAC arithmetic with all setup hoisted.
type macVerifier struct {
	d          shaDigest
	ipad, opad []byte
	bin        [sha256.BlockSize]byte // padded final block, inner hash
	bout       [sha256.BlockSize]byte // padded final block, outer hash
	st         [shaStateLen]byte
}

func newMACVerifier(ipadState, opadState []byte) (*macVerifier, bool) {
	d, ok := sha256.New().(shaDigest)
	if !ok || len(ipadState) == 0 {
		return nil, false
	}
	v := &macVerifier{d: d, ipad: ipadState, opad: opadState}
	v.bin[24] = shaPadEnd
	binary.BigEndian.PutUint64(v.bin[56:64], innerMsgBits)
	v.bout[sha256.Size] = shaPadEnd
	binary.BigEndian.PutUint64(v.bout[56:64], outerMsgBits)
	return v, true
}

// setForwarder fixes the forwarder field of the MAC message; one verifier
// serves a whole claim batch by re-pointing it per claim.
func (v *macVerifier) setForwarder(f AccountID) {
	binary.BigEndian.PutUint64(v.bin[16:24], uint64(f))
}

// mac computes HMAC(key, be64(conn) ‖ be64(hop) ‖ be64(forwarder)) and
// returns it as a slice into the verifier's state buffer, valid until the
// next call.
func (v *macVerifier) mac(conn, hop int) ([]byte, error) {
	binary.BigEndian.PutUint64(v.bin[0:8], uint64(conn))
	binary.BigEndian.PutUint64(v.bin[8:16], uint64(hop))
	if err := v.d.UnmarshalBinary(v.ipad); err != nil {
		return nil, err
	}
	v.d.Write(v.bin[:]) // exactly one block: compressed directly, unbuffered
	buf, err := v.d.AppendBinary(v.st[:0])
	if err != nil || len(buf) != shaStateLen {
		return nil, errors.New("payment: unexpected sha256 state size")
	}
	copy(v.bout[:sha256.Size], buf[shaStateOff:shaStateOff+sha256.Size])
	if err := v.d.UnmarshalBinary(v.opad); err != nil {
		return nil, err
	}
	v.d.Write(v.bout[:])
	buf, err = v.d.AppendBinary(v.st[:0])
	if err != nil || len(buf) != shaStateLen {
		return nil, errors.New("payment: unexpected sha256 state size")
	}
	return buf[shaStateOff : shaStateOff+sha256.Size], nil
}

// VerifyAggregate re-derives the claim's chain under this minter's secret
// and returns the accepted forwarding count: len(Entries) when the chain
// matches, 0 otherwise (all-or-nothing). Each entry's receipt MAC is
// recomputed by restoring the minter's precomputed key⊕ipad / key⊕opad
// mid-states into one reused digest — the HMAC arithmetic without any
// per-entry (or per-claim) instance setup — and folded into one streaming
// SHA-256, so a claim verifies in O(m) with O(1) allocations.
func (m *ReceiptMinter) VerifyAggregate(c *AggregateClaim) int {
	v, ok := newMACVerifier(m.ipadState, m.opadState)
	if !ok {
		// The minter's construction-time self-check rejected the mid-state
		// path (non-stdlib digest or a changed marshal format): take the
		// plain crypto/hmac route instead.
		return m.verifyAggregateSlow(c)
	}
	return m.verifyAggregateWith(v, sha256.New(), c)
}

// verifyAggregateWith is VerifyAggregate against caller-owned scratch: the
// settlement loops hoist one verifier and one fold digest over a whole
// claim batch instead of rebuilding them per claim. The order pre-check
// runs here too, so it is safe on undecoded hostile input.
func (m *ReceiptMinter) verifyAggregateWith(v *macVerifier, fold hash.Hash, c *AggregateClaim) int {
	n := len(c.Entries)
	if n == 0 || n > MaxAggEntries {
		return 0
	}
	lastConn, lastHop := -1, -1
	for _, e := range c.Entries {
		if e.Conn < lastConn || (e.Conn == lastConn && e.Hop <= lastHop) {
			return 0
		}
		lastConn, lastHop = e.Conn, e.Hop
	}
	v.setForwarder(c.Forwarder)
	fold.Reset()
	seedChain(fold, c.Forwarder)
	for _, e := range c.Entries {
		mac, err := v.mac(e.Conn, e.Hop)
		if err != nil {
			return m.verifyAggregateSlow(c)
		}
		fold.Write(mac)
	}
	var got [32]byte
	fold.Sum(got[:0])
	if !hmac.Equal(got[:], c.Chain[:]) {
		return 0
	}
	return n
}

// aggregateVerifier returns a claim-verification closure with the
// verifier and fold digest hoisted, for loops that check many claims —
// same results as calling VerifyAggregate per claim, minus the per-claim
// setup. The closure is single-goroutine like any hash.Hash.
func (m *ReceiptMinter) aggregateVerifier() func(*AggregateClaim) int {
	v, ok := newMACVerifier(m.ipadState, m.opadState)
	if !ok {
		return m.verifyAggregateSlow
	}
	fold := sha256.New()
	return func(c *AggregateClaim) int {
		return m.verifyAggregateWith(v, fold, c)
	}
}

// verifyAggregateSlow is the reference verification through crypto/hmac,
// kept as the fallback and as the equivalence oracle for tests.
func (m *ReceiptMinter) verifyAggregateSlow(c *AggregateClaim) int {
	n := len(c.Entries)
	if n == 0 || n > MaxAggEntries {
		return 0
	}
	fold := sha256.New()
	seedChain(fold, c.Forwarder)
	hm := hmac.New(sha256.New, m.key)
	var in [24]byte
	binary.BigEndian.PutUint64(in[16:24], uint64(c.Forwarder))
	var mac [32]byte
	lastConn, lastHop := -1, -1
	for _, e := range c.Entries {
		if e.Conn < lastConn || (e.Conn == lastConn && e.Hop <= lastHop) {
			return 0
		}
		lastConn, lastHop = e.Conn, e.Hop
		hm.Reset()
		binary.BigEndian.PutUint64(in[0:8], uint64(e.Conn))
		binary.BigEndian.PutUint64(in[8:16], uint64(e.Hop))
		hm.Write(in[:])
		hm.Sum(mac[:0])
		fold.Write(mac[:])
	}
	var got [32]byte
	fold.Sum(got[:0])
	if !hmac.Equal(got[:], c.Chain[:]) {
		return 0
	}
	return n
}

// RunAggregated is Settlement.Run over rolled-up chain claims: the same
// payout rule (m·P_f + P_r/‖π‖, integer division, remainder to the
// initiator) with one O(m) chain verification per claim. Rejected claims
// count all their entries as rejected receipts.
func (s *Settlement) RunAggregated(claims []AggregateClaim) ([]Payout, error) {
	if s.Bank == nil || s.Minter == nil {
		return nil, errors.New("payment: settlement missing bank or minter")
	}
	if s.Pf < 0 || s.Pr < 0 {
		return nil, ErrBadAmount
	}
	accepted := make([]Payout, 0, len(claims))
	rejected := 0
	verify := s.Minter.aggregateVerifier()
	for i := range claims {
		m := verify(&claims[i])
		if m > 0 {
			accepted = append(accepted, Payout{Forwarder: claims[i].Forwarder, Forwards: m})
		} else {
			rejected += len(claims[i].Entries)
		}
	}
	if len(accepted) == 0 {
		s.Bank.noteSettlement(nil, rejected)
		return nil, nil
	}
	share := s.Pr / Amount(len(accepted))
	for i := range accepted {
		accepted[i].Amount = Amount(accepted[i].Forwards)*s.Pf + share
	}
	for i := range accepted {
		if err := s.payBlind(accepted[i].Forwarder, accepted[i].Amount); err != nil {
			return accepted[:i], fmt.Errorf("payment: paying forwarder %d: %w", accepted[i].Forwarder, err)
		}
	}
	s.Bank.noteSettlement(accepted, rejected)
	return accepted, nil
}
