// Package payment implements the anonymous payment infrastructure the
// paper's incentive mechanism relies on (§2.2, §5): a central bank that
// settles payments from initiators to forwarders *after* a batch of
// recurring connections completes, without being able to link an
// initiator's withdrawals to the forwarders' deposits.
//
// The construction is Chaum's blind-signature e-cash, which the paper's
// lineage (Chaum [8]; micropayment schemes [29, 6]) points to:
//
//   - Withdraw: the client picks a random serial s, blinds
//     H(denom‖s)·r^e mod N with a random factor r, and has the bank sign
//     the blinded value while debiting its account. Unblinding yields a
//     valid bank signature on H(denom‖s) that the bank has never seen.
//   - Spend: a token (denom, s, sig) is handed to a forwarder over the
//     anonymous channel itself.
//   - Deposit: the bank verifies sig^e ≡ H(denom‖s) (mod N), checks the
//     serial against the spent list (double-spend detection), and credits
//     the depositor.
//
// Because the bank signs only blinded values, the (serial, signature) pair
// deposited later is cryptographically unlinkable to any particular
// withdrawal — initiator anonymity survives settlement, which is the
// property the paper's §5 claims for its payment mechanism.
package payment

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Amount is money in integer credits. The paper's benefits (P_f ∈ [50,100])
// are unitless; credits make conservation checks exact.
type Amount int64

// Token is an unspent e-cash note: a serial number and the bank's
// (unblinded) RSA signature over H(denom ‖ serial).
type Token struct {
	Denom  Amount
	Serial [32]byte
	Sig    *big.Int
}

// tokenDigest hashes denom‖serial into an integer modulo n.
func tokenDigest(denom Amount, serial [32]byte, n *big.Int) *big.Int {
	var buf [8 + 32]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(denom))
	copy(buf[8:], serial[:])
	sum := sha256.Sum256(buf[:])
	// A 256-bit digest is far below any RSA modulus in use, so no
	// reduction bias is possible; Mod keeps the types honest.
	return new(big.Int).Mod(new(big.Int).SetBytes(sum[:]), n)
}

// WithdrawalRequest is the client-side state of one blind withdrawal.
type WithdrawalRequest struct {
	denom   Amount
	serial  [32]byte
	r       *big.Int // blinding factor
	blinded *big.Int // H(denom‖serial)·r^e mod N
	pub     *rsa.PublicKey
}

// NewWithdrawalRequest blinds a fresh serial for the given denomination
// under the bank's public key. rng supplies entropy (crypto/rand.Reader in
// production; tests may inject a deterministic reader).
func NewWithdrawalRequest(pub *rsa.PublicKey, denom Amount, rng io.Reader) (*WithdrawalRequest, error) {
	if denom <= 0 {
		return nil, fmt.Errorf("payment: non-positive denomination %d", denom)
	}
	if rng == nil {
		rng = rand.Reader
	}
	req := &WithdrawalRequest{denom: denom, pub: pub}
	if _, err := io.ReadFull(rng, req.serial[:]); err != nil {
		return nil, fmt.Errorf("payment: reading serial entropy: %w", err)
	}
	// Blinding factor r must be invertible mod N; with N = p·q and random
	// r < N this fails only with negligible probability, but retry anyway.
	n := pub.N
	e := big.NewInt(int64(pub.E))
	for {
		r, err := rand.Int(rng, n)
		if err != nil {
			return nil, fmt.Errorf("payment: picking blinding factor: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, n).Cmp(big.NewInt(1)) != 0 {
			continue
		}
		req.r = r
		break
	}
	h := tokenDigest(denom, req.serial, n)
	re := new(big.Int).Exp(req.r, e, n)
	req.blinded = h.Mul(h, re).Mod(h, n)
	return req, nil
}

// Blinded returns the value sent to the bank for signing. It reveals
// nothing about the serial: for any candidate serial there exists a
// blinding factor consistent with it.
func (w *WithdrawalRequest) Blinded() *big.Int { return new(big.Int).Set(w.blinded) }

// Denom returns the requested denomination (the bank must know how much to
// debit; only the serial is hidden).
func (w *WithdrawalRequest) Denom() Amount { return w.denom }

// Unblind turns the bank's signature on the blinded value into a valid
// token: sig = blindSig·r⁻¹ mod N. It verifies the result and fails if the
// bank misbehaved.
func (w *WithdrawalRequest) Unblind(blindSig *big.Int) (Token, error) {
	n := w.pub.N
	rInv := new(big.Int).ModInverse(w.r, n)
	if rInv == nil {
		return Token{}, errors.New("payment: blinding factor not invertible")
	}
	sig := new(big.Int).Mul(blindSig, rInv)
	sig.Mod(sig, n)
	tok := Token{Denom: w.denom, Serial: w.serial, Sig: sig}
	if !VerifyToken(w.pub, tok) {
		return Token{}, errors.New("payment: bank returned an invalid signature")
	}
	return tok, nil
}

// VerifyToken reports whether tok carries a valid bank signature:
// sig^e ≡ H(denom‖serial) (mod N).
func VerifyToken(pub *rsa.PublicKey, tok Token) bool {
	if tok.Sig == nil {
		return false
	}
	e := big.NewInt(int64(pub.E))
	lhs := new(big.Int).Exp(tok.Sig, e, pub.N)
	rhs := tokenDigest(tok.Denom, tok.Serial, pub.N)
	return lhs.Cmp(rhs) == 0
}
