package payment

import (
	"testing"
)

func mintChain(t *testing.T, m *ReceiptMinter, f AccountID, coords ...[2]int) ([]Receipt, AggregateClaim) {
	t.Helper()
	c := NewClaimChain(f)
	rs := make([]Receipt, 0, len(coords))
	for _, co := range coords {
		r := m.Mint(co[0], co[1], f)
		rs = append(rs, r)
		if err := c.Add(r); err != nil {
			t.Fatalf("adding %v: %v", co, err)
		}
	}
	return rs, c.Claim()
}

func TestClaimChainAcceptsCanonicalOrder(t *testing.T) {
	m := minter(t)
	_, claim := mintChain(t, m, 7, [2]int{1, 1}, [2]int{1, 2}, [2]int{2, 1}, [2]int{5, 0})
	if got := m.VerifyAggregate(&claim); got != 4 {
		t.Fatalf("accepted %d of 4", got)
	}
}

func TestClaimChainRejectsDisorder(t *testing.T) {
	m := minter(t)
	c := NewClaimChain(7)
	if err := c.Add(m.Mint(2, 1, 7)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(m.Mint(2, 1, 7)); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := c.Add(m.Mint(1, 9, 7)); err == nil {
		t.Fatal("regressing conn accepted")
	}
	if err := c.Add(m.Mint(2, 0, 7)); err == nil {
		t.Fatal("regressing hop accepted")
	}
	if err := c.Add(m.Mint(9, 9, 8)); err == nil {
		t.Fatal("foreign forwarder accepted")
	}
	if c.Len() != 1 {
		t.Fatalf("len %d after rejections", c.Len())
	}
	c.Claim()
	if err := c.Add(m.Mint(3, 1, 7)); err == nil {
		t.Fatal("add after seal accepted")
	}
}

func TestVerifyAggregateAllOrNothing(t *testing.T) {
	m := minter(t)
	_, claim := mintChain(t, m, 7, [2]int{1, 1}, [2]int{2, 1}, [2]int{3, 1})

	forged := claim
	forged.Chain[0] ^= 1
	if m.VerifyAggregate(&forged) != 0 {
		t.Fatal("forged chain accepted")
	}

	truncated := claim
	truncated.Entries = claim.Entries[:2] // replayed prefix: chain no longer matches
	if m.VerifyAggregate(&truncated) != 0 {
		t.Fatal("truncated entry list accepted")
	}

	extended := claim
	extended.Entries = append(append([]AggEntry(nil), claim.Entries...), AggEntry{Conn: 9, Hop: 9})
	if m.VerifyAggregate(&extended) != 0 {
		t.Fatal("extended entry list accepted")
	}

	disordered := claim
	disordered.Entries = []AggEntry{claim.Entries[1], claim.Entries[0], claim.Entries[2]}
	if m.VerifyAggregate(&disordered) != 0 {
		t.Fatal("disordered entry list accepted")
	}

	empty := AggregateClaim{Forwarder: 7}
	if m.VerifyAggregate(&empty) != 0 {
		t.Fatal("empty claim accepted")
	}

	wrongKey, err := NewReceiptMinter([]byte("some-other-batch-secret"))
	if err != nil {
		t.Fatal(err)
	}
	if wrongKey.VerifyAggregate(&claim) != 0 {
		t.Fatal("claim accepted under wrong batch secret")
	}

	if m.VerifyAggregate(&claim) != 3 {
		t.Fatal("genuine claim no longer accepted")
	}
}

// TestVerifyAggregateFastMatchesSlow pins the mid-state verifier against
// the crypto/hmac reference implementation on genuine, forged and
// long-key claims.
func TestVerifyAggregateFastMatchesSlow(t *testing.T) {
	secrets := [][]byte{
		[]byte("short"),
		[]byte("batch-secret-0123456789abcdef!!"),
		[]byte("a key much longer than the sha256 block size forces the hashed-key path of rfc 2104"),
	}
	for _, secret := range secrets {
		m, err := NewReceiptMinter(secret)
		if err != nil {
			t.Fatal(err)
		}
		_, claim := mintChain(t, m, 7, [2]int{1, 1}, [2]int{2, 3}, [2]int{4, 0})
		forged := claim
		forged.Chain[5] ^= 0x80
		for _, c := range []*AggregateClaim{&claim, &forged} {
			if fast, slow := m.VerifyAggregate(c), m.verifyAggregateSlow(c); fast != slow {
				t.Fatalf("key %q: fast %d, slow %d", secret, fast, slow)
			}
		}
		if m.VerifyAggregate(&claim) != 3 {
			t.Fatalf("key %q: genuine claim rejected", secret)
		}
	}
}

func TestBuildAggregateSortsDedupsAndFilters(t *testing.T) {
	m := minter(t)
	rs := []Receipt{
		m.Mint(3, 1, 7),
		m.Mint(1, 2, 7),
		m.Mint(1, 2, 7), // duplicate
		m.Mint(2, 2, 8), // other forwarder
		m.Mint(1, 1, 7),
	}
	claim := BuildAggregate(7, rs)
	if len(claim.Entries) != 3 {
		t.Fatalf("entries %v", claim.Entries)
	}
	want := []AggEntry{{1, 1}, {1, 2}, {3, 1}}
	for i, e := range claim.Entries {
		if e != want[i] {
			t.Fatalf("entry %d: %v, want %v", i, e, want[i])
		}
	}
	// The aggregate accepts exactly what CountValid counts for the same pile.
	if got, want := m.VerifyAggregate(&claim), m.CountValid(7, rs); got != want {
		t.Fatalf("aggregate %d vs CountValid %d", got, want)
	}
}

// TestAggregatedSettlementMatchesPerReceipt is the equivalence pin: for
// clean claims, the aggregated escrow settlement pays exactly what the
// per-receipt settlement pays.
func TestAggregatedSettlementMatchesPerReceipt(t *testing.T) {
	m := minter(t)
	run := func(aggregated bool) ([]Payout, Amount, *Bank) {
		t.Helper()
		b := freshBank(t)
		for id := AccountID(1); id <= 4; id++ {
			if err := b.OpenAccount(id, 10_000); err != nil {
				t.Fatal(err)
			}
		}
		esc, err := b.OpenEscrow(1, 1000)
		if err != nil {
			t.Fatal(err)
		}
		r2 := []Receipt{m.Mint(1, 1, 2), m.Mint(2, 1, 2), m.Mint(3, 1, 2)}
		r3 := []Receipt{m.Mint(1, 2, 3)}
		var payouts []Payout
		var refund Amount
		if aggregated {
			claims := []AggregateClaim{BuildAggregate(2, r2), BuildAggregate(3, r3)}
			payouts, refund, err = esc.SettleAggregated(m, 10, 90, claims)
		} else {
			claims := []Claim{{Forwarder: 2, Receipts: r2}, {Forwarder: 3, Receipts: r3}}
			payouts, refund, err = esc.SettleFromEscrow(m, 10, 90, claims)
		}
		if err != nil {
			t.Fatal(err)
		}
		return payouts, refund, b
	}
	poA, rA, bA := run(true)
	poS, rS, bS := run(false)
	if rA != rS {
		t.Fatalf("refund %d vs %d", rA, rS)
	}
	if len(poA) != len(poS) {
		t.Fatalf("payouts %v vs %v", poA, poS)
	}
	for i := range poA {
		if poA[i] != poS[i] {
			t.Fatalf("payout %d: %+v vs %+v", i, poA[i], poS[i])
		}
	}
	for id := AccountID(1); id <= 4; id++ {
		ba, _ := bA.Balance(id)
		bs, _ := bS.Balance(id)
		if ba != bs {
			t.Fatalf("account %d: %d vs %d", id, ba, bs)
		}
	}
}

// TestSettleAggregatedRejectsForgeries: a forged chain settles nothing —
// the forwarder gets no payout, the initiator gets the full refund, and
// the rejected entries surface in the cheating counter path (conservation
// still holds).
func TestSettleAggregatedRejectsForgeries(t *testing.T) {
	m := minter(t)
	b := freshBank(t)
	for id := AccountID(1); id <= 3; id++ {
		if err := b.OpenAccount(id, 1000); err != nil {
			t.Fatal(err)
		}
	}
	esc, err := b.OpenEscrow(1, 500)
	if err != nil {
		t.Fatal(err)
	}
	_, genuine := mintChain(t, m, 2, [2]int{1, 1}, [2]int{2, 1})
	forged := genuine
	forged.Forwarder = 3 // claim someone else's chain
	payouts, refund, err := esc.SettleAggregated(m, 10, 100, []AggregateClaim{forged})
	if err != nil {
		t.Fatal(err)
	}
	if len(payouts) != 0 {
		t.Fatalf("forged claim paid: %v", payouts)
	}
	if refund != 500 {
		t.Fatalf("refund %d, want the full lock", refund)
	}
	if bal, _ := b.Balance(3); bal != 1000 {
		t.Fatalf("forger's balance moved to %d", bal)
	}
	if err := b.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateClaimWireRoundTrip(t *testing.T) {
	m := minter(t)
	_, claim := mintChain(t, m, 42, [2]int{1, 1}, [2]int{1, 2}, [2]int{7, 3})
	enc, err := EncodeAggregateClaim(claim)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != AggClaimWireSize(3) {
		t.Fatalf("encoded %d bytes, want %d", len(enc), AggClaimWireSize(3))
	}
	dec, err := DecodeAggregateClaim(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Forwarder != claim.Forwarder || dec.Chain != claim.Chain || len(dec.Entries) != 3 {
		t.Fatalf("round trip changed claim: %+v", dec)
	}
	// The decoded claim still verifies — the wire carries authenticity.
	if m.VerifyAggregate(&dec) != 3 {
		t.Fatal("decoded claim does not verify")
	}
}
