package payment

import (
	"errors"
	"testing"
)

func escrowBank(t *testing.T) *Bank {
	t.Helper()
	b := freshBank(t)
	b.OpenAccount(1, 1000)
	b.OpenAccount(10, 0)
	b.OpenAccount(11, 0)
	return b
}

func TestEscrowLifecycle(t *testing.T) {
	b := escrowBank(t)
	e, err := b.OpenEscrow(1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if bal, _ := b.Balance(1); bal != 700 {
		t.Fatalf("initiator balance %d after lock", bal)
	}
	if e.Committed() != 300 {
		t.Fatalf("committed %d", e.Committed())
	}
	if err := e.Pay(10, 120); err != nil {
		t.Fatal(err)
	}
	if e.Committed() != 180 {
		t.Fatalf("committed %d", e.Committed())
	}
	refund, err := e.Close()
	if err != nil {
		t.Fatal(err)
	}
	if refund != 180 {
		t.Fatalf("refund %d", refund)
	}
	if bal, _ := b.Balance(1); bal != 880 {
		t.Fatalf("initiator balance %d after refund", bal)
	}
	if bal, _ := b.Balance(10); bal != 120 {
		t.Fatalf("forwarder balance %d", bal)
	}
}

func TestEscrowCannotExceedCommitment(t *testing.T) {
	b := escrowBank(t)
	e, _ := b.OpenEscrow(1, 100)
	if err := e.Pay(10, 80); err != nil {
		t.Fatal(err)
	}
	if err := e.Pay(11, 30); err == nil {
		t.Fatal("overdraw allowed")
	}
	if e.Committed() != 20 {
		t.Fatalf("committed %d after failed pay", e.Committed())
	}
}

func TestEscrowClosedRejectsPayments(t *testing.T) {
	b := escrowBank(t)
	e, _ := b.OpenEscrow(1, 100)
	if _, err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Pay(10, 1); err == nil {
		t.Fatal("payment after close")
	}
	if _, err := e.Close(); err == nil {
		t.Fatal("double close")
	}
}

func TestEscrowValidation(t *testing.T) {
	b := escrowBank(t)
	if _, err := b.OpenEscrow(1, 0); !errors.Is(err, ErrBadAmount) {
		t.Fatal("zero escrow accepted")
	}
	if _, err := b.OpenEscrow(1, 5000); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatal("underfunded escrow accepted")
	}
	if _, err := b.OpenEscrow(99, 10); !errors.Is(err, ErrUnknownAccount) {
		t.Fatal("unknown initiator accepted")
	}
	e, _ := b.OpenEscrow(1, 50)
	if err := e.Pay(10, 0); !errors.Is(err, ErrBadAmount) {
		t.Fatal("zero payment accepted")
	}
}

func TestEscrowConservation(t *testing.T) {
	b := escrowBank(t)
	before := b.TotalBalance() + b.Float()
	e, _ := b.OpenEscrow(1, 400)
	e.Pay(10, 100)
	e.Pay(11, 50)
	e.Close()
	after := b.TotalBalance() + b.Float()
	if before != after {
		t.Fatalf("conservation broken: %d -> %d", before, after)
	}
	if err := b.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestSettleFromEscrow(t *testing.T) {
	b := escrowBank(t)
	m := minter(t)
	e, err := b.OpenEscrow(1, 500)
	if err != nil {
		t.Fatal(err)
	}
	claims := []Claim{
		{Forwarder: 10, Receipts: []Receipt{m.Mint(1, 1, 10), m.Mint(2, 1, 10)}},
		{Forwarder: 11, Receipts: []Receipt{m.Mint(1, 2, 11)}},
	}
	payouts, refund, err := e.SettleFromEscrow(m, 50, 100, claims)
	if err != nil {
		t.Fatal(err)
	}
	// ‖π‖=2, share=50: 10 gets 150, 11 gets 100; refund 500-250=250.
	if len(payouts) != 2 || payouts[0].Amount != 150 || payouts[1].Amount != 100 {
		t.Fatalf("payouts %v", payouts)
	}
	if refund != 250 {
		t.Fatalf("refund %d", refund)
	}
	if bal, _ := b.Balance(1); bal != 1000-250 {
		t.Fatalf("initiator net outlay wrong: %d", bal)
	}
}

func TestSettleFromEscrowNoClaims(t *testing.T) {
	b := escrowBank(t)
	m := minter(t)
	e, _ := b.OpenEscrow(1, 100)
	payouts, refund, err := e.SettleFromEscrow(m, 10, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(payouts) != 0 || refund != 100 {
		t.Fatalf("payouts %v refund %d", payouts, refund)
	}
	if bal, _ := b.Balance(1); bal != 1000 {
		t.Fatal("money lost on empty settlement")
	}
}

func TestSettleFromEscrowUnderfundedCommitment(t *testing.T) {
	b := escrowBank(t)
	m := minter(t)
	e, _ := b.OpenEscrow(1, 100) // too small for the claims below
	claims := []Claim{
		{Forwarder: 10, Receipts: []Receipt{m.Mint(1, 1, 10), m.Mint(2, 1, 10)}},
	}
	// m=2, ‖π‖=1: payout 2*50+100 = 200 > 100 locked.
	if _, _, err := e.SettleFromEscrow(m, 50, 100, claims); err == nil {
		t.Fatal("underfunded settlement succeeded")
	}
}
