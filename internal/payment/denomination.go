package payment

import (
	"fmt"
	"io"
)

// SplitDenominations decomposes an amount into power-of-two token
// denominations (largest first). Fixed denominations are what make blind
// e-cash unlinkable in practice: if every token's value were unique, the
// bank could match a withdrawal to its deposit by value alone. It panics
// on non-positive amounts.
func SplitDenominations(amount Amount) []Amount {
	if amount <= 0 {
		panic(fmt.Sprintf("payment: SplitDenominations(%d)", amount))
	}
	var out []Amount
	for bit := Amount(1) << 62; bit > 0; bit >>= 1 {
		if amount&bit != 0 {
			out = append(out, bit)
		}
	}
	return out
}

// WithdrawAmount withdraws `amount` as a set of power-of-two denomination
// tokens. On any failure mid-way the successfully withdrawn tokens are
// returned along with the error (the caller still owns them; the failed
// remainder was never debited).
func (b *Bank) WithdrawAmount(id AccountID, amount Amount, rng io.Reader) ([]Token, error) {
	if amount <= 0 {
		return nil, ErrBadAmount
	}
	var tokens []Token
	for _, denom := range SplitDenominations(amount) {
		req, err := NewWithdrawalRequest(&b.key.PublicKey, denom, rng)
		if err != nil {
			return tokens, err
		}
		blindSig, err := b.Withdraw(id, req)
		if err != nil {
			return tokens, err
		}
		tok, err := req.Unblind(blindSig)
		if err != nil {
			return tokens, err
		}
		tokens = append(tokens, tok)
	}
	return tokens, nil
}

// DepositAll deposits every token, stopping at the first failure and
// reporting how many succeeded.
func (b *Bank) DepositAll(id AccountID, tokens []Token) (int, error) {
	for i, tok := range tokens {
		if err := b.Deposit(id, tok); err != nil {
			return i, err
		}
	}
	return len(tokens), nil
}

// TokensValue sums the denominations of a token set.
func TokensValue(tokens []Token) Amount {
	var total Amount
	for _, t := range tokens {
		total += t.Denom
	}
	return total
}
