package payment

import (
	"testing"

	"p2panon/internal/telemetry"
)

func paymentCounter(snap telemetry.Snapshot, name string, labels map[string]string) int64 {
	for _, c := range snap.Counters {
		if c.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if c.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return c.Value
		}
	}
	return 0
}

func TestDepositCountersClassifyOutcomes(t *testing.T) {
	b := freshBank(t)
	reg := telemetry.NewRegistry()
	b.Instrument(reg)
	b.OpenAccount(1, 100)
	b.OpenAccount(2, 0)
	b.OpenAccount(3, 0)

	tok := withdrawToken(t, b, 1, 10)
	if err := b.Deposit(2, tok); err != nil {
		t.Fatal(err)
	}
	b.Deposit(3, tok)              // double spend
	b.Deposit(2, Token{Denom: 5})  // bad signature
	b.Deposit(99, Token{Denom: 5}) // unknown account

	snap := reg.Snapshot()
	want := map[string]int64{"ok": 1, "double_spend": 1, "bad_signature": 1, "unknown_account": 1}
	for result, n := range want {
		if got := paymentCounter(snap, metricDepositsTotal, map[string]string{"result": result}); got != n {
			t.Fatalf("deposits{result=%s} = %d, want %d", result, got, n)
		}
	}
	if got := paymentCounter(snap, metricCheatsTotal, map[string]string{"kind": "double_spend"}); got != 1 {
		t.Fatalf("cheats{double_spend} = %d, want 1", got)
	}
}

func TestSettlementCountersIncludeRejectedReceipts(t *testing.T) {
	b := freshBank(t)
	reg := telemetry.NewRegistry()
	b.Instrument(reg)
	b.OpenAccount(1, 10000)
	b.OpenAccount(2, 0)
	b.OpenAccount(3, 0)

	minter, err := NewReceiptMinter([]byte("batch-secret"))
	if err != nil {
		t.Fatal(err)
	}
	good := minter.Mint(1, 1, 2)
	forged := Receipt{Conn: 9, Hop: 9, Forwarder: 3} // bad MAC
	s := &Settlement{Bank: b, Minter: minter, Initiator: 1, Pf: 10, Pr: 100}
	payouts, err := s.Run([]Claim{
		{Forwarder: 2, Receipts: []Receipt{good, good}}, // one dup rejected
		{Forwarder: 3, Receipts: []Receipt{forged}},     // forgery rejected
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(payouts) != 1 {
		t.Fatalf("payouts = %+v", payouts)
	}

	snap := reg.Snapshot()
	if got := paymentCounter(snap, metricSettlementsTotal, nil); got != 1 {
		t.Fatalf("settlements = %d, want 1", got)
	}
	if got := paymentCounter(snap, metricPayoutsTotal, nil); got != 1 {
		t.Fatalf("payouts counter = %d, want 1", got)
	}
	if got := paymentCounter(snap, metricSettledCredits, nil); got != int64(payouts[0].Amount) {
		t.Fatalf("settled credits = %d, want %d", got, payouts[0].Amount)
	}
	// Two submitted receipts were discarded: the duplicate and the forgery.
	if got := paymentCounter(snap, metricCheatsTotal, map[string]string{"kind": "rejected_receipt"}); got != 2 {
		t.Fatalf("cheats{rejected_receipt} = %d, want 2", got)
	}
}

func TestEscrowSettlementCounters(t *testing.T) {
	b := freshBank(t)
	reg := telemetry.NewRegistry()
	b.Instrument(reg)
	b.OpenAccount(1, 1000)
	b.OpenAccount(2, 0)

	minter, err := NewReceiptMinter([]byte("batch-secret"))
	if err != nil {
		t.Fatal(err)
	}
	esc, err := b.OpenEscrow(1, 500)
	if err != nil {
		t.Fatal(err)
	}
	r := minter.Mint(1, 1, 2)
	payouts, _, err := esc.SettleFromEscrow(minter, 10, 100, []Claim{{Forwarder: 2, Receipts: []Receipt{r}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(payouts) != 1 {
		t.Fatalf("payouts = %+v", payouts)
	}
	snap := reg.Snapshot()
	if got := paymentCounter(snap, metricSettlementsTotal, nil); got != 1 {
		t.Fatalf("settlements = %d, want 1", got)
	}
}
