package payment

import (
	"errors"

	"p2panon/internal/telemetry"
)

// Payment metric names as exposed on the Prometheus endpoint.
const (
	metricDepositsTotal    = "payment_deposits_total"        // label result: ok|double_spend|bad_signature|unknown_account
	metricSettlementsTotal = "payment_settlements_total"     // batches settled (blind or escrow path)
	metricPayoutsTotal     = "payment_payouts_total"         // forwarders paid
	metricSettledCredits   = "payment_settled_credits_total" // credits moved to forwarders
	metricCheatsTotal      = "payment_cheats_detected_total" // label kind: double_spend|rejected_receipt
)

// bankInstruments is the bank's counter set; all fields are nil (no-op)
// until Bank.Instrument binds them. Settlement and Escrow paths share it
// through their *Bank, so one registry sees the whole payment layer.
type bankInstruments struct {
	depositOK          *telemetry.Counter
	depositDoubleSpend *telemetry.Counter
	depositBadSig      *telemetry.Counter
	depositUnknown     *telemetry.Counter
	settlements        *telemetry.Counter
	payouts            *telemetry.Counter
	settledCredits     *telemetry.Counter
	cheatDoubleSpend   *telemetry.Counter
	cheatRejected      *telemetry.Counter
}

// Instrument binds the bank's payment counters into reg. Safe to call
// before traffic; Deposit, Settlement.Run and Escrow.SettleFromEscrow
// update the counters lock-free from any goroutine.
func (b *Bank) Instrument(reg *telemetry.Registry) {
	reg.Help(metricDepositsTotal, "token deposits by outcome")
	reg.Help(metricSettlementsTotal, "batch settlements executed (blind-token and escrow paths)")
	reg.Help(metricCheatsTotal, "cheating attempts detected: replayed serials and rejected (forged/duplicate/misattributed) receipts")
	b.tele = bankInstruments{
		depositOK:          reg.Counter(metricDepositsTotal, telemetry.Labels{"result": "ok"}),
		depositDoubleSpend: reg.Counter(metricDepositsTotal, telemetry.Labels{"result": "double_spend"}),
		depositBadSig:      reg.Counter(metricDepositsTotal, telemetry.Labels{"result": "bad_signature"}),
		depositUnknown:     reg.Counter(metricDepositsTotal, telemetry.Labels{"result": "unknown_account"}),
		settlements:        reg.Counter(metricSettlementsTotal, nil),
		payouts:            reg.Counter(metricPayoutsTotal, nil),
		settledCredits:     reg.Counter(metricSettledCredits, nil),
		cheatDoubleSpend:   reg.Counter(metricCheatsTotal, telemetry.Labels{"kind": "double_spend"}),
		cheatRejected:      reg.Counter(metricCheatsTotal, telemetry.Labels{"kind": "rejected_receipt"}),
	}
}

// noteDeposit classifies a Deposit outcome into the result counters.
func (b *Bank) noteDeposit(err error) {
	switch {
	case err == nil:
		b.tele.depositOK.Inc()
	case errors.Is(err, ErrDoubleSpend):
		b.tele.depositDoubleSpend.Inc()
		b.tele.cheatDoubleSpend.Inc()
	case errors.Is(err, ErrBadSignature):
		b.tele.depositBadSig.Inc()
	case errors.Is(err, ErrUnknownAccount):
		b.tele.depositUnknown.Inc()
	}
}

// noteSettlement records one executed settlement: the accepted payouts and
// how many submitted receipts were rejected as invalid, duplicate or
// misattributed (the §5 cheating signal).
func (b *Bank) noteSettlement(payouts []Payout, rejectedReceipts int) {
	b.tele.settlements.Inc()
	b.tele.payouts.Add(int64(len(payouts)))
	var credits int64
	for _, p := range payouts {
		credits += int64(p.Amount)
	}
	b.tele.settledCredits.Add(credits)
	b.tele.cheatRejected.Add(int64(rejectedReceipts))
}

// countRejected returns how many of the claims' receipts CountValid
// discarded, given the accepted per-forwarder counts.
func countRejected(claims []Claim, accepted []Payout) int {
	acceptedBy := make(map[AccountID]int, len(accepted))
	for _, p := range accepted {
		acceptedBy[p.Forwarder] = p.Forwards
	}
	rejected := 0
	for _, c := range claims {
		if d := len(c.Receipts) - acceptedBy[c.Forwarder]; d > 0 {
			rejected += d
		}
	}
	return rejected
}
