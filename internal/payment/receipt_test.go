package payment

import (
	"reflect"
	"testing"
	"testing/quick"
)

func minter(t *testing.T) *ReceiptMinter {
	t.Helper()
	m, err := NewReceiptMinter([]byte("batch-secret-0123456789abcdef!!"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReceiptRoundTrip(t *testing.T) {
	m := minter(t)
	r := m.Mint(3, 1, 42)
	if !m.Verify(r) {
		t.Fatal("own receipt does not verify")
	}
	if r.Conn != 3 || r.Hop != 1 || r.Forwarder != 42 {
		t.Fatalf("fields %+v", r)
	}
}

func TestReceiptForgedFieldsRejected(t *testing.T) {
	m := minter(t)
	r := m.Mint(3, 1, 42)
	for _, mut := range []Receipt{
		{Conn: 4, Hop: r.Hop, Forwarder: r.Forwarder, MAC: r.MAC},
		{Conn: r.Conn, Hop: 2, Forwarder: r.Forwarder, MAC: r.MAC},
		{Conn: r.Conn, Hop: r.Hop, Forwarder: 43, MAC: r.MAC},
	} {
		if m.Verify(mut) {
			t.Fatalf("tampered receipt verified: %+v", mut)
		}
	}
}

func TestReceiptWrongKeyRejected(t *testing.T) {
	m1 := minter(t)
	m2, err := NewReceiptMinter([]byte("different-secret"))
	if err != nil {
		t.Fatal(err)
	}
	r := m1.Mint(1, 1, 5)
	if m2.Verify(r) {
		t.Fatal("receipt verified under wrong key")
	}
}

func TestEmptySecretRejected(t *testing.T) {
	if _, err := NewReceiptMinter(nil); err == nil {
		t.Fatal("nil secret accepted")
	}
}

func TestMinterCopiesSecret(t *testing.T) {
	secret := []byte("mutable-secret-material")
	m, err := NewReceiptMinter(secret)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Mint(1, 1, 5)
	secret[0] ^= 0xff // caller mutates their buffer
	if !m.Verify(r) {
		t.Fatal("minter aliased caller's secret")
	}
}

func TestCountValidDeduplicatesAndFilters(t *testing.T) {
	m := minter(t)
	r1 := m.Mint(1, 1, 42)
	r2 := m.Mint(2, 1, 42)
	other := m.Mint(3, 1, 99)                         // names someone else
	forged := Receipt{Conn: 4, Hop: 1, Forwarder: 42} // zero MAC
	claims := []Receipt{r1, r1, r2, other, forged}
	if got := m.CountValid(42, claims); got != 2 {
		t.Fatalf("CountValid = %d, want 2", got)
	}
	if got := m.CountValid(99, claims); got != 1 {
		t.Fatalf("CountValid(99) = %d, want 1", got)
	}
}

func TestSettlementPaysPayoutRule(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 100000) // initiator
	b.OpenAccount(10, 0)
	b.OpenAccount(11, 0)
	m := minter(t)
	// Forwarder 10 forwarded 3 times; 11 twice.
	claims := []Claim{
		{Forwarder: 10, Receipts: []Receipt{m.Mint(1, 1, 10), m.Mint(2, 1, 10), m.Mint(3, 1, 10)}},
		{Forwarder: 11, Receipts: []Receipt{m.Mint(1, 2, 11), m.Mint(2, 2, 11)}},
	}
	s := &Settlement{Bank: b, Minter: m, Initiator: 1, Pf: 50, Pr: 100}
	payouts, err := s.Run(claims)
	if err != nil {
		t.Fatal(err)
	}
	if len(payouts) != 2 {
		t.Fatalf("payouts = %v", payouts)
	}
	// ‖π‖ = 2, share = 50. 10: 3*50+50 = 200. 11: 2*50+50 = 150.
	if payouts[0].Amount != 200 || payouts[1].Amount != 150 {
		t.Fatalf("payouts = %v", payouts)
	}
	b10, _ := b.Balance(10)
	b11, _ := b.Balance(11)
	if b10 != 200 || b11 != 150 {
		t.Fatalf("balances %d/%d", b10, b11)
	}
	bi, _ := b.Balance(1)
	if bi != 100000-350 {
		t.Fatalf("initiator balance %d", bi)
	}
}

func TestSettlementRejectsInflatedClaims(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 100000)
	b.OpenAccount(10, 0)
	m := minter(t)
	real := m.Mint(1, 1, 10)
	// Cheater pads its claim with duplicates and forgeries.
	claims := []Claim{{Forwarder: 10, Receipts: []Receipt{
		real, real, real,
		{Conn: 9, Hop: 9, Forwarder: 10},
	}}}
	s := &Settlement{Bank: b, Minter: m, Initiator: 1, Pf: 50, Pr: 100}
	payouts, err := s.Run(claims)
	if err != nil {
		t.Fatal(err)
	}
	if len(payouts) != 1 || payouts[0].Forwards != 1 {
		t.Fatalf("payouts = %v", payouts)
	}
	// m = 1, ‖π‖ = 1: 50 + 100.
	if payouts[0].Amount != 150 {
		t.Fatalf("amount = %d", payouts[0].Amount)
	}
}

func TestSettlementIgnoresUnentitledClaims(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 1000)
	b.OpenAccount(10, 0)
	b.OpenAccount(11, 0)
	m := minter(t)
	claims := []Claim{
		{Forwarder: 10, Receipts: []Receipt{m.Mint(1, 1, 10)}},
		{Forwarder: 11, Receipts: nil}, // never forwarded
	}
	s := &Settlement{Bank: b, Minter: m, Initiator: 1, Pf: 10, Pr: 100}
	payouts, err := s.Run(claims)
	if err != nil {
		t.Fatal(err)
	}
	if len(payouts) != 1 || payouts[0].Forwarder != 10 {
		t.Fatalf("payouts = %v", payouts)
	}
	// ‖π‖ = 1, so the sole forwarder takes the whole routing benefit.
	if payouts[0].Amount != 110 {
		t.Fatalf("amount = %d", payouts[0].Amount)
	}
}

func TestSettlementEmptyClaims(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 1000)
	m := minter(t)
	s := &Settlement{Bank: b, Minter: m, Initiator: 1, Pf: 10, Pr: 100}
	payouts, err := s.Run(nil)
	if err != nil || payouts != nil {
		t.Fatalf("payouts=%v err=%v", payouts, err)
	}
	if bal, _ := b.Balance(1); bal != 1000 {
		t.Fatal("empty settlement moved money")
	}
}

func TestSettlementConservation(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 100000)
	b.OpenAccount(10, 0)
	b.OpenAccount(11, 0)
	b.OpenAccount(12, 0)
	m := minter(t)
	claims := []Claim{
		{Forwarder: 10, Receipts: []Receipt{m.Mint(1, 1, 10), m.Mint(2, 1, 10)}},
		{Forwarder: 11, Receipts: []Receipt{m.Mint(1, 2, 11)}},
		{Forwarder: 12, Receipts: []Receipt{m.Mint(2, 2, 12)}},
	}
	before := b.TotalBalance() + b.Float()
	s := &Settlement{Bank: b, Minter: m, Initiator: 1, Pf: 7, Pr: 100}
	if _, err := s.Run(claims); err != nil {
		t.Fatal(err)
	}
	after := b.TotalBalance() + b.Float()
	if before != after {
		t.Fatalf("settlement broke conservation: %d -> %d", before, after)
	}
}

func TestSettlementValidation(t *testing.T) {
	m := minter(t)
	s := &Settlement{Minter: m}
	if _, err := s.Run(nil); err == nil {
		t.Fatal("nil bank accepted")
	}
	b := freshBank(t)
	s = &Settlement{Bank: b, Minter: m, Pf: -1}
	if _, err := s.Run(nil); err == nil {
		t.Fatal("negative Pf accepted")
	}
}

// Property: CountValid never exceeds the number of submitted receipts and
// is monotone under receipt addition.
func TestQuickCountValidBounds(t *testing.T) {
	m := minter(t)
	f := func(spec []uint8) bool {
		var rs []Receipt
		for i, s := range spec {
			if s%2 == 0 {
				rs = append(rs, m.Mint(int(s%5), i%3, 42))
			} else {
				rs = append(rs, Receipt{Conn: int(s), Hop: i, Forwarder: 42}) // forged
			}
		}
		n := m.CountValid(42, rs)
		if n > len(rs) {
			return false
		}
		n2 := m.CountValid(42, append(rs, m.Mint(1000, 1000, 42)))
		return n2 >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSettlementBatchVsSerialBalances pins the batched deposit path
// against the historical serial one: the same claims settled on two
// identically configured banks leave identical payouts and identical
// per-account balances, whether the epoch's tokens go through one
// DepositBatch call (the default) or one Deposit per token.
func TestSettlementBatchVsSerialBalances(t *testing.T) {
	run := func(serial bool) ([]Payout, map[AccountID]Amount) {
		t.Helper()
		b := freshBank(t)
		b.OpenAccount(1, 100000)
		for id := AccountID(10); id <= 13; id++ {
			b.OpenAccount(id, 7)
		}
		m := minter(t)
		claims := []Claim{
			{Forwarder: 10, Receipts: []Receipt{m.Mint(1, 1, 10), m.Mint(2, 1, 10), m.Mint(3, 1, 10)}},
			{Forwarder: 11, Receipts: []Receipt{m.Mint(1, 2, 11)}},
			{Forwarder: 12, Receipts: []Receipt{m.Mint(2, 2, 12), m.Mint(3, 2, 12)}},
			{Forwarder: 13}, // nothing valid: unpaid, not in ‖π‖
		}
		s := &Settlement{Bank: b, Minter: m, Initiator: 1, Pf: 35, Pr: 100, SerialDeposits: serial}
		payouts, err := s.Run(claims)
		if err != nil {
			t.Fatal(err)
		}
		bal := make(map[AccountID]Amount)
		for _, id := range []AccountID{1, 10, 11, 12, 13} {
			v, err := b.Balance(id)
			if err != nil {
				t.Fatal(err)
			}
			bal[id] = v
		}
		return payouts, bal
	}
	batchPay, batchBal := run(false)
	serialPay, serialBal := run(true)
	if !reflect.DeepEqual(batchPay, serialPay) {
		t.Fatalf("payouts diverge: batch %v, serial %v", batchPay, serialPay)
	}
	if !reflect.DeepEqual(batchBal, serialBal) {
		t.Fatalf("balances diverge: batch %v, serial %v", batchBal, serialBal)
	}
	if len(batchPay) != 3 {
		t.Fatalf("payouts = %v, want 3 forwarders paid", batchPay)
	}
}
