package payment

import (
	"errors"
	"testing"

	"p2panon/internal/telemetry"
)

// settleFixture builds a bank, a funded initiator, an escrow and a claim
// worth settling.
func settleFixture(t *testing.T, b *Bank, m *ReceiptMinter, batch int) SettleJob {
	t.Helper()
	esc, err := b.OpenEscrow(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	return SettleJob{
		Batch: batch, Escrow: esc, Minter: m, Pf: 10, Pr: 50,
		Claims: []Claim{{Forwarder: 2, Receipts: []Receipt{m.Mint(batch, 1, 2)}}},
	}
}

func TestSettleQueueBackpressure(t *testing.T) {
	b := freshBank(t)
	m := minter(t)
	if err := b.OpenAccount(1, 10_000); err != nil {
		t.Fatal(err)
	}
	if err := b.OpenAccount(2, 0); err != nil {
		t.Fatal(err)
	}

	q := NewSettleQueue(3)
	reg := telemetry.NewRegistry()
	q.Instrument(reg)
	if q.Cap() != 3 {
		t.Fatalf("cap %d", q.Cap())
	}
	total := b.TotalBalance()

	for i := 1; i <= 3; i++ {
		if err := q.Enqueue(settleFixture(t, b, m, i)); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if q.Len() != 3 {
		t.Fatalf("len %d", q.Len())
	}
	// The bound bites: the fourth job is refused, the queue does not grow.
	overflow := settleFixture(t, b, m, 4)
	if err := q.Enqueue(overflow); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow enqueue: %v", err)
	}
	if q.Len() != 3 {
		t.Fatalf("queue grew past its bound: %d", q.Len())
	}

	// While jobs sit in the queue the funds sit in escrow — nothing lost.
	if got := b.TotalBalance(); got != total {
		t.Fatalf("total balance drifted to %d while queued", got)
	}
	if err := b.VerifyConservation(); err != nil {
		t.Fatal(err)
	}

	results := q.Drain()
	if len(results) != 3 {
		t.Fatalf("drained %d jobs", len(results))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if res.Batch != i+1 {
			t.Fatalf("drain order: job %d has batch %d", i, res.Batch)
		}
		if len(res.Payouts) != 1 || res.Payouts[0].Forwarder != 2 {
			t.Fatalf("job %d payouts %v", i, res.Payouts)
		}
	}
	// After the drain frees a slot the refused job goes through.
	if err := q.Enqueue(overflow); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
	if res := q.Drain(); len(res) != 1 || res[0].Err != nil {
		t.Fatalf("drain of retried job: %+v", res)
	}
	if got := b.TotalBalance(); got != total {
		t.Fatalf("total balance %d after settlement, want %d", got, total)
	}
	if err := b.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestSettleQueueCrashMidQueue models the crash window: jobs are enqueued,
// the owner dies before the drain (Close), and no escrowed cent is lost —
// the undrained jobs come back, their funds still locked, and settling
// them later (the escrow outlives its initiator) restores the flow.
func TestSettleQueueCrashMidQueue(t *testing.T) {
	b := freshBank(t)
	m := minter(t)
	if err := b.OpenAccount(1, 10_000); err != nil {
		t.Fatal(err)
	}
	if err := b.OpenAccount(2, 0); err != nil {
		t.Fatal(err)
	}
	total := b.TotalBalance()

	q := NewSettleQueue(4)
	jobs := []SettleJob{settleFixture(t, b, m, 1), settleFixture(t, b, m, 2)}
	for _, j := range jobs {
		if err := q.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}

	undrained := q.Close() // the crash
	if len(undrained) != 2 {
		t.Fatalf("%d undrained jobs", len(undrained))
	}
	if err := q.Enqueue(settleFixture(t, b, m, 3)); err == nil {
		t.Fatal("closed queue accepted a job")
	}
	// Crash lost nothing: both locks still sit in the escrow account.
	if got := b.TotalBalance(); got != total {
		t.Fatalf("total balance %d after crash, want %d", got, total)
	}
	if bal, _ := b.Balance(escrowAccount); bal < 2*100 {
		t.Fatalf("escrow account holds %d, want the two 100-locks", bal)
	}
	if err := b.VerifyConservation(); err != nil {
		t.Fatal(err)
	}

	// Recovery settles the recovered jobs directly against their escrows.
	for _, j := range undrained {
		payouts, _, err := j.Escrow.SettleFromEscrow(j.Minter, j.Pf, j.Pr, j.Claims)
		if err != nil {
			t.Fatal(err)
		}
		if len(payouts) != 1 {
			t.Fatalf("payouts %v", payouts)
		}
	}
	if got := b.TotalBalance(); got != total {
		t.Fatalf("total balance %d after recovery, want %d", got, total)
	}
	if err := b.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestSettleQueueAggregatedJobs(t *testing.T) {
	b := freshBank(t)
	m := minter(t)
	if err := b.OpenAccount(1, 10_000); err != nil {
		t.Fatal(err)
	}
	if err := b.OpenAccount(2, 0); err != nil {
		t.Fatal(err)
	}
	esc, err := b.OpenEscrow(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	claim := BuildAggregate(2, []Receipt{m.Mint(1, 1, 2), m.Mint(2, 1, 2)})
	q := NewSettleQueue(1)
	err = q.Enqueue(SettleJob{
		Batch: 1, Escrow: esc, Minter: m, Pf: 10, Pr: 50,
		AggClaims: []AggregateClaim{claim}, Aggregated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := q.Drain()
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("results %+v", res)
	}
	if len(res[0].Payouts) != 1 || res[0].Payouts[0].Forwards != 2 {
		t.Fatalf("payouts %v", res[0].Payouts)
	}
	if bal, _ := b.Balance(2); bal != 2*10+50 {
		t.Fatalf("forwarder balance %d", bal)
	}
	if err := b.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestSettleQueueBadJob(t *testing.T) {
	q := NewSettleQueue(0) // clamps to 1
	if q.Cap() != 1 {
		t.Fatalf("cap %d", q.Cap())
	}
	if err := q.Enqueue(SettleJob{Batch: 1}); err != nil {
		t.Fatal(err)
	}
	res := q.Drain()
	if len(res) != 1 || res[0].Err == nil {
		t.Fatalf("job without escrow settled: %+v", res)
	}
	if q.Drain() != nil {
		t.Fatal("empty drain returned results")
	}
}
