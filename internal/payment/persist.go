package payment

import (
	"crypto/rsa"
	"encoding/gob"
	"fmt"
	"io"
	"time"
)

// LedgerEntry is one line of an account statement.
type LedgerEntry struct {
	Seq     uint64
	Kind    string // "open", "withdraw", "deposit", "transfer-in", "transfer-out"
	Amount  Amount
	Balance Amount // balance after the entry
	Peer    AccountID
}

// Statement returns an account's ledger entries in order. The ledger is
// recorded only when auditing is enabled (EnableAudit); otherwise it
// returns nil.
func (b *Bank) Statement(id AccountID) []LedgerEntry {
	if !b.auditing.Load() {
		return nil
	}
	b.auditMu.Lock()
	defer b.auditMu.Unlock()
	entries := b.ledger[id]
	if len(entries) == 0 {
		return nil
	}
	out := make([]LedgerEntry, len(entries))
	copy(out, entries)
	return out
}

// EnableAudit switches per-account ledger recording on. Operations before
// the call are not back-filled.
func (b *Bank) EnableAudit() {
	b.auditMu.Lock()
	if b.ledger == nil {
		b.ledger = make(map[AccountID][]LedgerEntry)
	}
	b.auditMu.Unlock()
	b.auditing.Store(true)
}

// audit appends a ledger entry when auditing is on. The caller holds the
// shard lock of the mutated account and passes the post-operation balance
// explicitly (the ledger cannot reach into another shard). auditMu is a
// leaf lock under the shard locks, giving statements one global sequence.
func (b *Bank) audit(id AccountID, kind string, amt, balance Amount, peer AccountID) {
	if !b.auditing.Load() {
		return
	}
	b.auditMu.Lock()
	b.auditSeq++
	b.ledger[id] = append(b.ledger[id], LedgerEntry{
		Seq:     b.auditSeq,
		Kind:    kind,
		Amount:  amt,
		Balance: balance,
		Peer:    peer,
	})
	b.auditMu.Unlock()
}

// bankState is the gob-serialisable snapshot of a bank. The format is
// shard-agnostic — maps are merged on Save and redistributed on Load — so
// snapshots survive shard-count changes between writer and reader.
type bankState struct {
	Key      *rsa.PrivateKey
	Accounts map[AccountID]Amount
	Spent    map[[32]byte]AccountID
	Issued   Amount
	Redeemed Amount
	SavedAt  time.Time
}

// Save serialises the bank's full state (key, accounts, spent list) to w
// with encoding/gob. The snapshot contains the private key: treat the
// output as secret material.
func (b *Bank) Save(w io.Writer) error {
	b.lockAll()
	accounts := make(map[AccountID]Amount)
	for i := range b.shards {
		for id, bal := range b.shards[i].accounts {
			accounts[id] = bal
		}
	}
	st := bankState{
		Key:      b.key,
		Accounts: accounts,
		Issued:   Amount(b.issued.Load()),
		Redeemed: Amount(b.redeemed.Load()),
		SavedAt:  time.Now(),
	}
	b.unlockAll()
	st.Spent = make(map[[32]byte]AccountID)
	for i := range b.spent {
		sp := &b.spent[i]
		sp.mu.Lock()
		for serial, id := range sp.spent {
			st.Spent[serial] = id
		}
		sp.mu.Unlock()
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("payment: saving bank: %w", err)
	}
	return nil
}

// LoadBank restores a bank from a Save snapshot, distributing the state
// over DefaultShards. The restored bank validates its key material before
// use.
func LoadBank(r io.Reader) (*Bank, error) {
	var st bankState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("payment: loading bank: %w", err)
	}
	if st.Key == nil || st.Key.N == nil {
		return nil, fmt.Errorf("payment: snapshot has no key")
	}
	if err := st.Key.Validate(); err != nil {
		return nil, fmt.Errorf("payment: snapshot key invalid: %w", err)
	}
	b := newBankState(DefaultShards)
	b.key = st.Key
	for id, bal := range st.Accounts {
		s := b.shardOf(id)
		s.accounts[id] = bal
		s.dirty = true
	}
	for serial, id := range st.Spent {
		b.spentShardOf(serial).spent[serial] = id
	}
	b.issued.Store(int64(st.Issued))
	b.redeemed.Store(int64(st.Redeemed))
	return b, nil
}

// VerifyConservation recomputes the conservation invariant and returns an
// error if total balances plus outstanding float do not equal opening
// balances plus issued-and-unredeemed value. Because the bank never
// creates money outside OpenAccount, the invariant reduces to checking
// that issued >= redeemed and all balances are non-negative. All shards
// are locked for the duration, so the verdict is over one consistent
// snapshot.
func (b *Bank) VerifyConservation() error {
	b.lockAll()
	defer b.unlockAll()
	if r, i := b.redeemed.Load(), b.issued.Load(); r > i {
		return fmt.Errorf("payment: redeemed %d exceeds issued %d", r, i)
	}
	// Report the lowest offending account so the error is deterministic
	// whatever the map iteration order.
	worst := AccountID(0)
	var worstBal Amount
	found := false
	for i := range b.shards {
		for id, bal := range b.shards[i].accounts {
			if bal < 0 && (!found || id < worst) {
				worst, worstBal, found = id, bal, true
			}
		}
	}
	if found {
		return fmt.Errorf("payment: account %d negative: %d", worst, worstBal)
	}
	return nil
}
