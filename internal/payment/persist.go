package payment

import (
	"crypto/rsa"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"
)

// LedgerEntry is one line of an account statement.
type LedgerEntry struct {
	Seq     uint64
	Kind    string // "open", "withdraw", "deposit", "transfer-in", "transfer-out"
	Amount  Amount
	Balance Amount // balance after the entry
	Peer    AccountID
}

// Statement returns an account's ledger entries in order. The ledger is
// recorded only when auditing is enabled (EnableAudit); otherwise it
// returns nil.
func (b *Bank) Statement(id AccountID) []LedgerEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	entries := b.ledger[id]
	if len(entries) == 0 {
		return nil
	}
	out := make([]LedgerEntry, len(entries))
	copy(out, entries)
	return out
}

// EnableAudit switches per-account ledger recording on. Operations before
// the call are not back-filled.
func (b *Bank) EnableAudit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ledger == nil {
		b.ledger = make(map[AccountID][]LedgerEntry)
	}
}

// audit appends a ledger entry when auditing is on. Caller holds b.mu.
func (b *Bank) audit(id AccountID, kind string, amt Amount, peer AccountID) {
	if b.ledger == nil {
		return
	}
	b.auditSeq++
	b.ledger[id] = append(b.ledger[id], LedgerEntry{
		Seq:     b.auditSeq,
		Kind:    kind,
		Amount:  amt,
		Balance: b.accounts[id],
		Peer:    peer,
	})
}

// bankState is the gob-serialisable snapshot of a bank.
type bankState struct {
	Key      *rsa.PrivateKey
	Accounts map[AccountID]Amount
	Spent    map[[32]byte]AccountID
	Issued   Amount
	Redeemed Amount
	SavedAt  time.Time
}

// Save serialises the bank's full state (key, accounts, spent list) to w
// with encoding/gob. The snapshot contains the private key: treat the
// output as secret material.
func (b *Bank) Save(w io.Writer) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := bankState{
		Key:      b.key,
		Accounts: b.accounts,
		Spent:    b.spent,
		Issued:   b.issued,
		Redeemed: b.redeemed,
		SavedAt:  time.Now(),
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("payment: saving bank: %w", err)
	}
	return nil
}

// LoadBank restores a bank from a Save snapshot. The restored bank
// validates its key material before use.
func LoadBank(r io.Reader) (*Bank, error) {
	var st bankState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("payment: loading bank: %w", err)
	}
	if st.Key == nil || st.Key.N == nil {
		return nil, fmt.Errorf("payment: snapshot has no key")
	}
	if err := st.Key.Validate(); err != nil {
		return nil, fmt.Errorf("payment: snapshot key invalid: %w", err)
	}
	if st.Accounts == nil {
		st.Accounts = make(map[AccountID]Amount)
	}
	if st.Spent == nil {
		st.Spent = make(map[[32]byte]AccountID)
	}
	return &Bank{
		key:      st.Key,
		accounts: st.Accounts,
		spent:    st.Spent,
		issued:   st.Issued,
		redeemed: st.Redeemed,
	}, nil
}

// VerifyConservation recomputes the conservation invariant and returns an
// error if total balances plus outstanding float do not equal opening
// balances plus issued-and-unredeemed value. Because the bank never
// creates money outside OpenAccount, the invariant reduces to checking
// that issued >= redeemed and all balances are non-negative.
func (b *Bank) VerifyConservation() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.redeemed > b.issued {
		return fmt.Errorf("payment: redeemed %d exceeds issued %d", b.redeemed, b.issued)
	}
	ids := make([]AccountID, 0, len(b.accounts))
	for id := range b.accounts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if b.accounts[id] < 0 {
			return fmt.Errorf("payment: account %d negative: %d", id, b.accounts[id])
		}
	}
	return nil
}
