package payment

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSplitDenominationsKnown(t *testing.T) {
	cases := []struct {
		in   Amount
		want []Amount
	}{
		{1, []Amount{1}},
		{2, []Amount{2}},
		{3, []Amount{2, 1}},
		{150, []Amount{128, 16, 4, 2}},
		{1024, []Amount{1024}},
	}
	for _, c := range cases {
		got := SplitDenominations(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Split(%d) = %v", c.in, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Split(%d) = %v", c.in, got)
			}
		}
	}
}

func TestSplitDenominationsPanics(t *testing.T) {
	for _, amt := range []Amount{0, -7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Split(%d) did not panic", amt)
				}
			}()
			SplitDenominations(amt)
		}()
	}
}

// Property: denominations are powers of two, strictly decreasing, and sum
// to the input.
func TestQuickSplitDenominations(t *testing.T) {
	f := func(raw uint32) bool {
		amt := Amount(raw%1_000_000) + 1
		parts := SplitDenominations(amt)
		var sum Amount
		prev := Amount(1) << 62
		for _, p := range parts {
			if p&(p-1) != 0 { // not a power of two
				return false
			}
			if p >= prev && len(parts) > 1 {
				return false
			}
			prev = p
			sum += p
		}
		return sum == amt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWithdrawAmountRoundTrip(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 1000)
	b.OpenAccount(2, 0)
	tokens, err := b.WithdrawAmount(1, 150, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := TokensValue(tokens); got != 150 {
		t.Fatalf("token value %d", got)
	}
	if len(tokens) != 4 { // 128+16+4+2
		t.Fatalf("token count %d", len(tokens))
	}
	if bal, _ := b.Balance(1); bal != 850 {
		t.Fatalf("payer balance %d", bal)
	}
	n, err := b.DepositAll(2, tokens)
	if err != nil || n != 4 {
		t.Fatalf("deposited %d, err %v", n, err)
	}
	if bal, _ := b.Balance(2); bal != 150 {
		t.Fatalf("payee balance %d", bal)
	}
	if b.Float() != 0 {
		t.Fatalf("float %d", b.Float())
	}
}

func TestWithdrawAmountInsufficientKeepsPartial(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 130) // can afford the 128 token but not the rest of 150
	tokens, err := b.WithdrawAmount(1, 150, nil)
	if !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("err = %v", err)
	}
	// The 128 token was withdrawn before the failure; caller keeps it.
	if got := TokensValue(tokens); got != 128 {
		t.Fatalf("partial tokens %d", got)
	}
	if bal, _ := b.Balance(1); bal != 2 {
		t.Fatalf("balance %d", bal)
	}
	// Conservation still holds: 2 in account + 128 float = 130.
	if got := b.TotalBalance() + b.Float(); got != 130 {
		t.Fatalf("conservation %d", got)
	}
}

func TestDepositAllStopsAtDoubleSpend(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 100)
	b.OpenAccount(2, 0)
	tokens, err := b.WithdrawAmount(1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.DepositAll(2, tokens); err != nil {
		t.Fatal(err)
	}
	n, err := b.DepositAll(2, tokens) // replay
	if !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("err = %v", err)
	}
	if n != 0 {
		t.Fatalf("replayed %d tokens", n)
	}
}

func TestWithdrawAmountValidation(t *testing.T) {
	b := freshBank(t)
	b.OpenAccount(1, 100)
	if _, err := b.WithdrawAmount(1, 0, nil); !errors.Is(err, ErrBadAmount) {
		t.Fatal("zero amount accepted")
	}
	if _, err := b.WithdrawAmount(1, -5, nil); !errors.Is(err, ErrBadAmount) {
		t.Fatal("negative amount accepted")
	}
}
