package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind names a connection-lifecycle event.
type EventKind string

// The connection lifecycle the transport records: a connection is
// launched, forwarded hop by hop, possibly NACKed (mid-path departure or
// contract rejection) and reformed, and finally delivered or failed;
// settled marks the post-batch payment event.
const (
	KindLaunch         EventKind = "launch"
	KindHopForward     EventKind = "hop-forward"
	KindContractReject EventKind = "contract-reject"
	KindNack           EventKind = "nack"
	KindReformation    EventKind = "reformation"
	KindDelivered      EventKind = "delivered"
	KindFailed         EventKind = "failed"
	KindSettled        EventKind = "settled"
	// KindTimeout marks an attempt terminated by its deadline rather than a
	// NACK; KindFault marks a fault-injection harness applying a scheduled
	// fault (see internal/faultsim).
	KindTimeout EventKind = "timeout"
	KindFault   EventKind = "fault"
)

// Event is one structured trace record. Node is the acting peer (the
// forwarder for hop events, the initiator for connection-level events)
// and Hop its path position where meaningful (0 = initiator).
type Event struct {
	Time   time.Time `json:"t"`
	Kind   EventKind `json:"kind"`
	Batch  int       `json:"batch"`
	Conn   int       `json:"conn"`
	Node   int       `json:"node"`
	Hop    int       `json:"hop,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Tracer records events into a bounded in-memory ring: when the ring is
// full the oldest events are overwritten, so a long-lived process keeps
// the most recent window at fixed memory cost. All methods are safe for
// concurrent use and nil-safe (a nil *Tracer drops everything), so call
// sites need no enabled-checks.
//
// Writers share the lock (RLock) and claim distinct slots with one atomic
// add, so concurrent peer goroutines never serialise against each other on
// the hot path; readers (Events and the exporters) take the lock
// exclusively, which drains all in-flight writers first and therefore
// observes only fully written events. Two writers can claim the same slot
// only when the ring wraps past a stalled writer (indices a full capacity
// apart); the per-slot spinlock serialises that rare collision so the ring
// is race-free at any capacity.
type Tracer struct {
	mu  sync.RWMutex
	buf []slot        // fixed length == capacity
	pos atomic.Uint64 // events ever recorded; slot = (pos-1) mod cap
}

type slot struct {
	lock atomic.Uint32 // 0 = free, 1 = writer inside
	ev   Event
}

// NewTracer creates a tracer holding the most recent `capacity` events.
// It panics if capacity < 1.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		panic("telemetry: NewTracer capacity < 1")
	}
	return &Tracer{buf: make([]slot, capacity)}
}

// Record appends ev to the ring, evicting the oldest event when full. A
// zero Time is stamped with the current wall clock. Nil-safe.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	t.mu.RLock()
	i := t.pos.Add(1) - 1
	s := &t.buf[i%uint64(len(t.buf))]
	for !s.lock.CompareAndSwap(0, 1) {
	}
	s.ev = ev
	s.lock.Store(0)
	t.mu.RUnlock()
}

// Events returns the retained events oldest-first. Nil-safe (returns nil).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.pos.Load()
	n := uint64(len(t.buf))
	count, start := total, uint64(0)
	if total > n {
		count, start = n, total%n
	}
	out := make([]Event, 0, count)
	for k := uint64(0); k < count; k++ {
		out = append(out, t.buf[(start+k)%n].ev)
	}
	return out
}

// Total returns how many events were ever recorded. Nil-safe.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.pos.Load()
}

// Dropped returns how many events the ring has evicted. Nil-safe.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	total := t.pos.Load()
	if total <= uint64(len(t.buf)) {
		return 0
	}
	return total - uint64(len(t.buf))
}

// WriteJSONL writes the retained events as one JSON object per line,
// oldest first. Nil-safe (writes nothing).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpJSONL writes the retained events to the named file (truncating).
func (t *Tracer) DumpJSONL(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
