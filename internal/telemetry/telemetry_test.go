package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", nil)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", nil)
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax = %d, want 9", got)
	}
	c.Reset()
	g.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("reset left c=%d g=%d", c.Value(), g.Value())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var r *Registry
	c.Inc()
	c.Add(3)
	c.Reset()
	g.Set(1)
	g.SetMax(2)
	g.Add(1)
	g.Reset()
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.Reset()
	tr.Record(Event{Kind: KindLaunch})
	r.Reset()
	r.Help("x", "y")
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 || tr.Total() != 0 {
		t.Fatal("nil instruments recorded something")
	}
	if r.Counter("x", nil) != nil || r.Gauge("x", nil) != nil || r.Histogram("x", []float64{1}, nil) != nil {
		t.Fatal("nil registry returned a non-nil instrument")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", Labels{"result": "ok"})
	b := r.Counter("x_total", Labels{"result": "ok"})
	if a != b {
		t.Fatal("same (name, labels) produced distinct counters")
	}
	other := r.Counter("x_total", Labels{"result": "fail"})
	if a == other {
		t.Fatal("different labels shared one counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", Labels{"result": "ok"})
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram(LogBuckets(1, 2, 4)) // bounds 1 2 4 8
	for _, v := range []float64{0.5, 1, 1.5, 3, 8, 9, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1: {0.5, 1}; le=2: {1.5}; le=4: {3}; le=8: {8}; +Inf: {9}. NaN dropped.
	want := []int64{2, 1, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if got := s.Sum; math.Abs(got-23) > 1e-9 {
		t.Fatalf("sum = %g, want 23", got)
	}
	if m := s.Mean(); math.Abs(m-23.0/6) > 1e-9 {
		t.Fatalf("mean = %g", m)
	}
	if q := s.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %g, want 2", q)
	}
	if q := s.Quantile(1); q != 8 {
		t.Fatalf("p100 = %g, want largest finite bound 8", q)
	}
}

func TestHistogramMergeDelta(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	a := h.Snapshot()
	h.Observe(50)
	b := h.Snapshot()
	d := b.Delta(a)
	if d.Count != 1 || d.Counts[2] != 1 || d.Sum != 50 {
		t.Fatalf("delta = %+v", d)
	}
	m := a.Merge(d)
	if m.Count != b.Count || m.Sum != b.Sum {
		t.Fatalf("merge(a, delta) = %+v, want %+v", m, b)
	}
	var empty HistogramSnapshot
	if got := empty.Merge(a); got.Count != a.Count {
		t.Fatal("merge with empty lost data")
	}
	if got := a.Delta(empty); got.Count != a.Count {
		t.Fatal("delta against empty lost data")
	}
	if !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty snapshot stats should be NaN")
	}
}

// TestConcurrentUpdates hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this is the lock-cheapness proof,
// and the final totals prove no increment is lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", nil)
	g := r.Gauge("depth", nil)
	h := r.Histogram("lat", LogBuckets(1e-6, 10, 6), nil)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(w*perWorker + i))
				h.Observe(float64(i%10) * 1e-4)
			}
		}(w)
	}
	// Concurrent readers must be safe too.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = c.Value()
				_ = h.Snapshot()
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker-1 {
		t.Fatalf("gauge high-water = %d, want %d", got, workers*perWorker-1)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketSum int64
	for _, n := range s.Counts {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

// TestPrometheusGolden locks the exposition format: counters and gauges
// as single samples, histograms as cumulative buckets with le labels
// plus _sum/_count, families sorted by name, HELP/TYPE comments.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Help("rpc_latency_seconds", "end-to-end connect latency")
	r.Counter("msgs_total", Labels{"kind": "sent"}).Add(12)
	r.Counter("msgs_total", Labels{"kind": "dropped"}).Add(3)
	r.Gauge("inbox_high_water", nil).Set(9)
	h := r.Histogram("rpc_latency_seconds", []float64{0.001, 0.01}, nil)
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE inbox_high_water gauge
inbox_high_water 9
# TYPE msgs_total counter
msgs_total{kind="dropped"} 3
msgs_total{kind="sent"} 12
# HELP rpc_latency_seconds end-to-end connect latency
# TYPE rpc_latency_seconds histogram
rpc_latency_seconds_bucket{le="0.001"} 1
rpc_latency_seconds_bucket{le="0.01"} 2
rpc_latency_seconds_bucket{le="+Inf"} 3
rpc_latency_seconds_sum 5.0025
rpc_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryResetAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", nil).Add(5)
	r.Histogram("b", []float64{1}, nil).Observe(0.5)
	r.Reset()
	snap := r.Snapshot()
	if snap.Counters[0].Value != 0 || snap.Histograms[0].Count != 0 {
		t.Fatalf("reset left %+v", snap)
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"a_total"`) {
		t.Fatalf("JSON snapshot missing series: %s", b.String())
	}
}

func TestBucketHelpers(t *testing.T) {
	lb := LogBuckets(2, 2, 3)
	if lb[0] != 2 || lb[1] != 4 || lb[2] != 8 {
		t.Fatalf("LogBuckets = %v", lb)
	}
	lin := LinearBuckets(1, 1, 3)
	if lin[0] != 1 || lin[1] != 2 || lin[2] != 3 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	for _, fn := range []func(){
		func() { LogBuckets(0, 2, 3) },
		func() { LogBuckets(1, 1, 3) },
		func() { LinearBuckets(0, 0, 3) },
		func() { NewTracer(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
