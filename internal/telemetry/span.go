package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
)

// SpanKind names a node in the causal tree of one traced connection
// batch: the batch root, per-attempt launches, forwarder hops, the
// responder's accept, the initiator-side terminal outcomes, and
// post-batch settlement.
type SpanKind string

const (
	SpanBatch   SpanKind = "batch"   // trace root: one (batch, I, R) pair
	SpanLaunch  SpanKind = "launch"  // one connection attempt leaves I
	SpanHop     SpanKind = "hop"     // a forwarder relays the message
	SpanRespond SpanKind = "respond" // the message reaches R
	SpanDeliver SpanKind = "deliver" // R's confirmation reaches I
	SpanNack    SpanKind = "nack"    // a node on the path refuses/fails
	SpanTimeout SpanKind = "timeout" // an attempt dies by deadline
	SpanReform  SpanKind = "reform"  // I abandons the attempt and retries
	SpanFail    SpanKind = "fail"    // I gives the connection up for good
	SpanSettle  SpanKind = "settle"  // a forwarder-set member is paid
)

// kindRank orders kinds causally for the canonical span log: roots
// first, then launches, the forward path, terminals, settlement.
func kindRank(k SpanKind) int {
	switch k {
	case SpanBatch:
		return 0
	case SpanLaunch:
		return 1
	case SpanHop:
		return 2
	case SpanRespond:
		return 3
	case SpanDeliver:
		return 4
	case SpanNack:
		return 5
	case SpanTimeout:
		return 6
	case SpanReform:
		return 7
	case SpanFail:
		return 8
	case SpanSettle:
		return 9
	default:
		return 100
	}
}

// SpanID is a 64-bit span or trace identifier, rendered as 16 hex
// digits in JSON so logs diff cleanly and IDs survive a round-trip
// through any JSON tooling (64-bit ints do not, in general).
type SpanID uint64

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the id as a quoted hex string.
func (id SpanID) MarshalJSON() ([]byte, error) { return []byte(`"` + id.String() + `"`), nil }

// UnmarshalJSON parses the quoted hex form.
func (id *SpanID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("telemetry: bad span id %q: %w", s, err)
	}
	*id = SpanID(v)
	return nil
}

// FNV-1a, the hash behind every id derivation. Spans are identified by
// *causal coordinates*, never by arrival sequence, so concurrent
// backends produce the same ids no matter how goroutines interleave.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvInt(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// NewTraceID derives the trace id for one (batch, initiator, responder)
// pair under a seed. The same seeded workload therefore yields the same
// trace ids on every backend and every run.
func NewTraceID(seed int64, batch, initiator, responder int) SpanID {
	h := uint64(fnvOffset)
	h = fnvString(h, "trace")
	h = fnvInt(h, uint64(seed))
	h = fnvInt(h, uint64(batch))
	h = fnvInt(h, uint64(initiator))
	h = fnvInt(h, uint64(responder))
	return SpanID(h)
}

// NewSpanID derives a span id from its parent and local causal
// coordinates. Ids chain: each hop hashes the previous hop's id, so a
// receiver can mint its own span from nothing but the parent id carried
// in the message plus what it knows locally. Attempt is the per-conn
// attempt ordinal where the emitter knows it (initiator-side spans) and
// 0 elsewhere.
func NewSpanID(parent SpanID, kind SpanKind, conn, attempt, hop, node int) SpanID {
	h := uint64(fnvOffset)
	h = fnvInt(h, uint64(parent))
	h = fnvString(h, string(kind))
	h = fnvInt(h, uint64(conn))
	h = fnvInt(h, uint64(attempt))
	h = fnvInt(h, uint64(hop))
	h = fnvInt(h, uint64(node))
	return SpanID(h)
}

// Span is one node of a causal trace tree. Parent is zero only on batch
// roots. TimeMicros is microseconds since the epoch the recorder's clock
// defines (virtual seconds for faultsim, wall clock for live runs) and
// is zero when the recorder has no clock — the canonical, byte-
// comparable configuration.
type Span struct {
	Trace      SpanID   `json:"trace"`
	ID         SpanID   `json:"span"`
	Parent     SpanID   `json:"parent,omitempty"`
	Kind       SpanKind `json:"kind"`
	Batch      int      `json:"batch"`
	Conn       int      `json:"conn"`
	Attempt    int      `json:"attempt,omitempty"`
	Hop        int      `json:"hop,omitempty"`
	Node       int      `json:"node"`
	TimeMicros int64    `json:"us,omitempty"`
	Detail     string   `json:"detail,omitempty"`
}

// SpanRecorder collects spans up to a fixed capacity, deduplicating by
// id: re-recording a span (a batch root minted lazily by several
// connections, a duplicated frame under fault injection) is a no-op, so
// emitters never coordinate. All methods are nil-safe and safe for
// concurrent use.
//
// The canonical export (Spans, WriteJSONL) sorts by causal coordinates,
// not arrival order, so two backends running the same seeded workload
// produce byte-identical logs regardless of goroutine interleaving —
// the property internal/conformance pins.
type SpanRecorder struct {
	mu       sync.Mutex
	capacity int
	spans    []Span
	seen     map[SpanID]struct{}
	dropped  uint64
	seed     int64
	clock    func() int64 // micros; nil = no timestamps
}

// NewSpanRecorder returns a recorder retaining up to capacity distinct
// spans; further spans are counted as dropped. It panics if capacity < 1.
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity < 1 {
		panic("telemetry: NewSpanRecorder capacity < 1")
	}
	return &SpanRecorder{capacity: capacity, seen: make(map[SpanID]struct{})}
}

// SetSeed fixes the seed TraceID folds into every trace id. Nil-safe.
func (r *SpanRecorder) SetSeed(seed int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seed = seed
	r.mu.Unlock()
}

// SetClock enables timestamps: fn returns microseconds since the
// caller's epoch and stamps every span recorded with a zero TimeMicros.
// Leave unset for canonical byte-comparable logs. Nil-safe.
func (r *SpanRecorder) SetClock(fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = fn
	r.mu.Unlock()
}

// TraceID derives the trace id for (batch, initiator, responder) under
// the recorder's seed. A nil recorder returns 0.
func (r *SpanRecorder) TraceID(batch, initiator, responder int) SpanID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	seed := r.seed
	r.mu.Unlock()
	return NewTraceID(seed, batch, initiator, responder)
}

// Record stores s unless its id was already recorded or the recorder is
// full. Nil-safe.
func (r *SpanRecorder) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.seen[s.ID]; dup {
		return
	}
	if len(r.spans) >= r.capacity {
		r.dropped++
		return
	}
	if s.TimeMicros == 0 && r.clock != nil {
		s.TimeMicros = r.clock()
	}
	r.seen[s.ID] = struct{}{}
	r.spans = append(r.spans, s)
}

// Total returns how many distinct spans are retained. Nil-safe.
func (r *SpanRecorder) Total() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped returns how many spans the capacity bound rejected. Nil-safe.
func (r *SpanRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Spans returns a canonically ordered copy of the retained spans:
// sorted by (trace, batch, conn, attempt, kind rank, hop, node, detail,
// id) — a total order over causal coordinates, independent of the order
// spans arrived in. Nil-safe (returns nil).
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	SortSpans(out)
	return out
}

// SortSpans orders spans canonically in place: by (trace, batch, conn,
// attempt, kind rank, hop, node, detail, id) — a total order over causal
// coordinates, independent of arrival order or which process recorded a
// span. It is the comparator behind Spans and MergeSpans.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Batch != b.Batch {
			return a.Batch < b.Batch
		}
		if a.Conn != b.Conn {
			return a.Conn < b.Conn
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		if ra, rb := kindRank(a.Kind), kindRank(b.Kind); ra != rb {
			return ra < rb
		}
		if a.Hop != b.Hop {
			return a.Hop < b.Hop
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		return a.ID < b.ID
	})
}

// MergeSpans combines per-process span logs into one canonically ordered
// log, deduplicating by span id — the cross-process analogue of a single
// SpanRecorder. Every process on a connection's path records the spans it
// witnessed (a frame's trace context lets two processes mint the same
// id), so the union with id-dedup reconstructs the causal tree exactly
// once, and the canonical sort makes the merged artifact byte-identical
// across runs of the same seeded workload regardless of which process
// recorded which span first. Returns the merged log and how many
// duplicate records were collapsed.
func MergeSpans(logs ...[]Span) ([]Span, int) {
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	seen := make(map[SpanID]struct{}, total)
	merged := make([]Span, 0, total)
	dups := 0
	for _, l := range logs {
		for _, s := range l {
			if _, dup := seen[s.ID]; dup {
				dups++
				continue
			}
			seen[s.ID] = struct{}{}
			merged = append(merged, s)
		}
	}
	SortSpans(merged)
	return merged, dups
}

// WriteSpansJSONL writes spans in the given order, one JSON object per
// line — the same wire format WriteJSONL and ReadSpans use.
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL writes the canonical span log, one JSON object per line.
// Nil-safe (writes nothing).
func (r *SpanRecorder) WriteJSONL(w io.Writer) error {
	return WriteSpansJSONL(w, r.Spans())
}

// DumpJSONL writes the canonical span log to the named file (truncating).
func (r *SpanRecorder) DumpJSONL(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSpans parses a JSONL span log (the WriteJSONL format) back into
// spans, in file order. Blank lines are skipped.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("telemetry: span log line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
