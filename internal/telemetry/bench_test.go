package telemetry

import (
	"testing"
)

// The instrument micro-benchmarks bound the per-event cost the transport
// hot path pays; DESIGN.md §3b quotes them next to the end-to-end
// instrumented-vs-bare transport benchmark.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("x_total", nil)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterAddNil(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("lat", LogBuckets(1e-6, 2, 20), nil)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-5)
			i++
		}
	})
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(4096)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Record(Event{Kind: KindHopForward, Batch: 1, Conn: 1, Node: 2, Hop: 1})
		}
	})
}
