package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"runtime/metrics"
	"sort"
	"sync"
	"time"
)

// The simulation-loop phase taxonomy. Every instrumented stage of a
// batch run reports under one of these names, so phase breakdowns from
// benchmarks, live runs and the JSON report all speak the same
// vocabulary. Brackets do not subtract nested time: overlay.candidates
// runs inside route.walk, so the walk's total includes it — every other
// pair of phases is disjoint.
const (
	PhaseSolveRows         = "solve.rows"         // sparse CSR row build (scorer prefetch + fill)
	PhaseSolveInduction    = "solve.induction"    // backward-induction stage sweeps
	PhaseSolveIncremental  = "solve.incremental"  // warm re-solve: journal drain, row refresh, frontier sweeps
	PhaseProbeTick         = "probe.tick"         // probe estimator TickAll rounds
	PhaseOverlayCandidates = "overlay.candidates" // per-hop neighbor candidate gathering
	PhaseRouteWalk         = "route.walk"         // per-connection forwarding walk
	PhaseEscrowSettle      = "escrow.settle"      // post-batch escrow settlement
)

// allocSamples returns a fresh runtime/metrics sample set for the two
// monotonic allocation counters a phase delta subtracts.
func allocSamples() []metrics.Sample {
	return []metrics.Sample{
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/heap/allocs:objects"},
	}
}

// PhaseProfiler accumulates wall time and heap-allocation deltas per
// named phase. Start/End pairs bracket a stage; the profiler is nil-safe
// throughout, so instrumented code pays one branch when profiling is
// off. Allocation deltas come from the process-global monotonic
// /gc/heap/allocs counters (runtime/metrics — cheap to read, unlike
// ReadMemStats), so a phase that shards work across goroutines is
// charged for its workers too, which is exactly the attribution a
// phase breakdown wants. Overlapping phases on concurrent goroutines
// double-charge the overlap; the simulation loop runs its phases
// sequentially, so in practice deltas are exact.
type PhaseProfiler struct {
	mu     sync.Mutex
	phases map[string]*phaseTotals
	reg    *Registry
	hists  map[string]*Histogram
}

type phaseTotals struct {
	count int64
	ns    int64
	bytes int64
	objs  int64
}

// NewPhaseProfiler returns an empty profiler.
func NewPhaseProfiler() *PhaseProfiler {
	return &PhaseProfiler{phases: make(map[string]*phaseTotals)}
}

// Instrument mirrors every phase's duration into reg as the
// sim_phase_seconds{phase=...} histogram family. Nil-safe on both
// receiver and registry.
func (p *PhaseProfiler) Instrument(reg *Registry) {
	if p == nil || reg == nil {
		return
	}
	reg.Help("sim_phase_seconds", "Wall time per simulation phase.")
	p.mu.Lock()
	p.reg = reg
	p.hists = make(map[string]*Histogram)
	p.mu.Unlock()
}

// PhaseSpan is one in-flight Start/End bracket. The zero value (from a
// nil profiler) ends as a no-op.
type PhaseSpan struct {
	p       *PhaseProfiler
	phase   string
	start   time.Time
	samples []metrics.Sample
}

// Start opens a bracket for phase. Nil-safe: a nil profiler returns a
// no-op span, costing only the nil check.
func (p *PhaseProfiler) Start(phase string) PhaseSpan {
	if p == nil {
		return PhaseSpan{}
	}
	s := PhaseSpan{p: p, phase: phase, samples: allocSamples()}
	metrics.Read(s.samples)
	s.start = time.Now()
	return s
}

// StartTimer opens a time-only bracket: no allocation sampling, so the
// per-bracket overhead is two clock reads. For fine-grained hot sites
// (per-hop candidate gathering) where two runtime/metrics reads would
// outweigh the phase body; such phases report zero Bytes/Objects.
func (p *PhaseProfiler) StartTimer(phase string) PhaseSpan {
	if p == nil {
		return PhaseSpan{}
	}
	return PhaseSpan{p: p, phase: phase, start: time.Now()}
}

// End closes the bracket, charging elapsed time and allocation deltas
// to the span's phase. Safe on the zero PhaseSpan.
func (s PhaseSpan) End() {
	if s.p == nil {
		return
	}
	ns := time.Since(s.start).Nanoseconds()
	var bytes, objs int64
	if s.samples != nil {
		after := allocSamples()
		metrics.Read(after)
		bytes = int64(after[0].Value.Uint64() - s.samples[0].Value.Uint64())
		objs = int64(after[1].Value.Uint64() - s.samples[1].Value.Uint64())
	}
	s.p.add(s.phase, ns, bytes, objs)
}

func (p *PhaseProfiler) add(phase string, ns, bytes, objs int64) {
	p.mu.Lock()
	t := p.phases[phase]
	if t == nil {
		t = &phaseTotals{}
		p.phases[phase] = t
	}
	t.count++
	t.ns += ns
	t.bytes += bytes
	t.objs += objs
	var h *Histogram
	if p.reg != nil {
		h = p.hists[phase]
		if h == nil {
			h = p.reg.Histogram("sim_phase_seconds", LogBuckets(1e-6, 4, 16), Labels{"phase": phase})
			p.hists[phase] = h
		}
	}
	p.mu.Unlock()
	h.Observe(float64(ns) / 1e9)
}

// PhaseStat is one phase's accumulated totals.
type PhaseStat struct {
	Phase   string `json:"phase"`
	Count   int64  `json:"count"`
	NS      int64  `json:"ns"`
	Bytes   int64  `json:"bytes"`
	Objects int64  `json:"objects"`
}

// Snapshot returns per-phase totals sorted by descending time (ties by
// name), so the dominant phase is first. Nil-safe (returns nil).
func (p *PhaseProfiler) Snapshot() []PhaseStat {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]PhaseStat, 0, len(p.phases))
	for name, t := range p.phases {
		out = append(out, PhaseStat{Phase: name, Count: t.count, NS: t.ns, Bytes: t.bytes, Objects: t.objs})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].NS != out[j].NS {
			return out[i].NS > out[j].NS
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// Dominant returns the phase with the most accumulated time, or "" when
// nothing was recorded. Nil-safe.
func (p *PhaseProfiler) Dominant() string {
	s := p.Snapshot()
	if len(s) == 0 {
		return ""
	}
	return s[0].Phase
}

// Reset clears all accumulated totals (registry histograms are left
// alone). Nil-safe.
func (p *PhaseProfiler) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phases = make(map[string]*phaseTotals)
	p.mu.Unlock()
}

// PhaseReport is the JSON document a phase-breakdown run exports: the
// per-phase totals plus the name of the dominant (most expensive) phase.
type PhaseReport struct {
	Dominant string      `json:"dominant"`
	Phases   []PhaseStat `json:"phases"`
}

// Report builds the breakdown document. Nil-safe (returns the zero
// report).
func (p *PhaseProfiler) Report() PhaseReport {
	return PhaseReport{Dominant: p.Dominant(), Phases: p.Snapshot()}
}

// WriteJSON writes the indented report document. Nil-safe.
func (p *PhaseProfiler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Report())
}

// DumpJSON writes the report to the named file (truncating). Nil-safe.
func (p *PhaseProfiler) DumpJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
