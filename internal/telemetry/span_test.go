package telemetry

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestSpanIDDerivationIsStable(t *testing.T) {
	tr := NewTraceID(42, 3, 7, 11)
	if tr != NewTraceID(42, 3, 7, 11) {
		t.Fatal("trace id not deterministic")
	}
	for _, other := range []SpanID{
		NewTraceID(43, 3, 7, 11),
		NewTraceID(42, 4, 7, 11),
		NewTraceID(42, 3, 8, 11),
		NewTraceID(42, 3, 7, 12),
	} {
		if other == tr {
			t.Fatalf("trace id collision on a single-coordinate change")
		}
	}
	root := NewSpanID(tr, SpanBatch, 0, 0, 0, 7)
	if root != NewSpanID(tr, SpanBatch, 0, 0, 0, 7) {
		t.Fatal("span id not deterministic")
	}
	if NewSpanID(root, SpanLaunch, 1, 1, 0, 7) == NewSpanID(root, SpanLaunch, 1, 2, 0, 7) {
		t.Fatal("attempt not folded into span id")
	}
	if NewSpanID(root, SpanHop, 1, 0, 1, 5) == NewSpanID(root, SpanNack, 1, 0, 1, 5) {
		t.Fatal("kind not folded into span id")
	}
}

func TestSpanIDJSONRoundTrip(t *testing.T) {
	id := SpanID(0x0123456789abcdef)
	raw, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `"0123456789abcdef"` {
		t.Fatalf("marshal = %s", raw)
	}
	var back SpanID
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip = %v", back)
	}
	if err := json.Unmarshal([]byte(`"zz"`), &back); err == nil {
		t.Fatal("bad hex accepted")
	}
}

// TestSpanRecorderCanonicalOrder records the same spans in two shuffled
// orders (simulating different goroutine interleavings) and asserts the
// exported logs are byte-identical — the property the cross-backend
// conformance case relies on.
func TestSpanRecorderCanonicalOrder(t *testing.T) {
	mk := func() []Span {
		trace := NewTraceID(1, 1, 0, 9)
		root := NewSpanID(trace, SpanBatch, 0, 0, 0, 0)
		var spans []Span
		spans = append(spans, Span{Trace: trace, ID: root, Kind: SpanBatch, Batch: 1, Node: 0})
		for conn := 0; conn < 3; conn++ {
			launch := NewSpanID(root, SpanLaunch, conn, 1, 0, 0)
			spans = append(spans, Span{Trace: trace, ID: launch, Parent: root, Kind: SpanLaunch, Batch: 1, Conn: conn, Attempt: 1, Node: 0})
			parent := launch
			for hop := 1; hop <= 3; hop++ {
				id := NewSpanID(parent, SpanHop, conn, 0, hop, hop+2)
				spans = append(spans, Span{Trace: trace, ID: id, Parent: parent, Kind: SpanHop, Batch: 1, Conn: conn, Hop: hop, Node: hop + 2})
				parent = id
			}
		}
		return spans
	}

	var logs [][]byte
	for trial := 0; trial < 2; trial++ {
		spans := mk()
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(spans), func(i, j int) {
			spans[i], spans[j] = spans[j], spans[i]
		})
		rec := NewSpanRecorder(1024)
		for _, s := range spans {
			rec.Record(s)
			rec.Record(s) // duplicates are idempotent
		}
		var b bytes.Buffer
		if err := rec.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		logs = append(logs, b.Bytes())
	}
	if !bytes.Equal(logs[0], logs[1]) {
		t.Fatalf("shuffled recordings diverge:\n%s\nvs\n%s", logs[0], logs[1])
	}
}

func TestSpanRecorderCapacityAndDrops(t *testing.T) {
	rec := NewSpanRecorder(2)
	for i := 0; i < 5; i++ {
		rec.Record(Span{ID: SpanID(i + 1), Kind: SpanHop})
	}
	if rec.Total() != 2 {
		t.Fatalf("retained %d, want 2", rec.Total())
	}
	if rec.Dropped() != 3 {
		t.Fatalf("dropped %d, want 3", rec.Dropped())
	}
}

func TestSpanRecorderClockStamps(t *testing.T) {
	rec := NewSpanRecorder(8)
	now := int64(1000)
	rec.SetClock(func() int64 { return now })
	rec.Record(Span{ID: 1, Kind: SpanLaunch})
	now = 2500
	rec.Record(Span{ID: 2, Kind: SpanHop})
	rec.Record(Span{ID: 3, Kind: SpanHop, TimeMicros: 99}) // explicit stamp wins
	byID := map[SpanID]int64{}
	for _, s := range rec.Spans() {
		byID[s.ID] = s.TimeMicros
	}
	if byID[1] != 1000 || byID[2] != 2500 || byID[3] != 99 {
		t.Fatalf("timestamps = %v", byID)
	}
}

func TestSpanRecorderNilSafe(t *testing.T) {
	var rec *SpanRecorder
	rec.Record(Span{ID: 1})
	rec.SetSeed(7)
	rec.SetClock(nil)
	if rec.TraceID(1, 2, 3) != 0 || rec.Total() != 0 || rec.Dropped() != 0 || rec.Spans() != nil {
		t.Fatal("nil recorder not inert")
	}
	if err := rec.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestReadSpansRoundTrip(t *testing.T) {
	rec := NewSpanRecorder(8)
	rec.SetSeed(99)
	trace := rec.TraceID(2, 0, 5)
	root := NewSpanID(trace, SpanBatch, 0, 0, 0, 0)
	rec.Record(Span{Trace: trace, ID: root, Kind: SpanBatch, Batch: 2, Node: 0})
	rec.Record(Span{Trace: trace, ID: NewSpanID(root, SpanSettle, 0, 0, 0, 3), Parent: root, Kind: SpanSettle, Batch: 2, Node: 3, Detail: "payoff=3ff0000000000000"})

	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := rec.DumpJSONL(path); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := rec.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Spans()
	if len(spans) != len(want) {
		t.Fatalf("parsed %d spans, want %d", len(spans), len(want))
	}
	for i := range spans {
		if spans[i] != want[i] {
			t.Fatalf("span %d round trip: %+v != %+v", i, spans[i], want[i])
		}
	}
	if _, err := ReadSpans(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	rec := NewSpanRecorder(4096)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Record(Span{ID: SpanID(w*1000 + i + 1), Kind: SpanHop, Node: w, Conn: i})
			}
		}(w)
	}
	wg.Wait()
	if rec.Total() != 1600 {
		t.Fatalf("retained %d, want 1600", rec.Total())
	}
}
