package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", nil).Add(3)
	reg.Histogram("lat_seconds", []float64{0.01}, nil).Observe(0.005)
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Record(Event{Kind: KindLaunch, Batch: 1, Conn: i, Node: 0})
	}

	ts := httptest.NewServer(Handler(reg, tr))
	defer ts.Close()

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	// The ring's own accounting is refreshed per scrape: 5 recorded into a
	// 2-slot ring means 3 evicted, and both series carry HELP text.
	for _, want := range []string{
		"hits_total 3", `lat_seconds_bucket{le="0.01"} 1`, "lat_seconds_count 1",
		"# HELP telemetry_trace_dropped ", "telemetry_trace_events 5", "telemetry_trace_dropped 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, ts.URL+"/metrics.json")
	if code != http.StatusOK || !strings.Contains(body, `"hits_total"`) {
		t.Fatalf("/metrics.json status %d body %s", code, body)
	}

	code, body = get(t, ts.URL+"/trace")
	if code != http.StatusOK || !strings.Contains(body, `"launch"`) {
		t.Fatalf("/trace status %d body %s", code, body)
	}

	code, _ = get(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestServeEphemeral(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("up", nil).Set(1)
	srv, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "up 1") {
		t.Fatalf("status %d body %s", code, body)
	}
	// /trace with a nil tracer serves an empty document, not an error.
	code, body = get(t, "http://"+srv.Addr()+"/trace")
	if code != http.StatusOK || body != "" {
		t.Fatalf("nil-tracer /trace: status %d body %q", code, body)
	}
}
