package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Kind: KindHopForward, Conn: i})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := 6 + i; ev.Conn != want {
			t.Fatalf("event %d has conn %d, want %d (oldest-first after wrap)", i, ev.Conn, want)
		}
		if ev.Time.IsZero() {
			t.Fatalf("event %d not timestamped", i)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Kind: KindLaunch, Conn: 1})
	tr.Record(Event{Kind: KindDelivered, Conn: 1})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Kind != KindLaunch || evs[1].Kind != KindDelivered {
		t.Fatalf("events = %+v", evs)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Event{Kind: KindNack, Conn: i})
				if i%50 == 0 {
					_ = tr.Events()
				}
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", tr.Total())
	}
	if got := len(tr.Events()); got != 64 {
		t.Fatalf("retained %d, want 64", got)
	}
}

// TestTracerConcurrentWrap hammers a tiny ring so concurrent writers
// constantly claim the same slot (indices a full capacity apart) — the
// collision path the per-slot spinlock serialises. Run under -race.
func TestTracerConcurrentWrap(t *testing.T) {
	tr := NewTracer(2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tr.Record(Event{Kind: KindHopForward, Node: w, Conn: i})
			}
		}(w)
	}
	wg.Wait()
	if tr.Total() != 16000 {
		t.Fatalf("total = %d, want 16000", tr.Total())
	}
	for _, ev := range tr.Events() {
		if ev.Kind != KindHopForward || ev.Time.IsZero() {
			t.Fatalf("torn event survived: %+v", ev)
		}
	}
}

func TestTracerJSONL(t *testing.T) {
	tr := NewTracer(8)
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tr.Record(Event{Time: base, Kind: KindLaunch, Batch: 1, Conn: 2, Node: 3})
	tr.Record(Event{Time: base.Add(time.Millisecond), Kind: KindDelivered, Batch: 1, Conn: 2, Node: 3, Hop: 4, Detail: "path len 5"})
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ev)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if lines[0].Kind != KindLaunch || lines[1].Kind != KindDelivered || lines[1].Detail != "path len 5" {
		t.Fatalf("round-trip mismatch: %+v", lines)
	}
	if !lines[0].Time.Equal(base) {
		t.Fatalf("timestamp mangled: %v", lines[0].Time)
	}

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := tr.DumpJSONL(path); err != nil {
		t.Fatal(err)
	}
}

// failWriter accepts limit bytes, then fails every write — exercising
// both the mid-stream encode error and the final flush error.
type failWriter struct {
	limit   int
	written int
}

var errSink = errors.New("sink full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		return 0, errSink
	}
	w.written += len(p)
	return len(p), nil
}

func TestTracerWriteJSONLErrorPaths(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Kind: KindLaunch, Batch: 1})

	// A writer that fails immediately: the encoder buffers into bufio, so
	// the error must still surface from the final Flush.
	if err := tr.WriteJSONL(&failWriter{limit: 0}); !errors.Is(err, errSink) {
		t.Fatalf("flush error not propagated: %v", err)
	}

	// Enough events to overflow the bufio buffer mid-loop: the error must
	// surface from Encode, not be swallowed until flush.
	big := NewTracer(4096)
	for i := 0; i < 4096; i++ {
		big.Record(Event{Kind: KindHopForward, Conn: i, Detail: "padding-padding-padding"})
	}
	if err := big.WriteJSONL(&failWriter{limit: 8192}); !errors.Is(err, errSink) {
		t.Fatalf("mid-stream encode error not propagated: %v", err)
	}
}

func TestTracerDumpJSONLErrorPaths(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(Event{Kind: KindLaunch})
	// Create fails: the target is a directory.
	if err := tr.DumpJSONL(t.TempDir()); err == nil {
		t.Fatal("DumpJSONL to a directory succeeded")
	}
	// Create fails: the parent directory does not exist.
	if err := tr.DumpJSONL(filepath.Join(t.TempDir(), "missing", "trace.jsonl")); err == nil {
		t.Fatal("DumpJSONL into a missing directory succeeded")
	}
}
