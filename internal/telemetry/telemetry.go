// Package telemetry is the unified observability layer: a registry of
// named, label-tagged instruments — atomic counters, gauges and
// lock-cheap log-scale histograms — plus a bounded structured event
// tracer (see trace.go) and live exposition over HTTP (see http.go).
//
// Design rules:
//
//   - The hot path is wait-free. Components resolve their instruments
//     once at construction (Registry get-or-create takes a lock) and
//     then update them with single atomic operations.
//   - Instruments are nil-safe: updating a nil *Counter, *Gauge,
//     *Histogram or *Tracer is a no-op, so optional instrumentation
//     costs one predictable branch when disabled.
//   - Snapshots are plain values, mergeable and subtractable, so
//     sequential windows and cross-shard aggregation are ordinary
//     arithmetic.
//
// The exposition formats are Prometheus text (WritePrometheus) and an
// expvar-style JSON snapshot (WriteJSON).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels tag an instrument with dimensions (e.g. {"result": "ok"}).
// Instruments with the same name but different labels are distinct
// series of one metric family.
type Labels map[string]string

// String renders labels canonically (sorted) in the Prometheus label
// syntax: `k1="v1",k2="v2"`. Empty labels render as "".
func (l Labels) String() string { return l.key() }

// key renders labels canonically (sorted) for registry lookup and
// Prometheus exposition: `k1="v1",k2="v2"`.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	ks := make([]string, 0, len(l))
	for k := range l {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var b strings.Builder
	for i, k := range ks {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter (for windowed reporting). Nil-safe.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Gauge is an instantaneous atomic value (depth, high-water mark, size).
type Gauge struct{ v atomic.Int64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark operation. Nil-safe.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Reset zeroes the gauge. Nil-safe.
func (g *Gauge) Reset() {
	if g == nil {
		return
	}
	g.v.Store(0)
}

// Histogram counts observations in fixed buckets with precomputed upper
// bounds (log-scale by construction via LogBuckets, or any ascending
// bounds). Observation is one binary search plus two atomic adds — no
// locks — and snapshots are mergeable.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; implicit +Inf bucket after
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one observation. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound is >= v (Prometheus `le` semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds. Nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Reset zeroes all buckets. Concurrent observations may land on either
// side of the reset; cross-bucket exactness is not guaranteed mid-flight.
// Nil-safe.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// Snapshot copies the current bucket counts. The zero HistogramSnapshot
// is returned for a nil histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram: Counts[i]
// holds observations with value <= Bounds[i]; the final entry is the
// overflow (+Inf) bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Merge returns the bucket-wise sum of two snapshots of histograms with
// identical bounds (it panics on mismatched shapes — merging different
// metrics is a programming error). Merging with an empty snapshot
// returns the other operand.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if len(s.Counts) == 0 {
		return o
	}
	if len(o.Counts) == 0 {
		return s
	}
	if len(s.Counts) != len(o.Counts) {
		panic(fmt.Sprintf("telemetry: merging histograms with %d and %d buckets", len(s.Counts), len(o.Counts)))
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Delta returns this snapshot minus prev (per-window view of a
// monotonically growing histogram). An empty prev returns s unchanged.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Counts) == 0 {
		return s
	}
	if len(s.Counts) != len(prev.Counts) {
		panic(fmt.Sprintf("telemetry: delta of histograms with %d and %d buckets", len(s.Counts), len(prev.Counts)))
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	return out
}

// Mean returns Sum/Count, or NaN when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (q in [0,1]) as the upper bound
// of the bucket containing that rank — the standard bucketed-histogram
// estimate. It returns NaN when empty or q is out of range; ranks that
// land in the overflow bucket return the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q < 0 || q > 1 || len(s.Bounds) == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// LogBuckets returns count upper bounds start, start·factor,
// start·factor², … — the fixed log-scale bucket layout latency and size
// histograms use. It panics on a non-positive start, factor <= 1 or
// count < 1.
func LogBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic(fmt.Sprintf("telemetry: LogBuckets(%g, %g, %d)", start, factor, count))
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns count upper bounds start, start+width, … for
// small integral distributions (path lengths, hop counts). It panics on
// width <= 0 or count < 1.
func LinearBuckets(start, width float64, count int) []float64 {
	if width <= 0 || count < 1 {
		panic(fmt.Sprintf("telemetry: LinearBuckets(%g, %g, %d)", start, width, count))
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// instrument kinds, for exposition and kind-conflict detection.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one registered instrument: a (name, labels) pair bound to
// exactly one of the three instrument types.
type series struct {
	name     string
	labelKey string
	labels   Labels
	kind     string
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
}

// Registry is a namespace of instruments. Get-or-create methods are safe
// for concurrent use and idempotent: the same (name, labels) always
// yields the same instrument, so independent components share series
// naturally. The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
	help   map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*series),
		help:   make(map[string]string),
	}
}

// Help attaches a HELP string to a metric family, emitted in the
// Prometheus exposition. Nil-safe.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

func seriesKey(name, labelKey string) string { return name + "{" + labelKey + "}" }

// lookup get-or-creates the series for (name, labels, kind); mk builds a
// fresh instrument. A kind conflict (e.g. Counter then Gauge of the same
// name) panics — it is a programming error that would corrupt exposition.
func (r *Registry) lookup(name string, labels Labels, kind string, mk func(s *series)) *series {
	lk := labels.key()
	key := seriesKey(name, lk)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, s.kind, kind))
		}
		return s
	}
	s := &series{name: name, labelKey: lk, kind: kind}
	if len(labels) > 0 {
		s.labels = make(Labels, len(labels))
		for k, v := range labels {
			s.labels[k] = v
		}
	}
	mk(s)
	r.series[key] = s
	return s
}

// Counter returns the counter named name with the given labels, creating
// it on first use. Returns nil on a nil registry, so disabled telemetry
// degrades to no-ops.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindCounter, func(s *series) { s.counter = &Counter{} }).counter
}

// Gauge returns the gauge named name with the given labels, creating it
// on first use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindGauge, func(s *series) { s.gauge = &Gauge{} }).gauge
}

// Histogram returns the histogram named name with the given labels,
// creating it with the given bucket upper bounds on first use (later
// calls reuse the existing buckets). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindHistogram, func(s *series) { s.hist = newHistogram(bounds) }).hist
}

// Reset zeroes every registered instrument. Nil-safe.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	ss := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		ss = append(ss, s)
	}
	r.mu.Unlock()
	for _, s := range ss {
		switch s.kind {
		case kindCounter:
			s.counter.Reset()
		case kindGauge:
			s.gauge.Reset()
		case kindHistogram:
			s.hist.Reset()
		}
	}
}

// sorted returns all series ordered by (name, labelKey) for stable
// exposition.
func (r *Registry) sorted() []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labelKey < out[j].labelKey
	})
	return out
}

// promLabel renders a label set for exposition, merging extra pairs
// (used for the histogram `le` label).
func promLabel(labelKey, extra string) string {
	switch {
	case labelKey == "" && extra == "":
		return ""
	case labelKey == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labelKey + "}"
	default:
		return "{" + labelKey + "," + extra + "}"
	}
}

// formatBound renders a bucket bound the way Prometheus does.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (type comments, cumulative histogram buckets with
// `le` labels, _sum and _count series). Nil-safe.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	lastName := ""
	for _, s := range r.sorted() {
		if s.name != lastName {
			if h, ok := help[s.name]; ok {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, h)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
			lastName = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, promLabel(s.labelKey, ""), s.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, promLabel(s.labelKey, ""), s.gauge.Value())
		case kindHistogram:
			snap := s.hist.Snapshot()
			var cum int64
			for i, bound := range snap.Bounds {
				cum += snap.Counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, promLabel(s.labelKey, fmt.Sprintf("le=%q", formatBound(bound))), cum)
			}
			cum += snap.Counts[len(snap.Counts)-1]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, promLabel(s.labelKey, `le="+Inf"`), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, promLabel(s.labelKey, ""), strconv.FormatFloat(snap.Sum, 'g', -1, 64))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.name, promLabel(s.labelKey, ""), snap.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// CounterPoint is one counter series' value.
type CounterPoint struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// GaugePoint is one gauge series' value.
type GaugePoint struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// HistogramPoint is one histogram series' snapshot.
type HistogramPoint struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	HistogramSnapshot
}

// Snapshot captures every instrument. Nil-safe (returns the zero value).
func (r *Registry) Snapshot() Snapshot {
	var out Snapshot
	if r == nil {
		return out
	}
	for _, s := range r.sorted() {
		switch s.kind {
		case kindCounter:
			out.Counters = append(out.Counters, CounterPoint{Name: s.name, Labels: s.labels, Value: s.counter.Value()})
		case kindGauge:
			out.Gauges = append(out.Gauges, GaugePoint{Name: s.name, Labels: s.labels, Value: s.gauge.Value()})
		case kindHistogram:
			out.Histograms = append(out.Histograms, HistogramPoint{Name: s.name, Labels: s.labels, HistogramSnapshot: s.hist.Snapshot()})
		}
	}
	return out
}

// WriteJSON renders the expvar-style JSON snapshot. Nil-safe.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
