package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry and tracer:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  expvar-style JSON snapshot
//	/trace         the tracer's retained events as JSONL
//	/debug/pprof/  the standard runtime profiles
//
// reg and tr may each be nil; the corresponding endpoints then serve
// empty documents.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	if reg != nil && tr != nil {
		reg.Help("telemetry_trace_events", "Events ever recorded by the trace ring.")
		reg.Help("telemetry_trace_dropped", "Events the bounded trace ring has evicted.")
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		// The tracer's own accounting is refreshed at scrape time, so the
		// ring's loss rate is visible on the same dashboard as everything
		// it traces.
		if reg != nil && tr != nil {
			reg.Gauge("telemetry_trace_events", nil).Set(int64(tr.Total()))
			reg.Gauge("telemetry_trace_dropped", nil).Set(int64(tr.Dropped()))
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = tr.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live exposition endpoint bound to a TCP address.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an exposition server on addr (e.g. ":9090", or ":0" for
// an ephemeral port — read the bound address back with Addr). The server
// runs until Close.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(reg, tr), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the server's bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
