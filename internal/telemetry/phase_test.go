package telemetry

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// allocSink keeps test allocations observable by the runtime counters.
var allocSink []byte

func TestPhaseProfilerAccumulates(t *testing.T) {
	p := NewPhaseProfiler()
	for i := 0; i < 3; i++ {
		sp := p.Start(PhaseSolveRows)
		allocSink = make([]byte, 64*1024)
		sp.End()
	}
	sp := p.Start(PhaseProbeTick)
	time.Sleep(time.Millisecond)
	sp.End()

	stats := p.Snapshot()
	if len(stats) != 2 {
		t.Fatalf("phases = %+v", stats)
	}
	byName := map[string]PhaseStat{}
	for _, s := range stats {
		byName[s.Phase] = s
	}
	rows := byName[PhaseSolveRows]
	if rows.Count != 3 {
		t.Fatalf("solve.rows count = %d, want 3", rows.Count)
	}
	if rows.Bytes < 3*64*1024 {
		t.Fatalf("solve.rows bytes = %d, want >= %d", rows.Bytes, 3*64*1024)
	}
	if rows.Objects < 3 {
		t.Fatalf("solve.rows objects = %d, want >= 3", rows.Objects)
	}
	tick := byName[PhaseProbeTick]
	if tick.Count != 1 || tick.NS < int64(time.Millisecond)/2 {
		t.Fatalf("probe.tick = %+v", tick)
	}
}

func TestPhaseProfilerDominantAndReport(t *testing.T) {
	p := NewPhaseProfiler()
	p.add(PhaseRouteWalk, 100, 10, 1)
	p.add(PhaseSolveInduction, 5000, 20, 2)
	p.add(PhaseSolveInduction, 5000, 20, 2)
	if got := p.Dominant(); got != PhaseSolveInduction {
		t.Fatalf("dominant = %q", got)
	}
	rep := p.Report()
	if rep.Dominant != PhaseSolveInduction || len(rep.Phases) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Phases[0].Phase != PhaseSolveInduction || rep.Phases[0].NS != 10000 || rep.Phases[0].Count != 2 {
		t.Fatalf("phases not sorted by time: %+v", rep.Phases)
	}

	var b bytes.Buffer
	if err := p.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back PhaseReport
	if err := json.Unmarshal(b.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Dominant != PhaseSolveInduction {
		t.Fatalf("JSON round trip: %+v", back)
	}

	path := filepath.Join(t.TempDir(), "phases.json")
	if err := p.DumpJSON(path); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if p.Dominant() != "" || len(p.Snapshot()) != 0 {
		t.Fatal("reset did not clear totals")
	}
}

func TestPhaseProfilerInstrument(t *testing.T) {
	p := NewPhaseProfiler()
	reg := NewRegistry()
	p.Instrument(reg)
	p.Start(PhaseEscrowSettle).End()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		"# HELP sim_phase_seconds ",
		"# TYPE sim_phase_seconds histogram",
		`sim_phase_seconds_count{phase="escrow.settle"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestPhaseProfilerNilSafe(t *testing.T) {
	var p *PhaseProfiler
	p.Start(PhaseSolveRows).End()
	p.Instrument(NewRegistry())
	p.Reset()
	if p.Snapshot() != nil || p.Dominant() != "" {
		t.Fatal("nil profiler not inert")
	}
	rep := p.Report()
	if rep.Dominant != "" || rep.Phases != nil {
		t.Fatalf("nil report = %+v", rep)
	}
	var zero PhaseSpan
	zero.End()
}
