package stats_test

import (
	"fmt"

	"p2panon/internal/stats"
)

// Streaming mean/CI accumulation, as used for the paper's error bars.
func ExampleAccumulator() {
	var a stats.Accumulator
	a.AddAll([]float64{10, 12, 8, 11, 9})
	fmt.Printf("mean %.1f, sd %.2f\n", a.Mean(), a.StdDev())
	// Output: mean 10.0, sd 1.58
}

// The Gini coefficient quantifies the payoff concentration behind the
// paper's Figures 6-7 skew discussion.
func ExampleGini() {
	equal := []float64{10, 10, 10, 10}
	skewed := []float64{37, 1, 1, 1}
	fmt.Printf("%.2f %.2f\n", stats.Gini(equal), stats.Gini(skewed))
	// Output: 0.00 0.68
}

// Empirical CDFs back the Figures 6-7 curves.
func ExampleCDF() {
	c := stats.NewCDF([]float64{1, 2, 3, 4})
	fmt.Printf("%.2f %.2f\n", c.At(2), c.Quantile(0.5))
	// Output: 0.50 2.00
}
