package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 {
		t.Fatal("empty N != 0")
	}
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Variance()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Fatal("empty accumulator should return NaN summaries")
	}
	if a.CI95() != 0 {
		t.Fatal("empty CI95 should be 0")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(5)
	if a.Mean() != 5 || a.Min() != 5 || a.Max() != 5 {
		t.Fatalf("single obs: mean=%g min=%g max=%g", a.Mean(), a.Min(), a.Max())
	}
	if !math.IsNaN(a.Variance()) {
		t.Fatal("variance of one obs should be NaN")
	}
	if a.CI95() != 0 {
		t.Fatal("CI95 of one obs should be 0")
	}
}

func TestAccumulatorKnownValues(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(a.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %g", a.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if !almost(a.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %g", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min=%g max=%g", a.Min(), a.Max())
	}
	if !almost(a.Sum(), 40, 1e-9) {
		t.Fatalf("sum = %g", a.Sum())
	}
}

func TestCI95TwoPoints(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{0, 2})
	// sd = sqrt(2), se = 1, t(1) = 12.706
	if !almost(a.CI95(), 12.706, 1e-9) {
		t.Fatalf("CI95 = %g", a.CI95())
	}
}

func TestCI95LargeN(t *testing.T) {
	var a Accumulator
	for i := 0; i < 1000; i++ {
		a.Add(float64(i % 2)) // alternating 0/1, sd ~ 0.5
	}
	se := a.StdDev() / math.Sqrt(1000)
	if !almost(a.CI95(), 1.96*se, 1e-9) {
		t.Fatalf("CI95 = %g, want %g", a.CI95(), 1.96*se)
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := tCritical95(df)
		if v > prev+1e-9 {
			t.Fatalf("tCritical95 not non-increasing at df=%d: %g > %g", df, v, prev)
		}
		prev = v
	}
	if tCritical95(1000) != 1.96 {
		t.Fatalf("large-df critical = %g", tCritical95(1000))
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Mean: 3.14159, Half: 0.5, N: 10}
	if got := iv.String(); got != "3.14 ± 0.50 (n=10)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestMeanHelpers(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("Mean helper wrong")
	}
	if !almost(StdDev([]float64{1, 2, 3}), 1, 1e-12) {
		t.Fatal("StdDev helper wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almost(got, tc.want, 1e-12) {
			t.Fatalf("At(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	c := NewCDF(s(xs))
	xs[0] = 100
	if got := c.At(3); !almost(got, 1, 1e-12) {
		t.Fatalf("CDF aliased its input: At(3)=%g", got)
	}
}

func s(xs []float64) []float64 { return xs }

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0.5); got != 30 {
		t.Fatalf("median = %g", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("q0 = %g", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Fatalf("q1 = %g", got)
	}
	if !math.IsNaN(c.Quantile(1.5)) {
		t.Fatal("out-of-range quantile should be NaN")
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.At(1)) || !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Min()) || !math.IsNaN(c.Max()) {
		t.Fatal("empty CDF should return NaN")
	}
	if c.Curve(10) != nil {
		t.Fatal("empty CDF curve should be nil")
	}
}

func TestCDFCurve(t *testing.T) {
	c := NewCDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	pts := c.Curve(11)
	if len(pts) != 11 {
		t.Fatalf("curve length %d", len(pts))
	}
	if pts[0].X != 0 || pts[len(pts)-1].X != 9 {
		t.Fatalf("curve endpoints %g..%g", pts[0].X, pts[len(pts)-1].X)
	}
	if pts[len(pts)-1].F != 1 {
		t.Fatalf("curve should end at F=1, got %g", pts[len(pts)-1].F)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].F < pts[i-1].F {
			t.Fatal("curve not monotone")
		}
	}
}

// Property: CDF is monotone non-decreasing and bounded in [0,1].
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		if math.IsNaN(probe) || math.IsInf(probe, 0) {
			return true
		}
		c := NewCDF(raw)
		f1 := c.At(probe)
		f2 := c.At(probe + 1)
		return f1 >= 0 && f1 <= 1 && f2 >= f1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile and At are consistent: At(Quantile(q)) >= q.
func TestQuickQuantileConsistency(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		q := float64(qRaw) / 255
		c := NewCDF(raw)
		x := c.Quantile(q)
		return c.At(x) >= q-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Welford mean matches naive mean.
func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		clean := raw[:0:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var a Accumulator
		sum := 0.0
		for _, v := range clean {
			a.Add(v)
			sum += v
		}
		naive := sum / float64(len(clean))
		return math.Abs(a.Mean()-naive) < 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1.9, 2, 5, 9.9, -3, 15} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	// -3 clamps to bin 0; 15 clamps to bin 4.
	if h.Counts[0] != 3 { // 0, 1.9, -3
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 15
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if !almost(h.BinCenter(0), 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %g", h.BinCenter(0))
	}
	if !almost(h.Fraction(0), 3.0/7.0, 1e-12) {
		t.Fatalf("Fraction(0) = %g", h.Fraction(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Fatal("empty histogram fraction should be 0")
	}
}

func TestCDFAgainstSort(t *testing.T) {
	xs := []float64{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	c := NewCDF(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, v := range sorted {
		want := float64(i+1) / float64(len(sorted))
		if got := c.At(v); !almost(got, want, 1e-12) {
			t.Fatalf("At(%g) = %g, want %g", v, got, want)
		}
	}
}
