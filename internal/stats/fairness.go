package stats

import (
	"math"
	"sort"
)

// Gini returns the Gini coefficient of xs in [0, 1]: 0 for perfectly
// equal values, approaching 1 for maximal concentration. Negative inputs
// are not meaningful for a Gini coefficient and yield NaN, as does an
// empty or all-zero sample. Used to quantify the payoff skew the paper
// discusses for Figures 6-7 (utility routing concentrates payoffs on few
// stable forwarders).
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if sorted[0] < 0 {
		return math.NaN()
	}
	n := float64(len(sorted))
	var cum, total float64
	for i, v := range sorted {
		cum += float64(i+1) * v
		total += v
	}
	if total == 0 {
		return math.NaN()
	}
	return (2*cum)/(n*total) - (n+1)/n
}

// Jain returns Jain's fairness index of xs in (0, 1]: 1 when all values
// are equal, 1/n when one value holds everything. NaN on empty or
// all-zero input.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumSq float64
	for _, v := range xs {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return math.NaN()
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
