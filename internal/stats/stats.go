// Package stats provides the statistical primitives used to summarise
// simulation output: streaming moment accumulators, 95% confidence
// intervals with Student-t critical values, empirical CDFs and quantiles,
// and simple fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes count, mean and variance in a single streaming pass
// using Welford's numerically stable algorithm. The zero value is ready to
// use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll incorporates every observation in xs.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of observations added.
func (a *Accumulator) N() int { return a.n }

// Mean returns the arithmetic mean, or NaN when empty.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the unbiased sample variance, or NaN with fewer than two
// observations.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation, or NaN when empty.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation, or NaN when empty.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// Sum returns n·mean, the total of all observations.
func (a *Accumulator) Sum() float64 { return float64(a.n) * a.mean }

// CI95 returns the half-width of the 95% confidence interval for the mean,
// using the Student-t distribution. It returns 0 with fewer than two
// observations.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	se := a.StdDev() / math.Sqrt(float64(a.n))
	return tCritical95(a.n-1) * se
}

// Interval describes a mean together with a symmetric confidence half-width.
type Interval struct {
	Mean float64
	Half float64 // half-width of the 95% CI
	N    int
}

// Summary returns the accumulator's mean and 95% CI as an Interval.
func (a *Accumulator) Summary() Interval {
	return Interval{Mean: a.Mean(), Half: a.CI95(), N: a.n}
}

// String renders the interval as "mean ± half (n=N)".
func (iv Interval) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", iv.Mean, iv.Half, iv.N)
}

// tTable holds two-sided 95% Student-t critical values for small degrees of
// freedom; index i corresponds to i degrees of freedom.
var tTable = []float64{
	math.NaN(),
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-sided 95% critical value of the Student-t
// distribution with df degrees of freedom, interpolating to the normal
// critical value 1.96 for large df.
func tCritical95(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df < len(tTable) {
		return tTable[df]
	}
	switch {
	case df < 40:
		return 2.030
	case df < 60:
		return 2.000
	case df < 120:
		return 1.980
	default:
		return 1.960
	}
}

// Mean returns the arithmetic mean of xs, or NaN when empty.
func Mean(xs []float64) float64 {
	var a Accumulator
	a.AddAll(xs)
	return a.Mean()
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	var a Accumulator
	a.AddAll(xs)
	return a.StdDev()
}

// CDF is an empirical cumulative distribution function built from a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input slice is copied.
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns the fraction of the sample that is <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// First index with value > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th empirical quantile for q in [0, 1], using the
// nearest-rank method. It returns NaN on an empty sample or q outside [0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	if q == 0 {
		return c.sorted[0]
	}
	rank := int(math.Ceil(q * float64(len(c.sorted))))
	if rank < 1 {
		rank = 1
	}
	return c.sorted[rank-1]
}

// Min returns the smallest sample value, or NaN when empty.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample value, or NaN when empty.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Point is one (x, F(x)) sample of a CDF curve.
type Point struct {
	X float64
	F float64
}

// Curve returns n evenly spaced points spanning [Min, Max], suitable for
// plotting the CDF as the paper's Figures 6 and 7 do. With n < 2 or an
// empty sample it returns nil.
func (c *CDF) Curve(n int) []Point {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	lo, hi := c.Min(), c.Max()
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = Point{X: x, F: c.At(x)}
	}
	return pts
}

// Histogram counts observations in fixed-width bins spanning [Lo, Hi).
// Observations outside the range land in the first or last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic(fmt.Sprintf("stats: NewHistogram with bins=%d", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: NewHistogram with lo=%g hi=%g", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation, clamping out-of-range values to the edge
// bins.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of observations in bin i, or 0 when empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
