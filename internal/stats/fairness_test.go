package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGiniEqualValues(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Fatalf("equal-values Gini %g", g)
	}
}

func TestGiniMaxConcentration(t *testing.T) {
	// One node holds everything among n: Gini = (n-1)/n.
	xs := make([]float64, 10)
	xs[3] = 100
	want := 9.0 / 10.0
	if g := Gini(xs); math.Abs(g-want) > 1e-12 {
		t.Fatalf("concentrated Gini %g, want %g", g, want)
	}
}

func TestGiniKnownValue(t *testing.T) {
	// {1, 3}: Gini = 0.25.
	if g := Gini([]float64{1, 3}); math.Abs(g-0.25) > 1e-12 {
		t.Fatalf("Gini %g", g)
	}
}

func TestGiniInvalidInputs(t *testing.T) {
	for _, xs := range [][]float64{nil, {0, 0, 0}, {-1, 2}} {
		if !math.IsNaN(Gini(xs)) {
			t.Fatalf("Gini(%v) should be NaN", xs)
		}
	}
}

func TestGiniOrderIndependent(t *testing.T) {
	a := Gini([]float64{1, 2, 3, 4})
	b := Gini([]float64{4, 2, 1, 3})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("order dependence: %g vs %g", a, b)
	}
}

func TestJainEqualValues(t *testing.T) {
	if j := Jain([]float64{7, 7, 7}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal Jain %g", j)
	}
}

func TestJainMaxUnfairness(t *testing.T) {
	xs := make([]float64, 8)
	xs[0] = 42
	if j := Jain(xs); math.Abs(j-1.0/8.0) > 1e-12 {
		t.Fatalf("unfair Jain %g", j)
	}
}

func TestJainInvalid(t *testing.T) {
	if !math.IsNaN(Jain(nil)) || !math.IsNaN(Jain([]float64{0, 0})) {
		t.Fatal("invalid Jain should be NaN")
	}
}

// Property: Gini within [0, 1), Jain within (0, 1], and more-concentrated
// samples never decrease Gini.
func TestQuickFairnessBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			xs[i] = float64(r)
			total += xs[i]
		}
		if total == 0 {
			return true
		}
		g := Gini(xs)
		j := Jain(xs)
		return g >= -1e-12 && g < 1 && j > 0 && j <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gini and Jain agree on ordering — higher Gini coincides with
// lower Jain when one sample strictly majorises another simple pair.
func TestFairnessOrderingAgreement(t *testing.T) {
	flat := []float64{10, 10, 10, 10}
	skew := []float64{37, 1, 1, 1}
	if !(Gini(skew) > Gini(flat)) {
		t.Fatal("Gini ordering wrong")
	}
	if !(Jain(skew) < Jain(flat)) {
		t.Fatal("Jain ordering wrong")
	}
}
