// Package dist provides deterministic pseudo-random sources and the
// probability distributions used throughout the simulator: uniform,
// exponential, Poisson, Pareto and a handful of discrete helpers.
//
// All randomness in the repository flows through a dist.Source so that every
// experiment is exactly reproducible from a (configuration, seed) pair. A
// Source can be split into independent child streams, which lets concurrent
// components (peers, probers, workload generators) draw random numbers
// without sharing state or locks while remaining deterministic.
package dist

import (
	"fmt"
	"math"
)

// Source is a deterministic pseudo-random number generator. It implements
// the xoshiro256** algorithm (public domain, Blackman & Vigna), which has a
// 256-bit state, passes BigCrush, and is cheap to split.
//
// Source is not safe for concurrent use; use Split to derive independent
// streams for concurrent consumers.
type Source struct {
	s [4]uint64
}

// splitmix64 is used to seed the xoshiro state from a single 64-bit seed and
// to derive child stream seeds. It is the recommended seeding procedure for
// the xoshiro family.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewSource returns a Source seeded deterministically from seed.
func NewSource(seed uint64) *Source {
	var src Source
	x := seed
	for i := range src.s {
		src.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's. The receiver advances by one draw.
func (r *Source) Split() *Source {
	x := r.Uint64()
	return NewSource(x ^ 0xd1b54a32d192ed03)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits give a uniform double in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("dist: Intn called with n=%d", n))
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-int64(n)) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Uniform returns a uniformly distributed value in [lo, hi).
// It panics if hi < lo.
func (r *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("dist: Uniform called with lo=%g > hi=%g", lo, hi))
	}
	return lo + (hi-lo)*r.Float64()
}

// Exponential returns a draw from the exponential distribution with the
// given rate (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("dist: Exponential called with rate=%g", rate))
	}
	u := r.Float64()
	// 1-u is in (0,1], so Log is finite.
	return -math.Log(1-u) / rate
}

// Poisson returns a draw from the Poisson distribution with mean lambda.
// It uses Knuth's product method for small lambda and a normal
// approximation (rounded, clamped at zero) for large lambda.
func (r *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := r.Normal(lambda, math.Sqrt(lambda))
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// Normal returns a draw from the normal distribution with the given mean
// and standard deviation, using the Box-Muller transform.
func (r *Source) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Pareto describes a Pareto (Type I) distribution with scale Xm > 0 and
// shape Alpha > 0. The paper models P2P session times with a Pareto
// distribution whose median is 60 minutes [Saroiu et al. 2002].
type Pareto struct {
	Xm    float64 // scale: minimum possible value
	Alpha float64 // shape: tail index
}

// ParetoFromMedian constructs a Pareto distribution with the given shape
// whose median equals median. For Pareto Type I the median is Xm·2^(1/α).
func ParetoFromMedian(median, alpha float64) Pareto {
	if median <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("dist: ParetoFromMedian(%g, %g): arguments must be positive", median, alpha))
	}
	return Pareto{Xm: median / math.Pow(2, 1/alpha), Alpha: alpha}
}

// Median returns the distribution's median, Xm·2^(1/α).
func (p Pareto) Median() float64 { return p.Xm * math.Pow(2, 1/p.Alpha) }

// Mean returns the distribution mean, or +Inf when Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Sample draws from the Pareto distribution by inverse-CDF sampling.
func (p Pareto) Sample(r *Source) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Shuffle permutes xs in place with a Fisher-Yates shuffle.
func Shuffle[T any](r *Source, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// SampleWithoutReplacement returns k distinct values chosen uniformly from
// [0, n). It panics if k > n or either argument is negative.
func SampleWithoutReplacement(r *Source, n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("dist: SampleWithoutReplacement(n=%d, k=%d)", n, k))
	}
	// Partial Fisher-Yates over an index table.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]int, k)
	copy(out, idx[:k])
	return out
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Choice returns a uniformly chosen element of xs. It panics if xs is empty.
func Choice[T any](r *Source, xs []T) T {
	if len(xs) == 0 {
		panic("dist: Choice on empty slice")
	}
	return xs[r.Intn(len(xs))]
}

// WeightedChoice returns an index in [0, len(weights)) drawn with
// probability proportional to weights[i]. Negative weights are treated as
// zero. It panics if the slice is empty or all weights are zero.
func WeightedChoice(r *Source, weights []float64) int {
	if len(weights) == 0 {
		panic("dist: WeightedChoice on empty slice")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("dist: WeightedChoice with no positive weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
