package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestSourceDifferentSeedsDiffer(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewSource(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d/100 identical draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := NewSource(9).Split()
	b := NewSource(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewSource(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewSource(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewSource(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnOne(t *testing.T) {
	r := NewSource(1)
	for i := 0; i < 100; i++ {
		if v := r.Intn(1); v != 0 {
			t.Fatalf("Intn(1) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewSource(17)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %g", i, c, want)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewSource(2)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(50, 100)
		if v < 50 || v >= 100 {
			t.Fatalf("Uniform(50,100) = %g", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	r := NewSource(2)
	if v := r.Uniform(3, 3); v != 3 {
		t.Fatalf("Uniform(3,3) = %g, want 3", v)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewSource(13)
	const rate = 0.25
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.05*(1/rate) {
		t.Fatalf("exponential mean = %g, want ~%g", mean, 1/rate)
	}
}

func TestExponentialPositive(t *testing.T) {
	r := NewSource(13)
	for i := 0; i < 10000; i++ {
		if v := r.Exponential(2); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exponential produced %g", v)
		}
	}
}

func TestPoissonMeanSmallLambda(t *testing.T) {
	r := NewSource(19)
	const lambda = 4.5
	sum := 0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Poisson(lambda)
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda) > 0.1 {
		t.Fatalf("poisson mean = %g, want ~%g", mean, lambda)
	}
}

func TestPoissonMeanLargeLambda(t *testing.T) {
	r := NewSource(23)
	const lambda = 200.0
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Poisson(lambda)
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda) > 1.0 {
		t.Fatalf("poisson mean = %g, want ~%g", mean, lambda)
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	r := NewSource(1)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
	if v := r.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d", v)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewSource(29)
	const mean, sd = 10.0, 3.0
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("normal mean = %g", m)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Fatalf("normal sd = %g", math.Sqrt(variance))
	}
}

func TestParetoFromMedian(t *testing.T) {
	p := ParetoFromMedian(3600, 1.5) // 60-minute median, as in the paper
	if math.Abs(p.Median()-3600) > 1e-9 {
		t.Fatalf("median = %g, want 3600", p.Median())
	}
	r := NewSource(31)
	// Empirical median check.
	const n = 100001
	vals := make([]float64, n)
	below := 0
	for i := range vals {
		vals[i] = p.Sample(r)
		if vals[i] < 3600 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below median = %g, want ~0.5", frac)
	}
}

func TestParetoSampleAboveXm(t *testing.T) {
	p := Pareto{Xm: 10, Alpha: 2}
	r := NewSource(37)
	for i := 0; i < 10000; i++ {
		if v := p.Sample(r); v < p.Xm {
			t.Fatalf("sample %g below scale %g", v, p.Xm)
		}
	}
}

func TestParetoMean(t *testing.T) {
	p := Pareto{Xm: 10, Alpha: 2}
	if got, want := p.Mean(), 20.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %g, want %g", got, want)
	}
	heavy := Pareto{Xm: 10, Alpha: 1}
	if !math.IsInf(heavy.Mean(), 1) {
		t.Fatal("alpha<=1 mean should be +Inf")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewSource(41)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	Shuffle(r, xs)
	seen := make(map[int]bool)
	for _, x := range xs {
		if x < 0 || x > 9 || seen[x] {
			t.Fatalf("not a permutation: %v", xs)
		}
		seen[x] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewSource(43)
	for trial := 0; trial < 100; trial++ {
		out := SampleWithoutReplacement(r, 20, 5)
		if len(out) != 5 {
			t.Fatalf("len = %d", len(out))
		}
		seen := make(map[int]bool)
		for _, v := range out {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("invalid sample %v", out)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	r := NewSource(43)
	out := SampleWithoutReplacement(r, 5, 5)
	seen := make(map[int]bool)
	for _, v := range out {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("full sample not a permutation: %v", out)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewSource(47)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewSource(53)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %g", frac)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewSource(59)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[WeightedChoice(r, weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Fatalf("weight-1 index frequency %g, want ~0.25", frac0)
	}
}

func TestWeightedChoiceNegativeTreatedZero(t *testing.T) {
	r := NewSource(61)
	for i := 0; i < 1000; i++ {
		if got := WeightedChoice(r, []float64{-5, 2, -1}); got != 1 {
			t.Fatalf("WeightedChoice picked %d", got)
		}
	}
}

func TestChoice(t *testing.T) {
	r := NewSource(67)
	xs := []string{"a", "b", "c"}
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		seen[Choice(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Choice hit %d distinct values", len(seen))
	}
}

// Property: Intn(n) is always within range for any positive n.
func TestQuickIntnInRange(t *testing.T) {
	r := NewSource(71)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Pareto samples never fall below the scale parameter.
func TestQuickParetoLowerBound(t *testing.T) {
	r := NewSource(73)
	f := func(xmRaw, alphaRaw uint16) bool {
		xm := float64(xmRaw%1000)/10 + 0.1
		alpha := float64(alphaRaw%50)/10 + 0.1
		p := Pareto{Xm: xm, Alpha: alpha}
		return p.Sample(r) >= xm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ParetoFromMedian round-trips the median.
func TestQuickParetoMedianRoundTrip(t *testing.T) {
	f := func(medRaw, alphaRaw uint16) bool {
		med := float64(medRaw%10000)/10 + 1
		alpha := float64(alphaRaw%80)/10 + 0.2
		p := ParetoFromMedian(med, alpha)
		return math.Abs(p.Median()-med) < 1e-6*med
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
