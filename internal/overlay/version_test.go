package overlay

import (
	"testing"

	"p2panon/internal/dist"
)

// TestVersionTracksStructuralChanges checks the structural version moves
// on lifecycle transitions and on neighbor repairs that edit the set, and
// stays put for queries and no-op repairs.
func TestVersionTracksStructuralChanges(t *testing.T) {
	net := NewNetwork(3, dist.NewSource(1))
	v := net.Version()
	for i := 0; i < 6; i++ {
		net.Join(0, false)
	}
	if net.Version() == v {
		t.Fatal("Join did not advance version")
	}

	// Queries must not advance it.
	v = net.Version()
	net.OnlineIDs()
	net.NeighborsOf(0)
	net.Online(3)
	net.Availability(5, 0)
	if net.Version() != v {
		t.Fatal("queries advanced version")
	}

	// Top up early joiners (the first nodes joined a sparse network), then
	// check that a repair finding nothing to do is not a structural change.
	for _, id := range net.AllIDs() {
		net.RefreshNeighbors(id)
	}
	v = net.Version()
	net.RefreshNeighbors(0)
	if net.Version() != v {
		t.Fatal("no-op RefreshNeighbors advanced version")
	}

	net.Leave(1, 2, true) // departs permanently
	if net.Version() == v {
		t.Fatal("Leave did not advance version")
	}

	// Now a repair on a node that held the departed neighbor edits the set.
	v = net.Version()
	refreshed := false
	for _, id := range net.OnlineIDs() {
		if net.IsNeighbor(id, 2) {
			net.RefreshNeighbors(id)
			refreshed = true
			break
		}
	}
	if refreshed && net.Version() == v {
		t.Fatal("neighbor-editing RefreshNeighbors did not advance version")
	}
}
