package overlay

import (
	"testing"

	"p2panon/internal/dist"
)

// lineNet builds a 0→1→2→…→n-1 chain.
func lineNet(t *testing.T, n int) *Network {
	t.Helper()
	net := NewNetwork(1, dist.NewSource(1))
	for i := 0; i < n; i++ {
		net.Join(0, false)
	}
	for i := 0; i < n; i++ {
		if i < n-1 {
			net.Node(NodeID(i)).Neighbors = []NodeID{NodeID(i + 1)}
		} else {
			net.Node(NodeID(i)).Neighbors = nil
		}
	}
	return net
}

func TestReachableLine(t *testing.T) {
	net := lineNet(t, 5)
	if !net.Reachable(0, 4) {
		t.Fatal("end of line unreachable")
	}
	if net.Reachable(4, 0) {
		t.Fatal("reverse direction reachable on directed line")
	}
	if !net.Reachable(2, 2) {
		t.Fatal("self unreachable")
	}
	if net.Reachable(0, 99) || net.Reachable(99, 0) {
		t.Fatal("unknown node reachable")
	}
}

func TestReachableRespectsOffline(t *testing.T) {
	net := lineNet(t, 5)
	net.Leave(1, 2, false) // break the chain
	if net.Reachable(0, 4) {
		t.Fatal("path through offline node")
	}
	if net.Reachable(0, 2) {
		t.Fatal("offline target reachable")
	}
	net.Rejoin(2, 2)
	if !net.Reachable(0, 4) {
		t.Fatal("repaired chain unreachable")
	}
}

func TestHopDistance(t *testing.T) {
	net := lineNet(t, 6)
	if got := net.HopDistance(0, 5); got != 5 {
		t.Fatalf("distance %d", got)
	}
	if got := net.HopDistance(3, 3); got != 0 {
		t.Fatalf("self distance %d", got)
	}
	if got := net.HopDistance(5, 0); got != -1 {
		t.Fatalf("reverse distance %d", got)
	}
	net.Leave(1, 3, false)
	if got := net.HopDistance(0, 5); got != -1 {
		t.Fatalf("broken chain distance %d", got)
	}
}

func TestDegreesLine(t *testing.T) {
	net := lineNet(t, 4)
	st := net.Degrees()
	if st.Online != 4 {
		t.Fatalf("online %d", st.Online)
	}
	if st.MinOut != 0 || st.MaxOut != 1 {
		t.Fatalf("out degrees [%d, %d]", st.MinOut, st.MaxOut)
	}
	// 3 edges over 4 nodes.
	if st.MeanOut != 0.75 || st.MeanIn != 0.75 {
		t.Fatalf("means %g/%g", st.MeanOut, st.MeanIn)
	}
	if st.MaxIn != 1 {
		t.Fatalf("max in %d", st.MaxIn)
	}
}

func TestDegreesEmpty(t *testing.T) {
	net := NewNetwork(2, dist.NewSource(1))
	st := net.Degrees()
	if st.Online != 0 || st.MinOut != 0 {
		t.Fatalf("empty stats %+v", st)
	}
}

func TestStronglyReachableFraction(t *testing.T) {
	// A directed ring is strongly connected.
	net := NewNetwork(1, dist.NewSource(2))
	const n = 6
	for i := 0; i < n; i++ {
		net.Join(0, false)
	}
	for i := 0; i < n; i++ {
		net.Node(NodeID(i)).Neighbors = []NodeID{NodeID((i + 1) % n)}
	}
	if got := net.StronglyReachableFraction(); got != 1 {
		t.Fatalf("ring fraction %g", got)
	}
	// A line is not: only forward pairs reach.
	line := lineNet(t, 4)
	// Reachable ordered pairs: (0,1),(0,2),(0,3),(1,2),(1,3),(2,3) = 6 of 12.
	if got := line.StronglyReachableFraction(); got != 0.5 {
		t.Fatalf("line fraction %g", got)
	}
}

func TestStronglyReachableTrivial(t *testing.T) {
	net := NewNetwork(2, dist.NewSource(3))
	if net.StronglyReachableFraction() != 1 {
		t.Fatal("empty overlay fraction")
	}
	net.Join(0, false)
	if net.StronglyReachableFraction() != 1 {
		t.Fatal("singleton fraction")
	}
}

func TestRandomOverlayConnectivity(t *testing.T) {
	// Join-order bias: RefreshNeighbors keeps existing (early-biased)
	// neighbor sets, so late joiners are weakly in-connected and the
	// overlay is only mostly strongly connected.
	net := NewNetwork(5, dist.NewSource(4))
	for i := 0; i < 40; i++ {
		net.Join(0, false)
	}
	for _, id := range net.AllIDs() {
		net.RefreshNeighbors(id)
	}
	if got := net.StronglyReachableFraction(); got < 0.7 {
		t.Fatalf("refreshed overlay fraction %g", got)
	}
	st := net.Degrees()
	if st.MeanOut < 4.5 {
		t.Fatalf("mean out-degree %g", st.MeanOut)
	}
	// A uniform redraw (neighbors cleared, then refilled over the full
	// population) is essentially strongly connected at d=5, N=40.
	for _, id := range net.AllIDs() {
		net.Node(id).Neighbors = nil
		net.RefreshNeighbors(id)
	}
	if got := net.StronglyReachableFraction(); got < 0.99 {
		t.Fatalf("uniform overlay fraction %g", got)
	}
}
