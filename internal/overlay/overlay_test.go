package overlay

import (
	"testing"
	"testing/quick"

	"p2panon/internal/dist"
	"p2panon/internal/sim"
)

func newNet(t *testing.T, degree int, seed uint64) *Network {
	t.Helper()
	return NewNetwork(degree, dist.NewSource(seed))
}

func TestNewNetworkPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewNetwork(0, dist.NewSource(1)) },
		func() { NewNetwork(5, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestJoinAssignsIDsSequentially(t *testing.T) {
	n := newNet(t, 3, 1)
	for i := 0; i < 10; i++ {
		node := n.Join(0, false)
		if node.ID != NodeID(i) {
			t.Fatalf("join %d got ID %d", i, node.ID)
		}
		if node.State != Online {
			t.Fatalf("joined node state %v", node.State)
		}
	}
	if n.Len() != 10 || n.OnlineCount() != 10 {
		t.Fatalf("Len=%d Online=%d", n.Len(), n.OnlineCount())
	}
}

func TestNeighborSetProperties(t *testing.T) {
	n := newNet(t, 5, 2)
	for i := 0; i < 40; i++ {
		n.Join(0, false)
	}
	for _, id := range n.AllIDs() {
		node := n.Node(id)
		if len(node.Neighbors) > 5 {
			t.Fatalf("node %d has %d neighbors", id, len(node.Neighbors))
		}
		seen := map[NodeID]bool{}
		for _, v := range node.Neighbors {
			if v == id {
				t.Fatalf("node %d is its own neighbor", id)
			}
			if seen[v] {
				t.Fatalf("node %d has duplicate neighbor %d", id, v)
			}
			if !n.Exists(v) {
				t.Fatalf("node %d has unknown neighbor %d", id, v)
			}
			seen[v] = true
		}
	}
	// Late joiners should have full degree.
	last := n.Node(NodeID(39))
	if len(last.Neighbors) != 5 {
		t.Fatalf("late joiner degree %d", len(last.Neighbors))
	}
}

func TestFirstJoinerHasNoNeighbors(t *testing.T) {
	n := newNet(t, 5, 3)
	first := n.Join(0, false)
	if len(first.Neighbors) != 0 {
		t.Fatalf("first node neighbors: %v", first.Neighbors)
	}
}

func TestLeaveAndRejoin(t *testing.T) {
	n := newNet(t, 3, 4)
	for i := 0; i < 10; i++ {
		n.Join(0, false)
	}
	n.Leave(100, 3, false)
	if n.Online(3) {
		t.Fatal("node 3 still online")
	}
	if n.Node(3).State != Offline {
		t.Fatalf("state %v", n.Node(3).State)
	}
	if n.Node(3).TotalSession != 100 {
		t.Fatalf("session time %v", n.Node(3).TotalSession)
	}
	n.Rejoin(200, 3)
	if !n.Online(3) {
		t.Fatal("node 3 not back online")
	}
	n.Leave(250, 3, true)
	if n.Node(3).State != Departed {
		t.Fatal("node 3 should be departed")
	}
	if n.Node(3).TotalSession != 150 {
		t.Fatalf("total session %v", n.Node(3).TotalSession)
	}
}

func TestRejoinPanicsOnWrongState(t *testing.T) {
	n := newNet(t, 3, 5)
	n.Join(0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Rejoin of online node should panic")
		}
	}()
	n.Rejoin(10, 0)
}

func TestLeavePanicsOnOffline(t *testing.T) {
	n := newNet(t, 3, 5)
	n.Join(0, false)
	n.Leave(5, 0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double Leave should panic")
		}
	}()
	n.Leave(10, 0, false)
}

func TestNodePanicsOnUnknownID(t *testing.T) {
	n := newNet(t, 3, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown ID should panic")
		}
	}()
	n.Node(0)
}

func TestAvailabilityGroundTruth(t *testing.T) {
	n := newNet(t, 3, 6)
	n.Join(0, false) // node 0
	// Online [0,100), offline [100,200), online [200,300) -> at t=300,
	// availability = 200/300.
	n.Leave(100, 0, false)
	n.Rejoin(200, 0)
	got := n.Availability(300, 0)
	want := 200.0 / 300.0
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("availability = %g, want %g", got, want)
	}
}

func TestAvailabilityDeparted(t *testing.T) {
	n := newNet(t, 3, 6)
	n.Join(0, false)
	n.Leave(50, 0, false)
	n.Rejoin(100, 0)
	n.Leave(150, 0, true)
	// Lifetime 150, sessions 100 -> 2/3 regardless of query time.
	got := n.Availability(1000, 0)
	want := 100.0 / 150.0
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("availability = %g, want %g", got, want)
	}
}

func TestAvailabilityZeroLifetime(t *testing.T) {
	n := newNet(t, 3, 6)
	n.Join(10, false)
	if a := n.Availability(10, 0); a != 0 {
		t.Fatalf("zero-lifetime availability = %g", a)
	}
}

func TestAvailabilityNeverAlwaysOnlineIsOne(t *testing.T) {
	n := newNet(t, 3, 6)
	n.Join(0, false)
	if a := n.Availability(500, 0); a != 1 {
		t.Fatalf("always-online availability = %g", a)
	}
}

func TestRefreshNeighborsDropsDeparted(t *testing.T) {
	n := newNet(t, 4, 7)
	for i := 0; i < 30; i++ {
		n.Join(0, false)
	}
	victim := n.Node(5).Neighbors[0]
	n.Leave(10, victim, true) // departed
	n.RefreshNeighbors(5)
	for _, v := range n.Node(5).Neighbors {
		if v == victim {
			t.Fatal("departed neighbor not dropped")
		}
		if n.Node(v).State == Departed {
			t.Fatal("replacement neighbor is departed")
		}
	}
	if len(n.Node(5).Neighbors) != 4 {
		t.Fatalf("degree after refresh = %d", len(n.Node(5).Neighbors))
	}
}

func TestRefreshNeighborsKeepsOffline(t *testing.T) {
	n := newNet(t, 4, 8)
	for i := 0; i < 30; i++ {
		n.Join(0, false)
	}
	off := n.Node(5).Neighbors[1]
	n.Leave(10, off, false) // just offline
	n.RefreshNeighbors(5)
	found := false
	for _, v := range n.Node(5).Neighbors {
		if v == off {
			found = true
		}
	}
	if !found {
		t.Fatal("offline neighbor was dropped; estimator needs to see absences")
	}
}

func TestGoodOnlineExcludesMalicious(t *testing.T) {
	n := newNet(t, 3, 9)
	for i := 0; i < 10; i++ {
		n.Join(0, i%2 == 0) // even IDs malicious
	}
	good := n.GoodOnline()
	if len(good) != 5 {
		t.Fatalf("good count %d", len(good))
	}
	for _, id := range good {
		if n.Node(id).Malicious {
			t.Fatalf("malicious node %d in GoodOnline", id)
		}
	}
}

func TestOnlineIDsSorted(t *testing.T) {
	n := newNet(t, 3, 10)
	for i := 0; i < 20; i++ {
		n.Join(0, false)
	}
	n.Leave(1, 7, false)
	ids := n.OnlineIDs()
	if len(ids) != 19 {
		t.Fatalf("online count %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("OnlineIDs not sorted")
		}
		if ids[i] == 7 || ids[i-1] == 7 {
			t.Fatal("offline node listed")
		}
	}
}

func TestIsNeighborAndNeighborsOfCopy(t *testing.T) {
	n := newNet(t, 3, 11)
	for i := 0; i < 10; i++ {
		n.Join(0, false)
	}
	nb := n.NeighborsOf(9)
	if len(nb) == 0 {
		t.Fatal("no neighbors")
	}
	if !n.IsNeighbor(9, nb[0]) {
		t.Fatal("IsNeighbor false for actual neighbor")
	}
	// Mutating the copy must not corrupt the node.
	nb[0] = 999
	if n.IsNeighbor(9, 999) {
		t.Fatal("NeighborsOf returned aliased slice")
	}
}

func TestDeterministicTopology(t *testing.T) {
	build := func() [][]NodeID {
		n := newNet(t, 5, 42)
		for i := 0; i < 40; i++ {
			n.Join(0, false)
		}
		var out [][]NodeID
		for _, id := range n.AllIDs() {
			out = append(out, n.NeighborsOf(id))
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("node %d neighbor count differs", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("node %d neighbor %d differs", i, j)
			}
		}
	}
}

// Property: availability is always in [0, 1] under arbitrary leave/rejoin
// schedules.
func TestQuickAvailabilityBounds(t *testing.T) {
	f := func(gaps []uint8) bool {
		n := NewNetwork(2, dist.NewSource(99))
		n.Join(0, false)
		now := 0.0
		online := true
		for _, g := range gaps {
			now += float64(g) + 1
			if online {
				n.Leave(timeOf(now), 0, false)
			} else {
				n.Rejoin(timeOf(now), 0)
			}
			online = !online
			a := n.Availability(timeOf(now+1), 0)
			if a < 0 || a > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func timeOf(s float64) sim.Time { return sim.Time(s) }

func TestOnChurnNotifiesTransitions(t *testing.T) {
	n := NewNetwork(3, dist.NewSource(7))
	type event struct {
		id NodeID
		s  State
	}
	var got []event
	n.OnChurn(func(id NodeID, s State) { got = append(got, event{id, s}) })
	n.OnChurn(nil) // must be ignored

	a := n.Join(0, false)
	b := n.Join(1, false)
	n.Leave(5, a.ID, false)
	n.Rejoin(8, a.ID)
	n.Leave(9, b.ID, true)

	want := []event{
		{a.ID, Online},
		{b.ID, Online},
		{a.ID, Offline},
		{a.ID, Online},
		{b.ID, Departed},
	}
	if len(got) != len(want) {
		t.Fatalf("observed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
}
