package overlay

import (
	"math"
	"sort"
)

// Reachable reports whether an online directed path of neighbor edges
// exists from `from` to `to`, using only online nodes. It is the sanity
// check experiments use before measuring routing on a topology (an
// unreachable responder would silently degrade every strategy to direct
// delivery).
func (n *Network) Reachable(from, to NodeID) bool {
	if !n.Exists(from) || !n.Exists(to) {
		return false
	}
	if from == to {
		return n.Online(from)
	}
	if !n.Online(from) || !n.Online(to) {
		return false
	}
	seen := map[NodeID]struct{}{from: {}}
	frontier := []NodeID{from}
	for len(frontier) > 0 {
		var next []NodeID
		for _, u := range frontier {
			for _, v := range n.Node(u).Neighbors {
				if !n.Online(v) {
					continue
				}
				if v == to {
					return true
				}
				if _, ok := seen[v]; ok {
					continue
				}
				seen[v] = struct{}{}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return false
}

// HopDistance returns the minimum number of neighbor edges from `from` to
// `to` over online nodes, or -1 when unreachable.
func (n *Network) HopDistance(from, to NodeID) int {
	if !n.Exists(from) || !n.Exists(to) || !n.Online(from) || !n.Online(to) {
		return -1
	}
	if from == to {
		return 0
	}
	dist := map[NodeID]int{from: 0}
	frontier := []NodeID{from}
	for len(frontier) > 0 {
		var next []NodeID
		for _, u := range frontier {
			for _, v := range n.Node(u).Neighbors {
				if !n.Online(v) {
					continue
				}
				if _, ok := dist[v]; ok {
					continue
				}
				dist[v] = dist[u] + 1
				if v == to {
					return dist[v]
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return -1
}

// DegreeStats summarises the online overlay's out-degree distribution and
// in-degree skew — the structural facts behind selection bias (a node that
// appears in many neighbor sets is probed and picked more often).
type DegreeStats struct {
	Online      int
	MinOut      int
	MaxOut      int
	MeanOut     float64
	MaxIn       int
	MeanIn      float64
	InDegreeGap float64 // MaxIn − MeanIn, the popularity skew
}

// Degrees computes DegreeStats over the online nodes, counting only edges
// between online nodes.
func (n *Network) Degrees() DegreeStats {
	online := n.OnlineIDs()
	st := DegreeStats{Online: len(online), MinOut: math.MaxInt}
	if len(online) == 0 {
		st.MinOut = 0
		return st
	}
	in := make(map[NodeID]int)
	totalOut := 0
	for _, id := range online {
		out := 0
		for _, v := range n.Node(id).Neighbors {
			if n.Online(v) {
				out++
				in[v]++
			}
		}
		totalOut += out
		if out < st.MinOut {
			st.MinOut = out
		}
		if out > st.MaxOut {
			st.MaxOut = out
		}
	}
	st.MeanOut = float64(totalOut) / float64(len(online))
	totalIn := 0
	for _, id := range online {
		d := in[id]
		totalIn += d
		if d > st.MaxIn {
			st.MaxIn = d
		}
	}
	st.MeanIn = float64(totalIn) / float64(len(online))
	st.InDegreeGap = float64(st.MaxIn) - st.MeanIn
	return st
}

// StronglyReachableFraction returns the fraction of ordered online pairs
// (u, v), u ≠ v, with a directed online path u→v. 1.0 means the online
// overlay is strongly connected — the regime the paper's simulations
// assume implicitly. Quadratic BFS; intended for N ≤ a few hundred.
func (n *Network) StronglyReachableFraction() float64 {
	online := n.OnlineIDs()
	if len(online) < 2 {
		return 1
	}
	sort.Slice(online, func(i, j int) bool { return online[i] < online[j] })
	reached := 0
	total := 0
	for _, u := range online {
		// Single BFS from u covers all targets.
		seen := map[NodeID]struct{}{u: {}}
		frontier := []NodeID{u}
		for len(frontier) > 0 {
			var next []NodeID
			for _, x := range frontier {
				for _, v := range n.Node(x).Neighbors {
					if !n.Online(v) {
						continue
					}
					if _, ok := seen[v]; ok {
						continue
					}
					seen[v] = struct{}{}
					next = append(next, v)
				}
			}
			frontier = next
		}
		total += len(online) - 1
		reached += len(seen) - 1
	}
	if total == 0 {
		return 1
	}
	return float64(reached) / float64(total)
}
