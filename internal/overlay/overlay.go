// Package overlay models the P2P forwarding overlay from the paper: a
// population of peer nodes, each maintaining a fixed-size neighbor set D(s)
// of potential forwarders, with join/leave (churn) transitions and
// ground-truth availability bookkeeping.
//
// The overlay is purely structural — who exists, who is online, who
// neighbors whom. Behaviour (probing, routing, incentives) lives in the
// probe, quality and core packages, which observe and act on an overlay.
package overlay

import (
	"fmt"
	"sort"

	"p2panon/internal/dist"
	"p2panon/internal/sim"
	"p2panon/internal/telemetry"
)

// NodeID identifies a peer. IDs are dense small integers assigned in join
// order, which keeps them usable as slice indices throughout the repo.
type NodeID int

// None is the sentinel "no node" value, used for the NULL routing strategy
// from the paper's strategy space.
const None NodeID = -1

// State is a node's lifecycle state.
type State uint8

const (
	// Offline: the node exists (has joined at least once) but is not in a
	// session.
	Offline State = iota
	// Online: the node is in a session and can forward.
	Online
	// Departed: the node has left the system permanently (end of
	// lifetime); it never returns.
	Departed
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Offline:
		return "offline"
	case Online:
		return "online"
	case Departed:
		return "departed"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Node is one peer in the overlay.
type Node struct {
	ID    NodeID
	State State

	// Neighbors is the node's forwarder candidate set D(s), fixed size d
	// while enough peers exist. Order is maintenance order; routing code
	// must not depend on it.
	Neighbors []NodeID

	// Malicious marks adversary-controlled nodes (they route randomly per
	// the paper's adversary model).
	Malicious bool

	// FirstJoin and FinalDeparture bound the node's lifetime; TotalSession
	// accumulates completed session time. Availability ground truth is
	// TotalSession / (FinalDeparture - FirstJoin).
	FirstJoin      sim.Time
	FinalDeparture sim.Time
	TotalSession   sim.Time

	sessionStart sim.Time // start of the current session while Online
}

// ChurnFunc observes a node's lifecycle transition: it is called with the
// node's ID and its new state after every Join, Rejoin and Leave.
type ChurnFunc func(id NodeID, s State)

// Network is the overlay: the node table plus the online set. It is not
// safe for concurrent use; the transport package provides the concurrent
// runtime.
type Network struct {
	nodes     []*Node
	online    map[NodeID]struct{}
	degree    int
	rng       *dist.Source
	observers []ChurnFunc

	// version counts structural changes — lifecycle transitions and actual
	// neighbor-set edits — so routing-layer caches (SPNE tables, min-cost
	// memos) can invalidate exactly when topology state they consumed may
	// have moved. Pure queries never advance it.
	version uint64

	// journal records which node each recent version bump touched, so
	// incremental solvers can ask "what changed since version v" instead
	// of invalidating wholesale. jbase is the newest version the journal
	// can NOT account for: entries cover (jbase, version]. Touch is an
	// out-of-band wildcard — it resets the journal and advances jbase,
	// since the caller did not say which node it edited.
	journal []journalEntry
	jbase   uint64

	// churn counters, one per destination state; nil (no-op) until
	// Instrument binds them into a telemetry registry.
	churnOnline   *telemetry.Counter
	churnOffline  *telemetry.Counter
	churnDeparted *telemetry.Counter
}

// NewNetwork returns an empty overlay whose nodes will maintain neighbor
// sets of the given degree d. It panics if degree < 1.
func NewNetwork(degree int, rng *dist.Source) *Network {
	if degree < 1 {
		panic(fmt.Sprintf("overlay: degree %d < 1", degree))
	}
	if rng == nil {
		panic("overlay: nil rng")
	}
	return &Network{
		online: make(map[NodeID]struct{}),
		degree: degree,
		rng:    rng,
	}
}

// OnChurn registers fn to be notified of every subsequent lifecycle
// transition (Join, Rejoin, Leave — the churn hooks a live runtime mirrors
// into peer goroutines; see transport.Mirror). Observers run synchronously
// in registration order.
func (n *Network) OnChurn(fn ChurnFunc) {
	if fn != nil {
		n.observers = append(n.observers, fn)
	}
}

// Instrument binds the overlay's churn counters into reg, exposed as
// overlay_churn_total{state=online|offline|departed}. Call before driving
// churn; transitions before the call are not retro-counted.
func (n *Network) Instrument(reg *telemetry.Registry) {
	reg.Help("overlay_churn_total", "node lifecycle transitions by destination state")
	n.churnOnline = reg.Counter("overlay_churn_total", telemetry.Labels{"state": "online"})
	n.churnOffline = reg.Counter("overlay_churn_total", telemetry.Labels{"state": "offline"})
	n.churnDeparted = reg.Counter("overlay_churn_total", telemetry.Labels{"state": "departed"})
}

// journalEntry says version bumped because node changed.
type journalEntry struct {
	version uint64
	node    NodeID
}

// journalCap bounds the change journal. When full, the oldest half is
// dropped and jbase advances past it — readers that far behind fall back
// to a full rebuild, exactly as if a wildcard had occurred.
const journalCap = 1024

// journalRecord attributes the current (just bumped) version to id.
// Every version advance must either pass through here or reset the
// journal via journalWildcard, or ChangesSince would claim coverage of
// changes it never saw.
func (n *Network) journalRecord(id NodeID) {
	if len(n.journal) >= journalCap {
		half := len(n.journal) / 2
		n.jbase = n.journal[half-1].version
		n.journal = append(n.journal[:0], n.journal[half:]...)
	}
	n.journal = append(n.journal, journalEntry{version: n.version, node: id})
}

// journalWildcard forgets the journal after an unattributable change.
func (n *Network) journalWildcard() {
	n.journal = n.journal[:0]
	n.jbase = n.version
}

// ChangesSince appends to buf the IDs of every node the overlay touched
// after version v (duplicates possible — one entry per change) and
// reports whether the journal actually covers that span. ok == false
// means v predates the journal's horizon (or a Touch wildcard occurred
// since); the caller must then treat everything as changed. With
// ok == true and no appended IDs, nothing changed since v.
func (n *Network) ChangesSince(v uint64, buf []NodeID) ([]NodeID, bool) {
	if v == n.version {
		return buf, true
	}
	if v < n.jbase || v > n.version {
		return buf, false
	}
	for i := len(n.journal) - 1; i >= 0; i-- {
		if n.journal[i].version <= v {
			break
		}
		buf = append(buf, n.journal[i].node)
	}
	return buf, true
}

// notifyChurn fans a transition out to the registered observers.
func (n *Network) notifyChurn(id NodeID, s State) {
	n.version++
	n.journalRecord(id)
	switch s {
	case Online:
		n.churnOnline.Inc()
	case Offline:
		n.churnOffline.Inc()
	case Departed:
		n.churnDeparted.Inc()
	}
	for _, fn := range n.observers {
		fn(id, s)
	}
}

// Degree returns the configured neighbor-set size d.
func (n *Network) Degree() int { return n.degree }

// Version returns the structural-change counter: it advances on every
// Join, Rejoin and Leave, and on RefreshNeighbors calls that actually
// modify a neighbor set. Equal versions guarantee an unchanged topology
// (node set, online set and neighbor sets). Callers that hand-edit a
// Node's Neighbors slice directly (scripted topologies) must call Touch
// afterwards.
func (n *Network) Version() uint64 { return n.version }

// Touch records an out-of-band structural change: call it after mutating
// a Node's Neighbors slice directly so version-keyed caches invalidate.
// Touch cannot know which node was edited, so it also voids the change
// journal — incremental consumers fall back to a full rebuild.
func (n *Network) Touch() {
	n.version++
	n.journalWildcard()
}

// Len returns the total number of nodes ever created (any state).
func (n *Network) Len() int { return len(n.nodes) }

// OnlineCount returns the number of nodes currently online.
func (n *Network) OnlineCount() int { return len(n.online) }

// Node returns the node with the given ID. It panics on an unknown ID —
// IDs are only ever minted by Join, so an unknown ID is a programming
// error.
func (n *Network) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("overlay: unknown node %d", id))
	}
	return n.nodes[id]
}

// Exists reports whether id names a created node.
func (n *Network) Exists(id NodeID) bool {
	return id >= 0 && int(id) < len(n.nodes)
}

// Online reports whether id is currently online.
func (n *Network) Online(id NodeID) bool {
	_, ok := n.online[id]
	return ok
}

// OnlineIDs returns the online node IDs in ascending order. The slice is
// freshly allocated.
func (n *Network) OnlineIDs() []NodeID {
	out := make([]NodeID, 0, len(n.online))
	for id := range n.online {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllIDs returns every created node ID in ascending order.
func (n *Network) AllIDs() []NodeID {
	out := make([]NodeID, len(n.nodes))
	for i := range n.nodes {
		out[i] = NodeID(i)
	}
	return out
}

// Join creates a new node, brings it online at time now, and assigns it up
// to d random online neighbors (excluding itself). Existing nodes do not
// rewire to include the newcomer immediately; they discover it through
// neighbor repair (RefreshNeighbors) as in typical P2P maintenance.
func (n *Network) Join(now sim.Time, malicious bool) *Node {
	id := NodeID(len(n.nodes))
	node := &Node{
		ID:             id,
		State:          Online,
		Malicious:      malicious,
		FirstJoin:      now,
		FinalDeparture: now,
		sessionStart:   now,
	}
	n.nodes = append(n.nodes, node)
	n.online[id] = struct{}{}
	node.Neighbors = n.pickNeighbors(id, nil)
	n.notifyChurn(id, Online)
	return node
}

// GrowUniform bulk-joins count good nodes at time now: IDs are assigned
// sequentially, every node comes up Online, and each samples its d
// neighbors uniformly from the *final* population (excluding itself).
// Join's incremental candidate-set sort costs O(n log n) per call —
// O(n² log n) across a large build-out — which walls off scale-frontier
// populations; GrowUniform is O(count·d) expected. Semantically it is the
// steady-state topology Join + RefreshNeighbors converge to, built in one
// shot; churn observers and the version counter advance once per node,
// exactly as with individual joins. Intended for constructing large
// static overlays (the N-sweep benchmarks); incremental arrival dynamics
// still go through Join.
func (n *Network) GrowUniform(now sim.Time, count int) {
	if count <= 0 {
		return
	}
	start := len(n.nodes)
	total := start + count
	for i := start; i < total; i++ {
		id := NodeID(i)
		n.nodes = append(n.nodes, &Node{
			ID:             id,
			State:          Online,
			FirstJoin:      now,
			FinalDeparture: now,
			sessionStart:   now,
		})
		n.online[id] = struct{}{}
	}
	for i := start; i < total; i++ {
		id := NodeID(i)
		d := n.degree
		if d > total-1 {
			d = total - 1
		}
		neigh := make([]NodeID, 0, d)
		for len(neigh) < d {
			// Uniform over [0, total) \ {id}: draw from a range one short
			// and shift past self; reject duplicates (d is small, so the
			// linear scan beats a map).
			v := NodeID(n.rng.Intn(total - 1))
			if v >= id {
				v++
			}
			dup := false
			for _, u := range neigh {
				if u == v {
					dup = true
					break
				}
			}
			if !dup {
				neigh = append(neigh, v)
			}
		}
		n.nodes[i].Neighbors = neigh
	}
	for i := start; i < total; i++ {
		n.notifyChurn(NodeID(i), Online)
	}
}

// Rejoin brings an Offline node back online at time now, starting a new
// session. It panics if the node is Online or Departed.
func (n *Network) Rejoin(now sim.Time, id NodeID) {
	node := n.Node(id)
	if node.State != Offline {
		panic(fmt.Sprintf("overlay: Rejoin of %d in state %v", id, node.State))
	}
	node.State = Online
	node.sessionStart = now
	n.online[id] = struct{}{}
	// Repair any neighbors that departed while we were away.
	n.RefreshNeighbors(id)
	n.notifyChurn(id, Online)
}

// Leave ends the node's current session at time now. If final is true the
// node departs permanently. It panics if the node is not Online.
func (n *Network) Leave(now sim.Time, id NodeID, final bool) {
	node := n.Node(id)
	if node.State != Online {
		panic(fmt.Sprintf("overlay: Leave of %d in state %v", id, node.State))
	}
	node.TotalSession += now - node.sessionStart
	node.FinalDeparture = now
	if final {
		node.State = Departed
	} else {
		node.State = Offline
	}
	delete(n.online, id)
	n.notifyChurn(id, node.State)
}

// pickNeighbors selects up to d random online nodes, excluding self and
// anything in keep (already-held neighbors being retained).
func (n *Network) pickNeighbors(self NodeID, keep []NodeID) []NodeID {
	held := make(map[NodeID]struct{}, len(keep)+1)
	held[self] = struct{}{}
	for _, k := range keep {
		held[k] = struct{}{}
	}
	candidates := make([]NodeID, 0, len(n.online))
	for id := range n.online {
		if _, skip := held[id]; !skip {
			candidates = append(candidates, id)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	want := n.degree - len(keep)
	if want <= 0 {
		return append([]NodeID(nil), keep...)
	}
	if want > len(candidates) {
		want = len(candidates)
	}
	idx := dist.SampleWithoutReplacement(n.rng, len(candidates), want)
	out := append([]NodeID(nil), keep...)
	for _, i := range idx {
		out = append(out, candidates[i])
	}
	return out
}

// RefreshNeighbors repairs id's neighbor set: departed neighbors are
// dropped and replaced with fresh random online peers so the set returns
// to size d when possible. Offline (but not departed) neighbors are kept —
// they may come back, and the paper's availability estimator needs to
// observe their absences.
func (n *Network) RefreshNeighbors(id NodeID) {
	node := n.Node(id)
	keep := node.Neighbors[:0]
	dropped := 0
	for _, v := range node.Neighbors {
		if n.Node(v).State != Departed {
			keep = append(keep, v)
		} else {
			dropped++
		}
	}
	node.Neighbors = n.pickNeighbors(id, keep)
	// Only an actual edit — a departed neighbor dropped or a replacement
	// found — is a structural change; the common repair-finds-nothing call
	// must not invalidate topology-keyed caches.
	if dropped > 0 || len(node.Neighbors) != len(keep) {
		n.version++
		n.journalRecord(id)
	}
}

// Availability returns the node's ground-truth availability at time now:
// the ratio of accumulated session time to lifetime, per the paper's §2.1
// definition. A node observed for zero lifetime has availability 0.
func (n *Network) Availability(now sim.Time, id NodeID) float64 {
	node := n.Node(id)
	total := node.TotalSession
	if node.State == Online {
		total += now - node.sessionStart
	}
	life := now - node.FirstJoin
	if node.State == Departed {
		life = node.FinalDeparture - node.FirstJoin
	}
	if life <= 0 {
		return 0
	}
	a := float64(total) / float64(life)
	if a > 1 {
		a = 1
	}
	return a
}

// GoodOnline returns the online, non-malicious node IDs in ascending order.
func (n *Network) GoodOnline() []NodeID {
	var out []NodeID
	for id := range n.online {
		if !n.nodes[id].Malicious {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NeighborsOf returns a copy of id's current neighbor set.
func (n *Network) NeighborsOf(id NodeID) []NodeID {
	return append([]NodeID(nil), n.Node(id).Neighbors...)
}

// IsNeighbor reports whether v is in u's neighbor set.
func (n *Network) IsNeighbor(u, v NodeID) bool {
	for _, x := range n.Node(u).Neighbors {
		if x == v {
			return true
		}
	}
	return false
}
