package report

import (
	"fmt"
	"strings"

	"p2panon/internal/telemetry"
)

// TelemetryTable renders a registry snapshot as one fixed-width table:
// counters and gauges get a value row, histograms a count/mean/p50/p90/max
// summary row. Series appear in the snapshot's order (sorted by name then
// label set), so output is deterministic and diffable across runs.
func TelemetryTable(title string, snap telemetry.Snapshot) *Table {
	t := &Table{Title: title, Headers: []string{"series", "value", "mean", "p50", "p90", "max"}}
	for _, c := range snap.Counters {
		t.AddRow(seriesName(c.Name, c.Labels), fmt.Sprintf("%d", c.Value), "-", "-", "-", "-")
	}
	for _, g := range snap.Gauges {
		t.AddRow(seriesName(g.Name, g.Labels), fmt.Sprintf("%d", g.Value), "-", "-", "-", "-")
	}
	for _, h := range snap.Histograms {
		t.AddRow(seriesName(h.Name, h.Labels),
			fmt.Sprintf("%d", h.Count),
			F4(h.Mean()), F4(h.Quantile(0.5)), F4(h.Quantile(0.9)), F4(h.Quantile(1)))
	}
	return t
}

// seriesName renders name{k="v",...} like the Prometheus exposition.
func seriesName(name string, labels telemetry.Labels) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + labels.String() + "}"
}

// HistogramChart renders a telemetry histogram snapshot as an ASCII bar
// chart, one row per bucket (non-cumulative counts, +Inf bucket last).
// Empty snapshots render as just the title.
func HistogramChart(title string, h telemetry.HistogramSnapshot, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if h.Count == 0 {
		return b.String()
	}
	if width < 1 {
		width = 1
	}
	var maxCount int64
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	label := func(i int) string {
		if i < len(h.Bounds) {
			return fmt.Sprintf("<=%g", h.Bounds[i])
		}
		return "+Inf"
	}
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = int(c * int64(width) / maxCount)
		}
		fmt.Fprintf(&b, "%12s | %-*s %d\n", label(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
