// Package report renders experiment output in the shapes the paper
// presents: fixed-width ASCII tables (Table 2), figure series as aligned
// columns with error bars (Figs. 3-5), CDF curves (Figs. 6-7), and CSV for
// external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"p2panon/internal/experiment"
	"p2panon/internal/stats"
)

// Table is a generic fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; cells are used as-is.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w with column alignment.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (no quoting — all
// emitted cells are numeric or simple identifiers).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float with 2 decimals for table cells.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// F4 formats a float with 4 decimals.
func F4(v float64) string { return fmt.Sprintf("%.4f", v) }

// SeriesTable renders a figure series (Fig. 3/4/5 style) as a table of
// x, mean, ±CI.
func SeriesTable(title, xName string, series experiment.Series) *Table {
	t := &Table{Title: title, Headers: []string{xName, "mean", "ci95", "n"}}
	for _, p := range series.Points {
		t.AddRow(F(p.X), F(p.Mean), F(p.CI), fmt.Sprintf("%d", p.N))
	}
	return t
}

// MultiSeriesTable renders several series against a shared x column
// (Fig. 5 style: one column per strategy).
func MultiSeriesTable(title, xName string, series []experiment.Series) *Table {
	headers := []string{xName}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	t := &Table{Title: title, Headers: headers}
	if len(series) == 0 {
		return t
	}
	for i, p := range series[0].Points {
		row := []string{F(p.X)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, F(s.Points[i].Mean))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Table2Render lays out experiment.Table2 exactly like the paper: rows
// f=…, columns τ=…, and a final Mean row.
func Table2Render(tab *experiment.Table2) *Table {
	headers := []string{""}
	for _, tau := range tab.Taus {
		headers = append(headers, fmt.Sprintf("tau=%g", tau))
	}
	t := &Table{Title: "Table 2: Routing efficiency for utility model I", Headers: headers}
	for _, f := range tab.Fractions {
		row := []string{fmt.Sprintf("f=%g", f)}
		for _, tau := range tab.Taus {
			if v, ok := tab.Cell(tau, f); ok {
				row = append(row, F(v))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	meanRow := []string{"Mean"}
	for _, m := range tab.Means {
		meanRow = append(meanRow, F(m))
	}
	t.AddRow(meanRow...)
	return t
}

// CDFTable renders CDF curves (Figs. 6-7 style): one x column per series
// plus its F(x).
func CDFTable(title string, cdfs []experiment.CDFSeries) *Table {
	headers := []string{}
	for _, c := range cdfs {
		headers = append(headers, c.Name+"-payoff", c.Name+"-F")
	}
	t := &Table{Title: title, Headers: headers}
	maxLen := 0
	for _, c := range cdfs {
		if len(c.Points) > maxLen {
			maxLen = len(c.Points)
		}
	}
	for i := 0; i < maxLen; i++ {
		var row []string
		for _, c := range cdfs {
			if i < len(c.Points) {
				row = append(row, F(c.Points[i].X), F4(c.Points[i].F))
			} else {
				row = append(row, "-", "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// CDFSummaryTable renders the mean/max/stddev comparison the paper draws
// from Figs. 6-7, plus the payoff-concentration metrics (Gini, Jain).
func CDFSummaryTable(title string, cdfs []experiment.CDFSeries) *Table {
	t := &Table{Title: title, Headers: []string{"strategy", "mean", "max", "stddev", "gini", "jain"}}
	for _, c := range cdfs {
		t.AddRow(c.Name, F(c.Mean), F(c.Max), F(c.StdDev), F4(c.Gini), F4(c.Jain))
	}
	return t
}

// Sparkline renders values as a unicode mini-chart for quick terminal
// inspection. Non-finite values render as the lowest tick, and the index
// arithmetic is clamped so pathological ranges (±Inf endpoints) cannot
// select an out-of-range rune.
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo && !math.IsNaN(v) && !math.IsInf(v, 0) {
			idx = int((v - lo) / (hi - lo) * float64(len(ticks)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ticks) {
				idx = len(ticks) - 1
			}
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}

// Histogram renders a stats.Histogram as an ASCII bar chart. A nil or
// empty histogram renders as just the title, and a non-positive width
// falls back to a single-column chart instead of panicking in Repeat.
func Histogram(title string, h *stats.Histogram, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if h == nil {
		return b.String()
	}
	if width < 1 {
		width = 1
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%10.1f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
