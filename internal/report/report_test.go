package report

import (
	"strings"
	"testing"

	"p2panon/internal/experiment"
	"p2panon/internal/stats"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Headers: []string{"a", "long-header", "c"},
	}
	tab.AddRow("1", "2", "3")
	tab.AddRow("400", "5", "6")
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "long-header") {
		t.Fatal("missing header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Alignment: both data rows start flush-left with padded first col.
	if !strings.HasPrefix(lines[3], "1  ") {
		t.Fatalf("row not padded: %q", lines[3])
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"x", "y"}}
	tab.AddRow("1", "2")
	var b strings.Builder
	if err := tab.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "x,y\n1,2\n" {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159) != "3.14" {
		t.Fatalf("F = %q", F(3.14159))
	}
	if F4(3.14159) != "3.1416" {
		t.Fatalf("F4 = %q", F4(3.14159))
	}
}

func TestSeriesTable(t *testing.T) {
	s := experiment.Series{
		Name: "payoff",
		Points: []experiment.FigPoint{
			{X: 0.1, Mean: 100, CI: 5, N: 10},
			{X: 0.5, Mean: 50, CI: 3, N: 10},
		},
	}
	tab := SeriesTable("Fig 3", "f", s)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "100.00" {
		t.Fatalf("cell = %q", tab.Rows[0][1])
	}
}

func TestMultiSeriesTable(t *testing.T) {
	mk := func(name string, means ...float64) experiment.Series {
		s := experiment.Series{Name: name}
		for i, m := range means {
			s.Points = append(s.Points, experiment.FigPoint{X: float64(i), Mean: m})
		}
		return s
	}
	tab := MultiSeriesTable("Fig 5", "f", []experiment.Series{
		mk("random", 10, 12),
		mk("utility-I", 4, 5),
	})
	if len(tab.Headers) != 3 {
		t.Fatalf("headers %v", tab.Headers)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "10.00" || tab.Rows[0][2] != "4.00" {
		t.Fatalf("row %v", tab.Rows[0])
	}
	empty := MultiSeriesTable("x", "f", nil)
	if len(empty.Rows) != 0 {
		t.Fatal("empty series produced rows")
	}
}

func TestTable2Render(t *testing.T) {
	tab2 := &experiment.Table2{
		Taus:      []float64{0.5, 1},
		Fractions: []float64{0.1, 0.9},
		Cells: []experiment.Table2Cell{
			{Tau: 0.5, F: 0.1, Efficiency: 409},
			{Tau: 1, F: 0.1, Efficiency: 390},
			{Tau: 0.5, F: 0.9, Efficiency: 85},
			{Tau: 1, F: 0.9, Efficiency: 91},
		},
		Means: []float64{247, 240.5},
	}
	tab := Table2Render(tab2)
	if len(tab.Rows) != 3 { // f=0.1, f=0.9, Mean
		t.Fatalf("rows %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "f=0.1" || tab.Rows[2][0] != "Mean" {
		t.Fatalf("row labels %v / %v", tab.Rows[0], tab.Rows[2])
	}
	if tab.Rows[0][1] != "409.00" {
		t.Fatalf("cell %q", tab.Rows[0][1])
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "tau=0.5") {
		t.Fatal("missing tau header")
	}
}

func TestCDFTables(t *testing.T) {
	cdfs := []experiment.CDFSeries{
		{Name: "random", Points: []stats.Point{{X: 0, F: 0}, {X: 10, F: 1}}, Mean: 5, Max: 10, StdDev: 2},
		{Name: "utility-I", Points: []stats.Point{{X: 0, F: 0}}, Mean: 8, Max: 30, StdDev: 9},
	}
	tab := CDFTable("Fig 6", cdfs)
	if len(tab.Headers) != 4 {
		t.Fatalf("headers %v", tab.Headers)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	if tab.Rows[1][2] != "-" {
		t.Fatalf("short series not padded: %v", tab.Rows[1])
	}
	sum := CDFSummaryTable("summary", cdfs)
	if len(sum.Rows) != 2 || sum.Rows[1][0] != "utility-I" {
		t.Fatalf("summary %v", sum.Rows)
	}
	if len(sum.Headers) != 6 {
		t.Fatalf("summary headers %v", sum.Headers)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline %q", flat)
	}
}

func TestHistogramRender(t *testing.T) {
	h := stats.NewHistogram(0, 10, 2)
	h.Add(1)
	h.Add(2)
	h.Add(8)
	out := Histogram("payoffs", h, 10)
	if !strings.Contains(out, "payoffs") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "##########") {
		t.Fatal("missing full bar")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines %d", len(lines))
	}
}
