package report

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"

	"p2panon/internal/stats"
	"p2panon/internal/telemetry"
)

func TestSparklineEdgeCases(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty input = %q", got)
	}
	// All-equal values must render the lowest tick, not divide by zero.
	if got := Sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Fatalf("all-equal = %q", got)
	}
	// NaN and ±Inf must not panic or select out-of-range runes.
	got := Sparkline([]float64{1, math.NaN(), 2, math.Inf(1), 3, math.Inf(-1)})
	if utf8.RuneCountInString(got) != 6 {
		t.Fatalf("mixed non-finite = %q (%d runes)", got, utf8.RuneCountInString(got))
	}
	// All-non-finite input renders, again without panicking.
	if got := Sparkline([]float64{math.NaN(), math.Inf(1)}); utf8.RuneCountInString(got) != 2 {
		t.Fatalf("all-non-finite = %q", got)
	}
	// Ordering sanity on a normal ramp: last rune is the tallest tick.
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if !strings.HasSuffix(ramp, "█") || !strings.HasPrefix(ramp, "▁") {
		t.Fatalf("ramp = %q", ramp)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if got := Histogram("title", nil, 40); got != "title\n" {
		t.Fatalf("nil histogram = %q", got)
	}
	h := stats.NewHistogram(0, 10, 5)
	h.Add(1)
	h.Add(1)
	// Non-positive width must not panic in strings.Repeat.
	if got := Histogram("", h, 0); !strings.Contains(got, "#") {
		t.Fatalf("width 0 = %q", got)
	}
	if got := Histogram("", h, -3); got == "" {
		t.Fatal("negative width rendered nothing")
	}
}

func TestTelemetryTable(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("demo_total", telemetry.Labels{"result": "ok"}).Add(7)
	reg.Gauge("demo_depth", nil).Set(3)
	hist := reg.Histogram("demo_latency", telemetry.LinearBuckets(1, 1, 4), nil)
	hist.Observe(1)
	hist.Observe(2)

	tab := TelemetryTable("telemetry", reg.Snapshot())
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`demo_total{result="ok"}`, "demo_depth", "demo_latency", "7", "3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramChart(t *testing.T) {
	var empty telemetry.HistogramSnapshot
	if got := HistogramChart("t", empty, 30); got != "t\n" {
		t.Fatalf("empty chart = %q", got)
	}
	h := telemetry.HistogramSnapshot{
		Bounds: []float64{1, 2},
		Counts: []int64{3, 1, 0},
		Count:  4,
		Sum:    5,
	}
	out := HistogramChart("lat", h, 12)
	if !strings.Contains(out, "<=1") || !strings.Contains(out, "+Inf") {
		t.Fatalf("chart missing bucket labels:\n%s", out)
	}
	if !strings.Contains(out, "############") {
		t.Fatalf("modal bucket not full-width:\n%s", out)
	}
}
