// Package vclock abstracts the wall clock behind a Clock interface so the
// same timing-dependent code — retry backoff, attempt deadlines, link
// latency — can run against the real clock in production and against a
// deterministic virtual clock in tests and the fault-injection harness.
//
// The Virtual clock keeps a heap of waiters (sleeps, timers, delayed
// funcs) and only moves when told to: either explicitly via Advance, or
// through AutoAdvance, which watches for quiescence — no clock activity
// for a grace period of real time — and then fires the earliest pending
// waiter. Auto-advance is what lets a concurrent runtime like the live
// transport run its full backoff/timeout schedule in microseconds of real
// time: whenever every goroutine is blocked on the clock, the clock jumps
// straight to the next deadline instead of letting the test sleep through
// it (the root cause of the wall-clock flakiness this package replaces).
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the timing surface the transport runtime consumes. Real()
// returns the system-clock implementation; NewVirtual a controllable one.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns Now().Sub(t).
	Since(t time.Time) time.Duration
	// Until returns t.Sub(Now()).
	Until(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d (no-op when d <= 0).
	Sleep(d time.Duration)
	// NewTimer returns a timer that sends on its channel C once the clock
	// reaches now+d.
	NewTimer(d time.Duration) *Timer
	// AfterFunc runs fn in its own goroutine once the clock reaches
	// now+d.
	AfterFunc(d time.Duration, fn func()) *Timer
}

// Timer is the clock-agnostic analogue of time.Timer.
type Timer struct {
	// C delivers the firing time for timers made with NewTimer; it is nil
	// for AfterFunc timers.
	C    <-chan time.Time
	stop func() bool
}

// Stop cancels the timer, reporting whether it was still pending.
func (t *Timer) Stop() bool { return t.stop() }

// realClock implements Clock on the system clock.
type realClock struct{}

// Real returns the system-clock implementation.
func Real() Clock { return realClock{} }

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }
func (realClock) Until(t time.Time) time.Duration { return time.Until(t) }
func (realClock) Sleep(d time.Duration)           { time.Sleep(d) }

func (realClock) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop}
}

func (realClock) AfterFunc(d time.Duration, fn func()) *Timer {
	t := time.AfterFunc(d, fn)
	return &Timer{stop: t.Stop}
}

// waiter is one pending sleep/timer/func on a virtual clock.
type waiter struct {
	at        time.Time
	seq       uint64
	cancelled bool
	fire      func(now time.Time)
}

// waiterHeap orders waiters by deadline, FIFO on ties (like sim.Engine).
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	*h = old[:n-1]
	return w
}

// Virtual is a deterministic manual/auto-advancing clock.
type Virtual struct {
	mu    sync.Mutex
	start time.Time
	now   time.Time
	heap  waiterHeap
	seq   uint64
	// activity counts every registration, cancellation and advance;
	// AutoAdvance uses it to detect quiescence.
	activity uint64
}

// Epoch is the default virtual start time: the Unix epoch, so virtual
// timestamps are recognisable in traces.
var Epoch = time.Unix(0, 0).UTC()

// NewVirtual returns a virtual clock starting at start (Epoch if zero).
func NewVirtual(start time.Time) *Virtual {
	if start.IsZero() {
		start = Epoch
	}
	return &Virtual{start: start, now: start}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Until returns the virtual time remaining until t.
func (v *Virtual) Until(t time.Time) time.Duration { return t.Sub(v.Now()) }

// Elapsed returns the virtual time elapsed since the clock's start.
func (v *Virtual) Elapsed() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now.Sub(v.start)
}

// Pending returns the number of live (uncancelled) waiters.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, w := range v.heap {
		if !w.cancelled {
			n++
		}
	}
	return n
}

// add registers a waiter d from now and returns it. A non-positive d
// fires immediately (matching time.NewTimer semantics), still off the
// registering goroutine's critical path.
func (v *Virtual) add(d time.Duration, fire func(now time.Time)) *waiter {
	v.mu.Lock()
	v.seq++
	v.activity++
	w := &waiter{at: v.now.Add(d), seq: v.seq, fire: fire}
	if d <= 0 {
		now := v.now
		v.mu.Unlock()
		fire(now)
		return w
	}
	heap.Push(&v.heap, w)
	v.mu.Unlock()
	return w
}

// cancel marks w cancelled, reporting whether it had not yet fired.
func (v *Virtual) cancel(w *waiter) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.activity++
	if w.cancelled {
		return false
	}
	w.cancelled = true
	return true
}

// Sleep blocks until the virtual clock reaches now+d.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	v.add(d, func(time.Time) { close(ch) })
	<-ch
}

// NewTimer returns a timer firing at virtual now+d.
func (v *Virtual) NewTimer(d time.Duration) *Timer {
	ch := make(chan time.Time, 1)
	w := v.add(d, func(now time.Time) {
		select {
		case ch <- now:
		default:
		}
	})
	return &Timer{C: ch, stop: func() bool { return v.cancel(w) }}
}

// AfterFunc runs fn in its own goroutine at virtual now+d.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) *Timer {
	w := v.add(d, func(time.Time) { go fn() })
	return &Timer{stop: func() bool { return v.cancel(w) }}
}

// fireNextLocked pops and fires the earliest live waiter (if any),
// advancing the clock to its deadline. Caller holds v.mu; the waiter's
// fire runs with the lock held (all fire funcs are non-blocking:
// channel close, buffered send, or go statement).
func (v *Virtual) fireNextLocked() bool {
	for len(v.heap) > 0 {
		w := heap.Pop(&v.heap).(*waiter)
		if w.cancelled {
			continue
		}
		w.cancelled = true
		v.now = w.at
		v.activity++
		w.fire(v.now)
		return true
	}
	return false
}

// Advance moves the clock forward by d, firing every waiter whose
// deadline falls inside the window, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	target := v.now.Add(d)
	v.activity++
	for len(v.heap) > 0 {
		// Skip cancelled heads so the deadline peek is live.
		if v.heap[0].cancelled {
			heap.Pop(&v.heap)
			continue
		}
		if v.heap[0].at.After(target) {
			break
		}
		v.fireNextLocked()
	}
	if v.now.Before(target) {
		v.now = target
	}
}

// AutoAdvance starts a watchdog that fires the earliest pending waiter
// whenever the clock has been quiescent — no registrations, cancellations
// or advances — for one grace period of real time. It returns a stop
// function (idempotent). With every goroutine blocked on the clock,
// activity stalls and the watchdog steps virtual time to the next
// deadline; while goroutines are actively using the clock, it stays out
// of the way. grace trades determinism margin against real-time speed;
// 1–2ms is plenty for in-process message passing.
func (v *Virtual) AutoAdvance(grace time.Duration) (stop func()) {
	if grace <= 0 {
		grace = time.Millisecond
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(grace)
		defer tick.Stop()
		var last uint64
		seen := false
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			v.mu.Lock()
			act := v.activity
			if seen && act == last && len(v.heap) > 0 {
				v.fireNextLocked()
				act = v.activity
			}
			last, seen = act, true
			v.mu.Unlock()
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
