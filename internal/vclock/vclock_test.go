package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtualAdvanceFiresInDeadlineOrder(t *testing.T) {
	v := NewVirtual(time.Time{})
	var mu sync.Mutex
	var order []int
	v.AfterFunc(30*time.Millisecond, func() { mu.Lock(); order = append(order, 3); mu.Unlock() })
	v.AfterFunc(10*time.Millisecond, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
	v.AfterFunc(20*time.Millisecond, func() { mu.Lock(); order = append(order, 2); mu.Unlock() })
	v.Advance(50 * time.Millisecond)
	// AfterFunc bodies run in their own goroutines; wait for all three.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d funcs ran", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
	// The firing (clock-advance) order is deterministic even though the
	// bodies run concurrently afterwards; check the clock landed exactly.
	if got := v.Elapsed(); got != 50*time.Millisecond {
		t.Fatalf("elapsed %v, want 50ms", got)
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual(time.Time{})
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Hour)
		close(done)
	}()
	// Wait for the sleeper to register.
	for v.Pending() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	v.Advance(time.Hour)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep(1h) did not wake after Advance(1h)")
	}
	if v.Elapsed() != time.Hour {
		t.Fatalf("elapsed %v", v.Elapsed())
	}
}

func TestVirtualTimerStop(t *testing.T) {
	v := NewVirtual(time.Time{})
	tm := v.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("first Stop reported already-fired")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported pending")
	}
	v.Advance(2 * time.Second)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestVirtualZeroDelayFiresImmediately(t *testing.T) {
	v := NewVirtual(time.Time{})
	tm := v.NewTimer(0)
	select {
	case <-tm.C:
	default:
		t.Fatal("zero-delay timer did not fire immediately")
	}
	v.Sleep(0) // must not block
	v.Sleep(-1 * time.Second)
}

func TestAutoAdvanceDrainsSequentialSleeps(t *testing.T) {
	v := NewVirtual(time.Time{})
	stop := v.AutoAdvance(200 * time.Microsecond)
	defer stop()
	start := time.Now()
	// Three sequential virtual sleeps totalling 600ms of virtual time must
	// complete in real milliseconds.
	v.Sleep(100 * time.Millisecond)
	v.Sleep(200 * time.Millisecond)
	v.Sleep(300 * time.Millisecond)
	if v.Elapsed() != 600*time.Millisecond {
		t.Fatalf("virtual elapsed %v, want 600ms", v.Elapsed())
	}
	if real := time.Since(start); real > 5*time.Second {
		t.Fatalf("auto-advance took %v of real time", real)
	}
}

func TestAutoAdvanceConcurrentWaiters(t *testing.T) {
	v := NewVirtual(time.Time{})
	stop := v.AutoAdvance(200 * time.Microsecond)
	defer stop()
	var fired atomic.Int64
	var wg sync.WaitGroup
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v.Sleep(time.Duration(i) * 10 * time.Millisecond)
			fired.Add(1)
		}(i)
	}
	wg.Wait()
	if fired.Load() != 8 {
		t.Fatalf("fired %d of 8 sleepers", fired.Load())
	}
	if v.Elapsed() != 80*time.Millisecond {
		t.Fatalf("virtual elapsed %v, want 80ms", v.Elapsed())
	}
	stop()
	stop() // idempotent
}

func TestRealClockBasics(t *testing.T) {
	c := Real()
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(t0) <= 0 {
		t.Fatal("Since not positive after Sleep")
	}
	if c.Until(t0.Add(time.Hour)) <= 0 {
		t.Fatal("Until not positive for a future time")
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real AfterFunc did not run")
	}
}
