package transport

import (
	"time"

	"p2panon/internal/overlay"
	"p2panon/internal/trace"
)

// Mirror subscribes the live network to overlay churn: a node that comes
// online is added as a peer (with a router from mkRouter), one that goes
// offline or departs is removed. It lets the structural overlay's churn
// model drive the concurrent runtime directly.
func Mirror(o *overlay.Network, live *Network, mkRouter func(overlay.NodeID) Router) {
	o.OnChurn(func(id overlay.NodeID, s overlay.State) {
		switch s {
		case overlay.Online:
			_, _ = live.AddPeer(id, mkRouter(id)) // duplicate adds are no-ops
		case overlay.Offline, overlay.Departed:
			live.RemovePeer(id)
		}
	})
}

// TraceOptions parameterises a live replay of a trace workload.
type TraceOptions struct {
	// Budget is the per-connection hop budget; Timeout the per-connection
	// deadline (shared by all reformation attempts of that connection).
	Budget  int
	Timeout time.Duration
	// Before, if non-nil, is called before scheduled connection k
	// (0-based) with the partial result so far — the hook churn studies
	// use to remove peers mid-run.
	Before func(k int, sofar *TraceResult)
}

// TraceResult aggregates a live replay: one BatchOutcome per pair
// (index-aligned with the input), connection and reformation totals.
type TraceResult struct {
	Outcomes          []*BatchOutcome
	Completed, Failed int
	Reformations      int
}

// RunTrace replays a trace workload over the live network: the pairs'
// recurring connections are interleaved round-robin (trace.Interleave), so
// batches progress together the way concurrent initiators would, while
// each pair's own connections stay ordered. A connection that fails even
// after reformation is counted and skipped — live churn must not abort the
// rest of the workload.
func (n *Network) RunTrace(pairs []trace.Pair, opt TraceOptions) *TraceResult {
	res := &TraceResult{Outcomes: make([]*BatchOutcome, len(pairs))}
	for i := range res.Outcomes {
		res.Outcomes[i] = NewBatchOutcome()
	}
	for k, c := range trace.Interleave(pairs) {
		if opt.Before != nil {
			opt.Before(k, res)
		}
		p := &pairs[c.Pair]
		out := res.Outcomes[c.Pair]
		cr, reforms, err := n.connect(p.Initiator, p.Responder, p.Index+1, c.Conn, opt.Budget, opt.Timeout, nil)
		res.Reformations += reforms
		out.Reformations += reforms
		if err != nil {
			res.Failed++
			continue
		}
		res.Completed++
		out.Record(cr.path, p.Initiator)
	}
	return res
}
