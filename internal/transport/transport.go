// Package transport provides a concurrent, message-passing runtime for the
// forwarding overlay: one goroutine per peer, channels as links, and an
// optional per-link latency model. It is the "live" counterpart of the
// deterministic discrete-event simulator — the same contracts, utility
// routing and payoff bookkeeping, but with peers that really run
// concurrently and communicate only by messages, as the paper's deployed
// system would.
//
// The forwarding protocol mirrors §2.2: a FORWARD message carries the
// contract (P_f, P_r) and the hop budget; each holder picks a successor
// with its Router and forwards; the responder answers with a CONFIRM that
// retraces the reverse path collecting per-hop path information, which the
// initiator uses to validate the path and account the batch.
//
// The runtime is churn-safe: peers may join and leave (AddPeer/RemovePeer)
// concurrently with in-flight traffic. A send to a departed peer fails
// synchronously and the holder NACKs back along the reverse path, so the
// initiator learns of a mid-path departure without waiting out its timeout;
// Connect then reforms the path — bounded retries with exponential backoff —
// which is exactly the "path reformation" event Prop. 1 counts. Routers that
// implement ChurnAware are told about peers found dead (failure detection by
// failed delivery, as a deployment would observe it) so reformed paths avoid
// them. Every drop, NACK, timeout and reformation is counted in the
// network's Metrics.
package transport

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/onion"
	"p2panon/internal/overlay"
	"p2panon/internal/telemetry"
	"p2panon/internal/vclock"
)

// Router is a peer's routing brain: given that the peer holds a payload
// for the given batch/connection with `remaining` hop budget, it returns
// the next hop, or deliver=true to hand the payload to the responder
// directly.
type Router interface {
	NextHop(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (next overlay.NodeID, deliver bool)
}

// RouterFunc adapts a function to the Router interface.
type RouterFunc func(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (overlay.NodeID, bool)

// NextHop calls f.
func (f RouterFunc) NextHop(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (overlay.NodeID, bool) {
	return f(self, pred, initiator, responder, batch, conn, remaining)
}

// ChurnAware is implemented by routers that track peer liveness. The
// network calls MarkDead when a delivery to a peer fails (the live
// failure-detection signal — RemovePeer itself is silent, like a real
// departure) and MarkLive when a peer (re)joins, so routing avoids known
// corpses and rehabilitates returners.
type ChurnAware interface {
	MarkDead(overlay.NodeID)
	MarkLive(overlay.NodeID)
}

// message kinds.
type msgKind uint8

const (
	msgForward msgKind = iota
	msgConfirm
	msgNack
)

// connResult is the terminal event of one connection attempt, delivered on
// the attempt's done channel: a completed path (with sealed records under
// the secure protocol) or an error. fatal marks errors a retry cannot fix
// (e.g. an unverifiable contract).
type connResult struct {
	path    []overlay.NodeID
	records []onion.PathRecord
	err     error
	fatal   bool
	// span is the causal span the terminal message carried: the responder's
	// respond span for a confirm, the nack span for a NACK. The initiator
	// parents its deliver/fail span on it.
	span telemetry.SpanID
}

// message is what travels over links.
type message struct {
	kind      msgKind
	batch     int
	conn      int
	from      overlay.NodeID
	initiator overlay.NodeID
	responder overlay.NodeID
	remaining int
	// path accumulates the node sequence; on the confirm/NACK leg it is
	// frozen and `hop` is the index of the current recipient on the
	// reverse traversal.
	path []overlay.NodeID
	hop  int
	done chan<- connResult // completion signal, owned by the initiator's attempt

	// deadline is the attempt's absolute expiry, stamped by connect and
	// carried by every message of the attempt (forward, confirm and NACK
	// legs alike). A message that is still in flight past its deadline is
	// dropped silently — the initiator's attempt timer is already due, so
	// nobody is waiting for it — exactly how a socket transport's
	// read/write deadlines kill late traffic. Zero means no deadline.
	deadline time.Time

	// reason/fatal describe a NACK.
	reason string
	fatal  bool

	// Secure-protocol fields (§5): a signed contract that forwarders
	// verify before working and the sealed per-hop records they
	// contribute.
	contract *onion.SignedContract
	records  []onion.PathRecord

	// Trace context: the connection's trace id and the span of the last
	// causal step, which the next handler parents its own span on. Zero
	// when span recording is off.
	trace telemetry.SpanID
	span  telemetry.SpanID
}

// Peer is one concurrently running overlay member.
type Peer struct {
	ID     overlay.NodeID
	router Router
	inbox  chan message
	leave  chan struct{} // closed by RemovePeer
	net    *Network

	mu       sync.Mutex
	forwards map[int]int // batch -> forwarding instances by this peer
}

// Forwards returns this peer's forwarding-instance count for a batch.
func (p *Peer) Forwards(batch int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.forwards[batch]
}

// RetryPolicy bounds Connect's reformation behaviour: up to MaxAttempts
// path formations per connection, separated by exponential backoff
// starting at BaseBackoff and capped at MaxBackoff. Each attempt gets an
// even share of the connection's total timeout as its deadline.
type RetryPolicy struct {
	MaxAttempts int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// DefaultRetryPolicy allows two reformations per connection with a short
// doubling backoff — enough to route around a mid-path departure without
// masking a partitioned network.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond}
}

// Network is the concurrent runtime: a set of peers plus the link model.
// All methods are safe for concurrent use; in particular AddPeer and
// RemovePeer may race freely with in-flight traffic.
type Network struct {
	mu        sync.RWMutex
	peers     map[overlay.NodeID]*Peer
	markers   []ChurnAware
	markerSet map[ChurnAware]struct{}

	latency time.Duration
	retry   RetryPolicy
	clock   vclock.Clock
	metrics *Metrics
	tracer  *telemetry.Tracer
	spans   *telemetry.SpanRecorder
	wg      sync.WaitGroup
	quit    chan struct{}
	once    sync.Once
}

// NewNetwork creates a runtime with the given per-link latency (0 for
// as-fast-as-possible) and the default retry policy.
func NewNetwork(latency time.Duration) *Network {
	return &Network{
		peers:     make(map[overlay.NodeID]*Peer),
		markerSet: make(map[ChurnAware]struct{}),
		latency:   latency,
		retry:     DefaultRetryPolicy(),
		clock:     vclock.Real(),
		metrics:   newMetrics(telemetry.NewRegistry()),
		quit:      make(chan struct{}),
	}
}

// Instrument rebinds the runtime's metrics into reg (so they appear on a
// shared exposition endpoint next to other layers' instruments) and
// attaches tr as the connection-lifecycle event tracer. Either argument
// may be nil: a nil reg keeps the network's private registry, a nil
// tracer disables event recording. Call before traffic starts — it is
// not safe to race with in-flight connections.
func (n *Network) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	if reg != nil {
		n.metrics = newMetrics(reg)
	}
	n.tracer = tr
}

// Telemetry returns the registry backing the runtime's metrics (the
// network's own unless Instrument rebound it).
func (n *Network) Telemetry() *telemetry.Registry { return n.metrics.reg }

// Tracer returns the attached event tracer, or nil.
func (n *Network) Tracer() *telemetry.Tracer { return n.tracer }

// SetSpans attaches a causal span recorder: every connection then emits
// a deterministic span tree — batch root, per-attempt launches, hops,
// the responder's accept, nacks and terminal outcomes — whose ids are
// derived from causal coordinates, so the same seeded workload yields
// the same log on every backend. A nil recorder disables span emission.
// Call before traffic starts; not safe to race with in-flight
// connections.
func (n *Network) SetSpans(r *telemetry.SpanRecorder) { n.spans = r }

// Spans returns the attached span recorder, or nil.
func (n *Network) Spans() *telemetry.SpanRecorder { return n.spans }

// ResetMetrics zeroes the runtime's counters and histograms so the next
// window reports from a clean slate (see MetricsSnapshot.Delta for the
// subtraction-based alternative that keeps lifetime totals).
func (n *Network) ResetMetrics() { n.metrics.Reset() }

// SetClock replaces the runtime's clock — link latency, attempt deadlines
// and retry backoff all read it. Pass a *vclock.Virtual (usually with
// AutoAdvance running) to make timing-dependent tests deterministic and
// wall-clock free. Call before traffic starts; not safe to race with
// in-flight connections.
func (n *Network) SetClock(c vclock.Clock) {
	if c == nil {
		c = vclock.Real()
	}
	n.clock = c
}

// Clock returns the clock the runtime schedules against.
func (n *Network) Clock() vclock.Clock { return n.clock }

// SetRetry replaces the retry policy. Not safe to call concurrently with
// Connect.
func (n *Network) SetRetry(p RetryPolicy) {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	n.retry = p
}

// Metrics returns a snapshot of the runtime counters.
func (n *Network) Metrics() MetricsSnapshot { return n.metrics.Snapshot() }

// AddPeer spawns a peer goroutine with the given router. Adding the same
// ID twice is an error. If the router is ChurnAware it is registered for
// liveness notifications and told the ID is live (a re-joining peer
// becomes routable again).
func (n *Network) AddPeer(id overlay.NodeID, r Router) (*Peer, error) {
	if r == nil {
		return nil, errors.New("transport: nil router")
	}
	p := &Peer{
		ID:       id,
		router:   r,
		inbox:    make(chan message, 64),
		leave:    make(chan struct{}),
		net:      n,
		forwards: make(map[int]int),
	}
	n.mu.Lock()
	if _, dup := n.peers[id]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: duplicate peer %d", id)
	}
	n.peers[id] = p
	ca, aware := r.(ChurnAware)
	if aware {
		if _, seen := n.markerSet[ca]; !seen {
			n.markerSet[ca] = struct{}{}
			n.markers = append(n.markers, ca)
		}
	}
	n.wg.Add(1)
	n.mu.Unlock()
	if aware {
		ca.MarkLive(id)
	}
	go p.loop()
	return p, nil
}

// Peer returns the peer with the given ID, or nil.
func (n *Network) Peer(id overlay.NodeID) *Peer {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.peers[id]
}

// RemovePeer models live churn: the peer leaves, its goroutine exits after
// NACKing whatever was queued in its inbox, and subsequent sends to it
// fail synchronously (the sender NACKs the initiator, which reforms the
// path — exactly like a real mid-path departure). Removing an unknown peer
// is a no-op. Safe to call concurrently with AddPeer, Connect and
// in-flight traffic.
func (n *Network) RemovePeer(id overlay.NodeID) {
	n.mu.Lock()
	p, ok := n.peers[id]
	if ok {
		delete(n.peers, id)
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	close(p.leave)
}

// Close shuts every peer down and waits for their goroutines to exit.
func (n *Network) Close() {
	n.once.Do(func() { close(n.quit) })
	n.wg.Wait()
}

// closed reports whether Close has been called.
func (n *Network) closed() bool {
	select {
	case <-n.quit:
		return true
	default:
		return false
	}
}

// markDead tells every registered ChurnAware router that id was found
// dead, so subsequent routing avoids it.
func (n *Network) markDead(id overlay.NodeID) {
	n.mu.RLock()
	ms := append([]ChurnAware(nil), n.markers...)
	n.mu.RUnlock()
	for _, m := range ms {
		m.MarkDead(id)
	}
}

// send delivers msg to the peer `to` after the link latency. It returns
// false — the synchronous drop signal — when the target is unknown or has
// departed; the caller decides whether to NACK. With a non-zero latency
// the delivery is asynchronous and a target that departs in flight is
// handled by the network itself (drop count, dead-marking, NACK/reroute).
func (n *Network) send(to overlay.NodeID, msg message) bool {
	n.mu.RLock()
	p, ok := n.peers[to]
	n.mu.RUnlock()
	if !ok {
		n.metrics.dropped.Add(1)
		return false
	}
	if n.expired(msg) {
		// The attempt's deadline passed while this message was being
		// relayed: it dies in the network (counted, no NACK — the
		// initiator's own attempt timer is already due). Reporting true
		// matches a real wire, where a late packet is accepted by the
		// link and lost downstream.
		return true
	}
	n.metrics.sent.Add(1)
	if n.latency > 0 {
		n.clock.AfterFunc(n.latency, func() {
			if n.expired(msg) {
				return
			}
			if !n.deliver(p, msg) {
				n.onAsyncDrop(to, msg)
			}
		})
		return true
	}
	if !n.deliver(p, msg) {
		n.metrics.dropped.Add(1)
		return false
	}
	return true
}

// expired reports (and counts) a message whose per-attempt deadline has
// passed. The deadline travels with the message — set once by connect —
// so every relay point applies the same timeout the initiator does,
// mirroring the read/write deadlines of the socket backend.
func (n *Network) expired(msg message) bool {
	if msg.deadline.IsZero() || !n.clock.Now().After(msg.deadline) {
		return false
	}
	n.metrics.expired.Add(1)
	return true
}

// deliver enqueues msg into p's inbox, failing when the peer has left or
// the network is shutting down.
func (n *Network) deliver(p *Peer, msg message) bool {
	select {
	case <-p.leave:
		return false
	case <-n.quit:
		return false
	default:
	}
	select {
	case p.inbox <- msg:
		n.metrics.noteInboxDepth(int64(len(p.inbox)))
		return true
	case <-p.leave:
		return false
	case <-n.quit:
		return false
	}
}

// onAsyncDrop handles a latency-delayed delivery whose target departed in
// flight: count the drop, mark the corpse, and keep the protocol moving —
// a lost FORWARD becomes a NACK to the initiator, a lost CONFIRM/NACK is
// rerouted one reverse-path member further down.
func (n *Network) onAsyncDrop(to overlay.NodeID, msg message) {
	if n.closed() {
		return
	}
	n.metrics.dropped.Add(1)
	n.markDead(to)
	switch msg.kind {
	case msgForward:
		n.nackBack(msg, len(msg.path)-1, fmt.Sprintf("next hop %d departed", to), false)
	case msgConfirm, msgNack:
		if msg.hop > 0 {
			msg.hop--
			n.reverseRoute(msg)
		}
	}
}

// nackBack sends a NACK for msg back along its reverse path, starting at
// path[fromIdx]. A fromIdx below zero (the failure happened at the
// initiator itself) resolves the attempt directly.
func (n *Network) nackBack(msg message, fromIdx int, reason string, fatal bool) {
	n.metrics.nacks.Add(1)
	n.metrics.nackHops.Observe(float64(len(msg.path)))
	if n.tracer != nil {
		n.tracer.Record(telemetry.Event{
			Kind: telemetry.KindNack, Batch: msg.batch, Conn: msg.conn,
			Node: int(msg.initiator), Hop: len(msg.path), Detail: reason,
		})
	}
	nackSpan := telemetry.SpanID(0)
	if n.spans != nil && msg.trace != 0 {
		nackSpan = telemetry.NewSpanID(msg.span, telemetry.SpanNack, msg.conn, 0, len(msg.path), int(msg.initiator))
		n.spans.Record(telemetry.Span{
			Trace: msg.trace, ID: nackSpan, Parent: msg.span, Kind: telemetry.SpanNack,
			Batch: msg.batch, Conn: msg.conn, Hop: len(msg.path), Node: int(msg.initiator), Detail: reason,
		})
	}
	res := connResult{err: fmt.Errorf("transport: %s", reason), fatal: fatal, span: nackSpan}
	if fromIdx < 0 || len(msg.path) == 0 {
		resolve(msg.done, res)
		return
	}
	nack := message{
		kind:      msgNack,
		batch:     msg.batch,
		conn:      msg.conn,
		initiator: msg.initiator,
		responder: msg.responder,
		path:      msg.path,
		hop:       fromIdx,
		done:      msg.done,
		reason:    reason,
		fatal:     fatal,
		deadline:  msg.deadline,
		trace:     msg.trace,
		span:      nackSpan,
	}
	n.reverseRoute(nack)
}

// reverseRoute sends a CONFIRM/NACK to path[msg.hop], skipping departed
// reverse-path members. If even the initiator is gone the message dies —
// nobody is waiting for it.
func (n *Network) reverseRoute(msg message) {
	for {
		if n.send(msg.path[msg.hop], msg) {
			return
		}
		n.markDead(msg.path[msg.hop])
		if msg.hop == 0 {
			return
		}
		msg.hop--
	}
}

// resolve delivers an attempt's terminal result without ever blocking
// (the done channel is buffered and owned by exactly one attempt).
func resolve(done chan<- connResult, res connResult) {
	if done == nil {
		return
	}
	select {
	case done <- res:
	default:
	}
}

// loop is the peer's goroutine body.
func (p *Peer) loop() {
	defer p.net.wg.Done()
	for {
		select {
		case <-p.net.quit:
			return
		case <-p.leave:
			p.drain()
			return
		case msg := <-p.inbox:
			p.handle(msg)
		}
	}
}

// drain empties the inbox of a departing peer so in-flight connections
// fail fast: queued FORWARDs are NACKed to their initiators, queued
// CONFIRMs/NACKs are rerouted around us. (A message enqueued after the
// drain is lost and caught by the attempt timeout.)
func (p *Peer) drain() {
	for {
		select {
		case msg := <-p.inbox:
			p.net.metrics.dropped.Add(1)
			switch msg.kind {
			case msgForward:
				p.net.nackBack(msg, len(msg.path)-1, fmt.Sprintf("peer %d departed", p.ID), false)
			case msgConfirm, msgNack:
				if msg.hop > 0 {
					msg.hop--
					p.net.reverseRoute(msg)
				}
			}
		default:
			return
		}
	}
}

func (p *Peer) handle(msg message) {
	switch msg.kind {
	case msgForward:
		p.handleForward(msg)
	case msgConfirm:
		p.handleConfirm(msg)
	case msgNack:
		p.handleNack(msg)
	}
}

// handleForward is one stage of path formation.
func (p *Peer) handleForward(msg message) {
	msg.path = append(msg.path, p.ID)
	if p.ID == msg.responder {
		// Payload arrived: send CONFIRM back along the reverse path. The
		// respond span closes the forward chain; the confirm carries it so
		// the initiator can parent its deliver span on it.
		respondSpan := msg.span
		if p.net.spans != nil && msg.trace != 0 {
			respondSpan = telemetry.NewSpanID(msg.span, telemetry.SpanRespond, msg.conn, 0, len(msg.path)-1, int(p.ID))
			p.net.spans.Record(telemetry.Span{
				Trace: msg.trace, ID: respondSpan, Parent: msg.span, Kind: telemetry.SpanRespond,
				Batch: msg.batch, Conn: msg.conn, Hop: len(msg.path) - 1, Node: int(p.ID),
			})
		}
		confirm := message{
			kind:      msgConfirm,
			batch:     msg.batch,
			conn:      msg.conn,
			initiator: msg.initiator,
			responder: msg.responder,
			path:      msg.path,
			hop:       len(msg.path) - 2, // index of our predecessor
			done:      msg.done,
			contract:  msg.contract,
			records:   msg.records,
			deadline:  msg.deadline,
			trace:     msg.trace,
			span:      respondSpan,
		}
		p.net.reverseRoute(confirm)
		return
	}
	// Secure protocol: verify the contract before doing any work (a
	// rational forwarder will not forward for an unverifiable commitment)
	// and NACK the initiator so it fails fast instead of waiting out its
	// timeout. The rejection is fatal: no reformation fixes a bad contract.
	if msg.contract != nil && !msg.contract.Verify() {
		p.net.metrics.contractRejects.Add(1)
		if p.net.tracer != nil {
			p.net.tracer.Record(telemetry.Event{
				Kind: telemetry.KindContractReject, Batch: msg.batch, Conn: msg.conn,
				Node: int(p.ID), Hop: len(msg.path) - 1,
			})
		}
		p.net.nackBack(msg, len(msg.path)-2, "contract failed verification", true)
		return
	}
	// Interior forwarding instance (the initiator does not count).
	if p.ID != msg.initiator {
		p.mu.Lock()
		p.forwards[msg.batch]++
		p.mu.Unlock()
	}
	if p.net.tracer != nil {
		p.net.tracer.Record(telemetry.Event{
			Kind: telemetry.KindHopForward, Batch: msg.batch, Conn: msg.conn,
			Node: int(p.ID), Hop: len(msg.path) - 1,
		})
	}
	// Chain the causal span: this hop's span hashes its predecessor's, so
	// the id is derivable from carried context alone — the property that
	// lets the TCP backend mint identical ids on remote nodes.
	if p.net.spans != nil && msg.trace != 0 {
		hopSpan := telemetry.NewSpanID(msg.span, telemetry.SpanHop, msg.conn, 0, len(msg.path)-1, int(p.ID))
		p.net.spans.Record(telemetry.Span{
			Trace: msg.trace, ID: hopSpan, Parent: msg.span, Kind: telemetry.SpanHop,
			Batch: msg.batch, Conn: msg.conn, Hop: len(msg.path) - 1, Node: int(p.ID),
		})
		msg.span = hopSpan
	}
	var next overlay.NodeID
	if msg.remaining <= 0 {
		next = msg.responder
	} else {
		n, deliver := p.router.NextHop(p.ID, msg.from, msg.initiator, msg.responder, msg.batch, msg.conn, msg.remaining)
		if deliver {
			next = msg.responder
		} else {
			next = n
		}
	}
	// Secure protocol: seal this hop's record to the batch key. The hop
	// index is this forwarder's position (interior nodes so far).
	if msg.contract != nil && p.ID != msg.initiator {
		rec, err := onion.NewPathRecord(msg.contract, uint64(msg.conn), len(msg.path)-1, p.ID, msg.from, next)
		if err == nil {
			msg.records = append(msg.records, rec)
		}
	}
	out := msg
	out.from = p.ID
	out.remaining = msg.remaining - 1
	if !p.net.send(next, out) {
		// Synchronous drop: the chosen successor departed. Mark it dead
		// and NACK back along the path (starting at our predecessor — we
		// already know) so the initiator reforms at once.
		p.net.markDead(next)
		p.net.nackBack(out, len(out.path)-2, fmt.Sprintf("next hop %d departed", next), false)
	}
}

// relayBack moves a CONFIRM/NACK one reverse-path member closer to the
// initiator, collapsing consecutive entries of this peer itself (a walk
// may revisit a node; self-sends could deadlock a full inbox). When the
// initiator — index 0, necessarily this peer — is reached, the attempt is
// resolved with the terminal result.
func (p *Peer) relayBack(msg message, terminal connResult) {
	for {
		if msg.hop <= 0 {
			resolve(msg.done, terminal)
			return
		}
		msg.hop--
		if msg.path[msg.hop] == p.ID {
			continue
		}
		p.net.reverseRoute(msg)
		return
	}
}

// handleConfirm retraces the reverse path back to the initiator.
func (p *Peer) handleConfirm(msg message) {
	p.relayBack(msg, connResult{path: msg.path, records: msg.records, span: msg.span})
}

// handleNack retraces the reverse path like a confirm, terminating the
// initiator's attempt with the carried error.
func (p *Peer) handleNack(msg message) {
	p.relayBack(msg, connResult{err: fmt.Errorf("transport: %s", msg.reason), fatal: msg.fatal, span: msg.span})
}

// traceTerminal records a connection's terminal lifecycle event.
func (n *Network) traceTerminal(kind telemetry.EventKind, batch, conn int, initiator overlay.NodeID, hop int, detail string) {
	if n.tracer == nil {
		return
	}
	n.tracer.Record(telemetry.Event{
		Kind: kind, Batch: batch, Conn: conn, Node: int(initiator), Hop: hop, Detail: detail,
	})
}

// connect runs one connection with bounded retry: each attempt gets an
// even share of timeout as its deadline; a timed-out or NACKed attempt is
// relaunched — a path reformation — after exponential backoff, until the
// policy's attempt budget or the overall deadline runs out. It returns the
// terminal result plus the number of reformations performed.
func (n *Network) connect(initiator, responder overlay.NodeID, batch, conn, budget int, timeout time.Duration, contract *onion.SignedContract) (connResult, int, error) {
	if n.Peer(initiator) == nil {
		return connResult{}, 0, fmt.Errorf("transport: unknown initiator %d", initiator)
	}
	if n.Peer(responder) == nil {
		return connResult{}, 0, fmt.Errorf("transport: unknown responder %d", responder)
	}
	if initiator == responder {
		return connResult{}, 0, errors.New("transport: initiator == responder")
	}
	policy := n.retry
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	start := n.clock.Now()
	if n.tracer != nil {
		n.tracer.Record(telemetry.Event{
			Kind: telemetry.KindLaunch, Batch: batch, Conn: conn,
			Node: int(initiator), Detail: fmt.Sprintf("responder %d budget %d", responder, budget),
		})
	}
	// Span context: one trace per (batch, I, R); its root span is minted
	// lazily by every connection (the recorder deduplicates by id).
	var trace, root telemetry.SpanID
	if n.spans != nil {
		trace = n.spans.TraceID(batch, int(initiator), int(responder))
		root = telemetry.NewSpanID(trace, telemetry.SpanBatch, 0, 0, 0, int(initiator))
		n.spans.Record(telemetry.Span{
			Trace: trace, ID: root, Kind: telemetry.SpanBatch, Batch: batch, Node: int(initiator),
		})
	}
	deadline := start.Add(timeout)
	per := timeout / time.Duration(policy.MaxAttempts)
	if per <= 0 {
		per = timeout
	}
	backoff := policy.BaseBackoff
	reforms := 0
	lastAttempt := 1
	var lastErr error
	var prevSpan telemetry.SpanID // outcome span of the previous attempt
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		lastAttempt = attempt
		remaining := n.clock.Until(deadline)
		if remaining <= 0 {
			break
		}
		if attempt > 1 {
			if backoff > 0 {
				pause := backoff
				if pause > remaining {
					pause = remaining
				}
				n.clock.Sleep(pause)
				if backoff *= 2; policy.MaxBackoff > 0 && backoff > policy.MaxBackoff {
					backoff = policy.MaxBackoff
				}
				if remaining = n.clock.Until(deadline); remaining <= 0 {
					break
				}
			}
			reforms++
			n.metrics.reformations.Add(1)
			if n.tracer != nil {
				n.tracer.Record(telemetry.Event{
					Kind: telemetry.KindReformation, Batch: batch, Conn: conn,
					Node: int(initiator), Detail: fmt.Sprintf("attempt %d", attempt),
				})
			}
			if n.spans != nil {
				parent := prevSpan
				if parent == 0 {
					parent = root
				}
				reform := telemetry.NewSpanID(parent, telemetry.SpanReform, conn, attempt, 0, int(initiator))
				n.spans.Record(telemetry.Span{
					Trace: trace, ID: reform, Parent: parent, Kind: telemetry.SpanReform,
					Batch: batch, Conn: conn, Attempt: attempt, Node: int(initiator),
				})
			}
		}
		window := per
		if window > remaining {
			window = remaining
		}
		launch := telemetry.SpanID(0)
		if n.spans != nil {
			launch = telemetry.NewSpanID(root, telemetry.SpanLaunch, conn, attempt, 0, int(initiator))
			n.spans.Record(telemetry.Span{
				Trace: trace, ID: launch, Parent: root, Kind: telemetry.SpanLaunch,
				Batch: batch, Conn: conn, Attempt: attempt, Node: int(initiator),
			})
		}
		prevSpan = launch
		done := make(chan connResult, 1)
		sent := n.send(initiator, message{
			kind:      msgForward,
			batch:     batch,
			conn:      conn,
			from:      overlay.None,
			initiator: initiator,
			responder: responder,
			remaining: budget,
			contract:  contract,
			deadline:  n.clock.Now().Add(window),
			done:      done,
			trace:     trace,
			span:      launch,
		})
		if !sent {
			n.metrics.failures.Add(1)
			n.traceTerminal(telemetry.KindFailed, batch, conn, initiator, 0, "initiator departed")
			n.failSpan(trace, prevSpan, batch, conn, attempt, initiator)
			return connResult{}, reforms, fmt.Errorf("transport: initiator %d departed", initiator)
		}
		timer := n.clock.NewTimer(window)
		select {
		case res := <-done:
			timer.Stop()
			if res.err == nil {
				n.metrics.connects.Add(1)
				n.metrics.connectLatency.Observe(n.clock.Since(start).Seconds())
				n.metrics.pathLen.Observe(float64(len(res.path)))
				n.traceTerminal(telemetry.KindDelivered, batch, conn, initiator, len(res.path),
					fmt.Sprintf("path len %d after %d reformations", len(res.path), reforms))
				if n.spans != nil {
					parent := res.span
					if parent == 0 {
						parent = launch
					}
					deliver := telemetry.NewSpanID(parent, telemetry.SpanDeliver, conn, attempt, 0, int(initiator))
					n.spans.Record(telemetry.Span{
						Trace: trace, ID: deliver, Parent: parent, Kind: telemetry.SpanDeliver,
						Batch: batch, Conn: conn, Attempt: attempt, Node: int(initiator),
					})
				}
				return res, reforms, nil
			}
			lastErr = res.err
			if res.span != 0 {
				prevSpan = res.span
			}
			if res.fatal {
				n.metrics.failures.Add(1)
				n.traceTerminal(telemetry.KindFailed, batch, conn, initiator, 0, res.err.Error())
				n.failSpan(trace, prevSpan, batch, conn, attempt, initiator)
				return connResult{}, reforms, res.err
			}
		case <-timer.C:
			n.metrics.timeouts.Add(1)
			lastErr = fmt.Errorf("transport: attempt %d of connection %d/%d timed out after %v", attempt, batch, conn, window)
			if n.spans != nil {
				timeoutSpan := telemetry.NewSpanID(launch, telemetry.SpanTimeout, conn, attempt, 0, int(initiator))
				n.spans.Record(telemetry.Span{
					Trace: trace, ID: timeoutSpan, Parent: launch, Kind: telemetry.SpanTimeout,
					Batch: batch, Conn: conn, Attempt: attempt, Node: int(initiator),
				})
				prevSpan = timeoutSpan
			}
		}
	}
	n.metrics.failures.Add(1)
	if lastErr == nil {
		lastErr = fmt.Errorf("transport: connection %d/%d timed out after %v", batch, conn, timeout)
	}
	n.traceTerminal(telemetry.KindFailed, batch, conn, initiator, 0, lastErr.Error())
	if prevSpan == 0 {
		prevSpan = root
	}
	n.failSpan(trace, prevSpan, batch, conn, lastAttempt, initiator)
	return connResult{}, reforms, fmt.Errorf("transport: connection %d/%d failed after %d reformations: %w", batch, conn, reforms, lastErr)
}

// failSpan emits the terminal fail span of a connection, parented on the
// last causal step (nack span, timeout span, or the launch itself).
func (n *Network) failSpan(trace, parent telemetry.SpanID, batch, conn, attempt int, initiator overlay.NodeID) {
	if n.spans == nil {
		return
	}
	id := telemetry.NewSpanID(parent, telemetry.SpanFail, conn, attempt, 0, int(initiator))
	n.spans.Record(telemetry.Span{
		Trace: trace, ID: id, Parent: parent, Kind: telemetry.SpanFail,
		Batch: batch, Conn: conn, Attempt: attempt, Node: int(initiator),
	})
}

// Connect runs one connection from initiator to responder with the given
// hop budget and returns the realised path (I … R). It blocks until a
// confirm returns or the timeout expires; mid-path departures are retried
// per the network's RetryPolicy (path reformation) within that timeout.
func (n *Network) Connect(initiator, responder overlay.NodeID, batch, conn, budget int, timeout time.Duration) ([]overlay.NodeID, error) {
	res, _, err := n.connect(initiator, responder, batch, conn, budget, timeout, nil)
	if err != nil {
		return nil, err
	}
	return res.path, nil
}

// SettleDetail renders a settlement payoff as its exact float bits —
// the backend-independent span detail format (decimal rendering could
// round differently across writers; bits cannot).
func SettleDetail(payoff float64) string {
	return fmt.Sprintf("payoff=%016x", math.Float64bits(payoff))
}

// BatchOutcome aggregates a batch of connections: the union forwarder set,
// per-forwarder instance counts, all realised paths, and how many path
// reformations churn forced along the way (Prop. 1's event count).
type BatchOutcome struct {
	Paths        [][]overlay.NodeID
	Forwards     map[overlay.NodeID]int
	Set          map[overlay.NodeID]struct{}
	Reformations int
}

// NewBatchOutcome returns an empty outcome ready for Record.
func NewBatchOutcome() *BatchOutcome {
	return &BatchOutcome{
		Forwards: make(map[overlay.NodeID]int),
		Set:      make(map[overlay.NodeID]struct{}),
	}
}

// Record folds one realised path into the outcome.
func (o *BatchOutcome) Record(path []overlay.NodeID, initiator overlay.NodeID) {
	o.Paths = append(o.Paths, path)
	for _, f := range path[1 : len(path)-1] {
		if f == initiator {
			continue
		}
		o.Forwards[f]++
		o.Set[f] = struct{}{}
	}
}

// SetSize returns ‖π‖.
func (o *BatchOutcome) SetSize() int { return len(o.Set) }

// Payoff returns a forwarder's income under contract c: m·P_f + P_r/‖π‖.
func (o *BatchOutcome) Payoff(id overlay.NodeID, c core.Contract) float64 {
	if _, member := o.Set[id]; !member {
		return 0
	}
	return float64(o.Forwards[id])*c.Pf + c.Pr/float64(len(o.Set))
}

// SettleBatch accounts a completed batch's split payment: every member
// of the forwarder set is credited m·P_f + P_r/‖π‖ and a settle span is
// emitted under the batch's trace root, mirroring the TCP backend's
// Settle frames so both backends produce identical settlement spans.
// In-process there is no wire to cross, so the credit is implicit in the
// outcome itself; it returns how many members were settled.
func (n *Network) SettleBatch(initiator overlay.NodeID, batch int, out *BatchOutcome, contract core.Contract) (int, error) {
	if n.Peer(initiator) == nil {
		return 0, fmt.Errorf("transport: unknown initiator %d", initiator)
	}
	if n.spans != nil && len(out.Paths) > 0 {
		first := out.Paths[0]
		responder := first[len(first)-1]
		trace := n.spans.TraceID(batch, int(initiator), int(responder))
		root := telemetry.NewSpanID(trace, telemetry.SpanBatch, 0, 0, 0, int(initiator))
		for id := range out.Set {
			span := telemetry.NewSpanID(root, telemetry.SpanSettle, 0, 0, 0, int(id))
			n.spans.Record(telemetry.Span{
				Trace: trace, ID: span, Parent: root, Kind: telemetry.SpanSettle,
				Batch: batch, Node: int(id), Detail: SettleDetail(out.Payoff(id, contract)),
			})
		}
	}
	return len(out.Set), nil
}

// RunBatch executes k connections sequentially (recurring connections of
// one (I, R) pair are inherently ordered) and aggregates the outcome.
func (n *Network) RunBatch(initiator, responder overlay.NodeID, batch, k, budget int, timeout time.Duration) (*BatchOutcome, error) {
	out := NewBatchOutcome()
	for conn := 1; conn <= k; conn++ {
		res, reforms, err := n.connect(initiator, responder, batch, conn, budget, timeout, nil)
		out.Reformations += reforms
		if err != nil {
			return out, err
		}
		out.Record(res.path, initiator)
	}
	return out, nil
}
