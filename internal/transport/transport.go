// Package transport provides a concurrent, message-passing runtime for the
// forwarding overlay: one goroutine per peer, channels as links, and an
// optional per-link latency model. It is the "live" counterpart of the
// deterministic discrete-event simulator — the same contracts, utility
// routing and payoff bookkeeping, but with peers that really run
// concurrently and communicate only by messages, as the paper's deployed
// system would.
//
// The forwarding protocol mirrors §2.2: a FORWARD message carries the
// contract (P_f, P_r) and the hop budget; each holder picks a successor
// with its Router and forwards; the responder answers with a CONFIRM that
// retraces the reverse path collecting per-hop path information, which the
// initiator uses to validate the path and account the batch.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/onion"
	"p2panon/internal/overlay"
)

// Router is a peer's routing brain: given that the peer holds a payload
// for the given batch/connection with `remaining` hop budget, it returns
// the next hop, or deliver=true to hand the payload to the responder
// directly.
type Router interface {
	NextHop(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (next overlay.NodeID, deliver bool)
}

// RouterFunc adapts a function to the Router interface.
type RouterFunc func(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (overlay.NodeID, bool)

// NextHop calls f.
func (f RouterFunc) NextHop(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (overlay.NodeID, bool) {
	return f(self, pred, initiator, responder, batch, conn, remaining)
}

// message kinds.
type msgKind uint8

const (
	msgForward msgKind = iota
	msgConfirm
)

// message is what travels over links.
type message struct {
	kind      msgKind
	batch     int
	conn      int
	from      overlay.NodeID
	initiator overlay.NodeID
	responder overlay.NodeID
	remaining int
	// path accumulates the node sequence; on the confirm leg it is the
	// complete path and `hop` counts down the reverse traversal.
	path []overlay.NodeID
	hop  int
	done chan<- []overlay.NodeID // completion signal, owned by initiator

	// Secure-protocol fields (§5): a signed contract that forwarders
	// verify before working, the sealed per-hop records they contribute,
	// and the secure completion channel.
	contract   *onion.SignedContract
	records    []onion.PathRecord
	secureDone chan<- secureDone
}

// Peer is one concurrently running overlay member.
type Peer struct {
	ID     overlay.NodeID
	router Router
	inbox  chan message
	leave  chan struct{} // closed by RemovePeer
	net    *Network

	mu       sync.Mutex
	forwards map[int]int // batch -> forwarding instances by this peer
}

// Forwards returns this peer's forwarding-instance count for a batch.
func (p *Peer) Forwards(batch int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.forwards[batch]
}

// Network is the concurrent runtime: a set of peers plus the link model.
type Network struct {
	peers   map[overlay.NodeID]*Peer
	latency time.Duration
	wg      sync.WaitGroup
	quit    chan struct{}
	once    sync.Once
}

// NewNetwork creates a runtime with the given per-link latency (0 for
// as-fast-as-possible).
func NewNetwork(latency time.Duration) *Network {
	return &Network{
		peers:   make(map[overlay.NodeID]*Peer),
		latency: latency,
		quit:    make(chan struct{}),
	}
}

// AddPeer spawns a peer goroutine with the given router. Adding the same
// ID twice is an error.
func (n *Network) AddPeer(id overlay.NodeID, r Router) (*Peer, error) {
	if r == nil {
		return nil, errors.New("transport: nil router")
	}
	if _, dup := n.peers[id]; dup {
		return nil, fmt.Errorf("transport: duplicate peer %d", id)
	}
	p := &Peer{
		ID:       id,
		router:   r,
		inbox:    make(chan message, 64),
		leave:    make(chan struct{}),
		net:      n,
		forwards: make(map[int]int),
	}
	n.peers[id] = p
	n.wg.Add(1)
	go p.loop()
	return p, nil
}

// Peer returns the peer with the given ID, or nil.
func (n *Network) Peer(id overlay.NodeID) *Peer { return n.peers[id] }

// RemovePeer models live churn: the peer leaves, its goroutine exits, and
// subsequent sends to it are dropped (connections routed through it will
// time out, exactly like a real mid-path departure). Removing an unknown
// peer is a no-op. RemovePeer must not be called concurrently with
// AddPeer or Connect for the same ID.
func (n *Network) RemovePeer(id overlay.NodeID) {
	p, ok := n.peers[id]
	if !ok {
		return
	}
	delete(n.peers, id)
	close(p.leave)
}

// Close shuts every peer down and waits for their goroutines to exit.
func (n *Network) Close() {
	n.once.Do(func() { close(n.quit) })
	n.wg.Wait()
}

// send delivers msg to the peer `to` after the link latency. Sends after
// Close are dropped.
func (n *Network) send(to overlay.NodeID, msg message) {
	p, ok := n.peers[to]
	if !ok {
		return // unknown peer: drop, like a dead link
	}
	deliver := func() {
		select {
		case p.inbox <- msg:
		case <-n.quit:
		}
	}
	if n.latency > 0 {
		time.AfterFunc(n.latency, deliver)
		return
	}
	deliver()
}

// loop is the peer's goroutine body.
func (p *Peer) loop() {
	defer p.net.wg.Done()
	for {
		select {
		case <-p.net.quit:
			return
		case <-p.leave:
			return
		case msg := <-p.inbox:
			p.handle(msg)
		}
	}
}

func (p *Peer) handle(msg message) {
	switch msg.kind {
	case msgForward:
		p.handleForward(msg)
	case msgConfirm:
		p.handleConfirm(msg)
	}
}

// handleForward is one stage of path formation.
func (p *Peer) handleForward(msg message) {
	msg.path = append(msg.path, p.ID)
	if p.ID == msg.responder {
		// Payload arrived: send CONFIRM back along the reverse path.
		confirm := message{
			kind:       msgConfirm,
			batch:      msg.batch,
			conn:       msg.conn,
			initiator:  msg.initiator,
			responder:  msg.responder,
			path:       msg.path,
			hop:        len(msg.path) - 2, // index of our predecessor
			done:       msg.done,
			contract:   msg.contract,
			records:    msg.records,
			secureDone: msg.secureDone,
		}
		p.net.send(msg.path[confirm.hop], confirm)
		return
	}
	// Secure protocol: verify the contract before doing any work (a
	// rational forwarder will not forward for an unverifiable commitment).
	if msg.contract != nil && !msg.contract.Verify() {
		if msg.secureDone != nil && p.ID == msg.initiator {
			msg.secureDone <- secureDone{err: errors.New("transport: contract failed verification")}
		}
		return // drop: no valid commitment, no service
	}
	// Interior forwarding instance (the initiator does not count).
	if p.ID != msg.initiator {
		p.mu.Lock()
		p.forwards[msg.batch]++
		p.mu.Unlock()
	}
	var next overlay.NodeID
	if msg.remaining <= 0 {
		next = msg.responder
	} else {
		n, deliver := p.router.NextHop(p.ID, msg.from, msg.initiator, msg.responder, msg.batch, msg.conn, msg.remaining)
		if deliver {
			next = msg.responder
		} else {
			next = n
		}
	}
	// Secure protocol: seal this hop's record to the batch key. The hop
	// index is this forwarder's position (interior nodes so far).
	if msg.contract != nil && p.ID != msg.initiator {
		rec, err := onion.NewPathRecord(msg.contract, uint64(msg.conn), len(msg.path)-1, p.ID, msg.from, next)
		if err == nil {
			msg.records = append(msg.records, rec)
		}
	}
	out := msg
	out.from = p.ID
	out.remaining = msg.remaining - 1
	p.net.send(next, out)
}

// handleConfirm retraces the reverse path back to the initiator.
func (p *Peer) handleConfirm(msg message) {
	if msg.hop <= 0 {
		// Reached the initiator: the connection is complete.
		if msg.done != nil {
			msg.done <- msg.path
		}
		if msg.secureDone != nil {
			msg.secureDone <- secureDone{path: msg.path, records: msg.records}
		}
		return
	}
	msg.hop--
	p.net.send(msg.path[msg.hop], msg)
}

// Connect runs one connection from initiator to responder with the given
// hop budget and returns the realised path (I … R). It blocks until the
// confirm returns or the timeout expires.
func (n *Network) Connect(initiator, responder overlay.NodeID, batch, conn, budget int, timeout time.Duration) ([]overlay.NodeID, error) {
	if _, ok := n.peers[initiator]; !ok {
		return nil, fmt.Errorf("transport: unknown initiator %d", initiator)
	}
	if _, ok := n.peers[responder]; !ok {
		return nil, fmt.Errorf("transport: unknown responder %d", responder)
	}
	if initiator == responder {
		return nil, errors.New("transport: initiator == responder")
	}
	done := make(chan []overlay.NodeID, 1)
	n.send(initiator, message{
		kind:      msgForward,
		batch:     batch,
		conn:      conn,
		from:      overlay.None,
		initiator: initiator,
		responder: responder,
		remaining: budget,
		done:      done,
	})
	select {
	case path := <-done:
		return path, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("transport: connection %d/%d timed out after %v", batch, conn, timeout)
	}
}

// RunBatch runs k sequential connections for a batch and aggregates the
// outcome: the union forwarder set, per-forwarder instance counts, and all
// realised paths.
type BatchOutcome struct {
	Paths    [][]overlay.NodeID
	Forwards map[overlay.NodeID]int
	Set      map[overlay.NodeID]struct{}
}

// SetSize returns ‖π‖.
func (o *BatchOutcome) SetSize() int { return len(o.Set) }

// Payoff returns a forwarder's income under contract c: m·P_f + P_r/‖π‖.
func (o *BatchOutcome) Payoff(id overlay.NodeID, c core.Contract) float64 {
	if _, member := o.Set[id]; !member {
		return 0
	}
	return float64(o.Forwards[id])*c.Pf + c.Pr/float64(len(o.Set))
}

// RunBatch executes k connections sequentially (recurring connections of
// one (I, R) pair are inherently ordered) and aggregates the outcome.
func (n *Network) RunBatch(initiator, responder overlay.NodeID, batch, k, budget int, timeout time.Duration) (*BatchOutcome, error) {
	out := &BatchOutcome{
		Forwards: make(map[overlay.NodeID]int),
		Set:      make(map[overlay.NodeID]struct{}),
	}
	for conn := 1; conn <= k; conn++ {
		path, err := n.Connect(initiator, responder, batch, conn, budget, timeout)
		if err != nil {
			return out, err
		}
		out.Paths = append(out.Paths, path)
		for _, f := range path[1 : len(path)-1] {
			if f == initiator {
				continue
			}
			out.Forwards[f]++
			out.Set[f] = struct{}{}
		}
	}
	return out, nil
}
