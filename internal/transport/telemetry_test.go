package transport

import (
	"strings"
	"testing"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/quality"
	"p2panon/internal/telemetry"
)

// lineTopology builds a 0-1-2-…-(n-1) path topology.
func lineTopology(n int) Topology {
	topo := make(Topology)
	for i := 0; i < n; i++ {
		var nbs []overlay.NodeID
		if i > 0 {
			nbs = append(nbs, overlay.NodeID(i-1))
		}
		if i < n-1 {
			nbs = append(nbs, overlay.NodeID(i+1))
		}
		topo[overlay.NodeID(i)] = nbs
	}
	return topo
}

func newLineNetwork(t testing.TB, n int) *Network {
	t.Helper()
	topo := lineTopology(n)
	router := NewRandomRouter(topo, dist.NewSource(7))
	net := NewNetwork(0)
	for id := range topo {
		if _, err := net.AddPeer(id, router); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestTracerRecordsConnectionLifecycle(t *testing.T) {
	net := newLineNetwork(t, 6)
	defer net.Close()
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(1024)
	net.Instrument(reg, tr)
	if net.Telemetry() != reg {
		t.Fatal("Instrument did not rebind the registry")
	}
	if net.Tracer() != tr {
		t.Fatal("Instrument did not attach the tracer")
	}

	path, err := net.Connect(0, 5, 1, 1, 8, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	var sawLaunch, sawForward, sawDelivered bool
	for _, ev := range tr.Events() {
		if ev.Batch != 1 || ev.Conn != 1 {
			continue
		}
		switch ev.Kind {
		case telemetry.KindLaunch:
			sawLaunch = true
			if ev.Node != 0 {
				t.Fatalf("launch attributed to node %d, want initiator 0", ev.Node)
			}
		case telemetry.KindHopForward:
			sawForward = true
		case telemetry.KindDelivered:
			sawDelivered = true
			if ev.Hop != len(path) {
				t.Fatalf("delivered hop %d, want path length %d", ev.Hop, len(path))
			}
		}
	}
	if !sawLaunch || !sawForward || !sawDelivered {
		t.Fatalf("incomplete lifecycle: launch=%v forward=%v delivered=%v (events: %+v)",
			sawLaunch, sawForward, sawDelivered, tr.Events())
	}

	m := net.Metrics()
	if m.ConnectLatency.Count != 1 {
		t.Fatalf("connect latency count = %d, want 1", m.ConnectLatency.Count)
	}
	if m.PathLength.Count != 1 || m.PathLength.Mean() != float64(len(path)) {
		t.Fatalf("path length histogram = %+v for path %v", m.PathLength, path)
	}

	// The shared registry exposes the histograms in Prometheus format —
	// the contract the acceptance criterion scrapes.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"transport_connect_latency_seconds_bucket", "transport_path_length_hops_bucket"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestMetricsResetAndDelta(t *testing.T) {
	net := newLineNetwork(t, 5)
	defer net.Close()
	if _, err := net.Connect(0, 4, 1, 1, 8, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	first := net.Metrics()
	if first.Connects != 1 || first.Sent == 0 {
		t.Fatalf("unexpected first window: %v", first)
	}
	if _, err := net.Connect(0, 4, 1, 2, 8, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	window := net.Metrics().Delta(first)
	if window.Connects != 1 {
		t.Fatalf("windowed connects = %d, want 1", window.Connects)
	}
	if window.ConnectLatency.Count != 1 || window.PathLength.Count != 1 {
		t.Fatalf("windowed histograms = %+v / %+v, want one observation each",
			window.ConnectLatency, window.PathLength)
	}
	if window.Sent <= 0 || window.Sent >= net.Metrics().Sent {
		t.Fatalf("windowed sent = %d out of range (lifetime %d)", window.Sent, net.Metrics().Sent)
	}

	net.ResetMetrics()
	zero := net.Metrics()
	if zero.Sent != 0 || zero.Connects != 0 || zero.ConnectLatency.Count != 0 || zero.InboxHighWater != 0 {
		t.Fatalf("reset left %v", zero)
	}
	// The network stays fully usable after a reset.
	if _, err := net.Connect(0, 4, 1, 3, 8, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := net.Metrics().Connects; got != 1 {
		t.Fatalf("post-reset connects = %d, want 1", got)
	}
}

func TestNackHistogramAndTrace(t *testing.T) {
	// The responder departs while the first FORWARD is in flight (node 1's
	// router triggers the removal), so every attempt dies to a NACK.
	topo := Topology{0: {1}, 1: {2}, 2: {3}, 3: {}}
	r := NewRandomRouter(topo, dist.NewSource(7))
	net := NewNetwork(0)
	defer net.Close()
	for id := range topo {
		router := Router(r)
		if id == 1 {
			router = RouterFunc(func(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (overlay.NodeID, bool) {
				net.RemovePeer(3)
				return r.NextHop(self, pred, initiator, responder, batch, conn, remaining)
			})
		}
		if _, err := net.AddPeer(id, router); err != nil {
			t.Fatal(err)
		}
	}
	tr := telemetry.NewTracer(256)
	net.Instrument(nil, tr)
	_, err := net.Connect(0, 3, 1, 1, 8, 200*time.Millisecond)
	if err == nil {
		t.Fatal("connect to the departed responder unexpectedly succeeded")
	}
	m := net.Metrics()
	if m.Nacks == 0 || m.NackHops.Count == 0 {
		t.Fatalf("no NACKs observed: %v", m)
	}
	var sawNack, sawFailed bool
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case telemetry.KindNack:
			sawNack = true
		case telemetry.KindFailed:
			sawFailed = true
		}
	}
	if !sawNack || !sawFailed {
		t.Fatalf("trace missing nack=%v failed=%v", sawNack, sawFailed)
	}
}

func TestSPNECacheCounters(t *testing.T) {
	topo := lineTopology(6)
	avail := map[overlay.NodeID]float64{}
	for id := range topo {
		avail[id] = 0.5
	}
	r := NewUtilityIIRouter(topo, quality.DefaultWeights(), core.ContractWithTau(75, 2), avail)
	reg := telemetry.NewRegistry()
	r.Instrument(reg)
	net := NewNetwork(0)
	defer net.Close()
	for id := range topo {
		if _, err := net.AddPeer(id, r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Connect(0, 5, 1, 1, 8, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var misses int64
	for _, c := range snap.Counters {
		if c.Name == metricSPNECacheTotal && c.Labels["result"] == "miss" {
			misses = c.Value
		}
	}
	if misses == 0 {
		t.Fatalf("no SPNE cache misses recorded: %+v", snap.Counters)
	}
}
