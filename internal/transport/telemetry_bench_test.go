package transport

import (
	"testing"
	"time"

	"p2panon/internal/dist"
	"p2panon/internal/telemetry"
)

// benchConnect drives repeated end-to-end connects over a 12-node line
// with zero link latency, so every message pays the full hot path — send,
// inbox depth note, forward trace hook, histogram observations at
// completion — with nothing to hide behind. Comparing the three variants
// bounds the telemetry overhead quoted in DESIGN.md §3b: Bare is the
// default private registry, MetricsOnly rebinds into a shared registry
// (the -metrics-addr configuration), Traced adds the lifecycle event ring
// on top (the -trace-out configuration, ~13 events per connect here).
func benchConnect(b *testing.B, latency time.Duration, reg *telemetry.Registry, tracer *telemetry.Tracer) {
	topo := lineTopology(12)
	router := NewRandomRouter(topo, dist.NewSource(7))
	net := NewNetwork(latency)
	defer net.Close()
	for id := range topo {
		if _, err := net.AddPeer(id, router); err != nil {
			b.Fatal(err)
		}
	}
	if reg != nil || tracer != nil {
		net.Instrument(reg, tracer)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Connect(0, 11, 1, i, 16, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConnectBare(b *testing.B) { benchConnect(b, 0, nil, nil) }
func BenchmarkConnectMetricsOnly(b *testing.B) {
	benchConnect(b, 0, telemetry.NewRegistry(), nil)
}
func BenchmarkConnectTraced(b *testing.B) {
	benchConnect(b, 0, telemetry.NewRegistry(), telemetry.NewTracer(4096))
}

// The latency variants repeat the comparison over links with a 20µs
// delay — still far faster than any real network — to show the tracing
// cost disappearing as soon as messages spend any time in flight.
func BenchmarkConnectLatencyBare(b *testing.B) { benchConnect(b, 20*time.Microsecond, nil, nil) }
func BenchmarkConnectLatencyTraced(b *testing.B) {
	benchConnect(b, 20*time.Microsecond, telemetry.NewRegistry(), telemetry.NewTracer(4096))
}
