package transport

import (
	"testing"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/quality"
)

// buildTopo creates a dense random topology over n peers.
func buildTopo(n, degree int, seed uint64) Topology {
	rng := dist.NewSource(seed)
	topo := make(Topology)
	for i := 0; i < n; i++ {
		idx := dist.SampleWithoutReplacement(rng, n-1, degree)
		var nbs []overlay.NodeID
		for _, j := range idx {
			if j >= i {
				j++
			}
			nbs = append(nbs, overlay.NodeID(j))
		}
		topo[overlay.NodeID(i)] = nbs
	}
	return topo
}

func uniformAvail(n int) map[overlay.NodeID]float64 {
	m := make(map[overlay.NodeID]float64, n)
	for i := 0; i < n; i++ {
		m[overlay.NodeID(i)] = 1.0 / float64(n)
	}
	return m
}

func startNetwork(t *testing.T, topo Topology, r Router) *Network {
	t.Helper()
	n := NewNetwork(0)
	for id := range topo {
		if _, err := n.AddPeer(id, r); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(n.Close)
	return n
}

func TestConnectCompletesEndToEnd(t *testing.T) {
	topo := buildTopo(20, 5, 1)
	r := NewRandomRouter(topo, dist.NewSource(2))
	n := startNetwork(t, topo, r)
	path, err := n.Connect(0, 19, 1, 1, 4, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != 0 || path[len(path)-1] != 19 {
		t.Fatalf("path %v", path)
	}
	if len(path) < 2 || len(path) > 7 {
		t.Fatalf("path length %d", len(path))
	}
}

func TestConnectValidation(t *testing.T) {
	topo := buildTopo(5, 2, 3)
	r := NewRandomRouter(topo, dist.NewSource(4))
	n := startNetwork(t, topo, r)
	if _, err := n.Connect(0, 0, 1, 1, 3, time.Second); err == nil {
		t.Fatal("I == R accepted")
	}
	if _, err := n.Connect(99, 0, 1, 1, 3, time.Second); err == nil {
		t.Fatal("unknown initiator accepted")
	}
	if _, err := n.Connect(0, 99, 1, 1, 3, time.Second); err == nil {
		t.Fatal("unknown responder accepted")
	}
}

func TestAddPeerValidation(t *testing.T) {
	n := NewNetwork(0)
	defer n.Close()
	r := NewRandomRouter(buildTopo(3, 1, 5), dist.NewSource(6))
	if _, err := n.AddPeer(1, nil); err == nil {
		t.Fatal("nil router accepted")
	}
	if _, err := n.AddPeer(1, r); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddPeer(1, r); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if n.Peer(1) == nil || n.Peer(42) != nil {
		t.Fatal("Peer lookup wrong")
	}
}

func TestHopBudgetForcesDelivery(t *testing.T) {
	topo := buildTopo(20, 5, 7)
	r := NewRandomRouter(topo, dist.NewSource(8))
	n := startNetwork(t, topo, r)
	for i := 0; i < 20; i++ {
		path, err := n.Connect(0, 19, 1, i+1, 3, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// budget 3 → at most 3 forward decisions + delivery: ≤ 5 nodes...
		// precisely: initiator consumes one decision, so ≤ budget+2 nodes.
		if len(path) > 5 {
			t.Fatalf("path %v exceeds budget", path)
		}
	}
}

func TestForwardCountsTracked(t *testing.T) {
	// Line topology 0→1→2→3: the only possible route.
	topo := Topology{
		0: {1},
		1: {2},
		2: {3},
		3: {},
	}
	r := NewRandomRouter(topo, dist.NewSource(9))
	n := startNetwork(t, topo, r)
	out, err := n.RunBatch(0, 3, 7, 5, 10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.SetSize() != 2 {
		t.Fatalf("‖π‖ = %d, want 2", out.SetSize())
	}
	if out.Forwards[1] != 5 || out.Forwards[2] != 5 {
		t.Fatalf("forwards %v", out.Forwards)
	}
	// Peers' own accounting must agree.
	if got := n.Peer(1).Forwards(7); got != 5 {
		t.Fatalf("peer 1 counted %d", got)
	}
	if got := n.Peer(0).Forwards(7); got != 0 {
		t.Fatalf("initiator counted %d forwards", got)
	}
}

func TestBatchPayoffRule(t *testing.T) {
	topo := Topology{0: {1}, 1: {2}, 2: {3}, 3: {}}
	r := NewRandomRouter(topo, dist.NewSource(10))
	n := startNetwork(t, topo, r)
	out, err := n.RunBatch(0, 3, 1, 4, 10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := core.Contract{Pf: 10, Pr: 100}
	// Each of peers 1,2 forwarded 4 times; share = 50.
	if got := out.Payoff(1, c); got != 4*10+50 {
		t.Fatalf("payoff(1) = %g", got)
	}
	if got := out.Payoff(9, c); got != 0 {
		t.Fatalf("non-member payoff %g", got)
	}
}

func TestUtilityRouterShrinksForwarderSet(t *testing.T) {
	topo := buildTopo(30, 6, 11)
	avail := uniformAvail(30)
	c := core.ContractWithTau(75, 2)

	ur := NewUtilityRouter(topo, quality.DefaultWeights(), c, avail)
	nu := startNetwork(t, topo, ur)
	uOut, err := nu.RunBatch(0, 29, 1, 20, 5, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	rr := NewRandomRouter(topo, dist.NewSource(12))
	nr := startNetwork(t, topo, rr)
	rOut, err := nr.RunBatch(0, 29, 1, 20, 5, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	if uOut.SetSize() >= rOut.SetSize() {
		t.Fatalf("live utility ‖π‖=%d not below random ‖π‖=%d", uOut.SetSize(), rOut.SetSize())
	}
}

func TestUtilityRouterStabilisesPaths(t *testing.T) {
	topo := buildTopo(30, 6, 13)
	ur := NewUtilityRouter(topo, quality.DefaultWeights(), core.ContractWithTau(75, 4), uniformAvail(30))
	n := startNetwork(t, topo, ur)
	out, err := n.RunBatch(0, 29, 1, 10, 5, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// After warm-up, consecutive paths should repeat exactly.
	last := out.Paths[len(out.Paths)-1]
	prev := out.Paths[len(out.Paths)-2]
	if len(last) != len(prev) {
		t.Fatalf("steady-state paths differ: %v vs %v", prev, last)
	}
	for i := range last {
		if last[i] != prev[i] {
			t.Fatalf("steady-state paths differ: %v vs %v", prev, last)
		}
	}
}

func TestLatencyDelivery(t *testing.T) {
	topo := Topology{0: {1}, 1: {}, 2: {}}
	n := NewNetwork(100 * time.Microsecond)
	defer n.Close()
	r := NewRandomRouter(topo, dist.NewSource(14))
	for id := range topo {
		if _, err := n.AddPeer(id, r); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	path, err := n.Connect(0, 2, 1, 1, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 {
		t.Fatalf("path %v", path)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Microsecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestCloseIdempotentAndStopsPeers(t *testing.T) {
	topo := buildTopo(5, 2, 15)
	r := NewRandomRouter(topo, dist.NewSource(16))
	n := NewNetwork(0)
	for id := range topo {
		n.AddPeer(id, r)
	}
	n.Close()
	n.Close() // must not panic
}

func TestConcurrentBatches(t *testing.T) {
	// Multiple initiators run batches concurrently over one network; the
	// runtime must stay consistent (run with -race).
	topo := buildTopo(30, 6, 17)
	ur := NewUtilityRouter(topo, quality.DefaultWeights(), core.ContractWithTau(75, 2), uniformAvail(30))
	n := startNetwork(t, topo, ur)
	const workers = 4
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			_, err := n.RunBatch(overlay.NodeID(w), overlay.NodeID(29-w), 100+w, 10, 5, 10*time.Second)
			errs <- err
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRemovePeerDropsTraffic(t *testing.T) {
	// Line topology: removing the middle relay makes connections time out
	// like a real mid-path departure.
	topo := Topology{0: {1}, 1: {2}, 2: {3}, 3: {}}
	r := NewRandomRouter(topo, dist.NewSource(18))
	n := startNetwork(t, topo, r)
	if _, err := n.Connect(0, 3, 1, 1, 10, time.Second); err != nil {
		t.Fatal(err)
	}
	n.RemovePeer(2)
	if n.Peer(2) != nil {
		t.Fatal("removed peer still listed")
	}
	if _, err := n.Connect(0, 3, 1, 2, 10, 200*time.Millisecond); err == nil {
		t.Fatal("connection through removed peer succeeded")
	}
	n.RemovePeer(2)  // idempotent
	n.RemovePeer(99) // unknown: no-op
}

func TestUtilityIIRouterReachesResponder(t *testing.T) {
	topo := buildTopo(25, 6, 21)
	r := NewUtilityIIRouter(topo, quality.DefaultWeights(), core.ContractWithTau(75, 2), uniformAvail(25))
	n := startNetwork(t, topo, r)
	out, err := n.RunBatch(0, 24, 1, 15, 5, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Paths) != 15 {
		t.Fatalf("paths %d", len(out.Paths))
	}
	for _, p := range out.Paths {
		if p[0] != 0 || p[len(p)-1] != 24 {
			t.Fatalf("bad path %v", p)
		}
	}
}

func TestUtilityIIRouterShrinksForwarderSet(t *testing.T) {
	topo := buildTopo(30, 6, 22)
	avail := uniformAvail(30)
	c := core.ContractWithTau(75, 2)

	u2 := NewUtilityIIRouter(topo, quality.DefaultWeights(), c, avail)
	n2 := startNetwork(t, topo, u2)
	out2, err := n2.RunBatch(0, 29, 1, 20, 5, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	rr := NewRandomRouter(topo, dist.NewSource(23))
	nr := startNetwork(t, topo, rr)
	outR, err := nr.RunBatch(0, 29, 1, 20, 5, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out2.SetSize() >= outR.SetSize() {
		t.Fatalf("live UM-II ‖π‖=%d not below random %d", out2.SetSize(), outR.SetSize())
	}
}

func TestUtilityIIRouterConcurrentBatches(t *testing.T) {
	topo := buildTopo(25, 6, 24)
	r := NewUtilityIIRouter(topo, quality.DefaultWeights(), core.ContractWithTau(75, 2), uniformAvail(25))
	n := startNetwork(t, topo, r)
	errs := make(chan error, 3)
	for w := 0; w < 3; w++ {
		go func(w int) {
			_, err := n.RunBatch(overlay.NodeID(w), overlay.NodeID(24-w), 50+w, 8, 4, 10*time.Second)
			errs <- err
		}(w)
	}
	for w := 0; w < 3; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
