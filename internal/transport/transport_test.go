package transport

import (
	"strings"
	"sync"
	"testing"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/dist"
	"p2panon/internal/onion"
	"p2panon/internal/overlay"
	"p2panon/internal/quality"
	"p2panon/internal/trace"
	"p2panon/internal/vclock"
)

// buildTopo creates a dense random topology over n peers.
func buildTopo(n, degree int, seed uint64) Topology {
	rng := dist.NewSource(seed)
	topo := make(Topology)
	for i := 0; i < n; i++ {
		idx := dist.SampleWithoutReplacement(rng, n-1, degree)
		var nbs []overlay.NodeID
		for _, j := range idx {
			if j >= i {
				j++
			}
			nbs = append(nbs, overlay.NodeID(j))
		}
		topo[overlay.NodeID(i)] = nbs
	}
	return topo
}

func uniformAvail(n int) map[overlay.NodeID]float64 {
	m := make(map[overlay.NodeID]float64, n)
	for i := 0; i < n; i++ {
		m[overlay.NodeID(i)] = 1.0 / float64(n)
	}
	return m
}

// virtualize puts n on an auto-advancing virtual clock so retry backoff
// and attempt deadlines consume zero wall time: whenever every goroutine
// is blocked on the clock, it jumps straight to the next deadline. Timing
// assertions then read virtual elapsed time and are exact, not flaky.
func virtualize(t *testing.T, n *Network) *vclock.Virtual {
	t.Helper()
	vc := vclock.NewVirtual(time.Time{})
	// 5ms of real-time quiescence before each virtual jump: generous
	// against -race scheduler stalls, still thousands of times faster than
	// sleeping through real backoff schedules.
	stop := vc.AutoAdvance(5 * time.Millisecond)
	t.Cleanup(stop)
	n.SetClock(vc)
	return vc
}

func startNetwork(t *testing.T, topo Topology, r Router) *Network {
	t.Helper()
	n := NewNetwork(0)
	for id := range topo {
		if _, err := n.AddPeer(id, r); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(n.Close)
	return n
}

func TestConnectCompletesEndToEnd(t *testing.T) {
	topo := buildTopo(20, 5, 1)
	r := NewRandomRouter(topo, dist.NewSource(2))
	n := startNetwork(t, topo, r)
	path, err := n.Connect(0, 19, 1, 1, 4, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != 0 || path[len(path)-1] != 19 {
		t.Fatalf("path %v", path)
	}
	if len(path) < 2 || len(path) > 7 {
		t.Fatalf("path length %d", len(path))
	}
}

func TestConnectValidation(t *testing.T) {
	topo := buildTopo(5, 2, 3)
	r := NewRandomRouter(topo, dist.NewSource(4))
	n := startNetwork(t, topo, r)
	if _, err := n.Connect(0, 0, 1, 1, 3, time.Second); err == nil {
		t.Fatal("I == R accepted")
	}
	if _, err := n.Connect(99, 0, 1, 1, 3, time.Second); err == nil {
		t.Fatal("unknown initiator accepted")
	}
	if _, err := n.Connect(0, 99, 1, 1, 3, time.Second); err == nil {
		t.Fatal("unknown responder accepted")
	}
}

func TestAddPeerValidation(t *testing.T) {
	n := NewNetwork(0)
	defer n.Close()
	r := NewRandomRouter(buildTopo(3, 1, 5), dist.NewSource(6))
	if _, err := n.AddPeer(1, nil); err == nil {
		t.Fatal("nil router accepted")
	}
	if _, err := n.AddPeer(1, r); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddPeer(1, r); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if n.Peer(1) == nil || n.Peer(42) != nil {
		t.Fatal("Peer lookup wrong")
	}
}

func TestHopBudgetForcesDelivery(t *testing.T) {
	topo := buildTopo(20, 5, 7)
	r := NewRandomRouter(topo, dist.NewSource(8))
	n := startNetwork(t, topo, r)
	for i := 0; i < 20; i++ {
		path, err := n.Connect(0, 19, 1, i+1, 3, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// budget 3 → at most 3 forward decisions + delivery: ≤ 5 nodes...
		// precisely: initiator consumes one decision, so ≤ budget+2 nodes.
		if len(path) > 5 {
			t.Fatalf("path %v exceeds budget", path)
		}
	}
}

func TestForwardCountsTracked(t *testing.T) {
	// Line topology 0→1→2→3: the only possible route.
	topo := Topology{
		0: {1},
		1: {2},
		2: {3},
		3: {},
	}
	r := NewRandomRouter(topo, dist.NewSource(9))
	n := startNetwork(t, topo, r)
	out, err := n.RunBatch(0, 3, 7, 5, 10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.SetSize() != 2 {
		t.Fatalf("‖π‖ = %d, want 2", out.SetSize())
	}
	if out.Forwards[1] != 5 || out.Forwards[2] != 5 {
		t.Fatalf("forwards %v", out.Forwards)
	}
	// Peers' own accounting must agree.
	if got := n.Peer(1).Forwards(7); got != 5 {
		t.Fatalf("peer 1 counted %d", got)
	}
	if got := n.Peer(0).Forwards(7); got != 0 {
		t.Fatalf("initiator counted %d forwards", got)
	}
}

func TestBatchPayoffRule(t *testing.T) {
	topo := Topology{0: {1}, 1: {2}, 2: {3}, 3: {}}
	r := NewRandomRouter(topo, dist.NewSource(10))
	n := startNetwork(t, topo, r)
	out, err := n.RunBatch(0, 3, 1, 4, 10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := core.Contract{Pf: 10, Pr: 100}
	// Each of peers 1,2 forwarded 4 times; share = 50.
	if got := out.Payoff(1, c); got != 4*10+50 {
		t.Fatalf("payoff(1) = %g", got)
	}
	if got := out.Payoff(9, c); got != 0 {
		t.Fatalf("non-member payoff %g", got)
	}
}

func TestUtilityRouterShrinksForwarderSet(t *testing.T) {
	topo := buildTopo(30, 6, 11)
	avail := uniformAvail(30)
	c := core.ContractWithTau(75, 2)

	ur := NewUtilityRouter(topo, quality.DefaultWeights(), c, avail)
	nu := startNetwork(t, topo, ur)
	uOut, err := nu.RunBatch(0, 29, 1, 20, 5, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	rr := NewRandomRouter(topo, dist.NewSource(12))
	nr := startNetwork(t, topo, rr)
	rOut, err := nr.RunBatch(0, 29, 1, 20, 5, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	if uOut.SetSize() >= rOut.SetSize() {
		t.Fatalf("live utility ‖π‖=%d not below random ‖π‖=%d", uOut.SetSize(), rOut.SetSize())
	}
}

func TestUtilityRouterStabilisesPaths(t *testing.T) {
	topo := buildTopo(30, 6, 13)
	ur := NewUtilityRouter(topo, quality.DefaultWeights(), core.ContractWithTau(75, 4), uniformAvail(30))
	n := startNetwork(t, topo, ur)
	out, err := n.RunBatch(0, 29, 1, 10, 5, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// After warm-up, consecutive paths should repeat exactly.
	last := out.Paths[len(out.Paths)-1]
	prev := out.Paths[len(out.Paths)-2]
	if len(last) != len(prev) {
		t.Fatalf("steady-state paths differ: %v vs %v", prev, last)
	}
	for i := range last {
		if last[i] != prev[i] {
			t.Fatalf("steady-state paths differ: %v vs %v", prev, last)
		}
	}
}

func TestLatencyDelivery(t *testing.T) {
	topo := Topology{0: {1}, 1: {}, 2: {}}
	n := NewNetwork(100 * time.Microsecond)
	defer n.Close()
	vc := virtualize(t, n)
	r := NewRandomRouter(topo, dist.NewSource(14))
	for id := range topo {
		if _, err := n.AddPeer(id, r); err != nil {
			t.Fatal(err)
		}
	}
	path, err := n.Connect(0, 2, 1, 1, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 {
		t.Fatalf("path %v", path)
	}
	// Forward leg + confirm leg each cross at least one link, so at least
	// two link latencies of virtual time must have passed — and because
	// the clock only moves in link-latency hops here, the elapsed virtual
	// time is an exact multiple of it.
	if elapsed := vc.Elapsed(); elapsed < 200*time.Microsecond {
		t.Fatalf("latency not applied: virtual elapsed %v", elapsed)
	} else if elapsed%(100*time.Microsecond) != 0 {
		t.Fatalf("virtual elapsed %v is not a whole number of link latencies", elapsed)
	}
}

func TestCloseIdempotentAndStopsPeers(t *testing.T) {
	topo := buildTopo(5, 2, 15)
	r := NewRandomRouter(topo, dist.NewSource(16))
	n := NewNetwork(0)
	for id := range topo {
		n.AddPeer(id, r)
	}
	n.Close()
	n.Close() // must not panic
}

func TestConcurrentBatches(t *testing.T) {
	// Multiple initiators run batches concurrently over one network; the
	// runtime must stay consistent (run with -race).
	topo := buildTopo(30, 6, 17)
	ur := NewUtilityRouter(topo, quality.DefaultWeights(), core.ContractWithTau(75, 2), uniformAvail(30))
	n := startNetwork(t, topo, ur)
	const workers = 4
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			_, err := n.RunBatch(overlay.NodeID(w), overlay.NodeID(29-w), 100+w, 10, 5, 10*time.Second)
			errs <- err
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRemovePeerReformsAndSucceeds(t *testing.T) {
	// Line topology: removing the middle relay forces a mid-path
	// departure. The holder's send fails synchronously, a NACK retraces
	// the reverse path, and the initiator reforms — the connection must
	// still succeed within its deadline, avoiding the corpse.
	topo := Topology{0: {1}, 1: {2}, 2: {3}, 3: {}}
	r := NewRandomRouter(topo, dist.NewSource(18))
	n := startNetwork(t, topo, r)
	vc := virtualize(t, n)
	if _, err := n.Connect(0, 3, 1, 1, 10, time.Second); err != nil {
		t.Fatal(err)
	}
	n.RemovePeer(2)
	if n.Peer(2) != nil {
		t.Fatal("removed peer still listed")
	}
	start := vc.Now()
	out, err := n.RunBatch(0, 3, 1, 1, 10, time.Second)
	if err != nil {
		t.Fatalf("connection did not reform around removed peer: %v", err)
	}
	if elapsed := vc.Since(start); elapsed > time.Second {
		t.Fatalf("reformation blew the deadline: virtual elapsed %v", elapsed)
	}
	if out.Reformations < 1 {
		t.Fatalf("reformations = %d, want >= 1", out.Reformations)
	}
	for _, p := range out.Paths {
		for _, id := range p {
			if id == 2 {
				t.Fatalf("reformed path %v goes through the removed peer", p)
			}
		}
	}
	m := n.Metrics()
	if m.Nacks == 0 || m.Dropped == 0 || m.Reformations == 0 {
		t.Fatalf("metrics did not record the departure: %v", m)
	}
	n.RemovePeer(2)  // idempotent
	n.RemovePeer(99) // unknown: no-op
}

func TestNackFailsFastOnMidFlightResponderDeparture(t *testing.T) {
	// The responder departs while the first FORWARD is in flight (a
	// forwarder's router triggers the removal, making the race
	// deterministic): every attempt then ends in a synchronous NACK, so
	// Connect exhausts its attempts and fails well before the overall
	// timeout instead of sleeping through it.
	topo := Topology{0: {1}, 1: {2}, 2: {3}, 3: {}}
	r := NewRandomRouter(topo, dist.NewSource(19))
	n := NewNetwork(0)
	t.Cleanup(n.Close)
	vc := virtualize(t, n)
	for id := range topo {
		router := Router(r)
		if id == 1 {
			router = RouterFunc(func(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (overlay.NodeID, bool) {
				n.RemovePeer(3) // the responder vanishes mid-path
				return r.NextHop(self, pred, initiator, responder, batch, conn, remaining)
			})
		}
		if _, err := n.AddPeer(id, router); err != nil {
			t.Fatal(err)
		}
	}
	start := vc.Now()
	_, err := n.Connect(0, 3, 1, 1, 10, 10*time.Second)
	if err == nil {
		t.Fatal("connection to mid-flight-departed responder succeeded")
	}
	if !strings.Contains(err.Error(), "departed") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Every attempt fails on a synchronous NACK, so the only virtual time
	// spent is retry backoff — far below the 10s timeout the old
	// wall-clock version could sleep through.
	if elapsed := vc.Since(start); elapsed > time.Second {
		t.Fatalf("NACK-driven failure took %v of virtual time, want well under the 10s timeout", elapsed)
	}
	m := n.Metrics()
	if m.Nacks == 0 || m.Failures == 0 {
		t.Fatalf("failure not counted: %v", m)
	}
	// Other responders are unaffected.
	if _, err := n.Connect(0, 2, 1, 2, 10, 5*time.Second); err != nil {
		t.Fatalf("responder 2 is still alive: %v", err)
	}
}

func TestBackoffScheduleOnVirtualClock(t *testing.T) {
	// Every attempt fails on a synchronous NACK (the only interior relay is
	// removed and the random router keeps picking it until MarkDead teaches
	// it otherwise — here we pin the router so it never learns), so the only
	// virtual time Connect consumes is its backoff schedule. With base
	// 100ms doubling to a 300ms cap over 4 attempts, that schedule is
	// exactly 100+200+300 = 600ms — an equality no wall-clock test could
	// assert without flaking.
	n := NewNetwork(0)
	t.Cleanup(n.Close)
	vc := virtualize(t, n)
	n.SetRetry(RetryPolicy{MaxAttempts: 4, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond})
	pinned := RouterFunc(func(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (overlay.NodeID, bool) {
		return 1, false // always route via the corpse
	})
	for _, id := range []overlay.NodeID{0, 2, 3} {
		if _, err := n.AddPeer(id, pinned); err != nil {
			t.Fatal(err)
		}
	}
	_, err := n.Connect(0, 3, 1, 1, 10, time.Minute)
	if err == nil {
		t.Fatal("connection through a permanently dead relay succeeded")
	}
	if got := vc.Elapsed(); got != 600*time.Millisecond {
		t.Fatalf("virtual backoff schedule consumed %v, want exactly 600ms", got)
	}
	m := n.Metrics()
	if m.Reformations != 3 || m.Nacks != 4 {
		t.Fatalf("reformations %d nacks %d, want 3 and 4", m.Reformations, m.Nacks)
	}
}

func TestConcurrentChurnRace(t *testing.T) {
	// Batches run while interior nodes are concurrently removed and
	// re-added: no panic or race (run with -race), batches still
	// complete, and the per-batch reformation counts agree with the
	// network's counter.
	topo := buildTopo(30, 6, 25)
	ur := NewUtilityRouter(topo, quality.DefaultWeights(), core.ContractWithTau(75, 2), uniformAvail(30))
	n := startNetwork(t, topo, ur)
	n.SetRetry(RetryPolicy{MaxAttempts: 6, BaseBackoff: 200 * time.Microsecond, MaxBackoff: 5 * time.Millisecond})

	const workers = 3
	outs := make([]*BatchOutcome, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outs[w], errs[w] = n.RunBatch(overlay.NodeID(w), overlay.NodeID(29-w), 200+w, 12, 5, 10*time.Second)
		}(w)
	}
	// Churn interior nodes (never the workers' endpoints) while the
	// batches are in flight.
	churned := []overlay.NodeID{10, 12, 14, 16, 18}
	for round := 0; round < 3; round++ {
		for _, id := range churned {
			n.RemovePeer(id)
			time.Sleep(500 * time.Microsecond)
			if _, err := n.AddPeer(id, ur); err != nil {
				t.Errorf("re-add %d: %v", id, err)
			}
		}
	}
	wg.Wait()
	total := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if len(outs[w].Paths) != 12 {
			t.Fatalf("worker %d completed %d connections", w, len(outs[w].Paths))
		}
		total += outs[w].Reformations
	}
	if got := n.Metrics().Reformations; got != int64(total) {
		t.Fatalf("network counted %d reformations, batches %d", got, total)
	}
}

func TestContractRejectionNacksInitiator(t *testing.T) {
	// A forwarder that fails to verify the contract must NACK the
	// initiator (fatal: no retry), not silently drop the message.
	topo := Topology{0: {1}, 1: {2}, 2: {3}, 3: {}}
	r := NewRandomRouter(topo, dist.NewSource(26))
	n := startNetwork(t, topo, r)
	vc := virtualize(t, n)
	bk, err := onion.NewBatchKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	contract, _, err := onion.NewSignedContract(5, 75, 150, bk.Public())
	if err != nil {
		t.Fatal(err)
	}
	bad := *contract
	bad.Pf = 9999 // breaks the signature
	start := vc.Now()
	_, reforms, err := n.connect(0, 3, 5, 1, 10, 5*time.Second, &bad)
	if err == nil {
		t.Fatal("unverifiable contract completed a connection")
	}
	if !strings.Contains(err.Error(), "verification") {
		t.Fatalf("unexpected error: %v", err)
	}
	if reforms != 0 {
		t.Fatalf("fatal NACK still reformed %d times", reforms)
	}
	// A fatal NACK skips every retry, so no backoff is ever slept: the
	// virtual clock must not have moved at all.
	if elapsed := vc.Since(start); elapsed != 0 {
		t.Fatalf("fatal NACK consumed %v of virtual time, want 0", elapsed)
	}
	m := n.Metrics()
	if m.ContractRejects == 0 || m.Nacks == 0 {
		t.Fatalf("rejection not counted: %v", m)
	}
}

func TestRunTraceReplaysWorkloadUnderChurn(t *testing.T) {
	rng := dist.NewSource(27)
	net := overlay.NewNetwork(6, rng.Split())
	for i := 0; i < 25; i++ {
		net.Join(0, false)
	}
	for _, id := range net.AllIDs() {
		net.RefreshNeighbors(id)
	}
	topo := SnapshotTopology(net)
	ur := NewUtilityRouter(topo, quality.DefaultWeights(), core.ContractWithTau(75, 2), uniformAvail(25))
	n := startNetwork(t, topo, ur)

	w := trace.Workload{Pairs: 6, Transmissions: 48, MaxConnections: 10, PfLo: 50, PfHi: 100, Tau: 2}
	pairs, err := w.Generate(net, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	endpoints := make(map[overlay.NodeID]struct{})
	for _, p := range pairs {
		endpoints[p.Initiator] = struct{}{}
		endpoints[p.Responder] = struct{}{}
	}
	total := trace.TotalConnections(pairs)
	removed := false
	res := n.RunTrace(pairs, TraceOptions{
		Budget:  5,
		Timeout: 5 * time.Second,
		Before: func(k int, sofar *TraceResult) {
			if removed || k < total/2 {
				return
			}
			// Remove the busiest interior forwarder observed so far.
			victim, best := overlay.None, 0
			for _, out := range sofar.Outcomes {
				for id, m := range out.Forwards {
					if _, isEnd := endpoints[id]; isEnd {
						continue
					}
					if m > best || (m == best && victim != overlay.None && id < victim) {
						victim, best = id, m
					}
				}
			}
			if victim != overlay.None {
				n.RemovePeer(victim)
				removed = true
			}
		},
	})
	if !removed {
		t.Fatal("no interior forwarder to remove — workload too small")
	}
	if res.Completed+res.Failed != total {
		t.Fatalf("completed %d + failed %d != scheduled %d", res.Completed, res.Failed, total)
	}
	if res.Completed == 0 {
		t.Fatal("no connection completed")
	}
	sum := 0
	for _, out := range res.Outcomes {
		sum += out.Reformations
	}
	if sum != res.Reformations {
		t.Fatalf("per-pair reformations %d != total %d", sum, res.Reformations)
	}
}

func TestMirrorFollowsOverlayChurn(t *testing.T) {
	rng := dist.NewSource(28)
	net := overlay.NewNetwork(3, rng.Split())
	live := NewNetwork(0)
	t.Cleanup(live.Close)
	r := NewRandomRouter(Topology{}, rng.Split())
	Mirror(net, live, func(overlay.NodeID) Router { return r })
	for i := 0; i < 6; i++ {
		net.Join(0, false)
	}
	for _, id := range net.AllIDs() {
		if live.Peer(id) == nil {
			t.Fatalf("joined node %d has no live peer", id)
		}
	}
	net.Leave(10, 2, false)
	if live.Peer(2) != nil {
		t.Fatal("offline node still has a live peer")
	}
	net.Rejoin(20, 2)
	if live.Peer(2) == nil {
		t.Fatal("rejoined node has no live peer")
	}
	net.Leave(30, 5, true)
	if live.Peer(5) != nil {
		t.Fatal("departed node still has a live peer")
	}
}

func TestUtilityIIRouterReachesResponder(t *testing.T) {
	topo := buildTopo(25, 6, 21)
	r := NewUtilityIIRouter(topo, quality.DefaultWeights(), core.ContractWithTau(75, 2), uniformAvail(25))
	n := startNetwork(t, topo, r)
	out, err := n.RunBatch(0, 24, 1, 15, 5, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Paths) != 15 {
		t.Fatalf("paths %d", len(out.Paths))
	}
	for _, p := range out.Paths {
		if p[0] != 0 || p[len(p)-1] != 24 {
			t.Fatalf("bad path %v", p)
		}
	}
}

func TestUtilityIIRouterShrinksForwarderSet(t *testing.T) {
	topo := buildTopo(30, 6, 22)
	avail := uniformAvail(30)
	c := core.ContractWithTau(75, 2)

	u2 := NewUtilityIIRouter(topo, quality.DefaultWeights(), c, avail)
	n2 := startNetwork(t, topo, u2)
	out2, err := n2.RunBatch(0, 29, 1, 20, 5, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	rr := NewRandomRouter(topo, dist.NewSource(23))
	nr := startNetwork(t, topo, rr)
	outR, err := nr.RunBatch(0, 29, 1, 20, 5, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out2.SetSize() >= outR.SetSize() {
		t.Fatalf("live UM-II ‖π‖=%d not below random %d", out2.SetSize(), outR.SetSize())
	}
}

func TestUtilityIIRouterConcurrentBatches(t *testing.T) {
	topo := buildTopo(25, 6, 24)
	r := NewUtilityIIRouter(topo, quality.DefaultWeights(), core.ContractWithTau(75, 2), uniformAvail(25))
	n := startNetwork(t, topo, r)
	errs := make(chan error, 3)
	for w := 0; w < 3; w++ {
		go func(w int) {
			_, err := n.RunBatch(overlay.NodeID(w), overlay.NodeID(24-w), 50+w, 8, 4, 10*time.Second)
			errs <- err
		}(w)
	}
	for w := 0; w < 3; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
