package transport

import (
	"fmt"
	"sync/atomic"
)

// Metrics is the runtime's counter set, updated atomically by every peer
// goroutine and link delivery. Read it via Network.Metrics(), which
// returns a consistent-enough MetricsSnapshot for reporting (counters are
// independent; no cross-counter invariant is guaranteed mid-flight).
type Metrics struct {
	sent            atomic.Int64
	dropped         atomic.Int64
	nacks           atomic.Int64
	contractRejects atomic.Int64
	timeouts        atomic.Int64
	reformations    atomic.Int64
	connects        atomic.Int64
	failures        atomic.Int64
	inboxHighWater  atomic.Int64
}

// noteInboxDepth raises the inbox high-water mark to depth if it exceeds
// the current maximum.
func (m *Metrics) noteInboxDepth(depth int64) {
	for {
		cur := m.inboxHighWater.Load()
		if depth <= cur || m.inboxHighWater.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// Snapshot returns the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Sent:            m.sent.Load(),
		Dropped:         m.dropped.Load(),
		Nacks:           m.nacks.Load(),
		ContractRejects: m.contractRejects.Load(),
		Timeouts:        m.timeouts.Load(),
		Reformations:    m.reformations.Load(),
		Connects:        m.connects.Load(),
		Failures:        m.failures.Load(),
		InboxHighWater:  m.inboxHighWater.Load(),
	}
}

// MetricsSnapshot is a point-in-time copy of the runtime counters.
type MetricsSnapshot struct {
	// Sent counts messages handed to links whose target was alive at
	// send time; Dropped counts deliveries that failed because the
	// target was unknown or departed (including a departing peer's
	// drained inbox).
	Sent, Dropped int64
	// Nacks counts NACK events generated (mid-path departures and
	// contract rejections); ContractRejects counts the subset caused by
	// a forwarder refusing an unverifiable SignedContract.
	Nacks, ContractRejects int64
	// Timeouts counts connection attempts that hit their per-attempt
	// deadline; Reformations counts relaunched attempts (Prop. 1's
	// event); Connects/Failures count connections that terminally
	// succeeded/failed.
	Timeouts, Reformations, Connects, Failures int64
	// InboxHighWater is the deepest any peer inbox has been.
	InboxHighWater int64
}

// String renders the snapshot as a one-line summary.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf(
		"sent=%d dropped=%d nacks=%d contract-rejects=%d timeouts=%d reformations=%d connects=%d failures=%d inbox-hwm=%d",
		s.Sent, s.Dropped, s.Nacks, s.ContractRejects, s.Timeouts, s.Reformations, s.Connects, s.Failures, s.InboxHighWater)
}
