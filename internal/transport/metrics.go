package transport

import (
	"fmt"

	"p2panon/internal/telemetry"
)

// Transport metric names as exposed on the Prometheus endpoint. The
// connect outcome counters share one family, split by a result label.
const (
	metricMessagesTotal     = "transport_messages_total" // label kind: sent|dropped|expired
	metricNacksTotal        = "transport_nacks_total"    //
	metricContractRejects   = "transport_contract_rejects_total"
	metricTimeoutsTotal     = "transport_timeouts_total"
	metricReformationsTotal = "transport_reformations_total"
	metricConnectionsTotal  = "transport_connections_total" // label result: ok|fail
	metricInboxHighWater    = "transport_inbox_high_water"
	metricConnectLatency    = "transport_connect_latency_seconds"
	metricPathLength        = "transport_path_length_hops"
	metricNackHops          = "transport_nack_hops"
	metricSPNECacheTotal    = "transport_spne_cache_total" // label result: hit|miss
)

// Metrics is the runtime's instrument set, founded on a
// telemetry.Registry: atomic counters for every protocol event, a
// high-water gauge for inbox depth, and log-scale histograms for connect
// latency, realised path length and hops-progressed-per-NACK — the
// distributions §3's evaluation is built on. Updated lock-free by every
// peer goroutine; read via Network.Metrics(), which returns a
// consistent-enough MetricsSnapshot (counters are independent; no
// cross-counter invariant is guaranteed mid-flight).
type Metrics struct {
	reg *telemetry.Registry

	sent            *telemetry.Counter
	dropped         *telemetry.Counter
	expired         *telemetry.Counter
	nacks           *telemetry.Counter
	contractRejects *telemetry.Counter
	timeouts        *telemetry.Counter
	reformations    *telemetry.Counter
	connects        *telemetry.Counter
	failures        *telemetry.Counter
	inboxHighWater  *telemetry.Gauge
	connectLatency  *telemetry.Histogram
	pathLen         *telemetry.Histogram
	nackHops        *telemetry.Histogram
}

// newMetrics binds the transport instrument set into reg. Two networks
// instrumented into the same registry share series (their counts sum).
func newMetrics(reg *telemetry.Registry) *Metrics {
	reg.Help(metricMessagesTotal, "messages handed to links (kind=sent), lost to departed peers (kind=dropped) or dead past their attempt deadline (kind=expired)")
	reg.Help(metricConnectionsTotal, "connections terminally completed (result=ok) or abandoned (result=fail)")
	reg.Help(metricConnectLatency, "end-to-end connect latency including reformations")
	reg.Help(metricPathLength, "realised path length in nodes (I..R inclusive)")
	reg.Help(metricNackHops, "hops a path had progressed when a NACK was generated")
	return &Metrics{
		reg:             reg,
		sent:            reg.Counter(metricMessagesTotal, telemetry.Labels{"kind": "sent"}),
		dropped:         reg.Counter(metricMessagesTotal, telemetry.Labels{"kind": "dropped"}),
		expired:         reg.Counter(metricMessagesTotal, telemetry.Labels{"kind": "expired"}),
		nacks:           reg.Counter(metricNacksTotal, nil),
		contractRejects: reg.Counter(metricContractRejects, nil),
		timeouts:        reg.Counter(metricTimeoutsTotal, nil),
		reformations:    reg.Counter(metricReformationsTotal, nil),
		connects:        reg.Counter(metricConnectionsTotal, telemetry.Labels{"result": "ok"}),
		failures:        reg.Counter(metricConnectionsTotal, telemetry.Labels{"result": "fail"}),
		inboxHighWater:  reg.Gauge(metricInboxHighWater, nil),
		connectLatency:  reg.Histogram(metricConnectLatency, telemetry.LogBuckets(100e-6, 2, 17), nil),
		pathLen:         reg.Histogram(metricPathLength, telemetry.LinearBuckets(2, 1, 15), nil),
		nackHops:        reg.Histogram(metricNackHops, telemetry.LinearBuckets(1, 1, 12), nil),
	}
}

// noteInboxDepth raises the inbox high-water mark to depth if it exceeds
// the current maximum.
func (m *Metrics) noteInboxDepth(depth int64) { m.inboxHighWater.SetMax(depth) }

// Snapshot returns the current counter values and histogram states.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Sent:            m.sent.Value(),
		Dropped:         m.dropped.Value(),
		Expired:         m.expired.Value(),
		Nacks:           m.nacks.Value(),
		ContractRejects: m.contractRejects.Value(),
		Timeouts:        m.timeouts.Value(),
		Reformations:    m.reformations.Value(),
		Connects:        m.connects.Value(),
		Failures:        m.failures.Value(),
		InboxHighWater:  m.inboxHighWater.Value(),
		ConnectLatency:  m.connectLatency.Snapshot(),
		PathLength:      m.pathLen.Snapshot(),
		NackHops:        m.nackHops.Snapshot(),
	}
}

// Reset zeroes every transport instrument (counters, high-water mark and
// histograms) so sequential batches on one Network can report per-window
// numbers. Only this Metrics' own instruments are touched — other
// components sharing the registry keep their series.
func (m *Metrics) Reset() {
	m.sent.Reset()
	m.dropped.Reset()
	m.expired.Reset()
	m.nacks.Reset()
	m.contractRejects.Reset()
	m.timeouts.Reset()
	m.reformations.Reset()
	m.connects.Reset()
	m.failures.Reset()
	m.inboxHighWater.Reset()
	m.connectLatency.Reset()
	m.pathLen.Reset()
	m.nackHops.Reset()
}

// MetricsSnapshot is a point-in-time copy of the runtime counters — the
// compatibility view kept stable while the instruments themselves live
// in a telemetry.Registry.
type MetricsSnapshot struct {
	// Sent counts messages handed to links whose target was alive at
	// send time; Dropped counts deliveries that failed because the
	// target was unknown or departed (including a departing peer's
	// drained inbox); Expired counts messages that died in the network
	// because their attempt deadline had already passed.
	Sent, Dropped, Expired int64
	// Nacks counts NACK events generated (mid-path departures and
	// contract rejections); ContractRejects counts the subset caused by
	// a forwarder refusing an unverifiable SignedContract.
	Nacks, ContractRejects int64
	// Timeouts counts connection attempts that hit their per-attempt
	// deadline; Reformations counts relaunched attempts (Prop. 1's
	// event); Connects/Failures count connections that terminally
	// succeeded/failed.
	Timeouts, Reformations, Connects, Failures int64
	// InboxHighWater is the deepest any peer inbox has been.
	InboxHighWater int64
	// ConnectLatency, PathLength and NackHops are the distributional
	// views: end-to-end connect latency in seconds, realised path length
	// in nodes, and how far paths had progressed when NACKed.
	ConnectLatency telemetry.HistogramSnapshot
	PathLength     telemetry.HistogramSnapshot
	NackHops       telemetry.HistogramSnapshot
}

// Delta returns this snapshot minus prev — the per-window view for
// sequential batches on one long-lived Network. InboxHighWater keeps the
// current value (a high-water mark has no meaningful difference).
func (s MetricsSnapshot) Delta(prev MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		Sent:            s.Sent - prev.Sent,
		Dropped:         s.Dropped - prev.Dropped,
		Expired:         s.Expired - prev.Expired,
		Nacks:           s.Nacks - prev.Nacks,
		ContractRejects: s.ContractRejects - prev.ContractRejects,
		Timeouts:        s.Timeouts - prev.Timeouts,
		Reformations:    s.Reformations - prev.Reformations,
		Connects:        s.Connects - prev.Connects,
		Failures:        s.Failures - prev.Failures,
		InboxHighWater:  s.InboxHighWater,
		ConnectLatency:  s.ConnectLatency.Delta(prev.ConnectLatency),
		PathLength:      s.PathLength.Delta(prev.PathLength),
		NackHops:        s.NackHops.Delta(prev.NackHops),
	}
}

// String renders the snapshot as a one-line summary.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf(
		"sent=%d dropped=%d expired=%d nacks=%d contract-rejects=%d timeouts=%d reformations=%d connects=%d failures=%d inbox-hwm=%d",
		s.Sent, s.Dropped, s.Expired, s.Nacks, s.ContractRejects, s.Timeouts, s.Reformations, s.Connects, s.Failures, s.InboxHighWater)
}
