package transport

import (
	"sort"
	"sync"

	"p2panon/internal/core"
	"p2panon/internal/dist"
	"p2panon/internal/game"
	"p2panon/internal/overlay"
	"p2panon/internal/quality"
	"p2panon/internal/telemetry"
)

// Topology is the static neighbor map the live routers consult. The
// concurrent runtime snapshots the overlay once; churn during a live run
// is modelled by removing peers from the snapshot between batches.
type Topology map[overlay.NodeID][]overlay.NodeID

// SnapshotTopology captures the current online overlay into a Topology.
func SnapshotTopology(net *overlay.Network) Topology {
	topo := make(Topology)
	for _, id := range net.OnlineIDs() {
		var nbs []overlay.NodeID
		for _, v := range net.Node(id).Neighbors {
			if net.Online(v) {
				nbs = append(nbs, v)
			}
		}
		topo[id] = nbs
	}
	return topo
}

// candidatesOf filters a peer's neighbors like core does: drop the
// predecessor, the initiator and the responder (delivery is the explicit
// fallback, and routing back through I would expose it for nothing), plus
// any peer known to have departed.
func (t Topology) candidatesOf(self, pred, initiator, responder overlay.NodeID, dead map[overlay.NodeID]struct{}) []overlay.NodeID {
	var out []overlay.NodeID
	for _, v := range t[self] {
		if v == pred || v == initiator || v == responder || v == self {
			continue
		}
		if _, gone := dead[v]; gone {
			continue
		}
		out = append(out, v)
	}
	return out
}

// RandomRouter forwards to a uniformly random candidate; with none it
// delivers. Safe for concurrent use; implements ChurnAware so reformed
// paths avoid peers found dead.
type RandomRouter struct {
	mu   sync.Mutex
	topo Topology
	rng  *dist.Source
	dead map[overlay.NodeID]struct{}
}

// NewRandomRouter builds a random router over a topology snapshot.
func NewRandomRouter(topo Topology, rng *dist.Source) *RandomRouter {
	return &RandomRouter{topo: topo, rng: rng, dead: make(map[overlay.NodeID]struct{})}
}

// MarkDead implements ChurnAware: id is excluded from future candidates.
func (r *RandomRouter) MarkDead(id overlay.NodeID) {
	r.mu.Lock()
	r.dead[id] = struct{}{}
	r.mu.Unlock()
}

// MarkLive implements ChurnAware: a rejoined id becomes routable again.
func (r *RandomRouter) MarkLive(id overlay.NodeID) {
	r.mu.Lock()
	delete(r.dead, id)
	r.mu.Unlock()
}

// NextHop implements Router.
func (r *RandomRouter) NextHop(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (overlay.NodeID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cands := r.topo.candidatesOf(self, pred, initiator, responder, r.dead)
	if len(cands) == 0 {
		return overlay.None, true
	}
	return dist.Choice(r.rng, cands), false
}

// UtilityRouter implements Utility Model I over the live runtime: per-peer
// per-batch history (selectivity) plus static availability scores, scored
// with the configured weights. Safe for concurrent use; implements
// ChurnAware so reformed paths avoid peers found dead.
type UtilityRouter struct {
	mu    sync.Mutex
	topo  Topology
	w     quality.Weights
	c     core.Contract
	avail map[overlay.NodeID]float64
	dead  map[overlay.NodeID]struct{}
	// hist[batch][edge] counts connections that used the edge; conns
	// tracks per-batch connection counts for the selectivity denominator.
	hist  map[int]map[[2]overlay.NodeID]map[int]struct{}
	conns map[int]map[int]struct{}
}

// NewUtilityRouter builds a Model-I router. avail maps node → availability
// estimate in [0, 1] (e.g. from probe snapshots before going live).
func NewUtilityRouter(topo Topology, w quality.Weights, c core.Contract, avail map[overlay.NodeID]float64) *UtilityRouter {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	return &UtilityRouter{
		topo:  topo,
		w:     w,
		c:     c,
		avail: avail,
		dead:  make(map[overlay.NodeID]struct{}),
		hist:  make(map[int]map[[2]overlay.NodeID]map[int]struct{}),
		conns: make(map[int]map[int]struct{}),
	}
}

// MarkDead implements ChurnAware: id is excluded from future candidates.
func (r *UtilityRouter) MarkDead(id overlay.NodeID) {
	r.mu.Lock()
	r.dead[id] = struct{}{}
	r.mu.Unlock()
}

// MarkLive implements ChurnAware: a rejoined id becomes routable again.
func (r *UtilityRouter) MarkLive(id overlay.NodeID) {
	r.mu.Lock()
	delete(r.dead, id)
	r.mu.Unlock()
}

// NextHop implements Router: maximise P_f + q·P_r (costs are uniform in
// the live demo, so they do not affect the argmax), ties to higher q then
// lower ID.
func (r *UtilityRouter) NextHop(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (overlay.NodeID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cands := r.topo.candidatesOf(self, pred, initiator, responder, r.dead)
	if len(cands) == 0 {
		return overlay.None, true
	}
	k := len(r.conns[batch]) + 1
	type scored struct {
		id overlay.NodeID
		q  float64
	}
	best := scored{id: overlay.None, q: -1}
	ids := append([]overlay.NodeID(nil), cands...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, v := range ids {
		sigma := r.selectivity(batch, self, v, k)
		q := r.w.Edge(sigma, r.avail[v])
		if q > best.q {
			best = scored{id: v, q: q}
		}
	}
	r.record(batch, conn, self, best.id)
	return best.id, false
}

func (r *UtilityRouter) selectivity(batch int, from, to overlay.NodeID, k int) float64 {
	if k <= 1 {
		return 0
	}
	uses := len(r.hist[batch][[2]overlay.NodeID{from, to}])
	sigma := float64(uses) / float64(k-1)
	if sigma > 1 {
		sigma = 1
	}
	return sigma
}

func (r *UtilityRouter) record(batch, conn int, from, to overlay.NodeID) {
	edges, ok := r.hist[batch]
	if !ok {
		edges = make(map[[2]overlay.NodeID]map[int]struct{})
		r.hist[batch] = edges
	}
	e := [2]overlay.NodeID{from, to}
	if edges[e] == nil {
		edges[e] = make(map[int]struct{})
	}
	edges[e][conn] = struct{}{}
	if r.conns[batch] == nil {
		r.conns[batch] = make(map[int]struct{})
	}
	r.conns[batch][conn] = struct{}{}
}

// UtilityIIRouter implements Utility Model II over the live runtime: at
// each hop it solves the bounded path game from itself to the responder
// over the topology snapshot — edge qualities from the same per-batch
// selectivity and static availability the Model-I router uses — and plays
// the SPNE prescription. The solved table is cached per (batch, conn)
// since qualities are stable within a connection. Safe for concurrent use.
type UtilityIIRouter struct {
	*UtilityRouter
	nodes int // vertex-space size for the path game (max node id + 1)

	cacheMu sync.Mutex
	cache   map[[2]int]*spneCacheEntry

	// SPNE cache instrumentation, bound by Instrument (nil-safe when not).
	cacheHits, cacheMisses *telemetry.Counter
}

type spneCacheEntry struct {
	responder overlay.NodeID
	table     [][]game.Decision
	budget    int
}

// NewUtilityIIRouter builds a Model-II router over the topology snapshot.
func NewUtilityIIRouter(topo Topology, w quality.Weights, c core.Contract, avail map[overlay.NodeID]float64) *UtilityIIRouter {
	maxID := overlay.NodeID(0)
	for id, nbs := range topo {
		if id > maxID {
			maxID = id
		}
		for _, v := range nbs {
			if v > maxID {
				maxID = v
			}
		}
	}
	return &UtilityIIRouter{
		UtilityRouter: NewUtilityRouter(topo, w, c, avail),
		nodes:         int(maxID) + 1,
		cache:         make(map[[2]int]*spneCacheEntry),
	}
}

// Instrument binds the router's SPNE cache hit/miss counters into reg,
// so game-layer solve reuse is visible on the exposition endpoint. Call
// before traffic starts.
func (r *UtilityIIRouter) Instrument(reg *telemetry.Registry) {
	reg.Help(metricSPNECacheTotal, "SPNE table lookups served from cache (result=hit) vs solved fresh (result=miss)")
	r.cacheHits = reg.Counter(metricSPNECacheTotal, telemetry.Labels{"result": "hit"})
	r.cacheMisses = reg.Counter(metricSPNECacheTotal, telemetry.Labels{"result": "miss"})
}

// MarkDead implements ChurnAware: besides excluding id from candidates,
// cached SPNE tables are discarded — they may prescribe routes through the
// corpse, and a reformed attempt must re-solve without it.
func (r *UtilityIIRouter) MarkDead(id overlay.NodeID) {
	r.UtilityRouter.MarkDead(id)
	r.cacheMu.Lock()
	r.cache = make(map[[2]int]*spneCacheEntry)
	r.cacheMu.Unlock()
}

// MarkLive implements ChurnAware; stale tables solved without the
// returned peer are merely conservative, but dropping them lets routing
// use it again immediately.
func (r *UtilityIIRouter) MarkLive(id overlay.NodeID) {
	r.UtilityRouter.MarkLive(id)
	r.cacheMu.Lock()
	r.cache = make(map[[2]int]*spneCacheEntry)
	r.cacheMu.Unlock()
}

// NextHop implements Router via SPNE play.
func (r *UtilityIIRouter) NextHop(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (overlay.NodeID, bool) {
	entry := r.solve(initiator, responder, batch, conn, remaining)
	if remaining > entry.budget {
		remaining = entry.budget
	}
	d := entry.table[remaining][self]
	if d.Next < 0 || overlay.NodeID(d.Next) == pred {
		// No feasible continuation, or an immediate return (the table is
		// computed over walks): fall back to the local Model-I rule.
		return r.UtilityRouter.NextHop(self, pred, initiator, responder, batch, conn, remaining)
	}
	next := overlay.NodeID(d.Next)
	if next == responder {
		return overlay.None, true
	}
	r.mu.Lock()
	r.record(batch, conn, self, next)
	r.mu.Unlock()
	return next, false
}

// solve returns (building if needed) the SPNE table for this connection.
func (r *UtilityIIRouter) solve(initiator, responder overlay.NodeID, batch, conn, remaining int) *spneCacheEntry {
	key := [2]int{batch, conn}
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if e, ok := r.cache[key]; ok && e.responder == responder && e.budget >= remaining {
		r.cacheHits.Inc()
		return e
	}
	r.cacheMisses.Inc()
	budget := remaining
	g := &game.PathGame{
		Nodes:     r.nodes,
		Responder: int(responder),
		EdgeQuality: func(i, j int) float64 {
			return r.liveEdgeQuality(overlay.NodeID(i), overlay.NodeID(j), initiator, responder, batch)
		},
		Pf:      r.c.Pf,
		Pr:      r.c.Pr,
		MaxHops: budget,
	}
	e := &spneCacheEntry{responder: responder, table: g.Solve(), budget: budget}
	r.cache[key] = e
	return e
}

// liveEdgeQuality scores (i, j) for the stage game: delivery edges have
// quality 1; overlay edges score w_s·σ + w_a·α; everything else is absent.
func (r *UtilityIIRouter) liveEdgeQuality(i, j, initiator, responder overlay.NodeID, batch int) float64 {
	if i == j || i == responder {
		return -1
	}
	if _, ok := r.topo[i]; !ok {
		return -1
	}
	r.mu.Lock()
	_, iDead := r.dead[i]
	_, jDead := r.dead[j]
	r.mu.Unlock()
	if iDead || jDead {
		return -1
	}
	if j == responder {
		return 1
	}
	if j == initiator {
		return -1
	}
	found := false
	for _, v := range r.topo[i] {
		if v == j {
			found = true
			break
		}
	}
	if !found {
		return -1
	}
	r.mu.Lock()
	k := len(r.conns[batch]) + 1
	sigma := r.selectivity(batch, i, j, k)
	r.mu.Unlock()
	return r.w.Edge(sigma, r.avail[j])
}
