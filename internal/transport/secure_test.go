package transport

import (
	"strings"
	"testing"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/onion"
	"p2panon/internal/quality"
)

func secureSetup(t *testing.T, seed uint64) (*Network, *onion.SignedContract, *onion.BatchKey, Topology) {
	t.Helper()
	topo := buildTopo(25, 6, seed)
	r := NewUtilityRouter(topo, quality.DefaultWeights(), core.ContractWithTau(75, 2), uniformAvail(25))
	n := startNetwork(t, topo, r)
	bk, err := onion.NewBatchKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	contract, _, err := onion.NewSignedContract(9, 75, 150, bk.Public())
	if err != nil {
		t.Fatal(err)
	}
	return n, contract, bk, topo
}

func TestConnectSecureRecordsValidate(t *testing.T) {
	n, contract, bk, _ := secureSetup(t, 31)
	res, err := n.ConnectSecure(0, 24, contract, 1, 4, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(res.Path)-2 {
		t.Fatalf("records %d for path %v", len(res.Records), res.Path)
	}
	validated, err := bk.RecreatePath(contract, 1, 0, 24, res.Records)
	if err != nil {
		t.Fatal(err)
	}
	if len(validated) != len(res.Path) {
		t.Fatalf("validated %v vs observed %v", validated, res.Path)
	}
	for i := range validated {
		if validated[i] != res.Path[i] {
			t.Fatalf("validated %v vs observed %v", validated, res.Path)
		}
	}
}

func TestRunSecureBatchEndToEnd(t *testing.T) {
	n, contract, bk, _ := secureSetup(t, 32)
	out, err := n.RunSecureBatch(0, 24, contract, bk, 10, 4, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Paths) != 10 {
		t.Fatalf("paths %d", len(out.Paths))
	}
	if out.SetSize() == 0 {
		t.Fatal("no forwarders")
	}
	// Forward counts must equal total interior slots across validated
	// paths (the payment basis).
	slots := 0
	for _, p := range out.Paths {
		slots += len(p) - 2
	}
	total := 0
	for _, m := range out.Forwards {
		total += m
	}
	if total != slots {
		t.Fatalf("forward counts %d != interior slots %d", total, slots)
	}
}

func TestConnectSecureRejectsTamperedContract(t *testing.T) {
	n, contract, _, _ := secureSetup(t, 33)
	bad := *contract
	bad.Pf = 9999 // breaks the signature
	if _, err := n.ConnectSecure(0, 24, &bad, 1, 4, time.Second); err == nil {
		t.Fatal("tampered contract accepted")
	} else if !strings.Contains(err.Error(), "signature") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := n.ConnectSecure(0, 24, nil, 1, 4, time.Second); err == nil {
		t.Fatal("nil contract accepted")
	}
}

func TestConnectSecureWrongBatchKeyFailsValidation(t *testing.T) {
	n, contract, _, _ := secureSetup(t, 34)
	other, err := onion.NewBatchKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunSecureBatch(0, 24, contract, other, 2, 4, 5*time.Second); err == nil {
		t.Fatal("wrong batch key validated records")
	}
}

func TestConnectSecureValidationArguments(t *testing.T) {
	n, contract, bk, _ := secureSetup(t, 35)
	if _, err := n.ConnectSecure(0, 0, contract, 1, 4, time.Second); err == nil {
		t.Fatal("I == R accepted")
	}
	if _, err := n.ConnectSecure(99, 24, contract, 1, 4, time.Second); err == nil {
		t.Fatal("unknown initiator accepted")
	}
	if _, err := n.RunSecureBatch(0, 24, contract, nil, 1, 4, time.Second); err == nil {
		t.Fatal("nil batch key accepted")
	}
	_ = bk
}

func TestSecureAndPlainInterleave(t *testing.T) {
	// Plain and secure connections share the same network and peers.
	n, contract, bk, _ := secureSetup(t, 36)
	if _, err := n.Connect(0, 24, 9, 1, 4, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := n.ConnectSecure(0, 24, contract, 2, 4, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bk.RecreatePath(contract, 2, 0, 24, res.Records); err != nil {
		t.Fatal(err)
	}
}
