package transport

import (
	"errors"
	"fmt"
	"time"

	"p2panon/internal/onion"
	"p2panon/internal/overlay"
)

// SecureOutcome is one connection's result under the §5 protocol: the
// realised path plus the sealed per-hop records that travelled back with
// the confirmation, ready for initiator-side validation.
type SecureOutcome struct {
	Path    []overlay.NodeID
	Records []onion.PathRecord
}

// ConnectSecure runs one connection under a signed contract: every
// forwarder verifies the contract before doing work and seals a path
// record to the contract's batch key; the confirmation carries the records
// back to the initiator. The caller (holding the batch private key)
// validates with onion.BatchKey.RecreatePath. Mid-path departures are
// retried per the network's RetryPolicy; a forwarder's contract rejection
// is NACKed back and fails the connection immediately (fatal — no
// reformation fixes a bad contract).
func (n *Network) ConnectSecure(initiator, responder overlay.NodeID, contract *onion.SignedContract, conn, budget int, timeout time.Duration) (*SecureOutcome, error) {
	if contract == nil {
		return nil, errors.New("transport: nil contract")
	}
	if !contract.Verify() {
		return nil, errors.New("transport: contract signature invalid")
	}
	res, _, err := n.connect(initiator, responder, int(contract.BatchID), conn, budget, timeout, contract)
	if err != nil {
		return nil, err
	}
	return &SecureOutcome{Path: res.path, Records: res.records}, nil
}

// RunSecureBatch runs k secure connections, validates every one with the
// batch key, and aggregates. A validation failure aborts the batch — a
// deployment would withhold payment instead.
func (n *Network) RunSecureBatch(initiator, responder overlay.NodeID, contract *onion.SignedContract, bk *onion.BatchKey, k, budget int, timeout time.Duration) (*BatchOutcome, error) {
	if bk == nil {
		return nil, errors.New("transport: nil batch key")
	}
	if contract == nil {
		return nil, errors.New("transport: nil contract")
	}
	if !contract.Verify() {
		return nil, errors.New("transport: contract signature invalid")
	}
	out := NewBatchOutcome()
	for conn := 1; conn <= k; conn++ {
		res, reforms, err := n.connect(initiator, responder, int(contract.BatchID), conn, budget, timeout, contract)
		out.Reformations += reforms
		if err != nil {
			return out, err
		}
		validated, err := bk.RecreatePath(contract, uint64(conn), initiator, responder, res.records)
		if err != nil {
			return out, fmt.Errorf("transport: connection %d failed validation: %w", conn, err)
		}
		if len(validated) != len(res.path) {
			return out, fmt.Errorf("transport: connection %d: validated path length %d != observed %d",
				conn, len(validated), len(res.path))
		}
		out.Record(validated, initiator)
	}
	return out, nil
}
