package transport

import (
	"errors"
	"fmt"
	"time"

	"p2panon/internal/onion"
	"p2panon/internal/overlay"
)

// SecureOutcome is one connection's result under the §5 protocol: the
// realised path plus the sealed per-hop records that travelled back with
// the confirmation, ready for initiator-side validation.
type SecureOutcome struct {
	Path    []overlay.NodeID
	Records []onion.PathRecord
}

// ConnectSecure runs one connection under a signed contract: every
// forwarder verifies the contract before doing work and seals a path
// record to the contract's batch key; the confirmation carries the records
// back to the initiator. The caller (holding the batch private key)
// validates with onion.BatchKey.RecreatePath.
func (n *Network) ConnectSecure(initiator, responder overlay.NodeID, contract *onion.SignedContract, conn, budget int, timeout time.Duration) (*SecureOutcome, error) {
	if contract == nil {
		return nil, errors.New("transport: nil contract")
	}
	if !contract.Verify() {
		return nil, errors.New("transport: contract signature invalid")
	}
	if _, ok := n.peers[initiator]; !ok {
		return nil, fmt.Errorf("transport: unknown initiator %d", initiator)
	}
	if _, ok := n.peers[responder]; !ok {
		return nil, fmt.Errorf("transport: unknown responder %d", responder)
	}
	if initiator == responder {
		return nil, errors.New("transport: initiator == responder")
	}
	done := make(chan secureDone, 1)
	n.send(initiator, message{
		kind:       msgForward,
		batch:      int(contract.BatchID),
		conn:       conn,
		from:       overlay.None,
		initiator:  initiator,
		responder:  responder,
		remaining:  budget,
		contract:   contract,
		secureDone: done,
	})
	select {
	case res := <-done:
		if res.err != nil {
			return nil, res.err
		}
		return &SecureOutcome{Path: res.path, Records: res.records}, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("transport: secure connection %d timed out after %v", conn, timeout)
	}
}

type secureDone struct {
	path    []overlay.NodeID
	records []onion.PathRecord
	err     error
}

// RunSecureBatch runs k secure connections, validates every one with the
// batch key, and aggregates. A validation failure aborts the batch — a
// deployment would withhold payment instead.
func (n *Network) RunSecureBatch(initiator, responder overlay.NodeID, contract *onion.SignedContract, bk *onion.BatchKey, k, budget int, timeout time.Duration) (*BatchOutcome, error) {
	if bk == nil {
		return nil, errors.New("transport: nil batch key")
	}
	out := &BatchOutcome{
		Forwards: make(map[overlay.NodeID]int),
		Set:      make(map[overlay.NodeID]struct{}),
	}
	for conn := 1; conn <= k; conn++ {
		res, err := n.ConnectSecure(initiator, responder, contract, conn, budget, timeout)
		if err != nil {
			return out, err
		}
		validated, err := bk.RecreatePath(contract, uint64(conn), initiator, responder, res.Records)
		if err != nil {
			return out, fmt.Errorf("transport: connection %d failed validation: %w", conn, err)
		}
		if len(validated) != len(res.Path) {
			return out, fmt.Errorf("transport: connection %d: validated path length %d != observed %d",
				conn, len(validated), len(res.Path))
		}
		out.Paths = append(out.Paths, validated)
		for _, f := range validated[1 : len(validated)-1] {
			if f == initiator {
				continue
			}
			out.Forwards[f]++
			out.Set[f] = struct{}{}
		}
	}
	return out, nil
}
