package transport

import (
	"time"

	"p2panon/internal/overlay"
	"p2panon/internal/telemetry"
	"p2panon/internal/trace"
	"p2panon/internal/vclock"
)

// Conductor is the backend-independent surface of a live forwarding
// runtime: everything experiment.RunLive, the churn hooks and the
// conformance suite need to drive traffic, without caring whether the
// links are in-process channels (*Network) or real TCP sockets
// (netwire.Cluster). Both backends implement exactly this surface, and
// the shared conformance suite (internal/conformance) executes the same
// behavioral table against each so the two can never drift.
type Conductor interface {
	// Join adds a peer with the given router; RemovePeer models an
	// abrupt departure (a crash as the failure detector sees it).
	Join(id overlay.NodeID, r Router) error
	RemovePeer(id overlay.NodeID)

	// Connect runs one connection; ConnectDetail additionally reports
	// how many path reformations the attempt needed. RunBatch and
	// RunTrace are the batched/interleaved drivers built on it.
	Connect(initiator, responder overlay.NodeID, batch, conn, budget int, timeout time.Duration) ([]overlay.NodeID, error)
	ConnectDetail(initiator, responder overlay.NodeID, batch, conn, budget int, timeout time.Duration) ([]overlay.NodeID, int, error)
	RunBatch(initiator, responder overlay.NodeID, batch, k, budget int, timeout time.Duration) (*BatchOutcome, error)
	RunTrace(pairs []trace.Pair, opt TraceOptions) *TraceResult

	// Instrument rebinds metrics into a shared registry and attaches a
	// lifecycle tracer; Metrics returns the common counter snapshot.
	Instrument(reg *telemetry.Registry, tr *telemetry.Tracer)
	Metrics() MetricsSnapshot
	ResetMetrics()

	// SetRetry and SetClock configure reformation behaviour and the
	// timing source (virtual in deterministic tests).
	SetRetry(RetryPolicy)
	SetClock(c vclock.Clock)

	// Close shuts the runtime down and waits for its goroutines.
	Close()
}

// Join adds a peer, discarding the *Peer handle — the Conductor-shaped
// entry point shared with socket backends (which have no *Peer to return).
func (n *Network) Join(id overlay.NodeID, r Router) error {
	_, err := n.AddPeer(id, r)
	return err
}

// ConnectDetail runs one connection like Connect and additionally returns
// the number of path reformations performed — the Conductor-shaped view
// the conformance suite asserts on.
func (n *Network) ConnectDetail(initiator, responder overlay.NodeID, batch, conn, budget int, timeout time.Duration) ([]overlay.NodeID, int, error) {
	res, reforms, err := n.connect(initiator, responder, batch, conn, budget, timeout, nil)
	if err != nil {
		return nil, reforms, err
	}
	return res.path, reforms, nil
}

var _ Conductor = (*Network)(nil)
