package experiment

import (
	"fmt"
	"sort"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/probe"
	"p2panon/internal/quality"
	"p2panon/internal/stats"
	"p2panon/internal/telemetry"
	"p2panon/internal/trace"
	"p2panon/internal/transport"
)

// LiveSetup parameterises a live (goroutine-per-peer) replay of a trace
// workload under mid-run churn, used to measure Prop. 1's reformation
// behaviour on the concurrent runtime rather than in the deterministic
// simulator.
type LiveSetup struct {
	// N, Degree shape the overlay snapshot the live routers consult.
	N, Degree int
	// Pairs/Transmissions/MaxConnections are the trace workload knobs.
	Pairs, Transmissions, MaxConnections int
	// Budget is the per-connection hop budget; Timeout its deadline.
	Budget  int
	Timeout time.Duration
	// Latency is the per-link delay of the live runtime.
	Latency time.Duration
	// Removals is how many of the busiest interior forwarders are
	// removed halfway through the schedule (mid-batch departures).
	Removals int
	// Strategy picks the live router: core.Random, core.UtilityI or
	// core.UtilityII.
	Strategy core.Strategy
	// Seed drives all randomness.
	Seed uint64
	// Telemetry, when non-nil, receives the run's instruments — the
	// transport runtime's metrics plus overlay churn, probe updates and
	// the SPNE cache counters — so a caller can expose one registry for
	// the whole replay. Tracer, when non-nil, records the connection
	// lifecycle events (launch, hop-forward, NACK, reformation,
	// delivered/failed) into its ring.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
	// Spans, when non-nil, is attached to the conductor so the replay
	// emits deterministic causal span trees (batch roots, launches, hops,
	// responds, delivers, settles) into it — the log cmd/tracetool reads.
	Spans *telemetry.SpanRecorder
	// NewConductor, when non-nil, builds the forwarding backend the
	// replay runs over — e.g. a netwire TCP loopback cluster — with the
	// requested per-link latency. Nil uses the in-process
	// transport.Network. Either backend passes the same conformance
	// suite, so the study's measurements are comparable across wires.
	NewConductor func(latency time.Duration) transport.Conductor
}

// DefaultLive returns a compact live-churn study: 30 peers, 8 pairs of up
// to 10 recurring connections, two mid-run departures.
func DefaultLive() LiveSetup {
	return LiveSetup{
		N: 30, Degree: 6,
		Pairs: 8, Transmissions: 64, MaxConnections: 10,
		Budget:   5,
		Timeout:  5 * time.Second,
		Removals: 2,
		Strategy: core.UtilityI,
		Seed:     1,
	}
}

// LiveOutcome is the result of one live replay.
type LiveOutcome struct {
	Strategy          core.Strategy
	Completed, Failed int
	// Reformations counts relaunched connection attempts — the live
	// realisation of Prop. 1's path-reformation event.
	Reformations int
	// ReformationRate is Reformations per scheduled connection.
	ReformationRate float64
	// Removed lists the peers taken down mid-run.
	Removed []overlay.NodeID
	// Metrics is the transport's counter snapshot after the run.
	Metrics transport.MetricsSnapshot
	// Outcomes holds the per-pair batch outcomes.
	Outcomes []*transport.BatchOutcome
}

// RunLive builds an overlay, snapshots it into the live concurrent
// runtime, replays a trace workload over it, and removes the busiest
// interior forwarders halfway through — forcing mid-path departures whose
// reformations the transport counts.
func RunLive(s LiveSetup) (*LiveOutcome, error) {
	if s.N < 4 {
		return nil, fmt.Errorf("experiment: live N %d too small", s.N)
	}
	rng := dist.NewSource(s.Seed)
	net := overlay.NewNetwork(s.Degree, rng.Split())
	net.Instrument(s.Telemetry)
	for i := 0; i < s.N; i++ {
		net.Join(0, false)
	}
	for _, id := range net.AllIDs() {
		net.RefreshNeighbors(id)
	}
	probes := probe.NewSet(net, rng.Split(), probe.DefaultPeriod)
	probes.Instrument(s.Telemetry)
	for i := 0; i < 5; i++ {
		probes.TickAll()
	}
	topo := transport.SnapshotTopology(net)
	// A node's availability score: the mean of its neighbors' estimates.
	avail := make(map[overlay.NodeID]float64, s.N)
	views := make(map[overlay.NodeID][]float64)
	for _, id := range net.OnlineIDs() {
		for v, a := range probes.For(id).Snapshot() {
			views[v] = append(views[v], a)
		}
	}
	for id, vs := range views {
		avail[id] = stats.Mean(vs)
	}

	contract := core.ContractWithTau(75, 2)
	var router transport.Router
	switch s.Strategy {
	case core.Random:
		router = transport.NewRandomRouter(topo, rng.Split())
	case core.UtilityI:
		router = transport.NewUtilityRouter(topo, quality.DefaultWeights(), contract, avail)
	case core.UtilityII:
		r := transport.NewUtilityIIRouter(topo, quality.DefaultWeights(), contract, avail)
		r.Instrument(s.Telemetry)
		router = r
	default:
		return nil, fmt.Errorf("experiment: strategy %v has no live router", s.Strategy)
	}

	var live transport.Conductor
	if s.NewConductor != nil {
		live = s.NewConductor(s.Latency)
	} else {
		live = transport.NewNetwork(s.Latency)
	}
	defer live.Close()
	if s.Telemetry != nil || s.Tracer != nil {
		live.Instrument(s.Telemetry, s.Tracer)
	}
	if s.Spans != nil {
		si, ok := live.(interface{ SetSpans(*telemetry.SpanRecorder) })
		if !ok {
			return nil, fmt.Errorf("experiment: conductor %T cannot record spans", live)
		}
		si.SetSpans(s.Spans)
	}
	for id := range topo {
		if err := live.Join(id, router); err != nil {
			return nil, err
		}
	}

	w := trace.Workload{
		Pairs:          s.Pairs,
		Transmissions:  s.Transmissions,
		MaxConnections: s.MaxConnections,
		PfLo:           50, PfHi: 100, Tau: 2,
	}
	pairs, err := w.Generate(net, rng.Split())
	if err != nil {
		return nil, err
	}
	endpoints := make(map[overlay.NodeID]struct{})
	for _, p := range pairs {
		endpoints[p.Initiator] = struct{}{}
		endpoints[p.Responder] = struct{}{}
	}

	total := trace.TotalConnections(pairs)
	out := &LiveOutcome{Strategy: s.Strategy}
	// Window the metrics around the replay: with a shared registry the
	// instruments may already carry counts from earlier runs, and Delta
	// keeps the outcome per-window regardless.
	pre := live.Metrics()
	res := live.RunTrace(pairs, transport.TraceOptions{
		Budget:  s.Budget,
		Timeout: s.Timeout,
		Before: func(k int, sofar *transport.TraceResult) {
			if s.Removals <= 0 || k != total/2 {
				return
			}
			for _, victim := range busiestForwarders(sofar, endpoints, s.Removals) {
				live.RemovePeer(victim)
				out.Removed = append(out.Removed, victim)
			}
		},
	})
	out.Completed, out.Failed = res.Completed, res.Failed
	out.Reformations = res.Reformations
	if total > 0 {
		out.ReformationRate = float64(res.Reformations) / float64(total)
	}
	out.Outcomes = res.Outcomes
	out.Metrics = live.Metrics().Delta(pre)
	return out, nil
}

// busiestForwarders ranks interior forwarders by accumulated forwarding
// instances (ties to the lower ID) and returns the top n — the peers whose
// departure hits the most in-use paths, maximising observable mid-batch
// reformations.
func busiestForwarders(sofar *transport.TraceResult, endpoints map[overlay.NodeID]struct{}, n int) []overlay.NodeID {
	counts := make(map[overlay.NodeID]int)
	for _, out := range sofar.Outcomes {
		for id, m := range out.Forwards {
			if _, isEnd := endpoints[id]; isEnd {
				continue
			}
			counts[id] += m
		}
	}
	ids := make([]overlay.NodeID, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) > n {
		ids = ids[:n]
	}
	return ids
}

// LiveReformationComparison sets the live runtime's reformation behaviour
// against the simulator's Prop. 1 measurement: the live side counts actual
// relaunched connections under mid-run departures, the simulated side the
// new-edge rate E[X] under the paper's churn model. Both should show
// utility routing reforming less than random routing.
type LiveReformationComparison struct {
	Random, Utility *LiveOutcome
	// SimRandomNewEdge/SimUtilityNewEdge are the simulator's mean
	// per-batch new-edge rates for the same two strategies.
	SimRandomNewEdge, SimUtilityNewEdge float64
}

// CompareLiveReformation runs the live replay for random and Utility-I
// routing (same seed, same workload shape) and a matching pair of
// simulator runs, returning both sides' reformation measurements.
func CompareLiveReformation(s LiveSetup) (*LiveReformationComparison, error) {
	cmp := &LiveReformationComparison{}
	var err error
	rs := s
	rs.Strategy = core.Random
	if cmp.Random, err = RunLive(rs); err != nil {
		return nil, err
	}
	us := s
	us.Strategy = core.UtilityI
	if cmp.Utility, err = RunLive(us); err != nil {
		return nil, err
	}
	for _, strat := range []core.Strategy{core.Random, core.UtilityI} {
		sim := Quick()
		sim.Seed = s.Seed
		sim.Strategy = strat
		res, err := Run(sim)
		if err != nil {
			return nil, err
		}
		rate := stats.Mean(res.NewEdgeRates)
		if strat == core.Random {
			cmp.SimRandomNewEdge = rate
		} else {
			cmp.SimUtilityNewEdge = rate
		}
	}
	return cmp, nil
}
