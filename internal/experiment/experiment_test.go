package experiment

import (
	"math"
	"testing"

	"p2panon/internal/core"
)

func TestRunQuickSmoke(t *testing.T) {
	r, err := Run(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Batches) == 0 {
		t.Fatal("no batches completed")
	}
	if len(r.GoodPayoffs) == 0 {
		t.Fatal("no payoff samples")
	}
	iv := r.AvgGoodPayoff()
	if math.IsNaN(iv.Mean) || iv.Mean <= 0 {
		t.Fatalf("avg payoff %v", iv)
	}
	if r.AvgSetSize() <= 0 {
		t.Fatalf("avg set size %g", r.AvgSetSize())
	}
	if r.RoutingEfficiency() <= 0 {
		t.Fatalf("efficiency %g", r.RoutingEfficiency())
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(Quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.GoodPayoffs) != len(b.GoodPayoffs) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.GoodPayoffs), len(b.GoodPayoffs))
	}
	for i := range a.GoodPayoffs {
		if a.GoodPayoffs[i] != b.GoodPayoffs[i] {
			t.Fatalf("payoff %d differs", i)
		}
	}
	if a.AvgSetSize() != b.AvgSetSize() {
		t.Fatal("set sizes differ")
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	s1 := Quick()
	s2 := Quick()
	s2.Seed = 999
	a, err := Run(s1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s2)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgGoodPayoff().Mean == b.AvgGoodPayoff().Mean &&
		a.AvgSetSize() == b.AvgSetSize() {
		t.Fatal("different seeds produced identical aggregates")
	}
}

func TestRunWithChurnCompletes(t *testing.T) {
	s := Quick()
	s.Churn = true
	s.ChurnConfig = Default().ChurnConfig
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Batches) == 0 {
		t.Fatal("no batches under churn")
	}
}

func TestRunValidation(t *testing.T) {
	s := Quick()
	s.N = 1
	if _, err := Run(s); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := RunTrials(Quick(), 0); err == nil {
		t.Fatal("0 trials accepted")
	}
}

func TestStrategyOrderingFig5(t *testing.T) {
	// The headline result: utility routing yields much smaller forwarder
	// sets than random routing (Fig. 5's shape), with churn on.
	means := map[core.Strategy]float64{}
	for _, strat := range []core.Strategy{core.Random, core.UtilityI, core.UtilityII} {
		s := Quick()
		s.Churn = true
		s.ChurnConfig = Default().ChurnConfig
		s.MaliciousFraction = 0.1
		s.Strategy = strat
		rs, err := RunTrials(s, 3)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		sizes := PoolSetSizes(rs)
		for _, v := range sizes {
			sum += v
		}
		means[strat] = sum / float64(len(sizes))
	}
	if means[core.UtilityI] >= means[core.Random] {
		t.Fatalf("UM-I ‖π‖ %g not below random %g", means[core.UtilityI], means[core.Random])
	}
	if means[core.UtilityII] >= means[core.Random] {
		t.Fatalf("UM-II ‖π‖ %g not below random %g", means[core.UtilityII], means[core.Random])
	}
}

func TestPayoffDecreasesWithMalicious(t *testing.T) {
	// Fig. 3's shape: payoff at f=0 well above payoff at f=0.8.
	run := func(f float64) float64 {
		s := Quick()
		s.MaliciousFraction = f
		rs, err := RunTrials(s, 3)
		if err != nil {
			t.Fatal(err)
		}
		pool := PoolPayoffs(rs)
		sum := 0.0
		for _, v := range pool {
			sum += v
		}
		return sum / float64(len(pool))
	}
	low, high := run(0), run(0.8)
	if high >= low {
		t.Fatalf("payoff at f=0.8 (%g) not below f=0 (%g)", high, low)
	}
}

func TestPayoffVsMaliciousSeries(t *testing.T) {
	series, err := PayoffVsMalicious(Quick(), core.UtilityI, []float64{0.1, 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 2 {
		t.Fatalf("points %v", series.Points)
	}
	for _, p := range series.Points {
		if p.Mean <= 0 || p.N == 0 {
			t.Fatalf("bad point %+v", p)
		}
		if p.CI < 0 {
			t.Fatalf("negative CI %+v", p)
		}
	}
	if series.Name != "payoff-utility-I" {
		t.Fatalf("name %q", series.Name)
	}
}

func TestTable2Structure(t *testing.T) {
	tab, err := RunTable2(Quick(), []float64{0.5, 2}, []float64{0.1, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cells) != 4 {
		t.Fatalf("cells %d", len(tab.Cells))
	}
	if len(tab.Means) != 2 {
		t.Fatalf("means %v", tab.Means)
	}
	if _, ok := tab.Cell(2, 0.1); !ok {
		t.Fatal("cell lookup failed")
	}
	if _, ok := tab.Cell(99, 0.1); ok {
		t.Fatal("phantom cell")
	}
	// Mean is the average of the column's cells.
	c1, _ := tab.Cell(0.5, 0.1)
	c2, _ := tab.Cell(0.5, 0.5)
	if math.Abs(tab.Means[0]-(c1+c2)/2) > 1e-9 {
		t.Fatalf("column mean %g != %g", tab.Means[0], (c1+c2)/2)
	}
}

func TestTable2EfficiencyFallsWithF(t *testing.T) {
	tab, err := RunTable2(Quick(), []float64{2}, []float64{0.1, 0.9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := tab.Cell(2, 0.1)
	hi, _ := tab.Cell(2, 0.9)
	if hi >= lo {
		t.Fatalf("efficiency at f=0.9 (%g) not below f=0.1 (%g)", hi, lo)
	}
}

func TestForwarderSetSeries(t *testing.T) {
	series, err := ForwarderSetVsMalicious(Quick(), []core.Strategy{core.Random, core.UtilityI}, []float64{0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series %d", len(series))
	}
	if series[0].Points[0].Mean <= series[1].Points[0].Mean {
		t.Fatalf("random ‖π‖ %g should exceed UM-I %g",
			series[0].Points[0].Mean, series[1].Points[0].Mean)
	}
}

func TestPayoffCDFsShape(t *testing.T) {
	// Figs. 6-7 claims: UM-I has the largest max and the largest variance;
	// random has the smallest variance.
	cdfs, err := PayoffCDFs(Quick(), []core.Strategy{core.Random, core.UtilityI, core.UtilityII}, 0.1, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdfs) != 3 {
		t.Fatalf("cdfs %d", len(cdfs))
	}
	byName := map[string]CDFSeries{}
	for _, c := range cdfs {
		byName[c.Name] = c
		if len(c.Points) != 20 {
			t.Fatalf("%s has %d points", c.Name, len(c.Points))
		}
		last := c.Points[len(c.Points)-1]
		if math.Abs(last.F-1) > 1e-9 {
			t.Fatalf("%s CDF does not reach 1", c.Name)
		}
	}
	if byName["utility-I"].Max <= byName["random"].Max {
		t.Fatalf("UM-I max %g not above random %g", byName["utility-I"].Max, byName["random"].Max)
	}
	if byName["utility-I"].StdDev <= byName["random"].StdDev {
		t.Fatalf("UM-I stddev %g not above random %g", byName["utility-I"].StdDev, byName["random"].StdDev)
	}
}

func TestProp1Experiment(t *testing.T) {
	res, err := RunProp1(Quick(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.UtilityRate >= res.RandomRate {
		t.Fatalf("utility new-edge rate %g not below random %g", res.UtilityRate, res.RandomRate)
	}
	if res.RandomBound <= 0 || res.RandomBound > 1 {
		t.Fatalf("random bound %g", res.RandomBound)
	}
	if res.UtilityPredict < 0 || res.UtilityPredict > 1 {
		t.Fatalf("utility prediction %g", res.UtilityPredict)
	}
}

func TestParticipationSweep(t *testing.T) {
	// Default cost: C^p=5, C^t=2 → Prop-3 threshold at 7. Below it all
	// good nodes decline; above it none do.
	pts, err := RunParticipation(Quick(), []float64{3, 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	low, high := pts[0], pts[1]
	if low.Prop3Satisfied {
		t.Fatal("P_f=3 should not satisfy Prop 3")
	}
	if !high.Prop3Satisfied {
		t.Fatal("P_f=50 should satisfy Prop 3")
	}
	if low.DirectFraction != 1 {
		t.Fatalf("below threshold, direct fraction %g, want 1", low.DirectFraction)
	}
	if high.DirectFraction != 0 {
		t.Fatalf("above threshold, direct fraction %g, want 0", high.DirectFraction)
	}
	if low.DeclineRate == 0 {
		t.Fatal("below threshold, no declines recorded")
	}
	if high.DeclineRate != 0 {
		t.Fatalf("above threshold, decline rate %g", high.DeclineRate)
	}
}

func TestTauAblation(t *testing.T) {
	pts, err := RunTauAblation(Quick(), []float64{0.5, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	for _, p := range pts {
		if p.AvgPayoff <= 0 || p.AvgSetSize <= 0 || p.Efficiency <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	// Higher τ pays more routing benefit: payoff must rise with τ.
	if pts[1].AvgPayoff <= pts[0].AvgPayoff {
		t.Fatalf("payoff at τ=4 (%g) not above τ=0.5 (%g)", pts[1].AvgPayoff, pts[0].AvgPayoff)
	}
}

func TestWeightAblation(t *testing.T) {
	pts, err := RunWeightAblation(Quick(), []float64{0, 0.5, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points %d", len(pts))
	}
	for _, p := range pts {
		if p.AvgSetSize <= 0 {
			t.Fatalf("bad point %+v", p)
		}
		if p.NewEdgeRate < 0 || p.NewEdgeRate > 1 {
			t.Fatalf("new-edge rate %g", p.NewEdgeRate)
		}
	}
	// Pure selectivity (w_s=1) must lock paths harder than pure
	// availability: lower or equal new-edge rate.
	if pts[2].NewEdgeRate > pts[0].NewEdgeRate+0.05 {
		t.Fatalf("w_s=1 rate %g above w_s=0 rate %g", pts[2].NewEdgeRate, pts[0].NewEdgeRate)
	}
}

func TestIntersectionStudy(t *testing.T) {
	s := Quick()
	s.Churn = true
	s.ChurnConfig = Default().ChurnConfig
	res, err := RunIntersection(s, []core.Strategy{core.Random, core.UtilityI}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results %d", len(res))
	}
	for _, r := range res {
		if r.AvgFinalSet < 1 {
			t.Fatalf("%v: candidate set %g below 1 (initiator must survive)", r.Strategy, r.AvgFinalSet)
		}
		if r.AvgDegree < 0 || r.AvgDegree > 1 {
			t.Fatalf("degree %g", r.AvgDegree)
		}
	}
}

func TestAvailabilityAttackStudy(t *testing.T) {
	s := Quick()
	s.MaliciousFraction = 0.2
	s.Churn = true
	s.ChurnConfig = Default().ChurnConfig
	res, err := RunAvailabilityAttack(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackCapture < res.BaselineCapture {
		t.Fatalf("always-on capture %g below churning capture %g",
			res.AttackCapture, res.BaselineCapture)
	}
	if res.GuessAccuracy < 0 || res.GuessAccuracy > 1 {
		t.Fatalf("guess accuracy %g", res.GuessAccuracy)
	}
}

func TestFig12Scenario(t *testing.T) {
	res := RunFig12(8, 100, 3)
	if res.StableSetSize != 3 {
		t.Fatalf("stable ‖π‖ = %d, want 3 (Figure 2)", res.StableSetSize)
	}
	if res.RandomSetSize <= res.StableSetSize {
		t.Fatalf("random ‖π‖ = %d not above stable %d (Figure 1)",
			res.RandomSetSize, res.StableSetSize)
	}
	if res.StableShare <= res.RandomShare {
		t.Fatalf("stable share %g not above random share %g",
			res.StableShare, res.RandomShare)
	}
}
