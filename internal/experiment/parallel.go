package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/stats"
)

// RunTrialsParallel is RunTrials fanned out over worker goroutines: each
// trial owns its whole simulation (overlay, engine, RNG), so trials are
// embarrassingly parallel and the results are bit-identical to the serial
// runner — the per-trial seeds are the same, only wall-clock time changes.
func RunTrialsParallel(s Setup, trials, workers int) ([]*Result, error) {
	if trials < 1 {
		return nil, fmt.Errorf("experiment: trials=%d", trials)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	out := make([]*Result, trials)
	errs := make([]error, trials)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for t := 0; t < trials; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			st := s
			st.Seed = s.Seed + uint64(t)*0x9e37 // identical seeding to RunTrials
			out[t], errs[t] = Run(st)
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ScalePoint is one N of the SCALE study: the paper uses N = 40 "for
// simulation simplicity"; this sweep checks that its conclusions — the
// utility/random forwarder-set separation and the payoff gap — are not
// small-N artifacts, and benchmarks the simulator's scaling.
type ScalePoint struct {
	N               int
	RandomSetSize   float64
	UtilitySetSize  float64
	SeparationRatio float64 // random ‖π‖ / utility ‖π‖
	UtilityPayoff   float64
	WallClock       time.Duration // total simulation time for this N
}

// RunScale sweeps the population size with a workload that keeps the
// per-node load constant (pairs and transmissions scale with N), running
// trials in parallel.
func RunScale(base Setup, ns []int, trials, workers int) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, n := range ns {
		if n < 4 {
			return nil, fmt.Errorf("experiment: scale N=%d", n)
		}
		scaleCfg := func(strat core.Strategy) Setup {
			s := base
			s.N = n
			s.Strategy = strat
			// Constant per-node load: the paper's 100 pairs / 2000 tx at
			// N = 40 become 2.5 pairs and 50 tx per node.
			s.Workload.Pairs = n * 100 / 40
			s.Workload.Transmissions = n * 2000 / 40
			return s
		}
		start := time.Now()
		utilRes, err := RunTrialsParallel(scaleCfg(core.UtilityI), trials, workers)
		if err != nil {
			return nil, fmt.Errorf("N=%d utility: %w", n, err)
		}
		randRes, err := RunTrialsParallel(scaleCfg(core.Random), trials, workers)
		if err != nil {
			return nil, fmt.Errorf("N=%d random: %w", n, err)
		}
		elapsed := time.Since(start)

		uSize := stats.Mean(PoolSetSizes(utilRes))
		rSize := stats.Mean(PoolSetSizes(randRes))
		var pay stats.Accumulator
		pay.AddAll(PoolPayoffs(utilRes))
		pt := ScalePoint{
			N:              n,
			RandomSetSize:  rSize,
			UtilitySetSize: uSize,
			UtilityPayoff:  pay.Mean(),
			WallClock:      elapsed,
		}
		if uSize > 0 {
			pt.SeparationRatio = rSize / uSize
		}
		out = append(out, pt)
	}
	return out, nil
}
