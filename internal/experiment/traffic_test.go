package experiment

import (
	"testing"

	"p2panon/internal/core"
	"p2panon/internal/sim"
)

func TestTrafficAnalysisRanksInitiatorWell(t *testing.T) {
	// A recurring pair against quiet-ish background: the correlator
	// should place the true initiator near the top of the suspect list.
	s := Quick()
	res, err := RunTrafficAnalysis(s, sim.Minutes(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials == 0 {
		t.Fatal("no trials scored")
	}
	if res.MeanRank < 1 {
		t.Fatalf("mean rank %g", res.MeanRank)
	}
	// The attack works: the initiator ranks far above median.
	if res.MeanRank > float64(res.Population)/2 {
		t.Fatalf("mean rank %g of %d — attack should beat random guessing",
			res.MeanRank, res.Population)
	}
	if res.IdentifiedRate < 0 || res.IdentifiedRate > 1 {
		t.Fatalf("identified rate %g", res.IdentifiedRate)
	}
}

func TestTrafficAnalysisValidation(t *testing.T) {
	if _, err := RunTrafficAnalysis(Quick(), 0, 1); err == nil {
		t.Fatal("zero epoch accepted")
	}
}

func TestTrajectoryConvergence(t *testing.T) {
	s := Quick()
	trajs, err := RunTrajectory(s, []core.Strategy{core.Random, core.UtilityI}, 2)
	if err != nil {
		t.Fatal(err)
	}
	u := trajs[core.UtilityI]
	r := trajs[core.Random]
	if len(u) < 5 || len(r) < 5 {
		t.Fatalf("trajectory lengths %d/%d", len(u), len(r))
	}
	// First connection: essentially everything is new (an edge revisited
	// within the same connection counts as new only once, so the rate can
	// dip slightly below 1).
	if u[0].NewEdgeRate < 0.9 {
		t.Fatalf("first connection new-edge rate %g", u[0].NewEdgeRate)
	}
	// Utility routing converges: late new-edge rate far below early and
	// far below random's.
	last := u[len(u)-1]
	if last.NewEdgeRate > 0.3 {
		t.Fatalf("utility trajectory did not converge: %g", last.NewEdgeRate)
	}
	lastR := r[len(r)-1]
	if last.NewEdgeRate >= lastR.NewEdgeRate {
		t.Fatalf("utility late rate %g not below random %g", last.NewEdgeRate, lastR.NewEdgeRate)
	}
	// Cumulative set sizes are non-decreasing.
	for i := 1; i < len(u); i++ {
		if u[i].CumSetSize < u[i-1].CumSetSize-1e-9 {
			t.Fatal("cumulative ‖π‖ decreased")
		}
	}
	// Convergence point: utility reaches <0.3 much earlier than random
	// (which never does in a quick run).
	cu := ConvergencePoint(u, 0.3)
	cr := ConvergencePoint(r, 0.3)
	if cu == -1 {
		t.Fatal("utility never converged")
	}
	if cr != -1 && cr <= cu {
		t.Fatalf("random converged at %d before utility at %d", cr, cu)
	}
}

func TestConvergencePointEdgeCases(t *testing.T) {
	pts := []TrajectoryPoint{{Conn: 1, NewEdgeRate: 1}, {Conn: 2, NewEdgeRate: 0.1}}
	if got := ConvergencePoint(pts, 0.3); got != 2 {
		t.Fatalf("convergence at %d", got)
	}
	if got := ConvergencePoint(pts, 0.01); got != -1 {
		t.Fatalf("convergence at %d, want -1", got)
	}
	if got := ConvergencePoint(nil, 0.5); got != -1 {
		t.Fatalf("empty trajectory convergence %d", got)
	}
}
