package experiment

import (
	"testing"

	"p2panon/internal/core"
)

func TestRunLiveUnderChurn(t *testing.T) {
	s := DefaultLive()
	s.Seed = 7
	out, err := RunLive(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed == 0 {
		t.Fatal("no connection completed")
	}
	if len(out.Removed) != s.Removals {
		t.Fatalf("removed %d peers, want %d", len(out.Removed), s.Removals)
	}
	// Removing the busiest forwarders mid-run must force at least one
	// reformation (the whole point of the churn study).
	if out.Reformations == 0 {
		t.Fatal("no reformations despite mid-run removals")
	}
	if out.ReformationRate <= 0 {
		t.Fatalf("reformation rate %g", out.ReformationRate)
	}
	if out.Metrics.Reformations != int64(out.Reformations) {
		t.Fatalf("metrics reformations %d != outcome %d",
			out.Metrics.Reformations, out.Reformations)
	}
	if out.Metrics.Dropped == 0 && out.Metrics.Nacks == 0 {
		t.Fatal("removals produced neither drops nor NACKs")
	}
	var perPair int
	for _, b := range out.Outcomes {
		perPair += b.Reformations
	}
	if perPair != out.Reformations {
		t.Fatalf("per-pair reformation sum %d != total %d", perPair, out.Reformations)
	}
}

func TestRunLiveNoChurnNoReformations(t *testing.T) {
	s := DefaultLive()
	s.Removals = 0
	s.Seed = 11
	out, err := RunLive(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed != 0 {
		t.Fatalf("%d failures on a static network", out.Failed)
	}
	if out.Reformations != 0 {
		t.Fatalf("%d reformations without churn", out.Reformations)
	}
	if len(out.Removed) != 0 {
		t.Fatalf("removed %v with Removals=0", out.Removed)
	}
}

func TestRunLiveRejectsUnsupported(t *testing.T) {
	s := DefaultLive()
	s.Strategy = core.FixedPath
	if _, err := RunLive(s); err == nil {
		t.Fatal("FixedPath accepted for live replay")
	}
	s = DefaultLive()
	s.N = 2
	if _, err := RunLive(s); err == nil {
		t.Fatal("tiny network accepted")
	}
}

func TestCompareLiveReformation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full studies")
	}
	s := DefaultLive()
	s.Seed = 3
	cmp, err := CompareLiveReformation(s)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Random.Strategy != core.Random || cmp.Utility.Strategy != core.UtilityI {
		t.Fatal("comparison ran wrong strategies")
	}
	for _, o := range []*LiveOutcome{cmp.Random, cmp.Utility} {
		if o.Completed == 0 {
			t.Fatalf("%v live run completed nothing", o.Strategy)
		}
	}
	// Both measurement sides must be populated; cross-strategy ordering is
	// a statistical claim (Prop. 1) asserted by the simulator experiments,
	// not by one seed here.
	if cmp.SimRandomNewEdge <= 0 || cmp.SimUtilityNewEdge <= 0 {
		t.Fatalf("sim new-edge rates %g / %g", cmp.SimRandomNewEdge, cmp.SimUtilityNewEdge)
	}
}
