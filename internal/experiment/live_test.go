package experiment

import (
	"testing"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/netwire"
	"p2panon/internal/transport"
)

func TestRunLiveUnderChurn(t *testing.T) {
	s := DefaultLive()
	s.Seed = 7
	out, err := RunLive(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed == 0 {
		t.Fatal("no connection completed")
	}
	if len(out.Removed) != s.Removals {
		t.Fatalf("removed %d peers, want %d", len(out.Removed), s.Removals)
	}
	// Removing the busiest forwarders mid-run must force at least one
	// reformation (the whole point of the churn study).
	if out.Reformations == 0 {
		t.Fatal("no reformations despite mid-run removals")
	}
	if out.ReformationRate <= 0 {
		t.Fatalf("reformation rate %g", out.ReformationRate)
	}
	if out.Metrics.Reformations != int64(out.Reformations) {
		t.Fatalf("metrics reformations %d != outcome %d",
			out.Metrics.Reformations, out.Reformations)
	}
	if out.Metrics.Dropped == 0 && out.Metrics.Nacks == 0 {
		t.Fatal("removals produced neither drops nor NACKs")
	}
	var perPair int
	for _, b := range out.Outcomes {
		perPair += b.Reformations
	}
	if perPair != out.Reformations {
		t.Fatalf("per-pair reformation sum %d != total %d", perPair, out.Reformations)
	}
}

func TestRunLiveNoChurnNoReformations(t *testing.T) {
	s := DefaultLive()
	s.Removals = 0
	s.Seed = 11
	out, err := RunLive(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed != 0 {
		t.Fatalf("%d failures on a static network", out.Failed)
	}
	if out.Reformations != 0 {
		t.Fatalf("%d reformations without churn", out.Reformations)
	}
	if len(out.Removed) != 0 {
		t.Fatalf("removed %v with Removals=0", out.Removed)
	}
}

func TestRunLiveRejectsUnsupported(t *testing.T) {
	s := DefaultLive()
	s.Strategy = core.FixedPath
	if _, err := RunLive(s); err == nil {
		t.Fatal("FixedPath accepted for live replay")
	}
	s = DefaultLive()
	s.N = 2
	if _, err := RunLive(s); err == nil {
		t.Fatal("tiny network accepted")
	}
}

func TestCompareLiveReformation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full studies")
	}
	s := DefaultLive()
	s.Seed = 3
	cmp, err := CompareLiveReformation(s)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Random.Strategy != core.Random || cmp.Utility.Strategy != core.UtilityI {
		t.Fatal("comparison ran wrong strategies")
	}
	for _, o := range []*LiveOutcome{cmp.Random, cmp.Utility} {
		if o.Completed == 0 {
			t.Fatalf("%v live run completed nothing", o.Strategy)
		}
	}
	// Both measurement sides must be populated; cross-strategy ordering is
	// a statistical claim (Prop. 1) asserted by the simulator experiments,
	// not by one seed here.
	if cmp.SimRandomNewEdge <= 0 || cmp.SimUtilityNewEdge <= 0 {
		t.Fatalf("sim new-edge rates %g / %g", cmp.SimRandomNewEdge, cmp.SimUtilityNewEdge)
	}
}

// TestRunLiveOverTCP replays the live churn study over the netwire TCP
// loopback backend via the NewConductor hook: the same workload, routers
// and mid-run removals, but every hop crossing a real socket. The study
// must complete connections and account them in the (netwire-backed)
// metrics snapshot exactly like the in-process run.
func TestRunLiveOverTCP(t *testing.T) {
	s := DefaultLive()
	s.N, s.Degree = 16, 5
	s.Pairs, s.Transmissions, s.MaxConnections = 4, 16, 4
	s.Removals = 1
	s.Seed = 3
	s.NewConductor = func(latency time.Duration) transport.Conductor {
		return netwire.NewCluster(netwire.Config{Latency: latency})
	}
	out, err := RunLive(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed == 0 {
		t.Fatal("no connection completed over TCP")
	}
	if len(out.Removed) != s.Removals {
		t.Fatalf("removed %d peers, want %d", len(out.Removed), s.Removals)
	}
	if out.Metrics.Connects != int64(out.Completed) {
		t.Fatalf("netwire metrics connects %d != completed %d", out.Metrics.Connects, out.Completed)
	}
	if out.Metrics.Failures != int64(out.Failed) {
		t.Fatalf("netwire metrics failures %d != failed %d", out.Metrics.Failures, out.Failed)
	}
}
