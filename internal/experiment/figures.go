package experiment

import (
	"fmt"

	"p2panon/internal/core"
	"p2panon/internal/game"
	"p2panon/internal/stats"
)

// FigPoint is one x-position of a figure series: a mean with a 95% CI.
type FigPoint struct {
	X    float64 // malicious fraction f (or sweep variable)
	Mean float64
	CI   float64
	N    int
}

// Series is a named sequence of figure points.
type Series struct {
	Name   string
	Points []FigPoint
}

// DefaultFractions is the malicious-fraction sweep used by Figs. 3-5.
var DefaultFractions = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// DefaultTaus is the paper's τ sweep (§3, Table 2).
var DefaultTaus = []float64{0.5, 1, 2, 4}

// PayoffVsMalicious produces Fig. 3 (strategy = UtilityI) or Fig. 4
// (strategy = UtilityII): the average payoff of a non-malicious node, with
// 95% confidence intervals, for each malicious fraction.
func PayoffVsMalicious(base Setup, strategy core.Strategy, fractions []float64, trials int) (Series, error) {
	s := base
	s.Strategy = strategy
	series := Series{Name: "payoff-" + strategy.String()}
	for _, f := range fractions {
		s.MaliciousFraction = f
		rs, err := RunTrials(s, trials)
		if err != nil {
			return Series{}, fmt.Errorf("f=%g: %w", f, err)
		}
		var a stats.Accumulator
		a.AddAll(PoolPayoffs(rs))
		series.Points = append(series.Points, FigPoint{X: f, Mean: a.Mean(), CI: a.CI95(), N: a.N()})
	}
	return series, nil
}

// Table2Cell is one (τ, f) cell of Table 2: the routing efficiency for
// Utility Model I.
type Table2Cell struct {
	Tau, F     float64
	Efficiency float64
}

// Table2 reproduces the paper's Table 2: routing efficiency (average
// payoff / average number of forwarders) for Utility Model I over the
// τ × f grid, plus the per-τ column means.
type Table2 struct {
	Taus      []float64
	Fractions []float64
	Cells     []Table2Cell // row-major: f outer, τ inner
	Means     []float64    // column means, one per τ
}

// Cell returns the efficiency at (τ, f).
func (t *Table2) Cell(tau, f float64) (float64, bool) {
	for _, c := range t.Cells {
		if c.Tau == tau && c.F == f {
			return c.Efficiency, true
		}
	}
	return 0, false
}

// RunTable2 sweeps the grid. The paper uses f ∈ {0.1, 0.5, 0.9} and
// τ ∈ {0.5, 1, 2, 4}.
func RunTable2(base Setup, taus, fractions []float64, trials int) (*Table2, error) {
	t := &Table2{Taus: taus, Fractions: fractions}
	sums := make([]float64, len(taus))
	for _, f := range fractions {
		for ti, tau := range taus {
			s := base
			s.Strategy = core.UtilityI
			s.MaliciousFraction = f
			s.Workload.Tau = tau
			rs, err := RunTrials(s, trials)
			if err != nil {
				return nil, fmt.Errorf("tau=%g f=%g: %w", tau, f, err)
			}
			var pay stats.Accumulator
			pay.AddAll(PoolPayoffs(rs))
			size := stats.Mean(PoolSetSizes(rs))
			eff := 0.0
			if size > 0 {
				eff = pay.Mean() / size
			}
			t.Cells = append(t.Cells, Table2Cell{Tau: tau, F: f, Efficiency: eff})
			sums[ti] += eff
		}
	}
	t.Means = make([]float64, len(taus))
	for i := range taus {
		t.Means[i] = sums[i] / float64(len(fractions))
	}
	return t, nil
}

// ForwarderSetVsMalicious produces Fig. 5: the average forwarder-set size
// ‖π‖ for each routing strategy across malicious fractions.
func ForwarderSetVsMalicious(base Setup, strategies []core.Strategy, fractions []float64, trials int) ([]Series, error) {
	var out []Series
	for _, strat := range strategies {
		s := base
		s.Strategy = strat
		series := Series{Name: "setsize-" + strat.String()}
		for _, f := range fractions {
			s.MaliciousFraction = f
			rs, err := RunTrials(s, trials)
			if err != nil {
				return nil, fmt.Errorf("%v f=%g: %w", strat, f, err)
			}
			var a stats.Accumulator
			a.AddAll(PoolSetSizes(rs))
			series.Points = append(series.Points, FigPoint{X: f, Mean: a.Mean(), CI: a.CI95(), N: a.N()})
		}
		out = append(out, series)
	}
	return out, nil
}

// CDFSeries is one strategy's payoff CDF curve (Figs. 6 and 7), with the
// concentration metrics behind the paper's skew discussion.
type CDFSeries struct {
	Name   string
	Points []stats.Point
	Mean   float64
	Max    float64
	StdDev float64
	Gini   float64 // payoff concentration (0 = equal, →1 = concentrated)
	Jain   float64 // Jain fairness index (1 = equal, →1/n = concentrated)
}

// PayoffCDFs produces Fig. 6 (f = 0.1) or Fig. 7 (f = 0.5): the CDF of
// good-node payoffs for each strategy at the given malicious fraction,
// sampled at `points` x-positions. The population is per-good-node total
// income across the run — including the zeros of nodes never selected —
// which is what makes utility routing's concentration visible exactly as
// the paper describes ("if a peer is selected ... it is very likely that
// it will be selected again ... a skewed distribution of the payoffs").
func PayoffCDFs(base Setup, strategies []core.Strategy, f float64, trials, points int) ([]CDFSeries, error) {
	var out []CDFSeries
	for _, strat := range strategies {
		s := base
		s.Strategy = strat
		s.MaliciousFraction = f
		rs, err := RunTrials(s, trials)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", strat, err)
		}
		pool := PoolNodeTotals(rs)
		cdf := stats.NewCDF(pool)
		var a stats.Accumulator
		a.AddAll(pool)
		out = append(out, CDFSeries{
			Name:   strat.String(),
			Points: cdf.Curve(points),
			Mean:   a.Mean(),
			Max:    a.Max(),
			StdDev: a.StdDev(),
			Gini:   stats.Gini(pool),
			Jain:   stats.Jain(pool),
		})
	}
	return out, nil
}

// Prop1Result compares empirical new-edge rates (Prop. 1's E[X]) between
// random and utility routing, alongside the paper's analytic expressions.
type Prop1Result struct {
	RandomRate     float64 // measured, random routing
	UtilityRate    float64 // measured, utility routing
	RandomBound    float64 // analytic lower bound 1 − k/N
	UtilityPredict float64 // analytic ∏(1 − p_i) with p_i from reuse stats
}

// RunProp1 measures reformation behaviour on the base setup.
func RunProp1(base Setup, trials int) (*Prop1Result, error) {
	measure := func(strat core.Strategy) (float64, error) {
		s := base
		s.Strategy = strat
		rs, err := RunTrials(s, trials)
		if err != nil {
			return 0, err
		}
		var a stats.Accumulator
		for _, r := range rs {
			a.AddAll(r.NewEdgeRates)
		}
		return a.Mean(), nil
	}
	randRate, err := measure(core.Random)
	if err != nil {
		return nil, err
	}
	utilRate, err := measure(core.UtilityI)
	if err != nil {
		return nil, err
	}
	k := base.Workload.MaxConnections
	// Reuse probability proxy: after the first connection, utility
	// routing reuses an edge unless its forwarder churned away; use the
	// measured utility rate itself for the analytic product's p_i.
	reuse := make([]float64, k-1)
	for i := range reuse {
		p := 1 - utilRate
		if p < 0 {
			p = 0
		}
		reuse[i] = p
	}
	return &Prop1Result{
		RandomRate:     randRate,
		UtilityRate:    utilRate,
		RandomBound:    game.RandomRoutingNewEdgeLB(k, base.N),
		UtilityPredict: game.UtilityRoutingNewEdge(reuse),
	}, nil
}

// ParticipationPoint is one P_f position of the Props. 2-3 sweep.
type ParticipationPoint struct {
	Pf             float64
	DeclineRate    float64 // declines per connection attempt
	DirectFraction float64 // batches that ended with zero forwarders
	Prop3Satisfied bool    // P_f > C^p + C^t
	Prop2Threshold float64 // C^p·N/(L·k) + C^t for this setup
}

// RunParticipation sweeps P_f across the Prop. 2/3 thresholds and
// measures how peer participation responds (PROP23 in DESIGN.md).
func RunParticipation(base Setup, pfs []float64, trials int) ([]ParticipationPoint, error) {
	var out []ParticipationPoint
	cp := base.Core.Cost.Participation
	ct := base.Core.Cost.Transmission(0, 1) // uniform in the default model
	l := float64(base.Core.MinHops+base.Core.MaxHops) / 2
	for _, pf := range pfs {
		s := base
		s.Strategy = core.UtilityI
		s.Workload.PfLo = pf
		s.Workload.PfHi = pf + 1e-9
		rs, err := RunTrials(s, trials)
		if err != nil {
			return nil, fmt.Errorf("pf=%g: %w", pf, err)
		}
		totalDecl, totalConn, direct, batches := 0, 0, 0, 0
		for _, r := range rs {
			totalDecl += r.TotalDeclines
			for _, b := range r.Batches {
				totalConn += b.Pair.Connections
				batches++
				if b.SetSize == 0 {
					direct++
				}
			}
		}
		pt := ParticipationPoint{
			Pf:             pf,
			Prop3Satisfied: game.ForwardingDominant(pf, cp, ct),
			Prop2Threshold: game.ParticipationThreshold(cp, ct, base.N, l, base.Workload.MaxConnections),
		}
		if totalConn > 0 {
			pt.DeclineRate = float64(totalDecl) / float64(totalConn)
		}
		if batches > 0 {
			pt.DirectFraction = float64(direct) / float64(batches)
		}
		out = append(out, pt)
	}
	return out, nil
}
