package experiment

import (
	"testing"
)

func TestParallelTrialsMatchSerial(t *testing.T) {
	s := Quick()
	serial, err := RunTrials(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunTrialsParallel(s, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths %d/%d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if len(a.GoodPayoffs) != len(b.GoodPayoffs) {
			t.Fatalf("trial %d sample counts differ", i)
		}
		for j := range a.GoodPayoffs {
			if a.GoodPayoffs[j] != b.GoodPayoffs[j] {
				t.Fatalf("trial %d payoff %d differs: serial %g, parallel %g",
					i, j, a.GoodPayoffs[j], b.GoodPayoffs[j])
			}
		}
		if a.AvgSetSize() != b.AvgSetSize() {
			t.Fatalf("trial %d set sizes differ", i)
		}
	}
}

func TestParallelTrialsValidation(t *testing.T) {
	if _, err := RunTrialsParallel(Quick(), 0, 2); err == nil {
		t.Fatal("0 trials accepted")
	}
	// workers <= 0 defaults to GOMAXPROCS; workers > trials clamps.
	rs, err := RunTrialsParallel(Quick(), 2, 0)
	if err != nil || len(rs) != 2 {
		t.Fatalf("rs=%d err=%v", len(rs), err)
	}
	rs, err = RunTrialsParallel(Quick(), 1, 16)
	if err != nil || len(rs) != 1 {
		t.Fatalf("rs=%d err=%v", len(rs), err)
	}
}

func TestScaleStudyPreservesSeparation(t *testing.T) {
	s := Quick()
	s.Churn = false
	pts, err := RunScale(s, []int{30, 60}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	for _, p := range pts {
		// The paper's headline separation must hold at every N.
		if p.SeparationRatio < 1.5 {
			t.Fatalf("N=%d: separation %g too small (rand %g, util %g)",
				p.N, p.SeparationRatio, p.RandomSetSize, p.UtilitySetSize)
		}
		if p.UtilityPayoff <= 0 {
			t.Fatalf("N=%d payoff %g", p.N, p.UtilityPayoff)
		}
		if p.WallClock <= 0 {
			t.Fatalf("N=%d wall clock %v", p.N, p.WallClock)
		}
	}
}

func TestScaleValidation(t *testing.T) {
	if _, err := RunScale(Quick(), []int{2}, 1, 1); err == nil {
		t.Fatal("N=2 accepted")
	}
}
