package experiment

import (
	"fmt"

	"p2panon/internal/adversary"
	"p2panon/internal/core"
	"p2panon/internal/dist"
	"p2panon/internal/game"
	"p2panon/internal/overlay"
	"p2panon/internal/reputation"
	"p2panon/internal/stats"
)

// TerminationPoint is one row of the ABL-TERM study: the same incentive
// mechanism under the two termination rules the paper says apply (§2.2) —
// hop-budget and Crowds-coin forwarding.
type TerminationPoint struct {
	Mode        core.Termination
	ForwardProb float64 // 0 for hop-budget
	AvgLen      float64
	AvgSetSize  float64
	AvgQuality  float64 // Q(π) = L/‖π‖, the length-normalised metric
	AvgPayoff   float64
}

// RunTerminationAblation compares hop-budget termination against
// Crowds-coin termination for several p_f values, all with Utility
// Model I routing. Q(π) normalises by path length, so the comparison is
// meaningful even though the coin draws different lengths.
func RunTerminationAblation(base Setup, forwardProbs []float64, trials int) ([]TerminationPoint, error) {
	measure := func(s Setup) (TerminationPoint, error) {
		rs, err := RunTrials(s, trials)
		if err != nil {
			return TerminationPoint{}, err
		}
		var pay stats.Accumulator
		pay.AddAll(PoolPayoffs(rs))
		var lens, quals stats.Accumulator
		for _, r := range rs {
			for _, b := range r.Batches {
				lens.Add(b.AvgLen)
				quals.Add(b.Quality)
			}
		}
		return TerminationPoint{
			Mode:        s.Core.Termination,
			ForwardProb: s.Core.ForwardProb,
			AvgLen:      lens.Mean(),
			AvgSetSize:  stats.Mean(PoolSetSizes(rs)),
			AvgQuality:  quals.Mean(),
			AvgPayoff:   pay.Mean(),
		}, nil
	}

	var out []TerminationPoint
	s := base
	s.Strategy = core.UtilityI
	pt, err := measure(s)
	if err != nil {
		return nil, fmt.Errorf("hop-budget: %w", err)
	}
	out = append(out, pt)
	for _, pf := range forwardProbs {
		s := base
		s.Strategy = core.UtilityI
		s.Core.Termination = core.CrowdsCoin
		s.Core.ForwardProb = pf
		s.Core.MaxHops = 12 // cap runaway coin sequences
		pt, err := measure(s)
		if err != nil {
			return nil, fmt.Errorf("crowds p_f=%g: %w", pf, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ReputationComparison is the CMP-REP study: how much of the forwarding
// work a colluding coalition captures under (a) reputation-based
// forwarder selection with fake mutual praise, versus (b) the paper's
// incentive mechanism where only provable forwarding pays and routing is
// utility-driven.
type ReputationComparison struct {
	CoalitionFraction float64
	PopulationShare   float64 // coalition share of eligible relays
	// ReputationOverall / ReputationLate: coalition slot share under
	// score-weighted routing, overall and in the final quarter (after
	// inflation compounds).
	ReputationOverall float64
	ReputationLate    float64
	// IncentiveCapture: coalition share of forwarder-set slots under
	// UM-I incentive routing (the coalition is malicious and routes
	// randomly but cannot inflate anything).
	IncentiveCapture float64
}

// RunReputationComparison runs both systems over equivalent populations.
func RunReputationComparison(base Setup, coalitionFraction float64, rounds, trials int) (*ReputationComparison, error) {
	if coalitionFraction <= 0 || coalitionFraction >= 1 {
		return nil, fmt.Errorf("experiment: coalition fraction %g", coalitionFraction)
	}
	out := &ReputationComparison{CoalitionFraction: coalitionFraction}

	// (a) Reputation system with colluders inflating scores.
	var repAll, repLate stats.Accumulator
	for trial := 0; trial < trials; trial++ {
		rng := dist.NewSource(base.Seed + uint64(trial)*31337)
		net := overlay.NewNetwork(base.Degree, rng.Split())
		for i := 0; i < base.N; i++ {
			net.Join(0, false)
		}
		k := int(coalitionFraction*float64(base.N) + 0.5)
		members := make([]overlay.NodeID, k)
		for i := range members {
			members[i] = overlay.NodeID(i)
		}
		sim := &reputation.CaptureSim{
			Net:       net,
			Table:     reputation.NewTable(1),
			Coalition: reputation.NewCoalition(members, 5),
			Rng:       rng.Split(),
			Hops:      4,
		}
		res, err := sim.Run(rounds)
		if err != nil {
			return nil, err
		}
		repAll.Add(res.Overall)
		repLate.Add(res.Late)
	}
	out.ReputationOverall = repAll.Mean()
	out.ReputationLate = repLate.Mean()
	out.PopulationShare = float64(int(coalitionFraction*float64(base.N)+0.5)) / float64(base.N-2)

	// (b) Incentive mechanism: the coalition is the malicious fraction.
	var capt stats.Accumulator
	for trial := 0; trial < trials; trial++ {
		s := base
		s.Strategy = core.UtilityI
		s.MaliciousFraction = coalitionFraction
		s.Seed = base.Seed + uint64(trial)*104729
		h, err := newHarness(s)
		if err != nil {
			return nil, err
		}
		if err := h.run(); err != nil {
			return nil, err
		}
		mal, tot := 0, 0
		for _, b := range h.batches {
			for _, id := range b.ForwarderSet().Members() {
				tot++
				if h.net.Node(id).Malicious {
					mal++
				}
			}
		}
		if tot > 0 {
			capt.Add(float64(mal) / float64(tot))
		}
	}
	out.IncentiveCapture = capt.Mean()
	return out, nil
}

// Fig5Strategies is the full strategy set for the extended Figure 5,
// including the FixedPath source-routed baseline of [13].
var Fig5Strategies = []core.Strategy{core.Random, core.UtilityI, core.UtilityII, core.FixedPath}

// PositionAblationResult compares position-agnostic vs position-aware
// (§2.3 predecessor-differentiated) selectivity under Utility Model I.
type PositionAblationResult struct {
	AgnosticSetSize float64
	AwareSetSize    float64
	AgnosticNewEdge float64
	AwareNewEdge    float64
}

// RunPositionAblation runs the ABL-POS study.
func RunPositionAblation(base Setup, trials int) (*PositionAblationResult, error) {
	measure := func(aware bool) (float64, float64, error) {
		s := base
		s.Strategy = core.UtilityI
		s.Core.PositionAware = aware
		rs, err := RunTrials(s, trials)
		if err != nil {
			return 0, 0, err
		}
		var edges stats.Accumulator
		for _, r := range rs {
			edges.AddAll(r.NewEdgeRates)
		}
		return stats.Mean(PoolSetSizes(rs)), edges.Mean(), nil
	}
	agSet, agEdge, err := measure(false)
	if err != nil {
		return nil, err
	}
	awSet, awEdge, err := measure(true)
	if err != nil {
		return nil, err
	}
	return &PositionAblationResult{
		AgnosticSetSize: agSet, AwareSetSize: awSet,
		AgnosticNewEdge: agEdge, AwareNewEdge: awEdge,
	}, nil
}

// CostAblationResult compares the uniform cost model against §3's
// bandwidth-proportional link costs under Utility Model I.
type CostAblationResult struct {
	UniformSetSize   float64
	BandwidthSetSize float64
	UniformPayoff    float64
	BandwidthPayoff  float64
	UniformNet       float64 // mean net payoff (income − cost)
	BandwidthNet     float64
}

// RunCostAblation runs the ABL-COST study.
func RunCostAblation(base Setup, trials int) (*CostAblationResult, error) {
	measure := func(cost game.CostModel) (setSize, payoff, net float64, err error) {
		s := base
		s.Strategy = core.UtilityI
		s.Core.Cost = cost
		rs, err := RunTrials(s, trials)
		if err != nil {
			return 0, 0, 0, err
		}
		var pay stats.Accumulator
		pay.AddAll(PoolPayoffs(rs))
		var nets stats.Accumulator
		for _, r := range rs {
			for _, b := range r.Batches {
				nets.AddAll(b.GoodNets)
			}
		}
		return stats.Mean(PoolSetSizes(rs)), pay.Mean(), nets.Mean(), nil
	}
	uSet, uPay, uNet, err := measure(game.UniformCost(5, 2))
	if err != nil {
		return nil, err
	}
	// Bandwidth-proportional costs with the same mean (C^t uniform in
	// [0.5, 3.5], mean 2).
	bSet, bPay, bNet, err := measure(game.BandwidthCost(5, 0.5, 3.5, base.Seed))
	if err != nil {
		return nil, err
	}
	return &CostAblationResult{
		UniformSetSize: uSet, BandwidthSetSize: bSet,
		UniformPayoff: uPay, BandwidthPayoff: bPay,
		UniformNet: uNet, BandwidthNet: bNet,
	}, nil
}

// ChurnPoint is one churn-intensity position of the ABL-CHURN study.
type ChurnPoint struct {
	MedianSessionMin float64
	AvgSetSize       float64
	AvgPayoff        float64
	NewEdgeRate      float64
	SkippedFraction  float64 // connections lost to offline endpoints
}

// RunChurnAblation sweeps the median session time — the churn intensity
// knob the paper takes from Saroiu et al. (60 min) — and measures how the
// mechanism degrades as churn sharpens. This quantifies the paper's
// motivating claim that churn "unavoidably affects the quality of provided
// anonymity" and how much the incentive mechanism claws back.
func RunChurnAblation(base Setup, medianMinutes []float64, trials int) ([]ChurnPoint, error) {
	var out []ChurnPoint
	for _, med := range medianMinutes {
		if med <= 0 {
			return nil, fmt.Errorf("experiment: median session %g min", med)
		}
		s := base
		s.Strategy = core.UtilityI
		s.Churn = true
		s.ChurnConfig.Session = dist.ParetoFromMedian(med*60, 1.5)
		rs, err := RunTrials(s, trials)
		if err != nil {
			return nil, fmt.Errorf("median=%gmin: %w", med, err)
		}
		var pay, edges stats.Accumulator
		pay.AddAll(PoolPayoffs(rs))
		skipped, attempted := 0, 0
		for _, r := range rs {
			edges.AddAll(r.NewEdgeRates)
			skipped += r.Skipped
			for _, b := range r.Batches {
				attempted += b.Pair.Connections
			}
			attempted += r.Skipped
		}
		pt := ChurnPoint{
			MedianSessionMin: med,
			AvgSetSize:       stats.Mean(PoolSetSizes(rs)),
			AvgPayoff:        pay.Mean(),
			NewEdgeRate:      edges.Mean(),
		}
		if attempted > 0 {
			pt.SkippedFraction = float64(skipped) / float64(attempted)
		}
		out = append(out, pt)
	}
	return out, nil
}

// JitterDefensePoint is one K of the DEF-JITTER study: the §5
// availability-attack countermeasure traded against forwarder-set growth.
type JitterDefensePoint struct {
	TopK          float64 // 1 = pure argmax (the paper's rule)
	AttackCapture float64 // always-online coalition's forwarder-set share
	AvgSetSize    float64
	AvgPayoff     float64
}

// RunJitterDefense measures how top-K jitter blunts the availability
// attack: for each K, always-online malicious nodes (fraction from base)
// try to park on stable paths; we record their capture alongside the
// ‖π‖/payoff cost of the jitter.
func RunJitterDefense(base Setup, ks []int, trials int) ([]JitterDefensePoint, error) {
	var out []JitterDefensePoint
	for _, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("experiment: top-K %d", k)
		}
		var capt, sizes, pays stats.Accumulator
		for trial := 0; trial < trials; trial++ {
			s := base
			s.Strategy = core.UtilityI
			s.Churn = true
			s.Core.TopKJitter = k
			s.Seed = base.Seed + uint64(trial)*86243
			h, err := newHarness(s)
			if err != nil {
				return nil, err
			}
			adversary.AttachHighAvailability(h.engine, h.net, h.s.ProbePeriod)
			if err := h.run(); err != nil {
				return nil, err
			}
			mal, tot := 0, 0
			for _, b := range h.batches {
				for _, id := range b.ForwarderSet().Members() {
					tot++
					if h.net.Node(id).Malicious {
						mal++
					}
				}
			}
			if tot > 0 {
				capt.Add(float64(mal) / float64(tot))
			}
			res := h.result()
			sizes.AddAll(res.SetSizes)
			var pay stats.Accumulator
			pay.AddAll(res.GoodPayoffs)
			if pay.N() > 0 {
				pays.Add(pay.Mean())
			}
		}
		out = append(out, JitterDefensePoint{
			TopK:          float64(k),
			AttackCapture: capt.Mean(),
			AvgSetSize:    sizes.Mean(),
			AvgPayoff:     pays.Mean(),
		})
	}
	return out, nil
}
