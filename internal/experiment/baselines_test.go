package experiment

import (
	"testing"

	"p2panon/internal/core"
)

func TestTerminationAblation(t *testing.T) {
	pts, err := RunTerminationAblation(Quick(), []float64{0.5, 0.8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 { // hop-budget + two coin settings
		t.Fatalf("points %d", len(pts))
	}
	if pts[0].Mode != core.HopBudget {
		t.Fatal("first point should be hop-budget")
	}
	for _, p := range pts {
		if p.AvgLen <= 1 {
			t.Fatalf("avg length %g", p.AvgLen)
		}
		if p.AvgSetSize <= 0 || p.AvgQuality <= 0 || p.AvgPayoff <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	// Higher p_f must yield longer average paths.
	if pts[2].AvgLen <= pts[1].AvgLen {
		t.Fatalf("p_f=0.8 length %g not above p_f=0.5 length %g", pts[2].AvgLen, pts[1].AvgLen)
	}
}

func TestReputationComparison(t *testing.T) {
	base := Quick()
	cmp, err := RunReputationComparison(base, 0.1, 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The headline related-work claim: colluders inflate their capture
	// under reputation routing well above their population share, while
	// the incentive mechanism keeps capture near the share.
	if cmp.ReputationLate <= cmp.PopulationShare*1.5 {
		t.Fatalf("reputation late capture %g did not inflate above share %g",
			cmp.ReputationLate, cmp.PopulationShare)
	}
	if cmp.IncentiveCapture >= cmp.ReputationLate {
		t.Fatalf("incentive capture %g not below inflated reputation capture %g",
			cmp.IncentiveCapture, cmp.ReputationLate)
	}
	if cmp.IncentiveCapture < 0 || cmp.IncentiveCapture > 1 {
		t.Fatalf("incentive capture %g", cmp.IncentiveCapture)
	}
}

func TestReputationComparisonValidation(t *testing.T) {
	if _, err := RunReputationComparison(Quick(), 0, 10, 1); err == nil {
		t.Fatal("fraction 0 accepted")
	}
	if _, err := RunReputationComparison(Quick(), 1, 10, 1); err == nil {
		t.Fatal("fraction 1 accepted")
	}
}

func TestFig5WithFixedPath(t *testing.T) {
	series, err := ForwarderSetVsMalicious(Quick(), Fig5Strategies, []float64{0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series %d", len(series))
	}
	byName := map[string]float64{}
	for _, s := range series {
		byName[s.Name] = s.Points[0].Mean
	}
	// Fixed-path reuses one static path in the static Quick overlay:
	// the smallest possible set, below even UM-I.
	if byName["setsize-fixed-path"] > byName["setsize-utility-I"] {
		t.Fatalf("fixed-path ‖π‖ %g above UM-I %g (static overlay)",
			byName["setsize-fixed-path"], byName["setsize-utility-I"])
	}
	if byName["setsize-fixed-path"] >= byName["setsize-random"] {
		t.Fatal("fixed-path not below random")
	}
}

func TestCDFSeriesFairnessPopulated(t *testing.T) {
	cdfs, err := PayoffCDFs(Quick(), []core.Strategy{core.Random, core.UtilityI}, 0.1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CDFSeries{}
	for _, c := range cdfs {
		byName[c.Name] = c
		if c.Gini < 0 || c.Gini > 1 || c.Jain <= 0 || c.Jain > 1 {
			t.Fatalf("%s fairness out of range: gini=%g jain=%g", c.Name, c.Gini, c.Jain)
		}
	}
	// The paper's skew claim in fairness terms: UM-I concentrates payoffs
	// more than random routing.
	if byName["utility-I"].Gini <= byName["random"].Gini {
		t.Fatalf("UM-I Gini %g not above random %g",
			byName["utility-I"].Gini, byName["random"].Gini)
	}
	if byName["utility-I"].Jain >= byName["random"].Jain {
		t.Fatalf("UM-I Jain %g not below random %g",
			byName["utility-I"].Jain, byName["random"].Jain)
	}
}

func TestPositionAblation(t *testing.T) {
	res, err := RunPositionAblation(Quick(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Both variants must work and stay in the same regime: position
	// awareness refines scoring but does not change the mechanism.
	if res.AgnosticSetSize <= 0 || res.AwareSetSize <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	ratio := res.AwareSetSize / res.AgnosticSetSize
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("position awareness changed ‖π‖ regime: %+v", res)
	}
	for _, e := range []float64{res.AgnosticNewEdge, res.AwareNewEdge} {
		if e < 0 || e > 1 {
			t.Fatalf("new-edge rate %g", e)
		}
	}
}

func TestCostAblation(t *testing.T) {
	res, err := RunCostAblation(Quick(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.UniformSetSize <= 0 || res.BandwidthSetSize <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	if res.UniformPayoff <= 0 || res.BandwidthPayoff <= 0 {
		t.Fatalf("bad payoffs %+v", res)
	}
	// Net payoffs must be below gross payoffs (costs are positive).
	if res.UniformNet >= res.UniformPayoff || res.BandwidthNet >= res.BandwidthPayoff {
		t.Fatalf("net not below gross: %+v", res)
	}
}

func TestChurnAblation(t *testing.T) {
	base := Quick()
	base.ChurnConfig = Default().ChurnConfig
	pts, err := RunChurnAblation(base, []float64{15, 120}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	sharp, calm := pts[0], pts[1]
	// Sharper churn (shorter sessions) loses more connections to offline
	// endpoints and breaks more paths.
	if sharp.SkippedFraction <= calm.SkippedFraction {
		t.Fatalf("skips: sharp %g <= calm %g", sharp.SkippedFraction, calm.SkippedFraction)
	}
	if sharp.NewEdgeRate <= calm.NewEdgeRate {
		t.Fatalf("reformation: sharp %g <= calm %g", sharp.NewEdgeRate, calm.NewEdgeRate)
	}
	for _, p := range pts {
		if p.AvgSetSize <= 0 || p.AvgPayoff <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
}

func TestChurnAblationValidation(t *testing.T) {
	if _, err := RunChurnAblation(Quick(), []float64{0}, 1); err == nil {
		t.Fatal("zero median accepted")
	}
}

func TestJitterDefense(t *testing.T) {
	base := Quick()
	base.MaliciousFraction = 0.2
	base.ChurnConfig = Default().ChurnConfig
	pts, err := RunJitterDefense(base, []int{1, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	pure, jit := pts[0], pts[1]
	// Jitter must spread the forwarder set (the cost of the defence).
	if jit.AvgSetSize <= pure.AvgSetSize {
		t.Fatalf("jitter ‖π‖ %g not above argmax %g", jit.AvgSetSize, pure.AvgSetSize)
	}
	for _, p := range pts {
		if p.AttackCapture < 0 || p.AttackCapture > 1 {
			t.Fatalf("capture %g", p.AttackCapture)
		}
		if p.AvgPayoff <= 0 {
			t.Fatalf("payoff %g", p.AvgPayoff)
		}
	}
}

func TestJitterDefenseValidation(t *testing.T) {
	if _, err := RunJitterDefense(Quick(), []int{0}, 1); err == nil {
		t.Fatal("K=0 accepted")
	}
}
