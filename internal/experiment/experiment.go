// Package experiment is the reproduction harness: it wires the overlay,
// churn, probing, workload and incentive core together, runs complete
// simulations, and exposes one function per table/figure of the paper's
// evaluation (§3) returning typed rows/series:
//
//	Fig. 3/4  — average good-node payoff vs malicious fraction (UM-I/UM-II)
//	Table 2   — routing efficiency over the τ × f grid
//	Fig. 5    — average forwarder-set size per routing strategy
//	Fig. 6/7  — CDF of good-node payoffs at f = 0.1 / 0.5
//
// plus the propositions (participation thresholds, reformation rates), the
// ablations called out in DESIGN.md, and the attack studies.
package experiment

import (
	"fmt"

	"p2panon/internal/churn"
	"p2panon/internal/core"
	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/probe"
	"p2panon/internal/sim"
	"p2panon/internal/stats"
	"p2panon/internal/telemetry"
	"p2panon/internal/trace"
)

// Simulator metric names (bound when Setup.Telemetry is set).
const (
	metricSimConnections = "sim_connections_total" // label result: ok|skipped
	metricSimSetSize     = "sim_batch_set_size"    // per-batch ‖π‖
	metricSimQuality     = "sim_batch_quality"     // per-batch Q(π) = L/‖π‖
	metricSimNewEdgeRate = "sim_new_edge_rate"     // per-batch Prop. 1 E[X]
)

// Setup fully describes one simulation run. The zero value is not valid;
// start from Default().
type Setup struct {
	// N is the node population (paper: 40); Degree the neighbor-set size
	// (paper: 5).
	N, Degree int
	// MaliciousFraction f of nodes route randomly as adversaries.
	MaliciousFraction float64
	// Strategy is the routing strategy good nodes use.
	Strategy core.Strategy
	// Workload is the (I,R)-pair/connection schedule.
	Workload trace.Workload
	// Core is the routing-mechanism configuration.
	Core core.Config
	// Churn enables node churn; when false the overlay is static.
	Churn bool
	// ChurnConfig is used when Churn is true (N and MaliciousFraction are
	// overridden from this Setup).
	ChurnConfig churn.Config
	// ProbePeriod is the availability-probing period T.
	ProbePeriod sim.Time
	// WarmupProbes ticks the estimators before the workload starts so
	// availability scores are informative from the first connection.
	WarmupProbes int
	// Seed drives all randomness.
	Seed uint64
	// Telemetry, when non-nil, receives the run's instruments: overlay
	// churn transitions, probe estimator updates, and sim_* connection
	// and batch-outcome series. Nil leaves the run uninstrumented (the
	// per-event cost is a nil check).
	Telemetry *telemetry.Registry
	// Profile, when non-nil, receives the run's per-phase wall-time and
	// allocation brackets (solve rows/induction, probe ticks, candidate
	// gathering, route walk, settlement). Purely observational: it never
	// draws randomness or alters routing, so transcripts are unchanged.
	Profile *telemetry.PhaseProfiler
}

// Default returns the paper's §3 experimental setup (strategy and
// malicious fraction left for the caller to sweep).
func Default() Setup {
	return Setup{
		N:            40,
		Degree:       5,
		Strategy:     core.UtilityI,
		Workload:     trace.DefaultWorkload(),
		Core:         core.DefaultConfig(),
		Churn:        true,
		ChurnConfig:  churn.DefaultConfig(),
		ProbePeriod:  probe.DefaultPeriod,
		WarmupProbes: 5,
		Seed:         1,
	}
}

// Quick returns a scaled-down setup for unit tests and smoke benches:
// 12 pairs × up to 10 connections over a 30-node static overlay.
func Quick() Setup {
	s := Default()
	s.N = 30
	s.Churn = false
	s.Workload.Pairs = 12
	s.Workload.Transmissions = 120
	s.Workload.MaxConnections = 10
	return s
}

// BatchStats summarises one completed batch.
type BatchStats struct {
	Pair        trace.Pair
	SetSize     int
	AvgLen      float64
	Quality     float64 // Q(π) = L/‖π‖
	NewEdgeRate float64
	Declines    int
	// GoodIncomes holds each good member's income m·P_f + P_r/‖π‖.
	GoodIncomes []float64
	// GoodNets holds the matching net payoffs (income − cost).
	GoodNets []float64
}

// Result aggregates one full simulation run.
type Result struct {
	Setup   Setup
	Batches []BatchStats
	// GoodPayoffs pools every (batch, good member) income sample — the
	// population behind Figs. 3 and 4 ("average payoff for a
	// non-malicious node" per batch membership).
	GoodPayoffs []float64
	// GoodNodeTotals holds, for every good node that ever existed in the
	// run, its total income across all batches (zero if it never
	// forwarded) — the per-node population behind Figs. 6 and 7's "CDF
	// of payoff for good nodes".
	GoodNodeTotals []float64
	// SetSizes pools per-batch ‖π‖ values (Fig. 5, Table 2 denominator).
	SetSizes []float64
	// NewEdgeRates pools per-batch Prop. 1 empirical E[X].
	NewEdgeRates []float64
	// Skipped counts connections skipped because an endpoint was offline.
	Skipped int
	// TotalDeclines counts NULL plays across all batches.
	TotalDeclines int
	// Solver aggregates the run's SPNE solve statistics: how many solves
	// ran, how many were warm incremental re-solves vs counted fallbacks,
	// and the frontier/fixed-point work saved (-phase-report surfaces it).
	Solver core.SolverStats
}

// AvgGoodPayoff returns the mean and 95% CI of the good-payoff samples.
func (r *Result) AvgGoodPayoff() stats.Interval {
	var a stats.Accumulator
	a.AddAll(r.GoodPayoffs)
	return a.Summary()
}

// AvgSetSize returns the mean forwarder-set size across batches.
func (r *Result) AvgSetSize() float64 { return stats.Mean(r.SetSizes) }

// RoutingEfficiency returns Table 2's metric: average payoff divided by
// the average number of forwarders.
func (r *Result) RoutingEfficiency() float64 {
	den := r.AvgSetSize()
	if den == 0 {
		return 0
	}
	return r.AvgGoodPayoff().Mean / den
}

// PayoffCDF returns the empirical CDF over the good-payoff samples.
func (r *Result) PayoffCDF() *stats.CDF { return stats.NewCDF(r.GoodPayoffs) }

// harness is the assembled simulation: overlay, churn, probes, system,
// workload and the scheduled connection events, with optional hooks for
// attacker instrumentation.
type harness struct {
	s       Setup
	engine  *sim.Engine
	net     *overlay.Network
	sys     *core.System
	pairs   []trace.Pair
	batches []*core.Batch
	horizon sim.Time
	skipped int

	// beforeConnection runs before a scheduled connection attempt (even
	// if it is skipped); afterConnection runs after a successful one.
	beforeConnection func(pairIdx int)
	afterConnection  func(pairIdx int, res *core.PathResult)

	// Telemetry instruments; nil (no-op) unless Setup.Telemetry was set.
	connOK, connSkipped       *telemetry.Counter
	setSize, quality, newEdge *telemetry.Histogram
}

// newHarness builds the full simulation but does not run it.
func newHarness(s Setup) (*harness, error) {
	if s.N < 2 {
		return nil, fmt.Errorf("experiment: N=%d", s.N)
	}
	rng := dist.NewSource(s.Seed)
	net := overlay.NewNetwork(s.Degree, rng.Split())
	// Instrument before the churn driver joins the initial population so
	// those transitions are counted too.
	net.Instrument(s.Telemetry)
	engine := sim.NewEngine()

	cc := s.ChurnConfig
	cc.N = s.N
	cc.MaliciousFraction = s.MaliciousFraction
	if !s.Churn {
		cc = churn.Config{N: s.N, MaliciousFraction: s.MaliciousFraction, Static: true}
	}
	drv := churn.NewDriver(cc, net, rng.Split())
	drv.Start(engine)

	// Top up early joiners' neighbor sets.
	for _, id := range net.AllIDs() {
		net.RefreshNeighbors(id)
	}

	probes := probe.NewSet(net, rng.Split(), s.ProbePeriod)
	// The solve worker pool doubles as the probe tick pool: both sharded
	// phases are RNG-free past their sequential prefetches, so transcripts
	// are byte-identical whatever the worker count (the -jobs golden test
	// pins this).
	probes.Workers = s.Core.SolveWorkers
	probes.Prof = s.Profile
	probes.Instrument(s.Telemetry)
	for i := 0; i < s.WarmupProbes; i++ {
		probes.TickAll()
	}
	probes.Attach(engine)

	sys, err := core.NewSystem(s.Core, net, probes, rng.Split())
	if err != nil {
		return nil, err
	}
	sys.Prof = s.Profile
	sys.Instrument(s.Telemetry)

	pairs, err := s.Workload.Generate(net, rng.Split())
	if err != nil {
		return nil, err
	}

	h := &harness{s: s, engine: engine, net: net, sys: sys, pairs: pairs}
	if reg := s.Telemetry; reg != nil {
		reg.Help(metricSimConnections, "scheduled connections run (result=ok) or skipped for an offline endpoint (result=skipped)")
		reg.Help(metricSimSetSize, "per-batch forwarder-set size ‖π‖")
		reg.Help(metricSimQuality, "per-batch anonymity quality Q(π) = L/‖π‖")
		reg.Help(metricSimNewEdgeRate, "per-batch empirical new-edge (reformation) rate E[X]")
		h.connOK = reg.Counter(metricSimConnections, telemetry.Labels{"result": "ok"})
		h.connSkipped = reg.Counter(metricSimConnections, telemetry.Labels{"result": "skipped"})
		h.setSize = reg.Histogram(metricSimSetSize, telemetry.LinearBuckets(1, 1, 16), nil)
		h.quality = reg.Histogram(metricSimQuality, telemetry.LinearBuckets(0.25, 0.25, 16), nil)
		h.newEdge = reg.Histogram(metricSimNewEdgeRate, telemetry.LinearBuckets(0.1, 0.1, 10), nil)
	}
	h.batches = make([]*core.Batch, len(pairs))
	for i, p := range pairs {
		b, err := sys.NewBatch(p.Initiator, p.Responder, p.Contract, s.Strategy)
		if err != nil {
			return nil, err
		}
		h.batches[i] = b
	}

	// Schedule each pair's recurring connections: the pair starts at a
	// random offset within the first mean-gap window, then repeats with
	// exponential gaps (recurring HTTP/FTP-style traffic).
	workRng := rng.Split()
	for i, p := range pairs {
		i, p := i, p
		gap := s.Workload.MeanGap
		if gap <= 0 {
			gap = 1
		}
		at := sim.Time(workRng.Uniform(0, gap))
		for c := 0; c < p.Connections; c++ {
			at += sim.Time(workRng.Exponential(1 / gap))
			engine.Schedule(at, sim.EventFunc(func(e *sim.Engine) {
				if h.beforeConnection != nil {
					h.beforeConnection(i)
				}
				if !h.net.Online(p.Initiator) || !h.net.Online(p.Responder) {
					h.skipped++
					h.connSkipped.Inc()
					return
				}
				// Keep the initiator's neighbor view repaired under churn.
				h.net.RefreshNeighbors(p.Initiator)
				res := h.batches[i].RunConnection()
				h.connOK.Inc()
				if h.afterConnection != nil {
					h.afterConnection(i, res)
				}
			}))
			if at > h.horizon {
				h.horizon = at
			}
		}
	}
	return h, nil
}

// run executes the simulation to just past the last scheduled connection.
func (h *harness) run() error {
	h.engine.RunUntil(h.horizon + 1)
	return nil
}

// result settles every batch and aggregates the run.
func (h *harness) result() *Result {
	res := &Result{Setup: h.s, Skipped: h.skipped, Solver: h.sys.SolverStats()}
	nodeTotals := make(map[overlay.NodeID]float64)
	for i, b := range h.batches {
		if b.Connections() == 0 {
			continue
		}
		fs := b.ForwarderSet()
		bs := BatchStats{
			Pair:        h.pairs[i],
			SetSize:     fs.Size(),
			AvgLen:      fs.AvgLen(),
			Quality:     fs.Quality(),
			NewEdgeRate: b.NewEdgeRate(),
			Declines:    b.Declines(),
		}
		for _, p := range b.GoodPayoffs() {
			bs.GoodIncomes = append(bs.GoodIncomes, p.Income)
			bs.GoodNets = append(bs.GoodNets, p.Net)
			res.GoodPayoffs = append(res.GoodPayoffs, p.Income)
			nodeTotals[p.Node] += p.Income
		}
		res.SetSizes = append(res.SetSizes, float64(bs.SetSize))
		res.NewEdgeRates = append(res.NewEdgeRates, bs.NewEdgeRate)
		h.setSize.Observe(float64(bs.SetSize))
		h.quality.Observe(bs.Quality)
		h.newEdge.Observe(bs.NewEdgeRate)
		res.TotalDeclines += bs.Declines
		res.Batches = append(res.Batches, bs)
	}
	// Per-node totals over every good node in the run (zeros included):
	// the paper's Figs. 6-7 population.
	for _, id := range h.net.AllIDs() {
		if !h.net.Node(id).Malicious {
			res.GoodNodeTotals = append(res.GoodNodeTotals, nodeTotals[id])
		}
	}
	return res
}

// Run executes one full simulation described by s.
func Run(s Setup) (*Result, error) {
	h, err := newHarness(s)
	if err != nil {
		return nil, err
	}
	if err := h.run(); err != nil {
		return nil, err
	}
	return h.result(), nil
}

// RunTrials runs the same setup with trial-indexed seeds and returns all
// results.
func RunTrials(s Setup, trials int) ([]*Result, error) {
	if trials < 1 {
		return nil, fmt.Errorf("experiment: trials=%d", trials)
	}
	out := make([]*Result, trials)
	for t := 0; t < trials; t++ {
		s := s
		s.Seed = s.Seed + uint64(t)*0x9e37
		r, err := Run(s)
		if err != nil {
			return nil, err
		}
		out[t] = r
	}
	return out, nil
}

// PoolPayoffs concatenates the good-payoff samples of several results.
func PoolPayoffs(rs []*Result) []float64 {
	var out []float64
	for _, r := range rs {
		out = append(out, r.GoodPayoffs...)
	}
	return out
}

// PoolSetSizes concatenates per-batch ‖π‖ samples of several results.
func PoolSetSizes(rs []*Result) []float64 {
	var out []float64
	for _, r := range rs {
		out = append(out, r.SetSizes...)
	}
	return out
}

// PoolNodeTotals concatenates the per-good-node total payoffs of several
// results (the Figs. 6-7 population).
func PoolNodeTotals(rs []*Result) []float64 {
	var out []float64
	for _, r := range rs {
		out = append(out, r.GoodNodeTotals...)
	}
	return out
}
