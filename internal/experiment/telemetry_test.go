package experiment

import (
	"testing"

	"p2panon/internal/telemetry"
)

func counterValue(snap telemetry.Snapshot, name string, labels map[string]string) int64 {
	for _, c := range snap.Counters {
		if c.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if c.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return c.Value
		}
	}
	return 0
}

func TestRunWithTelemetry(t *testing.T) {
	s := Quick()
	s.Telemetry = telemetry.NewRegistry()
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Telemetry.Snapshot()
	if got := counterValue(snap, metricSimConnections, map[string]string{"result": "ok"}); got == 0 {
		t.Fatalf("no ok connections counted (result had %d batches)", len(res.Batches))
	}
	// Even a static run joins N nodes, which are online transitions.
	if got := counterValue(snap, "overlay_churn_total", map[string]string{"state": "online"}); got < int64(s.N) {
		t.Fatalf("overlay_churn_total{state=online} = %d, want >= %d", got, s.N)
	}
	if got := counterValue(snap, "probe_ticks_total", nil); got == 0 {
		t.Fatal("probe ticks not counted")
	}
	var setSizeCount int64
	for _, h := range snap.Histograms {
		if h.Name == metricSimSetSize {
			setSizeCount = h.Count
		}
	}
	if setSizeCount != int64(len(res.Batches)) {
		t.Fatalf("sim_batch_set_size count = %d, want %d batches", setSizeCount, len(res.Batches))
	}
}

func TestRunUninstrumentedIsNoOp(t *testing.T) {
	// Telemetry nil must not change behaviour: same seed, same outcome.
	a, err := Run(Quick())
	if err != nil {
		t.Fatal(err)
	}
	s := Quick()
	s.Telemetry = telemetry.NewRegistry()
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Batches) != len(b.Batches) || a.AvgGoodPayoff().Mean != b.AvgGoodPayoff().Mean {
		t.Fatalf("instrumentation changed the run: %d/%v vs %d/%v",
			len(a.Batches), a.AvgGoodPayoff().Mean, len(b.Batches), b.AvgGoodPayoff().Mean)
	}
}

func TestRunLiveWithTelemetryAndTracer(t *testing.T) {
	s := DefaultLive()
	s.Pairs, s.Transmissions, s.MaxConnections = 4, 16, 4
	s.Removals = 1
	s.Telemetry = telemetry.NewRegistry()
	s.Tracer = telemetry.NewTracer(4096)
	out, err := RunLive(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed == 0 {
		t.Fatal("live replay completed nothing")
	}
	// Windowed metrics still satisfy the per-run identities.
	if out.Metrics.Connects != int64(out.Completed) {
		t.Fatalf("windowed connects %d != completed %d", out.Metrics.Connects, out.Completed)
	}
	if out.Metrics.ConnectLatency.Count != int64(out.Completed) {
		t.Fatalf("latency observations %d != completed %d", out.Metrics.ConnectLatency.Count, out.Completed)
	}
	var launches, delivered int
	for _, ev := range s.Tracer.Events() {
		switch ev.Kind {
		case telemetry.KindLaunch:
			launches++
		case telemetry.KindDelivered:
			delivered++
		}
	}
	if launches == 0 || delivered != out.Completed {
		t.Fatalf("trace saw %d launches, %d delivered (completed %d, dropped %d)",
			launches, delivered, out.Completed, s.Tracer.Dropped())
	}
}
