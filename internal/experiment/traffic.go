package experiment

import (
	"fmt"

	"p2panon/internal/attack"
	"p2panon/internal/core"
	"p2panon/internal/overlay"
	"p2panon/internal/sim"
	"p2panon/internal/stats"
)

// TrafficAnalysisResult summarises the §5 traffic-analysis attack: a
// global passive observer buckets all sending activity into epochs and
// correlates each node's activity with the target responder's receiving
// pattern. The figure of merit is the true initiator's rank among the
// suspects (1 = identified).
type TrafficAnalysisResult struct {
	Trials         int
	MeanRank       float64 // mean rank of the true initiator (1 is worst case for anonymity)
	IdentifiedRate float64 // fraction of trials with rank 1
	MeanScore      float64 // mean correlation score of the true initiator
	Population     int     // suspects per trial (for context)
}

// RunTrafficAnalysis mounts the attack against the first workload pair of
// each trial, with every other pair's traffic as background noise. Epochs
// are fixed windows of the simulated clock.
func RunTrafficAnalysis(base Setup, epoch sim.Time, trials int) (*TrafficAnalysisResult, error) {
	if epoch <= 0 {
		return nil, fmt.Errorf("experiment: epoch %v", epoch)
	}
	var ranks, scores stats.Accumulator
	identified := 0
	population := 0
	for trial := 0; trial < trials; trial++ {
		s := base
		s.Seed = base.Seed + uint64(trial)*7717
		h, err := newHarness(s)
		if err != nil {
			return nil, err
		}
		target := h.pairs[0]
		tc := attack.NewTrafficCorrelator(target.Responder)

		// Accumulate per-epoch activity. A connection event marks its
		// initiator and every forwarder as senders in the current epoch;
		// the target responder's receipts are the correlation reference.
		curEpoch := -1
		sends := map[overlay.NodeID]float64{}
		received := 0.0
		flush := func() {
			if curEpoch >= 0 {
				tc.RecordEpoch(sends, received)
			}
			sends = map[overlay.NodeID]float64{}
			received = 0
		}
		h.afterConnection = func(pairIdx int, res *core.PathResult) {
			e := int(h.engine.Now() / epoch)
			if e != curEpoch {
				flush()
				curEpoch = e
			}
			sends[res.Nodes[0]]++
			for _, f := range res.Forwarders() {
				sends[f]++
			}
			if pairIdx == 0 {
				received++
			}
		}
		if err := h.run(); err != nil {
			return nil, err
		}
		flush()

		rank := tc.RankOf(target.Initiator)
		if rank == 0 {
			continue // initiator never sent (all connections skipped)
		}
		ranks.Add(float64(rank))
		scores.Add(tc.Score(target.Initiator))
		if rank == 1 {
			identified++
		}
		if n := len(tc.Rank()); n > population {
			population = n
		}
	}
	res := &TrafficAnalysisResult{
		Trials:     ranks.N(),
		MeanRank:   ranks.Mean(),
		MeanScore:  scores.Mean(),
		Population: population,
	}
	if ranks.N() > 0 {
		res.IdentifiedRate = float64(identified) / float64(ranks.N())
	}
	return res, nil
}

// TrajectoryPoint is one connection-index position of the convergence
// study: how reuse builds up over the batch.
type TrajectoryPoint struct {
	Conn        int     // 1-based connection index within the batch
	NewEdgeRate float64 // mean fraction of new edges at this index
	CumSetSize  float64 // mean cumulative ‖π‖ after this many connections
}

// RunTrajectory measures the per-connection convergence of the mechanism:
// for each connection index k, the mean per-connection new-edge fraction
// and the mean cumulative forwarder-set size, per strategy. This is the
// dynamics behind Prop. 1 — the batch "locking in" its forwarders.
func RunTrajectory(base Setup, strategies []core.Strategy, trials int) (map[core.Strategy][]TrajectoryPoint, error) {
	out := make(map[core.Strategy][]TrajectoryPoint)
	maxConn := base.Workload.MaxConnections
	for _, strat := range strategies {
		newEdge := make([]stats.Accumulator, maxConn)
		cumSet := make([]stats.Accumulator, maxConn)
		for trial := 0; trial < trials; trial++ {
			s := base
			s.Strategy = strat
			s.Seed = base.Seed + uint64(trial)*4409
			h, err := newHarness(s)
			if err != nil {
				return nil, err
			}
			h.afterConnection = func(pairIdx int, res *core.PathResult) {
				k := res.Conn
				if k < 1 || k > maxConn {
					return
				}
				if res.HopLen() > 0 {
					newEdge[k-1].Add(float64(res.NewEdges) / float64(res.HopLen()))
				}
				cumSet[k-1].Add(float64(h.batches[pairIdx].ForwarderSet().Size()))
			}
			if err := h.run(); err != nil {
				return nil, err
			}
		}
		var pts []TrajectoryPoint
		for k := 0; k < maxConn; k++ {
			if newEdge[k].N() == 0 {
				continue
			}
			pts = append(pts, TrajectoryPoint{
				Conn:        k + 1,
				NewEdgeRate: newEdge[k].Mean(),
				CumSetSize:  cumSet[k].Mean(),
			})
		}
		out[strat] = pts
	}
	return out, nil
}

// ConvergencePoint summarises a trajectory: the connection index by which
// the per-connection new-edge rate first drops below the threshold, or -1
// if it never does.
func ConvergencePoint(pts []TrajectoryPoint, threshold float64) int {
	for _, p := range pts {
		if p.NewEdgeRate < threshold {
			return p.Conn
		}
	}
	return -1
}
