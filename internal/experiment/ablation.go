package experiment

import (
	"fmt"

	"p2panon/internal/adversary"
	"p2panon/internal/attack"
	"p2panon/internal/core"
	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/probe"
	"p2panon/internal/quality"
	"p2panon/internal/sim"
	"p2panon/internal/stats"
)

// TauAblationPoint summarises one τ position of the ABL-TAU sweep: how the
// routing/forwarding benefit ratio shapes forwarder-set size, payoff and
// routing efficiency (§2.2's discussion of the P_f/P_r relationship).
type TauAblationPoint struct {
	Tau        float64
	AvgSetSize float64
	AvgPayoff  float64
	Efficiency float64
}

// RunTauAblation sweeps τ on the base setup with Utility Model I.
func RunTauAblation(base Setup, taus []float64, trials int) ([]TauAblationPoint, error) {
	var out []TauAblationPoint
	for _, tau := range taus {
		s := base
		s.Strategy = core.UtilityI
		s.Workload.Tau = tau
		rs, err := RunTrials(s, trials)
		if err != nil {
			return nil, fmt.Errorf("tau=%g: %w", tau, err)
		}
		var pay stats.Accumulator
		pay.AddAll(PoolPayoffs(rs))
		size := stats.Mean(PoolSetSizes(rs))
		pt := TauAblationPoint{Tau: tau, AvgSetSize: size, AvgPayoff: pay.Mean()}
		if size > 0 {
			pt.Efficiency = pay.Mean() / size
		}
		out = append(out, pt)
	}
	return out, nil
}

// WeightAblationPoint summarises one (w_s, w_a) split of the ABL-W sweep
// (§2.3's discussion of the selectivity/availability weighting).
type WeightAblationPoint struct {
	Ws          float64
	AvgSetSize  float64
	NewEdgeRate float64
}

// RunWeightAblation sweeps w_s (w_a = 1 − w_s) on the base setup.
func RunWeightAblation(base Setup, ws []float64, trials int) ([]WeightAblationPoint, error) {
	var out []WeightAblationPoint
	for _, w := range ws {
		s := base
		s.Strategy = core.UtilityI
		s.Core.Weights = quality.Weights{Selectivity: w, Availability: 1 - w}
		rs, err := RunTrials(s, trials)
		if err != nil {
			return nil, fmt.Errorf("ws=%g: %w", w, err)
		}
		var edges stats.Accumulator
		for _, r := range rs {
			edges.AddAll(r.NewEdgeRates)
		}
		out = append(out, WeightAblationPoint{
			Ws:          w,
			AvgSetSize:  stats.Mean(PoolSetSizes(rs)),
			NewEdgeRate: edges.Mean(),
		})
	}
	return out, nil
}

// IntersectionResult summarises the ATK-INT study for one strategy: how
// fast the intersection attack's candidate set collapses and how often
// the initiator is identified within the batch.
type IntersectionResult struct {
	Strategy       core.Strategy
	AvgFinalSet    float64 // mean candidate-set size after all rounds
	IdentifiedRate float64 // fraction of batches where C = {I}
	AvgDegree      float64 // mean degree of anonymity at the end
	// AvgForwarderSet is the strategy-dependent channel: the average
	// ‖π‖ the attacker would have to own to sit on the paths. The
	// active-set channel above is strategy-independent by construction
	// (it depends only on churn), which is itself a finding the paper's
	// §2.1 argument predicts: the mechanism defends by shrinking ‖π‖.
	AvgForwarderSet float64
}

// RunIntersection mounts the §2.1 intersection attack against simulated
// batches: the attacker snapshots the online population at each connection
// time of a batch and intersects. Because the initiator must be online to
// connect, it always survives; churn removes other candidates. Utility
// routing's value shows up in the *forwarder-set* channel of the attack
// (fewer distinct forwarders to correlate); this study reports the
// active-set channel for each strategy under identical churn.
func RunIntersection(base Setup, strategies []core.Strategy, trials int) ([]IntersectionResult, error) {
	var out []IntersectionResult
	for _, strat := range strategies {
		var finals, degrees, fsets stats.Accumulator
		identified := 0
		batches := 0
		for trial := 0; trial < trials; trial++ {
			s := base
			s.Strategy = strat
			s.Seed = base.Seed + uint64(trial)*7919
			r, runRes, err := runWithIntersection(s)
			if err != nil {
				return nil, err
			}
			for _, ia := range r {
				finals.Add(float64(ia.size))
				degrees.Add(ia.degree)
				if ia.identified {
					identified++
				}
				batches++
			}
			fsets.AddAll(runRes.SetSizes)
		}
		res := IntersectionResult{
			Strategy:        strat,
			AvgFinalSet:     finals.Mean(),
			AvgDegree:       degrees.Mean(),
			AvgForwarderSet: fsets.Mean(),
		}
		if batches > 0 {
			res.IdentifiedRate = float64(identified) / float64(batches)
		}
		out = append(out, res)
	}
	return out, nil
}

type intersectionOutcome struct {
	size       int
	degree     float64
	identified bool
}

// runWithIntersection runs the simulation with one Intersector per batch,
// observing the online population at every connection event, and returns
// both the attack outcomes and the ordinary run result.
func runWithIntersection(s Setup) ([]intersectionOutcome, *Result, error) {
	h, err := newHarness(s)
	if err != nil {
		return nil, nil, err
	}
	intersectors := make([]*attack.Intersector, len(h.pairs))
	for i := range intersectors {
		intersectors[i] = attack.NewIntersector()
	}
	h.beforeConnection = func(pairIdx int) {
		intersectors[pairIdx].Observe(h.net.OnlineIDs())
	}
	if err := h.run(); err != nil {
		return nil, nil, err
	}
	var out []intersectionOutcome
	for i, x := range intersectors {
		if x.Rounds() == 0 {
			continue
		}
		out = append(out, intersectionOutcome{
			size:       x.AnonymitySetSize(),
			degree:     x.DegreeOfAnonymity(h.net.Len()),
			identified: x.Identified(h.pairs[i].Initiator),
		})
	}
	return out, h.result(), nil
}

// AvailabilityAttackResult summarises the §5 availability attack: the
// share of forwarding instances captured by the always-online malicious
// coalition, with and without the attack behaviour.
type AvailabilityAttackResult struct {
	BaselineCapture float64 // malicious share of forwarder-set slots, churning adversaries
	AttackCapture   float64 // same with always-online adversaries
	GuessAccuracy   float64 // cid-linking initiator-guess accuracy under attack
}

// RunAvailabilityAttack compares adversary path capture with and without
// the high-availability behaviour (malicious fraction from the base
// setup; utility-I routing, churn enabled).
func RunAvailabilityAttack(base Setup, trials int) (*AvailabilityAttackResult, error) {
	capture := func(alwaysOn bool) (float64, float64, error) {
		var capt stats.Accumulator
		var acc stats.Accumulator
		for trial := 0; trial < trials; trial++ {
			s := base
			s.Strategy = core.UtilityI
			s.Churn = true
			s.Seed = base.Seed + uint64(trial)*104729
			h, err := newHarness(s)
			if err != nil {
				return 0, 0, err
			}
			if alwaysOn {
				adversary.AttachHighAvailability(h.engine, h.net, h.s.ProbePeriod)
			}
			var members []overlay.NodeID
			for _, id := range h.net.AllIDs() {
				if h.net.Node(id).Malicious {
					members = append(members, id)
				}
			}
			coalition := adversary.NewCoalition(members)
			// The coalition's cid-linking analysis is per batch —
			// connection ids are batch-scoped — so track one target pair.
			h.afterConnection = func(pairIdx int, res *core.PathResult) {
				if pairIdx == 0 {
					coalition.ObservePath(res)
				}
			}
			if err := h.run(); err != nil {
				return 0, 0, err
			}
			mal, tot := 0, 0
			for _, b := range h.batches {
				for _, id := range b.ForwarderSet().Members() {
					tot++
					if h.net.Node(id).Malicious {
						mal++
					}
				}
			}
			if tot > 0 {
				capt.Add(float64(mal) / float64(tot))
			}
			// Guess accuracy against the first pair's initiator.
			if len(h.pairs) > 0 {
				acc.Add(coalition.GuessAccuracy(h.pairs[0].Initiator))
			}
		}
		return capt.Mean(), acc.Mean(), nil
	}
	baseCapt, _, err := capture(false)
	if err != nil {
		return nil, err
	}
	atkCapt, guess, err := capture(true)
	if err != nil {
		return nil, err
	}
	return &AvailabilityAttackResult{
		BaselineCapture: baseCapt,
		AttackCapture:   atkCapt,
		GuessAccuracy:   guess,
	}, nil
}

// Fig12Result reproduces the scenario of the paper's Figures 1 and 2 on a
// scripted 8-node topology: random routing plus one unavailable node
// inflates the forwarder set; stable utility routing keeps it at the path
// size.
type Fig12Result struct {
	RandomSetSize int
	StableSetSize int
	RandomShare   float64 // per-forwarder routing-benefit share Pr/‖π‖
	StableShare   float64
}

// RunFig12 builds the figures' topology (I with two first hops, a middle
// layer, and R) and runs k connections under both behaviours.
func RunFig12(k int, pr float64, seed uint64) *Fig12Result {
	build := func() (*core.System, *overlay.Network) {
		rng := dist.NewSource(seed)
		net := overlay.NewNetwork(3, rng.Split())
		for i := 0; i < 10; i++ {
			net.Join(0, false)
		}
		// 0 = I, 9 = R; two parallel 3-hop lanes plus cross links, echoing
		// Figure 1's P/X/Y layout.
		net.Node(0).Neighbors = []overlay.NodeID{1, 2}
		net.Node(1).Neighbors = []overlay.NodeID{3, 4}
		net.Node(2).Neighbors = []overlay.NodeID{4, 5}
		net.Node(3).Neighbors = []overlay.NodeID{6}
		net.Node(4).Neighbors = []overlay.NodeID{6, 7}
		net.Node(5).Neighbors = []overlay.NodeID{7}
		net.Node(6).Neighbors = []overlay.NodeID{8}
		net.Node(7).Neighbors = []overlay.NodeID{8}
		net.Node(8).Neighbors = []overlay.NodeID{6, 7}
		net.Touch() // hand-edited topology: invalidate version-keyed caches
		probes := probe.NewSet(net, rng.Split(), 60)
		for i := 0; i < 3; i++ {
			probes.TickAll()
		}
		cfg := core.DefaultConfig()
		cfg.MinHops, cfg.MaxHops = 3, 3
		sys, err := core.NewSystem(cfg, net, probes, rng.Split())
		if err != nil {
			panic(err)
		}
		return sys, net
	}

	contract := core.Contract{Pf: 75, Pr: pr}

	// Random routing with node 4 (the figures' X) flapping offline on odd
	// connections.
	sysR, netR := build()
	bR, err := sysR.NewBatch(0, 9, contract, core.Random)
	if err != nil {
		panic(err)
	}
	for i := 0; i < k; i++ {
		now := sim.Time(i * 100)
		if i%2 == 1 && netR.Online(4) {
			netR.Leave(now, 4, false)
		} else if i%2 == 0 && !netR.Online(4) {
			netR.Rejoin(now, 4)
		}
		bR.RunConnection()
	}

	// Stable utility routing, everyone available.
	sysS, _ := build()
	bS, err := sysS.NewBatch(0, 9, contract, core.UtilityI)
	if err != nil {
		panic(err)
	}
	for i := 0; i < k; i++ {
		bS.RunConnection()
	}

	res := &Fig12Result{
		RandomSetSize: bR.ForwarderSet().Size(),
		StableSetSize: bS.ForwarderSet().Size(),
	}
	if res.RandomSetSize > 0 {
		res.RandomShare = pr / float64(res.RandomSetSize)
	}
	if res.StableSetSize > 0 {
		res.StableShare = pr / float64(res.StableSetSize)
	}
	return res
}
