package churn

import (
	"math"
	"sort"
	"testing"

	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/sim"
)

func setup(t *testing.T, cfg Config, seed uint64) (*sim.Engine, *overlay.Network, *Driver) {
	t.Helper()
	rng := dist.NewSource(seed)
	net := overlay.NewNetwork(5, rng.Split())
	drv := NewDriver(cfg, net, rng.Split())
	e := sim.NewEngine()
	return e, net, drv
}

func TestStaticSeedsExactlyN(t *testing.T) {
	cfg := Config{N: 40, Static: true}
	e, net, drv := setup(t, cfg, 1)
	drv.Start(e)
	e.RunUntil(sim.Hours(10))
	if net.Len() != 40 {
		t.Fatalf("Len = %d", net.Len())
	}
	if net.OnlineCount() != 40 {
		t.Fatalf("Online = %d", net.OnlineCount())
	}
	if drv.Departures() != 0 {
		t.Fatal("static run had departures")
	}
}

func TestMaliciousFractionExact(t *testing.T) {
	cfg := Config{N: 40, MaliciousFraction: 0.5, Static: true}
	e, net, drv := setup(t, cfg, 2)
	drv.Start(e)
	count := 0
	for _, id := range net.AllIDs() {
		if net.Node(id).Malicious {
			count++
		}
	}
	if count != 20 {
		t.Fatalf("malicious = %d, want 20", count)
	}
	_ = e
}

func TestMaliciousFractionRounds(t *testing.T) {
	cfg := Config{N: 10, MaliciousFraction: 0.25, Static: true}
	e, net, drv := setup(t, cfg, 3)
	drv.Start(e)
	_ = e
	count := 0
	for _, id := range net.AllIDs() {
		if net.Node(id).Malicious {
			count++
		}
	}
	if count != 3 { // round(2.5) = 3 with +0.5 rounding
		t.Fatalf("malicious = %d, want 3", count)
	}
}

func TestChurnProducesLeavesAndRejoins(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ArrivalRate = 0
	e, net, drv := setup(t, cfg, 4)
	drv.Start(e)
	e.RunUntil(sim.Hours(24))
	// After a day with median 60-minute sessions and 10% departure odds,
	// there must be substantial state diversity.
	states := map[overlay.State]int{}
	for _, id := range net.AllIDs() {
		states[net.Node(id).State]++
	}
	if states[overlay.Departed] == 0 {
		t.Fatal("no departures after 24h")
	}
	if drv.Departures() != states[overlay.Departed] {
		t.Fatalf("driver departures %d != network %d", drv.Departures(), states[overlay.Departed])
	}
}

func TestArrivalsReplaceDepartures(t *testing.T) {
	cfg := DefaultConfig()
	e, net, drv := setup(t, cfg, 5)
	drv.Start(e)
	e.RunUntil(sim.Hours(24))
	if net.Len() <= cfg.N {
		t.Fatalf("no arrivals: Len=%d", net.Len())
	}
	if drv.Joins() != net.Len() {
		t.Fatalf("joins %d != nodes %d", drv.Joins(), net.Len())
	}
}

func TestSessionTimesFollowConfiguredMedian(t *testing.T) {
	// With departures disabled and long horizon, observed availability
	// should hover near median-session / (median-session + mean-off) — a
	// loose sanity band, not an exact law (Pareto means are heavy-tailed).
	cfg := Config{
		N:           40,
		Session:     dist.ParetoFromMedian(sim.Minutes(60).Seconds(), 1.5),
		MeanOffTime: sim.Minutes(60).Seconds(),
		DepartProb:  0,
	}
	e, net, drv := setup(t, cfg, 6)
	drv.Start(e)
	e.RunUntil(sim.Hours(200))
	sum := 0.0
	for _, id := range net.AllIDs() {
		sum += net.Availability(e.Now(), id)
	}
	avg := sum / float64(net.Len())
	if avg < 0.4 || avg > 0.95 {
		t.Fatalf("average availability %g outside sanity band", avg)
	}
}

func TestDeterministicChurn(t *testing.T) {
	run := func() (int, int, int) {
		cfg := DefaultConfig()
		rng := dist.NewSource(77)
		net := overlay.NewNetwork(5, rng.Split())
		drv := NewDriver(cfg, net, rng.Split())
		e := sim.NewEngine()
		drv.Start(e)
		e.RunUntil(sim.Hours(12))
		return net.Len(), net.OnlineCount(), drv.Departures()
	}
	l1, o1, d1 := run()
	l2, o2, d2 := run()
	if l1 != l2 || o1 != o2 || d1 != d2 {
		t.Fatalf("runs differ: (%d,%d,%d) vs (%d,%d,%d)", l1, o1, d1, l2, o2, d2)
	}
}

func TestNewDriverValidation(t *testing.T) {
	rng := dist.NewSource(1)
	net := overlay.NewNetwork(5, rng.Split())
	cases := []Config{
		{N: 0, Static: true},
		{N: 10, MaliciousFraction: -0.1, Static: true},
		{N: 10, MaliciousFraction: 1.5, Static: true},
		{N: 10}, // non-static without session distribution
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			NewDriver(cfg, net, rng)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil rng: no panic")
			}
		}()
		NewDriver(Config{N: 1, Static: true}, net, nil)
	}()
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.N != 40 {
		t.Fatalf("N = %d", cfg.N)
	}
	if math.Abs(cfg.Session.Median()-3600) > 1e-6 {
		t.Fatalf("session median = %g, want 3600s", cfg.Session.Median())
	}
}

func TestDepartProbOneEmptiesNetwork(t *testing.T) {
	cfg := Config{
		N:          20,
		Session:    dist.Pareto{Xm: 10, Alpha: 3},
		DepartProb: 1,
	}
	e, net, drv := setup(t, cfg, 8)
	drv.Start(e)
	e.Run()
	if net.OnlineCount() != 0 {
		t.Fatalf("online after full departure: %d", net.OnlineCount())
	}
	if drv.Departures() != 20 {
		t.Fatalf("departures = %d", drv.Departures())
	}
}

// observeSessions runs the driver to the horizon and returns every completed
// session duration, in event order, measured purely through the overlay's
// churn observer and the engine clock — the same signals the probe layer's
// availability estimator consumes.
func observeSessions(t *testing.T, cfg Config, seed uint64, horizon sim.Time) []float64 {
	t.Helper()
	e, net, drv := setup(t, cfg, seed)
	start := make(map[overlay.NodeID]sim.Time)
	var durations []float64
	net.OnChurn(func(id overlay.NodeID, s overlay.State) {
		switch s {
		case overlay.Online:
			start[id] = e.Now()
		case overlay.Offline, overlay.Departed:
			if began, ok := start[id]; ok {
				durations = append(durations, float64(e.Now()-began))
				delete(start, id)
			}
		}
	})
	drv.Start(e)
	e.RunUntil(horizon)
	return durations
}

// TestSessionDurationsConvergeToMedian is the property test for the churn
// process: session times observed from the outside (Online→Offline
// transitions under the harness clock) must have an empirical median that
// converges to the configured Pareto median, and the whole observation
// sequence must be a pure function of the seed.
func TestSessionDurationsConvergeToMedian(t *testing.T) {
	cfg := Config{
		N:           100,
		Session:     dist.ParetoFromMedian(120, 1.5),
		MeanOffTime: 30,
		// DepartProb 0: every node cycles sessions for the whole run, so the
		// sample count grows with the horizon instead of the population.
	}
	horizon := sim.Hours(4)
	durations := observeSessions(t, cfg, 99, horizon)
	if len(durations) < 1000 {
		t.Fatalf("only %d completed sessions; the churn process barely ran", len(durations))
	}
	sorted := append([]float64(nil), durations...)
	sort.Float64s(sorted)
	got := sorted[len(sorted)/2]
	want := cfg.Session.Median()
	if rel := math.Abs(got-want) / want; rel > 0.10 {
		t.Fatalf("empirical session median %.1fs vs configured %.1fs (%.1f%% off, n=%d)",
			got, want, 100*rel, len(durations))
	}
	// Every observed duration respects the Pareto lower bound.
	if sorted[0] < cfg.Session.Xm-1e-9 {
		t.Fatalf("session of %.3fs below the Pareto minimum %.3fs", sorted[0], cfg.Session.Xm)
	}

	// Same seed, same horizon: the observation sequence replays exactly.
	again := observeSessions(t, cfg, 99, horizon)
	if len(again) != len(durations) {
		t.Fatalf("replay produced %d sessions, first run %d", len(again), len(durations))
	}
	for i := range durations {
		if durations[i] != again[i] {
			t.Fatalf("replay diverged at session %d: %g vs %g", i, durations[i], again[i])
		}
	}
	// A different seed must not.
	other := observeSessions(t, cfg, 100, horizon)
	if len(other) == len(durations) {
		same := true
		for i := range durations {
			if durations[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical session sequences")
		}
	}
}
