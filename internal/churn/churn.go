// Package churn drives node join/leave dynamics for an overlay network,
// following the paper's simulation setup: node joins form a Poisson
// process, session times are Pareto-distributed with a 60-minute median
// (matching the measurements of Saroiu et al. that the paper cites), and
// off-times between sessions are exponential. Each node lives for a
// geometrically distributed number of sessions before departing for good,
// which yields the "lifetime vs session time" availability structure of
// §2.1.
package churn

import (
	"fmt"

	"p2panon/internal/dist"
	"p2panon/internal/overlay"
	"p2panon/internal/sim"
)

// Config parameterises a churn process.
type Config struct {
	// N is the target population size: the driver seeds N initial nodes
	// and keeps Poisson arrivals replacing departures. The paper uses 40.
	N int

	// MaliciousFraction f of nodes are adversary-controlled.
	MaliciousFraction float64

	// ArrivalRate is the Poisson rate (nodes/second) of new-node joins
	// after the initial seeding. Zero disables late arrivals.
	ArrivalRate float64

	// Session is the session-time distribution. The paper's median is 60
	// minutes.
	Session dist.Pareto

	// MeanOffTime is the mean of the exponential off-time between two
	// sessions of the same node, in seconds.
	MeanOffTime float64

	// DepartProb is the probability that a session ending is the node's
	// final departure (geometric number of sessions, mean 1/DepartProb).
	// Zero means nodes never depart permanently.
	DepartProb float64

	// Static disables all leave events: nodes join once and stay online.
	// Used for no-churn baselines and unit tests.
	Static bool
}

// DefaultConfig returns the paper's simulation parameters: N=40 nodes,
// Pareto sessions with a 60-minute median (shape 1.5), 10-minute mean
// off-times, and a 10% chance that any session end is final.
func DefaultConfig() Config {
	return Config{
		N:           40,
		Session:     dist.ParetoFromMedian(sim.Minutes(60).Seconds(), 1.5),
		MeanOffTime: sim.Minutes(10).Seconds(),
		DepartProb:  0.1,
		ArrivalRate: 1.0 / sim.Minutes(30).Seconds(),
	}
}

// Driver attaches a churn process to an overlay network on a simulation
// engine.
type Driver struct {
	cfg Config
	net *overlay.Network
	rng *dist.Source

	joins      int
	departures int
}

// NewDriver creates a churn driver. It panics on invalid configuration.
func NewDriver(cfg Config, net *overlay.Network, rng *dist.Source) *Driver {
	if cfg.N < 1 {
		panic(fmt.Sprintf("churn: N=%d", cfg.N))
	}
	if cfg.MaliciousFraction < 0 || cfg.MaliciousFraction > 1 {
		panic(fmt.Sprintf("churn: malicious fraction %g", cfg.MaliciousFraction))
	}
	if !cfg.Static && cfg.Session.Xm <= 0 {
		panic("churn: session distribution unset")
	}
	if rng == nil {
		panic("churn: nil rng")
	}
	return &Driver{cfg: cfg, net: net, rng: rng}
}

// Joins returns the total number of join events (first joins only).
func (d *Driver) Joins() int { return d.joins }

// Departures returns the number of permanent departures.
func (d *Driver) Departures() int { return d.departures }

// Start seeds the initial population at the engine's current time and
// schedules all future churn. Exactly ⌈f·N⌉ of the initial nodes are
// malicious, matching the paper's "a certain fraction f of nodes are
// selected as adversaries".
func (d *Driver) Start(e *sim.Engine) {
	malicious := int(d.cfg.MaliciousFraction*float64(d.cfg.N) + 0.5)
	flags := make([]bool, d.cfg.N)
	for i := 0; i < malicious; i++ {
		flags[i] = true
	}
	dist.Shuffle(d.rng, flags)
	for i := 0; i < d.cfg.N; i++ {
		d.spawn(e, flags[i])
	}
	if !d.cfg.Static && d.cfg.ArrivalRate > 0 {
		d.scheduleArrival(e)
	}
}

// spawn joins a brand-new node and schedules the end of its first session.
func (d *Driver) spawn(e *sim.Engine, malicious bool) {
	node := d.net.Join(e.Now(), malicious)
	d.joins++
	if !d.cfg.Static {
		d.scheduleSessionEnd(e, node.ID)
	}
}

// scheduleArrival schedules the next Poisson arrival.
func (d *Driver) scheduleArrival(e *sim.Engine) {
	gap := d.rng.Exponential(d.cfg.ArrivalRate)
	e.AfterFunc(sim.Time(gap), func(e *sim.Engine) {
		// New arrivals are malicious with the configured probability so
		// the adversary fraction stays roughly constant under churn.
		d.spawn(e, d.rng.Bernoulli(d.cfg.MaliciousFraction))
		d.scheduleArrival(e)
	})
}

// scheduleSessionEnd draws a session duration and schedules the leave.
func (d *Driver) scheduleSessionEnd(e *sim.Engine, id overlay.NodeID) {
	dur := d.cfg.Session.Sample(d.rng)
	e.AfterFunc(sim.Time(dur), func(e *sim.Engine) {
		// The node may already have been forced offline by other logic in
		// exotic setups; only act if it is still online.
		if !d.net.Online(id) {
			return
		}
		final := d.rng.Bernoulli(d.cfg.DepartProb)
		d.net.Leave(e.Now(), id, final)
		if final {
			d.departures++
			return
		}
		off := d.cfg.MeanOffTime
		if off <= 0 {
			off = 1
		}
		gap := d.rng.Exponential(1 / off)
		e.AfterFunc(sim.Time(gap), func(e *sim.Engine) {
			if d.net.Node(id).State != overlay.Offline {
				return
			}
			d.net.Rejoin(e.Now(), id)
			d.scheduleSessionEnd(e, id)
		})
	})
}
