package clusterd

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// sampleMsgs covers every message kind with representative payloads.
func sampleMsgs() []*Msg {
	return []*Msg{
		{Kind: MsgHello, Worker: 2},
		{Kind: MsgConfig, Worker: 1, Workers: 3, Comp: []byte(`{"seed":7,"workers":3}`)},
		{Kind: MsgAddrs, Addrs: []AddrEntry{
			{Node: 0, Addr: "127.0.0.1:4001"},
			{Node: 3, Addr: "127.0.0.1:4002"},
			{Node: 6, Addr: "127.0.0.1:4003"},
		}},
		{Kind: MsgAddrs},
		{Kind: MsgSignal, Name: "ready"},
		{Kind: MsgRelease, Name: "start-3"},
		{Kind: MsgFault, Fault: "crash", Node: 5, Batch: 2},
		{Kind: MsgResult, Batch: 2, Initiator: 8, Responder: 1, SetSize: 3, Credits: []CreditEntry{
			{Node: 2, Forwards: 1, PayoffBits: 0x407e000000000000},
			{Node: 4, Forwards: 2, PayoffBits: 0x4080000000000000},
		}},
		{Kind: MsgResult, Batch: 3, Initiator: 0, Responder: 4, Failed: true},
		{Kind: MsgCollect, Batch: 2, Credits: []CreditEntry{{Node: 4, Forwards: 2, PayoffBits: 1}}},
		{Kind: MsgCredits, Batch: 2},
		{Kind: MsgArtifact, ArtifactKind: "spans", Data: []byte("{}\n{}\n")},
		{Kind: MsgArtifact, ArtifactKind: "telemetry"},
		{Kind: MsgShutdown},
		{Kind: MsgError, Text: "worker 1: join: address in use"},
	}
}

func TestMsgRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		body, err := EncodeMsg(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Kind, err)
		}
		got, err := DecodeMsg(body)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Fatalf("%s: round trip:\n got %+v\nwant %+v", m.Kind, got, m)
		}
		// Canonical: re-encoding the decoded message is the identity.
		re, err := EncodeMsg(got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", m.Kind, err)
		}
		if !bytes.Equal(re, body) {
			t.Fatalf("%s: canonical re-encode diverges", m.Kind)
		}
	}
}

// normalize maps empty and nil slices together for comparison: the
// wire cannot tell them apart, by design.
func normalize(m *Msg) *Msg {
	c := *m
	if len(c.Addrs) == 0 {
		c.Addrs = nil
	}
	if len(c.Credits) == 0 {
		c.Credits = nil
	}
	if len(c.Comp) == 0 {
		c.Comp = nil
	}
	if len(c.Data) == 0 {
		c.Data = nil
	}
	return &c
}

func TestMsgFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMsgs()
	total := 0
	for _, m := range msgs {
		n, err := WriteMsg(&buf, m)
		if err != nil {
			t.Fatalf("%s: write: %v", m.Kind, err)
		}
		total += n
	}
	if buf.Len() != total {
		t.Fatalf("wrote %d bytes, counted %d", buf.Len(), total)
	}
	for _, want := range msgs {
		got, _, err := ReadMsg(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("framing round trip:\n got %+v\nwant %+v", got, want)
		}
	}
	if _, _, err := ReadMsg(&buf); err != io.EOF {
		t.Fatalf("read past end: %v, want EOF", err)
	}
}

func TestEncodeMsgRejections(t *testing.T) {
	long := string(make([]byte, maxName+1))
	cases := []struct {
		name string
		m    *Msg
		want error
	}{
		{"unknown kind", &Msg{Kind: msgEnd}, ErrMsgKind},
		{"zero kind", &Msg{}, ErrMsgKind},
		{"negative worker", &Msg{Kind: MsgHello, Worker: -1}, ErrMsgField},
		{"config without comp", &Msg{Kind: MsgConfig, Workers: 3}, ErrMsgField},
		{"empty barrier name", &Msg{Kind: MsgSignal}, ErrMsgField},
		{"overlong barrier name", &Msg{Kind: MsgSignal, Name: long}, ErrMsgField},
		{"empty fault kind", &Msg{Kind: MsgFault, Node: 1}, ErrMsgField},
		{"empty error text", &Msg{Kind: MsgError}, ErrMsgField},
		{"unsorted addrs", &Msg{Kind: MsgAddrs, Addrs: []AddrEntry{
			{Node: 3, Addr: "a"}, {Node: 1, Addr: "b"},
		}}, ErrMsgOrder},
		{"duplicate addr node", &Msg{Kind: MsgAddrs, Addrs: []AddrEntry{
			{Node: 2, Addr: "a"}, {Node: 2, Addr: "b"},
		}}, ErrMsgOrder},
		{"empty addr", &Msg{Kind: MsgAddrs, Addrs: []AddrEntry{{Node: 0}}}, ErrMsgField},
		{"unsorted credits", &Msg{Kind: MsgCredits, Credits: []CreditEntry{
			{Node: 5}, {Node: 4},
		}}, ErrMsgOrder},
		{"negative forwards", &Msg{Kind: MsgCredits, Credits: []CreditEntry{
			{Node: 1, Forwards: -1},
		}}, ErrMsgField},
		{"empty artifact kind", &Msg{Kind: MsgArtifact, Data: []byte("x")}, ErrMsgField},
	}
	for _, tc := range cases {
		if _, err := EncodeMsg(tc.m); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeMsgRejections(t *testing.T) {
	valid := func(m *Msg) []byte {
		t.Helper()
		b, err := EncodeMsg(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	hello := valid(&Msg{Kind: MsgHello, Worker: 1})
	signal := valid(&Msg{Kind: MsgSignal, Name: "ready"})
	result := valid(&Msg{Kind: MsgResult, Batch: 1, SetSize: 1})
	cases := []struct {
		name string
		body []byte
		want error
	}{
		{"empty", nil, ErrMsgShort},
		{"version only", []byte{WireVersion}, ErrMsgShort},
		{"bad version", []byte{WireVersion + 1, byte(MsgHello), 0, 0, 0, 1}, ErrMsgVersion},
		{"zero kind", []byte{WireVersion, 0}, ErrMsgKind},
		{"unknown kind", []byte{WireVersion, byte(msgEnd)}, ErrMsgKind},
		{"truncated hello", hello[:len(hello)-1], ErrMsgShort},
		{"oversized hello", append(append([]byte(nil), hello...), 0), ErrMsgOversized},
		{"trailing signal bytes", append(append([]byte(nil), signal...), 0), ErrMsgTrailing},
		{"trailing shutdown bytes", []byte{WireVersion, byte(MsgShutdown), 7}, ErrMsgOversized},
		{"result failed flag 2", flipByte(result, 2+16, 2), ErrMsgField},
		{"truncated result credits", result[:len(result)-2], ErrMsgShort},
		// A credits count far beyond the entry bound, with no bytes
		// behind it.
		{"credit count bound", []byte{WireVersion, byte(MsgCredits),
			0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff}, ErrMsgEntryCount},
		{"addr count bound", []byte{WireVersion, byte(MsgAddrs),
			0xff, 0xff, 0xff, 0xff}, ErrMsgEntryCount},
		{"unsorted credits", []byte{WireVersion, byte(MsgCredits),
			0, 0, 0, 1, // batch
			0, 0, 0, 2, // two entries
			0, 0, 0, 5, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, // node 5
			0, 0, 0, 4, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, // node 4: out of order
		}, ErrMsgOrder},
		{"zero-length barrier name", []byte{WireVersion, byte(MsgSignal), 0, 0}, ErrMsgField},
	}
	for _, tc := range cases {
		if _, err := DecodeMsg(tc.body); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// flipByte returns a copy of b with b[i] set to v.
func flipByte(b []byte, i int, v byte) []byte {
	c := append([]byte(nil), b...)
	c[i] = v
	return c
}

func TestReadMsgCaps(t *testing.T) {
	// Oversized frame header: rejected before any body allocation.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadMsg(bytes.NewReader(hdr)); !errors.Is(err, ErrMsgOversized) {
		t.Fatalf("oversized header: %v", err)
	}
	// Sub-minimal frame length.
	if _, _, err := ReadMsg(bytes.NewReader([]byte{0, 0, 0, 1, 9})); !errors.Is(err, ErrMsgShort) {
		t.Fatalf("short frame: %v", err)
	}
	// Truncated body after a plausible header.
	if _, _, err := ReadMsg(bytes.NewReader([]byte{0, 0, 0, 9, WireVersion, byte(MsgHello)})); err == nil {
		t.Fatal("truncated body: want error")
	}
}

// FuzzBarrierWire pins the codec's canonical property: any body that
// decodes re-encodes to the identical bytes, and survives a framed
// write/read cycle unchanged. Malformed bodies must error, never
// panic or mis-parse.
func FuzzBarrierWire(f *testing.F) {
	for _, m := range sampleMsgs() {
		body, err := EncodeMsg(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
		if len(body) > 2 {
			f.Add(body[:len(body)-1])        // truncated
			f.Add(append(body, 0))           // trailing byte
			f.Add(flipByte(body, 0, 9))      // bad version
			f.Add(flipByte(body, 1, 0xee))   // bad kind
			f.Add(append(body, body[2:]...)) // oversized / trailing run
		}
	}
	f.Add([]byte{})
	f.Add([]byte{WireVersion})
	f.Add([]byte{WireVersion, byte(MsgShutdown)})
	f.Fuzz(func(t *testing.T, body []byte) {
		m, err := DecodeMsg(body)
		if err != nil {
			return
		}
		re, err := EncodeMsg(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		if !bytes.Equal(re, body) {
			t.Fatalf("canonical identity broken:\n in  %x\n out %x", body, re)
		}
		var buf bytes.Buffer
		if _, err := WriteMsg(&buf, m); err != nil {
			t.Fatalf("frame write: %v", err)
		}
		got, n, err := ReadMsg(&buf)
		if err != nil {
			t.Fatalf("frame read: %v", err)
		}
		if n != 4+len(body) {
			t.Fatalf("frame consumed %d bytes, want %d", n, 4+len(body))
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("framed round trip diverges:\n got %+v\nwant %+v", got, m)
		}
	})
}
