package clusterd

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"p2panon/internal/faultsim"
	"p2panon/internal/overlay"
	"p2panon/internal/transport"
)

// LinkShape declares orchestrator-side shaping of one directed link.
// Shaped traffic is routed through a relay the orchestrator runs: the
// sending side's directory entry for To points at the relay instead of
// the real listener. Because the directory is per worker process,
// shaping granularity is (From's worker → To); compositions that need
// node-granular shaping place one node per worker.
type LinkShape struct {
	From int `json:"from"`
	To   int `json:"to"`
	// Delay holds each chunk of From→To traffic back this many seconds.
	Delay float64 `json:"delay,omitempty"`
	// Drop black-holes the link: connections are accepted and read but
	// nothing is ever forwarded or answered, so the sender's handshake
	// times out — a silently lossy path.
	Drop bool `json:"drop,omitempty"`
	// Partition refuses connections outright: the sender sees an
	// immediate dial failure, the crisp partition signal.
	Partition bool `json:"partition,omitempty"`
}

// Composition declares one multi-process cluster run: the faultsim Plan
// schema for world shape, workload, timing, incentives and the fault
// schedule, plus the process count and link-shaping rules. A plan that
// drives the single-process faultsim world drives a process cluster
// unchanged; only Workers and Links are new.
type Composition struct {
	faultsim.Plan
	Workers int         `json:"workers,omitempty"`
	Links   []LinkShape `json:"links,omitempty"`
}

// Normalize fills zero fields with defaults. The reformation budget is
// raised to the node count if below it: the ring router may need a
// near-full lap when the responder sits just counter-clockwise of the
// initiator.
func (c Composition) Normalize() Composition {
	c.Plan = c.Plan.Normalize()
	if c.Workers == 0 {
		c.Workers = 3
	}
	if c.Budget < c.Nodes {
		c.Budget = c.Nodes
	}
	return c
}

// Validate reports the first configuration error, or nil.
func (c Composition) Validate() error {
	c = c.Normalize()
	if err := c.Plan.Validate(); err != nil {
		return err
	}
	if c.Workers < 1 || c.Workers > 64 {
		return fmt.Errorf("clusterd: %d workers, want 1..64", c.Workers)
	}
	type key struct{ w, to int }
	seen := make(map[key]LinkShape)
	for i, l := range c.Links {
		if l.From < 0 || l.From >= c.Nodes || l.To < 0 || l.To >= c.Nodes {
			return fmt.Errorf("clusterd: link %d names node outside 0..%d", i, c.Nodes-1)
		}
		if l.From == l.To {
			return fmt.Errorf("clusterd: link %d shapes a self-loop", i)
		}
		if l.Delay < 0 {
			return fmt.Errorf("clusterd: link %d has negative delay", i)
		}
		k := key{c.Owner(l.From), l.To}
		if prev, dup := seen[k]; dup && prev != l {
			return fmt.Errorf("clusterd: links from worker %d to node %d conflict (one node per worker gives node-granular shaping)", k.w, l.To)
		}
		seen[k] = l
	}
	return nil
}

// Owner maps a node to the worker process hosting it (round-robin).
// Both sides derive the assignment, so it never travels on the wire.
func (c Composition) Owner(node int) int { return node % c.Workers }

// AssignedNodes lists the nodes worker w hosts, ascending.
func (c Composition) AssignedNodes(w int) []int {
	var out []int
	for n := w; n < c.Nodes; n += c.Workers {
		out = append(out, n)
	}
	return out
}

// Retry derives the transport retry policy from the plan's timing
// fields (virtual seconds become real seconds on the cluster clock).
func (c Composition) Retry() transport.RetryPolicy {
	return transport.RetryPolicy{
		MaxAttempts: c.MaxAttempts,
		BaseBackoff: time.Duration(c.BackoffBase * float64(time.Second)),
		MaxBackoff:  time.Duration(c.BackoffMax * float64(time.Second)),
	}
}

// BatchSpec is one derived batch of the workload: who connects to whom,
// how many connections, under what budget and deadline.
type BatchSpec struct {
	Batch     int
	Initiator overlay.NodeID
	Responder overlay.NodeID
	Conns     int
	Budget    int
	Timeout   time.Duration
}

// Workload derives the run's batch schedule from the seed: every worker
// computes the same schedule independently, the orchestrator only
// coordinates when each batch starts. The (I, R) stream uses its own
// splitmix64 generator (seeded like faultsim's plan generator) so the
// schedule is a pure function of the composition.
func (c Composition) Workload() []BatchSpec {
	rng := newWlRNG(c.Seed)
	timeout := time.Duration(c.AttemptTimeout * float64(c.MaxAttempts) * float64(time.Second))
	specs := make([]BatchSpec, 0, c.Batches)
	for b := 1; b <= c.Batches; b++ {
		i := int(rng.next() % uint64(c.Nodes))
		r := int(rng.next() % uint64(c.Nodes-1))
		if r >= i {
			r++
		}
		specs = append(specs, BatchSpec{
			Batch:     b,
			Initiator: overlay.NodeID(i),
			Responder: overlay.NodeID(r),
			Conns:     c.Conns,
			Budget:    c.Budget,
			Timeout:   timeout,
		})
	}
	return specs
}

// FaultBoundary maps a node fault's virtual time onto the batch
// boundary it applies before: the cluster runs on barriers, not a
// virtual clock, so At is folded onto 1..Batches deterministically.
// Only crash and restart faults are honored by the orchestrator;
// message and settlement faults remain single-process faultsim tools.
func (c Composition) FaultBoundary(f faultsim.Fault) int {
	return 1 + int(f.At)%c.Batches
}

// BoundaryFaults returns the crash/restart faults applying before
// batch b, in schedule order.
func (c Composition) BoundaryFaults(b int) []faultsim.Fault {
	var out []faultsim.Fault
	for _, f := range c.Faults {
		if f.Kind != faultsim.FaultCrash && f.Kind != faultsim.FaultRestart {
			continue
		}
		if c.FaultBoundary(f) == b {
			out = append(out, f)
		}
	}
	return out
}

// LoadComposition reads and validates a composition JSON file.
func LoadComposition(path string) (Composition, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Composition{}, err
	}
	var c Composition
	if err := json.Unmarshal(data, &c); err != nil {
		return Composition{}, fmt.Errorf("clusterd: parsing %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return Composition{}, err
	}
	return c, nil
}

// SaveComposition writes the composition as indented JSON.
func SaveComposition(path string, c Composition) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// wlRNG is the workload's splitmix64 stream, independent of both the
// faultsim world RNG and the plan generator.
type wlRNG struct{ x uint64 }

func newWlRNG(seed uint64) *wlRNG { return &wlRNG{x: seed ^ 0x9e3779b97f4a7c15} }

func (r *wlRNG) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RingRouter is the cluster's deterministic churn-aware router: the
// world's nodes form a ring by id, the next hop is the first live
// non-initiator node clockwise of self, and the message is delivered
// when that node is the responder. Every process derives the same
// routing decision from the same liveness knowledge, which keeps
// fault-free runs byte-identical across processes while still routing
// around corpses learned through MarkDead.
type RingRouter struct {
	n    int
	mu   sync.Mutex
	dead map[overlay.NodeID]bool
}

// NewRingRouter builds the router for a ring of n nodes.
func NewRingRouter(n int) *RingRouter {
	return &RingRouter{n: n, dead: make(map[overlay.NodeID]bool)}
}

// NextHop implements transport.Router.
func (r *RingRouter) NextHop(self, pred, initiator, responder overlay.NodeID, batch, conn, remaining int) (overlay.NodeID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for step := 1; step <= r.n; step++ {
		cand := overlay.NodeID((int(self) + step) % r.n)
		if cand == responder {
			return responder, true
		}
		if cand == self || cand == initiator || r.dead[cand] {
			continue
		}
		return cand, false
	}
	return responder, true
}

// MarkDead implements transport.ChurnAware.
func (r *RingRouter) MarkDead(id overlay.NodeID) {
	r.mu.Lock()
	r.dead[id] = true
	r.mu.Unlock()
}

// MarkLive implements transport.ChurnAware.
func (r *RingRouter) MarkLive(id overlay.NodeID) {
	r.mu.Lock()
	delete(r.dead, id)
	r.mu.Unlock()
}

// sortedAddrEntries renders a directory map canonically for the wire.
func sortedAddrEntries(m map[int]string) []AddrEntry {
	out := make([]AddrEntry, 0, len(m))
	for n, a := range m {
		out = append(out, AddrEntry{Node: n, Addr: a})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
