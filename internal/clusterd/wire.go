// Package clusterd is the multi-process cluster orchestrator: it
// launches real node processes from a declarative composition (the
// faultsim Plan schema plus a worker count and link-shaping rules),
// coordinates batch start/settle across them with a small length-
// prefixed sync/barrier protocol, shapes per-link behavior at
// orchestrator-run relays, and collects every process's span log and
// telemetry snapshot into one causally merged run artifact. The data
// plane is internal/netwire unchanged — each worker hosts a subset of
// the world's nodes in its own netwire.Cluster and reaches remote
// peers through dial-back addresses the orchestrator broadcasts.
package clusterd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Control-protocol constants. The codec follows the netwire frame
// discipline: a 4-byte big-endian length prefix, then a body of
// version byte, kind byte, and a canonical payload. Canonical means
// decode∘encode is the identity on every valid body: fixed field
// order, minimal lengths, strictly ascending entry lists, no trailing
// bytes — the property FuzzBarrierWire pins.
const (
	WireVersion = 1

	maxBody         = 1 << 22 // absolute body bound (artifact uploads)
	maxName         = 128     // barrier names
	maxFaultKind    = 32
	maxArtifactKind = 32
	maxText         = 4096 // error messages
	maxAddr         = 256  // dial-back addresses
	maxEntries      = 1 << 16
	maxComp         = 1 << 20 // composition JSON
)

// MsgKind enumerates the control-protocol messages.
type MsgKind byte

const (
	// MsgHello introduces a worker to the orchestrator (worker index).
	MsgHello MsgKind = 1 + iota
	// MsgConfig carries the composition JSON and this worker's identity.
	// The node assignment is derived from (worker, workers) by both
	// sides, so it never travels.
	MsgConfig
	// MsgAddrs carries a node→address directory fragment: a worker's
	// dial-back addresses after joining its nodes, or the orchestrator's
	// merged (possibly relay-shaped) view broadcast to every worker.
	MsgAddrs
	// MsgSignal is a worker's arrival at a named barrier.
	MsgSignal
	// MsgRelease opens a named barrier once every live worker signalled.
	MsgRelease
	// MsgFault directs a node fault: "crash" kills the node at its owner
	// and marks it dead everywhere; "restart" re-joins it at its owner.
	MsgFault
	// MsgResult reports a settled batch from the initiator's owner: the
	// outcome's forwarder set with per-node forwards and payoff bits.
	MsgResult
	// MsgCollect asks a worker to confirm the expected settle credits
	// for its locally hosted nodes have landed.
	MsgCollect
	// MsgCredits is the worker's observed-credit reply to MsgCollect.
	MsgCredits
	// MsgArtifact uploads one run artifact (span JSONL, telemetry JSON,
	// debug log) from a worker during shutdown.
	MsgArtifact
	// MsgShutdown tells a worker to upload artifacts and exit.
	MsgShutdown
	// MsgError reports a fatal worker-side error to the orchestrator.
	MsgError

	msgEnd
)

// String names the kind for logs and errors.
func (k MsgKind) String() string {
	switch k {
	case MsgHello:
		return "hello"
	case MsgConfig:
		return "config"
	case MsgAddrs:
		return "addrs"
	case MsgSignal:
		return "signal"
	case MsgRelease:
		return "release"
	case MsgFault:
		return "fault"
	case MsgResult:
		return "result"
	case MsgCollect:
		return "collect"
	case MsgCredits:
		return "credits"
	case MsgArtifact:
		return "artifact"
	case MsgShutdown:
		return "shutdown"
	case MsgError:
		return "error"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Codec errors, in the netwire style: each names exactly one way a body
// can be malformed, so tests and the fuzzer can assert the right one.
var (
	ErrMsgShort      = errors.New("clusterd: message body too short")
	ErrMsgVersion    = errors.New("clusterd: unsupported protocol version")
	ErrMsgKind       = errors.New("clusterd: unknown message kind")
	ErrMsgOversized  = errors.New("clusterd: message exceeds its size cap")
	ErrMsgTrailing   = errors.New("clusterd: trailing bytes after message payload")
	ErrMsgField      = errors.New("clusterd: field too long or empty")
	ErrMsgOrder      = errors.New("clusterd: entry list not strictly ascending")
	ErrMsgEntryCount = errors.New("clusterd: entry count exceeds bound")
)

// AddrEntry is one directory line: a node and its dial-back address.
type AddrEntry struct {
	Node int
	Addr string
}

// CreditEntry is one settle line: a forwarder, its accepted forwarding
// count for the batch, and the exact payoff float bits it is owed (or
// was observed to receive). Bits, not floats, travel: settlement
// equality is bit equality.
type CreditEntry struct {
	Node       int
	Forwards   int
	PayoffBits uint64
}

// Payoff returns the payoff as a float64.
func (e CreditEntry) Payoff() float64 { return math.Float64frombits(e.PayoffBits) }

// Msg is one control-protocol message; which fields matter depends on
// Kind (see the MsgKind constants).
type Msg struct {
	Kind MsgKind

	Worker  int // hello, config
	Workers int // config

	Comp []byte // config: composition JSON

	Addrs []AddrEntry // addrs: strictly ascending by Node

	Name string // signal, release: barrier name

	Fault string // fault: "crash" | "restart"
	Node  int    // fault

	Batch                         int  // result, collect, credits; fault boundary
	Initiator, Responder, SetSize int  // result
	Failed                        bool // result
	Credits                       []CreditEntry
	ArtifactKind                  string // artifact
	Data                          []byte // artifact
	Text                          string // error
}

// bodyCap bounds a kind's body size before allocation, like netwire's
// BodyCap: fixed-layout kinds get exact caps, variable kinds the global
// bound.
func bodyCap(k MsgKind) int {
	switch k {
	case MsgHello:
		return 2 + 4
	case MsgShutdown:
		return 2
	case MsgSignal, MsgRelease:
		return 2 + 2 + maxName
	case MsgFault:
		return 2 + 2 + maxFaultKind + 4 + 4
	case MsgError:
		return 2 + 2 + maxText
	case MsgConfig, MsgAddrs, MsgResult, MsgCollect, MsgCredits, MsgArtifact:
		return maxBody
	default:
		return 0
	}
}

// appendString appends a u16 length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// appendBytes appends a u32 length-prefixed byte field.
func appendBytes(b []byte, p []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

// EncodeMsg renders the canonical body (version, kind, payload) for m.
// It validates the same bounds DecodeMsg enforces, so every encodable
// message round-trips.
func EncodeMsg(m *Msg) ([]byte, error) {
	b := make([]byte, 0, 64)
	b = append(b, WireVersion, byte(m.Kind))
	switch m.Kind {
	case MsgHello:
		if m.Worker < 0 {
			return nil, ErrMsgField
		}
		b = binary.BigEndian.AppendUint32(b, uint32(m.Worker))
	case MsgConfig:
		if m.Worker < 0 || m.Workers < 1 || len(m.Comp) == 0 || len(m.Comp) > maxComp {
			return nil, ErrMsgField
		}
		b = binary.BigEndian.AppendUint32(b, uint32(m.Worker))
		b = binary.BigEndian.AppendUint32(b, uint32(m.Workers))
		b = appendBytes(b, m.Comp)
	case MsgAddrs:
		if len(m.Addrs) > maxEntries {
			return nil, ErrMsgEntryCount
		}
		b = binary.BigEndian.AppendUint32(b, uint32(len(m.Addrs)))
		prev := -1
		for _, e := range m.Addrs {
			if e.Node < 0 || e.Node <= prev {
				return nil, ErrMsgOrder
			}
			if len(e.Addr) == 0 || len(e.Addr) > maxAddr {
				return nil, ErrMsgField
			}
			prev = e.Node
			b = binary.BigEndian.AppendUint32(b, uint32(e.Node))
			b = appendString(b, e.Addr)
		}
	case MsgSignal, MsgRelease:
		if len(m.Name) == 0 || len(m.Name) > maxName {
			return nil, ErrMsgField
		}
		b = appendString(b, m.Name)
	case MsgFault:
		if len(m.Fault) == 0 || len(m.Fault) > maxFaultKind || m.Node < 0 || m.Batch < 0 {
			return nil, ErrMsgField
		}
		b = appendString(b, m.Fault)
		b = binary.BigEndian.AppendUint32(b, uint32(m.Node))
		b = binary.BigEndian.AppendUint32(b, uint32(m.Batch))
	case MsgResult:
		if m.Batch < 0 || m.Initiator < 0 || m.Responder < 0 || m.SetSize < 0 {
			return nil, ErrMsgField
		}
		b = binary.BigEndian.AppendUint32(b, uint32(m.Batch))
		b = binary.BigEndian.AppendUint32(b, uint32(m.Initiator))
		b = binary.BigEndian.AppendUint32(b, uint32(m.Responder))
		b = binary.BigEndian.AppendUint32(b, uint32(m.SetSize))
		if m.Failed {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		var err error
		if b, err = appendCredits(b, m.Credits); err != nil {
			return nil, err
		}
	case MsgCollect, MsgCredits:
		if m.Batch < 0 {
			return nil, ErrMsgField
		}
		b = binary.BigEndian.AppendUint32(b, uint32(m.Batch))
		var err error
		if b, err = appendCredits(b, m.Credits); err != nil {
			return nil, err
		}
	case MsgArtifact:
		if len(m.ArtifactKind) == 0 || len(m.ArtifactKind) > maxArtifactKind {
			return nil, ErrMsgField
		}
		b = appendString(b, m.ArtifactKind)
		b = appendBytes(b, m.Data)
	case MsgShutdown:
	case MsgError:
		if len(m.Text) == 0 || len(m.Text) > maxText {
			return nil, ErrMsgField
		}
		b = appendString(b, m.Text)
	default:
		return nil, ErrMsgKind
	}
	if len(b) > bodyCap(m.Kind) || len(b) > maxBody {
		return nil, ErrMsgOversized
	}
	return b, nil
}

func appendCredits(b []byte, entries []CreditEntry) ([]byte, error) {
	if len(entries) > maxEntries {
		return nil, ErrMsgEntryCount
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(entries)))
	prev := -1
	for _, e := range entries {
		if e.Node < 0 || e.Node <= prev {
			return nil, ErrMsgOrder
		}
		if e.Forwards < 0 {
			return nil, ErrMsgField
		}
		prev = e.Node
		b = binary.BigEndian.AppendUint32(b, uint32(e.Node))
		b = binary.BigEndian.AppendUint32(b, uint32(e.Forwards))
		b = binary.BigEndian.AppendUint64(b, e.PayoffBits)
	}
	return b, nil
}

// decoder walks a body with bounds checks.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) u8() (byte, error) {
	if d.off+1 > len(d.b) {
		return 0, ErrMsgShort
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.b) {
		return 0, ErrMsgShort
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.b) {
		return 0, ErrMsgShort
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) str(max int) (string, error) {
	if d.off+2 > len(d.b) {
		return "", ErrMsgShort
	}
	n := int(binary.BigEndian.Uint16(d.b[d.off:]))
	d.off += 2
	if n > max {
		return "", ErrMsgField
	}
	if d.off+n > len(d.b) {
		return "", ErrMsgShort
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s, nil
}

func (d *decoder) bytes(max int) ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > max {
		return nil, ErrMsgField
	}
	if d.off+int(n) > len(d.b) {
		return nil, ErrMsgShort
	}
	p := append([]byte(nil), d.b[d.off:d.off+int(n)]...)
	d.off += int(n)
	return p, nil
}

func (d *decoder) credits() ([]CreditEntry, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > maxEntries {
		return nil, ErrMsgEntryCount
	}
	if d.off+int(n)*16 > len(d.b) {
		return nil, ErrMsgShort
	}
	entries := make([]CreditEntry, 0, n)
	prev := -1
	for i := 0; i < int(n); i++ {
		node, _ := d.u32()
		fwd, _ := d.u32()
		bits, _ := d.u64()
		if int(node) <= prev {
			return nil, ErrMsgOrder
		}
		prev = int(node)
		entries = append(entries, CreditEntry{Node: int(node), Forwards: int(fwd), PayoffBits: bits})
	}
	return entries, nil
}

// DecodeMsg parses one canonical body. Every violation of the canonical
// form — wrong version, unknown kind, short or trailing bytes, overlong
// or empty fields, unsorted entries — is an error, never a guess.
func DecodeMsg(body []byte) (*Msg, error) {
	if len(body) < 2 {
		return nil, ErrMsgShort
	}
	if body[0] != WireVersion {
		return nil, ErrMsgVersion
	}
	k := MsgKind(body[1])
	if k == 0 || k >= msgEnd {
		return nil, ErrMsgKind
	}
	if len(body) > bodyCap(k) {
		return nil, ErrMsgOversized
	}
	d := &decoder{b: body, off: 2}
	m := &Msg{Kind: k}
	var err error
	switch k {
	case MsgHello:
		var w uint32
		if w, err = d.u32(); err == nil {
			m.Worker = int(w)
		}
	case MsgConfig:
		var w, ws uint32
		if w, err = d.u32(); err != nil {
			break
		}
		if ws, err = d.u32(); err != nil {
			break
		}
		m.Worker, m.Workers = int(w), int(ws)
		if m.Workers < 1 {
			return nil, ErrMsgField
		}
		if m.Comp, err = d.bytes(maxComp); err == nil && len(m.Comp) == 0 {
			return nil, ErrMsgField
		}
	case MsgAddrs:
		var n uint32
		if n, err = d.u32(); err != nil {
			break
		}
		if int(n) > maxEntries {
			return nil, ErrMsgEntryCount
		}
		prev := -1
		for i := 0; i < int(n); i++ {
			var node uint32
			if node, err = d.u32(); err != nil {
				break
			}
			var addr string
			if addr, err = d.str(maxAddr); err != nil {
				break
			}
			if len(addr) == 0 {
				return nil, ErrMsgField
			}
			if int(node) <= prev {
				return nil, ErrMsgOrder
			}
			prev = int(node)
			m.Addrs = append(m.Addrs, AddrEntry{Node: int(node), Addr: addr})
		}
	case MsgSignal, MsgRelease:
		if m.Name, err = d.str(maxName); err == nil && len(m.Name) == 0 {
			return nil, ErrMsgField
		}
	case MsgFault:
		if m.Fault, err = d.str(maxFaultKind); err != nil {
			break
		}
		if len(m.Fault) == 0 {
			return nil, ErrMsgField
		}
		var node, batch uint32
		if node, err = d.u32(); err != nil {
			break
		}
		if batch, err = d.u32(); err != nil {
			break
		}
		m.Node, m.Batch = int(node), int(batch)
	case MsgResult:
		var b, i2, r, s uint32
		if b, err = d.u32(); err != nil {
			break
		}
		if i2, err = d.u32(); err != nil {
			break
		}
		if r, err = d.u32(); err != nil {
			break
		}
		if s, err = d.u32(); err != nil {
			break
		}
		var f byte
		if f, err = d.u8(); err != nil {
			break
		}
		if f > 1 {
			return nil, ErrMsgField
		}
		m.Batch, m.Initiator, m.Responder, m.SetSize, m.Failed = int(b), int(i2), int(r), int(s), f == 1
		m.Credits, err = d.credits()
	case MsgCollect, MsgCredits:
		var b uint32
		if b, err = d.u32(); err != nil {
			break
		}
		m.Batch = int(b)
		m.Credits, err = d.credits()
	case MsgArtifact:
		if m.ArtifactKind, err = d.str(maxArtifactKind); err != nil {
			break
		}
		if len(m.ArtifactKind) == 0 {
			return nil, ErrMsgField
		}
		m.Data, err = d.bytes(maxBody)
	case MsgShutdown:
	case MsgError:
		if m.Text, err = d.str(maxText); err == nil && len(m.Text) == 0 {
			return nil, ErrMsgField
		}
	}
	if err != nil {
		return nil, err
	}
	if d.off != len(body) {
		return nil, ErrMsgTrailing
	}
	return m, nil
}

// WriteMsg frames and writes one message, returning bytes written.
func WriteMsg(w io.Writer, m *Msg) (int, error) {
	body, err := EncodeMsg(m)
	if err != nil {
		return 0, err
	}
	frame := make([]byte, 0, 4+len(body))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
	frame = append(frame, body...)
	return w.Write(frame)
}

// ReadMsg reads one length-prefixed message, enforcing the body cap
// before any body allocation. Returns the message and bytes consumed.
func ReadMsg(r io.Reader) (*Msg, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxBody {
		return nil, 4, ErrMsgOversized
	}
	if n < 2 {
		return nil, 4, ErrMsgShort
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 4, err
	}
	m, err := DecodeMsg(body)
	if err != nil {
		return nil, 4 + n, err
	}
	return m, 4 + n, nil
}
