package clusterd

import (
	"io"
	"net"
	"sync"
	"time"
)

// relay is one orchestrator-run link shaper: the shaped sender's
// directory entry points at the relay listener, and the relay applies
// the LinkShape before (or instead of) forwarding to the real target.
// Partition closes accepted connections immediately (the sender's
// handshake dies at once); Drop reads and discards forever without
// answering (the sender's handshake times out); Delay pipes both
// directions but holds each forward-path chunk back by the configured
// amount.
type relay struct {
	shape  LinkShape
	ln     net.Listener
	target func() (string, bool) // live lookup: restarts move the real addr

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

func newRelay(shape LinkShape, target func() (string, bool)) (*relay, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &relay{shape: shape, ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr is what the shaped sender's directory entry carries.
func (r *relay) Addr() string { return r.ln.Addr().String() }

func (r *relay) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		if r.shape.Partition {
			conn.Close()
			continue
		}
		if !r.track(conn) {
			conn.Close()
			return
		}
		r.wg.Add(1)
		go r.serve(conn)
	}
}

func (r *relay) track(conn net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.conns[conn] = struct{}{}
	return true
}

func (r *relay) untrack(conn net.Conn) {
	r.mu.Lock()
	delete(r.conns, conn)
	r.mu.Unlock()
}

func (r *relay) serve(src net.Conn) {
	defer r.wg.Done()
	defer r.untrack(src)
	defer src.Close()
	if r.shape.Drop {
		io.Copy(io.Discard, src)
		return
	}
	addr, ok := r.target()
	if !ok {
		return
	}
	dst, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return
	}
	if !r.track(dst) {
		dst.Close()
		return
	}
	defer r.untrack(dst)
	defer dst.Close()
	done := make(chan struct{}, 2)
	go func() { // reverse path (HelloAck): unshaped
		io.Copy(src, dst)
		done <- struct{}{}
	}()
	go func() { // forward path: per-chunk delay
		delay := time.Duration(r.shape.Delay * float64(time.Second))
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if delay > 0 {
					time.Sleep(delay)
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		done <- struct{}{}
	}()
	<-done // either side closing tears the pipe down
}

// Close stops the listener and every piped connection, then waits for
// the serving goroutines.
func (r *relay) Close() {
	r.mu.Lock()
	r.closed = true
	conns := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	r.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	r.wg.Wait()
}
