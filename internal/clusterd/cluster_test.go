package clusterd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"p2panon/internal/faultsim"
)

// TestMain doubles as the worker entry point: the orchestrator tests
// re-execute this test binary with CLUSTERD_WORKER_ADDR set, and the
// child runs the worker runtime instead of the test suite — real
// processes, no separate binary to build.
func TestMain(m *testing.M) {
	if addr := os.Getenv("CLUSTERD_WORKER_ADDR"); addr != "" {
		idx, err := strconv.Atoi(os.Getenv("CLUSTERD_WORKER_INDEX"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterd worker:", err)
			os.Exit(1)
		}
		if err := RunWorker(addr, idx); err != nil {
			fmt.Fprintln(os.Stderr, "clusterd worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// selfSpawn re-executes the running test binary as a worker process.
// Spawned commands are recorded so tests can assert they were reaped.
func selfSpawn(t *testing.T, spawned *[]*exec.Cmd) SpawnFunc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	return func(worker int, orchAddr string) (*exec.Cmd, error) {
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"CLUSTERD_WORKER_ADDR="+orchAddr,
			"CLUSTERD_WORKER_INDEX="+strconv.Itoa(worker),
		)
		if spawned != nil {
			mu.Lock()
			*spawned = append(*spawned, cmd)
			mu.Unlock()
		}
		return cmd, nil
	}
}

// artifactDir returns a run directory under $CLUSTERD_ARTIFACT_DIR
// when set (CI keeps and uploads it on failure), else a temp dir.
func artifactDir(t *testing.T, name string) string {
	t.Helper()
	root := os.Getenv("CLUSTERD_ARTIFACT_DIR")
	if root == "" {
		return t.TempDir()
	}
	dir := filepath.Join(root, t.Name(), name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return dir
}

// runComposition runs one composition end to end with self-exec
// workers and returns the result plus the spawned commands.
func runComposition(t *testing.T, comp Composition, dir string) (*RunResult, []*exec.Cmd) {
	t.Helper()
	var spawned []*exec.Cmd
	orch := &Orchestrator{Comp: comp, Spawn: selfSpawn(t, &spawned), Dir: dir, Logf: t.Logf}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := orch.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res, spawned
}

// TestClusterRunDeterministic runs the same fault-free composition
// twice across 3 real worker processes and requires byte-identical
// merged span artifacts — the cross-process determinism contract.
func TestClusterRunDeterministic(t *testing.T) {
	comp := Composition{
		Plan:    faultsim.Plan{Seed: 7, Nodes: 9, Batches: 3, Conns: 4},
		Workers: 3,
	}
	dirs := []string{artifactDir(t, "run1"), artifactDir(t, "run2")}
	var logs [][]byte
	for _, dir := range dirs {
		res, _ := runComposition(t, comp, dir)
		for _, b := range res.Batches {
			if b.Failed {
				t.Fatalf("batch %d failed in a fault-free run", b.Batch)
			}
		}
		if len(res.Violations) != 0 {
			t.Fatalf("violations: %v", res.Violations)
		}
		if len(res.Spans) == 0 {
			t.Fatal("no spans collected")
		}
		log, err := os.ReadFile(filepath.Join(dir, "spans.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, log)
	}
	if !bytes.Equal(logs[0], logs[1]) {
		t.Fatalf("merged span logs diverge across runs:\nrun 1: %d bytes\nrun 2: %d bytes", len(logs[0]), len(logs[1]))
	}
}

// TestClusterSoakChurn is the seeded soak smoke: a 3-process cluster
// runs a composition whose schedule crashes a forwarder at one batch
// boundary and restarts it at the next, all invariants must hold over
// the merged artifact, the orchestrator must leak no goroutines, and
// every child process must be reaped by the time Run returns.
func TestClusterSoakChurn(t *testing.T) {
	comp := Composition{
		Plan:    faultsim.Plan{Seed: 11, Nodes: 9, Batches: 4, Conns: 3},
		Workers: 3,
	}
	comp = comp.Normalize()
	// Crash a node that is never an initiator or responder, so routing
	// must reform around the corpse but every batch can still settle.
	victim := -1
	pairs := make(map[int]bool)
	for _, spec := range comp.Workload() {
		pairs[int(spec.Initiator)] = true
		pairs[int(spec.Responder)] = true
	}
	for n := 0; n < comp.Nodes; n++ {
		if !pairs[n] {
			victim = n
			break
		}
	}
	if victim < 0 {
		t.Fatal("no forwarder-only node under this seed; pick another")
	}
	comp.Faults = []faultsim.Fault{
		{Kind: faultsim.FaultCrash, At: 1, Node: victim},   // boundary 2
		{Kind: faultsim.FaultRestart, At: 2, Node: victim}, // boundary 3
	}

	before := runtime.NumGoroutine()
	res, spawned := runComposition(t, comp, artifactDir(t, "soak"))

	if len(spawned) != comp.Workers {
		t.Fatalf("spawned %d workers, want %d", len(spawned), comp.Workers)
	}
	for i, cmd := range spawned {
		if cmd.ProcessState == nil {
			t.Fatalf("worker %d not reaped", i)
		}
	}
	if len(res.Batches) != comp.Batches {
		t.Fatalf("got %d batch results, want %d", len(res.Batches), comp.Batches)
	}
	for _, b := range res.Batches {
		if b.Failed {
			t.Errorf("batch %d (%d→%d) failed under churn", b.Batch, b.Initiator, b.Responder)
		}
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if res.Dropped != 0 {
		t.Fatalf("%d spans dropped", res.Dropped)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines before=%d after=%d; dump:\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterOrphansExitWhenOrchestratorDies pins the self-reaping
// property: a worker whose control connection dies exits on its own,
// with no orchestrator left to kill it.
func TestClusterOrphansExitWhenOrchestratorDies(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var spawned []*exec.Cmd
	spawn := selfSpawn(t, &spawned)
	cmd, err := spawn(0, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if m, _, err := ReadMsg(conn); err != nil || m.Kind != MsgHello {
		t.Fatalf("hello: %v", err)
	}
	// The orchestrator "crashes": the control connection just dies.
	conn.Close()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
		// Exited on its own — exit status does not matter, only that it
		// did not linger.
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		<-done
		t.Fatal("worker outlived its orchestrator")
	}
}

// TestRelayShapes pins the three link-shaping behaviors at the socket
// level: partitioned links die on contact, dropped links never answer,
// delayed links deliver late but intact.
func TestRelayShapes(t *testing.T) {
	// Echo target.
	target, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	go func() {
		for {
			c, err := target.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 256)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						c.Write(buf[:n])
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()
	addr := func() (string, bool) { return target.Addr().String(), true }

	t.Run("partition", func(t *testing.T) {
		r, err := newRelay(LinkShape{Partition: true}, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		conn, err := net.Dial("tcp", r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("partitioned link answered")
		}
	})
	t.Run("drop", func(t *testing.T) {
		r, err := newRelay(LinkShape{Drop: true}, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		conn, err := net.Dial("tcp", r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("hello?")); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("dropped link answered")
		}
	})
	t.Run("delay", func(t *testing.T) {
		r, err := newRelay(LinkShape{Delay: 0.15}, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		conn, err := net.Dial("tcp", r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		start := time.Now()
		if _, err := conn.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(buf); err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
			t.Fatalf("delayed link echoed in %v", elapsed)
		}
		if string(buf) != "ping" {
			t.Fatalf("payload corrupted: %q", buf)
		}
	})
}

// TestCompositionWorkload pins the derived schedule: a pure function
// of the composition, identically derived by every process.
func TestCompositionWorkload(t *testing.T) {
	comp := Composition{Plan: faultsim.Plan{Seed: 7, Nodes: 9, Batches: 5}}.Normalize()
	a, b := comp.Workload(), comp.Workload()
	if len(a) != 5 {
		t.Fatalf("%d specs, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("workload not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Initiator == a[i].Responder {
			t.Fatalf("spec %d: initiator = responder = %d", i, a[i].Initiator)
		}
		if a[i].Batch != i+1 {
			t.Fatalf("spec %d: batch %d", i, a[i].Batch)
		}
	}
	other := Composition{Plan: faultsim.Plan{Seed: 8, Nodes: 9, Batches: 5}}.Normalize().Workload()
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds derived identical schedules")
	}
}

// TestCompositionOwnership pins the node partition: every node has
// exactly one owner, and AssignedNodes inverts Owner.
func TestCompositionOwnership(t *testing.T) {
	comp := Composition{Plan: faultsim.Plan{Nodes: 10}, Workers: 3}.Normalize()
	seen := make(map[int]int)
	for w := 0; w < comp.Workers; w++ {
		for _, n := range comp.AssignedNodes(w) {
			if comp.Owner(n) != w {
				t.Fatalf("node %d assigned to %d but owned by %d", n, w, comp.Owner(n))
			}
			seen[n]++
		}
	}
	if len(seen) != comp.Nodes {
		t.Fatalf("assignment covers %d nodes, want %d", len(seen), comp.Nodes)
	}
	for n, c := range seen {
		if c != 1 {
			t.Fatalf("node %d assigned %d times", n, c)
		}
	}
}

// TestCompositionValidate pins the configuration errors.
func TestCompositionValidate(t *testing.T) {
	base := faultsim.Plan{Nodes: 6}
	cases := []struct {
		name string
		comp Composition
		ok   bool
	}{
		{"defaults", Composition{Plan: base}, true},
		{"too many workers", Composition{Plan: base, Workers: 65}, false},
		{"link out of range", Composition{Plan: base, Links: []LinkShape{{From: 0, To: 99}}}, false},
		{"self loop", Composition{Plan: base, Links: []LinkShape{{From: 2, To: 2}}}, false},
		{"negative delay", Composition{Plan: base, Links: []LinkShape{{From: 0, To: 1, Delay: -1}}}, false},
		{"conflicting shapes", Composition{Plan: base, Workers: 3, Links: []LinkShape{
			{From: 0, To: 1, Drop: true}, {From: 3, To: 1, Partition: true}, // both from worker 0
		}}, false},
		{"shaped link", Composition{Plan: base, Links: []LinkShape{{From: 0, To: 1, Drop: true}}}, true},
	}
	for _, tc := range cases {
		err := tc.comp.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: error expected", tc.name)
		}
	}
}

// TestCompositionJSONRoundTrip pins the declarative schema: the plan
// fields inline beside workers/links, and load validates.
func TestCompositionJSONRoundTrip(t *testing.T) {
	comp := Composition{
		Plan:    faultsim.Plan{Seed: 3, Nodes: 6, Batches: 2},
		Workers: 3,
		Links:   []LinkShape{{From: 0, To: 1, Delay: 0.05}},
	}
	path := filepath.Join(t.TempDir(), "comp.json")
	if err := SaveComposition(path, comp); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var flat map[string]any
	if err := json.Unmarshal(data, &flat); err != nil {
		t.Fatal(err)
	}
	if _, nested := flat["Plan"]; nested {
		t.Fatal("plan fields not inlined in composition JSON")
	}
	if flat["seed"] != float64(3) || flat["workers"] != float64(3) {
		t.Fatalf("schema fields missing: %v", flat)
	}
	got, err := LoadComposition(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != comp.Seed || got.Workers != comp.Workers || len(got.Links) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
}

// TestRingRouterWalk pins the deterministic ring walk and its churn
// response.
func TestRingRouterWalk(t *testing.T) {
	r := NewRingRouter(6)
	// From 0 toward responder 3: next clockwise non-self hop is 1.
	if hop, deliver := r.NextHop(0, 0, 0, 3, 1, 1, 6); deliver || hop != 1 {
		t.Fatalf("hop=%d deliver=%v", hop, deliver)
	}
	r.MarkDead(1)
	if hop, deliver := r.NextHop(0, 0, 0, 3, 1, 1, 6); deliver || hop != 2 {
		t.Fatalf("around corpse: hop=%d deliver=%v", hop, deliver)
	}
	// From 2, responder 3 is adjacent: deliver.
	if hop, deliver := r.NextHop(2, 0, 0, 3, 1, 1, 6); !deliver || hop != 3 {
		t.Fatalf("delivery: hop=%d deliver=%v", hop, deliver)
	}
	r.MarkLive(1)
	if hop, deliver := r.NextHop(0, 0, 0, 3, 1, 1, 6); deliver || hop != 1 {
		t.Fatalf("revived: hop=%d deliver=%v", hop, deliver)
	}
}

// TestFaultBoundary pins the fold from virtual fault times onto batch
// boundaries and the crash/restart filter.
func TestFaultBoundary(t *testing.T) {
	comp := Composition{Plan: faultsim.Plan{Nodes: 6, Batches: 4, Faults: []faultsim.Fault{
		{Kind: faultsim.FaultCrash, At: 1, Node: 2},
		{Kind: faultsim.FaultRestart, At: 2, Node: 2},
		{Kind: faultsim.FaultDrop, Batch: 2, Conn: 1, Msg: 1}, // sim-only: ignored
		{Kind: faultsim.FaultCrash, At: 5, Node: 3},           // 1 + 5%4 = 2
	}}}.Normalize()
	if fs := comp.BoundaryFaults(2); len(fs) != 2 || fs[0].Node != 2 || fs[1].Node != 3 {
		t.Fatalf("boundary 2: %+v", fs)
	}
	if fs := comp.BoundaryFaults(3); len(fs) != 1 || fs[0].Kind != faultsim.FaultRestart {
		t.Fatalf("boundary 3: %+v", fs)
	}
	if fs := comp.BoundaryFaults(1); len(fs) != 0 {
		t.Fatalf("boundary 1: %+v", fs)
	}
}
