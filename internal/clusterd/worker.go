package clusterd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"sort"
	"strconv"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/faultsim"
	"p2panon/internal/netwire"
	"p2panon/internal/overlay"
	"p2panon/internal/telemetry"
	"p2panon/internal/transport"
)

// worker is one cluster process: a netwire runtime hosting its share of
// the world's nodes, driven entirely by the orchestrator's control
// connection. The control connection is also the worker's lifeline —
// when it dies, the worker exits, so a crashed orchestrator leaves no
// orphans behind.
type worker struct {
	conn    net.Conn
	index   int
	comp    Composition
	cluster *netwire.Cluster
	router  *RingRouter
	rec     *telemetry.SpanRecorder
	specs   []BatchSpec
	local   map[int]bool
	lastTo  map[int]string // last directory addr seen per remote node
	ready   bool
}

// RunWorker connects to the orchestrator at orchAddr as worker index
// and serves the control protocol until shutdown (clean exit) or the
// connection dies.
func RunWorker(orchAddr string, index int) error {
	conn, err := net.DialTimeout("tcp", orchAddr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("clusterd: worker %d: dial orchestrator: %w", index, err)
	}
	defer conn.Close()
	w := &worker{conn: conn, index: index, local: make(map[int]bool), lastTo: make(map[int]string)}
	if err := w.send(&Msg{Kind: MsgHello, Worker: index}); err != nil {
		return err
	}
	err = w.serve()
	if w.cluster != nil {
		w.cluster.Close()
	}
	if err != nil {
		// Best effort: tell the orchestrator why before dying.
		text := err.Error()
		if len(text) > maxText {
			text = text[:maxText]
		}
		w.send(&Msg{Kind: MsgError, Text: text})
	}
	return err
}

func (w *worker) send(m *Msg) error {
	_, err := WriteMsg(w.conn, m)
	return err
}

func (w *worker) recv() (*Msg, error) {
	m, _, err := ReadMsg(w.conn)
	return m, err
}

func (w *worker) serve() error {
	m, err := w.recv()
	if err != nil {
		return err
	}
	if m.Kind != MsgConfig || m.Worker != w.index {
		return fmt.Errorf("clusterd: worker %d: bad config message", w.index)
	}
	var comp Composition
	if err := json.Unmarshal(m.Comp, &comp); err != nil {
		return fmt.Errorf("clusterd: worker %d: composition: %w", w.index, err)
	}
	w.comp = comp.Normalize()
	w.specs = w.comp.Workload()

	w.cluster = netwire.NewCluster(netwire.Config{
		Latency: time.Duration(w.comp.Latency * float64(time.Second)),
	})
	w.cluster.SetRetry(w.comp.Retry())
	w.rec = telemetry.NewSpanRecorder(w.comp.TraceCap)
	w.rec.SetSeed(int64(w.comp.Seed))
	w.cluster.SetSpans(w.rec)
	w.router = NewRingRouter(w.comp.Nodes)

	addrs := make(map[int]string)
	for _, n := range w.comp.AssignedNodes(w.index) {
		if err := w.cluster.Join(overlay.NodeID(n), w.router); err != nil {
			return err
		}
		w.local[n] = true
		addrs[n] = w.cluster.Node(overlay.NodeID(n)).Addr()
	}
	if err := w.send(&Msg{Kind: MsgAddrs, Addrs: sortedAddrEntries(addrs)}); err != nil {
		return err
	}

	for {
		m, err := w.recv()
		if err != nil {
			return err
		}
		switch m.Kind {
		case MsgAddrs:
			w.applyAddrs(m)
			// The first directory broadcast doubles as the go-ahead to
			// report readiness; later broadcasts are restart updates.
			if !w.ready {
				w.ready = true
				if err := w.send(&Msg{Kind: MsgSignal, Name: "ready"}); err != nil {
					return err
				}
			}
		case MsgFault:
			if err := w.applyFault(m); err != nil {
				return err
			}
		case MsgRelease:
			var b int
			if n, _ := fmt.Sscanf(m.Name, "start-%d", &b); n == 1 {
				if b < 1 || b > len(w.specs) {
					return fmt.Errorf("clusterd: worker %d: release for batch %d of %d", w.index, b, len(w.specs))
				}
				if err := w.runBatch(w.specs[b-1]); err != nil {
					return err
				}
			}
		case MsgCollect:
			if err := w.collect(m); err != nil {
				return err
			}
		case MsgShutdown:
			return w.upload()
		default:
			return fmt.Errorf("clusterd: worker %d: unexpected %s", w.index, m.Kind)
		}
	}
}

// applyAddrs folds a directory broadcast in: remote nodes are
// registered for dial-back, and a node whose address changed (a
// restart moved its listener) is marked live again.
func (w *worker) applyAddrs(m *Msg) {
	for _, e := range m.Addrs {
		if w.local[e.Node] {
			continue
		}
		if w.lastTo[e.Node] == e.Addr {
			continue
		}
		first := w.lastTo[e.Node] == ""
		w.lastTo[e.Node] = e.Addr
		w.cluster.RegisterPeer(overlay.NodeID(e.Node), e.Addr)
		if !first {
			w.cluster.NoteLive(overlay.NodeID(e.Node))
		}
	}
}

// applyFault executes one boundary fault. Crashes kill the node at its
// owner and mark it dead on every worker; restarts re-join it at its
// owner (which reports the new address back) and mark it live
// everywhere — the address broadcast that follows lands before the
// next batch's release on every control connection.
func (w *worker) applyFault(m *Msg) error {
	id := overlay.NodeID(m.Node)
	switch m.Fault {
	case faultsim.FaultCrash:
		if w.local[m.Node] {
			w.cluster.RemovePeer(id)
		}
		w.cluster.NoteDead(id)
	case faultsim.FaultRestart:
		if w.local[m.Node] {
			if w.cluster.Node(id) == nil {
				if err := w.cluster.Join(id, w.router); err != nil {
					return err
				}
			}
			w.cluster.NoteLive(id)
			return w.send(&Msg{Kind: MsgAddrs, Addrs: []AddrEntry{
				{Node: m.Node, Addr: w.cluster.Node(id).Addr()},
			}})
		}
		w.cluster.NoteLive(id)
	default:
		return fmt.Errorf("clusterd: worker %d: unsupported fault %q", w.index, m.Fault)
	}
	return nil
}

// runBatch runs and settles one batch if this worker owns its
// initiator, then reports the outcome.
func (w *worker) runBatch(spec BatchSpec) error {
	if w.comp.Owner(int(spec.Initiator)) != w.index {
		return nil
	}
	res := &Msg{
		Kind: MsgResult, Batch: spec.Batch,
		Initiator: int(spec.Initiator), Responder: int(spec.Responder),
	}
	out, err := w.cluster.RunBatch(spec.Initiator, spec.Responder, spec.Batch, spec.Conns, spec.Budget, spec.Timeout)
	if err != nil {
		res.Failed = true
		return w.send(res)
	}
	contract := core.Contract{Pf: float64(w.comp.Pf), Pr: float64(w.comp.Pr)}
	if _, err := w.cluster.SettleBatch(spec.Initiator, spec.Batch, out, contract); err != nil {
		res.Failed = true
		return w.send(res)
	}
	res.SetSize = out.SetSize()
	res.Credits = creditEntries(out, contract)
	return w.send(res)
}

// creditEntries renders the outcome's owed credits canonically.
func creditEntries(out *transport.BatchOutcome, contract core.Contract) []CreditEntry {
	ids := make([]overlay.NodeID, 0, len(out.Set))
	for id := range out.Set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	entries := make([]CreditEntry, 0, len(ids))
	for _, id := range ids {
		entries = append(entries, CreditEntry{
			Node:       int(id),
			Forwards:   out.Forwards[id],
			PayoffBits: math.Float64bits(out.Payoff(id, contract)),
		})
	}
	return entries
}

// collect polls the expected settle credits for this worker's nodes
// until they all landed (settle frames are asynchronous), reports the
// observed credits, and signals the batch's done barrier.
func (w *worker) collect(m *Msg) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		landed := true
		for _, e := range m.Credits {
			nd := w.cluster.Node(overlay.NodeID(e.Node))
			if nd == nil || math.Float64bits(nd.Credited(m.Batch)) != e.PayoffBits {
				landed = false
				break
			}
		}
		if landed || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	var obs []CreditEntry
	locals := make([]int, 0, len(w.local))
	for n := range w.local {
		locals = append(locals, n)
	}
	sort.Ints(locals)
	for _, n := range locals {
		nd := w.cluster.Node(overlay.NodeID(n))
		if nd == nil {
			continue
		}
		if c := nd.Credited(m.Batch); c != 0 {
			obs = append(obs, CreditEntry{
				Node: n, Forwards: nd.Forwards(m.Batch), PayoffBits: math.Float64bits(c),
			})
		}
	}
	if err := w.send(&Msg{Kind: MsgCredits, Batch: m.Batch, Credits: obs}); err != nil {
		return err
	}
	return w.send(&Msg{Kind: MsgSignal, Name: fmt.Sprintf("done-%d", m.Batch)})
}

// upload ships the span log and telemetry snapshot, then reports how
// many spans the recorder had to drop (only when nonzero).
func (w *worker) upload() error {
	var spans bytes.Buffer
	if err := w.rec.WriteJSONL(&spans); err != nil {
		return err
	}
	if err := w.send(&Msg{Kind: MsgArtifact, ArtifactKind: "spans", Data: spans.Bytes()}); err != nil {
		return err
	}
	var tel bytes.Buffer
	if err := w.cluster.Telemetry().WriteJSON(&tel); err != nil {
		return err
	}
	if err := w.send(&Msg{Kind: MsgArtifact, ArtifactKind: "telemetry", Data: tel.Bytes()}); err != nil {
		return err
	}
	if d := w.rec.Dropped(); d > 0 {
		data := []byte(strconv.FormatUint(d, 10))
		if err := w.send(&Msg{Kind: MsgArtifact, ArtifactKind: "dropped", Data: data}); err != nil {
			return err
		}
	}
	return nil
}
