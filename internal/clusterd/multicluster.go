package clusterd

import (
	"fmt"
	"sync"
	"time"

	"p2panon/internal/core"
	"p2panon/internal/netwire"
	"p2panon/internal/onion"
	"p2panon/internal/overlay"
	"p2panon/internal/telemetry"
	"p2panon/internal/trace"
	"p2panon/internal/transport"
	"p2panon/internal/vclock"
)

// MultiCluster is a world of nodes partitioned across several distinct
// netwire runtimes: node id modulo the part count picks the hosting
// Cluster, every other part learns the node through dial-back address
// registration, and frames between parts cross real TCP between
// separate listener/link runtimes — the in-process model of the
// multi-process cluster (clusterd workers run exactly one part each).
// It implements transport.Conductor plus the conformance suite's
// optional surfaces, so the partitioned topology runs the same
// behavioral table as the single-runtime backends and must produce
// byte-identical transcripts and span logs.
type MultiCluster struct {
	parts []*netwire.Cluster

	mu    sync.RWMutex
	owner map[overlay.NodeID]int
}

// NewMultiCluster builds n empty parts sharing one metrics registry —
// the shared registry deduplicates instruments by name, so the counter
// snapshot aggregates across parts exactly like a single cluster's.
func NewMultiCluster(n int, cfg netwire.Config) *MultiCluster {
	if n < 1 {
		n = 1
	}
	reg := telemetry.NewRegistry()
	m := &MultiCluster{owner: make(map[overlay.NodeID]int)}
	for i := 0; i < n; i++ {
		c := netwire.NewCluster(cfg)
		c.Instrument(reg, nil)
		m.parts = append(m.parts, c)
	}
	return m
}

// partOf returns the part hosting (or designated to host) id.
func (m *MultiCluster) partOf(id overlay.NodeID) *netwire.Cluster {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if p, ok := m.owner[id]; ok {
		return m.parts[p]
	}
	return m.parts[int(id)%len(m.parts)]
}

// Join adds the node to its part and registers its dial-back address
// with every other part.
func (m *MultiCluster) Join(id overlay.NodeID, r transport.Router) error {
	p := int(id) % len(m.parts)
	if err := m.parts[p].Join(id, r); err != nil {
		return err
	}
	m.mu.Lock()
	m.owner[id] = p
	m.mu.Unlock()
	addr := m.parts[p].Node(id).Addr()
	for i, c := range m.parts {
		if i != p {
			c.RegisterPeer(id, addr)
		}
	}
	return nil
}

// RemovePeer kills the node at its owning part. The other parts keep
// their directory entries, so dials fail — the same failure-detection
// signal a single cluster gives.
func (m *MultiCluster) RemovePeer(id overlay.NodeID) {
	m.partOf(id).RemovePeer(id)
}

// Connect delegates to the initiator's runtime; the responder may live
// in any part.
func (m *MultiCluster) Connect(initiator, responder overlay.NodeID, batch, conn, budget int, timeout time.Duration) ([]overlay.NodeID, error) {
	return m.partOf(initiator).Connect(initiator, responder, batch, conn, budget, timeout)
}

// ConnectDetail delegates to the initiator's runtime.
func (m *MultiCluster) ConnectDetail(initiator, responder overlay.NodeID, batch, conn, budget int, timeout time.Duration) ([]overlay.NodeID, int, error) {
	return m.partOf(initiator).ConnectDetail(initiator, responder, batch, conn, budget, timeout)
}

// RunBatch delegates to the initiator's runtime.
func (m *MultiCluster) RunBatch(initiator, responder overlay.NodeID, batch, k, budget int, timeout time.Duration) (*transport.BatchOutcome, error) {
	return m.partOf(initiator).RunBatch(initiator, responder, batch, k, budget, timeout)
}

// RunSecureBatch delegates to the initiator's runtime; forwarders in
// other parts verify the contract carried in the frames like any
// remote peer.
func (m *MultiCluster) RunSecureBatch(initiator, responder overlay.NodeID, contract *onion.SignedContract, bk *onion.BatchKey, k, budget int, timeout time.Duration) (*transport.BatchOutcome, error) {
	return m.partOf(initiator).RunSecureBatch(initiator, responder, contract, bk, k, budget, timeout)
}

// RunTrace replays a trace workload with the same interleaving and
// accounting as a single runtime, dispatching each connection to its
// initiator's part.
func (m *MultiCluster) RunTrace(pairs []trace.Pair, opt transport.TraceOptions) *transport.TraceResult {
	res := &transport.TraceResult{Outcomes: make([]*transport.BatchOutcome, len(pairs))}
	for i := range res.Outcomes {
		res.Outcomes[i] = transport.NewBatchOutcome()
	}
	for k, conn := range trace.Interleave(pairs) {
		if opt.Before != nil {
			opt.Before(k, res)
		}
		p := &pairs[conn.Pair]
		out := res.Outcomes[conn.Pair]
		path, reforms, err := m.ConnectDetail(p.Initiator, p.Responder, p.Index+1, conn.Conn, opt.Budget, opt.Timeout)
		res.Reformations += reforms
		out.Reformations += reforms
		if err != nil {
			res.Failed++
			continue
		}
		res.Completed++
		out.Record(path, p.Initiator)
	}
	return res
}

// SettleBatch delegates to the initiator's runtime; settle frames cross
// parts to wherever each forwarder lives.
func (m *MultiCluster) SettleBatch(initiator overlay.NodeID, batch int, out *transport.BatchOutcome, contract core.Contract) (int, error) {
	return m.partOf(initiator).SettleBatch(initiator, batch, out, contract)
}

// Node returns the live node, searching the parts.
func (m *MultiCluster) Node(id overlay.NodeID) *netwire.Node {
	return m.partOf(id).Node(id)
}

// Instrument rebinds every part into reg (shared instruments aggregate)
// and attaches the tracer.
func (m *MultiCluster) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	for _, c := range m.parts {
		c.Instrument(reg, tr)
	}
}

// Metrics returns the aggregated snapshot — every part reads the same
// shared instruments, so any part's view is the whole world's.
func (m *MultiCluster) Metrics() transport.MetricsSnapshot { return m.parts[0].Metrics() }

// ResetMetrics zeroes the shared instruments.
func (m *MultiCluster) ResetMetrics() { m.parts[0].ResetMetrics() }

// SetRetry fans the reformation policy out to every part.
func (m *MultiCluster) SetRetry(p transport.RetryPolicy) {
	for _, c := range m.parts {
		c.SetRetry(p)
	}
}

// SetClock fans the protocol clock out to every part.
func (m *MultiCluster) SetClock(clk vclock.Clock) {
	for _, c := range m.parts {
		c.SetClock(clk)
	}
}

// SetSpans attaches one shared span recorder to every part: ids derive
// from causal coordinates carried in the frames, so which part records
// a span first never shows in the canonical log.
func (m *MultiCluster) SetSpans(r *telemetry.SpanRecorder) {
	for _, c := range m.parts {
		c.SetSpans(r)
	}
}

// Spans returns the shared recorder.
func (m *MultiCluster) Spans() *telemetry.SpanRecorder { return m.parts[0].Spans() }

// Close closes every part.
func (m *MultiCluster) Close() {
	for _, c := range m.parts {
		c.Close()
	}
}

var _ transport.Conductor = (*MultiCluster)(nil)

// String names the topology for error messages.
func (m *MultiCluster) String() string { return fmt.Sprintf("multicluster(%d parts)", len(m.parts)) }
